package aceso_test

import (
	"errors"
	"fmt"
	"time"

	aceso "repro"
)

// exampleConfig shrinks the pool so the examples run instantly.
func exampleConfig() aceso.Config {
	cfg := aceso.DefaultConfig()
	cfg.Layout.IndexBytes = 64 << 10
	cfg.Layout.BlockSize = 64 << 10
	cfg.Layout.StripeRows = 16
	cfg.Layout.PoolBlocks = 12
	cfg.CkptInterval = 20 * time.Millisecond
	return cfg
}

// The basic lifecycle: build a simulated coding group, start its
// servers and master, and run CRUD from a client process.
func Example() {
	cluster, err := aceso.NewSimCluster(exampleConfig())
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	cluster.Start()

	cluster.RunClient("app", func(c *aceso.Client) {
		c.Insert([]byte("motd"), []byte("disaggregate all the things"))
		v, _ := c.Search([]byte("motd"))
		fmt.Println(string(v))

		c.Delete([]byte("motd"))
		_, err := c.Search([]byte("motd"))
		fmt.Println(errors.Is(err, aceso.ErrNotFound))
	})
	// Output:
	// disaggregate all the things
	// true
}

// Crash a memory node and observe tiered recovery: the master re-serves
// the node on a spare, restores the index first (functionality back),
// then the block area.
func ExampleCluster_FailMN() {
	cluster, err := aceso.NewSimCluster(exampleConfig())
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	cluster.Start() // provisions one spare MN

	cluster.RunClient("loader", func(c *aceso.Client) {
		for i := 0; i < 500; i++ {
			c.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
		}
	})
	cluster.Advance(50 * time.Millisecond) // let a checkpoint land

	cluster.FailMN(2)
	recovered := cluster.RunUntil(func() bool {
		_, _, blocksReady := cluster.MNState(2)
		return blocksReady
	})
	fmt.Println("recovered:", recovered)

	cluster.RunClient("verifier", func(c *aceso.Client) {
		v, _ := c.Search([]byte("k0123"))
		fmt.Println(string(v))
	})
	// Output:
	// recovered: true
	// v0123
}

// Inspect the Block Area space accounting behind Figure 12.
func ExampleCluster_MemoryUsage() {
	cluster, err := aceso.NewSimCluster(exampleConfig())
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	cluster.Start()

	cluster.RunClient("loader", func(c *aceso.Client) {
		// Enough data to fill whole blocks, so block-granular parity
		// amortises (tiny loads leave mostly-empty parity blocks).
		for i := 0; i < 2500; i++ {
			c.Insert([]byte(fmt.Sprintf("k%04d", i)), make([]byte, 200))
		}
	})
	cluster.Advance(20 * time.Millisecond) // drain the encoders

	u := cluster.MemoryUsage()
	fmt.Println("has valid bytes:", u.ValidBytes > 0)
	fmt.Println("has parity redundancy:", u.ParityBytes > 0)
	fmt.Println("parity cheaper than 2x replication:", u.ParityBytes < 2*u.ValidBytes)
	// Output:
	// has valid bytes: true
	// has parity redundancy: true
	// parity cheaper than 2x replication: true
}
