package aceso

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestOpenEveryMode drives the mode-generic surface end to end for
// every linked fault-tolerance mode on the simulated fabric.
func TestOpenEveryMode(t *testing.T) {
	modes := FTModes()
	want := []string{FTModeAceso, FTModeFusee, FTModeSwarm}
	if len(modes) != len(want) {
		t.Fatalf("FTModes() = %v, want %v", modes, want)
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Layout.IndexBytes = 96 << 10
			cfg.Layout.BlockSize = 16 << 10
			cfg.Layout.StripeRows = 12
			cfg.Layout.PoolBlocks = 10
			cfg.FTMode = mode
			cluster, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			if cluster.FTMode() != mode {
				t.Fatalf("FTMode() = %q, want %q", cluster.FTMode(), mode)
			}
			cluster.Start()
			cluster.RunKV("app", func(c KV) {
				if err := c.Insert([]byte("k"), []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				got, err := c.Search([]byte("k"))
				if err != nil || !bytes.Equal(got, []byte("v")) {
					t.Errorf("search: %q, %v", got, err)
				}
				if _, err := c.Search([]byte("missing")); !errors.Is(err, ErrNotFound) {
					t.Errorf("missing key: err = %v, want ErrNotFound", err)
				}
			})
			if u := cluster.Usage(); u.TotalBytes == 0 {
				t.Error("Usage().TotalBytes = 0 after an insert")
			}
		})
	}
}

func TestOpenUnknownFabric(t *testing.T) {
	if _, err := Open(DefaultConfig(), WithFabric("infiniband")); err == nil {
		t.Fatal("Open accepted unknown fabric")
	} else if !strings.Contains(err.Error(), "infiniband") {
		t.Fatalf("error %q does not name the fabric", err)
	}
}

func TestOpenUnknownFTMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FTMode = "raid5"
	if _, err := Open(cfg); err == nil {
		t.Fatal("Open accepted unknown ftmode")
	}
}

// TestAcesoOnlySurfacePanics pins the contract that reaching for an
// Aceso-only surface on a replication-mode cluster fails loudly.
func TestAcesoOnlySurfacePanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Layout.IndexBytes = 96 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 12
	cfg.Layout.PoolBlocks = 10
	cfg.FTMode = FTModeFusee
	cluster, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MemoryUsage() on a fusee cluster did not panic")
		}
		if !strings.Contains(r.(string), FTModeFusee) {
			t.Fatalf("panic %v does not name the running mode", r)
		}
	}()
	cluster.MemoryUsage()
}
