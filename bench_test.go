package aceso

// One testing.B benchmark per table and figure of the paper's
// evaluation (§4). Each iteration regenerates the artifact on the
// simulated fabric at smoke scale and reports headline numbers as
// custom metrics; run cmd/acesobench for full-scale paper-style
// tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8 -benchtime=1x

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
)

// benchOpts is the smoke-scale option set used by the testing.B
// wrappers (the full-scale run is cmd/acesobench's job).
var benchOpts = bench.Options{Quick: true}

// runExperiment executes one artifact per b.N iteration and reports
// the first value of every series as a custom metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		for _, s := range last.Series {
			if len(s.Values) > 0 {
				b.ReportMetric(s.Values[0], metricName(s.Name))
			}
		}
	}
}

func metricName(series string) string {
	out := make([]rune, 0, len(series))
	for _, r := range series {
		switch {
		case r == ' ' || r == '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out) + "/first"
}

func BenchmarkFig1aReplicationCost(b *testing.B)  { runExperiment(b, "fig1a") }
func BenchmarkFig1bCkptInterference(b *testing.B) { runExperiment(b, "fig1b") }
func BenchmarkFig8MicroThroughput(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9MicroLatency(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10YCSB(b *testing.B)             { runExperiment(b, "fig10") }
func BenchmarkFig11Twitter(b *testing.B)          { runExperiment(b, "fig11") }
func BenchmarkFig12MemoryDistribution(b *testing.B) {
	runExperiment(b, "fig12")
}
func BenchmarkFig13FactorAnalysis(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14DegradedAndReclaim(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkTable2RecoveryBreakdown(b *testing.B) { runExperiment(b, "tab2") }
func BenchmarkTable3MNCPULoad(b *testing.B)         { runExperiment(b, "tab3") }
func BenchmarkFig15UpdateRatio(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkFig16LostDataSize(b *testing.B)       { runExperiment(b, "fig16") }
func BenchmarkFig17CkptIntervalTpt(b *testing.B)    { runExperiment(b, "fig17") }
func BenchmarkFig18CkptIntervalRec(b *testing.B)    { runExperiment(b, "fig18") }
func BenchmarkFig19CkptSteps(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkFig20BlockSize(b *testing.B)          { runExperiment(b, "fig20") }

// BenchmarkOpLatency reports the simulated end-to-end latency of each
// KV operation type on an otherwise idle cluster (the floor under the
// Figure 9 distributions).
func BenchmarkOpLatency(b *testing.B) {
	for _, op := range []string{"insert", "update", "search", "delete"} {
		op := op
		b.Run(op, func(b *testing.B) {
			cfg := smallConfig()
			// Steady-state appends rely on delta-based reclamation
			// recycling blocks as fast as the bench dirties them.
			cfg.Layout.StripeRows = 24
			cfg.Layout.PoolBlocks = 16
			cfg.BitmapFlushOps = 8
			cfg.ReclaimFree = 0.5
			cluster, err := NewSimCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			cluster.Start()
			var total time.Duration
			var count int
			var clientErr error
			cluster.RunClient("bench", func(c *Client) {
				// Failures are surfaced after RunClient returns:
				// b.Fatal must not unwind a simulated process.
				for i := 0; i < 64; i++ {
					if err := c.Insert(key64(i), val64(i)); err != nil {
						clientErr = err
						return
					}
				}
				for i := 0; i < b.N; i++ {
					k := key64(i % 64)
					if op == "delete" {
						// Untimed refill so every timed delete hits a
						// live key.
						if err := c.Insert(k, val64(i)); err != nil {
							clientErr = err
							return
						}
					}
					t0 := cluster.Now()
					var err error
					switch op {
					case "insert":
						err = c.Insert(key64(64+i%512), val64(i))
					case "update":
						err = c.Update(k, val64(i))
					case "search":
						_, err = c.Search(k)
					case "delete":
						err = c.Delete(k)
					}
					if err != nil {
						clientErr = err
						return
					}
					total += cluster.Now() - t0
					count++
				}
			})
			if clientErr != nil {
				b.Fatal(clientErr)
			}
			if count > 0 {
				b.ReportMetric(float64(total.Nanoseconds())/float64(count), "sim-ns/op")
			}
		})
	}
}

func key64(i int) []byte { return []byte(fmt.Sprintf("bench-key-%08d", i)) }
func val64(i int) []byte { return []byte(fmt.Sprintf("bench-val-%08d-%064d", i, i)) }
