// Reclamation: drive an update-heavy workload through a deliberately
// small Block Area so obsolete KV pairs pile up and Aceso's
// delta-based space reclamation (§3.3.3) kicks in, then print the
// space accounting and verify correctness.
//
//	go run ./examples/reclamation
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	aceso "repro"
)

func main() {
	cfg := aceso.DefaultConfig()
	cfg.Layout.IndexBytes = 64 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 8 // tight: forces reuse under overwrites
	cfg.Layout.PoolBlocks = 10
	cfg.BitmapFlushOps = 8

	cluster, err := aceso.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	const keys = 80
	const rounds = 40
	val := func(i, gen int) []byte {
		return []byte(fmt.Sprintf("gen%03d-%s", gen, bytes.Repeat([]byte{byte('a' + i%26)}, 120)))
	}

	cluster.RunClient("overwriter", func(c *aceso.Client) {
		for gen := 0; gen < rounds; gen++ {
			for i := 0; i < keys; i++ {
				if err := c.Update(key(i), val(i, gen)); err != nil {
					log.Fatalf("round %d update %d: %v", gen, i, err)
				}
			}
			if gen%10 == 9 {
				u := cluster.MemoryUsage()
				fmt.Printf("round %2d: valid=%3dKB obsolete=%3dKB parity=%3dKB delta=%3dKB reclaimed-blocks=%d\n",
					gen+1, u.ValidBytes>>10, u.ObsoleteBytes>>10, u.ParityBytes>>10,
					u.DeltaBytes>>10, cluster.Reclaimed())
			}
		}
	})
	cluster.Advance(50 * time.Millisecond)

	if cluster.Reclaimed() == 0 {
		log.Fatal("no blocks were reclaimed — pool was not under pressure")
	}
	fmt.Printf("\n%d blocks recycled through delta-based reclamation\n", cluster.Reclaimed())
	fmt.Printf("total payload written: %d KB into a Block Area of %d KB per MN\n",
		keys*rounds*256/1024, uint64(cfg.Layout.StripeRows+cfg.Layout.PoolBlocks)*cfg.Layout.BlockSize>>10)

	// Every key must carry its final generation despite block reuse.
	bad := 0
	cluster.RunClient("verifier", func(c *aceso.Client) {
		for i := 0; i < keys; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, rounds-1)) {
				bad++
			}
		}
	})
	if bad != 0 {
		log.Fatalf("%d keys corrupted by reclamation", bad)
	}
	fmt.Printf("verified: all %d keys hold their final values\n", keys)
}

func key(i int) []byte { return []byte(fmt.Sprintf("hotkey-%04d", i)) }
