// Trace replay: synthesize a Twitter-format cache trace (the paper
// replays the production traces of Yang et al., which cannot be
// redistributed), then replay it against an Aceso cluster — the same
// path a real trace file would take.
//
//	go run ./examples/tracereplay [trace.csv]
//
// With an argument, the given Twitter-format CSV is replayed instead
// of a synthetic one.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	aceso "repro"
	"repro/internal/workload"
)

func main() {
	var ops []workload.TraceOp
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		ops, err = workload.ParseTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d operations from %s\n", len(ops), os.Args[1])
	} else {
		path := "/tmp/aceso-synthetic-trace.csv"
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		const keys, count = 2000, 12000
		if err := workload.WriteSyntheticTrace(f, workload.TwitterCompute, keys, count, 1024, 42); err != nil {
			log.Fatal(err)
		}
		f.Close()
		rf, _ := os.Open(path)
		ops, err = workload.ParseTrace(rf)
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("synthesized %s (%d ops, TWITTER-COMPUTE mix) and parsed it back\n", path, len(ops))
	}

	cfg := aceso.DefaultConfig()
	cfg.Layout.IndexBytes = 1 << 20
	cfg.Layout.BlockSize = 256 << 10
	cfg.Layout.StripeRows = 64
	cfg.Layout.PoolBlocks = 24
	cluster, err := aceso.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	counts := map[workload.Kind]int{}
	var start, end time.Duration
	cluster.RunClient("replayer", func(c *aceso.Client) {
		// Preload so replayed gets/sets of preloaded keys hit.
		seen := map[string]bool{}
		for _, op := range ops {
			if !seen[string(op.Key)] && (op.Kind == workload.OpSearch || op.Kind == workload.OpUpdate) {
				if err := c.Insert(op.Key, workload.Value(op.Key, 256)); err != nil {
					log.Fatalf("preload: %v", err)
				}
				seen[string(op.Key)] = true
			}
		}
		start = cluster.Now()
		g := workload.NewTraceGen(ops)
		for i := 0; i < len(ops); i++ {
			op := g.Next()
			var err error
			switch op.Kind {
			case workload.OpSearch:
				_, err = c.Search(op.Key)
			case workload.OpUpdate:
				err = c.Update(op.Key, workload.Value(op.Key, 256))
			case workload.OpInsert:
				err = c.Insert(op.Key, workload.Value(op.Key, 256))
			case workload.OpDelete:
				err = c.Delete(op.Key)
			}
			if err != nil && !errors.Is(err, aceso.ErrNotFound) {
				log.Fatalf("replay op %d (%v %s): %v", i, op.Kind, op.Key, err)
			}
			counts[op.Kind]++
		}
		end = cluster.Now()
	})

	fmt.Printf("replayed: SEARCH=%d UPDATE=%d INSERT=%d DELETE=%d\n",
		counts[workload.OpSearch], counts[workload.OpUpdate],
		counts[workload.OpInsert], counts[workload.OpDelete])
	fmt.Printf("virtual replay time: %v (%.2f Mops single-client)\n",
		end-start, float64(len(ops))/(end-start).Seconds()/1e6)
}
