// YCSB: run the four YCSB core workloads against Aceso and against a
// FUSEE-style replication baseline on identical simulated fabrics, and
// print the throughput comparison of Figure 10.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
)

func main() {
	fmt.Println("Running YCSB A-D on Aceso and the FUSEE baseline (simulated fabric)...")
	fmt.Println("This drives the same harness as `acesobench -exp fig10`.")
	start := time.Now()
	res, err := bench.Run("fig10", bench.Options{Clients: 48, CNs: 12, OpsPerClient: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Text())
	fmt.Printf("(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
