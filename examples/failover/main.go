// Failover: load a dataset, crash a memory node mid-flight, watch the
// tiered recovery of §3.4.1 restore functionality in index-recovery
// time, and verify that no committed KV pair was lost.
//
// The kill-and-recover cycle runs on either fabric:
//
//	go run ./examples/failover                # simulated RDMA, virtual time
//	go run ./examples/failover -fabric tcp    # real TCP sockets, wall clock
//
// On tcp the crash tears down a real listener and every live
// connection; clients ride the transparent-reconnect layer and the
// master re-serves the node on a spare, all over genuine sockets.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	aceso "repro"
)

func main() {
	fabric := flag.String("fabric", "sim", "fabric to run on: sim | tcp")
	flag.Parse()

	cfg := aceso.DefaultConfig()
	cfg.Layout.IndexBytes = 128 << 10
	cfg.Layout.BlockSize = 64 << 10
	cfg.Layout.StripeRows = 48
	cfg.Layout.PoolBlocks = 16
	cfg.CkptInterval = 50 * time.Millisecond

	cluster, err := aceso.Open(cfg, aceso.WithFabric(*fabric))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	// Load 2000 pairs, overwrite a third of them, then let a
	// checkpoint round land.
	const keys = 2000
	val := func(i, gen int) []byte {
		return []byte(fmt.Sprintf("value-%06d-gen%d-%s", i, gen, bytes.Repeat([]byte("x"), 150)))
	}
	cluster.RunClient("loader", func(c *aceso.Client) {
		for i := 0; i < keys; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				log.Fatalf("insert: %v", err)
			}
		}
		for i := 0; i < keys; i += 3 {
			if err := c.Update(key(i), val(i, 1)); err != nil {
				log.Fatalf("update: %v", err)
			}
		}
	})
	cluster.Advance(2 * cfg.CkptInterval)
	fmt.Printf("[%8v] loaded %d pairs on %s fabric, checkpoints landed\n", cluster.Now(), keys, *fabric)

	// Crash MN 1. On tcp this closes the node's listener and tracked
	// connections; the master detects the failure via the membership
	// service and recovers onto the spare node either way.
	crashAt := cluster.Now()
	cluster.FailMN(1)
	fmt.Printf("[%8v] *** MN 1 fail-stop injected ***\n", crashAt)

	var idxAt, blkAt time.Duration
	healed := cluster.RunUntil(func() bool {
		_, idxReady, blocksReady := cluster.MNState(1)
		if idxReady && idxAt == 0 {
			idxAt = cluster.Now()
			fmt.Printf("[%8v] index recovered after %v -> writes at full speed, reads degraded\n",
				idxAt, idxAt-crashAt)
		}
		if blocksReady && blkAt == 0 {
			blkAt = cluster.Now()
		}
		// On wall-clock fabrics the report can land a beat after the
		// ready flag flips; wait for both.
		return blocksReady && len(cluster.RecoveryReports()) > 0
	})
	if !healed {
		log.Fatal("recovery did not finish within the fabric's time limit")
	}
	fmt.Printf("[%8v] block area recovered after %v -> fully healed\n", blkAt, blkAt-crashAt)

	rep := cluster.RecoveryReports()[0]
	fmt.Printf("recovery report: meta=%v ckpt=%v newLocal=%d(%v) remote=%d(%v) scannedKV=%d(%v) oldLocal=%d(%v)\n",
		rep.ReadMeta, rep.ReadCkpt,
		rep.LBlockCount, rep.RecoverLBlock,
		rep.RBlockCount, rep.ReadRBlock,
		rep.KVCount, rep.ScanKV,
		rep.OldLBlockCount, rep.RecoverOldLBlock)

	// Verify every committed pair with a cold-cache client.
	bad := 0
	var vstats aceso.ClientStats
	cluster.RunClient("verifier", func(c *aceso.Client) {
		for i := 0; i < keys; i++ {
			want := val(i, 0)
			if i%3 == 0 {
				want = val(i, 1)
			}
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, want) {
				bad++
			}
		}
		vstats = c.Stats
	})
	if bad != 0 {
		log.Fatalf("%d keys lost or corrupted after recovery", bad)
	}
	fmt.Printf("verified: all %d committed pairs intact after MN crash + recovery\n", keys)

	// The same story, told by the observability layer: the trace ring
	// holds the failure detection and every tier of the recovery with
	// fabric-clock timestamps, and the counters show what it cost.
	fmt.Println("\nrecovery trace (fabric clock):")
	for _, ev := range cluster.Trace() {
		fmt.Printf("  %s\n", ev)
	}
	st := cluster.MNStats(1)
	fmt.Printf("\nmn1 counters after recovery: ckptRounds=%d ckptBytes=%d ckptApplies=%d encodeBatches=%d reclaimed=%d pool{free=%d delta=%d copy=%d data=%d}\n",
		st.CkptRounds, st.CkptBytes, st.CkptApplies, st.EncodeJobs, st.Reclaimed,
		st.PoolFree, st.PoolDelta, st.PoolCopy, st.PoolData)
	fmt.Printf("verifier client: searches=%d cacheMisses=%d degradedReads=%d casRetries=%d\n",
		vstats.Searches, vstats.CacheMisses, vstats.DegradedReads, vstats.CASRetries)
	ts := cluster.TransportStats()
	fmt.Printf("transport (%s fabric): dials=%d redials=%d retries=%d nodeFailures=%d\n",
		*fabric, ts.Dials, ts.Redials, ts.Retries, ts.NodeFailures)
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
