// Quickstart: bring up a five-memory-node Aceso coding group on the
// in-process simulated fabric and run basic KV operations.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	aceso "repro"
)

func main() {
	cfg := aceso.DefaultConfig()
	// Shrink the pool for a snappy demo; geometry is fully
	// configurable (see DESIGN.md).
	cfg.Layout.IndexBytes = 64 << 10
	cfg.Layout.BlockSize = 64 << 10
	cfg.Layout.StripeRows = 16
	cfg.Layout.PoolBlocks = 12

	cluster, err := aceso.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	cluster.RunClient("quickstart", func(c *aceso.Client) {
		must(c.Insert([]byte("city:austin"), []byte("SOSP 2024")))
		must(c.Insert([]byte("paper:aceso"), []byte("hybrid fault tolerance on disaggregated memory")))

		v, err := c.Search([]byte("paper:aceso"))
		must(err)
		fmt.Printf("paper:aceso = %s\n", v)

		must(c.Update([]byte("city:austin"), []byte("SOSP 2024, Austin TX")))
		v, err = c.Search([]byte("city:austin"))
		must(err)
		fmt.Printf("city:austin = %s\n", v)

		must(c.Delete([]byte("city:austin")))
		if _, err := c.Search([]byte("city:austin")); errors.Is(err, aceso.ErrNotFound) {
			fmt.Println("city:austin deleted")
		}

		fmt.Printf("client stats: ops=%d cas=%d reads=%d writes=%d\n",
			c.Stats.Ops, c.Stats.CASIssued, c.Stats.ReadsIssued, c.Stats.WritesIssued)
	})
	fmt.Printf("virtual time elapsed: %v\n", cluster.Now())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
