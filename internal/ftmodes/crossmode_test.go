package ftmodes

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftmode"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
)

// allModes is the conformance table: every registered mode runs every
// cross-mode test, with capability-gated skips for unimplemented tiers.
var allModes = []string{core.FTModeAceso, core.FTModeFusee, core.FTModeSwarm}

// crossConfig is one shared configuration all modes open from, so the
// suite exercises the promise that switching Config.FTMode is the only
// change a caller makes. Sizes follow core's test config; IndexBytes is
// divisible by the replica count so the replication modes' partition
// split is exact.
func crossConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Layout.IndexBytes = 96 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 12
	cfg.Layout.PoolBlocks = 10
	cfg.CkptInterval = 20 * time.Millisecond
	cfg.BitmapFlushOps = 8
	return cfg
}

type harness struct {
	pl *simnet.Platform
	ft ftmode.Cluster
}

func openMode(t *testing.T, mode string) *harness {
	t.Helper()
	cfg := crossConfig()
	cfg.FTMode = mode
	pl := simnet.New(simnet.DefaultConfig())
	ft, err := core.OpenFT(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pl.Shutdown)
	return &harness{pl: pl, ft: ft}
}

// runClients spawns each fn as a fresh client process (cold cache) and
// advances virtual time until all complete or the virtual deadline
// passes.
func (h *harness) runClients(t *testing.T, deadline time.Duration, fns ...func(ftmode.Client)) {
	t.Helper()
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := h.pl.AddComputeNode()
		h.ft.SpawnClient(cn, fmt.Sprintf("client%d", i), func(c ftmode.Client) {
			fn(c)
			c.Close()
			done++
		})
	}
	limit := h.pl.Engine().Now() + deadline
	for done < len(fns) && h.pl.Engine().Now() < limit {
		h.pl.Run(h.pl.Engine().Now() + time.Millisecond)
	}
	if done < len(fns) {
		t.Fatalf("only %d/%d clients finished before virtual deadline", done, len(fns))
	}
}

func (h *harness) run(d time.Duration) {
	h.pl.Run(h.pl.Engine().Now() + d)
}

func forEachMode(t *testing.T, fn func(t *testing.T, h *harness)) {
	for _, m := range allModes {
		m := m
		t.Run(m, func(t *testing.T) {
			fn(t, openMode(t, m))
		})
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i, gen int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("v%03d-%06d.", gen, i)), 10)
}

// TestLinkedModes pins the registry contents with this package
// imported: all three modes, and nothing registered twice.
func TestLinkedModes(t *testing.T) {
	got := Linked()
	want := []string{core.FTModeAceso, core.FTModeFusee, core.FTModeSwarm}
	if len(got) != len(want) {
		t.Fatalf("Linked() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Linked() = %v, want %v", got, want)
		}
	}
}

func TestOpenFTUnknownMode(t *testing.T) {
	cfg := crossConfig()
	cfg.FTMode = "raid5"
	pl := simnet.New(simnet.DefaultConfig())
	defer pl.Shutdown()
	if _, err := core.OpenFT(cfg, pl); err == nil {
		t.Fatal("OpenFT accepted unknown mode")
	} else if !strings.Contains(err.Error(), "raid5") {
		t.Fatalf("unknown-mode error %q does not name the mode", err)
	}
}

// TestCrossModeCRUD runs the same insert/search/update/delete sequence
// against every mode, including the shared error taxonomy (core
// sentinel errors under errors.Is) and a cold-cache verification pass
// from a second client.
func TestCrossModeCRUD(t *testing.T) {
	forEachMode(t, func(t *testing.T, h *harness) {
		const n = 160
		h.runClients(t, 30*time.Second, func(c ftmode.Client) {
			for i := 0; i < n; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
			for i := 0; i < n; i++ {
				got, err := c.Search(key(i))
				if err != nil || !bytes.Equal(got, val(i, 0)) {
					t.Errorf("search %d: err %v", i, err)
					return
				}
			}
			if _, err := c.Search([]byte("nonexistent")); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("missing key: err = %v, want core.ErrNotFound", err)
				return
			}
			for i := 0; i < n; i++ {
				if err := c.Update(key(i), val(i, 1)); err != nil {
					t.Errorf("update %d: %v", i, err)
					return
				}
			}
			for i := 0; i < n; i += 2 {
				if err := c.Delete(key(i)); err != nil {
					t.Errorf("delete %d: %v", i, err)
					return
				}
			}
		})
		// Cold cache: a fresh client must see the same end state.
		h.runClients(t, 30*time.Second, func(c ftmode.Client) {
			for i := 0; i < n; i++ {
				got, err := c.Search(key(i))
				if i%2 == 0 {
					if !errors.Is(err, core.ErrNotFound) {
						t.Errorf("deleted key %d: got %q, err %v", i, got, err)
						return
					}
					continue
				}
				if err != nil || !bytes.Equal(got, val(i, 1)) {
					t.Errorf("surviving key %d: err %v", i, err)
					return
				}
			}
		})
	})
}

// TestCrossModeCounters checks the uniform verbs accounting surface:
// every mode reports nonzero read and write verbs after a workload, so
// bench verbs-per-op rows are meaningful for all of them.
func TestCrossModeCounters(t *testing.T) {
	forEachMode(t, func(t *testing.T, h *harness) {
		h.runClients(t, 30*time.Second, func(c ftmode.Client) {
			for i := 0; i < 40; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
			for i := 0; i < 40; i++ {
				if _, err := c.Search(key(i)); err != nil {
					t.Errorf("search %d: %v", i, err)
					return
				}
			}
			cas, reads, writes := c.Counters()
			if reads == 0 || writes == 0 {
				t.Errorf("Counters() = cas %d reads %d writes %d; want nonzero reads and writes", cas, reads, writes)
			}
		})
	})
}

// TestCrossModeChaosStress runs concurrent writers and a reader under
// injected delay chaos on every MN, for every mode. Delay-only chaos is
// deliberate: on simnet a chaos-dropped frame surfaces as
// rdma.ErrNodeFailed, indistinguishable from a real fail-stop, so the
// replication modes' client-observed failure view would (correctly, by
// FUSEE's timeout semantics) mark a healthy-but-lossy node failed.
// Drop/reset chaos is exercised by the fabric and per-mode suites.
func TestCrossModeChaosStress(t *testing.T) {
	forEachMode(t, func(t *testing.T, h *harness) {
		var fi rdma.FaultInjector = h.pl
		for mn := 0; mn < h.ft.NumMNs(); mn++ {
			fi.SetChaos(rdma.NodeID(mn), rdma.ChaosConfig{
				Seed:      int64(1000 + mn),
				DelayProb: 0.10,
				MaxDelay:  100 * time.Microsecond,
			})
		}
		const writers = 3
		const perWriter = 40
		fns := make([]func(ftmode.Client), 0, writers+1)
		for w := 0; w < writers; w++ {
			w := w
			fns = append(fns, func(c ftmode.Client) {
				base := w * perWriter
				for i := 0; i < perWriter; i++ {
					if err := c.Insert(key(base+i), val(base+i, 0)); err != nil {
						t.Errorf("writer %d insert %d: %v", w, i, err)
						return
					}
				}
				for i := 0; i < perWriter; i++ {
					if err := c.Update(key(base+i), val(base+i, 1)); err != nil {
						t.Errorf("writer %d update %d: %v", w, i, err)
						return
					}
				}
			})
		}
		fns = append(fns, func(c ftmode.Client) {
			for g := 0; g < 2*perWriter; g++ {
				i := g % (writers * perWriter)
				if _, err := c.Search(key(i)); err != nil && !errors.Is(err, core.ErrNotFound) {
					t.Errorf("reader key %d: %v", i, err)
					return
				}
			}
		})
		h.runClients(t, 120*time.Second, fns...)
		for mn := 0; mn < h.ft.NumMNs(); mn++ {
			fi.SetChaos(rdma.NodeID(mn), rdma.ChaosConfig{}) // clear
		}
		// Quiet verification from a cold client.
		h.runClients(t, 60*time.Second, func(c ftmode.Client) {
			for i := 0; i < writers*perWriter; i++ {
				got, err := c.Search(key(i))
				if err != nil || !bytes.Equal(got, val(i, 1)) {
					t.Errorf("post-chaos search %d: err %v", i, err)
					return
				}
			}
		})
	})
}

// TestCrossModeFailStop injects the same mid-run MN fail-stop in every
// mode, then checks each recovery tier the mode claims via Caps — and
// skips, explicitly, the tiers it does not.
func TestCrossModeFailStop(t *testing.T) {
	forEachMode(t, func(t *testing.T, h *harness) {
		const n = 120
		h.runClients(t, 60*time.Second, func(c ftmode.Client) {
			for i := 0; i < n; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		})
		caps := h.ft.Caps()
		const victim = 2
		h.ft.FailMN(victim)

		t.Run("read-failover", func(t *testing.T) {
			if !caps.ReadFailover {
				t.Skipf("mode %s does not implement replica read failover (Caps.ReadFailover=false)", h.ft.Mode())
			}
			// No rebuild: reads and writes must succeed immediately via
			// surviving replicas.
			h.runClients(t, 120*time.Second, func(c ftmode.Client) {
				for i := 0; i < n; i++ {
					got, err := c.Search(key(i))
					if err != nil || !bytes.Equal(got, val(i, 0)) {
						t.Errorf("post-crash search %d: err %v", i, err)
						return
					}
				}
				for i := 0; i < n; i++ {
					if err := c.Update(key(i), val(i, 1)); err != nil {
						t.Errorf("post-crash update %d: %v", i, err)
						return
					}
				}
			})
		})

		t.Run("tiered-recovery", func(t *testing.T) {
			if !caps.TieredRecovery {
				t.Skipf("mode %s does not implement tiered recovery onto spares (Caps.TieredRecovery=false)", h.ft.Mode())
			}
			if failed, _, _ := h.ft.MNState(victim); !failed {
				t.Fatalf("MNState(%d) does not report the fail-stop", victim)
			}
			recovered := false
			for i := 0; i < 120000; i++ {
				h.run(time.Millisecond)
				if _, indexReady, blocksReady := h.ft.MNState(victim); indexReady && blocksReady {
					recovered = true
					break
				}
			}
			if !recovered {
				t.Fatal("virtual deadline waiting for tiered recovery")
			}
		})

		// Whatever the tier, the end state must be readable.
		gen := 0
		if caps.ReadFailover {
			gen = 1 // the failover subtest rewrote every key
		}
		h.runClients(t, 120*time.Second, func(c ftmode.Client) {
			for i := 0; i < n; i++ {
				got, err := c.Search(key(i))
				if err != nil || !bytes.Equal(got, val(i, gen)) {
					t.Errorf("post-recovery search %d: err %v", i, err)
					return
				}
			}
		})
	})
}

// TestCrossModeUsage checks the space-accounting surface: every mode
// reports a nonzero footprint after a workload, and modes claiming
// SpaceBreakdown fill the valid/redundant split.
func TestCrossModeUsage(t *testing.T) {
	forEachMode(t, func(t *testing.T, h *harness) {
		h.runClients(t, 30*time.Second, func(c ftmode.Client) {
			for i := 0; i < 100; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		})
		h.run(100 * time.Millisecond)
		u := h.ft.Usage()
		if u.TotalBytes == 0 {
			t.Errorf("Usage().TotalBytes = 0 after 100 inserts")
		}
		if h.ft.Caps().SpaceBreakdown {
			if u.ValidBytes == 0 {
				t.Errorf("mode claims SpaceBreakdown but ValidBytes = 0")
			}
		} else if u.ValidBytes != 0 || u.RedundantBytes != 0 {
			t.Errorf("mode without SpaceBreakdown fills the split: %+v", u)
		}
	})
}

// cacheStatser is the optional surface a caching client exposes; the
// conformance test asserts it tracks Caps().ClientCache exactly.
type cacheStatser interface {
	CacheStats() (entries int, bytes uint64, offloaded int, evictions uint64)
}

// TestCrossModeClientCacheCapability pins the ClientCache capability to
// reality: a mode that advertises it must hand out clients exposing
// CacheStats and actually populate the cache under the config knobs; a
// mode that does not must hand out clients without the surface — and
// must still serve CRUD correctly with the knobs set (they are inert,
// not rejected).
func TestCrossModeClientCacheCapability(t *testing.T) {
	for _, m := range allModes {
		m := m
		t.Run(m, func(t *testing.T) {
			cfg := crossConfig()
			cfg.FTMode = m
			cfg.CacheEntries = 1024
			cfg.CacheNegative = true
			cfg.OffloadBuckets = 32
			pl := simnet.New(simnet.DefaultConfig())
			ft, err := core.OpenFT(cfg, pl)
			if err != nil {
				t.Fatal(err)
			}
			if err := ft.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(pl.Shutdown)
			h := &harness{pl: pl, ft: ft}
			wantCache := ft.Caps().ClientCache
			h.runClients(t, 30*time.Second, func(c ftmode.Client) {
				cs, hasCache := c.(cacheStatser)
				if hasCache != wantCache {
					t.Errorf("mode %s: Caps().ClientCache=%v but client CacheStats surface=%v",
						ft.Mode(), wantCache, hasCache)
					return
				}
				const n = 64
				for i := 0; i < n; i++ {
					if err := c.Insert(key(i), val(i, 0)); err != nil {
						t.Errorf("insert %d: %v", i, err)
						return
					}
				}
				// Two passes: the first populates, the second must be
				// served from cache on capable modes (and stay correct
				// on all of them).
				for pass := 0; pass < 2; pass++ {
					for i := 0; i < n; i++ {
						got, err := c.Search(key(i))
						if err != nil || !bytes.Equal(got, val(i, 0)) {
							t.Errorf("pass %d search %d: %v", pass, i, err)
							return
						}
					}
					// Absent keys exercise the negative path; the
					// conclusion must not change across passes.
					for i := n; i < n+16; i++ {
						if _, err := c.Search(key(i)); !errors.Is(err, core.ErrNotFound) {
							t.Errorf("pass %d absent search %d: err=%v, want ErrNotFound", pass, i, err)
							return
						}
					}
				}
				if !hasCache {
					return
				}
				entries, bytes_, _, _ := cs.CacheStats()
				if entries == 0 || bytes_ == 0 {
					t.Errorf("mode %s: caching client served %d hot GETs but CacheStats()=(%d entries, %d bytes)",
						ft.Mode(), 2*n, entries, bytes_)
				}
				if entries > cfg.CacheEntries {
					t.Errorf("mode %s: cache holds %d entries, config bound is %d",
						ft.Mode(), entries, cfg.CacheEntries)
				}
				if cc, ok := c.(*core.Client); ok {
					if cc.Stats.CacheHits == 0 {
						t.Errorf("second warm pass recorded no cache hits (stats %+v)", cc.Stats)
					}
				}
			})
		})
	}
}

// TestCrossModeUnalignedIndexSplit pins the replication modes'
// partition rounding: an IndexBytes that is not divisible into
// bucket-aligned replica partitions (like the 2 MB default over 3
// replicas) must still open and serve CRUD — the split is rounded
// down to a bucket boundary, not allowed to produce unaligned slot
// CASes in partitions j>0.
func TestCrossModeUnalignedIndexSplit(t *testing.T) {
	for _, m := range allModes {
		m := m
		t.Run(m, func(t *testing.T) {
			cfg := crossConfig()
			cfg.Layout.IndexBytes = 100 << 10 // 102400/3 = 34133: neither 8- nor bucket-aligned
			cfg.FTMode = m
			pl := simnet.New(simnet.DefaultConfig())
			ft, err := core.OpenFT(cfg, pl)
			if err != nil {
				t.Fatal(err)
			}
			if err := ft.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(pl.Shutdown)
			h := &harness{pl: pl, ft: ft}
			h.runClients(t, 10*time.Second, func(c ftmode.Client) {
				for i := 0; i < 32; i++ {
					if err := c.Insert(key(i), val(i, 0)); err != nil {
						t.Errorf("insert %d: %v", i, err)
						return
					}
				}
				for i := 0; i < 32; i++ {
					got, err := c.Search(key(i))
					if err != nil || !bytes.Equal(got, val(i, 0)) {
						t.Errorf("search %d: %v", i, err)
						return
					}
				}
			})
		})
	}
}

// TestCrossModeFusedCommit runs the same write-heavy sequence through
// every mode with the shared config's FusedCommit default (on) and
// again with the knob forced off: results must be identical either way
// (the knob is a pure transport optimization), and the aceso mode must
// actually take the fused path when it is allowed to.
func TestCrossModeFusedCommit(t *testing.T) {
	for _, fused := range []bool{false, true} {
		fused := fused
		name := "off"
		if fused {
			name = "on"
		}
		t.Run(name, func(t *testing.T) {
			forEachMode(t, func(t *testing.T, h *harness) {
				// forEachMode opens with crossConfig's default; rebuild
				// with the knob set when it differs.
				if h.ft.Mode() == core.FTModeAceso {
					cfg := crossConfig()
					cfg.FusedCommit = fused
					pl := simnet.New(simnet.DefaultConfig())
					ft, err := core.OpenFT(cfg, pl)
					if err != nil {
						t.Fatal(err)
					}
					if err := ft.Start(); err != nil {
						t.Fatal(err)
					}
					t.Cleanup(pl.Shutdown)
					h = &harness{pl: pl, ft: ft}
				}
				const n = 80
				h.runClients(t, 60*time.Second, func(c ftmode.Client) {
					for i := 0; i < n; i++ {
						if err := c.Insert(key(i), val(i, 0)); err != nil {
							t.Errorf("insert %d: %v", i, err)
							return
						}
					}
					for g := 1; g <= 3; g++ {
						for i := 0; i < n; i++ {
							if err := c.Update(key(i), val(i, g)); err != nil {
								t.Errorf("update %d gen %d: %v", i, g, err)
								return
							}
						}
					}
					for i := 0; i < n; i++ {
						got, err := c.Search(key(i))
						if err != nil || !bytes.Equal(got, val(i, 3)) {
							t.Errorf("search %d: err %v", i, err)
							return
						}
					}
				})
				a, ok := h.ft.(interface{ Core() *core.Cluster })
				if !ok {
					return // replication modes: conformance alone is the assertion
				}
				ws := a.Core().WriteMetrics().Snapshot()
				if fused && ws.Fused == 0 {
					t.Fatal("aceso mode with FusedCommit=true recorded no fused commits")
				}
				if !fused && ws.Fused != 0 {
					t.Fatalf("aceso mode with FusedCommit=false recorded %d fused commits", ws.Fused)
				}
			})
		})
	}
}
