// Package ftmodes links every fault-tolerance mode implementation into
// the importing binary. The mode registry (internal/core) is populated
// by package init side effects, so a binary that wants `-ftmode` to
// accept all modes blank-imports this package once instead of tracking
// the mode list itself. The facade (package aceso) and the cmds do
// exactly that.
//
// The package also hosts the cross-mode conformance suite: the same
// table-driven CRUD, error-taxonomy, chaos-stress and fail-stop tests
// run against every registered mode, with capability-gated skips
// (ftmode.Caps) for tiers a mode does not implement.
package ftmodes

import (
	"repro/internal/core"

	// Mode registrations (init side effects). The aceso mode registers
	// from core itself.
	_ "repro/internal/fusee"
	_ "repro/internal/swarm"
)

// Linked returns the names of every mode linked into this binary,
// sorted. With this package imported it is the full set: aceso,
// fusee-replication, swarm-inplace.
func Linked() []string { return core.FTModes() }
