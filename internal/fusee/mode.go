// ftmode registration: the baseline promoted behind the same API as
// Aceso itself, so every harness (cmds, bench, chaos tests) drives it
// through core.OpenFT with Config.FTMode = core.FTModeFusee.
package fusee

import (
	"repro/internal/core"
	"repro/internal/ftmode"
	"repro/internal/rdma"
)

func init() {
	core.RegisterFTMode(core.FTModeFusee, func(cfg core.Config, pl rdma.Platform) (ftmode.Cluster, error) {
		cl, err := NewCluster(ConfigFromCore(cfg), pl)
		if err != nil {
			return nil, err
		}
		return &mode{cl: cl}, nil
	})
}

// ConfigFromCore derives the baseline's geometry from a shared core
// Config so both stores see comparable index and block capacity: the
// index area is split into Replicas hosted partitions, and the block
// area matches Aceso's data+pool block count.
func ConfigFromCore(cfg core.Config) Config {
	r := cfg.ReplicaCount()
	fc := Config{
		NumMNs:         cfg.Layout.NumMNs,
		Replicas:       r,
		SlotBytes:      8,
		PartitionBytes: cfg.Layout.IndexBytes / uint64(r),
		BlockSize:      cfg.Layout.BlockSize,
		BlocksPerMN:    cfg.Layout.BlocksPerMN(),
		CacheValues:    cfg.CacheSlotAddr,
	}
	// Partitions are laid out back to back at j*PartitionBytes, so the
	// split must stay bucket-aligned or every slot word in partitions
	// j>0 lands on an unaligned address and CAS refuses it (the default
	// 2 MB index / 3 replicas is not).
	fc.PartitionBytes -= fc.PartitionBytes % fc.bucketBytes()
	if fc.PartitionBytes == 0 {
		fc.PartitionBytes = 1 << 20
	}
	return fc
}

// mode adapts *Cluster to ftmode.Cluster.
type mode struct{ cl *Cluster }

// Fusee exposes the underlying cluster for baseline-specific surfaces.
func (m *mode) Fusee() *Cluster { return m.cl }

func (m *mode) Mode() string { return core.FTModeFusee }

func (m *mode) Caps() ftmode.Caps {
	return ftmode.Caps{ReadFailover: true, AdminRPC: true}
}

// Start is a no-op: the alloc/kill handlers are installed at open and
// the baseline runs no server daemons.
func (m *mode) Start() error { return nil }

func (m *mode) NewClient() ftmode.Client { return m.cl.NewClient() }

func (m *mode) SpawnClient(cn rdma.NodeID, name string, fn func(ftmode.Client)) {
	m.cl.SpawnClient(cn, name, func(c *Client) { fn(c) })
}

func (m *mode) FailMN(mn int) { m.cl.FailMN(mn) }

func (m *mode) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return m.cl.MNState(mn)
}

func (m *mode) Ready() bool { return true }

func (m *mode) Usage() ftmode.Usage {
	return ftmode.Usage{TotalBytes: m.cl.AllocatedBytes()}
}

func (m *mode) NumMNs() int { return m.cl.Cfg.NumMNs }
