package fusee

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rdma/simnet"
)

type testCluster struct {
	pl *simnet.Platform
	cl *Cluster
}

func newTestCluster(t *testing.T, mutate func(*Config)) *testCluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PartitionBytes = 64 << 10
	cfg.BlockSize = 64 << 10
	cfg.BlocksPerMN = 64
	if mutate != nil {
		mutate(&cfg)
	}
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pl.Shutdown)
	return &testCluster{pl: pl, cl: cl}
}

func (tc *testCluster) runClients(t *testing.T, deadline time.Duration, fns ...func(*Client)) {
	t.Helper()
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := tc.pl.AddComputeNode()
		tc.cl.SpawnClient(cn, fmt.Sprintf("client%d", i), func(c *Client) {
			fn(c)
			done++
		})
	}
	limit := tc.pl.Engine().Now() + deadline
	for done < len(fns) && tc.pl.Engine().Now() < limit {
		tc.pl.Run(tc.pl.Engine().Now() + time.Millisecond)
	}
	if done < len(fns) {
		t.Fatalf("only %d/%d clients finished", done, len(fns))
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i, gen int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("v%03d-%06d.", gen, i)), 10)
}

func TestCRUD(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 30*time.Second, func(c *Client) {
		const n = 150
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("search %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i += 2 {
			if err := c.Update(key(i), val(i, 1)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			want := val(i, 0)
			if i%2 == 0 {
				want = val(i, 1)
			}
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("search after update %d: %v", i, err)
				return
			}
		}
		if err := c.Delete(key(3)); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if _, err := c.Search(key(3)); !errors.Is(err, ErrNotFound) {
			t.Errorf("search deleted: %v", err)
		}
		if err := c.Delete([]byte("missing")); !errors.Is(err, ErrNotFound) {
			t.Errorf("delete missing: %v", err)
		}
	})
}

func TestColdCacheSearch(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < 50; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < 50; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("cold search %d: %v", i, err)
				return
			}
		}
	})
}

func TestConcurrentSameKey(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("contended")
	const writers = 6
	finals := make([][]byte, writers)
	fns := make([]func(*Client), writers)
	retries := uint64(0)
	for w := 0; w < writers; w++ {
		w := w
		fns[w] = func(c *Client) {
			for r := 0; r < 20; r++ {
				v := []byte(fmt.Sprintf("writer%02d-round%03d-%s", w, r, bytes.Repeat([]byte("y"), 40)))
				if err := c.Update(k, v); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				finals[w] = v
			}
			retries += c.Stats.CASRetries
		}
	}
	tc.runClients(t, 60*time.Second, fns...)
	tc.runClients(t, 30*time.Second, func(c *Client) {
		got, err := c.Search(k)
		if err != nil {
			t.Errorf("final search: %v", err)
			return
		}
		ok := false
		for _, f := range finals {
			if bytes.Equal(got, f) {
				ok = true
			}
		}
		if !ok {
			t.Error("final value is not any writer's last write")
		}
	})
	if retries == 0 {
		t.Error("expected CAS retries under contention")
	}
}

// TestWriteCosts verifies the replication cost model of Figure 1(a):
// n CAS operations and n KV writes per write request; SEARCH issues no
// CAS.
func TestWriteCosts(t *testing.T) {
	for _, r := range []int{1, 2, 3} {
		r := r
		t.Run(fmt.Sprintf("replicas=%d", r), func(t *testing.T) {
			tc := newTestCluster(t, func(cfg *Config) { cfg.Replicas = r })
			tc.runClients(t, 30*time.Second, func(c *Client) {
				const n = 50
				for i := 0; i < n; i++ {
					if err := c.Insert(key(i), val(i, 0)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
				if got, want := c.Stats.CASIssued, uint64(n*r); got != want {
					t.Errorf("CAS issued = %d, want %d (n CAS per write)", got, want)
				}
				base := c.Stats.ReadsIssued
				for i := 0; i < n; i++ {
					if _, err := c.Search(key(i)); err != nil {
						t.Errorf("search: %v", err)
						return
					}
				}
				if c.Stats.CASIssued != uint64(n*r) {
					t.Error("SEARCH issued CAS operations")
				}
				if c.Stats.ReadsIssued == base {
					t.Error("SEARCH issued no reads")
				}
			})
		})
	}
}

// TestSlotWidthAffectsBucketBytes checks the "+SLOT" configuration
// doubles index read amplification.
func TestSlotWidthAffectsBucketBytes(t *testing.T) {
	read8, read16 := uint64(0), uint64(0)
	for _, sb := range []int{8, 16} {
		sb := sb
		tc := newTestCluster(t, func(cfg *Config) { cfg.SlotBytes = sb; cfg.CacheValues = false })
		var reads uint64
		tc.runClients(t, 30*time.Second, func(c *Client) {
			for i := 0; i < 30; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
			start := c.Stats.BytesRead
			for i := 0; i < 30; i++ {
				if _, err := c.Search(key(i)); err != nil {
					t.Errorf("search: %v", err)
					return
				}
			}
			reads = c.Stats.BytesRead - start
		})
		if sb == 8 {
			read8 = reads
		} else {
			read16 = reads
		}
	}
	if read16 <= read8 {
		t.Fatalf("16B slots read %d bytes, 8B read %d; want amplification", read16, read8)
	}
}

func TestSpaceIsReplicated(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < 200; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		if c.Stats.BytesWritten < 3*c.Stats.ValidBytes {
			t.Errorf("replicated writes %d < 3x valid %d", c.Stats.BytesWritten, c.Stats.ValidBytes)
		}
	})
}
