// Package fusee implements the replication-based baseline Aceso is
// evaluated against (§2.3, §4.1): a FUSEE-style fully-disaggregated KV
// store. Fault tolerance comes from synchronously maintained index
// replicas (every write CASes all backup index slots before committing
// on the primary) and from writing every KV pair to n memory nodes —
// the two costs (IOPS-heavy small CASes, n× space) that motivate
// Aceso's hybrid design.
//
// The baseline shares the verb fabric, KV encoding and hashing with
// Aceso so comparisons isolate the fault-tolerance mechanism. The slot
// width is configurable (8 B as in FUSEE, or 16 B) to reproduce the
// "+SLOT" step of the factor analysis (Figure 13).
package fusee

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/racehash"
	"repro/internal/rdma"
)

// Errors. Each wraps the corresponding core error so callers match on
// one taxonomy regardless of the fault-tolerance mode
// (errors.Is(err, core.ErrNotFound) holds for fusee.ErrNotFound).
var (
	ErrNotFound         = fmt.Errorf("fusee: %w", core.ErrNotFound)
	ErrNoSpace          = fmt.Errorf("fusee: %w", core.ErrNoSpace)
	ErrRetriesExhausted = fmt.Errorf("fusee: %w", core.ErrRetriesExhausted)
)

const maxOpRetries = 1024

// Config parameterises the baseline.
type Config struct {
	// NumMNs is the memory-node count.
	NumMNs int
	// Replicas is the replication factor n (index replicas and KV
	// replicas alike); the paper compares against 3.
	Replicas int
	// SlotBytes is the index slot width: 8 (FUSEE) or 16 (the "+SLOT"
	// factor-analysis configuration).
	SlotBytes int
	// PartitionBytes is the per-partition index size (each MN hosts
	// Replicas partitions: its primary plus backups of predecessors).
	PartitionBytes uint64
	// BlockSize and BlocksPerMN size the KV block area.
	BlockSize   uint64
	BlocksPerMN int
	// CacheValues enables the FUSEE client cache (slot values only).
	CacheValues bool
}

// DefaultConfig mirrors the paper's baseline setup, scaled down.
func DefaultConfig() Config {
	return Config{
		NumMNs:         5,
		Replicas:       3,
		SlotBytes:      8,
		PartitionBytes: 1 << 20,
		BlockSize:      2 << 20,
		BlocksPerMN:    48,
		CacheValues:    true,
	}
}

// bucketSlots is the slot count per bucket; buckets are read with one
// RDMA_READ, so wider (16 B) slots double the bucket bytes — the read
// amplification the "+SLOT" step measures.
const bucketSlots = 8

func (c *Config) bucketBytes() uint64 { return uint64(bucketSlots * c.SlotBytes) }
func (c *Config) numBuckets() uint64  { return c.PartitionBytes / c.bucketBytes() }

// regionOff returns the offset of hosted partition region j on an MN.
func (c *Config) regionOff(j int) uint64 { return uint64(j) * c.PartitionBytes }

// blockOff returns the offset of block b on an MN.
func (c *Config) blockOff(b int) uint64 {
	return uint64(c.Replicas)*c.PartitionBytes + uint64(b)*c.BlockSize
}

// memBytes is the registered region size per MN.
func (c *Config) memBytes() uint64 {
	return c.blockOff(c.BlocksPerMN)
}

// replicaMN returns the MN hosting replica i of partition p.
func (c *Config) replicaMN(p, i int) int { return (p + i) % c.NumMNs }

// hostedRegion returns which region index of MN m holds partition p's
// replica, or -1.
func (c *Config) hostedRegion(m, p int) int {
	j := ((m-p)%c.NumMNs + c.NumMNs) % c.NumMNs
	if j < c.Replicas {
		return j
	}
	return -1
}

// Cluster wires the baseline onto a platform.
type Cluster struct {
	Cfg   Config
	pl    rdma.Platform
	nodes []rdma.NodeID

	mu      sync.Mutex
	nextBlk []int // bump allocator per MN
	nextCli uint16
	// Alloc accounting for the memory-distribution experiment.
	blockOwners [][]uint16

	// viewMu guards the failure view. There is no master: clients
	// mark MNs failed when a verb returns rdma.ErrNodeFailed (or a
	// harness calls FailMN directly) and fail over to surviving
	// replicas.
	viewMu sync.Mutex
	failed []bool
}

// NewCluster creates the baseline's memory nodes and servers.
func NewCluster(cfg Config, pl rdma.Platform) (*Cluster, error) {
	if cfg.Replicas < 1 || cfg.Replicas > cfg.NumMNs {
		return nil, fmt.Errorf("fusee: replicas %d out of range", cfg.Replicas)
	}
	if cfg.SlotBytes != 8 && cfg.SlotBytes != 16 {
		return nil, fmt.Errorf("fusee: slot bytes must be 8 or 16")
	}
	cl := &Cluster{Cfg: cfg, pl: pl, failed: make([]bool, cfg.NumMNs)}
	for i := 0; i < cfg.NumMNs; i++ {
		node := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: cfg.memBytes(), CPUCores: 1})
		cl.nodes = append(cl.nodes, node)
		cl.nextBlk = append(cl.nextBlk, 0)
		cl.blockOwners = append(cl.blockOwners, make([]uint16, cfg.BlocksPerMN))
		mn := i
		pl.SetHandler(node, func(method uint8, req []byte) ([]byte, time.Duration) {
			return cl.handle(mn, method, req)
		})
	}
	return cl, nil
}

const (
	methodAlloc uint8 = 1
	// methodKill is the admin fail-stop verb (wall-clock fabric only;
	// simulated harnesses call FailMN directly, as in core).
	methodKill uint8 = 2
)

// handle serves the baseline's RPCs: block allocation and the admin
// kill used by the CLI / TCP load harness.
func (cl *Cluster) handle(mn int, method uint8, req []byte) ([]byte, time.Duration) {
	if method == methodKill {
		// Acknowledge before crashing, as core's admin fail does: the
		// handler runs inside a transport goroutine the fail joins.
		go func() {
			time.Sleep(10 * time.Millisecond)
			cl.FailMN(mn)
		}()
		return []byte{0}, time.Microsecond
	}
	if method != methodAlloc {
		return []byte{1}, time.Microsecond
	}
	cli := binary.LittleEndian.Uint16(req)
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.nextBlk[mn] >= cl.Cfg.BlocksPerMN {
		return []byte{1}, 2 * time.Microsecond
	}
	b := cl.nextBlk[mn]
	cl.nextBlk[mn]++
	cl.blockOwners[mn][b] = cli
	var resp [5]byte
	resp[0] = 0
	binary.LittleEndian.PutUint32(resp[1:], uint32(b))
	return resp[:], 2 * time.Microsecond
}

// AllocatedBytes returns the total block bytes allocated across MNs
// (memory-distribution accounting, Figure 12).
func (cl *Cluster) AllocatedBytes() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	total := uint64(0)
	for _, n := range cl.nextBlk {
		total += uint64(n) * cl.Cfg.BlockSize
	}
	return total
}

// FailMN fail-stops logical MN mn: the view marks it dead and the
// platform drops its memory, so clients fail over to surviving
// replicas (there is no rebuild — replication keeps the data live).
func (cl *Cluster) FailMN(mn int) {
	cl.markFailed(mn)
	cl.pl.Fail(cl.nodes[mn])
}

// markFailed records a failure observed by a client (verb returned
// rdma.ErrNodeFailed) without touching the platform.
func (cl *Cluster) markFailed(mn int) {
	cl.viewMu.Lock()
	cl.failed[mn] = true
	cl.viewMu.Unlock()
}

// Failed reports whether MN mn is marked failed.
func (cl *Cluster) Failed(mn int) bool {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.failed[mn]
}

// MNState reports (failed, indexReady, blocksReady). The baseline has
// no tiered rebuild: a healthy MN is fully ready, a failed one never
// recovers (its replicas carry the data).
func (cl *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	f := cl.Failed(mn)
	return f, !f, !f
}

// NewClient allocates a client identity.
func (cl *Cluster) NewClient() *Client {
	cl.mu.Lock()
	cl.nextCli++
	id := cl.nextCli
	cl.mu.Unlock()
	return &Client{
		cl:    cl,
		id:    id,
		cache: make(map[string]*cacheEnt),
		open:  make(map[uint8][]*openBlock),
	}
}

// SpawnClient spawns fn as a client process on compute node cn.
func (cl *Cluster) SpawnClient(cn rdma.NodeID, name string, fn func(*Client)) *Client {
	cli := cl.NewClient()
	cl.pl.Spawn(cn, name, func(ctx rdma.Ctx) {
		cli.ctx = ctx
		fn(cli)
	})
	return cli
}

// cacheEnt caches the slot values (KV replica addresses) of a key; the
// baseline cache holds values only — it must re-read a bucket to
// validate (§3.5.1 contrasts this with Aceso's slot-address cache).
type cacheEnt struct {
	slotIdx int // bucket-relative slot index
	bucket  uint64
	vals    []uint64 // per replica, packed slot words
	haveAll bool     // vals holds every replica (filled at own commit)
	len     int      // KV class size (bytes)
}

type openBlock struct {
	mn   int
	idx  int
	next int
}

// Client is a FUSEE-style client.
type Client struct {
	cl  *Cluster
	ctx rdma.Ctx
	id  uint16

	cache map[string]*cacheEnt
	open  map[uint8][]*openBlock // per class: Replicas open blocks

	// Stats for harnesses.
	Stats struct {
		Ops          uint64
		CASIssued    uint64
		CASRetries   uint64
		ReadsIssued  uint64
		WritesIssued uint64
		BytesRead    uint64
		BytesWritten uint64
		ValidBytes   uint64 // net new valid payload written (first copy)
	}
}

// Attach binds the client to its process context.
func (c *Client) Attach(ctx rdma.Ctx) { c.ctx = ctx }

// Counters returns the client's verb counts (CAS, reads, writes) for
// harness accounting such as Figure 1(a)'s CAS-per-request rows.
func (c *Client) Counters() (cas, reads, writes uint64) {
	return c.Stats.CASIssued, c.Stats.ReadsIssued, c.Stats.WritesIssued
}

// Close is a no-op: the baseline batches no client-side state that
// must be flushed (interface parity with core's Client).
func (c *Client) Close() {}

// KillMN asks MN mn to fail-stop itself over the admin RPC (the
// wall-clock fabric's fault-injection surface; simulated harnesses
// call Cluster.FailMN directly).
func (c *Client) KillMN(mn int) error {
	if c.cl.Failed(mn) {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(c.cl.nodes[mn], methodKill, nil)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != 0 {
		return fmt.Errorf("fusee: kill rejected")
	}
	return nil
}

// noteErr records a node failure observed through err and reports
// whether the caller should fail over (retry on a surviving replica).
func (c *Client) noteErr(mn int, err error) bool {
	if errors.Is(err, rdma.ErrNodeFailed) {
		c.cl.markFailed(mn)
		return true
	}
	return false
}

// liveReplica returns the first surviving replica index of partition p
// (the acting primary after failures).
func (c *Client) liveReplica(p int) (int, bool) {
	cfg := &c.cl.Cfg
	for i := 0; i < cfg.Replicas; i++ {
		if !c.cl.Failed(cfg.replicaMN(p, i)) {
			return i, true
		}
	}
	return 0, false
}

// liveReplicas returns the surviving replica indices of partition p in
// replica order (acting primary first).
func (c *Client) liveReplicas(p int) []int {
	cfg := &c.cl.Cfg
	out := make([]int, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		if !c.cl.Failed(cfg.replicaMN(p, i)) {
			out = append(out, i)
		}
	}
	return out
}

// refreshView probes every not-yet-failed MN with a minimal read and
// marks the dead ones. Used after an ambiguous batched-verb failure
// (the batch error does not say which node died).
func (c *Client) refreshView() {
	var b [8]byte
	for mn := 0; mn < c.cl.Cfg.NumMNs; mn++ {
		if c.cl.Failed(mn) {
			continue
		}
		c.Stats.ReadsIssued++
		c.Stats.BytesRead += 8
		if err := c.ctx.Read(b[:], rdma.GlobalAddr{Node: c.cl.nodes[mn]}); err != nil {
			c.noteErr(mn, err)
		}
	}
}

// errAllReplicasFailed reports every replica of a partition dead.
func errAllReplicasFailed(p int) error {
	return fmt.Errorf("fusee: all replicas of partition %d failed: %w", p, rdma.ErrNodeFailed)
}

// slotWord packs a slot: fingerprint in the top byte, 48-bit address
// below (the 8-byte atomic word layout FUSEE uses).
func slotWord(fp uint8, addr uint64) uint64 {
	return uint64(fp)<<56 | addr&((1<<48)-1)
}

func slotFP(w uint64) uint8    { return uint8(w >> 56) }
func slotAddr(w uint64) uint64 { return w & ((1 << 48) - 1) }

// slotOff returns the offset of slot s of bucket b within a hosted
// partition region.
func (c *Client) slotOff(region int, bucket uint64, s int) uint64 {
	cfg := &c.cl.Cfg
	return cfg.regionOff(region) + bucket*cfg.bucketBytes() + uint64(s*cfg.SlotBytes)
}

// buckets returns the key's two candidate buckets.
func (c *Client) buckets(h uint64) (uint64, uint64) {
	return racehash.BucketPair(h, c.cl.Cfg.numBuckets())
}

// readBucketPair reads the key's two buckets from one replica of its
// partition.
func (c *Client) readBucketPair(p int, replica int, b1, b2 uint64) ([]byte, []byte, error) {
	cfg := &c.cl.Cfg
	mn := cfg.replicaMN(p, replica)
	region := cfg.hostedRegion(mn, p)
	node := c.cl.nodes[mn]
	bb := cfg.bucketBytes()
	buf1 := make([]byte, bb)
	buf2 := make([]byte, bb)
	ops := []rdma.Op{
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b1, 0)}, Buf: buf1},
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b2, 0)}, Buf: buf2},
	}
	c.Stats.ReadsIssued += 2
	c.Stats.BytesRead += 2 * bb
	if err := c.ctx.Batch(ops); err != nil {
		return nil, nil, err
	}
	return buf1, buf2, nil
}

// scan finds fp matches in a bucket's raw bytes.
func (c *Client) scan(fp uint8, buf []byte) []int {
	var out []int
	for s := 0; s < bucketSlots; s++ {
		w := binary.LittleEndian.Uint64(buf[s*c.cl.Cfg.SlotBytes:])
		if w != 0 && slotFP(w) == fp {
			out = append(out, s)
		}
	}
	return out
}

// freeSlot finds the first empty slot in a bucket's raw bytes, or -1.
func (c *Client) freeSlot(buf []byte) int {
	for s := 0; s < bucketSlots; s++ {
		if binary.LittleEndian.Uint64(buf[s*c.cl.Cfg.SlotBytes:]) == 0 {
			return s
		}
	}
	return -1
}

// readKVAt reads and decodes a KV replica. The speculative size is
// clamped to the block boundary (KV pairs never span blocks); when the
// clamped read turns out shorter than the pair, the true size is taken
// from the header and the pair re-read.
func (c *Client) readKVAt(packed uint64, size int) (*layout.KV, error) {
	cfg := &c.cl.Cfg
	mn, off := layout.UnpackAddr(packed)
	base := cfg.blockOff(0)
	if off >= base {
		rel := (off - base) % cfg.BlockSize
		if remain := int(cfg.BlockSize - rel); size > remain {
			size = remain
		}
	}
	if size < 64 {
		size = 64
	}
	buf := make([]byte, size)
	c.Stats.ReadsIssued++
	c.Stats.BytesRead += uint64(size)
	if err := c.ctx.Read(buf, rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: off}); err != nil {
		c.noteErr(int(mn), err)
		return nil, err
	}
	if buf[0] == 0 {
		return nil, nil // never written
	}
	// The slot's true size comes from the header; the speculative read
	// may be longer (decode the class-size prefix) or shorter (re-read
	// at the true size).
	keyLen := int(binary.LittleEndian.Uint16(buf[2:]))
	valLen := int(binary.LittleEndian.Uint32(buf[4:]))
	real := layout.KVClassSize(keyLen, valLen)
	if real > int(cfg.BlockSize) {
		return nil, layout.ErrTornKV
	}
	if real <= size {
		return layout.DecodeKV(buf[:real])
	}
	buf = make([]byte, real)
	c.Stats.ReadsIssued++
	c.Stats.BytesRead += uint64(real)
	if err := c.ctx.Read(buf, rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: off}); err != nil {
		c.noteErr(int(mn), err)
		return nil, err
	}
	return layout.DecodeKV(buf)
}

// readKVFailover reads the KV a slot word points at; when that copy's
// MN has failed it chases the surviving replicas' slot words for the
// same (bucket, slot) position and reads their copies instead. This is
// the baseline's whole recovery story: any surviving copy serves the
// data, no rebuild.
func (c *Client) readKVFailover(p int, bucket uint64, s int, w uint64, size int) (*layout.KV, error) {
	kv, err := c.readKVAt(slotAddr(w), size)
	if err == nil || !errors.Is(err, rdma.ErrNodeFailed) {
		return kv, err
	}
	cfg := &c.cl.Cfg
	for _, ri := range c.liveReplicas(p) {
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		var wb [8]byte
		c.Stats.ReadsIssued++
		c.Stats.BytesRead += 8
		if rerr := c.ctx.Read(wb[:], rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, s)}); rerr != nil {
			c.noteErr(mn, rerr)
			continue
		}
		rw := binary.LittleEndian.Uint64(wb[:])
		if rw == 0 || slotFP(rw) != slotFP(w) {
			continue
		}
		kv, err = c.readKVAt(slotAddr(rw), size)
		if err == nil {
			return kv, nil
		}
	}
	return nil, err
}

// Search returns the value of key, or ErrNotFound. Reads go to the
// primary replica; the client cache stores slot values only, so a hit
// still re-reads the primary bucket to validate (unlike Aceso's
// slot-address cache).
func (c *Client) Search(key []byte) ([]byte, error) {
	c.Stats.Ops++
	h := racehash.Hash(key)
	p := racehash.HomeMN(h, c.cl.Cfg.NumMNs)
	fp := racehash.Fingerprint(h)
	b1, b2 := c.buckets(h)

	if ent, ok := c.cache[string(key)]; ok && c.cl.Cfg.CacheValues {
		if val, err := c.cachedRead(key, ent, p); err == nil || errors.Is(err, ErrNotFound) {
			return val, err
		}
	}
	for attempt := 0; attempt < maxOpRetries; attempt++ {
		ri, ok := c.liveReplica(p)
		if !ok {
			return nil, errAllReplicasFailed(p)
		}
		buf1, buf2, err := c.readBucketPair(p, ri, b1, b2)
		if err != nil {
			if c.noteErr(c.cl.Cfg.replicaMN(p, ri), err) {
				continue // fail over to the next surviving replica
			}
			return nil, err
		}
		for bi, buf := range [][]byte{buf1, buf2} {
			for _, s := range c.scan(fp, buf) {
				w := binary.LittleEndian.Uint64(buf[s*c.cl.Cfg.SlotBytes:])
				bucket := b1
				if bi == 1 {
					bucket = b2
				}
				kv, err := c.readKVFailover(p, bucket, s, w, c.guessSize(key))
				if err != nil || kv == nil {
					continue
				}
				if !bytes.Equal(kv.Key, key) {
					continue
				}
				if ri == 0 {
					c.fillCache(key, bucket, s, w, layout.KVClassSize(len(kv.Key), len(kv.Val)))
				}
				if kv.Tombstone {
					return nil, ErrNotFound
				}
				return append([]byte(nil), kv.Val...), nil
			}
		}
		return nil, ErrNotFound
	}
	return nil, ErrRetriesExhausted
}

// cachedRead validates a cache hit. FUSEE's cache stores slot values
// (KV addresses) only — not slot locations — so validating a cached
// read means re-reading both candidate buckets of the key alongside
// the speculative KV read (the "unnecessary index queries" Aceso's
// slot-address cache eliminates, §3.5.1).
func (c *Client) cachedRead(key []byte, ent *cacheEnt, p int) ([]byte, error) {
	cfg := &c.cl.Cfg
	mn := cfg.replicaMN(p, 0)
	kmn, koff := layout.UnpackAddr(slotAddr(ent.vals[0]))
	if c.cl.Failed(mn) || c.cl.Failed(int(kmn)) {
		// The cache validates against the primary; after a failure the
		// caller takes the search path, which fails over.
		return nil, errors.New("fusee: stale cache")
	}
	region := cfg.hostedRegion(mn, p)
	node := c.cl.nodes[mn]
	h := racehash.Hash(key)
	b1, b2 := c.buckets(h)
	kvBuf := make([]byte, ent.len)
	bkt1 := make([]byte, cfg.bucketBytes())
	bkt2 := make([]byte, cfg.bucketBytes())
	ops := []rdma.Op{
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: c.cl.nodes[kmn], Off: koff}, Buf: kvBuf},
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b1, 0)}, Buf: bkt1},
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b2, 0)}, Buf: bkt2},
	}
	c.Stats.ReadsIssued += 3
	c.Stats.BytesRead += uint64(ent.len) + 2*cfg.bucketBytes()
	if err := c.ctx.Batch(ops); err != nil {
		return nil, err
	}
	bktBuf := bkt1
	if ent.bucket == b2 {
		bktBuf = bkt2
	}
	cur := binary.LittleEndian.Uint64(bktBuf[ent.slotIdx*cfg.SlotBytes:])
	if cur != ent.vals[0] {
		// Slot changed: chase the new value once.
		if cur == 0 || slotFP(cur) != racehash.Fingerprint(racehash.Hash(key)) {
			return nil, errors.New("fusee: stale cache")
		}
		ent.vals[0] = cur
		ent.haveAll = false
		kv, err := c.readKVAt(slotAddr(cur), ent.len)
		if err != nil || kv == nil || !bytes.Equal(kv.Key, key) {
			return nil, errors.New("fusee: stale cache")
		}
		if kv.Tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), kv.Val...), nil
	}
	kv, err := layout.DecodeKV(kvBuf)
	if err != nil || kv == nil || !bytes.Equal(kv.Key, key) {
		return nil, errors.New("fusee: stale cache")
	}
	if kv.Tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), kv.Val...), nil
}

func (c *Client) fillCache(key []byte, bucket uint64, slot int, primaryWord uint64, size int) {
	if !c.cl.Cfg.CacheValues {
		return
	}
	vals := make([]uint64, c.cl.Cfg.Replicas)
	vals[0] = primaryWord
	c.cache[string(key)] = &cacheEnt{bucket: bucket, slotIdx: slot, vals: vals, len: size}
}

func (c *Client) guessSize(key []byte) int {
	if ent, ok := c.cache[string(key)]; ok && ent.len > 0 {
		return ent.len
	}
	return 1024 + 64 // workload default; oversized reads self-correct
}

// Insert stores a key-value pair (upsert).
func (c *Client) Insert(key, val []byte) error { return c.write(key, val, false) }

// Update overwrites a key's value (upsert).
func (c *Client) Update(key, val []byte) error { return c.write(key, val, false) }

// Delete removes a key by committing a replicated tombstone.
func (c *Client) Delete(key []byte) error { return c.write(key, nil, true) }

// write implements FUSEE's replicated write: write the KV to n MNs
// (one doorbell batch), CAS the n−1 backup index slots (one batch),
// then CAS the primary slot to commit — at least n CAS operations per
// write, the cost Figure 1(a) quantifies.
func (c *Client) write(key, val []byte, tombstone bool) error {
	c.Stats.Ops++
	h := racehash.Hash(key)
	p := racehash.HomeMN(h, c.cl.Cfg.NumMNs)
	fp := racehash.Fingerprint(h)
	b1, b2 := c.buckets(h)
	cfg := &c.cl.Cfg
	r := cfg.Replicas

	for attempt := 0; attempt < maxOpRetries; attempt++ {
		// The acting primary is the first surviving replica; after
		// failures the remaining replicas keep serializing writes.
		live := c.liveReplicas(p)
		if len(live) == 0 {
			return errAllReplicasFailed(p)
		}
		acting := live[0]

		// Locate the slot and its per-replica old words, via the cache
		// when it holds the full replica set (warm after this client's
		// own commit), else by reading buckets and replica slots.
		oldWords := make([]uint64, r)
		var bucket uint64
		var slotIdx int
		found := false
		located := false
		if ent, ok := c.cache[string(key)]; ok && cfg.CacheValues && ent.haveAll && acting == 0 {
			copy(oldWords, ent.vals)
			bucket, slotIdx = ent.bucket, ent.slotIdx
			found, located = true, true
		}
		if !located {
			buf1, buf2, err := c.readBucketPair(p, acting, b1, b2)
			if err != nil {
				if c.noteErr(cfg.replicaMN(p, acting), err) {
					continue // fail over to the next surviving replica
				}
				return err
			}
			for bi, buf := range [][]byte{buf1, buf2} {
				for _, s := range c.scan(fp, buf) {
					w := binary.LittleEndian.Uint64(buf[s*cfg.SlotBytes:])
					bkt := b1
					if bi == 1 {
						bkt = b2
					}
					kv, err := c.readKVFailover(p, bkt, s, w, c.guessSize(key))
					if err != nil || kv == nil || !bytes.Equal(kv.Key, key) {
						continue
					}
					found = true
					oldWords[acting] = w
					slotIdx = s
					bucket = bkt
					break
				}
				if found {
					break
				}
			}
			if !found {
				if tombstone {
					return ErrNotFound
				}
				// Deterministic per-key bucket preference balances the
				// pair while keeping racing inserters on the same slot.
				fBuf, sBuf, fB, sB := buf1, buf2, b1, b2
				if h>>32&1 == 1 {
					fBuf, sBuf, fB, sB = buf2, buf1, b2, b1
				}
				if s := c.freeSlot(fBuf); s >= 0 {
					bucket, slotIdx = fB, s
				} else if s := c.freeSlot(sBuf); s >= 0 {
					bucket, slotIdx = sB, s
				} else {
					return fmt.Errorf("fusee: buckets full for key %q", key)
				}
			}
			// Read the other surviving replicas' current words for the
			// slot.
			if len(live) > 1 {
				ops := make([]rdma.Op, 0, len(live)-1)
				bufs := make(map[int][]byte, len(live)-1)
				for _, i := range live[1:] {
					mn := cfg.replicaMN(p, i)
					region := cfg.hostedRegion(mn, p)
					buf := make([]byte, 8)
					bufs[i] = buf
					ops = append(ops, rdma.Op{Kind: rdma.OpRead,
						Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
						Buf:  buf})
				}
				c.Stats.ReadsIssued += uint64(len(ops))
				c.Stats.BytesRead += uint64(len(ops) * 8)
				if err := c.ctx.Batch(ops); err != nil {
					if errors.Is(err, rdma.ErrNodeFailed) {
						c.refreshView()
						continue
					}
					return err
				}
				for _, i := range live[1:] {
					oldWords[i] = binary.LittleEndian.Uint64(bufs[i])
				}
			}
		}

		// Write the KV replicas (one batch, n writes).
		size := layout.KVClassSize(len(key), len(val))
		classUnits := uint8(size / 64)
		addrs, err := c.placeReplicas(key, val, tombstone, classUnits)
		if err != nil {
			if errors.Is(err, rdma.ErrNodeFailed) {
				// An open block's MN died mid-write: drop the class's
				// blocks and reallocate on survivors.
				delete(c.open, classUnits)
				c.refreshView()
				continue
			}
			return err
		}
		// CAS the backups (one batch), then the primary (commit).
		newWords := make([]uint64, r)
		for i := 0; i < r; i++ {
			newWords[i] = slotWord(fp, addrs[i])
		}
		// Backup CASes run as sequential rounds: FUSEE's conflict
		// resolution selects a winner from each round's results before
		// proceeding, so a backup CAS cannot be pipelined behind the
		// next (§2.4: "Based on the CAS results, one winner is
		// selected...").
		ok := true
		casFailover := false
		for _, i := range live[1:] {
			if !ok {
				break
			}
			mn := cfg.replicaMN(p, i)
			region := cfg.hostedRegion(mn, p)
			c.Stats.CASIssued++
			prev, err := c.ctx.CAS(
				rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
				oldWords[i], newWords[i])
			if err != nil {
				if c.noteErr(mn, err) {
					casFailover = true
					break
				}
				return err
			}
			if prev != oldWords[i] {
				ok = false
			}
		}
		if casFailover {
			continue
		}
		if ok {
			mn := cfg.replicaMN(p, acting)
			region := cfg.hostedRegion(mn, p)
			c.Stats.CASIssued++
			prev, err := c.ctx.CAS(
				rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
				oldWords[acting], newWords[acting])
			if err != nil {
				if c.noteErr(mn, err) {
					continue
				}
				return err
			}
			if prev == oldWords[acting] {
				if cfg.CacheValues && acting == 0 {
					c.cache[string(key)] = &cacheEnt{bucket: bucket, slotIdx: slotIdx,
						vals: newWords, haveAll: true, len: size}
				}
				if !found {
					c.Stats.ValidBytes += uint64(size)
				}
				return nil
			}
		}
		// Conflict: another client won on some replica. Re-read and
		// retry with bounded backoff so losers do not starve under a
		// thundering herd on a hot key (FUSEE's conflict-resolution
		// winner selection plays this arbitration role).
		c.Stats.CASRetries++
		delete(c.cache, string(key))
		shift := attempt
		if shift > 6 {
			shift = 6
		}
		c.ctx.Sleep(time.Duration(1+int(c.id)%4) * time.Microsecond << shift)
	}
	return ErrRetriesExhausted
}

// placeReplicas writes the encoded KV to one open block per replica
// position (n MNs) in a single doorbell batch and returns the packed
// addresses, primary first.
func (c *Client) placeReplicas(key, val []byte, tombstone bool, classUnits uint8) ([]uint64, error) {
	cfg := &c.cl.Cfg
	r := cfg.Replicas
	obs, err := c.getBlocks(classUnits)
	if err != nil {
		return nil, err
	}
	size := int(classUnits) * 64
	buf := make([]byte, size)
	layout.EncodeKV(buf, key, val, 1, 1, tombstone)
	addrs := make([]uint64, r)
	ops := make([]rdma.Op, r)
	for i, ob := range obs {
		off := cfg.blockOff(ob.idx) + uint64(ob.next*size)
		ob.next++
		addrs[i] = layout.PackAddr(uint16(ob.mn), off)
		ops[i] = rdma.Op{Kind: rdma.OpWrite, Addr: rdma.GlobalAddr{Node: c.cl.nodes[ob.mn], Off: off}, Buf: buf}
	}
	c.Stats.WritesIssued += uint64(r)
	c.Stats.BytesWritten += uint64(r * size)
	if err := c.ctx.Batch(ops); err != nil {
		return nil, err
	}
	// Retire filled blocks.
	full := false
	for _, ob := range obs {
		if (ob.next+1)*size > int(cfg.BlockSize) {
			full = true
		}
	}
	if full {
		delete(c.open, classUnits)
	}
	return addrs, nil
}

// getBlocks returns (allocating if needed) the client's n open blocks
// for a size class, one per replica position on distinct MNs.
func (c *Client) getBlocks(classUnits uint8) ([]*openBlock, error) {
	if obs, ok := c.open[classUnits]; ok {
		return obs, nil
	}
	cfg := &c.cl.Cfg
	r := cfg.Replicas
	base := int(c.id)
	var req [2]byte
	binary.LittleEndian.PutUint16(req[:], c.id)
	obs := make([]*openBlock, 0, r)
	used := map[int]bool{}
	for i := 0; i < r; i++ {
		allocated := false
		// First pass wants copies on distinct MNs; when failures leave
		// fewer live MNs than replicas, the relaxed pass reuses live
		// MNs (distinct blocks) rather than refusing writes.
		for _, distinct := range []bool{true, false} {
			for try := 0; try < cfg.NumMNs && !allocated; try++ {
				mn := (base + i + try) % cfg.NumMNs
				if (distinct && used[mn]) || c.cl.Failed(mn) {
					continue
				}
				resp, err := c.ctx.RPC(c.cl.nodes[mn], methodAlloc, req[:])
				if err != nil {
					c.noteErr(mn, err)
					continue
				}
				if len(resp) == 0 || resp[0] != 0 {
					continue
				}
				idx := int(binary.LittleEndian.Uint32(resp[1:]))
				obs = append(obs, &openBlock{mn: mn, idx: idx})
				used[mn] = true
				allocated = true
			}
			if allocated {
				break
			}
		}
		if !allocated {
			return nil, ErrNoSpace
		}
	}
	c.open[classUnits] = obs
	return obs, nil
}
