package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/rdma"
)

// TestClientCleanRestartAdoptsBlocks restarts a client identity and
// checks that it re-adopts its unfilled blocks (no leaked slots) and
// can keep writing.
func TestClientCleanRestartAdoptsBlocks(t *testing.T) {
	tc := newTestCluster(t, nil)
	cli := tc.cl.NewClient()
	done := false
	cn := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn, "life1", func(ctx rdmaCtx) {
		cli.Attach(ctx)
		for i := 0; i < 50; i++ {
			if err := cli.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		cli.SimulateCrash()
		done = true
	})
	waitDone(t, tc, &done)

	var adopted int
	done = false
	cn2 := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn2, "life2", func(ctx rdmaCtx) {
		if err := cli.Restart(ctx); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		for _, ob := range cli.open {
			adopted += len(ob.slots)
		}
		for i := 50; i < 100; i++ {
			if err := cli.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("post-restart insert: %v", err)
				return
			}
		}
		for i := 0; i < 100; i++ {
			got, err := cli.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("post-restart search %d: %v", i, err)
				return
			}
		}
		done = true
	})
	waitDone(t, tc, &done)
	if adopted == 0 {
		t.Error("restart adopted no free slots (leak)")
	}
	tc.run(50 * time.Millisecond)
	stripeParityInvariant(t, tc)
}

// TestClientCrashTornWriteRepaired simulates a CN crash in the middle
// of a KV+delta batch: the data slot landed torn and only one delta
// copy landed. Restart must roll the slot back and restore the
// data/delta invariant.
func TestClientCrashTornWriteRepaired(t *testing.T) {
	tc := newTestCluster(t, nil)
	cli := tc.cl.NewClient()
	var ob *openBlock
	done := false
	cn := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn, "life1", func(ctx rdmaCtx) {
		cli.Attach(ctx)
		for i := 0; i < 30; i++ {
			if err := cli.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		for _, b := range cli.open {
			ob = b
		}
		cli.SimulateCrash()
		done = true
	})
	waitDone(t, tc, &done)
	if ob == nil || len(ob.slots) == 0 {
		t.Fatal("no open block with free slots to corrupt")
	}

	// Forge the crash artifacts directly in pool memory: a torn KV in
	// the next free slot (leading fence written, trailing fence not)
	// and a delta written to only the first parity MN.
	l := tc.cl.L
	slot := ob.slots[0]
	lo := l.BlockOff(ob.idx) + uint64(slot*ob.slotSize)
	node, _ := tc.cl.view.nodeOf(ob.mn)
	mem := tc.pl.DirectMemory(node)
	torn := make([]byte, ob.slotSize)
	layout.EncodeKV(torn, []byte("torn-key"), bytes.Repeat([]byte("T"), 40), 7, 1, false)
	torn[len(torn)-1] = 0 // crash before the tail landed
	copy(mem[lo:], torn)
	if len(ob.deltas) > 0 {
		dt := ob.deltas[0]
		dnode, _ := tc.cl.view.nodeOf(dt.mn)
		dmem := tc.pl.DirectMemory(dnode)
		full := make([]byte, ob.slotSize)
		layout.EncodeKV(full, []byte("torn-key"), bytes.Repeat([]byte("T"), 40), 7, 1, false)
		copy(dmem[dt.blockOff+uint64(slot*ob.slotSize):], full)
	}

	done = false
	cn2 := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn2, "life2", func(ctx rdmaCtx) {
		if err := cli.Restart(ctx); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		// All committed keys intact.
		for i := 0; i < 30; i++ {
			got, err := cli.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("search %d after repair: %v", i, err)
				return
			}
		}
		done = true
	})
	waitDone(t, tc, &done)

	// The torn slot must be rolled back to zero on the data MN and on
	// every delta copy.
	for i := 0; i < ob.slotSize; i++ {
		if mem[lo+uint64(i)] != 0 {
			t.Fatalf("torn data slot not rolled back (byte %d)", i)
		}
	}
	for _, dt := range ob.deltas {
		dnode, _ := tc.cl.view.nodeOf(dt.mn)
		dmem := tc.pl.DirectMemory(dnode)
		base := dt.blockOff + uint64(slot*ob.slotSize)
		for i := 0; i < ob.slotSize; i++ {
			if dmem[base+uint64(i)] != 0 {
				t.Fatalf("stray delta not cleared (byte %d)", i)
			}
		}
	}
	tc.run(50 * time.Millisecond)
	stripeParityInvariant(t, tc)
}

// TestMixedCrash: a CN crash followed quickly by an MN crash (§3.4.3):
// restart clients first, then MN recovery, then verify everything.
func TestMixedCrash(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	cli := tc.cl.NewClient()
	expect := make(map[int][]byte)
	done := false
	cn := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn, "life1", func(ctx rdmaCtx) {
		cli.Attach(ctx)
		for i := 0; i < 120; i++ {
			v := val(i, 0)
			if err := cli.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
		cli.SimulateCrash()
		done = true
	})
	waitDone(t, tc, &done)
	tc.run(2 * tc.cl.Cfg.CkptInterval)

	// Restart the client, then crash an MN while it writes more.
	done = false
	cn2 := tc.pl.AddComputeNode()
	tc.pl.Spawn(cn2, "life2", func(ctx rdmaCtx) {
		if err := cli.Restart(ctx); err != nil {
			t.Errorf("restart: %v", err)
			return
		}
		for i := 120; i < 180; i++ {
			v := val(i, 1)
			if err := cli.Insert(key(i), v); err != nil {
				t.Errorf("post-restart insert: %v", err)
				return
			}
			expect[i] = v
		}
		done = true
	})
	tc.run(time.Millisecond)
	tc.cl.FailMN(2)
	waitDone(t, tc, &done)
	for i := 0; i < 20000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(2); ready {
			break
		}
	}
	tc.verifyAll(t, expect)
}

// waitDone advances virtual time until *flag or a deadline.
func waitDone(t *testing.T, tc *testCluster, flag *bool) {
	t.Helper()
	for i := 0; i < 120000 && !*flag; i++ {
		tc.run(time.Millisecond)
	}
	if !*flag {
		t.Fatal("virtual deadline waiting for process")
	}
}

// rdmaCtx aliases the process context type for test readability.
type rdmaCtx = rdma.Ctx
