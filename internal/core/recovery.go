package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/racehash"
	"repro/internal/rdma"
)

// RecoveryReport breaks an MN recovery down into the stages of
// Table 2: reading the metadata replica, reading the latest index
// checkpoint, decoding new local blocks, reading new remote blocks,
// scanning their KV pairs, and decoding old local blocks.
type RecoveryReport struct {
	MN          int
	CkptVersion uint64

	ReadMeta         time.Duration
	ReadCkpt         time.Duration
	RecoverLBlock    time.Duration
	LBlockCount      int
	ReadRBlock       time.Duration
	RBlockCount      int
	ScanKV           time.Duration
	KVCount          int
	IndexDone        time.Duration // tier-2 complete: functionality restored
	RecoverOldLBlock time.Duration
	OldLBlockCount   int
	Total            time.Duration
}

// runRecovery performs tiered recovery of logical MN mn on the calling
// process's (spare) node: Meta Area first, then Index Area — at which
// point writes resume at full speed and reads in degraded mode — and
// finally the Block Area (§3.4.1).
func runRecovery(ctx rdma.Ctx, cl *Cluster, mn int) *RecoveryReport {
	rep := &RecoveryReport{MN: mn}
	l := cl.L
	mem := ctx.LocalMem()
	start := ctx.Now()

	// Recovery decode runs through its own erasure worker pool on the
	// replacement node's EC cores (the same cores the replacement
	// server's pool will use once it starts — UseCPU serialises shared
	// cores, so the accounting stays honest if tier-3 decode overlaps
	// the live encoder). The tally folds into the server's counters at
	// the end, since most decoding happens before the server exists.
	ecw := 0
	if rdma.IsVirtual(cl.pl) {
		ecw = cl.Cfg.ecWorkers()
	}
	ec := newECPool(ecw)
	defer ec.close()
	for i := 0; i < ec.workers; i++ {
		core := rdma.CoreECWorker(cl.Cfg.ckptWorkers(), i)
		cl.pl.Spawn(ctx.Node(), fmt.Sprintf("recover-ecworker%d", i), ec.workerLoop(core))
	}
	tally := &ecTally{}

	// abandoned reports that this node died or was re-assigned while
	// recovery ran; the master retries on another spare.
	abandoned := func() bool {
		return cl.pl.Memory(ctx.Node()) == nil || !cl.view.nodeIs(mn, ctx.Node())
	}

	// --- Tier 1: Meta Area (replica read) ---
	for r := 0; r < l.Cfg.MetaReplicas; r++ {
		host := l.MetaReplicaHostOf(mn, r)
		if _, alive := cl.view.nodeOf(host); !alive {
			continue
		}
		slot := l.MetaReplicaSlotFor(host, mn)
		if err := readChunked(ctx, cl, host, l.MetaReplicaOff(slot), mem[l.MetaOff():l.MetaOff()+l.MetaSize()]); err == nil {
			break
		}
	}
	rep.ReadMeta = ctx.Now() - start
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.meta", MN: mn, Dur: rep.ReadMeta})
	reconcileDeltaRecords(cl, mn, mem)

	// --- Tier 2: Index Area ---
	t := ctx.Now()
	ckptVer := uint64(0)
	gotCkpt := false
	for h := 0; h < l.Cfg.CkptHosts && !gotCkpt; h++ {
		host := l.CkptHostOf(mn, h)
		if _, alive := cl.view.nodeOf(host); !alive {
			continue
		}
		slot := l.CkptSlotFor(host, mn)
		// The host's recv core keeps applying checkpoint rounds while we
		// read, so a single pass can observe a torn image. Sample the
		// version word before and after the bulk read and accept only a
		// matching pair (the word is bumped once per fully-applied
		// round); retry a few times under churn.
		for attempt := 0; attempt < 3; attempt++ {
			verBefore, ok := readCkptVersion(ctx, cl, host, slot)
			if !ok {
				break
			}
			if err := readChunked(ctx, cl, host, l.CkptCopyOff(slot), mem[:l.Cfg.IndexBytes]); err != nil {
				break
			}
			verAfter, ok := readCkptVersion(ctx, cl, host, slot)
			if !ok {
				break
			}
			if verBefore == verAfter {
				ckptVer = verAfter
				gotCkpt = true
				break
			}
		}
	}
	if !gotCkpt {
		// No host produced a consistent copy: fall back to an empty
		// index at version 0, which classifies every DATA block as
		// "new" below and rebuilds the index purely from the KV scan.
		for i := range mem[:l.Cfg.IndexBytes] {
			mem[i] = 0
		}
		ckptVer = 0
	}
	rep.CkptVersion = ckptVer
	binary.LittleEndian.PutUint64(mem[l.IndexVersionOff():], ckptVer+1)
	rep.ReadCkpt = ctx.Now() - t
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.ckpt", MN: mn, Dur: rep.ReadCkpt,
		Note: fmt.Sprintf("version=%d", ckptVer)})

	// Classify this MN's blocks from the recovered records.
	var newLocal, oldLocal []int
	recovered := make(map[int]bool)
	for b := 0; b < l.Cfg.BlocksPerMN(); b++ {
		off := l.RecordOff(b)
		rec := layout.DecodeRecord(mem[off : off+layout.RecordSize])
		if rec.Role != layout.RoleData {
			continue
		}
		if rec.IndexVersion == 0 || rec.IndexVersion >= ckptVer {
			newLocal = append(newLocal, b)
		} else {
			oldLocal = append(oldLocal, b)
		}
	}

	// Decode new local blocks (pipelined reads + XOR, §3.4.1 remark 1).
	t = ctx.Now()
	recoverBlocks(ctx, cl, mn, newLocal, recovered, ec, tally)
	rep.LBlockCount = len(newLocal)
	rep.RecoverLBlock = ctx.Now() - t
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.lblocks", MN: mn, Dur: rep.RecoverLBlock,
		Note: fmt.Sprintf("blocks=%d", rep.LBlockCount)})

	// Read new remote blocks.
	t = ctx.Now()
	type remoteBlock struct {
		mn    int
		idx   int
		class uint8
		data  []byte
	}
	var remotes []remoteBlock
	recArea := make([]byte, uint64(l.Cfg.BlocksPerMN())*layout.RecordSize)
	for j := 0; j < l.Cfg.NumMNs; j++ {
		if j == mn {
			continue
		}
		_, alive := cl.view.nodeOf(j)
		if alive {
			if err := readChunked(ctx, cl, j, l.RecordOff(0), recArea); err != nil {
				continue
			}
		} else {
			// Double failure: MN j is down too. Its recent blocks can
			// still carry the only copies of KVs homed on this index
			// (and possibly this MN's lost checkpoint), so enumerate
			// them from j's meta replica and decode them from stripe
			// survivors.
			if !readMetaReplicaRecords(ctx, cl, j, recArea) {
				continue
			}
		}
		for b := 0; b < l.Cfg.BlocksPerMN(); b++ {
			rec := layout.DecodeRecord(recArea[uint64(b)*layout.RecordSize:])
			if rec.Role != layout.RoleData || (rec.IndexVersion != 0 && rec.IndexVersion < ckptVer) {
				continue
			}
			data := make([]byte, l.Cfg.BlockSize)
			if alive {
				if err := readChunked(ctx, cl, j, l.BlockOff(b), data); err != nil {
					continue
				}
			} else {
				if b >= l.Cfg.StripeRows {
					continue // pool blocks hold no indexed KVs
				}
				f := fetchStripe(ctx, cl, j, b)
				if !f.ok {
					continue
				}
				out, ok := reconstructLostBlock(ctx, cl, j, b, f, ec, tally)
				if !ok {
					continue
				}
				copy(data, out)
			}
			remotes = append(remotes, remoteBlock{mn: j, idx: b, class: rec.SizeClass, data: data})
		}
	}
	rep.RBlockCount = len(remotes)
	rep.ReadRBlock = ctx.Now() - t
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.rblocks", MN: mn, Dur: rep.ReadRBlock,
		Note: fmt.Sprintf("blocks=%d", rep.RBlockCount)})
	if abandoned() {
		return nil
	}

	// Scan KV pairs of every new block and keep, per key homed on this
	// MN, the candidate with the highest slot version (§3.2.2).
	t = ctx.Now()
	type candidate struct {
		version uint64
		packed  uint64
		class   uint8
		key     []byte
	}
	best := make(map[string]candidate)
	scanned := make(map[uint64]*layout.KV) // packed addr -> decoded KV
	scanBlock := func(owner, idx int, class uint8, data []byte) {
		slotSize := int(class) * 64
		if slotSize == 0 {
			return
		}
		for s := 0; s+slotSize <= len(data); s += slotSize {
			kv, err := layout.DecodeKV(data[s : s+slotSize])
			if err != nil || kv == nil || kv.SlotVersion == layout.InvalidVersion {
				continue
			}
			rep.KVCount++
			packed := layout.PackAddr(uint16(owner), l.BlockOff(idx)+uint64(s))
			kvCopy := &layout.KV{Key: append([]byte(nil), kv.Key...), Val: nil,
				SlotVersion: kv.SlotVersion, Tombstone: kv.Tombstone}
			scanned[packed] = kvCopy
			h := racehash.Hash(kv.Key)
			if racehash.HomeMN(h, l.Cfg.NumMNs) != mn {
				continue
			}
			if c, ok := best[string(kv.Key)]; !ok || kv.SlotVersion > c.version {
				best[string(kv.Key)] = candidate{version: kv.SlotVersion, packed: packed,
					class: class, key: kvCopy.Key}
			}
		}
	}
	for _, b := range newLocal {
		off := l.RecordOff(b)
		rec := layout.DecodeRecord(mem[off : off+layout.RecordSize])
		blk := mem[l.BlockOff(b) : l.BlockOff(b)+l.Cfg.BlockSize]
		scanBlock(mn, b, rec.SizeClass, blk)
	}
	for _, rb := range remotes {
		scanBlock(rb.mn, rb.idx, rb.class, rb.data)
	}
	ctx.UseCPU(rdma.CoreErasure, cpuTime(rep.KVCount*64, cl.Cfg.Rates.Memcpy))

	// Reapply candidates in sorted key order (deterministic recovery):
	// each index slot ends up pointing at the KV pair with the highest
	// slot version (Figure 4).
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, keyStr := range keys {
		cand := best[keyStr]
		reapplyCandidate(ctx, cl, mn, mem, []byte(keyStr), cand.version, cand.packed, cand.class, scanned, recovered)
	}
	rep.ScanKV = ctx.Now() - t
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.scan", MN: mn, Dur: rep.ScanKV,
		Note: fmt.Sprintf("kvs=%d", rep.KVCount)})

	if abandoned() {
		return nil
	}
	// Functionality restored: bring up the replacement server and
	// reopen the index partition (writes full speed, reads degraded).
	// The server starts before it is published: until failed[mn] flips,
	// nothing resolves the logical MN, and publishing server and view
	// together under view.mu keeps FailMN/Server() reads coherent on
	// wall-clock fabrics.
	srv := newServer(cl, mn, ctx.Node())
	srv.start()
	cl.view.mu.Lock()
	cl.servers[mn] = srv
	cl.view.failed[mn] = false
	cl.view.indexReady[mn] = true
	cl.view.epoch++
	cl.view.mu.Unlock()
	rep.IndexDone = ctx.Now() - start
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.index_ready", MN: mn, Dur: rep.IndexDone,
		Note: "tier 2 complete: writes full speed, reads degraded"})

	// --- Tier 3: Block Area (old data blocks, then parity blocks) ---
	t = ctx.Now()
	if cl.Cfg.RecoveryHelpers > 0 {
		recoverBlocksWithHelpers(ctx, cl, mn, oldLocal, recovered)
	} else {
		recoverBlocks(ctx, cl, mn, oldLocal, recovered, ec, tally)
	}
	rep.OldLBlockCount = len(oldLocal)
	memMu := cl.pl.MemMutex(ctx.Node())
	for b := 0; b < l.Cfg.StripeRows; b++ {
		// The replacement server is live by now, so tier-3's direct
		// local-memory access must synchronise with the verb executor.
		off := l.RecordOff(b)
		memMu.Lock()
		rec := layout.DecodeRecord(mem[off : off+layout.RecordSize])
		memMu.Unlock()
		if rec.Role == layout.RoleParity {
			recoverParityRow(ctx, cl, mn, mem, b, &rec, ec, tally)
		}
	}
	rep.RecoverOldLBlock = ctx.Now() - t
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.tier3", MN: mn, Dur: rep.RecoverOldLBlock,
		Note: fmt.Sprintf("old-blocks=%d", rep.OldLBlockCount)})

	cl.view.mu.Lock()
	cl.view.blocksReady[mn] = true
	cl.view.epoch++
	cl.view.mu.Unlock()
	srv.addECTally(tally)
	rep.Total = ctx.Now() - start
	cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "recovery.done", MN: mn, Dur: rep.Total})
	return rep
}

// readCkptVersion reads the hosted checkpoint copy's version word for
// slot on host.
func readCkptVersion(ctx rdma.Ctx, cl *Cluster, host, slot int) (uint64, bool) {
	var vbuf [8]byte
	addr, ok := cl.Addr(host, cl.L.CkptVersionOff(slot))
	if !ok || ctx.Read(vbuf[:], addr) != nil {
		return 0, false
	}
	return binary.LittleEndian.Uint64(vbuf[:]), true
}

// reconcileDeltaRecords repairs a consequence of asynchronous Meta
// Area replication: a parity record's DeltaAddr assignment can survive
// a crash while the referenced DELTA block's own record was still
// unreplicated (or vice versa). Without repair the replacement server
// sees the pool block as FREE and double-allocates it, letting another
// stripe's deltas smash this one's — so recovery re-derives every
// locally-referenced DELTA block's record from the parity records
// before the server starts allocating. (The reverse case — a DELTA
// record without a parity reference — only leaks the block, which is
// safe.)
func reconcileDeltaRecords(cl *Cluster, mn int, mem []byte) {
	l := cl.L
	for row := 0; row < l.Cfg.StripeRows; row++ {
		if _, parity := l.IsParityMN(uint32(row), mn); !parity {
			continue
		}
		off := l.RecordOff(row)
		prec := layout.DecodeRecord(mem[off : off+layout.RecordSize])
		if prec.Role != layout.RoleParity {
			continue
		}
		for xid, da := range prec.DeltaAddr {
			if da == 0 {
				continue
			}
			dmn, dOff := layout.UnpackAddr(da)
			if int(dmn) != mn {
				continue
			}
			b := l.BlockOfOff(dOff)
			if b < l.Cfg.StripeRows || b >= l.Cfg.BlocksPerMN() {
				continue
			}
			rOff := l.RecordOff(b)
			drec := layout.DecodeRecord(mem[rOff : rOff+layout.RecordSize])
			if drec.Role == layout.RoleDelta && drec.StripeID == uint32(row) && int(drec.XORID) == xid {
				continue
			}
			fixed := layout.Record{Role: layout.RoleDelta, Valid: true,
				XORID: uint8(xid), StripeID: uint32(row), SizeClass: drec.SizeClass}
			layout.EncodeRecord(mem[rOff:rOff+layout.RecordSize], &fixed)
		}
	}
}

// freePoolBlockIn finds a free pool block in the recovering node's
// local memory (avoiding row), or -1.
func freePoolBlockIn(cl *Cluster, mem []byte, avoid int) int {
	l := cl.L
	for b := l.Cfg.StripeRows; b < l.Cfg.BlocksPerMN(); b++ {
		if b == avoid {
			continue
		}
		off := l.RecordOff(b)
		if layout.DecodeRecord(mem[off:off+layout.RecordSize]).Role == layout.RoleFree {
			return b
		}
	}
	return -1
}

// readMetaReplicaRecords loads MN owner's block records from its first
// reachable meta replica into recArea; it reports success.
func readMetaReplicaRecords(ctx rdma.Ctx, cl *Cluster, owner int, recArea []byte) bool {
	l := cl.L
	for r := 0; r < l.Cfg.MetaReplicas; r++ {
		host := l.MetaReplicaHostOf(owner, r)
		if _, alive := cl.view.nodeOf(host); !alive {
			continue
		}
		slot := l.MetaReplicaSlotFor(host, owner)
		base := l.MetaReplicaOff(slot) + (l.RecordOff(0) - l.MetaOff())
		if err := readChunked(ctx, cl, host, base, recArea); err == nil {
			return true
		}
	}
	return false
}

// reapplyCandidate installs a scanned KV candidate into the recovered
// index if it is newer than what the checkpoint holds. Key comparison
// against an existing entry follows the normal lookup process
// (Figure 4 ③): scanned blocks answer from memory; entries pointing
// into not-yet-recovered blocks are fetched by degraded stripe reads.
func reapplyCandidate(ctx rdma.Ctx, cl *Cluster, mn int, mem []byte, key []byte, version, packed uint64, class uint8, scanned map[uint64]*layout.KV, recovered map[int]bool) {
	l := cl.L
	h := racehash.Hash(key)
	fp := racehash.Fingerprint(h)
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	buckets := []uint64{i1, i2}

	newAtomicVal := layout.SlotAtomic{FP: fp, Ver: uint8(version), Addr: packed}.Pack()
	newMetaVal := layout.SlotMeta{Epoch: version >> 8, Len: class}.Pack()

	var freeOff uint64
	haveFree := false
	for _, b := range buckets {
		for s := 0; s < layout.BucketSlots; s++ {
			off := l.SlotOff(b, s)
			w := binary.LittleEndian.Uint64(mem[off:])
			if w == 0 {
				if !haveFree {
					freeOff, haveFree = off, true
				}
				continue
			}
			atom := layout.UnpackAtomic(w)
			if atom.FP != fp {
				continue
			}
			meta := layout.UnpackMeta(binary.LittleEndian.Uint64(mem[off+layout.SlotMetaOff:]))
			exKey, ok := keyOfEntry(ctx, cl, mn, mem, atom, meta, scanned, recovered)
			if !ok || string(exKey) != string(key) {
				continue
			}
			// Same key: keep the higher slot version.
			exVer := layout.SlotVersion(meta.Epoch&^1, atom.Ver)
			if version > exVer {
				binary.LittleEndian.PutUint64(mem[off:], newAtomicVal)
				binary.LittleEndian.PutUint64(mem[off+layout.SlotMetaOff:], newMetaVal)
			}
			return
		}
	}
	if haveFree {
		binary.LittleEndian.PutUint64(mem[freeOff:], newAtomicVal)
		binary.LittleEndian.PutUint64(mem[freeOff+layout.SlotMetaOff:], newMetaVal)
	}
}

// keyOfEntry fetches the key bytes of an existing index entry during
// recovery.
func keyOfEntry(ctx rdma.Ctx, cl *Cluster, mn int, mem []byte, atom layout.SlotAtomic, meta layout.SlotMeta, scanned map[uint64]*layout.KV, recovered map[int]bool) ([]byte, bool) {
	if kv, ok := scanned[atom.Addr]; ok {
		return kv.Key, true
	}
	n := int(meta.Len) * 64
	if n == 0 {
		n = 64
	}
	buf := make([]byte, n)
	owner, off := layout.UnpackAddr(atom.Addr)
	l := cl.L
	switch {
	case int(owner) == mn:
		// Local block: recovered blocks can be read from memory; old
		// blocks need a degraded stripe read.
		bi := l.BlockOfOff(off)
		if bi >= 0 && recovered[bi] {
			copy(buf, mem[off:off+uint64(n)])
		} else if err := readStripeRange(ctx, cl, atom.Addr, buf); err != nil {
			return nil, false
		}
	default:
		if addr, ok := cl.Addr(int(owner), off); ok {
			if err := ctx.Read(buf, addr); err != nil {
				return nil, false
			}
		} else if err := readStripeRange(ctx, cl, atom.Addr, buf); err != nil {
			return nil, false
		}
	}
	kv, err := layout.DecodeKV(buf)
	if err != nil || kv == nil {
		return nil, false
	}
	return append([]byte(nil), kv.Key...), true
}

// recoverBlocks decodes the given local DATA blocks from their
// stripes' survivors, writing results into local memory. Fetching
// (RDMA reads) and decoding (XOR/GF compute) run as a two-stage
// pipeline (§3.4.1 remark 1): a prefetch process stays one stripe
// ahead of the decoder.
func recoverBlocks(ctx rdma.Ctx, cl *Cluster, mn int, blocks []int, recovered map[int]bool, ec *ecPool, tally *ecTally) {
	if len(blocks) == 0 {
		return
	}
	if !cl.Cfg.RecoveryPipeline {
		// Ablation: strictly sequential fetch-then-decode.
		mem := ctx.LocalMem()
		if len(mem) == 0 {
			return // node failed under us; the master retries elsewhere
		}
		for _, b := range blocks {
			f := fetchStripe(ctx, cl, mn, b)
			if !f.ok {
				continue
			}
			decodeStripeInto(ctx, cl, mn, mem, f.b, f.shards, f.deltas, ec, tally)
			recovered[f.b] = true
		}
		return
	}
	var mu sync.Mutex
	queue := make([]fetchedStripe, 0, 2)
	done := false

	cl.pl.Spawn(ctx.Node(), "recover-prefetch", func(fctx rdma.Ctx) {
		for _, b := range blocks {
			// Bound the pipeline depth at 2 stripes.
			for {
				mu.Lock()
				depth := len(queue)
				mu.Unlock()
				if depth < 2 {
					break
				}
				fctx.Sleep(5 * time.Microsecond)
			}
			f := fetchStripe(fctx, cl, mn, b)
			mu.Lock()
			queue = append(queue, f)
			mu.Unlock()
		}
		mu.Lock()
		done = true
		mu.Unlock()
	})

	mem := ctx.LocalMem()
	if len(mem) == 0 {
		return // node failed under us; the master retries elsewhere
	}
	for {
		mu.Lock()
		if len(queue) == 0 {
			d := done
			mu.Unlock()
			if d {
				return
			}
			ctx.Sleep(5 * time.Microsecond)
			continue
		}
		f := queue[0]
		queue = queue[1:]
		mu.Unlock()
		if !f.ok {
			continue
		}
		decodeStripeInto(ctx, cl, mn, mem, f.b, f.shards, f.deltas, ec, tally)
		recovered[f.b] = true
	}
}

// fetchedStripe is one unit of the two-stage recovery pipeline.
type fetchedStripe struct {
	b      int
	shards [][]byte
	deltas [][]byte // per data shard; nil when none pending
	ok     bool
}

// fetchStripe reads everything needed to reconstruct local block b:
// surviving data blocks (folded with their pending deltas into enc
// form), parity blocks, and the lost block's own pending delta.
func fetchStripe(ctx rdma.Ctx, cl *Cluster, mn, b int) (f fetchedStripe) {
	l := cl.L
	stripe := uint32(b)
	k, m := cl.code.K(), cl.code.M()
	f.b = b
	f.shards = make([][]byte, k+m)
	f.deltas = make([][]byte, k)

	// Read one surviving parity record for the delta map.
	var prec layout.Record
	havePrec := false
	for j := 0; j < m; j++ {
		pmn := l.ParityMN(stripe, j)
		if rec, err := readParityRecord(ctx, cl, pmn, b); err == nil && rec.Role == layout.RoleParity {
			prec, havePrec = rec, true
			break
		}
	}

	bs := l.Cfg.BlockSize
	for xid, dm := range l.DataMNs(stripe) {
		if havePrec && prec.DeltaAddr[xid] != 0 {
			dmn, dOff := layout.UnpackAddr(prec.DeltaAddr[xid])
			if _, alive := cl.view.nodeOf(int(dmn)); alive {
				buf := make([]byte, bs)
				if readChunked(ctx, cl, int(dmn), dOff, buf) == nil {
					f.deltas[xid] = buf
				}
			}
		}
		if dm == mn {
			f.shards[xid] = make([]byte, bs) // the lost shard
			continue
		}
		if _, alive := cl.view.nodeOf(dm); !alive {
			f.shards[xid] = make([]byte, bs) // second failure: also lost
			continue
		}
		buf := make([]byte, bs)
		if err := readChunked(ctx, cl, dm, l.BlockOff(b), buf); err != nil {
			f.shards[xid] = make([]byte, bs)
			continue
		}
		// Materialise the enc view: enc_b = DATA_b ⊕ DELTA_b.
		if f.deltas[xid] != nil {
			erasure.XorInto(buf, f.deltas[xid])
		}
		f.shards[xid] = buf
	}
	for j := 0; j < m; j++ {
		pmn := l.ParityMN(stripe, j)
		buf := make([]byte, bs)
		if _, alive := cl.view.nodeOf(pmn); alive {
			readChunked(ctx, cl, pmn, l.BlockOff(b), buf) //nolint:errcheck // zero shard marked absent below
			f.shards[k+j] = buf
		} else {
			f.shards[k+j] = buf
		}
	}
	f.ok = true
	return f
}

// reconstructLostBlock rebuilds owner's block b from a fetched stripe
// and returns the data bytes (the shard slice, reused), or false when
// the erasure pattern exceeds the fault bound. The decode solve is
// planned once, then the band kernel fans out over the erasure worker
// pool (ec may be nil: the kernel runs inline on the erasure core, the
// pre-parallel behaviour).
func reconstructLostBlock(ctx rdma.Ctx, cl *Cluster, owner, b int, f fetchedStripe, ec *ecPool, tally *ecTally) ([]byte, bool) {
	l := cl.L
	stripe := uint32(b)
	k, m := cl.code.K(), cl.code.M()
	present := make([]bool, k+m)
	for xid, dm := range l.DataMNs(stripe) {
		_, alive := cl.view.nodeOf(dm)
		present[xid] = dm != owner && alive
	}
	liveParity := 0
	for j := 0; j < m; j++ {
		_, alive := cl.view.nodeOf(l.ParityMN(stripe, j))
		present[k+j] = alive
		if alive {
			liveParity++
		}
	}
	pl, err := cl.code.PlanReconstruct(f.shards, present)
	if err != nil {
		return nil, false // beyond the fault bound
	}
	if pl != nil {
		total := cpuTime((k+liveParity)*int(l.Cfg.BlockSize), cl.Cfg.Rates.codeRate(cl.Cfg.Code))
		width := pl.Width()
		elapsed := ec.fanOut(ctx, width, func(lo, hi int) time.Duration {
			if lo == 0 && hi == width {
				// Inert pool (wall-clock fabric or no workers): the
				// whole plan runs here, so let the erasure package's
				// goroutine pool supply the parallelism.
				pl.RunPooled(f.shards, cl.Cfg.ecWorkers())
			} else {
				pl.Run(f.shards, lo, hi)
			}
			return time.Duration(float64(total) * float64(hi-lo) / float64(width))
		}, rdma.CoreErasure)
		if tally != nil {
			tally.decodeBytes += uint64(k+liveParity) * uint64(l.Cfg.BlockSize)
			tally.decodeNs += uint64(elapsed)
		}
	}
	xid := l.XORIDOf(stripe, owner)
	out := f.shards[xid]
	// DATA = enc ⊕ DELTA: fold back the owner's pending delta, if any.
	if f.deltas[xid] != nil {
		erasure.XorInto(out, f.deltas[xid])
	}
	return out, true
}

// decodeStripeInto reconstructs local block b from a fetched stripe
// and writes it into local memory.
func decodeStripeInto(ctx rdma.Ctx, cl *Cluster, mn int, mem []byte, b int, shards, deltas [][]byte, ec *ecPool, tally *ecTally) {
	out, ok := reconstructLostBlock(ctx, cl, mn, b, fetchedStripe{b: b, shards: shards, deltas: deltas, ok: true}, ec, tally)
	if !ok {
		return // leave the block zeroed
	}
	// Tier-3 decodes run while the replacement server is serving, so
	// the install must synchronise with the verb executor (no-op lock
	// during tier 1/2 on simulated fabrics either way).
	memMu := cl.pl.MemMutex(ctx.Node())
	memMu.Lock()
	copy(mem[cl.L.BlockOff(b):cl.L.BlockOff(b)+cl.L.Cfg.BlockSize], out)
	memMu.Unlock()
}

// recoverBlocksWithHelpers distributes block decoding across helper
// compute nodes (the paper's future-work extension, §4.5 "Impact of
// Index Size": "the extended recovery time can be alleviated by
// distributing coding stripe recovery tasks across multiple CNs,
// similar to RAMCloud"). Each helper fetches a stripe's survivors,
// reconstructs the lost block on its own CPU, and ships the result to
// the replacement MN with chunked writes.
func recoverBlocksWithHelpers(ctx rdma.Ctx, cl *Cluster, mn int, blocks []int, recovered map[int]bool) {
	if len(blocks) == 0 {
		return
	}
	helpers := cl.Cfg.RecoveryHelpers
	if helpers > len(blocks) {
		helpers = len(blocks)
	}
	var mu sync.Mutex
	next := 0
	doneCount := 0
	for h := 0; h < helpers; h++ {
		cn := cl.pl.AddComputeNode()
		cl.pl.Spawn(cn, fmt.Sprintf("recover-helper%d", h), func(hctx rdma.Ctx) {
			for {
				mu.Lock()
				if next >= len(blocks) {
					mu.Unlock()
					return
				}
				b := blocks[next]
				next++
				mu.Unlock()

				f := fetchStripe(hctx, cl, mn, b)
				if f.ok && helperDecodeAndShip(hctx, cl, mn, b, f) {
					mu.Lock()
					recovered[b] = true
					doneCount++
					mu.Unlock()
				} else {
					mu.Lock()
					doneCount++
					mu.Unlock()
				}
			}
		})
	}
	for {
		mu.Lock()
		d := doneCount
		mu.Unlock()
		if d >= len(blocks) {
			return
		}
		ctx.Sleep(20 * time.Microsecond)
	}
}

// helperDecodeAndShip reconstructs block b on the helper's CPU and
// writes it to the replacement MN. It reports success.
func helperDecodeAndShip(hctx rdma.Ctx, cl *Cluster, mn, b int, f fetchedStripe) bool {
	l := cl.L
	stripe := uint32(b)
	k, m := cl.code.K(), cl.code.M()
	present := make([]bool, k+m)
	live := 0
	for xid, dm := range l.DataMNs(stripe) {
		_, alive := cl.view.nodeOf(dm)
		present[xid] = dm != mn && alive
		if present[xid] {
			live++
		}
	}
	for j := 0; j < m; j++ {
		_, alive := cl.view.nodeOf(l.ParityMN(stripe, j))
		present[k+j] = alive
		if alive {
			live++
		}
	}
	if err := cl.code.Reconstruct(f.shards, present); err != nil {
		return false
	}
	hctx.UseCPU(0, cpuTime(live*int(l.Cfg.BlockSize), cl.Cfg.Rates.codeRate(cl.Cfg.Code)))
	myXID := l.XORIDOf(stripe, mn)
	out := f.shards[myXID]
	if f.deltas[myXID] != nil {
		erasure.XorInto(out, f.deltas[myXID])
	}
	// Ship the rebuilt block to the replacement MN in chunks.
	chunk := cl.Cfg.ChunkBytes
	for pos := 0; pos < len(out); pos += chunk {
		end := pos + chunk
		if end > len(out) {
			end = len(out)
		}
		addr, ok := cl.Addr(mn, l.BlockOff(b)+uint64(pos))
		if !ok {
			return false
		}
		if err := hctx.Write(addr, out[pos:end]); err != nil {
			return false
		}
	}
	return true
}

// recoverParityRow rebuilds a lost PARITY block (background, after
// functionality is restored — "PARITY blocks will be gradually
// recovered in the background", §3.4.1) together with the DELTA blocks
// it tracks, using DELTA_b = DATA_b ⊕ enc_b.
func recoverParityRow(ctx rdma.Ctx, cl *Cluster, mn int, mem []byte, b int, rec *layout.Record, ec *ecPool, tally *ecTally) {
	// Parity recovery runs after the replacement server went live, so
	// every touch of local memory (the parity block, rebuilt delta
	// blocks, records) races with the verb executor and the encoder
	// daemon on wall-clock fabrics. Hold the region lock for the row;
	// the remote reads inside are to other nodes and never wait on this
	// lock, and foreground verbs stall at most one row's rebuild.
	memMu := cl.pl.MemMutex(ctx.Node())
	memMu.Lock()
	defer memMu.Unlock()
	l := cl.L
	stripe := uint32(b)
	bs := l.Cfg.BlockSize
	parity := mem[l.BlockOff(b) : l.BlockOff(b)+bs]
	for i := range parity {
		parity[i] = 0
	}

	// Locate the sibling parity MN (to adopt its view of pending
	// deltas), if configured and alive.
	var sibRec layout.Record
	haveSib := false
	for j := 0; j < l.Cfg.ParityShards; j++ {
		pmn := l.ParityMN(stripe, j)
		if pmn == mn || pmn < 0 {
			continue
		}
		if r, err := readParityRecord(ctx, cl, pmn, b); err == nil && r.Role == layout.RoleParity {
			sibRec, haveSib = r, true
		}
	}

	// Collect each live data shard's enc view, then fold them all into
	// the parity in one batched banded pass below.
	var folds []erasure.ShardDelta
	for xid, dm := range l.DataMNs(stripe) {
		_, alive := cl.view.nodeOf(dm)
		if !alive {
			continue // double failure: give up on this shard's contribution
		}
		hasData := rec.XORMap&(1<<xid) != 0 || rec.DeltaAddr[xid] != 0
		if !hasData && haveSib {
			hasData = sibRec.XORMap&(1<<xid) != 0 || sibRec.DeltaAddr[xid] != 0
		}
		if !hasData {
			continue
		}
		data := make([]byte, bs)
		if err := readChunked(ctx, cl, dm, l.BlockOff(b), data); err != nil {
			continue
		}
		enc := data
		if rec.XORMap&(1<<xid) == 0 {
			// Delta still pending from our point of view: rebuild it
			// from the sibling parity's copy.
			var delta []byte
			if haveSib && sibRec.XORMap&(1<<xid) == 0 && sibRec.DeltaAddr[xid] != 0 {
				dmn, dOff := layout.UnpackAddr(sibRec.DeltaAddr[xid])
				buf := make([]byte, bs)
				if readChunked(ctx, cl, int(dmn), dOff, buf) == nil {
					delta = buf
				}
			}
			if delta != nil {
				di := -1
				if rec.DeltaAddr[xid] != 0 {
					_, dOff := layout.UnpackAddr(rec.DeltaAddr[xid])
					di = l.BlockOfOff(dOff)
				}
				if di < l.Cfg.StripeRows {
					// The recorded address was lost to replication lag:
					// place the rebuilt delta in a fresh pool block.
					di = freePoolBlockIn(cl, mem, b)
				}
				if di >= 0 {
					copy(mem[l.BlockOff(di):l.BlockOff(di)+bs], delta)
					drec := layout.Record{Role: layout.RoleDelta, Valid: true,
						XORID: uint8(xid), StripeID: stripe}
					dOff := l.RecordOff(di)
					layout.EncodeRecord(mem[dOff:dOff+layout.RecordSize], &drec)
					rec.DeltaAddr[xid] = layout.PackAddr(uint16(mn), l.BlockOff(di))
					enc = append([]byte(nil), data...)
					erasure.XorInto(enc, delta)
				} else {
					rec.XORMap |= 1 << xid
					rec.DeltaAddr[xid] = 0
				}
			} else {
				// No recoverable delta: adopt the current data as
				// encoded (protection resumes from now; clients refresh
				// their delta targets on the next view epoch).
				rec.XORMap |= 1 << xid
				rec.DeltaAddr[xid] = 0
			}
		}
		folds = append(folds, erasure.ShardDelta{DI: xid, B: enc})
	}
	if len(folds) > 0 {
		total := cpuTime((len(folds)+1)*int(bs), cl.Cfg.Rates.codeRate(cl.Cfg.Code))
		width := cl.code.BandWidth(len(parity))
		elapsed := ec.fanOut(ctx, width, func(lo, hi int) time.Duration {
			if lo == 0 && hi == width {
				// Inert pool: the batched fold runs whole, through the
				// erasure package's own goroutine fan-out.
				cl.code.ApplyDeltas(int(rec.ParityIdx), parity, folds)
			} else {
				cl.code.ApplyDeltasBand(int(rec.ParityIdx), parity, folds, lo, hi)
			}
			return time.Duration(float64(total) * float64(hi-lo) / float64(width))
		}, rdma.CoreErasure)
		if tally != nil {
			tally.encodeBytes += uint64(len(folds)) * uint64(bs)
			tally.encodeNs += uint64(elapsed)
		}
	}
	off := l.RecordOff(b)
	layout.EncodeRecord(mem[off:off+layout.RecordSize], rec)
}
