package core

import (
	"bytes"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/racehash"
	"repro/internal/rdma"
)

// ownedBlock is one entry of a methodQueryOwned response: a block the
// restarting client is responsible for.
type ownedBlock struct {
	mn     int
	idx    int
	role   layout.Role
	stripe uint32
	xorID  uint8
	class  uint8
}

// deltaCopy is a DELTA block's content read back during client
// recovery.
type deltaCopy struct {
	mn   int
	off  uint64
	data []byte
}

// Restart recovers a client identity on a new compute node after a CN
// crash (§3.4.2). The restarted client:
//
//  1. queries every MN server for blocks recorded under its client id
//     (unfilled DATA blocks, DELTA blocks, reclamation COPY blocks);
//  2. walks each unfilled DATA block slot by slot, comparing the KV
//     pair's write-version fences and contents with its deltas' — a
//     torn final write (data landed but a delta did not, or vice
//     versa) is rolled back: the deltas are cleared and the data slot
//     restored from the COPY block (reused blocks) or zeroed (fresh
//     blocks);
//  3. re-adopts fresh blocks, resuming fine-grained slot management so
//     no memory leaks, and seals partially-refilled reclaimed blocks
//     (their remaining writable slots are unknown without the old free
//     bitmap).
//
// The last in-flight request may have committed or not; either outcome
// is linearizable because the request never returned to the
// application (§3.2.2 remark 3).
func (c *Client) Restart(ctx rdma.Ctx) error {
	c.ctx = ctx
	c.cache = newClientCache(c.cl.Cfg.cacheEntries())
	if c.cache != nil {
		c.cache.met = c.met
		c.met.Bytes.Add(int64(c.cache.Bytes()))
	}
	c.mirror = newBucketMirror(c.cl.Cfg.offloadBuckets(), c.met)
	c.open = make(map[uint8]*openBlock)
	c.openLRU = nil
	c.pending = make(map[pendKey][]uint32)
	c.pendingN = 0
	c.pendingSeal = nil

	l := c.cl.L
	var all []ownedBlock
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		node, alive := c.cl.view.nodeOf(mn)
		if !alive {
			continue
		}
		var e enc
		e.u16(c.id)
		resp, err := c.ctx.RPC(node, methodQueryOwned, e.b)
		if err != nil || len(resp) == 0 || resp[0] != stOK {
			continue
		}
		d := dec{b: resp[1:]}
		n := int(d.u32())
		for i := 0; i < n; i++ {
			o := ownedBlock{mn: mn}
			o.idx = int(d.u32())
			o.role = layout.Role(d.u8())
			o.stripe = d.u32()
			o.xorID = d.u8()
			o.class = d.u8()
			all = append(all, o)
		}
	}

	type sx struct {
		s uint32
		x uint8
	}
	deltas := make(map[sx][]ownedBlock)
	copies := make(map[sx]*ownedBlock)
	for i, o := range all {
		switch o.role {
		case layout.RoleDelta:
			deltas[sx{o.stripe, o.xorID}] = append(deltas[sx{o.stripe, o.xorID}], o)
		case layout.RoleCopy:
			copies[sx{o.stripe, o.xorID}] = &all[i]
		}
	}
	for _, o := range all {
		if o.role != layout.RoleData {
			continue
		}
		k := sx{o.stripe, o.xorID}
		if err := c.recoverOwnedBlock(o, deltas[k], copies[k]); err != nil {
			return err
		}
	}
	return nil
}

// recoverOwnedBlock repairs one unfilled DATA block and either
// re-adopts it (fresh) or seals it (reused / already full).
func (c *Client) recoverOwnedBlock(o ownedBlock, deltaOwners []ownedBlock, cp *ownedBlock) error {
	l := c.cl.L
	bs := int(l.Cfg.BlockSize)
	slotSize := int(o.class) * 64
	if slotSize == 0 {
		return nil
	}
	data := make([]byte, bs)
	if err := c.readChunked(o.mn, l.BlockOff(o.idx), data); err != nil {
		return err
	}
	var dcs []deltaCopy
	for _, dob := range deltaOwners {
		buf := make([]byte, bs)
		if err := c.readChunked(dob.mn, l.BlockOff(dob.idx), buf); err != nil {
			continue
		}
		dcs = append(dcs, deltaCopy{mn: dob.mn, off: l.BlockOff(dob.idx), data: buf})
	}
	var old []byte
	if cp != nil {
		old = make([]byte, bs)
		if err := c.readChunked(cp.mn, l.BlockOff(cp.idx), old); err != nil {
			return err
		}
	}

	nSlots := bs / slotSize
	var freeSlots []int
	for s := 0; s < nSlots; s++ {
		lo := s * slotSize
		slot := data[lo : lo+slotSize]
		var oldSlot []byte
		if old != nil {
			oldSlot = old[lo : lo+slotSize]
		}
		verdict := c.checkSlot(slot, oldSlot, dcs, lo)
		if verdict == slotSuspect {
			// Data complete but deltas disagree. That is either the
			// in-flight final write (uncommitted: roll back) or a pair
			// committed while a parity MN was down (its delta copy was
			// legitimately skipped: keep the data and heal the
			// deltas). The index slot is the commit point, so it
			// arbitrates.
			packed := layout.PackAddr(uint16(o.mn), l.BlockOff(o.idx)+uint64(lo))
			if c.isCommitted(slot, packed) {
				c.healDeltas(slot, oldSlot, dcs, lo)
				verdict = slotOK
			} else {
				verdict = slotRollback
			}
		}
		if verdict == slotRollback {
			c.clearDeltas(dcs, lo, len(slot))
			// Roll the slot back to its pre-write state.
			if oldSlot != nil {
				copy(slot, oldSlot)
			} else {
				for i := range slot {
					slot[i] = 0
				}
			}
			if addr, ok := c.cl.Addr(o.mn, l.BlockOff(o.idx)+uint64(lo)); ok {
				c.Stats.WritesIssued++
				c.ctx.Write(addr, slot) //nolint:errcheck // best effort
			}
		}
		if old == nil && slot[0] == 0 {
			freeSlots = append(freeSlots, s)
		}
	}

	ob := &openBlock{
		class: o.class, mn: o.mn, idx: o.idx, stripe: o.stripe, xorID: o.xorID,
		copyIdx: ^uint32(0), slotSize: slotSize, reused: cp != nil,
	}
	if cp != nil {
		ob.copyIdx = uint32(cp.idx)
	}
	for _, dc := range dcs {
		ob.deltas = append(ob.deltas, deltaTarget{mn: dc.mn, blockOff: dc.off})
	}
	if cp != nil || len(freeSlots) == 0 {
		// Reused block (writable slots unknowable) or completely full:
		// seal it now.
		c.sealBlock(ob)
		return nil
	}
	ob.slots = freeSlots
	c.open[o.class] = ob
	return nil
}

// slotVerdict is checkSlot's result.
type slotVerdict int

const (
	// slotOK: data and deltas agree; nothing to do.
	slotOK slotVerdict = iota
	// slotRollback: the data itself is torn (fence mismatch); the
	// write cannot have committed, so roll everything back.
	slotRollback
	// slotSuspect: data is complete but a delta copy disagrees; the
	// commit point (index slot) must arbitrate.
	slotSuspect
)

// checkSlot classifies one KV slot against its deltas and the old
// contents. A consistent slot satisfies delta == data ⊕ old for every
// delta copy (old = 0 for fresh blocks) and has matching write-version
// fences (§3.4.2: RDMA writes land in order, so equal non-zero fences
// bracket complete bytes).
func (c *Client) checkSlot(slot, oldSlot []byte, dcs []deltaCopy, lo int) slotVerdict {
	fence := slot[0]
	oldFence := uint8(0)
	if oldSlot != nil {
		oldFence = oldSlot[0]
	}
	written := fence != 0 && fence != oldFence
	if written && slot[len(slot)-1] != fence {
		return slotRollback // torn data write: cannot be committed
	}
	expected := append([]byte(nil), slot...)
	if oldSlot != nil {
		erasure.XorInto(expected, oldSlot)
	}
	for _, dc := range dcs {
		got := dc.data[lo : lo+len(slot)]
		if !bytes.Equal(got, expected) {
			if !written {
				// Data untouched but a stray delta landed: clearing
				// the delta restores consistency.
				c.clearDeltas(dcs, lo, len(slot))
				return slotOK
			}
			return slotSuspect
		}
	}
	return slotOK
}

// isCommitted reports whether the key's index slot points at exactly
// this KV pair (the commit point of Algorithm 1).
func (c *Client) isCommitted(slot []byte, packed uint64) bool {
	kv, err := layout.DecodeKV(slot)
	if err != nil || kv == nil || kv.SlotVersion == layout.InvalidVersion {
		return false
	}
	h := racehash.Hash(kv.Key)
	mn := racehash.HomeMN(h, c.cl.Cfg.Layout.NumMNs)
	c.waitIndexReady(mn)
	b1, b2, err := c.readBuckets(h, mn)
	if err != nil {
		return false
	}
	fp := racehash.Fingerprint(h)
	for _, m := range racehash.ScanBuckets(fp, b1, b2) {
		if m.Atomic.Addr == packed {
			return true
		}
	}
	return false
}

// healDeltas rewrites every delta copy of a committed slot to
// data ⊕ old, restoring the stripe invariant after a copy went
// missing (e.g. a parity MN was down when the pair was written).
func (c *Client) healDeltas(slot, oldSlot []byte, dcs []deltaCopy, lo int) {
	expected := append([]byte(nil), slot...)
	if oldSlot != nil {
		erasure.XorInto(expected, oldSlot)
	}
	for _, dc := range dcs {
		if bytes.Equal(dc.data[lo:lo+len(slot)], expected) {
			continue
		}
		if addr, ok := c.cl.Addr(dc.mn, dc.off+uint64(lo)); ok {
			c.Stats.WritesIssued++
			c.ctx.Write(addr, expected) //nolint:errcheck // best effort
		}
		copy(dc.data[lo:lo+len(slot)], expected)
	}
}

// clearDeltas zeroes the slot range of every delta copy (both remotely
// and in the local snapshots used for later comparisons).
func (c *Client) clearDeltas(dcs []deltaCopy, lo, n int) {
	zeroBuf := make([]byte, n)
	for _, dc := range dcs {
		if addr, ok := c.cl.Addr(dc.mn, dc.off+uint64(lo)); ok {
			c.Stats.WritesIssued++
			c.ctx.Write(addr, zeroBuf) //nolint:errcheck // best effort
		}
		copy(dc.data[lo:lo+n], zeroBuf)
	}
}

// SimulateCrash abandons all client-side volatile state without
// flushing anything, as a CN fail-stop would (test and example
// support). Use Restart on a new process to recover the identity.
func (c *Client) SimulateCrash() {
	c.cache.release()
	c.mirror.release()
	c.cache = nil
	c.mirror = nil
	c.open = nil
	c.openLRU = nil
	c.pending = nil
	c.pendingSeal = nil
	c.ctx = nil
}
