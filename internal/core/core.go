package core
