package core

import (
	"repro/internal/layout"
)

// MemoryUsage is the Block Area accounting behind Figure 12: how much
// pool memory holds live KV pairs versus redundancy (parity) versus
// transient DELTA blocks.
type MemoryUsage struct {
	// DataBlockBytes is the total size of allocated DATA blocks.
	DataBlockBytes uint64
	// ValidBytes is the payload of live (written, non-obsolete) KV
	// slots.
	ValidBytes uint64
	// ObsoleteBytes is the payload of written-but-overwritten slots.
	ObsoleteBytes uint64
	// ParityBytes is the total size of PARITY blocks (the redundancy).
	ParityBytes uint64
	// DeltaBytes is the total size of live DELTA blocks.
	DeltaBytes uint64
	// CopyBytes is the total size of reclamation COPY blocks.
	CopyBytes uint64
}

// MemoryUsage scans every MN's Meta Area and Block Area directly
// (bench-side instrumentation; bypasses the cost model).
func (cl *Cluster) MemoryUsage() MemoryUsage {
	var u MemoryUsage
	l := cl.L
	bs := l.Cfg.BlockSize
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		node, ok := cl.view.nodeOf(mn)
		if !ok {
			continue
		}
		mem := cl.pl.Memory(node)
		if mem == nil {
			continue
		}
		for b := 0; b < l.Cfg.BlocksPerMN(); b++ {
			rOff := l.RecordOff(b)
			rec := layout.DecodeRecord(mem[rOff : rOff+layout.RecordSize])
			switch rec.Role {
			case layout.RoleParity:
				u.ParityBytes += bs
			case layout.RoleDelta:
				u.DeltaBytes += bs
			case layout.RoleCopy:
				u.CopyBytes += bs
			case layout.RoleData:
				u.DataBlockBytes += bs
				slotSize := int(rec.SizeClass) * 64
				if slotSize == 0 {
					continue
				}
				bm := mem[l.BitmapOff(b) : l.BitmapOff(b)+l.BitmapBytes()]
				blk := mem[l.BlockOff(b) : l.BlockOff(b)+bs]
				for s := 0; s*slotSize+slotSize <= int(bs); s++ {
					if blk[s*slotSize] == 0 {
						continue // never written
					}
					if layout.BitmapGet(bm, s) {
						u.ObsoleteBytes += uint64(slotSize)
					} else {
						u.ValidBytes += uint64(slotSize)
					}
				}
			}
		}
	}
	return u
}

// Counters returns the client's verb counts (CAS, reads, writes) for
// harness accounting such as Figure 1(a)'s CAS-per-request rows.
func (c *Client) Counters() (cas, reads, writes uint64) {
	return c.Stats.CASIssued, c.Stats.ReadsIssued, c.Stats.WritesIssued
}
