package core

import (
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// Admin RPCs: the fault-injection surface a running cluster exposes to
// harnesses and the CLI. They exist for the wall-clock fabric, where a
// remote daemon's platform cannot be reached in-process — a simulated
// harness holds the Cluster and calls FailMN / SetChaos directly, and
// should (raw goroutines inside a handler would break the engine's
// determinism).

// handleAdminFail fail-stops this MN. The response is sent before the
// crash: the handler runs inside a transport goroutine that the
// server's shutdown joins, so crashing inline would deadlock. The
// delay lets the stOK response flush to the requester first.
func (s *Server) handleAdminFail(_ []byte) ([]byte, time.Duration) {
	mn := s.mn
	cl := s.cl
	go func() {
		time.Sleep(10 * time.Millisecond)
		cl.FailMN(mn)
	}()
	return []byte{stOK}, time.Microsecond
}

// handleAdminChaos installs the decoded chaos config on this MN's
// fabric node.
func (s *Server) handleAdminChaos(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	cfg := rdma.ChaosConfig{
		Seed:      int64(d.u64()),
		DropProb:  math.Float64frombits(d.u64()),
		DelayProb: math.Float64frombits(d.u64()),
		MaxDelay:  time.Duration(d.u64()),
		ResetProb: math.Float64frombits(d.u64()),
	}
	fi, ok := s.cl.pl.(rdma.FaultInjector)
	if !ok {
		return []byte{stBadArg}, time.Microsecond
	}
	fi.SetChaos(s.node, cfg)
	return []byte{stOK}, time.Microsecond
}

// handleAdminStats snapshots the server's counters for the CLI /
// monitoring surfaces. The dispatch already holds memMu.
func (s *Server) handleAdminStats(_ []byte) ([]byte, time.Duration) {
	st := s.statsLocked()
	e := enc{b: []byte{stOK}}
	e.u16(uint16(st.MN))
	e.u64(st.IndexVersion)
	e.u64(st.Reclaimed)
	e.u64(st.BitsApplied)
	e.u64(st.CkptRounds)
	e.u64(st.CkptBytes)
	e.u64(st.CkptApplies)
	e.u64(st.EncodeJobs)
	e.u64(st.EncodeDrops)
	e.u64(st.EncodeQueue)
	e.u64(st.PoolBlocks)
	e.u64(st.PoolFree)
	e.u64(st.PoolDelta)
	e.u64(st.PoolCopy)
	e.u64(st.PoolData)
	e.u64(st.CkptShipFailures)
	e.u64(st.CkptDirtySegs)
	e.u64(st.CkptSegsShipped)
	e.u64(st.CkptRawBytes)
	e.u64(st.CkptCPUNs)
	e.u64(st.ECEncodeBytes)
	e.u64(st.ECEncodeNs)
	e.u64(st.ECEncodeBatches)
	e.u64(st.ECDecodeBytes)
	e.u64(st.ECDecodeNs)
	e.u64(st.CacheHits)
	e.u64(st.CacheMisses)
	e.u64(st.CacheNegHits)
	e.u64(st.CacheEvictions)
	e.u64(st.CacheMirrorHits)
	e.u64(st.CacheMirrorNegHits)
	e.u64(st.CacheEntries)
	e.u64(st.CacheBytes)
	e.u64(st.CacheOffloaded)
	e.u64(st.WriteFused)
	e.u64(st.WriteFallbacks)
	e.u64(st.PrefetchHits)
	e.u64(st.PrefetchMisses)
	e.u64(st.DeltaSkips)
	return e.b, 2 * time.Microsecond
}

// StatsMN fetches the counter snapshot of logical MN mn over the admin
// RPC (the CLI's `stats <mn>` and any remote monitor use this).
func (c *Client) StatsMN(mn int) (ServerStats, error) {
	var st ServerStats
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return st, rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(node, methodAdminStats, nil)
	if err != nil {
		return st, err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return st, errRPC
	}
	d := dec{b: resp[1:]}
	st.MN = int(d.u16())
	st.IndexVersion = d.u64()
	st.Reclaimed = d.u64()
	st.BitsApplied = d.u64()
	st.CkptRounds = d.u64()
	st.CkptBytes = d.u64()
	st.CkptApplies = d.u64()
	st.EncodeJobs = d.u64()
	st.EncodeDrops = d.u64()
	st.EncodeQueue = d.u64()
	st.PoolBlocks = d.u64()
	st.PoolFree = d.u64()
	st.PoolDelta = d.u64()
	st.PoolCopy = d.u64()
	st.PoolData = d.u64()
	st.CkptShipFailures = d.u64()
	st.CkptDirtySegs = d.u64()
	st.CkptSegsShipped = d.u64()
	st.CkptRawBytes = d.u64()
	st.CkptCPUNs = d.u64()
	st.ECEncodeBytes = d.u64()
	st.ECEncodeNs = d.u64()
	st.ECEncodeBatches = d.u64()
	st.ECDecodeBytes = d.u64()
	st.ECDecodeNs = d.u64()
	st.CacheHits = d.u64()
	st.CacheMisses = d.u64()
	st.CacheNegHits = d.u64()
	st.CacheEvictions = d.u64()
	st.CacheMirrorHits = d.u64()
	st.CacheMirrorNegHits = d.u64()
	st.CacheEntries = d.u64()
	st.CacheBytes = d.u64()
	st.CacheOffloaded = d.u64()
	st.WriteFused = d.u64()
	st.WriteFallbacks = d.u64()
	st.PrefetchHits = d.u64()
	st.PrefetchMisses = d.u64()
	st.DeltaSkips = d.u64()
	return st, nil
}

// handleAdminTrace dumps the cluster's retained op spans (newest
// request-bounded max) plus the full ring-event tail, so a remote
// tool can render the same Chrome trace timeline the in-process
// /debug/optrace endpoint serves.
func (s *Server) handleAdminTrace(req []byte) ([]byte, time.Duration) {
	max := 0
	if len(req) >= 4 {
		d := dec{b: req}
		max = int(d.u32())
	}
	var spans []obs.Span
	if s.cl.tracer != nil {
		spans = s.cl.tracer.Snapshot()
	}
	if max > 0 && len(spans) > max {
		spans = spans[len(spans)-max:]
	}
	events := s.cl.trace.Events()
	e := enc{b: []byte{stOK}}
	e.u32(uint32(len(spans)))
	for i := range spans {
		sp := &spans[i]
		e.u64(sp.Seq)
		e.u64(sp.Trace)
		e.u8(uint8(sp.Kind))
		if sp.Err {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.u32(uint32(sp.Node))
		e.u32(uint32(sp.Tid))
		e.u64(uint64(sp.Start))
		e.u64(uint64(sp.End))
		e.u64(uint64(sp.WallStart))
		e.u64(uint64(sp.WallEnd))
		e.bytes([]byte(sp.Name))
		e.bytes([]byte(sp.Detail))
	}
	e.u32(uint32(len(events)))
	for i := range events {
		ev := &events[i]
		e.u64(ev.Seq)
		e.u64(uint64(ev.At))
		e.u64(uint64(ev.Dur))
		e.u32(uint32(int32(ev.MN)))
		e.bytes([]byte(ev.Kind))
		e.bytes([]byte(ev.Note))
	}
	return e.b, 5 * time.Microsecond
}

// TraceMN fetches up to max op spans (0 = all retained) plus the ring
// events from logical MN mn over the admin RPC. Any MN of an
// in-process cluster returns the same shared trace.
func (c *Client) TraceMN(mn, max int) ([]obs.Span, []obs.Event, error) {
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return nil, nil, rdma.ErrNodeFailed
	}
	var e enc
	e.u32(uint32(max))
	resp, err := c.ctx.RPC(node, methodAdminTrace, e.b)
	if err != nil {
		return nil, nil, err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return nil, nil, errRPC
	}
	d := dec{b: resp[1:]}
	spans := make([]obs.Span, d.u32())
	for i := range spans {
		sp := &spans[i]
		sp.Seq = d.u64()
		sp.Trace = d.u64()
		sp.Kind = obs.SpanKind(d.u8())
		sp.Err = d.u8() != 0
		sp.Node = int32(d.u32())
		sp.Tid = int32(d.u32())
		sp.Start = time.Duration(d.u64())
		sp.End = time.Duration(d.u64())
		sp.WallStart = int64(d.u64())
		sp.WallEnd = int64(d.u64())
		sp.Name = string(d.bytes())
		sp.Detail = string(d.bytes())
	}
	events := make([]obs.Event, d.u32())
	for i := range events {
		ev := &events[i]
		ev.Seq = d.u64()
		ev.At = time.Duration(d.u64())
		ev.Dur = time.Duration(d.u64())
		ev.MN = int(int32(d.u32()))
		ev.Kind = string(d.bytes())
		ev.Note = string(d.bytes())
	}
	return spans, events, nil
}

func encodeChaos(cfg rdma.ChaosConfig) []byte {
	var e enc
	e.u64(uint64(cfg.Seed))
	e.u64(math.Float64bits(cfg.DropProb))
	e.u64(math.Float64bits(cfg.DelayProb))
	e.u64(uint64(cfg.MaxDelay))
	e.u64(math.Float64bits(cfg.ResetProb))
	return e.b
}

// KillMN asks logical MN mn to fail-stop itself (admin fault
// injection). The kill is asynchronous: the MN acknowledges, then
// crashes ~10ms later; the master detects it and recovers onto a spare
// as for any crash.
func (c *Client) KillMN(mn int) error {
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(node, methodAdminFail, nil)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return errRPC
	}
	c.cl.trace.Emit(obs.Event{At: c.ctx.Now(), Kind: "fail.inject", MN: mn, Note: "admin kill"})
	return nil
}

// ChaosMN installs (or, with a zero config, clears) probabilistic
// fault injection on the fabric node serving logical MN mn.
func (c *Client) ChaosMN(mn int, cfg rdma.ChaosConfig) error {
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(node, methodAdminChaos, encodeChaos(cfg))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return errRPC
	}
	note := "chaos cleared"
	if cfg.DropProb > 0 || cfg.DelayProb > 0 || cfg.ResetProb > 0 {
		note = "chaos installed"
	}
	c.cl.trace.Emit(obs.Event{At: c.ctx.Now(), Kind: "chaos.install", MN: mn, Note: note})
	return nil
}
