package core

import (
	"math"
	"time"

	"repro/internal/rdma"
)

// Admin RPCs: the fault-injection surface a running cluster exposes to
// harnesses and the CLI. They exist for the wall-clock fabric, where a
// remote daemon's platform cannot be reached in-process — a simulated
// harness holds the Cluster and calls FailMN / SetChaos directly, and
// should (raw goroutines inside a handler would break the engine's
// determinism).

// handleAdminFail fail-stops this MN. The response is sent before the
// crash: the handler runs inside a transport goroutine that the
// server's shutdown joins, so crashing inline would deadlock. The
// delay lets the stOK response flush to the requester first.
func (s *Server) handleAdminFail(_ []byte) ([]byte, time.Duration) {
	mn := s.mn
	cl := s.cl
	go func() {
		time.Sleep(10 * time.Millisecond)
		cl.FailMN(mn)
	}()
	return []byte{stOK}, time.Microsecond
}

// handleAdminChaos installs the decoded chaos config on this MN's
// fabric node.
func (s *Server) handleAdminChaos(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	cfg := rdma.ChaosConfig{
		Seed:      int64(d.u64()),
		DropProb:  math.Float64frombits(d.u64()),
		DelayProb: math.Float64frombits(d.u64()),
		MaxDelay:  time.Duration(d.u64()),
		ResetProb: math.Float64frombits(d.u64()),
	}
	fi, ok := s.cl.pl.(rdma.FaultInjector)
	if !ok {
		return []byte{stBadArg}, time.Microsecond
	}
	fi.SetChaos(s.node, cfg)
	return []byte{stOK}, time.Microsecond
}

func encodeChaos(cfg rdma.ChaosConfig) []byte {
	var e enc
	e.u64(uint64(cfg.Seed))
	e.u64(math.Float64bits(cfg.DropProb))
	e.u64(math.Float64bits(cfg.DelayProb))
	e.u64(uint64(cfg.MaxDelay))
	e.u64(math.Float64bits(cfg.ResetProb))
	return e.b
}

// KillMN asks logical MN mn to fail-stop itself (admin fault
// injection). The kill is asynchronous: the MN acknowledges, then
// crashes ~10ms later; the master detects it and recovers onto a spare
// as for any crash.
func (c *Client) KillMN(mn int) error {
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(node, methodAdminFail, nil)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return errRPC
	}
	return nil
}

// ChaosMN installs (or, with a zero config, clears) probabilistic
// fault injection on the fabric node serving logical MN mn.
func (c *Client) ChaosMN(mn int, cfg rdma.ChaosConfig) error {
	node, ok := c.cl.view.nodeOf(mn)
	if !ok {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(node, methodAdminChaos, encodeChaos(cfg))
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != stOK {
		return errRPC
	}
	return nil
}
