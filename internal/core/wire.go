package core

import (
	"encoding/binary"
	"errors"
)

// RPC method codes served by the memory-node servers (§3.1: the server
// handles coarse-grained management — space allocation, checkpointing
// control, erasure-coding control — while all KV data access stays
// one-sided).
const (
	// methodAllocBlock allocates a DATA block on this MN for a client.
	methodAllocBlock uint8 = iota + 1
	// methodAllocDelta allocates a DELTA block on this (parity) MN for
	// a data block of a stripe and records its address in the parity
	// record (Figure 6, step ①).
	methodAllocDelta
	// methodSealBlock stamps the current Index Version into a filled
	// DATA block's record (§3.2.3).
	methodSealBlock
	// methodEncodeDelta asks this (parity) MN to fold the DELTA block
	// of (stripe, xorID) into its PARITY block in the background
	// (Figure 6, steps ②-④).
	methodEncodeDelta
	// methodFreeBits reports obsolete KV slots for the free bitmap
	// (§3.3.3, step ①).
	methodFreeBits
	// methodQueryOwned lists the unfilled blocks owned by a client,
	// for CN-crash recovery (§3.4.2).
	methodQueryOwned
	// methodCkptPrepare advances the Index Version (phase one of a
	// checkpoint round; see docs on Server.handleCkptPrepare).
	methodCkptPrepare
	// methodCkptSnapshot starts the differential checkpoint pipeline
	// (phase two).
	methodCkptSnapshot
	// methodApplyCkpt tells a checkpoint host that a segmented
	// checkpoint frame (header + per-segment delta records) has landed
	// in its staging area (Figure 3, step ④). The stOK response carries
	// the sequence number of the last frame the host applied, letting
	// the owner detect lost rounds and re-ship segments raw.
	methodApplyCkpt
	// methodPing is the master's lease/liveness probe.
	methodPing
	// methodDropDelta discards the DELTA block of (stripe, xorID)
	// without encoding it (used when an aborted client wrote garbage).
	methodDropDelta
	// methodAdminFail asks this MN to fail-stop itself (fault-injection
	// surface for harnesses and the CLI; see admin.go).
	methodAdminFail
	// methodAdminChaos installs a rdma.ChaosConfig on this MN's fabric
	// node (probabilistic drop/delay/reset injection).
	methodAdminChaos
	// methodAdminStats returns the MN server's counter snapshot
	// (ServerStats) for the CLI and monitoring surfaces.
	methodAdminStats
	// methodAdminTrace dumps the cluster's retained op spans and ring
	// events (newest first bounded by the request's max) so remote
	// tools can render a Chrome trace_event timeline (see admin.go).
	methodAdminTrace
)

// RPC status codes.
const (
	stOK uint8 = iota
	stNoSpace
	stBadArg
	stConflict
)

var errRPC = errors.New("core: rpc error")

// enc is a tiny append-based binary encoder for RPC payloads.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

// dec is the matching decoder; it panics on truncated input (RPC
// payloads are trusted intra-system messages; a length bug is a
// programming error, not an input error).
type dec struct {
	b   []byte
	off int
}

func (d *dec) u8() uint8 { v := d.b[d.off]; d.off++; return v }
func (d *dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}
func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *dec) bytes() []byte {
	n := int(d.u32())
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}
