package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/racehash"
	"repro/internal/rdma"
)

// Client errors.
var (
	// ErrNotFound reports a SEARCH or DELETE of an absent key.
	ErrNotFound = errors.New("aceso: key not found")
	// ErrNoSpace reports that no MN could allocate a DATA block.
	ErrNoSpace = errors.New("aceso: memory pool exhausted")
	// ErrRetriesExhausted reports an operation that kept losing CAS
	// races or finding locked slots beyond the retry budget.
	ErrRetriesExhausted = errors.New("aceso: retries exhausted")
)

const maxOpRetries = 1024

// maxOpenClasses bounds the open-DATA-block map: a workload cycling
// through many value size classes would otherwise pin one partially
// filled block (plus, for reused blocks, a BlockSize oldData image)
// per class forever. Past the bound the least-recently-used class is
// sealed early — its unwritten slots leak until reclamation, which is
// the bounded-memory trade the paper's per-class open blocks imply.
const maxOpenClasses = 16

// Client executes KV requests with one-sided verbs (§3.1). Each client
// is single-threaded (bind one per process/coroutine, as the paper's
// clients do); it owns open DATA blocks per size class and a bounded
// CN-side index cache (§3.5.1, DESIGN.md §12) of positive slot-address
// entries, negative entries and an optional hot-bucket mirror.
type Client struct {
	cl  *Cluster
	id  uint16
	ctx rdma.Ctx
	// ot is the ctx's per-op tracing surface (nil when the ctx is not
	// a traced obs wrapper): ops bracket themselves with OpBegin/OpEnd
	// so sampled ops record verb child spans, and annotate lock-stripe
	// waits and degraded reads with OpMark.
	ot obs.OpTracer

	cache  *clientCache  // nil when CacheEntries < 0
	mirror *bucketMirror // nil unless OffloadBuckets > 0
	// bvLive: the fabric maintains bucket version words (servers can
	// bump them pre-ack), so version-validated state (negative
	// entries, mirror copies) may be trusted.
	bvLive   bool
	met      *obs.CacheMetrics
	wmet     *obs.WriteMetrics
	scratch  readScratch
	wsc      writeScratch
	open     map[uint8]*openBlock
	openLRU  []uint8 // size classes, least recently used first
	pending  map[pendKey][]uint32
	pendingN int
	allocSeq int
	// pendingSeal holds a just-filled block whose seal must wait until
	// after the commit CAS of its final KV (§3.2.3 ordering).
	pendingSeal []*openBlock
	// ordered: the attached ctx honours the OrderedBatcher tail-CAS
	// contract, so commits may fuse into the placement doorbell
	// (DESIGN.md §13).
	ordered bool
	// pf is the background block-provisioning worker's shared state
	// (nil unless Config.BlockPrefetch).
	pf        *blockPrefetcher
	flushKeys []pendKey // FlushBitmaps sort scratch
	flushEnc  []byte    // sendFreeBits encode scratch (inline path)

	// Stats observable by harnesses.
	Stats ClientStats
}

// readScratch holds the cached-GET hot path's reusable buffers, so a
// steady-state hit performs no heap allocation (TestCachedGetZeroAlloc).
type readScratch struct {
	kv   []byte // KV read buffer, grown to the largest class seen
	word [4][8]byte
	b1   []byte // bucket image buffers (CacheSlotAddr=false ablation)
	b2   []byte
	ops  [6]rdma.Op
	dkv  layout.KV
}

// growKV returns an n-byte KV buffer, reusing prior capacity.
func (sc *readScratch) growKV(n int) []byte {
	if cap(sc.kv) < n {
		sc.kv = make([]byte, n)
	}
	return sc.kv[:n]
}

// writeScratch holds the write path's reusable buffers so a
// steady-state fused UPDATE performs no heap allocation
// (TestFusedWriteZeroAlloc): the KV encode buffer and XOR delta, the
// placement batch and invalidation op slices, and the 8-byte patch
// words the invalidation ops point at.
type writeScratch struct {
	buf      []byte    // KV encode buffer, grown to the largest class seen
	delta    []byte    // XOR delta against the reclaimed slot's old bytes
	ops      []rdma.Op // placement batch: KV write + delta writes (+ fused CAS)
	inv      []rdma.Op // invalidation patch for a lost commit
	invData  [8]byte
	invDelta [8]byte
	metaW    [8]byte // length-hint repair word (must outlive the Post)
	metaOp   [1]rdma.Op
	fuse     fuseSpec
}

// fuseSpec carries the commit-CAS operands into placeKV when the
// attempt fuses the commit into the placement batch.
type fuseSpec struct {
	slotAddr rdma.GlobalAddr
	atomOld  uint64
	fp       uint8
	verNew   uint8
}

func (sc *writeScratch) growBuf(n int) []byte {
	if cap(sc.buf) < n {
		sc.buf = make([]byte, n)
	}
	return sc.buf[:n]
}

func (sc *writeScratch) growDelta(n int) []byte {
	if cap(sc.delta) < n {
		sc.delta = make([]byte, n)
	}
	return sc.delta[:n]
}

// ClientStats counts notable client-side events.
type ClientStats struct {
	Ops           uint64
	Searches      uint64
	Inserts       uint64
	Updates       uint64
	Deletes       uint64
	Invalidations uint64
	CASRetries    uint64
	LockWaits     uint64
	DegradedReads uint64
	CacheHits     uint64
	CacheMisses   uint64
	CacheNegHits  uint64 // negative entries validated: miss answered in one doorbell
	MirrorHits    uint64 // GETs served from the hot-bucket mirror
	MirrorNegHits uint64 // absences proven by a mirror scan + version check
	BlocksAlloc   uint64
	BlocksReused  uint64
	CASIssued     uint64
	ReadsIssued   uint64
	WritesIssued  uint64
	BytesRead     uint64
	BytesWritten  uint64

	// Fused write path (DESIGN.md §13).
	WriteFused          uint64 // commits fused into the placement batch (1 RTT)
	WriteFallback       uint64 // attempts that used the two-phase commit
	DeltaSkips          uint64 // delta copies not written (dead target or lost write)
	BlockPrefetchHits   uint64 // block refills served by the prefetcher
	BlockPrefetchMisses uint64 // refills that fell back to a synchronous alloc
}

type pendKey struct {
	mn    int
	block int
}

type openBlock struct {
	class    uint8
	mn       int
	idx      int
	stripe   uint32
	xorID    uint8
	copyIdx  uint32
	reused   bool
	oldData  []byte
	slotSize int
	slots    []int // writable slot indices remaining
	deltas   []deltaTarget
	// viewEpoch is the membership epoch the delta targets were
	// resolved under; recovery can relocate DELTA blocks, so the
	// targets are refreshed when the epoch moves.
	viewEpoch uint64
}

type deltaTarget struct {
	mn       int
	blockOff uint64
}

func newClient(cl *Cluster, id uint16) *Client {
	c := &Client{
		cl:      cl,
		id:      id,
		bvLive:  cl.bvLive,
		met:     &cl.cacheMet,
		wmet:    &cl.writeMet,
		open:    make(map[uint8]*openBlock),
		pending: make(map[pendKey][]uint32),
	}
	c.cache = newClientCache(cl.Cfg.cacheEntries())
	if c.cache != nil {
		c.cache.met = c.met
		c.met.Entries.Add(0) // touch so the family exports even before traffic
		c.met.Bytes.Add(int64(c.cache.Bytes()))
	}
	c.mirror = newBucketMirror(cl.Cfg.offloadBuckets(), c.met)
	return c
}

// CacheStats reports the client's cache occupancy and footprint
// (entries, resident bytes including the mirror, mirrored buckets,
// CLOCK evictions). Harnesses use it to assert the memory bound.
func (c *Client) CacheStats() (entries int, bytes uint64, offloaded int, evictions uint64) {
	return c.cache.Len(), c.cache.Bytes() + c.mirror.Bytes(), c.mirror.Len(), c.cache.Evictions()
}

// Attach binds the client to its process context. It must be called
// from the client's own process before any operation. When the fabric
// honours the ordered-batch contract, commit CASes fuse into the
// placement doorbell; when Config.BlockPrefetch is on, a background
// worker process is spawned alongside the client to pre-provision DATA
// blocks and absorb seal/bitmap-flush RPCs.
func (c *Client) Attach(ctx rdma.Ctx) {
	c.ctx = ctx
	c.ot, _ = ctx.(obs.OpTracer)
	c.ordered = rdma.IsOrderedBatch(ctx)
	if c.cl.Cfg.BlockPrefetch && c.pf == nil {
		c.pf = newBlockPrefetcher()
		c.cl.pl.Spawn(ctx.Node(), fmt.Sprintf("prefetch%d", c.id), c.prefetchLoop)
	}
}

// noteFallback counts a two-phase (unfused) commit attempt and its
// reason.
func (c *Client) noteFallback(reason *atomic.Uint64) {
	c.Stats.WriteFallback++
	reason.Add(1)
}

// ID returns the client's cluster-unique id.
func (c *Client) ID() uint16 { return c.id }

// --- verb helpers with accounting ---

func (c *Client) vread(buf []byte, addr rdma.GlobalAddr) error {
	c.Stats.ReadsIssued++
	c.Stats.BytesRead += uint64(len(buf))
	return c.ctx.Read(buf, addr)
}

func (c *Client) vbatch(ops []rdma.Op) error {
	for i := range ops {
		switch ops[i].Kind {
		case rdma.OpRead:
			c.Stats.ReadsIssued++
			c.Stats.BytesRead += uint64(len(ops[i].Buf))
		case rdma.OpWrite:
			c.Stats.WritesIssued++
			c.Stats.BytesWritten += uint64(len(ops[i].Buf))
		case rdma.OpCAS, rdma.OpFAA:
			c.Stats.CASIssued++
		}
	}
	return c.ctx.Batch(ops)
}

func (c *Client) vcas(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	c.Stats.CASIssued++
	return c.ctx.CAS(addr, old, new)
}

// waitIndexReady blocks while the key's home MN index partition is
// down (§3.4.1: requests to the affected index range are blocked until
// the Index Area is recovered).
func (c *Client) waitIndexReady(mn int) {
	for {
		_, failed, idxReady, _ := c.cl.view.snapshotMN(mn)
		if !failed || idxReady {
			return
		}
		c.ctx.Sleep(200 * time.Microsecond)
	}
}

// --- SEARCH ---

// Search returns the value of key, or ErrNotFound. The returned slice
// is freshly allocated; use SearchAppend to reuse a caller buffer.
func (c *Client) Search(key []byte) ([]byte, error) {
	return c.SearchAppend(nil, key)
}

// SearchAppend appends the value of key to dst and returns the
// extended slice (or nil, ErrNotFound). With a caller-provided dst of
// sufficient capacity, a cache-hit GET performs zero heap allocations.
func (c *Client) SearchAppend(dst, key []byte) ([]byte, error) {
	if c.ot != nil {
		c.ot.OpBegin("get")
		val, err := c.search(dst, key)
		c.ot.OpEnd(err != nil && !errors.Is(err, ErrNotFound))
		return val, err
	}
	return c.search(dst, key)
}

func (c *Client) search(dst, key []byte) ([]byte, error) {
	c.Stats.Ops++
	c.Stats.Searches++
	h := racehash.Hash(key)
	mn := racehash.HomeMN(h, c.cl.Cfg.Layout.NumMNs)
	fp := racehash.Fingerprint(h)
	c.waitIndexReady(mn)

	sawMiss := false
	if ent := c.cache.lookup(h, key); ent != nil {
		switch {
		case ent.neg():
			if c.negValid(ent, h, mn) {
				c.Stats.CacheNegHits++
				c.met.NegHits.Add(1)
				c.noteHot(h, mn)
				return nil, ErrNotFound
			}
			// Stale negative conclusion: requery with the version
			// piggyback (which refreshes or replaces the entry).
			sawMiss = true
		case ent.flags&entMissed != 0:
			// Miss candidate: the key missed before, so this query
			// snapshots versions and installs a validated negative.
			c.Stats.CacheMisses++
			c.met.Misses.Add(1)
			sawMiss = true
		default:
			c.Stats.CacheHits++
			c.met.Hits.Add(1)
			val, err := c.cachedRead(dst, key, ent)
			if err == nil || errors.Is(err, ErrNotFound) {
				c.noteHot(h, mn)
				return val, err
			}
			// Stale or torn: fall back to a full index query.
		}
	} else {
		c.Stats.CacheMisses++
		c.met.Misses.Add(1)
	}
	if c.mirror != nil && c.bvLive {
		if val, err, served := c.mirrorSearch(dst, key, h, mn, fp); served {
			return val, err
		}
	}
	return c.querySearch(dst, key, h, mn, fp, sawMiss)
}

// negValid revalidates a negative entry: one doorbell of two 8-byte
// bucket-version reads. Equality with the populated versions proves
// neither candidate bucket changed since the absence was observed, so
// the key is still absent (the bump lands before any writer's ack).
// Entries from an older view epoch are never trusted — a rebuilt MN
// restarts its version counters.
func (c *Client) negValid(ent *cacheEnt, h uint64, mn int) bool {
	if !c.bvLive || ent.mn != mn || ent.epoch != c.cl.view.epochNow() {
		return false
	}
	l := c.cl.L
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	a1, ok1 := c.cl.Addr(mn, l.BucketVerOff(i1))
	a2, ok2 := c.cl.Addr(mn, l.BucketVerOff(i2))
	if !ok1 || !ok2 {
		return false
	}
	sc := &c.scratch
	ops := sc.ops[:0]
	ops = append(ops,
		rdma.Op{Kind: rdma.OpRead, Addr: a1, Buf: sc.word[0][:]},
		rdma.Op{Kind: rdma.OpRead, Addr: a2, Buf: sc.word[1][:]})
	if c.vbatch(ops) != nil || ops[0].Err != nil || ops[1].Err != nil {
		return false
	}
	return binary.LittleEndian.Uint64(sc.word[0][:]) == ent.negV1 &&
		binary.LittleEndian.Uint64(sc.word[1][:]) == ent.negV2
}

// noteHot feeds the mirror's promotion counters from the cache-hit
// stream too, so bucket heat reflects total GET traffic rather than
// only misses: when CLOCK pressure later evicts a hot key from the
// entry cache, its bucket is usually already resident and the refill
// costs one RTT through the mirror.
func (c *Client) noteHot(h uint64, mn int) {
	if c.mirror == nil || !c.bvLive {
		return
	}
	i1, _ := racehash.BucketPair(h, c.cl.L.NumBuckets())
	c.mirror.note(mn, i1)
}

var errStaleCache = errors.New("core: stale cache entry")

// errTornRead reports a committed slot whose KV pair read back torn or
// unwritten (fence 0). With fused commits on a wall-clock fabric the
// tail CAS can land an instant before the KV write's bytes do (they
// complete in issue order per connection, but readers race the window
// between them — and a chaos-lost placement write is repaired by the
// writer after its commit). Treating the state as transient and
// retrying is always correct: the pair either appears or the slot
// moves on.
var errTornRead = errors.New("core: torn or unwritten KV under a committed slot")

// cachedRead performs the cache-accelerated read of §3.5.1: with
// CacheSlotAddr it reads the KV pair and the 8-byte slot Atomic word in
// one doorbell batch; if the slot is unchanged the KV is valid (the
// slot CAS is the commit point). Without CacheSlotAddr (the "+CKPT"
// factor-analysis configuration) the client must re-read the whole
// bucket to locate and validate the slot.
// All buffers come from the client's readScratch, so a steady-state
// hit is allocation-free.
func (c *Client) cachedRead(dst, key []byte, ent *cacheEnt) ([]byte, error) {
	if ent.meta.Len == 0 {
		return nil, errStaleCache
	}
	if c.cl.Cfg.CacheValues && c.cl.Cfg.CacheSlotAddr && ent.flags&entVal != 0 {
		return c.cachedValRead(dst, key, ent)
	}
	atom := layout.UnpackAtomic(ent.atomic)
	kvAddr, ok := c.cl.PackedAddr(atom.Addr)
	sc := &c.scratch
	kvBuf := sc.growKV(int(ent.meta.Len) * 64)

	ops := sc.ops[:0]
	ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: kvAddr, Buf: kvBuf})
	if c.cl.Cfg.CacheSlotAddr {
		// The slot's address is cached: one 8-byte validation read.
		slotAddr, idxOK := c.cl.Addr(ent.mn, ent.slotOff)
		if !idxOK {
			return nil, errStaleCache
		}
		ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: slotAddr, Buf: sc.word[0][:]})
	} else {
		// Value-only cache (the "+CKPT" configuration): locating the
		// slot to validate requires re-reading both candidate buckets,
		// like the FUSEE baseline.
		h := racehash.Hash(key)
		i1, i2 := racehash.BucketPair(h, c.cl.L.NumBuckets())
		if sc.b1 == nil {
			sc.b1 = make([]byte, layout.BucketSize)
			sc.b2 = make([]byte, layout.BucketSize)
		}
		bufs := [2][]byte{sc.b1, sc.b2}
		for bi, b := range [2]uint64{i1, i2} {
			a, idxOK := c.cl.Addr(ent.mn, c.cl.L.BucketOff(b))
			if !idxOK {
				return nil, errStaleCache
			}
			ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: a, Buf: bufs[bi]})
		}
	}
	err := c.vbatch(ops)
	for i := 1; i < len(ops); i++ {
		if ops[i].Err != nil {
			return nil, errStaleCache // index node changed under us
		}
	}
	if ops[0].Err != nil {
		if !ok || errors.Is(ops[0].Err, rdma.ErrNodeFailed) {
			if dErr := c.degradedRead(kvBuf, atom.Addr); dErr != nil {
				return nil, errStaleCache
			}
			err = nil
		} else {
			return nil, err
		}
	}

	cur, curOK := c.currentAtomic(ent, ops)
	if !curOK {
		return nil, errStaleCache
	}
	if cur == ent.atomic {
		return c.finishRead(dst, key, ent, kvBuf)
	}
	// Slot changed: refresh the cache and read the new KV (§3.5.1
	// "otherwise, it reads the new KV pair based on the new index
	// slot").
	ent.atomic = cur
	newAtom := layout.UnpackAtomic(cur)
	if newAtom.Addr == 0 {
		return nil, errStaleCache
	}
	if err := c.readKVBytes(kvBuf, newAtom.Addr); err != nil {
		return nil, errStaleCache
	}
	return c.finishRead(dst, key, ent, kvBuf)
}

// cachedValRead serves a hit from the entry's cached value bytes under
// a single 8-byte read of the slot Atomic word (Config.CacheValues).
// The word is the commit point of every mutation that can change the
// pair — update, delete and reclamation move all CAS it — so finding it
// unchanged proves the cached bytes are still the committed pair. On a
// changed word the new pair is chased through the new Atomic, exactly
// like the §3.5.1 slot-address path, and the cached copy refreshed.
func (c *Client) cachedValRead(dst, key []byte, ent *cacheEnt) ([]byte, error) {
	slotAddr, ok := c.cl.Addr(ent.mn, ent.slotOff)
	if !ok {
		return nil, errStaleCache
	}
	sc := &c.scratch
	ops := sc.ops[:0]
	ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: slotAddr, Buf: sc.word[0][:]})
	if c.vbatch(ops) != nil || ops[0].Err != nil {
		return nil, errStaleCache
	}
	cur := binary.LittleEndian.Uint64(sc.word[0][:])
	if cur != ent.atomic {
		ent.atomic = cur
		newAtom := layout.UnpackAtomic(cur)
		if newAtom.Addr == 0 {
			return nil, errStaleCache
		}
		kvBuf := sc.growKV(int(ent.meta.Len) * 64)
		if err := c.readKVBytes(kvBuf, newAtom.Addr); err != nil {
			return nil, errStaleCache
		}
		return c.finishRead(dst, key, ent, kvBuf)
	}
	if ent.tomb() {
		return nil, ErrNotFound
	}
	return append(dst, ent.val...), nil
}

// currentAtomic extracts the slot's current Atomic word from the
// validation reads.
func (c *Client) currentAtomic(ent *cacheEnt, ops []rdma.Op) (uint64, bool) {
	if c.cl.Cfg.CacheSlotAddr {
		return binary.LittleEndian.Uint64(ops[1].Buf), true
	}
	// Find the slot within whichever candidate bucket holds it.
	bucket := ent.slotOff / layout.BucketSize
	rel := ent.slotOff % layout.BucketSize
	for _, op := range ops[1:] {
		if op.Addr.Off == bucket*layout.BucketSize {
			return binary.LittleEndian.Uint64(op.Buf[rel:]), true
		}
	}
	return 0, false
}

// finishRead decodes and validates a KV read under a verified slot,
// keeping the cache entry's tombstone state current. The value is
// appended to dst (decoding goes through the scratch KV, so no
// allocation happens beyond dst growth).
func (c *Client) finishRead(dst, key []byte, ent *cacheEnt, kvBuf []byte) ([]byte, error) {
	sc := &c.scratch
	ok, err := layout.DecodeKVInto(&sc.dkv, kvBuf)
	if err != nil || !ok {
		return nil, errStaleCache
	}
	kv := &sc.dkv
	if !bytes.Equal(kv.Key, key) || kv.SlotVersion == layout.InvalidVersion {
		return nil, errStaleCache
	}
	ent.flags &^= entTomb
	if kv.Tombstone {
		ent.flags |= entTomb
		if c.cl.Cfg.CacheValues {
			c.cache.storeVal(ent, nil)
		}
		return nil, ErrNotFound
	}
	if c.cl.Cfg.CacheValues {
		c.cache.storeVal(ent, kv.Val)
	}
	return append(dst, kv.Val...), nil
}

// querySearch reads the key's two candidate buckets and chases
// fingerprint matches. When the fabric maintains bucket version words
// it piggybacks the two 8-byte words onto the bucket batch (read
// first, so "word still equals v" later proves the images current) —
// but only when the extra verbs will pay for themselves: when the
// bucket pair is hot enough to promote into the mirror, or when the
// key is a known miss candidate (sawMiss) so a clean miss installs a
// validated negative entry. A first-time miss stays at the paper's
// verb count and only marks the candidate.
func (c *Client) querySearch(dst, key []byte, h uint64, mn int, fp uint8, sawMiss bool) ([]byte, error) {
	l := c.cl.L
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	for attempt := 0; attempt < maxOpRetries; attempt++ {
		c.waitIndexReady(mn)
		promote := c.bvLive && c.mirror != nil && c.mirror.note(mn, i1)
		wantVer := c.bvLive && (promote || (c.cl.Cfg.CacheNegative && c.cache != nil && sawMiss))
		epoch := c.cl.view.epochNow()
		b1, b2, v1, v2, vOK, err := c.readBucketsVer(mn, i1, i2, wantVer)
		if err != nil {
			c.ctx.Sleep(100 * time.Microsecond)
			continue
		}
		if promote && vOK && epoch == c.cl.view.epochNow() {
			c.mirror.install(mn, i1, b1, v1, epoch)
			c.mirror.install(mn, i2, b2, v2, epoch)
		}
		matches := racehash.ScanBuckets(fp, b1, b2)
		stale := false
		for _, m := range matches {
			kv, err := c.readKV(m.Atomic, m.Meta)
			if err != nil {
				stale = true
				continue
			}
			if kv == nil {
				// Fence-0 pair under a non-empty slot: a fused commit's
				// KV write still in flight (errTornRead rationale).
				// Requery rather than conclude absence.
				stale = true
				continue
			}
			if !bytes.Equal(kv.Key, key) || kv.SlotVersion == layout.InvalidVersion {
				continue
			}
			c.updateCache(key, h, mn, m, kv.Tombstone, kv.Val)
			if kv.Tombstone {
				return nil, ErrNotFound
			}
			return append(dst, kv.Val...), nil
		}
		if !stale {
			if c.cl.Cfg.CacheNegative {
				if vOK {
					// Clean miss under known bucket versions: remember
					// the absence. Future GETs revalidate it with one
					// doorbell of two 8-byte reads.
					if ent := c.cache.upsert(h, key); ent != nil {
						ent.flags = ent.flags&^(entTomb|entMissed) | entNeg
						ent.mn = mn
						ent.negV1, ent.negV2 = v1, v2
						ent.epoch = epoch
					}
				} else if c.bvLive {
					// First clean miss: mark the key so the next query
					// piggybacks the version words and upgrades this to
					// a validated negative entry.
					if ent := c.cache.upsert(h, key); ent != nil {
						ent.flags = ent.flags&^(entTomb|entNeg) | entMissed
					}
				}
			}
			return nil, ErrNotFound
		}
		c.ctx.Sleep(20 * time.Microsecond)
	}
	return nil, ErrRetriesExhausted
}

// readBuckets fetches the key's two candidate buckets in one doorbell
// batch (write path; no version piggyback, preserving the paper's verb
// counts).
func (c *Client) readBuckets(h uint64, mn int) ([]byte, []byte, error) {
	i1, i2 := racehash.BucketPair(h, c.cl.L.NumBuckets())
	b1, b2, _, _, _, err := c.readBucketsVer(mn, i1, i2, false)
	return b1, b2, err
}

// readBucketsVer fetches both candidate buckets, optionally preceded —
// in the same in-order doorbell batch — by their version words. Since
// servers bump a bucket's word before acking any verb that mutates it,
// an image read after its word can only be newer: re-reading the word
// later and finding it unchanged proves the image was still current.
func (c *Client) readBucketsVer(mn int, i1, i2 uint64, withVer bool) (b1, b2 []byte, v1, v2 uint64, vOK bool, err error) {
	l := c.cl.L
	a1, ok1 := c.cl.Addr(mn, l.BucketOff(i1))
	a2, ok2 := c.cl.Addr(mn, l.BucketOff(i2))
	if !ok1 || !ok2 {
		return nil, nil, 0, 0, false, rdma.ErrNodeFailed
	}
	b1 = make([]byte, layout.BucketSize)
	b2 = make([]byte, layout.BucketSize)
	var w1, w2 [8]byte
	ops := make([]rdma.Op, 0, 4)
	if withVer {
		va1, _ := c.cl.Addr(mn, l.BucketVerOff(i1))
		va2, _ := c.cl.Addr(mn, l.BucketVerOff(i2))
		ops = append(ops,
			rdma.Op{Kind: rdma.OpRead, Addr: va1, Buf: w1[:]},
			rdma.Op{Kind: rdma.OpRead, Addr: va2, Buf: w2[:]})
	}
	ops = append(ops,
		rdma.Op{Kind: rdma.OpRead, Addr: a1, Buf: b1},
		rdma.Op{Kind: rdma.OpRead, Addr: a2, Buf: b2})
	if err := c.vbatch(ops); err != nil {
		return nil, nil, 0, 0, false, err
	}
	if withVer && ops[0].Err == nil && ops[1].Err == nil {
		vOK = true
		v1 = binary.LittleEndian.Uint64(w1[:])
		v2 = binary.LittleEndian.Uint64(w2[:])
	}
	return b1, b2, v1, v2, vOK, nil
}

// mirrorSearch tries to serve the GET from CN-resident copies of both
// candidate buckets: a local fingerprint scan, then one doorbell that
// reads the KV pair and — after it — both bucket version words. Words
// unchanged proves the local images (and so the slot the KV was read
// through) were still current when the KV read executed. On a version
// mismatch the images are refreshed in place and the scan retried;
// buckets whose refreshes outpace their hits are demoted (write
// pressure). served=false falls back to the remote bucket query.
func (c *Client) mirrorSearch(dst, key []byte, h uint64, mn int, fp uint8) (val []byte, err error, served bool) {
	l := c.cl.L
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	e1 := c.mirror.get(mn, i1)
	e2 := c.mirror.get(mn, i2)
	if e1 == nil || e2 == nil {
		return nil, nil, false
	}
	va1, ok1 := c.cl.Addr(mn, l.BucketVerOff(i1))
	va2, ok2 := c.cl.Addr(mn, l.BucketVerOff(i2))
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	sc := &c.scratch
	ents := [2]*mirrorEnt{e1, e2}
	vas := [2]rdma.GlobalAddr{va1, va2}
	for attempt := 0; attempt < 4; attempt++ {
		if ep := c.cl.view.epochNow(); e1.epoch != ep || e2.epoch != ep {
			// Membership moved since the copies were read: a rebuilt MN
			// restarts its version counters, so the copies are unusable.
			c.mirror.demote(mn, i1)
			c.mirror.demote(mn, i2)
			return nil, nil, false
		}
		verMatch := func(ops []rdma.Op, o int) bool {
			return ops[o].Err == nil && ops[o+1].Err == nil &&
				binary.LittleEndian.Uint64(sc.word[0][:]) == e1.ver &&
				binary.LittleEndian.Uint64(sc.word[1][:]) == e2.ver
		}
		found := false
		for ei, e := range ents {
			for s := 0; s < layout.BucketSlots; s++ {
				w := binary.LittleEndian.Uint64(e.buf[s*layout.SlotSize:])
				if w == 0 {
					continue
				}
				a := layout.UnpackAtomic(w)
				if a.FP != fp || a.Addr == 0 {
					continue
				}
				meta := layout.UnpackMeta(binary.LittleEndian.Uint64(e.buf[s*layout.SlotSize+layout.SlotMetaOff:]))
				if meta.Len == 0 {
					return nil, nil, false // stale length hint: take the slow path
				}
				kvAddr, ok := c.cl.PackedAddr(a.Addr)
				if !ok {
					return nil, nil, false // KV's MN down: slow path handles degraded reads
				}
				// A positive hit only needs the matched bucket's
				// version word: any mutation of this slot — update,
				// delete, reclamation move — goes through a CAS on it
				// and bumps this bucket's version before acking. The
				// sibling bucket is irrelevant to the located pair.
				kvBuf := sc.growKV(int(meta.Len) * 64)
				ops := sc.ops[:0]
				ops = append(ops,
					rdma.Op{Kind: rdma.OpRead, Addr: kvAddr, Buf: kvBuf},
					rdma.Op{Kind: rdma.OpRead, Addr: vas[ei], Buf: sc.word[0][:]})
				if c.vbatch(ops) != nil || ops[0].Err != nil {
					return nil, nil, false
				}
				if ops[1].Err != nil || binary.LittleEndian.Uint64(sc.word[0][:]) != e.ver {
					found = true // bucket moved: refresh and rescan
					break
				}
				okDec, decErr := layout.DecodeKVInto(&sc.dkv, kvBuf)
				if decErr != nil || !okDec {
					return nil, nil, false
				}
				kv := &sc.dkv
				if !bytes.Equal(kv.Key, key) || kv.SlotVersion == layout.InvalidVersion {
					continue // fingerprint collision: keep scanning
				}
				e.hits++
				// Refill the entry cache from the mirror hit, so the
				// key's next GET is a single slot-validation read.
				bkt := i1
				if ei == 1 {
					bkt = i2
				}
				c.cacheSet(h, key, mn, l.SlotOff(bkt, s), w, meta, kv.Tombstone, kv.Val)
				if kv.Tombstone {
					c.Stats.MirrorNegHits++
					c.met.MirrorNegHits.Add(1)
					return nil, ErrNotFound, true
				}
				c.Stats.MirrorHits++
				c.met.MirrorHits.Add(1)
				return append(dst, kv.Val...), nil, true
			}
			if found {
				break
			}
		}
		if !found {
			// No local candidate: one doorbell of two 8-byte reads
			// either proves the absence or flags the images stale.
			ops := sc.ops[:0]
			ops = append(ops,
				rdma.Op{Kind: rdma.OpRead, Addr: va1, Buf: sc.word[0][:]},
				rdma.Op{Kind: rdma.OpRead, Addr: va2, Buf: sc.word[1][:]})
			if c.vbatch(ops) != nil {
				return nil, nil, false
			}
			if verMatch(ops, 0) {
				e1.hits++
				e2.hits++
				c.Stats.MirrorNegHits++
				c.met.MirrorNegHits.Add(1)
				return nil, ErrNotFound, true
			}
		}
		// Version mismatch: refresh both images in place, demoting the
		// pair when write pressure makes refreshes outpace hits.
		epoch := c.cl.view.epochNow()
		b1, b2, v1, v2, vOK, rerr := c.readBucketsVer(mn, i1, i2, true)
		if rerr != nil || !vOK {
			return nil, nil, false
		}
		e1.refresh(b1, v1, epoch)
		e2.refresh(b2, v2, epoch)
		if e1.pressured() || e2.pressured() {
			c.mirror.demote(mn, i1)
			c.mirror.demote(mn, i2)
			return nil, nil, false
		}
	}
	return nil, nil, false
}

// updateCache records the located slot (and, under CacheValues, the
// decoded value) for future cache-accelerated reads and writes.
func (c *Client) updateCache(key []byte, h uint64, mn int, m racehash.Match, tomb bool, val []byte) {
	l := c.cl.L
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	bucket := i1
	if m.Bucket == 1 {
		bucket = i2
	}
	c.cacheSet(h, key, mn, l.SlotOff(bucket, m.Slot), m.Atomic.Pack(), m.Meta, tomb, val)
}

// cacheSet installs (or refreshes) a positive cache entry. val is the
// committed value (nil for tombstones); it is retained only under
// Config.CacheValues.
func (c *Client) cacheSet(h uint64, key []byte, mn int, slotOff, atomic uint64, meta layout.SlotMeta, tomb bool, val []byte) {
	ent := c.cache.upsert(h, key)
	if ent == nil {
		return
	}
	ent.flags &^= entNeg | entTomb | entMissed
	if tomb {
		ent.flags |= entTomb
		val = nil
	}
	ent.mn = mn
	ent.slotOff = slotOff
	ent.atomic = atomic
	ent.meta = meta
	if c.cl.Cfg.CacheValues {
		c.cache.storeVal(ent, val)
	}
}

// readKV reads and decodes the KV pair a slot points to, using the
// slot Meta's length hint and falling back to a header-then-body read
// when the hint is stale (§3.2.2: the client repairs stale hints).
func (c *Client) readKV(atom layout.SlotAtomic, meta layout.SlotMeta) (*layout.KV, error) {
	n := int(meta.Len) * 64
	if n == 0 {
		n = 64
	}
	buf := make([]byte, n)
	if err := c.readKVBytes(buf, atom.Addr); err != nil {
		return nil, err
	}
	kv, err := layout.DecodeKV(buf)
	if err == nil && kv != nil {
		return kv, nil
	}
	if kv == nil && err == nil {
		return nil, nil
	}
	// Length hint may be stale: derive the true class from the header
	// and re-read.
	keyLen := int(binary.LittleEndian.Uint16(buf[2:]))
	valLen := int(binary.LittleEndian.Uint32(buf[4:]))
	real := layout.KVClassSize(keyLen, valLen)
	if real <= n || real > int(c.cl.Cfg.Layout.BlockSize) {
		return nil, err
	}
	buf = make([]byte, real)
	if err := c.readKVBytes(buf, atom.Addr); err != nil {
		return nil, err
	}
	return layout.DecodeKV(buf)
}

// readKVBytes reads len(buf) bytes at a packed KV address, falling
// back to a degraded erasure-decoded read when the block's MN is down
// (§3.4.1).
func (c *Client) readKVBytes(buf []byte, packed uint64) error {
	addr, ok := c.cl.PackedAddr(packed)
	if ok {
		err := c.vread(buf, addr)
		if err == nil {
			return nil
		}
		if !errors.Is(err, rdma.ErrNodeFailed) {
			return err
		}
	}
	return c.degradedRead(buf, packed)
}

// degradedRead reconstructs a byte range of a lost DATA block from the
// stripe's survivors: P-parity range ⊕ surviving data ranges ⊕ all
// pending delta ranges (see readStripeRange). Cost: ~k+2 small reads
// instead of one, which is why degraded SEARCH runs at roughly half
// throughput (Figure 14). When the stripe's survivors are themselves
// unavailable (a second failure), the client waits for tier-3 recovery.
func (c *Client) degradedRead(buf []byte, packed uint64) error {
	c.Stats.DegradedReads++
	start := c.ctx.Now()
	err := c.degradedReadInner(buf, packed)
	if c.ot != nil {
		c.ot.OpMark("degraded.read", start)
	}
	return err
}

func (c *Client) degradedReadInner(buf []byte, packed uint64) error {
	mn, off := layout.UnpackAddr(packed)
	if err := readStripeRange(c.ctx, c.cl, packed, buf); err == nil {
		return nil
	}
	// Second failure took the row parity too (§3.4.1 remark 2): fall
	// back to full-stripe reconstruction from whatever survives.
	if err := readStripeRangeFull(c.ctx, c.cl, packed, buf); err == nil {
		return nil
	}
	return c.waitBlocksAndRead(buf, int(mn), off)
}

// waitBlocksAndRead waits for tier-3 recovery of mn and retries a
// plain read (used when degraded decoding is impossible, e.g. a double
// failure hit both the data and the row-parity MN).
func (c *Client) waitBlocksAndRead(buf []byte, mn int, off uint64) error {
	for {
		_, failed, _, blocksReady := c.cl.view.snapshotMN(mn)
		if !failed && blocksReady {
			addr, ok := c.cl.Addr(mn, off)
			if !ok {
				continue
			}
			return c.vread(buf, addr)
		}
		c.ctx.Sleep(500 * time.Microsecond)
	}
}

// --- writes (INSERT / UPDATE / DELETE) ---

// Insert stores the key-value pair (upserting if present).
func (c *Client) Insert(key, val []byte) error {
	c.Stats.Inserts++
	return c.tracedWrite("insert", key, val, false)
}

// Update overwrites the value of key (upserting if absent).
func (c *Client) Update(key, val []byte) error {
	c.Stats.Updates++
	return c.tracedWrite("update", key, val, false)
}

// Delete removes key by committing a tombstone KV pair (a zero-length
// value "used solely for logging", §4.2). It returns ErrNotFound when
// the key is absent.
func (c *Client) Delete(key []byte) error {
	c.Stats.Deletes++
	return c.tracedWrite("delete", key, nil, true)
}

// tracedWrite brackets write with an op span (name must be a static
// string). ErrNotFound is an answer, not a failure.
func (c *Client) tracedWrite(name string, key, val []byte, tombstone bool) error {
	if c.ot == nil {
		return c.write(key, val, tombstone)
	}
	c.ot.OpBegin(name)
	err := c.write(key, val, tombstone)
	c.ot.OpEnd(err != nil && !errors.Is(err, ErrNotFound))
	return err
}

// write implements Algorithm 1 (slot versioning) around the
// out-of-place write path: place the new KV and its deltas, then
// commit with one CAS on the slot's Atomic word.
func (c *Client) write(key, val []byte, tombstone bool) error {
	c.Stats.Ops++
	h := racehash.Hash(key)
	mn := racehash.HomeMN(h, c.cl.Cfg.Layout.NumMNs)
	fp := racehash.Fingerprint(h)
	lockWait := time.Duration(0)

	for attempt := 0; attempt < maxOpRetries; attempt++ {
		c.waitIndexReady(mn)
		slotOff, atomOld, metaOld, found, isTomb, err := c.locateForWrite(key, h, mn, fp)
		if err != nil {
			if errors.Is(err, ErrNotFound) && tombstone {
				return ErrNotFound
			}
			if errors.Is(err, rdma.ErrNodeFailed) {
				c.ctx.Sleep(100 * time.Microsecond)
				continue
			}
			if errors.Is(err, errTornRead) {
				// A committed slot pointed at a torn or unwritten pair —
				// a fused commit's KV write still in flight (or being
				// repaired). Transient by construction: retry.
				c.ctx.Sleep(20 * time.Microsecond)
				continue
			}
			return err
		}
		if tombstone && (!found || isTomb) {
			return ErrNotFound
		}

		// Slot versioning (Algorithm 1).
		verNew := uint8(1)
		epochKV := uint64(0)
		var lockedVal uint64 // non-zero when we hold the Meta lock
		rollover := false
		metaAddr, _ := c.cl.Addr(mn, slotOff+layout.SlotMetaOff)
		if found {
			if metaOld.Locked() {
				// Another client is rolling the epoch: retry, and
				// after LockTimeout force-relock (remark 2, §3.2.2).
				c.Stats.LockWaits++
				if lockWait < c.cl.Cfg.LockTimeout {
					waitStart := c.ctx.Now()
					c.ctx.Sleep(c.cl.Cfg.LockRetry)
					if c.ot != nil {
						c.ot.OpMark("lock.wait", waitStart)
					}
					lockWait += c.cl.Cfg.LockRetry
					c.forgetCache(h, key)
					continue
				}
				force := layout.SlotMeta{Epoch: metaOld.Epoch + 2, Len: metaOld.Len}
				prev, err := c.vcas(metaAddr, metaOld.Pack(), force.Pack())
				if err != nil || prev != metaOld.Pack() {
					lockWait = 0
					c.forgetCache(h, key)
					continue
				}
				lockedVal = force.Pack()
				metaOld = force
				epochKV = force.Epoch + 1
			}
			atom := layout.UnpackAtomic(atomOld)
			verNew = atom.Ver + 1 // wraps at 255→0
			if lockedVal == 0 {
				if atom.Ver == layout.VerMax {
					// Epoch rollover: lock Meta by making it odd.
					rollover = true
					lock := layout.SlotMeta{Epoch: metaOld.Epoch + 1, Len: metaOld.Len}
					prev, err := c.vcas(metaAddr, metaOld.Pack(), lock.Pack())
					if err != nil || prev != metaOld.Pack() {
						c.Stats.CASRetries++
						c.forgetCache(h, key)
						continue
					}
					lockedVal = lock.Pack()
					epochKV = metaOld.Epoch + 2
				} else {
					epochKV = metaOld.Epoch
				}
			}
		}
		slotVersion := layout.SlotVersion(epochKV, verNew)

		// Decide whether this attempt can fuse the commit CAS into the
		// placement doorbell (DESIGN.md §13). Only the steady-state
		// UPDATE shape qualifies: a located slot with no Meta lock in
		// hand — inserts and epoch rollovers keep the two-phase shape.
		var fuse *fuseSpec
		switch {
		case !c.cl.Cfg.FusedCommit:
			c.noteFallback(&c.wmet.FallbackDisabled)
		case !c.ordered:
			c.noteFallback(&c.wmet.FallbackCapability)
		case !found:
			c.noteFallback(&c.wmet.FallbackInsert)
		case lockedVal != 0:
			if rollover {
				c.noteFallback(&c.wmet.FallbackRollover)
			} else {
				c.noteFallback(&c.wmet.FallbackLocked)
			}
		default:
			if slotAddr, ok := c.cl.Addr(mn, slotOff); ok {
				f := &c.wsc.fuse
				*f = fuseSpec{slotAddr: slotAddr, atomOld: atomOld, fp: fp, verNew: verNew}
				fuse = f
			} else {
				c.noteFallback(&c.wmet.FallbackAddr)
			}
		}

		var batchStart time.Duration
		if c.ot != nil && fuse != nil {
			batchStart = c.ctx.Now()
		}

		// Out-of-place write of the KV pair and its deltas — with the
		// commit CAS riding the same doorbell when fused.
		placed, err := c.placeKV(key, val, slotVersion, tombstone, fuse)
		if err != nil {
			if lockedVal != 0 {
				c.unlockMeta(metaAddr, lockedVal, epochKV, metaOld.Len)
			}
			return err
		}
		if placed.deltaSkips > 0 {
			c.Stats.DeltaSkips += uint64(placed.deltaSkips)
			c.wmet.DeltaSkips.Add(uint64(placed.deltaSkips))
		}
		classUnits := uint8(layout.KVClassSize(len(key), len(val)) / 64)

		newAtomic := placed.newAtomic
		committed := placed.committed
		if placed.fused {
			c.Stats.WriteFused++
			c.wmet.Fused.Add(1)
			if c.ot != nil {
				c.ot.OpMark("commit.fused", batchStart)
			}
		} else {
			// Commit: one CAS on the Atomic word (the commit point).
			newAtomic = layout.SlotAtomic{FP: fp, Ver: verNew, Addr: placed.addr}.Pack()
			slotAddr, ok := c.cl.Addr(mn, slotOff)
			if !ok {
				c.invalidateKV(placed)
				if lockedVal != 0 {
					c.unlockMeta(metaAddr, lockedVal, epochKV, metaOld.Len)
				}
				continue
			}
			prev, cerr := c.vcas(slotAddr, atomOld, newAtomic)
			committed = cerr == nil && prev == atomOld
		}
		if !committed {
			// Lost the race (or the CAS itself failed): invalidate our
			// KV pair (Algorithm 1 line 18) and retry against the fresh
			// slot state, with bounded backoff so a hot-key herd cannot
			// starve one client.
			c.Stats.CASRetries++
			c.invalidateKV(placed)
			c.markObsolete(placed.addr, classUnits)
			if lockedVal != 0 {
				c.unlockMeta(metaAddr, lockedVal, epochKV, metaOld.Len)
			}
			c.forgetCache(h, key)
			c.finishWrite()
			if attempt > 2 {
				shift := attempt
				if shift > 6 {
					shift = 6
				}
				c.ctx.Sleep(time.Duration(1+int(c.id)%4) * time.Microsecond << shift)
			}
			continue
		}

		// Committed. Unlock / repair the Meta word as needed.
		if lockedVal != 0 {
			c.unlockMeta(metaAddr, lockedVal, epochKV, classUnits)
		} else if !found || metaOld.Len != classUnits {
			// Stale length hint: single unsignaled RDMA_WRITE repair
			// (§3.2.2; fire-and-forget under selective signaling).
			m := layout.SlotMeta{Epoch: epochKV, Len: classUnits}
			sc := &c.wsc
			binary.LittleEndian.PutUint64(sc.metaW[:], m.Pack())
			sc.metaOp[0] = rdma.Op{Kind: rdma.OpWrite, Addr: metaAddr, Buf: sc.metaW[:]}
			c.Stats.WritesIssued++
			c.ctx.Post(sc.metaOp[:]) //nolint:errcheck // best-effort hint repair
		}
		if found {
			old := layout.UnpackAtomic(atomOld)
			c.markObsolete(old.Addr, layout.UnpackMeta(metaOld.Pack()).Len)
		}
		c.cacheSet(h, key, mn, slotOff, newAtomic,
			layout.SlotMeta{Epoch: epochKV, Len: classUnits}, tombstone, val)
		c.finishWrite()
		return nil
	}
	return ErrRetriesExhausted
}

// unlockMeta releases the Meta lock, installing the new even epoch and
// the current length hint (Algorithm 1 line 20).
func (c *Client) unlockMeta(addr rdma.GlobalAddr, lockedVal uint64, epochEven uint64, lenUnits uint8) {
	unlock := layout.SlotMeta{Epoch: epochEven, Len: lenUnits}
	c.vcas(addr, lockedVal, unlock.Pack()) //nolint:errcheck // a forced re-locker superseded us
}

// invalidateKV stamps InvalidVersion into an uncommitted KV pair so
// recovery never resurrects it (Algorithm 1 line 18). The pair's delta
// copies receive the matching XOR patch, preserving the stripe
// invariant DATA = enc ⊕ DELTA; placeKV precomputed the ops.
func (c *Client) invalidateKV(p placedKV) {
	if len(p.inv) == 0 {
		return
	}
	c.Stats.Invalidations++
	c.Stats.WritesIssued += uint64(len(p.inv))
	c.ctx.Post(p.inv) //nolint:errcheck // best effort
}

// forgetCache drops a (possibly stale) cache entry.
func (c *Client) forgetCache(h uint64, key []byte) { c.cache.remove(h, key) }

// finishWrite handles deferred post-commit work: sealing filled blocks
// and flushing batched free-bitmap updates. With the prefetcher
// running, both move off the critical path to the worker.
func (c *Client) finishWrite() {
	if len(c.pendingSeal) > 0 {
		if c.pf != nil && c.pf.enqueueSeal(c.pendingSeal) {
			c.pendingSeal = c.pendingSeal[:0]
		} else {
			for _, ob := range c.pendingSeal {
				c.sealBlock(ob)
			}
			c.pendingSeal = c.pendingSeal[:0]
		}
	}
	if c.pendingN >= c.cl.Cfg.BitmapFlushOps {
		c.FlushBitmaps()
	}
}

// locateForWrite finds the key's slot (via cache or index query). It
// returns the slot's offset, current Atomic word (0 if inserting into
// an empty slot), Meta word, whether the key already exists, and
// whether its committed pair is a tombstone.
func (c *Client) locateForWrite(key []byte, h uint64, mn int, fp uint8) (slotOff uint64, atomic uint64, meta layout.SlotMeta, found, isTomb bool, err error) {
	if c.cl.Cfg.CacheSlotAddr {
		// Trust the cache; a stale entry just costs one CAS retry. A
		// negative entry or miss candidate is no help here — it proves
		// (suspected) absence, not a slot location — so only positive
		// entries short-circuit.
		if ent := c.cache.lookup(h, key); ent != nil && ent.pos() {
			return ent.slotOff, ent.atomic, ent.meta, true, ent.tomb(), nil
		}
	}
	l := c.cl.L
	b1, b2, err := c.readBuckets(h, mn)
	if err != nil {
		return 0, 0, layout.SlotMeta{}, false, false, err
	}
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	bucketIdx := []uint64{i1, i2}
	torn := false
	for _, m := range racehash.ScanBuckets(fp, b1, b2) {
		kv, err := c.readKV(m.Atomic, m.Meta)
		if err != nil || kv == nil {
			// Unreadable or fence-0 pair under a committed slot: it may
			// be this very key mid-placement (fused commit window).
			// Concluding absence here would insert a duplicate into a
			// second slot, so force a retry instead.
			torn = true
			continue
		}
		if bytes.Equal(kv.Key, key) {
			off := l.SlotOff(bucketIdx[m.Bucket], m.Slot)
			return off, m.Atomic.Pack(), m.Meta, true, kv.Tombstone, nil
		}
	}
	if torn {
		return 0, 0, layout.SlotMeta{}, false, false, errTornRead
	}
	// Insert path: the preferred bucket is derived from the key hash
	// (balancing load across the pair) and the slot choice is the
	// first free one — deterministic per key, so racing inserters of
	// the same key collide on the same slot and the CAS resolves them.
	first, second := b1, b2
	fi, si := i1, i2
	if h>>32&1 == 1 {
		first, second = b2, b1
		fi, si = i2, i1
	}
	if s := racehash.FreeSlot(first); s >= 0 {
		return l.SlotOff(fi, s), 0, layout.SlotMeta{}, false, false, nil
	}
	if s := racehash.FreeSlot(second); s >= 0 {
		return l.SlotOff(si, s), 0, layout.SlotMeta{}, false, false, nil
	}
	return 0, 0, layout.SlotMeta{}, false, false, fmt.Errorf("aceso: both buckets full for key %q (resize not triggered)", key)
}

// placedKV describes a placed KV pair: its packed address, the
// precomputed invalidation ops (version-field patches for the pair and
// every delta copy), how many delta copies were skipped (dead target
// or lost write), and — for fused attempts — the commit outcome.
type placedKV struct {
	addr       uint64
	inv        []rdma.Op
	deltaSkips int
	fused      bool   // the commit CAS rode the placement batch
	committed  bool   // ... and won (meaningless unless fused)
	newAtomic  uint64 // the Atomic word the fused CAS installed
}

// placeKV appends the KV pair to an open DATA block of the right size
// class, writing the pair and its per-parity deltas in one doorbell
// batch (Figure 6 ①). With a fuse spec the commit CAS is appended as
// the batch tail — the ordered-batch contract guarantees it executes
// only after every placement write completed, collapsing the
// steady-state UPDATE to a single round trip (DESIGN.md §13). A fused
// batch is issued exactly once; the caller resolves the outcome from
// placedKV rather than placeKV retrying.
// All buffers and op slices come from the client's writeScratch, so a
// steady-state call is allocation-free.
func (c *Client) placeKV(key, val []byte, slotVersion uint64, tombstone bool, fuse *fuseSpec) (placedKV, error) {
	classSize := layout.KVClassSize(len(key), len(val))
	classUnits := uint8(classSize / 64)
	sc := &c.wsc
	for {
		ob, err := c.getBlock(classUnits)
		if err != nil {
			return placedKV{}, err
		}
		slot := ob.slots[0]
		off := c.cl.L.BlockOff(ob.idx) + uint64(slot*ob.slotSize)

		fence := uint8(1)
		var oldSlot []byte
		if ob.reused {
			oldSlot = ob.oldData[slot*ob.slotSize : (slot+1)*ob.slotSize]
			fence = layout.NextFence(oldSlot[0])
		}
		buf := sc.growBuf(ob.slotSize)
		layout.EncodeKV(buf, key, val, slotVersion, fence, tombstone)
		delta := buf
		if ob.reused {
			delta = sc.growDelta(ob.slotSize)
			copy(delta, buf)
			erasure.XorInto(delta, oldSlot)
		}

		dataAddr, ok := c.cl.Addr(ob.mn, off)
		if !ok {
			// Data MN died: abandon the block and allocate elsewhere
			// (§3.4.1: bypass failed MNs).
			delete(c.open, ob.class)
			continue
		}
		ops := sc.ops[:0]
		ops = append(ops, rdma.Op{Kind: rdma.OpWrite, Addr: dataAddr, Buf: buf})

		// Precompute the invalidation patch: stamping InvalidVersion
		// into the data slot changes the delta word by
		// slotVersion ⊕ InvalidVersion, keeping DATA = enc ⊕ DELTA.
		p := placedKV{addr: layout.PackAddr(uint16(ob.mn), off)}
		binary.LittleEndian.PutUint64(sc.invData[:], layout.InvalidVersion)
		inv := sc.inv[:0]
		inv = append(inv, rdma.Op{Kind: rdma.OpWrite,
			Addr: dataAddr.Add(layout.KVVersionOff), Buf: sc.invData[:]})
		deltaVer := binary.LittleEndian.Uint64(delta[layout.KVVersionOff:]) ^ slotVersion ^ layout.InvalidVersion
		binary.LittleEndian.PutUint64(sc.invDelta[:], deltaVer)

		// Delta copies the stripe wants but this write cannot reach
		// count as skips, so fault-bound accounting sees the real
		// fan-out rather than silently shrinking it.
		skips := c.cl.Cfg.deltaCopies() - len(ob.deltas)
		for _, dt := range ob.deltas {
			a, ok := c.cl.Addr(dt.mn, dt.blockOff+uint64(slot*ob.slotSize))
			if !ok {
				skips++
				continue
			}
			ops = append(ops, rdma.Op{Kind: rdma.OpWrite, Addr: a, Buf: delta})
			inv = append(inv, rdma.Op{Kind: rdma.OpWrite,
				Addr: a.Add(layout.KVVersionOff), Buf: sc.invDelta[:]})
		}
		nDelta := len(ops) - 1
		if fuse != nil {
			p.fused = true
			p.newAtomic = layout.SlotAtomic{FP: fuse.fp, Ver: fuse.verNew, Addr: p.addr}.Pack()
			ops = append(ops, rdma.Op{Kind: rdma.OpCAS,
				Addr: fuse.slotAddr, Old: fuse.atomOld, New: p.newAtomic})
		}
		err = c.vbatch(ops)
		sc.ops, sc.inv = ops, inv // retain grown capacity
		// Per-op accounting: a failed delta copy is a skip (the commit
		// may still proceed — fault tolerance degrades for this pair,
		// it must not become a lost update); a failed data write aborts
		// (unfused) or forces a repair/abandon decision (fused).
		for i := 1; i <= nDelta; i++ {
			if ops[i].Err != nil {
				skips++
			}
		}
		p.deltaSkips = skips
		p.inv = inv
		dataErr := ops[0].Err
		if p.fused {
			cas := &ops[len(ops)-1]
			p.committed = cas.Err == nil && cas.Result == fuse.atomOld
			if p.committed && dataErr != nil {
				// The tail CAS won but the KV write it publishes was
				// chaos-lost or its MN failed mid-batch. Readers at the
				// published address see a fence-0/torn pair and retry
				// (errTornRead), or reconstruct from the deltas if the
				// MN is gone — so re-issuing the write here closes the
				// window without violating the commit.
				c.repairDataWrite(dataAddr, buf)
			}
			if dataErr != nil && !p.committed {
				delete(c.open, ob.class) // block's MN failing: stop using it
			} else {
				c.consumeSlot(ob)
			}
			return p, nil
		}
		if err != nil && dataErr != nil { // data write failed: new block
			delete(c.open, ob.class)
			continue
		}
		c.consumeSlot(ob)
		return p, nil
	}
}

// consumeSlot pops the slot just written from the open block, queueing
// the block for sealing when it fills (deferred past the commit CAS,
// §3.2.3).
func (c *Client) consumeSlot(ob *openBlock) {
	ob.slots = ob.slots[1:]
	if len(ob.slots) == 0 {
		c.pendingSeal = append(c.pendingSeal, ob)
		delete(c.open, ob.class)
	}
}

// repairDataWrite re-issues a committed-but-lost KV placement write
// until it lands or the target MN is declared failed (degraded reads
// cover the latter).
func (c *Client) repairDataWrite(addr rdma.GlobalAddr, buf []byte) {
	for i := 0; i < 8; i++ {
		c.Stats.WritesIssued++
		c.Stats.BytesWritten += uint64(len(buf))
		err := c.ctx.Write(addr, buf)
		if err == nil || errors.Is(err, rdma.ErrNodeFailed) {
			return
		}
		c.ctx.Sleep(5 * time.Microsecond)
	}
}

// getBlock returns the open DATA block for a size class. On exhaustion
// it first asks the prefetcher for a pre-provisioned block (hit: the
// AllocBlock/AllocDelta RPCs and any reused-block readback already
// happened off the critical path) and only then allocates
// synchronously. While a block drains below its low-water mark the
// prefetcher is asked to provision the next one in the background.
func (c *Client) getBlock(classUnits uint8) (*openBlock, error) {
	if ob, ok := c.open[classUnits]; ok && len(ob.slots) > 0 {
		if ep := c.cl.view.epochNow(); ep != ob.viewEpoch {
			// Membership changed: a recovered parity MN may have
			// relocated this block's DELTA blocks. Re-resolve them
			// (AllocDelta is idempotent).
			c.refreshDeltas(ob)
			ob.viewEpoch = ep
		}
		c.touchClass(classUnits)
		if c.pf != nil && len(ob.slots) <= c.lowWater(classUnits) {
			c.pf.requestRefill(classUnits)
		}
		return ob, nil
	}
	if c.pf != nil {
		if ob := c.pf.takeReady(classUnits); ob != nil {
			c.Stats.BlockPrefetchHits++
			c.wmet.PrefetchHits.Add(1)
			c.adoptBlock(ob)
			return ob, nil
		}
		c.Stats.BlockPrefetchMisses++
		c.wmet.PrefetchMisses.Add(1)
	}
	seq := c.allocSeq
	ob, err := c.provisionBlock(c.ctx, classUnits, &seq, &c.Stats)
	c.allocSeq = seq
	if err != nil {
		return nil, err
	}
	c.adoptBlock(ob)
	return ob, nil
}

// lowWater is the remaining-slot threshold that triggers a background
// refill: a quarter of the block's slot capacity, at least one.
func (c *Client) lowWater(classUnits uint8) int {
	lw := c.cl.L.KVSlotsPerBlock(classUnits) / 4
	if lw < 1 {
		lw = 1
	}
	return lw
}

// adoptBlock installs a freshly provisioned block as the class's open
// block, refreshing its delta targets if membership moved since it was
// provisioned (prefetched blocks can sit for a while).
func (c *Client) adoptBlock(ob *openBlock) {
	if ob.reused {
		c.Stats.BlocksReused++
	} else {
		c.Stats.BlocksAlloc++
	}
	if ep := c.cl.view.epochNow(); ep != ob.viewEpoch {
		c.refreshDeltas(ob)
		ob.viewEpoch = ep
	}
	c.open[ob.class] = ob
	c.touchClass(ob.class)
	c.boundOpen()
}

// provisionBlock allocates a fresh or reclaimed DATA block (plus its
// DELTA blocks on the stripe's parity MNs) through ctx. It runs on the
// client's own process or, via the prefetcher, on the background
// worker — so it must not touch any Client state beyond the immutable
// id/cluster handle. st receives read accounting (nil from the
// worker: its verbs are not client ops).
func (c *Client) provisionBlock(ctx rdma.Ctx, classUnits uint8, seq *int, st *ClientStats) (*openBlock, error) {
	l := c.cl.L
	n := l.Cfg.NumMNs
	for try := 0; try < n; try++ {
		mn := (int(c.id) + *seq + try) % n
		node, alive := c.cl.view.nodeOf(mn)
		if !alive {
			continue
		}
		var e enc
		e.u16(c.id)
		e.u8(classUnits)
		resp, err := ctx.RPC(node, methodAllocBlock, e.b)
		if err != nil || len(resp) == 0 || resp[0] != stOK {
			continue
		}
		*seq++
		d := dec{b: resp[1:]}
		idx := int(d.u32())
		stripe := d.u32()
		xorID := d.u8()
		reused := d.u8() == 1
		copyIdx := d.u32()
		oldBits := d.bytes()

		ob := &openBlock{
			class: classUnits, mn: mn, idx: idx, stripe: stripe, xorID: xorID,
			copyIdx: copyIdx, reused: reused,
			slotSize:  int(classUnits) * 64,
			viewEpoch: c.cl.view.epochNow(),
		}
		capSlots := l.KVSlotsPerBlock(classUnits)
		if reused {
			// Read the whole reused block back (§3.3.3 ②): the extra
			// cost is bandwidth, not IOPS, hence the ≤5% impact.
			ob.oldData = make([]byte, l.Cfg.BlockSize)
			if err := c.readChunkedCtx(ctx, mn, l.BlockOff(idx), ob.oldData, st); err != nil {
				continue
			}
			for s := 0; s < capSlots; s++ {
				if layout.BitmapGet(oldBits, s) {
					ob.slots = append(ob.slots, s)
				}
			}
		} else {
			for s := 0; s < capSlots; s++ {
				ob.slots = append(ob.slots, s)
			}
		}
		// Allocate the DELTA blocks on the stripe's parity MNs.
		for j := 0; j < c.cl.Cfg.deltaCopies(); j++ {
			pmn := l.ParityMN(stripe, j)
			pnode, alive := c.cl.view.nodeOf(pmn)
			if !alive {
				continue
			}
			var de enc
			de.u16(c.id)
			de.u32(stripe)
			de.u8(xorID)
			de.u8(classUnits)
			dresp, err := ctx.RPC(pnode, methodAllocDelta, de.b)
			if err != nil || len(dresp) == 0 || dresp[0] != stOK {
				continue
			}
			dd := dec{b: dresp[1:]}
			ob.deltas = append(ob.deltas, deltaTarget{mn: pmn, blockOff: l.BlockOff(int(dd.u32()))})
		}
		return ob, nil
	}
	return nil, ErrNoSpace
}

// touchClass moves a size class to the most-recently-used end of the
// open-block LRU order.
func (c *Client) touchClass(class uint8) {
	for i, cl := range c.openLRU {
		if cl == class {
			copy(c.openLRU[i:], c.openLRU[i+1:])
			c.openLRU[len(c.openLRU)-1] = class
			return
		}
	}
	c.openLRU = append(c.openLRU, class)
}

// boundOpen enforces maxOpenClasses by sealing the least-recently-used
// class's partially filled block early. Its unwritten slots are safe to
// seal over — they are zero in both DATA and DELTA, so the stripe
// invariant holds — and merely leak until reclamation hands the block
// out again. The seal itself is deferred to finishWrite (post-commit),
// matching the normal seal ordering.
func (c *Client) boundOpen() {
	for len(c.open) > maxOpenClasses && len(c.openLRU) > 0 {
		victim := c.openLRU[0]
		c.openLRU = c.openLRU[1:]
		if ob, ok := c.open[victim]; ok {
			delete(c.open, victim)
			c.pendingSeal = append(c.pendingSeal, ob)
		}
	}
}

// refreshDeltas re-resolves an open block's DELTA-block targets after
// a membership change (recovery may have relocated or dropped them).
func (c *Client) refreshDeltas(ob *openBlock) {
	l := c.cl.L
	ob.deltas = ob.deltas[:0]
	for j := 0; j < c.cl.Cfg.deltaCopies(); j++ {
		pmn := l.ParityMN(ob.stripe, j)
		pnode, alive := c.cl.view.nodeOf(pmn)
		if !alive {
			continue
		}
		var de enc
		de.u16(c.id)
		de.u32(ob.stripe)
		de.u8(ob.xorID)
		de.u8(ob.class)
		dresp, err := c.ctx.RPC(pnode, methodAllocDelta, de.b)
		if err != nil || len(dresp) == 0 || dresp[0] != stOK {
			continue
		}
		dd := dec{b: dresp[1:]}
		ob.deltas = append(ob.deltas, deltaTarget{mn: pmn, blockOff: l.BlockOff(int(dd.u32()))})
	}
}

// readChunked reads a whole block in ChunkBytes pieces on the
// client's own process.
func (c *Client) readChunked(mn int, off uint64, dst []byte) error {
	return c.readChunkedCtx(c.ctx, mn, off, dst, &c.Stats)
}

// readChunkedCtx reads a whole block in ChunkBytes pieces through ctx,
// accounting into st when non-nil (nil from the prefetch worker).
func (c *Client) readChunkedCtx(ctx rdma.Ctx, mn int, off uint64, dst []byte, st *ClientStats) error {
	chunk := c.cl.Cfg.ChunkBytes
	for pos := 0; pos < len(dst); pos += chunk {
		end := pos + chunk
		if end > len(dst) {
			end = len(dst)
		}
		addr, ok := c.cl.Addr(mn, off+uint64(pos))
		if !ok {
			return rdma.ErrNodeFailed
		}
		if st != nil {
			st.ReadsIssued++
			st.BytesRead += uint64(end - pos)
		}
		if err := ctx.Read(dst[pos:end], addr); err != nil {
			return err
		}
	}
	return nil
}

// sealBlock notifies the data MN (Index Version stamp) and the parity
// MNs (fold the DELTA into the PARITY block) that the block is full
// (Figure 6 ②③④).
func (c *Client) sealBlock(ob *openBlock) { c.sealBlockCtx(c.ctx, ob) }

// sealBlockCtx is sealBlock through an explicit ctx, so the prefetch
// worker can seal off the critical path.
func (c *Client) sealBlockCtx(ctx rdma.Ctx, ob *openBlock) {
	var e enc
	e.u32(uint32(ob.idx))
	e.u32(ob.copyIdx)
	if node, alive := c.cl.view.nodeOf(ob.mn); alive {
		ctx.RPC(node, methodSealBlock, e.b) //nolint:errcheck // recovery rescans unsealed blocks
	}
	for _, dt := range ob.deltas {
		if node, alive := c.cl.view.nodeOf(dt.mn); alive {
			var de enc
			de.u32(ob.stripe)
			de.u8(ob.xorID)
			ctx.RPC(node, methodEncodeDelta, de.b) //nolint:errcheck // delta stays pending, still decodable
		}
	}
}

// markObsolete queues a free-bitmap update for an overwritten KV pair
// (§3.3.3 ①).
func (c *Client) markObsolete(packed uint64, lenUnits uint8) {
	if packed == 0 || lenUnits == 0 {
		return
	}
	mnU, off := layout.UnpackAddr(packed)
	bi := c.cl.L.BlockOfOff(off)
	if bi < 0 {
		return
	}
	slot := (off - c.cl.L.BlockOff(bi)) / (uint64(lenUnits) * 64)
	k := pendKey{mn: int(mnU), block: bi}
	c.pending[k] = append(c.pending[k], uint32(slot))
	c.pendingN++
}

// maxPendingKeys bounds how many drained pending-bitmap entries keep
// their slice capacity in the map for reuse; beyond it, entries are
// deleted so a churn workload touching many blocks cannot grow the map
// without bound.
const maxPendingKeys = 64

// FlushBitmaps sends all queued free-bitmap updates to their servers.
// Clients flush automatically every Config.BitmapFlushOps markings;
// harnesses call it at workload end. Flush order is sorted so
// simulated runs stay deterministic. With the prefetcher running, the
// payloads are built here (cheap) but the RPCs are issued by the
// background worker. Drained entries retain their slice capacity (up
// to maxPendingKeys) so steady-state flushes do not allocate.
func (c *Client) FlushBitmaps() {
	keys := c.flushKeys[:0]
	for k, bits := range c.pending {
		if len(bits) == 0 {
			if len(c.pending) > maxPendingKeys {
				delete(c.pending, k)
			}
			continue
		}
		keys = append(keys, k)
	}
	// Insertion sort: the key list is a handful of blocks, and
	// sort.Slice's reflection allocates on a path the zero-alloc
	// UPDATE budget covers (flushes fire every BitmapFlushOps writes).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && (keys[j].mn < keys[j-1].mn ||
			(keys[j].mn == keys[j-1].mn && keys[j].block < keys[j-1].block)); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		bits := c.pending[k]
		node, alive := c.cl.view.nodeOf(k.mn)
		if alive {
			c.sendFreeBits(node, k, bits)
		}
		c.pending[k] = bits[:0]
	}
	c.flushKeys = keys[:0]
	c.pendingN = 0
}

// sendFreeBits encodes and delivers one block's free-bitmap update —
// through the prefetch worker when it is running, inline otherwise.
func (c *Client) sendFreeBits(node rdma.NodeID, k pendKey, bits []uint32) {
	var buf []byte
	if c.pf != nil {
		buf = c.pf.getBuf()
	} else {
		buf = c.flushEnc
	}
	e := enc{b: buf[:0]}
	e.u32(uint32(k.block))
	e.u16(uint16(len(bits)))
	for _, b := range bits {
		e.u32(b)
	}
	if c.pf != nil && c.pf.enqueueFlush(flushJob{node: node, payload: e.b}) {
		return
	}
	c.ctx.RPC(node, methodFreeBits, e.b) //nolint:errcheck // obsolete hints are advisory
	if c.pf != nil {
		c.pf.putBuf(e.b)
	} else {
		c.flushEnc = e.b[:0]
	}
}

// Close stops the prefetch worker (draining its queued seals and
// bitmap flushes inline), flushes pending state and returns the cache
// and mirror gauge contributions to the cluster aggregate; open blocks
// stay unsealed and are safely rescanned by recovery.
func (c *Client) Close() {
	if c.pf != nil {
		seals, flushes := c.pf.stop()
		for _, ob := range seals {
			c.sealBlock(ob)
		}
		for _, fj := range flushes {
			c.ctx.RPC(fj.node, methodFreeBits, fj.payload) //nolint:errcheck // obsolete hints are advisory
		}
	}
	c.FlushBitmaps()
	c.cache.release()
	c.mirror.release()
}
