package core

import (
	"repro/internal/layout"
	"repro/internal/obs"
)

// bucketMirror is the client's adaptive hot-bucket offload (DESIGN.md
// §12): per-bucket access counters promote the hottest index buckets
// into CN-resident copies, turning GETs on them into a local scan plus
// one doorbell of 8-byte validation reads (~1 RTT, Outback-style)
// instead of two 128-byte bucket reads plus a KV read. Copies are
// revalidated against the MN's bucket version words, refreshed in
// place on mismatch, and demoted when write pressure makes refreshes
// outpace hits. The memory budget is hard: at most max buckets are
// resident, each a fixed 128-byte image plus bookkeeping.
type bucketMirror struct {
	max    int
	ents   map[mirrorKey]*mirrorEnt
	counts []uint32 // hashed per-bucket-pair access counters
	ops    uint32   // accesses since the last counter decay
	met    *obs.CacheMetrics
}

type mirrorKey struct {
	mn int
	b  uint64
}

// mirrorEnt is one CN-resident bucket copy. ver is the MN's bucket
// version word read *before* the image in the same in-order doorbell
// batch, so "word still equals ver" proves the image current.
type mirrorEnt struct {
	buf   [layout.BucketSize]byte
	ver   uint64
	epoch uint64 // view epoch the copy was read under
	hits  uint32 // mirror-served GETs since promotion/refresh reset
	refr  uint32 // refreshes (version mismatches) — write pressure
}

const (
	// mirrorPromoteAfter is the access count at which a bucket pair
	// qualifies for promotion. Counters are fed by the whole GET
	// stream — cache hits included — so bucket heat reflects total
	// traffic, and a hot bucket is usually already resident by the
	// time CLOCK pressure evicts one of its keys from the entry cache.
	// Promotion costs two piggybacked version-word reads and each
	// mirror-served GET thereafter saves one verb, so the threshold is
	// set high enough that qualifying pairs repay the install.
	mirrorPromoteAfter = 16
	// mirrorDecayOps halves every access counter periodically so the
	// mirror adapts when the hot set drifts.
	mirrorDecayOps = 4096
	// mirrorEntOverhead approximates one resident bucket's bookkeeping
	// beyond its 128-byte image, for the bytes gauge.
	mirrorEntOverhead = 64
)

func newBucketMirror(max int, met *obs.CacheMetrics) *bucketMirror {
	if max <= 0 {
		return nil
	}
	nc := 1024
	for nc < 4*max && nc < 1<<16 {
		nc *= 2
	}
	return &bucketMirror{
		max:    max,
		ents:   make(map[mirrorKey]*mirrorEnt, max),
		counts: make([]uint32, nc),
		met:    met,
	}
}

// Len returns the resident bucket count.
func (m *bucketMirror) Len() int {
	if m == nil {
		return 0
	}
	return len(m.ents)
}

// Bytes returns the mirror's resident footprint.
func (m *bucketMirror) Bytes() uint64 {
	if m == nil {
		return 0
	}
	return uint64(len(m.ents)) * (layout.BucketSize + mirrorEntOverhead)
}

// note records one access to a key whose candidate pair starts at
// bucket i1 and reports whether the pair is hot enough to promote.
func (m *bucketMirror) note(mn int, i1 uint64) bool {
	m.ops++
	if m.ops%mirrorDecayOps == 0 {
		for i := range m.counts {
			m.counts[i] >>= 1
		}
	}
	ci := (uint64(mn)*0x9e3779b97f4a7c15 ^ i1*0xbf58476d1ce4e5b9) & uint64(len(m.counts)-1)
	if m.counts[ci] != ^uint32(0) {
		m.counts[ci]++
	}
	return m.counts[ci] >= mirrorPromoteAfter
}

// get returns the resident copy of (mn, b), or nil.
func (m *bucketMirror) get(mn int, b uint64) *mirrorEnt {
	if m == nil {
		return nil
	}
	return m.ents[mirrorKey{mn, b}]
}

// install stores (or refreshes in place) the copy of bucket b read as
// img under version ver and view epoch. At the budget, the coldest
// resident bucket is demoted to make room.
func (m *bucketMirror) install(mn int, b uint64, img []byte, ver, epoch uint64) {
	k := mirrorKey{mn, b}
	e := m.ents[k]
	if e == nil {
		if len(m.ents) >= m.max {
			if !m.evictColdest() {
				return
			}
		}
		e = &mirrorEnt{}
		m.ents[k] = e
		if m.met != nil {
			m.met.Offloaded.Add(1)
			m.met.Bytes.Add(layout.BucketSize + mirrorEntOverhead)
		}
	}
	copy(e.buf[:], img)
	e.ver = ver
	e.epoch = epoch
}

// refresh updates a resident copy in place after a version mismatch.
func (e *mirrorEnt) refresh(img []byte, ver, epoch uint64) {
	copy(e.buf[:], img)
	e.ver = ver
	e.epoch = epoch
	e.refr++
}

// pressured reports whether refreshes are outpacing hits — the
// demote-under-write-pressure signal.
func (e *mirrorEnt) pressured() bool {
	return e.refr >= 4 && e.hits < 4*e.refr
}

// demote drops the copy of (mn, b).
func (m *bucketMirror) demote(mn int, b uint64) {
	k := mirrorKey{mn, b}
	if _, ok := m.ents[k]; !ok {
		return
	}
	delete(m.ents, k)
	if m.met != nil {
		m.met.Offloaded.Add(-1)
		m.met.Bytes.Add(-(layout.BucketSize + mirrorEntOverhead))
	}
}

// evictColdest demotes the resident bucket with the fewest hits.
// Promotions are rare (counter-gated), so the linear scan is off any
// hot path.
func (m *bucketMirror) evictColdest() bool {
	var victim mirrorKey
	best := ^uint32(0)
	found := false
	for k, e := range m.ents {
		if e.hits <= best {
			victim, best, found = k, e.hits, true
		}
	}
	if !found {
		return false
	}
	m.demote(victim.mn, victim.b)
	return true
}

// release returns the mirror's gauge contributions (client close).
func (m *bucketMirror) release() {
	if m == nil || m.met == nil {
		return
	}
	m.met.Offloaded.Add(-int64(len(m.ents)))
	m.met.Bytes.Add(-int64(m.Bytes()))
}
