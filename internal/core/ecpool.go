package core

import (
	"sync"
	"time"

	"repro/internal/rdma"
)

// ecPool fans banded erasure kernels out over dedicated worker
// processes — the erasure twin of the checkpoint compression pool
// (ckpt.go): bands are claimed under a mutex and coordination is
// poll-based, because channel hand-offs would stall the simulated
// engine. Each band's modelled CPU cost is charged on the worker's own
// core, so on simnet the virtual elapsed time of an encode or decode
// pass genuinely shrinks with the worker count (the bands overlap
// across cores), while on wall-clock fabrics the same bands overlap as
// goroutines inside the erasure package.
//
// A pool is single-consumer: one owner stages a fan-out at a time.
// Workers never take the server's memMu/mu, so owners may hold both
// across a fan-out (the reclamation encoder does).
//
// Pools only get workers on virtual-time fabrics (rdma.IsVirtual):
// the idle sleep-poll costs nothing in engine time but would burn a
// real core per worker on a wall-clock fabric. There the pool stays
// inert — fanOut runs the kernel inline and full-width, and kernels
// route that case through the erasure package's goroutine pool.
type ecPool struct {
	workers int

	mu     sync.Mutex
	run    func(lo, hi int) time.Duration // band kernel; returns CPU cost to charge
	width  int
	bands  int
	next   int
	left   int
	closed bool
}

// ecMinBand is the narrowest band worth dispatching to a worker
// process; below it the poll quantum dominates the compute.
const ecMinBand = 32 << 10

// ecBandQuantum keeps band boundaries 64-byte aligned, matching the
// erasure package's cache-line discipline.
const ecBandQuantum = 64

func newECPool(workers int) *ecPool { return &ecPool{workers: workers} }

// close winds the worker processes down; any staged bands not yet
// claimed are abandoned (owners polling fanOut observe closed and
// return).
func (p *ecPool) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}

// band returns band b's range within [0, width), 64-byte aligned.
func (p *ecPool) band(b int) (lo, hi int) {
	per := (p.width + p.bands - 1) / p.bands
	per = (per + ecBandQuantum - 1) / ecBandQuantum * ecBandQuantum
	lo = b * per
	hi = lo + per
	if hi > p.width || b == p.bands-1 {
		hi = p.width
	}
	if lo > p.width {
		lo = p.width
	}
	return lo, hi
}

// workerLoop returns the process body of one erasure worker pinned to
// core. Mirrors ckptWorkerLoop: sleep-poll for staged bands, claim one
// under the mutex, run the kernel, charge its cost on this core.
func (p *ecPool) workerLoop(core int) func(rdma.Ctx) {
	return func(ctx rdma.Ctx) {
		for {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			if p.next >= p.bands {
				p.mu.Unlock()
				ctx.Sleep(5 * time.Microsecond)
				continue
			}
			b := p.next
			p.next++
			run := p.run
			lo, hi := p.band(b)
			p.mu.Unlock()
			var cost time.Duration
			if lo < hi {
				cost = run(lo, hi)
			}
			if cost > 0 {
				ctx.UseCPU(core, cost)
			}
			p.mu.Lock()
			p.left--
			p.mu.Unlock()
		}
	}
}

// fanOut runs kernel over a band dimension of width bytes and returns
// the virtual time it took. With no workers, a narrow width, or a nil
// pool, the kernel runs inline on the caller charging inlineCore — the
// pre-pool behaviour. Otherwise bands are staged for the worker
// processes and the owner sleep-polls until the last band completes,
// so the elapsed virtual time is roughly cost/workers plus the poll
// quantum.
func (p *ecPool) fanOut(ctx rdma.Ctx, width int, kernel func(lo, hi int) time.Duration, inlineCore int) time.Duration {
	start := ctx.Now()
	nb := 0
	if p != nil && p.workers > 0 && width >= 2*ecMinBand {
		nb = p.workers
		if max := width / ecMinBand; nb > max {
			nb = max
		}
	}
	if nb <= 1 {
		if cost := kernel(0, width); cost > 0 {
			ctx.UseCPU(inlineCore, cost)
		}
		return ctx.Now() - start
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if cost := kernel(0, width); cost > 0 {
			ctx.UseCPU(inlineCore, cost)
		}
		return ctx.Now() - start
	}
	p.run = kernel
	p.width = width
	p.bands = nb
	p.next = 0
	p.left = nb
	p.mu.Unlock()
	for {
		p.mu.Lock()
		left, closed := p.left, p.closed
		p.mu.Unlock()
		if left == 0 || closed {
			break
		}
		ctx.Sleep(5 * time.Microsecond)
	}
	p.mu.Lock()
	p.run = nil
	p.bands = 0
	p.next = 0
	p.mu.Unlock()
	return ctx.Now() - start
}

// ecTally accumulates erasure compute totals (bytes touched, virtual
// elapsed time) for paths that run before a server exists — recovery
// folds its tally into the replacement server's counters at the end.
type ecTally struct {
	encodeBytes, encodeNs uint64
	decodeBytes, decodeNs uint64
}
