package core

// Segment-parallel differential checkpointing (Figure 3, DESIGN.md §8).
//
// The index is split into fixed-size segments (layout.CkptSegments).
// The fabric's write observer marks a per-segment dirty bitmap as
// foreground WRITE/CAS verbs land in the index area, so a checkpoint
// round snapshots, XORs, compresses and ships only the segments that
// changed since the last round. Per-segment compression fans out over
// a worker pool (distinct sim-CPU cores), and shipping fans out over
// one shipper process per checkpoint host. The wire format is a framed
// list of per-segment records; the hosted copy's version word moves
// only after every record of a round has been applied, so torn rounds
// remain detectable exactly as with the old full-image pipeline.

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/lz4"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// Checkpoint frame record flags.
const (
	// ckptRecRaw: the payload is the segment itself (overwrite-apply),
	// not an XOR delta against the previous round.
	ckptRecRaw = 1 << 0
	// ckptRecUncompressed: the payload is not LZ4-compressed.
	ckptRecUncompressed = 1 << 1
)

var (
	errCkptFrame = errors.New("core: bad checkpoint frame")
	errCkptSeq   = errors.New("core: checkpoint frame out of sequence")

	// ckptCRC guards staged frames against torn chunked writes: an
	// owner can overwrite the staging area for round r+1 while the
	// host's recv core still has round r queued, and LZ4 alone can
	// "successfully" decompress such mixed bytes into garbage.
	ckptCRC = crc32.MakeTable(crc32.Castagnoli)
)

// ckptSegJob describes one segment of a round: raw segments carry the
// snapshot itself (needed whenever a host's reference copy cannot be
// trusted — fresh replacement node, missed frame, CkptRaw ablation),
// others carry the XOR delta against the previously shipped snapshot.
type ckptSegJob struct {
	seg int
	raw bool
}

// ckptRec is the in-memory form of one frame record plus its payload
// slice (pointing into the framer's persistent buffers).
type ckptRec struct {
	seg     int
	rawLen  int
	compLen int
	flags   uint32
	payload []byte
}

// ckptRegion is one contiguous piece of a frame at its staging-area
// offset. Frames are shipped as scatter/gather regions (header+records
// block, then each payload straight out of the compression buffers) so
// assembly never copies payload bytes.
type ckptRegion struct {
	rel  uint64
	data []byte
}

// ckptFramer owns the sender side's persistent buffers and builds one
// frame per round. All buffers are allocated once, so steady-state
// rounds are allocation-free. processSeg calls for distinct job
// indices touch disjoint state and may run concurrently (the worker
// pool relies on this).
type ckptFramer struct {
	l     *layout.Layout
	rates CPURates
	raw   bool // CkptRaw ablation: every segment raw and uncompressed

	snap  [][]byte // per-segment snapshot of the current round
	last  [][]byte // per-segment reference (last shipped snapshot)
	delta [][]byte // per-segment XOR scratch
	comp  [][]byte // per-segment compression output

	round uint64
	seq   uint64
	jobs  []ckptSegJob // this round's segments, strictly ascending
	recs  []ckptRec    // recs[i] belongs to jobs[i]
	hdr   []byte       // header + record block scratch
}

func newCkptFramer(l *layout.Layout, rates CPURates, raw bool) *ckptFramer {
	n := l.CkptSegCount()
	f := &ckptFramer{l: l, rates: rates, raw: raw,
		snap: make([][]byte, n), last: make([][]byte, n),
		delta: make([][]byte, n), comp: make([][]byte, n),
		jobs: make([]ckptSegJob, 0, n), recs: make([]ckptRec, n),
		hdr: make([]byte, layout.CkptFrameHeaderSize+n*layout.CkptFrameRecordSize),
	}
	for i := 0; i < n; i++ {
		ln := int(l.CkptSegLen(i))
		f.snap[i] = make([]byte, ln)
		f.last[i] = make([]byte, ln)
		f.delta[i] = make([]byte, ln)
		f.comp[i] = make([]byte, 0, lz4.CompressBound(ln))
	}
	return f
}

// snapshot copies every segment of the round (f.jobs) out of the live
// index. The caller holds memMu; this is a pure memcpy whose CPU cost
// (the returned byte count at the Memcpy rate) is charged afterwards.
func (f *ckptFramer) snapshot(mem []byte) int {
	total := 0
	for _, j := range f.jobs {
		off := f.l.CkptSegOff(j.seg)
		total += copy(f.snap[j.seg], mem[off:])
	}
	return total
}

// processSeg turns jobs[i]'s snapshot into its frame record: XOR with
// the reference and compress (differential), compress alone (raw
// resync), or neither (CkptRaw). The shipped snapshot then becomes the
// new reference by swapping the per-segment slices — no extra copy,
// and the payload keeps pointing at the same backing array. Safe to
// call concurrently for distinct i. Returns the simulated CPU cost.
func (f *ckptFramer) processSeg(i int) time.Duration {
	job := f.jobs[i]
	seg := job.seg
	ln := len(f.snap[seg])
	rec := &f.recs[i]
	rec.seg, rec.rawLen = seg, ln
	var cost time.Duration
	switch {
	case job.raw && f.raw:
		rec.flags = ckptRecRaw | ckptRecUncompressed
		rec.payload = f.snap[seg]
		rec.compLen = ln
	case job.raw:
		f.comp[seg] = lz4.Compress(f.comp[seg][:0], f.snap[seg])
		rec.flags = ckptRecRaw
		rec.payload = f.comp[seg]
		rec.compLen = len(rec.payload)
		cost = cpuTime(ln, f.rates.Compress)
	default:
		copy(f.delta[seg], f.snap[seg])
		erasure.XorInto(f.delta[seg], f.last[seg])
		f.comp[seg] = lz4.Compress(f.comp[seg][:0], f.delta[seg])
		rec.flags = 0
		rec.payload = f.comp[seg]
		rec.compLen = len(rec.payload)
		cost = cpuTime(ln, f.rates.Memcpy) + cpuTime(ln, f.rates.Compress)
	}
	f.last[seg], f.snap[seg] = f.snap[seg], f.last[seg]
	return cost
}

// finishRound assembles the header + record block and returns the
// total frame length. Must run after every processSeg of the round.
func (f *ckptFramer) finishRound() int {
	n := len(f.jobs)
	hdrLen := layout.CkptFrameHeaderSize + n*layout.CkptFrameRecordSize
	total := hdrLen
	for i := 0; i < n; i++ {
		total += f.recs[i].compLen
	}
	h := f.hdr[:hdrLen]
	binary.LittleEndian.PutUint32(h[0:4], layout.CkptFrameMagic)
	binary.LittleEndian.PutUint32(h[4:8], uint32(n))
	binary.LittleEndian.PutUint64(h[8:16], f.round)
	binary.LittleEndian.PutUint64(h[16:24], f.seq)
	binary.LittleEndian.PutUint32(h[24:28], uint32(total))
	for i := 0; i < n; i++ {
		rec := &f.recs[i]
		r := h[layout.CkptFrameHeaderSize+i*layout.CkptFrameRecordSize:]
		binary.LittleEndian.PutUint32(r[0:4], uint32(rec.seg))
		binary.LittleEndian.PutUint32(r[4:8], uint32(rec.rawLen))
		binary.LittleEndian.PutUint32(r[8:12], uint32(rec.compLen))
		binary.LittleEndian.PutUint32(r[12:16], rec.flags)
	}
	crc := crc32.Update(0, ckptCRC, h[layout.CkptFrameHeaderSize:hdrLen])
	for i := 0; i < n; i++ {
		crc = crc32.Update(crc, ckptCRC, f.recs[i].payload)
	}
	binary.LittleEndian.PutUint32(h[28:32], crc)
	return total
}

// regions returns the frame as scatter/gather pieces at their relative
// staging offsets, reusing out's backing array.
func (f *ckptFramer) regions(out []ckptRegion) []ckptRegion {
	n := len(f.jobs)
	hdrLen := layout.CkptFrameHeaderSize + n*layout.CkptFrameRecordSize
	out = append(out[:0], ckptRegion{0, f.hdr[:hdrLen]})
	pos := uint64(hdrLen)
	for i := 0; i < n; i++ {
		out = append(out, ckptRegion{pos, f.recs[i].payload})
		pos += uint64(len(f.recs[i].payload))
	}
	return out
}

// payloadBytes sums the round's shipped (compressed) and represented
// (raw) bytes — the compressed/raw ratio the stats surfaces expose.
func (f *ckptFramer) payloadBytes() (comp, raw int) {
	for i := range f.jobs {
		comp += f.recs[i].compLen
		raw += f.recs[i].rawLen
	}
	return comp, raw
}

// writeTo serialises the finished frame contiguously into dst exactly
// as the scatter/gather ship lands it in the staging area (tests and
// the zero-allocation benchmark use this; the real path ships the
// regions directly).
func (f *ckptFramer) writeTo(dst []byte) int {
	n := len(f.jobs)
	hdrLen := layout.CkptFrameHeaderSize + n*layout.CkptFrameRecordSize
	pos := copy(dst, f.hdr[:hdrLen])
	for i := 0; i < n; i++ {
		pos += copy(dst[pos:], f.recs[i].payload)
	}
	return pos
}

// ckptApplyStats reports what an apply processed, so the simulated CPU
// cost can be charged after memMu is released.
type ckptApplyStats struct {
	decompressed int // bytes produced by LZ4 decompression
	applied      int // bytes copied or XOR-folded into the hosted copy
}

// ckptApplier owns the receiver side's persistent scratch. Frames are
// decompressed fully before any byte touches the hosted copy, so a
// corrupt record can never leave the copy half-applied.
type ckptApplier struct {
	l       *layout.Layout
	scratch []byte   // IndexBytes of decompression staging
	srcs    [][]byte // per-record apply sources (phase 2 of apply)
}

func newCkptApplier(l *layout.Layout) *ckptApplier {
	return &ckptApplier{l: l,
		scratch: make([]byte, l.Cfg.IndexBytes),
		srcs:    make([][]byte, l.CkptSegCount()),
	}
}

// apply validates the staged frame and applies its records to the
// hosted index copy. Pure compute — no verbs, no yields — so callers
// run it under memMu and the hosted copy mutates atomically with
// respect to the version word they bump on success.
//
// round must match the frame header (the notify RPC's round), and
// lastSeq is the sequence of the last frame applied to this copy: a
// frame carrying any differential record is rejected unless it is the
// direct successor (seq == lastSeq+1), because an XOR delta is only
// meaningful against the exact snapshot the owner computed it from.
// All-raw frames are accepted unconditionally — they overwrite.
func (a *ckptApplier) apply(hosted, frame []byte, round, lastSeq uint64) (uint64, ckptApplyStats, error) {
	var st ckptApplyStats
	l := a.l
	if len(frame) < layout.CkptFrameHeaderSize ||
		binary.LittleEndian.Uint32(frame[0:4]) != layout.CkptFrameMagic {
		return 0, st, errCkptFrame
	}
	nrec := int(binary.LittleEndian.Uint32(frame[4:8]))
	seq := binary.LittleEndian.Uint64(frame[16:24])
	total := int(binary.LittleEndian.Uint32(frame[24:28]))
	if binary.LittleEndian.Uint64(frame[8:16]) != round ||
		nrec < 1 || nrec > l.CkptSegCount() || total != len(frame) {
		return 0, st, errCkptFrame
	}
	hdrLen := layout.CkptFrameHeaderSize + nrec*layout.CkptFrameRecordSize
	if total < hdrLen {
		return 0, st, errCkptFrame
	}
	if crc32.Checksum(frame[layout.CkptFrameHeaderSize:], ckptCRC) !=
		binary.LittleEndian.Uint32(frame[28:32]) {
		return 0, st, errCkptFrame
	}
	// Phase 1: validate every record and decompress every payload into
	// the scratch area. Nothing touches the hosted copy yet.
	pos := hdrLen
	prevSeg := -1
	allRaw := true
	for i := 0; i < nrec; i++ {
		r := frame[layout.CkptFrameHeaderSize+i*layout.CkptFrameRecordSize:]
		seg := int(binary.LittleEndian.Uint32(r[0:4]))
		rawLen := int(binary.LittleEndian.Uint32(r[4:8]))
		compLen := int(binary.LittleEndian.Uint32(r[8:12]))
		flags := binary.LittleEndian.Uint32(r[12:16])
		if seg <= prevSeg || seg >= l.CkptSegCount() ||
			rawLen != int(l.CkptSegLen(seg)) || pos+compLen > total {
			return 0, st, errCkptFrame
		}
		if flags&ckptRecUncompressed != 0 && compLen != rawLen {
			return 0, st, errCkptFrame
		}
		if flags&ckptRecRaw == 0 {
			allRaw = false
		}
		payload := frame[pos : pos+compLen]
		pos += compLen
		prevSeg = seg
		if flags&ckptRecUncompressed != 0 {
			a.srcs[i] = payload
			continue
		}
		dst := a.scratch[l.CkptSegOff(seg) : l.CkptSegOff(seg)+uint64(rawLen)]
		n, err := lz4.Decompress(dst, payload)
		if err != nil || n != rawLen {
			return 0, st, errCkptFrame
		}
		st.decompressed += rawLen
		a.srcs[i] = dst
	}
	if pos != total {
		return 0, st, errCkptFrame
	}
	if !allRaw && seq != lastSeq+1 {
		return 0, st, errCkptSeq
	}
	// Phase 2: fold the records in. Pure copy/XOR — cannot fail.
	for i := 0; i < nrec; i++ {
		r := frame[layout.CkptFrameHeaderSize+i*layout.CkptFrameRecordSize:]
		seg := int(binary.LittleEndian.Uint32(r[0:4]))
		rawLen := int(binary.LittleEndian.Uint32(r[4:8]))
		flags := binary.LittleEndian.Uint32(r[12:16])
		dst := hosted[l.CkptSegOff(seg) : l.CkptSegOff(seg)+uint64(rawLen)]
		if flags&ckptRecRaw != 0 {
			copy(dst, a.srcs[i])
		} else {
			erasure.XorInto(dst, a.srcs[i])
		}
		st.applied += rawLen
	}
	return seq, st, nil
}

// --- dirty bitmap ---

// observeIndexWrite is the fabric write observer: it marks the dirty
// bit of every segment a remote mutation of [off, off+n) touches. It
// runs on fabric executor goroutines (tcpnet) or inline in the engine
// (simnet), so it must stay cheap and lock-free.
func (s *Server) observeIndexWrite(off, n uint64) {
	ib := s.cl.L.Cfg.IndexBytes
	if off >= ib || n == 0 {
		return
	}
	end := off + n
	if end > ib {
		end = ib
	}
	// Bump the version word of every bucket the write overlaps. The
	// bump lands before the mutating verb's response is released
	// (observers run pre-ack on both fabrics), so a client whose read
	// of the word starts after the write's completion always sees it —
	// the invariant the negative-cache and mirror validation protocol
	// rests on (DESIGN.md §12).
	if s.bvAdd != nil {
		for b := off / layout.BucketSize; b <= (end-1)/layout.BucketSize; b++ {
			s.bvAdd(s.cl.L.BucketVerOff(b), 1)
		}
	}
	lo := s.cl.L.CkptSegOfOff(off)
	hi := s.cl.L.CkptSegOfOff(end - 1)
	for seg := lo; seg <= hi; seg++ {
		w := &s.ckptDirty[seg>>6]
		bit := uint64(1) << (seg & 63)
		// Go 1.22's atomic.Uint64 has no Or; CAS-loop the bit in.
		for {
			old := w.Load()
			if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
				break
			}
		}
	}
	// Sampled checkpoint-observer mark: a zero-width span noting that
	// a foreground index write dirtied segments. One atomic add when
	// unsampled; never allocates (static strings, pooled slots).
	if t := s.cl.tracer; t != nil && t.Sampled() {
		now := t.WallNow()
		t.Record(obs.Span{Kind: obs.SpanMark, Node: int32(s.node),
			Name: "ckpt.mark", Detail: "index write dirtied segment",
			Start: time.Duration(now), End: time.Duration(now),
			WallStart: now, WallEnd: now})
	}
}

func ckptSetAll(words []uint64, segs int) {
	for w := range words {
		words[w] = ^uint64(0)
	}
	if tail := segs & 63; tail != 0 {
		words[len(words)-1] = (uint64(1) << tail) - 1
	}
}

func ckptOrInto(dst, src []uint64) {
	for w := range dst {
		dst[w] |= src[w]
	}
}

func ckptAndNotInto(dst, src []uint64) {
	for w := range dst {
		dst[w] &^= src[w]
	}
}

func ckptPopCount(words []uint64) int {
	n := 0
	for _, w := range words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// --- worker pool ---

// ckptWorkerLoop is one compression worker: it claims job indices of
// the current round and runs processSeg on its own simulated core
// (rdma.CoreCkptWorker(w)), charging the CPU cost before reporting
// completion so virtual time orders compute before the ship.
func (s *Server) ckptWorkerLoop(w int) func(rdma.Ctx) {
	return func(ctx rdma.Ctx) {
		core := rdma.CoreCkptWorker(w)
		for !s.isStopped() {
			ctx.Sleep(5 * time.Microsecond)
			for {
				s.ckptWorkMu.Lock()
				if s.ckptWorkNext >= s.ckptWorkN {
					s.ckptWorkMu.Unlock()
					break
				}
				i := s.ckptWorkNext
				s.ckptWorkNext++
				s.ckptWorkMu.Unlock()
				cost := s.ckptFr.processSeg(i)
				if cost > 0 {
					ctx.UseCPU(core, cost)
				}
				s.ckptWorkMu.Lock()
				s.ckptWorkNs += uint64(cost)
				s.ckptWorkLeft--
				s.ckptWorkMu.Unlock()
			}
		}
	}
}

// --- shippers ---

// ckptShipper is the send loop's mailbox for one checkpoint host. The
// send loop publishes a frame by bumping seq; the shipper reports back
// through doneSeq/ok/lastApplied. Coordination is poll-based (mutex +
// Sleep) because channels would stall the simulated engine.
type ckptShipper struct {
	mu          sync.Mutex
	seq         uint64 // frame to ship (set by the send loop)
	round       uint64
	frameLen    int
	regions     []ckptRegion // shared read-only frame pieces
	doneSeq     uint64       // last completed frame
	ok          bool         // staging writes + notify RPC succeeded
	lastApplied uint64       // host-reported last applied seq (valid when ok)
}

// ckptShipLoop ships finished frames to one host: scatter/gather
// chunked writes into the host's staging area, then the notify RPC.
// The host's physical node is resolved once per frame so a mid-frame
// view change cannot scatter chunks across two nodes.
func (s *Server) ckptShipLoop(h int) func(rdma.Ctx) {
	return func(ctx rdma.Ctx) {
		l := s.cl.L
		host := l.CkptHostOf(s.mn, h)
		base := l.CkptStagingOff(l.CkptSlotFor(host, s.mn))
		sh := s.ckptShippers[h]
		var req [13]byte
		for !s.isStopped() {
			ctx.Sleep(20 * time.Microsecond)
			sh.mu.Lock()
			if sh.seq == sh.doneSeq {
				sh.mu.Unlock()
				continue
			}
			seq, round, frameLen, regions := sh.seq, sh.round, sh.frameLen, sh.regions
			sh.mu.Unlock()
			ok, lastApplied := s.shipFrame(ctx, host, base, round, frameLen, regions, req[:])
			sh.mu.Lock()
			sh.doneSeq, sh.ok, sh.lastApplied = seq, ok, lastApplied
			sh.mu.Unlock()
		}
	}
}

func (s *Server) shipFrame(ctx rdma.Ctx, host int, base uint64, round uint64, frameLen int, regions []ckptRegion, req []byte) (bool, uint64) {
	node, alive := s.cl.view.nodeOf(host)
	if !alive {
		return false, 0
	}
	for _, r := range regions {
		if err := writeChunkedTo(ctx, node, base+r.rel, r.data, s.cl.Cfg.ChunkBytes); err != nil {
			return false, 0
		}
	}
	// Hand-encoded methodApplyCkpt request (owner u8, round u64,
	// frameLen u32) into the caller's fixed buffer: no per-round
	// allocation.
	req[0] = uint8(s.mn)
	binary.LittleEndian.PutUint64(req[1:9], round)
	binary.LittleEndian.PutUint32(req[9:13], uint32(frameLen))
	resp, err := ctx.RPC(node, methodApplyCkpt, req)
	if err != nil || len(resp) < 9 || resp[0] != stOK {
		return false, 0
	}
	return true, binary.LittleEndian.Uint64(resp[1:9])
}

// writeChunkedTo writes data to a fixed node in ChunkBytes pieces so
// bulk transfers interleave with foreground verbs at the NICs.
func writeChunkedTo(ctx rdma.Ctx, node rdma.NodeID, off uint64, data []byte, chunk int) error {
	for pos := 0; pos < len(data); pos += chunk {
		end := pos + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := ctx.Write(rdma.GlobalAddr{Node: node, Off: off + uint64(pos)}, data[pos:end]); err != nil {
			return err
		}
	}
	return nil
}

// --- the send and receive daemons ---

// ckptSendLoop is the checkpoint-send core: it runs the differential
// checkpointing pipeline of Figure 3 (snapshot → XOR with last →
// LZ4-compress → chunked RDMA_WRITE to the hosts → notify), restricted
// to the segments that are dirty or owed to a host as a raw resync.
func (s *Server) ckptSendLoop(ctx rdma.Ctx) {
	l := s.cl.L
	segs := l.CkptSegCount()
	fr := s.ckptFr
	nHosts := l.Cfg.CkptHosts
	words := len(s.ckptDirty)
	// rawPend[h] tracks segments whose next ship to host h must be an
	// overwrite record: the host's reference copy cannot be trusted
	// for them (missed frame, replacement node, or recovered owner).
	rawPend := make([][]uint64, nHosts)
	hostNode := make([]rdma.NodeID, nHosts)
	for h := 0; h < nHosts; h++ {
		rawPend[h] = make([]uint64, words)
		hostNode[h], _ = s.cl.view.nodeOf(l.CkptHostOf(s.mn, h))
		if s.ckptResync {
			// A recovered server's reference snapshot starts zeroed
			// while the hosts still hold the pre-crash copy: XOR deltas
			// would corrupt it, so the first round overwrites.
			ckptSetAll(rawPend[h], segs)
		}
	}
	dirtyW := make([]uint64, words)
	shipMask := make([]uint64, words)
	regions := make([]ckptRegion, 0, segs+1)
	// With one segment, an untracked fabric, or the raw ablation there
	// is no dirty information to exploit: every round ships the whole
	// index, byte-for-byte reproducing the full-image pipeline.
	allSegs := segs == 1 || !s.ckptTracked || s.cl.Cfg.CkptRaw
	workers := s.cl.Cfg.ckptWorkers()
	var seq uint64
	for !s.isStopped() {
		ctx.Sleep(100 * time.Microsecond)
		s.mu.Lock()
		round := s.snapshot
		s.snapshot = 0
		s.mu.Unlock()
		if round == 0 {
			continue
		}
		// A host re-served on a new physical node starts from a zeroed
		// copy: everything we ship it must overwrite until it catches
		// up.
		for h := 0; h < nHosts; h++ {
			if node, alive := s.cl.view.nodeOf(l.CkptHostOf(s.mn, h)); alive && node != hostNode[h] {
				hostNode[h] = node
				ckptSetAll(rawPend[h], segs)
			}
		}
		// Drain the dirty bitmap and fold in per-host resync debt.
		for w := 0; w < words; w++ {
			dirtyW[w] = s.ckptDirty[w].Swap(0)
		}
		if allSegs {
			ckptSetAll(dirtyW, segs)
		}
		dirtyCount := ckptPopCount(dirtyW)
		for w := 0; w < words; w++ {
			m := dirtyW[w]
			for h := 0; h < nHosts; h++ {
				m |= rawPend[h][w]
			}
			shipMask[w] = m
		}
		fr.jobs = fr.jobs[:0]
		for seg := 0; seg < segs; seg++ {
			if shipMask[seg>>6]&(uint64(1)<<(seg&63)) == 0 {
				continue
			}
			raw := s.cl.Cfg.CkptRaw
			for h := 0; h < nHosts && !raw; h++ {
				raw = rawPend[h][seg>>6]&(uint64(1)<<(seg&63)) != 0
			}
			fr.jobs = append(fr.jobs, ckptSegJob{seg: seg, raw: raw})
		}
		if len(fr.jobs) == 0 {
			// Clean round: the hosted copies already match; skipping
			// leaves their version word at the last shipped round,
			// which recovery accepts as the latest consistent state.
			continue
		}
		seq++
		fr.round, fr.seq = round, seq
		roundStart := ctx.Now()

		// ① snapshot the round's segments.
		s.memMu.Lock()
		snapBytes := fr.snapshot(s.mem)
		s.memMu.Unlock()
		snapCost := cpuTime(snapBytes, s.cl.Cfg.Rates.Memcpy)
		ctx.UseCPU(rdma.CoreCkptSend, snapCost)
		cpuNs := uint64(snapCost)

		// ② XOR + compress each segment, fanned out over the worker
		// pool when configured (inline on this core otherwise).
		if workers > 0 && len(fr.jobs) > 1 {
			s.ckptWorkMu.Lock()
			s.ckptWorkN = len(fr.jobs)
			s.ckptWorkNext = 0
			s.ckptWorkLeft = len(fr.jobs)
			s.ckptWorkNs = 0
			s.ckptWorkMu.Unlock()
			for {
				ctx.Sleep(5 * time.Microsecond)
				s.ckptWorkMu.Lock()
				left := s.ckptWorkLeft
				s.ckptWorkMu.Unlock()
				if left == 0 || s.isStopped() {
					break
				}
			}
			s.ckptWorkMu.Lock()
			cpuNs += s.ckptWorkNs
			s.ckptWorkMu.Unlock()
		} else {
			for i := range fr.jobs {
				cost := fr.processSeg(i)
				if cost > 0 {
					ctx.UseCPU(rdma.CoreCkptSend, cost)
				}
				cpuNs += uint64(cost)
			}
		}
		frameLen := fr.finishRound()
		regions = fr.regions(regions)
		compBytes, rawBytes := fr.payloadBytes()

		s.mu.Lock()
		s.ckptRounds++
		s.ckptBytes += uint64(compBytes)
		s.ckptRawBytes += uint64(rawBytes)
		s.ckptDirtySegs = uint64(dirtyCount)
		s.ckptSegsShipped += uint64(len(fr.jobs))
		s.ckptCPUNs += cpuNs
		s.mu.Unlock()

		// ③ fan the frame out to every host concurrently and wait for
		// all shippers before the frame buffers can be reused.
		for h := 0; h < nHosts; h++ {
			sh := s.ckptShippers[h]
			sh.mu.Lock()
			sh.seq, sh.round, sh.frameLen, sh.regions = seq, round, frameLen, regions
			sh.mu.Unlock()
		}
		for {
			ctx.Sleep(20 * time.Microsecond)
			done := true
			for h := 0; h < nHosts && done; h++ {
				sh := s.ckptShippers[h]
				sh.mu.Lock()
				done = sh.doneSeq == seq
				sh.mu.Unlock()
			}
			if done {
				break
			}
			if s.isStopped() {
				return
			}
		}
		// ④ per-host bookkeeping. A transport failure means the host
		// missed exactly this frame; a lastApplied mismatch means an
		// earlier frame was torn or lost after a successful notify
		// (e.g. overwritten in staging before the recv core got to
		// it), leaving the copy arbitrarily stale. Both self-heal via
		// overwrite records; the version word on a stale copy stays at
		// its last consistent round throughout, so recovery is safe at
		// every point in between.
		fails := uint64(0)
		for h := 0; h < nHosts; h++ {
			sh := s.ckptShippers[h]
			sh.mu.Lock()
			ok, lastApplied := sh.ok, sh.lastApplied
			sh.mu.Unlock()
			switch {
			case !ok:
				fails++
				ckptOrInto(rawPend[h], shipMask)
			case lastApplied != seq-1:
				fails++
				ckptSetAll(rawPend[h], segs)
			default:
				ckptAndNotInto(rawPend[h], shipMask)
			}
		}
		if fails > 0 {
			s.mu.Lock()
			s.ckptShipFailures += fails
			s.mu.Unlock()
		}
		// One phase event per shipped round (snapshot → compress →
		// ship → notify), so the trace timeline shows checkpoint
		// rounds alongside op spans and recovery tiers.
		now := ctx.Now()
		s.cl.trace.Emit(obs.Event{At: now, Kind: "ckpt.round", MN: s.mn,
			Dur: now - roundStart, Note: "differential round"})
	}
}

// ckptRecvLoop is the checkpoint-receive core: it validates staged
// frames and folds their records into the hosted checkpoint copies
// (Figure 3 ④). The hosted copy and its version word mutate in one
// memMu critical section, so remote readers (tier-2 recovery) can
// detect torn reads by sampling the version word before and after the
// image.
func (s *Server) ckptRecvLoop(ctx rdma.Ctx) {
	l := s.cl.L
	for !s.isStopped() {
		ctx.Sleep(100 * time.Microsecond)
		for {
			s.mu.Lock()
			if len(s.applyQ) == 0 {
				s.mu.Unlock()
				break
			}
			job := s.applyQ[0]
			s.applyQ = s.applyQ[1:]
			lastSeq := s.ckptApplySeq[job.slot]
			s.mu.Unlock()

			s.memMu.Lock()
			staging := s.mem[l.CkptStagingOff(job.slot) : l.CkptStagingOff(job.slot)+uint64(job.frameLen)]
			hosted := s.mem[l.CkptCopyOff(job.slot) : l.CkptCopyOff(job.slot)+l.Cfg.IndexBytes]
			seq, ast, err := s.ckptApplier.apply(hosted, staging, job.version, lastSeq)
			if err == nil {
				// The version word is the round's commit point: it only
				// moves once every record landed.
				binary.LittleEndian.PutUint64(s.mem[l.CkptVersionOff(job.slot):], job.version)
			}
			s.memMu.Unlock()
			if err != nil {
				continue // torn staging write; the owner resyncs via seq feedback
			}
			cost := cpuTime(ast.decompressed, s.cl.Cfg.Rates.Decompress) +
				cpuTime(ast.applied, s.cl.Cfg.Rates.Memcpy)
			s.mu.Lock()
			s.ckptApplies++
			s.ckptApplySeq[job.slot] = seq
			s.ckptCPUNs += uint64(cost)
			s.mu.Unlock()
			if cost > 0 {
				ctx.UseCPU(rdma.CoreCkptRecv, cost)
			}
		}
	}
}
