package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/rdma"
	"repro/internal/rdma/tcpnet"
)

// newTCPTestCluster boots a full coding group in-process on the real
// TCP transport (tcpnet group mode): every MN serves its own loopback
// listener and all verbs cross real sockets.
func newTCPTestCluster(t *testing.T, mutate func(*Config)) (*tcpnet.Platform, *Cluster) {
	t.Helper()
	cfg := testConfig()
	cfg.CkptInterval = 40 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	pl := tcpnet.NewGroup()
	pl.SetOptions(tcpnet.Options{
		OpTimeout:   500 * time.Millisecond,
		RetryBudget: time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	cl.StartServers()
	cl.StartMaster()
	t.Cleanup(func() {
		for mn := 0; mn < cfg.Layout.NumMNs; mn++ {
			cl.Server(mn).stop()
		}
		pl.Close()
	})
	return pl, cl
}

// runTCPClient runs fn as a client process on a fresh compute node and
// waits for it (wall clock).
func runTCPClient(t *testing.T, pl *tcpnet.Platform, cl *Cluster, fn func(*Client)) {
	t.Helper()
	cn := pl.AddComputeNode()
	done := make(chan struct{})
	cl.SpawnClient(cn, "tcp-test-client", func(c *Client) {
		defer close(done)
		fn(c)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("tcp client timed out")
	}
}

// TestTCPNetTieredRecovery kills an MN over the admin RPC and drives
// the full three-tier recovery (§3.4.1) on the real TCP transport:
// tier 1 re-reads the Meta Area from replicas, tier 2 rebuilds the
// Index Area from the differential checkpoint plus a KV scan of
// post-checkpoint blocks, and tier 3 reconstructs the Block Area from
// stripe survivors in the background.
func TestTCPNetTieredRecovery(t *testing.T) {
	pl, cl := newTCPTestCluster(t, nil)
	cl.Master().AddSpare()

	const preCkpt, postCkpt = 600, 150
	expect := make(map[int][]byte)
	runTCPClient(t, pl, cl, func(c *Client) {
		for i := 0; i < preCkpt; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			expect[i] = v
		}
	})
	// Let checkpoint rounds land so the pre-crash blocks age into
	// tier-3 territory (sealed before the recovered checkpoint).
	time.Sleep(4 * cl.Cfg.CkptInterval)
	runTCPClient(t, pl, cl, func(c *Client) {
		for i := preCkpt; i < preCkpt+postCkpt; i++ {
			v := val(i, 1)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			expect[i] = v
		}
		// Kill MN 1 through the admin RPC — the full crash path a real
		// deployment would use, not a harness shortcut.
		if err := c.KillMN(1); err != nil {
			t.Errorf("KillMN: %v", err)
		}
	})

	// The admin kill is asynchronous (the MN acks, then crashes), so
	// first wait for the crash to land, then for recovery to finish.
	deadline := time.Now().Add(45 * time.Second)
	for {
		_, _, blocksReady := cl.MNState(1)
		if !blocksReady || len(cl.Master().ReportList()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admin kill never took effect")
		}
		time.Sleep(time.Millisecond)
	}
	for {
		if _, _, blocksReady := cl.MNState(1); blocksReady {
			break
		}
		if time.Now().After(deadline) {
			failed, idxReady, blocksReady := cl.MNState(1)
			t.Fatalf("recovery never finished: failed=%v indexReady=%v blocksReady=%v",
				failed, idxReady, blocksReady)
		}
		time.Sleep(5 * time.Millisecond)
	}

	reports := cl.Master().ReportList()
	if len(reports) == 0 {
		t.Fatal("no recovery report")
	}
	rep := reports[0]
	if rep.MN != 1 {
		t.Fatalf("report for MN %d, want 1", rep.MN)
	}
	// Tier 1: the Meta Area came back from a replica.
	if rep.ReadMeta <= 0 {
		t.Error("tier 1 (meta replica read) left no trace in the report")
	}
	// Tier 2: a checkpoint was found and post-checkpoint KVs were
	// scanned back into the index before functionality was restored.
	if rep.CkptVersion == 0 {
		t.Error("tier 2 recovered no checkpoint (CkptVersion = 0)")
	}
	if rep.KVCount == 0 {
		t.Error("tier 2 scanned no KV pairs from new blocks")
	}
	if rep.IndexDone <= 0 || rep.IndexDone > rep.Total {
		t.Errorf("tier 2 IndexDone = %v (total %v)", rep.IndexDone, rep.Total)
	}
	// Tier 3: old (checkpoint-covered) blocks were rebuilt from stripe
	// survivors in the background.
	if rep.OldLBlockCount == 0 {
		t.Error("tier 3 had no old blocks to recover (grow the pre-checkpoint load)")
	}
	t.Logf("tcpnet recovery: ckptVer=%d newLocal=%d remote=%d kvScanned=%d oldLocal=%d indexDone=%v total=%v",
		rep.CkptVersion, rep.LBlockCount, rep.RBlockCount, rep.KVCount,
		rep.OldLBlockCount, rep.IndexDone, rep.Total)

	// A cold client must find every pair through the recovered index.
	runTCPClient(t, pl, cl, func(c *Client) {
		for i, want := range expect {
			got, err := c.Search(key(i))
			if err != nil {
				t.Errorf("search %d after recovery: %v", i, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("key %d: wrong value after recovery", i)
				return
			}
		}
	})
}

// TestTCPNetChaosWorkload runs a CRUD workload while the fabric
// injects drops, delays and connection resets on every MN (installed
// over the admin RPC); the transparent retry layer must absorb all of
// it with no lost or corrupted pairs.
func TestTCPNetChaosWorkload(t *testing.T) {
	pl, cl := newTCPTestCluster(t, nil)
	runTCPClient(t, pl, cl, func(c *Client) {
		cfg := rdma.ChaosConfig{
			Seed:      7,
			DropProb:  0.02,
			DelayProb: 0.1,
			MaxDelay:  time.Millisecond,
			ResetProb: 0.02,
		}
		for mn := 0; mn < cl.Cfg.Layout.NumMNs; mn++ {
			if err := c.ChaosMN(mn, cfg); err != nil {
				t.Errorf("ChaosMN(%d): %v", mn, err)
				return
			}
		}
	})

	const n = 120
	expect := make(map[int][]byte)
	runTCPClient(t, pl, cl, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 3)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert %d under chaos: %v", i, err)
				return
			}
			expect[i] = v
		}
		for i := 0; i < n; i += 3 {
			v := val(i, 4)
			if err := c.Update(key(i), v); err != nil {
				t.Errorf("update %d under chaos: %v", i, err)
				return
			}
			expect[i] = v
		}
	})

	// Clear chaos, then verify from a cold client.
	runTCPClient(t, pl, cl, func(c *Client) {
		for mn := 0; mn < cl.Cfg.Layout.NumMNs; mn++ {
			if err := c.ChaosMN(mn, rdma.ChaosConfig{}); err != nil {
				t.Errorf("clear ChaosMN(%d): %v", mn, err)
				return
			}
		}
		for i, want := range expect {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("key %d after chaos: %v", i, err)
				return
			}
		}
	})
}
