// Fault-tolerance mode registry. core owns the shared Config type, so
// the registry lives here: mode packages (internal/fusee,
// internal/swarm) import core and register an opener in their init;
// callers open any mode with OpenFT. The aceso mode itself is
// registered below — it adapts *Cluster/*Client, which already satisfy
// the ftmode interfaces, byte-for-byte.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ftmode"
	"repro/internal/rdma"
)

// Mode names. Replication modes register under these names from their
// own packages (import them, e.g. via internal/ftmodes, to link them
// in).
const (
	FTModeAceso = "aceso"
	FTModeFusee = "fusee-replication"
	FTModeSwarm = "swarm-inplace"
)

var ftRegistry = struct {
	mu    sync.Mutex
	modes map[string]func(Config, rdma.Platform) (ftmode.Cluster, error)
}{modes: map[string]func(Config, rdma.Platform) (ftmode.Cluster, error){}}

// RegisterFTMode registers a mode opener under name. Mode packages
// call it from init; re-registration panics (it means two packages
// claim one name).
func RegisterFTMode(name string, open func(Config, rdma.Platform) (ftmode.Cluster, error)) {
	ftRegistry.mu.Lock()
	defer ftRegistry.mu.Unlock()
	if _, dup := ftRegistry.modes[name]; dup {
		panic(fmt.Sprintf("core: ftmode %q registered twice", name))
	}
	ftRegistry.modes[name] = open
}

// FTModes returns the registered mode names, sorted.
func FTModes() []string {
	ftRegistry.mu.Lock()
	defer ftRegistry.mu.Unlock()
	out := make([]string, 0, len(ftRegistry.modes))
	for name := range ftRegistry.modes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OpenFT opens cfg.FTMode on pl. An unknown mode is an error listing
// what is linked in, so a missing blank-import shows up clearly.
func OpenFT(cfg Config, pl rdma.Platform) (ftmode.Cluster, error) {
	name := cfg.FTModeName()
	ftRegistry.mu.Lock()
	open := ftRegistry.modes[name]
	ftRegistry.mu.Unlock()
	if open == nil {
		return nil, fmt.Errorf("core: unknown ftmode %q (linked: %v)", name, FTModes())
	}
	return open(cfg, pl)
}

func init() {
	RegisterFTMode(FTModeAceso, func(cfg Config, pl rdma.Platform) (ftmode.Cluster, error) {
		cl, err := NewCluster(cfg, pl)
		if err != nil {
			return nil, err
		}
		return &acesoMode{cl: cl}, nil
	})
}

// acesoMode adapts *Cluster to ftmode.Cluster. It is a thin shim: the
// default mode's behavior is exactly the pre-ftmode code path.
type acesoMode struct{ cl *Cluster }

// Core exposes the underlying cluster for aceso-only surfaces (server
// stats, tracer, master control). Callers type-assert for it.
func (a *acesoMode) Core() *Cluster { return a.cl }

func (a *acesoMode) Mode() string { return FTModeAceso }

func (a *acesoMode) Caps() ftmode.Caps {
	return ftmode.Caps{
		DegradedReads:  true,
		TieredRecovery: true,
		Checkpoints:    true,
		SpaceBreakdown: true,
		AdminRPC:       true,
		ClientCache:    true,
	}
}

// Start launches the MN server daemons and the master with one spare
// (the standard harness topology; daemons wire these individually via
// Core instead).
func (a *acesoMode) Start() error {
	a.cl.StartServers()
	a.cl.StartMaster().AddSpare()
	return nil
}

func (a *acesoMode) NewClient() ftmode.Client { return a.cl.NewClient() }

func (a *acesoMode) SpawnClient(cn rdma.NodeID, name string, fn func(ftmode.Client)) {
	a.cl.SpawnClient(cn, name, func(c *Client) { fn(c) })
}

func (a *acesoMode) FailMN(mn int) { a.cl.FailMN(mn) }

func (a *acesoMode) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return a.cl.MNState(mn)
}

func (a *acesoMode) Ready() bool { return a.cl.Ready() }

func (a *acesoMode) Usage() ftmode.Usage {
	u := a.cl.MemoryUsage()
	return ftmode.Usage{
		ValidBytes:     u.ValidBytes,
		RedundantBytes: u.ParityBytes + u.DeltaBytes + u.CopyBytes,
		TotalBytes:     u.DataBlockBytes + u.ParityBytes + u.DeltaBytes + u.CopyBytes,
	}
}

func (a *acesoMode) NumMNs() int { return a.cl.Cfg.Layout.NumMNs }
