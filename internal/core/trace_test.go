package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma/simnet"
)

// TestEndToEndTraceTimeline drives the full tracing path on simnet:
// every client op sampled (rate 1), checkpoint rounds and EC batches
// running, an admin fail-stop injected, then the whole timeline pulled
// over the admin Trace RPC and rendered as Chrome trace_event JSON.
// It pins the acceptance shape: at least one client op span with verb
// children, a server handler phase, a checkpoint-round span, an EC
// kernel span, and the chaos/recovery instant events, all in one
// Perfetto-loadable document.
func TestEndToEndTraceTimeline(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSample = 1
	pl := simnet.New(simnet.DefaultConfig())
	ipl := obs.Instrument(pl, obs.NewFabricMetrics())
	cl, err := NewCluster(cfg, ipl)
	if err != nil {
		t.Fatal(err)
	}
	ipl.SetTracer(cl.Tracer())
	cl.StartServers()
	cl.StartMaster()
	cl.Master().AddSpare()
	t.Cleanup(pl.Shutdown)

	now := func() time.Duration { return pl.Engine().Now() }
	runUntil := func(cond func() bool, limit time.Duration, what string) {
		t.Helper()
		end := now() + limit
		for !cond() && now() < end {
			pl.Run(now() + time.Millisecond)
		}
		if !cond() {
			t.Fatalf("%s did not happen within %v of virtual time", what, limit)
		}
	}
	spawn := func(name string, fn func(*Client)) *bool {
		done := false
		cl.SpawnClient(ipl.AddComputeNode(), name, func(c *Client) {
			fn(c)
			done = true
		})
		return &done
	}

	// Workload: all four op classes, enough updates for delta folds.
	const n = 120
	d1 := spawn("tracegen", func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			if _, err := c.Search(key(i)); err != nil {
				t.Errorf("search %d: %v", i, err)
				return
			}
			if err := c.Update(key(i), val(i, 1)); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
		if err := c.Delete(key(0)); err != nil {
			t.Errorf("delete: %v", err)
		}
	})
	runUntil(func() bool { return *d1 }, 30*time.Second, "traced workload")
	// Let checkpoint rounds and the erasure encoder drain.
	pl.Run(now() + 3*cl.Cfg.CkptInterval)

	// Inject a fail-stop over the admin RPC and wait for recovery.
	const victim = 1
	d2 := spawn("killer", func(c *Client) {
		if err := c.KillMN(victim); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	runUntil(func() bool { return *d2 }, 10*time.Second, "admin kill")
	// handleAdminFail defers the crash to a wall-clock goroutine (the
	// stOK response must flush first). Let it land while the engine is
	// idle, so FailMN never races a running simulation.
	for i := 0; i < 200; i++ {
		if failed, _, _ := cl.MNState(victim); failed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if failed, _, _ := cl.MNState(victim); !failed {
		t.Fatal("admin kill never fail-stopped the MN")
	}
	runUntil(func() bool {
		failed, _, blocksReady := cl.MNState(victim)
		return !failed && blocksReady
	}, 10*time.Minute, "tier-3 recovery")

	// Pull the timeline over the admin Trace RPC.
	var spans []obs.Span
	var events []obs.Event
	d3 := spawn("tracer", func(c *Client) {
		var err error
		spans, events, err = c.TraceMN(0, 0)
		if err != nil {
			t.Errorf("trace rpc: %v", err)
		}
	})
	runUntil(func() bool { return *d3 }, 10*time.Second, "trace fetch")

	// --- span-tree shape ---
	opsByTrace := map[uint64]obs.Span{}
	verbsByTrace := map[uint64]int{}
	marks := map[string]int{}
	phases := map[string]int{}
	for _, sp := range spans {
		switch sp.Kind {
		case obs.SpanOp:
			opsByTrace[sp.Trace] = sp
		case obs.SpanVerb:
			verbsByTrace[sp.Trace]++
		case obs.SpanMark:
			marks[sp.Name]++
		case obs.SpanPhase:
			phases[sp.Name]++
		}
	}
	if len(opsByTrace) == 0 {
		t.Fatal("no client op spans recorded")
	}
	opWithChildren := 0
	opNames := map[string]bool{}
	for tr, op := range opsByTrace {
		opNames[op.Name] = true
		if verbsByTrace[tr] > 0 {
			opWithChildren++
		}
	}
	if opWithChildren == 0 {
		t.Error("no op span has verb children")
	}
	for _, want := range []string{"get", "update", "insert", "delete"} {
		if !opNames[want] {
			t.Errorf("no %q op span (have %v)", want, opNames)
		}
	}
	if len(phases) == 0 {
		t.Error("no server handler phase spans")
	}
	handlerSeen := false
	for name := range phases {
		if strings.HasPrefix(name, "rpc.") {
			handlerSeen = true
		}
	}
	if !handlerSeen {
		t.Errorf("no rpc.* handler span (have %v)", phases)
	}
	if marks["ckpt.mark"] == 0 {
		t.Error("no checkpoint-observer mark span")
	}

	// --- ring-event timeline ---
	evKinds := map[string]int{}
	var ckptDur time.Duration
	for _, ev := range events {
		evKinds[ev.Kind]++
		if ev.Kind == "ckpt.round" && ev.Dur > ckptDur {
			ckptDur = ev.Dur
		}
	}
	for _, want := range []string{"ckpt.round", "ec.encode", "fail.inject", "fail.detect"} {
		if evKinds[want] == 0 {
			t.Errorf("no %q ring event (have %v)", want, evKinds)
		}
	}
	recoverySeen := false
	for kind := range evKinds {
		if strings.HasPrefix(kind, "recovery.") {
			recoverySeen = true
		}
	}
	if !recoverySeen {
		t.Errorf("no recovery.* ring events (have %v)", evKinds)
	}

	// --- Perfetto-loadable rendering ---
	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, spans, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != len(spans)+len(events) {
		t.Errorf("rendered %d events, want %d", len(doc.TraceEvents), len(spans)+len(events))
	}
	names := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || (ev.Ph != "X" && ev.Ph != "i") || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d fails the trace_event schema: %+v", i, ev)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"get", "ckpt.round", "ec.encode", "fail.inject"} {
		if !names[want] {
			t.Errorf("rendered trace missing %q", want)
		}
	}
}
