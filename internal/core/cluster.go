package core

import (
	"fmt"
	"sync"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// Cluster wires one Aceso coding group onto a fabric: n memory nodes
// running servers, any number of clients on compute nodes, and a
// master providing the membership service (§2.1). Logical MN ids are
// stable across failures — when MN i crashes, the master re-serves its
// role on a spare physical node and the view maps logical id i to the
// new node. All addresses stored in pool memory (index slots, delta
// addresses) use logical ids, so they survive recovery.
type Cluster struct {
	Cfg  Config
	L    *layout.Layout
	pl   rdma.Platform
	code erasure.Code

	view    view
	servers []*Server
	master  *Master
	trace   *obs.Ring
	tracer  *obs.Tracer

	// bvLive: the platform supports rdma.LocalAtomics, so MN servers
	// maintain per-bucket version words and clients may trust
	// version-validated cache state (negative entries, mirrors).
	bvLive bool
	// cacheMet aggregates cache activity across this handle's clients
	// for live export (/metrics, admin Stats).
	cacheMet obs.CacheMetrics
	// writeMet aggregates write-path activity (fused commits, fallback
	// reasons, block prefetching, delta skips) the same way.
	writeMet obs.WriteMetrics

	mu      sync.Mutex
	nextCli uint16
}

// view is the membership state the master maintains and disseminates.
// In the paper the master pushes failure notifications to all clients;
// here clients read the shared view directly, which models the same
// information flow without simulating the notification fan-out.
type view struct {
	mu sync.Mutex
	// epoch increments on every membership change (failure injected or
	// recovery completed); clients use it to refresh cached remote
	// addresses such as DELTA-block targets.
	epoch uint64
	// node[i] is the physical node currently serving logical MN i.
	node []rdma.NodeID
	// failed[i]: MN i is down and not yet re-served.
	failed []bool
	// indexReady[i]: MN i's Meta and Index areas are usable (tier-2
	// recovery complete); writes and degraded reads may proceed.
	indexReady []bool
	// blocksReady[i]: MN i's Block Area is fully recovered; reads are
	// no longer degraded.
	blocksReady []bool
}

func (v *view) snapshotMN(mn int) (node rdma.NodeID, failed, idxReady, blkReady bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.node[mn], v.failed[mn], v.indexReady[mn], v.blocksReady[mn]
}

func (v *view) nodeOf(mn int) (rdma.NodeID, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if mn < 0 || mn >= len(v.node) {
		return 0, false
	}
	return v.node[mn], !v.failed[mn]
}

func (v *view) epochNow() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// NewCluster creates the coding group's memory nodes and servers on
// the platform. Call StartServers (and StartMaster for checkpointing
// and failure handling) before spawning clients.
func NewCluster(cfg Config, pl rdma.Platform) (*Cluster, error) {
	l, err := layout.NewLayout(cfg.Layout)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Cfg: cfg, L: l, pl: pl, trace: obs.NewRing(1024)}
	_, cl.bvLive = pl.(rdma.LocalAtomics)
	if rate := cfg.traceSample(); rate > 0 {
		cl.tracer = obs.NewTracer(rate, cfg.traceSpans())
	}
	cl.code, err = cfg.newCode()
	if err != nil {
		return nil, err
	}
	// Wall-clock fabrics get their kernel parallelism from the erasure
	// package's own goroutine pool; the sim-core ecPool only models the
	// elapsed time. Harmless on simnet (byte results are identical).
	cl.code.SetWorkers(cfg.ecWorkers())
	if cl.code.M() != cfg.Layout.ParityShards {
		return nil, fmt.Errorf("core: code %q has %d parities, layout wants %d",
			cfg.Code, cl.code.M(), cfg.Layout.ParityShards)
	}
	if int(cfg.Layout.BlockSize)%cl.code.SegmentAlign() != 0 {
		return nil, fmt.Errorf("core: block size %d not aligned to code segment %d",
			cfg.Layout.BlockSize, cl.code.SegmentAlign())
	}
	n := cfg.Layout.NumMNs
	cl.view.node = make([]rdma.NodeID, n)
	cl.view.failed = make([]bool, n)
	cl.view.indexReady = make([]bool, n)
	cl.view.blocksReady = make([]bool, n)
	for i := 0; i < n; i++ {
		node := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: l.MemBytes(), CPUCores: rdma.NumMNCores + cfg.ckptWorkers() + cfg.ecWorkers()})
		cl.view.node[i] = node
		cl.view.indexReady[i] = true
		cl.view.blocksReady[i] = true
		cl.servers = append(cl.servers, newServer(cl, i, node))
	}
	return cl, nil
}

// CacheMetrics returns the handle-wide client-cache aggregate for
// metrics export.
func (cl *Cluster) CacheMetrics() *obs.CacheMetrics { return &cl.cacheMet }

// WriteMetrics returns the handle-wide write-path aggregate (fused
// commits, fallbacks, prefetch, delta skips) for metrics export.
func (cl *Cluster) WriteMetrics() *obs.WriteMetrics { return &cl.writeMet }

// StartServers installs RPC handlers and spawns the per-MN daemons
// (erasure encoder, checkpoint sender/receiver, meta replicator). On
// distributed fabrics only the MNs whose memory is locally accessible
// are started — each daemon process starts its own.
func (cl *Cluster) StartServers() {
	for _, s := range cl.servers {
		if cl.pl.Memory(s.node) == nil {
			continue
		}
		s.start()
	}
}

// StartMaster spawns the master process (checkpoint round trigger,
// lease-based liveness probing, recovery orchestration) on its own
// compute node.
func (cl *Cluster) StartMaster() *Master {
	node := cl.pl.AddComputeNode()
	cl.master = newMaster(cl, node)
	cl.master.start()
	return cl.master
}

// Addr resolves a (logical MN, offset) pair to a fabric address using
// the current view. The boolean reports whether the MN is currently
// served.
func (cl *Cluster) Addr(mn int, off uint64) (rdma.GlobalAddr, bool) {
	node, ok := cl.view.nodeOf(mn)
	return rdma.GlobalAddr{Node: node, Off: off}, ok
}

// PackedAddr resolves a 48-bit packed logical address from an index
// slot or metadata record.
func (cl *Cluster) PackedAddr(a uint64) (rdma.GlobalAddr, bool) {
	mn, off := layout.UnpackAddr(a)
	return cl.Addr(int(mn), off)
}

// Server returns the server of logical MN i (test and recovery use).
// Recovery republishes servers under view.mu, so the read is guarded.
func (cl *Cluster) Server(mn int) *Server {
	cl.view.mu.Lock()
	defer cl.view.mu.Unlock()
	return cl.servers[mn]
}

// MNNode returns the physical node currently serving logical MN i
// (harness instrumentation).
func (cl *Cluster) MNNode(mn int) rdma.NodeID {
	node, _ := cl.view.nodeOf(mn)
	return node
}

// Master returns the cluster's master (nil before StartMaster).
func (cl *Cluster) Master() *Master { return cl.master }

// Trace returns the cluster's bounded trace ring: failure detections,
// checkpoint rounds and per-tier recovery phase timings, stamped with
// the fabric clock of the emitting process.
func (cl *Cluster) Trace() *obs.Ring { return cl.trace }

// Tracer returns the cluster's sampled span tracer (nil when
// Config.TraceSample < 0 disabled tracing). Install it on the
// instrumented platform (obs.Platform.SetTracer) before spawning
// clients so their ops record span trees.
func (cl *Cluster) Tracer() *obs.Tracer { return cl.tracer }

// Ready reports readiness for serving traffic: no MN is failed,
// mid-recovery or resyncing. Liveness is a separate, weaker check —
// a cluster in tier-3 recovery is alive but not ready.
func (cl *Cluster) Ready() bool {
	v := &cl.view
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := range v.node {
		if v.failed[i] || !v.indexReady[i] || !v.blocksReady[i] {
			return false
		}
	}
	return true
}

// Reclaimed returns the total count of blocks handed out through
// delta-based reclamation across all servers.
func (cl *Cluster) Reclaimed() int {
	cl.view.mu.Lock()
	servers := append([]*Server(nil), cl.servers...)
	cl.view.mu.Unlock()
	total := 0
	for _, s := range servers {
		s.mu.Lock()
		total += s.reclaimed
		s.mu.Unlock()
	}
	return total
}

// NewClient allocates a client identity. Spawn its process yourself:
//
//	cli := cl.NewClient()
//	pl.Spawn(cn, "client", func(ctx rdma.Ctx) { cli.Attach(ctx); ... })
func (cl *Cluster) NewClient() *Client {
	cl.mu.Lock()
	cl.nextCli++
	id := cl.nextCli
	cl.mu.Unlock()
	return newClient(cl, id)
}

// SpawnClient spawns fn as a client process on compute node cn.
func (cl *Cluster) SpawnClient(cn rdma.NodeID, name string, fn func(*Client)) *Client {
	cli := cl.NewClient()
	cl.pl.Spawn(cn, name, func(ctx rdma.Ctx) {
		cli.Attach(ctx)
		fn(cli)
	})
	return cli
}
