package core

import (
	"testing"
	"time"

	"repro/internal/rdma/simnet"
)

// TestSteadyStateChurn runs insert+delete cycles whose cumulative
// volume exceeds the Block Area many times over: delta-based
// reclamation must recycle blocks indefinitely (a regression here
// means obsolete marks are being lost and the pool eventually
// exhausts, as an early drop-marks heuristic once caused).
func TestSteadyStateChurn(t *testing.T) {
	cfg := testConfig()
	cfg.Layout.StripeRows = 24
	cfg.Layout.PoolBlocks = 16
	cfg.BitmapFlushOps = 8
	cfg.ReclaimFree = 0.5
	tc := newTestClusterCfg(t, cfg)
	const keys, cycles = 64, 20000 // ~7 MB churn through ~1.1 MB of data capacity
	tc.runClients(t, 3600*time.Second, func(c *Client) {
		for i := 0; i < keys; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("preload: %v", err)
				return
			}
		}
		for i := 0; i < cycles; i++ {
			k := key(i % keys)
			if err := c.Insert(k, val(i%keys, 1)); err != nil {
				t.Errorf("cycle %d insert: %v", i, err)
				return
			}
			if err := c.Delete(k); err != nil {
				t.Errorf("cycle %d delete: %v", i, err)
				return
			}
		}
	})
	if tc.cl.Reclaimed() == 0 {
		t.Fatal("churn never triggered reclamation")
	}
	tc.run(50 * time.Millisecond)
	stripeParityInvariant(t, tc)
}

// newTestClusterCfg builds a test cluster from an explicit config.
func newTestClusterCfg(t *testing.T, cfg Config) *testCluster {
	t.Helper()
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	cl.StartServers()
	cl.StartMaster()
	t.Cleanup(pl.Shutdown)
	return &testCluster{pl: pl, cl: cl}
}
