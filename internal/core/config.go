// Package core implements Aceso itself: the memory-node server (space
// allocation, differential index checkpointing, offline erasure
// coding, delta-based space reclamation), the client (one-sided KV
// operations with slot versioning and the slot-address index cache),
// the master (lease-based membership and failure handling) and the
// tiered recovery machinery. It is the paper's contribution; everything
// it builds on lives in the substrate packages (rdma, sim, erasure,
// lz4, layout, racehash).
package core

import (
	"fmt"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
)

// CPURates calibrates how much memory-node CPU time background kernels
// consume in the simulated cost model (bytes per second). The defaults
// follow Table 2's measured kernel throughputs and typical single-core
// memcpy/LZ4 rates.
type CPURates struct {
	Memcpy     float64 // checkpoint snapshot copy
	Xor        float64 // XOR-code encode/decode kernel
	RS         float64 // Reed-Solomon encode/decode kernel
	Compress   float64 // LZ4 compression of checkpoint deltas
	Decompress float64 // LZ4 decompression
}

// DefaultCPURates returns the calibrated kernel rates (DESIGN.md §5).
func DefaultCPURates() CPURates {
	return CPURates{
		Memcpy:     10e9,
		Xor:        20.6e9, // Table 2 "Test Tpt" XOR
		RS:         12.6e9, // Table 2 "Test Tpt" RS
		Compress:   2e9,
		Decompress: 6e9,
	}
}

// codeRate returns the erasure kernel rate for the configured code.
func (r CPURates) codeRate(code string) float64 {
	if code == "rs" {
		return r.RS
	}
	return r.Xor
}

// Config parameterises an Aceso coding group.
type Config struct {
	// Layout fixes the group geometry and per-MN memory layout.
	Layout layout.Config
	// FTMode selects the fault-tolerance mode: "aceso" (the default,
	// also chosen by ""), "fusee-replication" or "swarm-inplace". All
	// modes share this Config; replication modes derive their own
	// geometry from Layout (see their configFromCore).
	FTMode string
	// Replicas is the replication factor used by replication-based
	// modes (index replicas and KV copies alike); 0 means 3, the
	// paper's baseline. The aceso mode ignores it — its redundancy
	// comes from Layout.ParityShards.
	Replicas int
	// Code selects the erasure code: "xor" (default, the paper's
	// choice) or "rs" (the Table 2 comparator).
	Code string
	// CkptInterval is the index checkpointing period (paper default
	// 500 ms).
	CkptInterval time.Duration
	// CacheSlotAddr enables caching index-slot addresses alongside
	// values in the client cache (§3.5.1); disabling it reproduces the
	// "+CKPT" configuration of the factor analysis (Figure 13).
	CacheSlotAddr bool
	// CacheEntries bounds the client index cache: each client keeps at
	// most this many entries (positive slot-address entries and
	// negative "key absent" entries alike) in a sharded CLOCK cache.
	// 0 means the 16384-entry default; <0 disables the cache entirely
	// (the bench "cache off" configuration).
	CacheEntries int
	// CacheNegative enables negative caching: a SEARCH miss records
	// "absent as of bucket versions (v1,v2)" and later misses of the
	// same key revalidate with two 8-byte version-word reads instead
	// of two 128-byte bucket reads. Off by default — the paper's verb
	// cost model (§4.2, Figure 1(a)) has no version reads on the miss
	// path, and the verbs experiment pins that model; read-heavy
	// deployments turn it on (see DESIGN.md §12).
	CacheNegative bool
	// CacheValues extends positive cache entries with a copy of the
	// committed value, served under a single 8-byte slot-word
	// validation read: every mutation of a pair — update, delete,
	// reclamation move — CASes its slot Atomic word, so an unchanged
	// word proves the cached bytes are the committed pair. Hits cost 1
	// verb / 1 RTT instead of the §3.5.1 {KV, slot} pair. Off by
	// default for the same reason as CacheNegative: the verbs
	// experiment pins the paper's two-read hit cost.
	CacheValues bool
	// FusedCommit fuses the commit CAS into the placement doorbell
	// batch on fabrics that honour the rdma.OrderedBatcher contract:
	// a steady-state UPDATE/DELETE of a located slot issues {KV write,
	// delta writes, slot CAS} as one ordered batch — one round trip
	// instead of two dependent ones. Inserts, Meta-locked slots and
	// epoch rollovers keep the two-phase shape, and fabrics without
	// the capability fall back automatically (DESIGN.md §13). On by
	// default; the verbs experiment disables it to pin the paper's
	// two-RTT write cost model.
	FusedCommit bool
	// BlockPrefetch moves DATA/DELTA block provisioning off the write
	// hot path: a per-client background worker pre-runs
	// AllocBlock/AllocDelta when an open block drops below its
	// low-water mark and absorbs block seals and free-bitmap flushes,
	// so no UPDATE stalls on an RPC. On by default.
	BlockPrefetch bool
	// OffloadBuckets bounds the client's hot-bucket mirror: access
	// counters promote up to this many index buckets into CN-resident
	// copies revalidated by one 8-byte bucket-version read, making hot
	// GETs ~1 RTT (Outback-style). 0 disables offloading.
	OffloadBuckets int
	// ReclaimObsolete is the obsolete-KV fraction above which a DATA
	// block becomes a reclamation candidate (paper default 0.75).
	ReclaimObsolete float64
	// ReclaimFree is the free-space fraction below which reclamation
	// kicks in (paper default 0.25).
	ReclaimFree float64
	// BitmapFlushOps is how many obsolete-markings a client batches
	// before flushing free-bitmap updates to the servers.
	BitmapFlushOps int
	// EncodePoll is the MN encoder/applier daemon poll period.
	EncodePoll time.Duration
	// LockRetry and LockTimeout govern Meta-lock contention handling
	// (§3.2.2 remarks: retry, then force-relock after a timeout).
	LockRetry   time.Duration
	LockTimeout time.Duration
	// MetaSyncInterval is the period of the asynchronous Meta Area
	// replication daemon.
	MetaSyncInterval time.Duration
	// ChunkBytes is the transfer granularity for bulk RDMA writes
	// (checkpoint deltas, recovery reads), so they interleave with
	// foreground traffic instead of head-of-line blocking the NIC.
	ChunkBytes int
	// RecoveryPipeline enables the two-stage recovery pipeline
	// (§3.4.1 remark 1: overlap stripe fetches with decoding).
	// Disabling it is an ablation knob.
	RecoveryPipeline bool
	// CkptRaw disables differential checkpointing: every round ships
	// the full, uncompressed index snapshot (the strawman of Figure
	// 1(b)). Ablation knob; recovery still works because the hosted
	// copy is overwritten wholesale.
	CkptRaw bool
	// RecoveryHelpers distributes tier-3 block decoding across this
	// many helper compute nodes (the paper's future-work extension,
	// modelled on RAMCloud's distributed recovery): each helper
	// fetches stripe survivors, decodes on its own CPU and writes the
	// rebuilt block to the replacement MN. 0 keeps all decoding on the
	// replacement node.
	RecoveryHelpers int
	// CkptWorkers sizes the checkpoint compression worker pool: that
	// many extra MN cores XOR+compress dirty segments concurrently
	// each round. 0 keeps all segment processing inline on the
	// checkpoint-send core (the pre-segmentation behaviour).
	CkptWorkers int
	// ECWorkers sizes the erasure worker pool: that many extra MN
	// cores run banded encode/reconstruct kernels concurrently, so
	// delta reclamation and recovery decode overlap across cores. 0
	// keeps all erasure compute inline on the erasure core (the
	// pre-parallel behaviour).
	ECWorkers int
	// TraceSample is the op-span sampling rate: one in TraceSample
	// client ops records a full span tree (rounded to a power of two;
	// default 64). <0 disables op tracing entirely.
	TraceSample int
	// TraceSpans bounds the span ring: the newest TraceSpans spans are
	// retained (rounded to a power of two; default 4096).
	TraceSpans int
	// DeltaCopies is how many of the stripe's parity MNs receive each
	// KV's delta write. 0 (the default) means all ParityShards, which
	// keeps unsealed data recoverable at the full two-failure bound;
	// 1 reproduces the paper's single-DELTA-block prose (an ablation
	// that trades one write per KV against protection of unsealed
	// blocks).
	DeltaCopies int
	// Rates calibrates simulated CPU kernel costs.
	Rates CPURates
}

// DefaultConfig returns a scaled-down version of the paper's setup
// (§4.1): a 5-MN coding group (3 data + 2 parity per stripe), 500 ms
// checkpoint interval, XOR code, 2 MB blocks.
func DefaultConfig() Config {
	return Config{
		Layout: layout.Config{
			NumMNs:       5,
			ParityShards: 2,
			IndexBytes:   1 << 21, // 2 MB index per MN (scaled from 256 MB)
			BlockSize:    2 << 20, // 2 MB blocks (paper default)
			StripeRows:   24,
			PoolBlocks:   16,
			CkptHosts:    1,
			MetaReplicas: 2,
			CkptSegments: 64,
		},
		Code:             "xor",
		CkptInterval:     500 * time.Millisecond,
		CacheSlotAddr:    true,
		FusedCommit:      true,
		BlockPrefetch:    true,
		ReclaimObsolete:  0.75,
		ReclaimFree:      0.25,
		BitmapFlushOps:   64,
		EncodePoll:       50 * time.Microsecond,
		LockRetry:        5 * time.Microsecond,
		LockTimeout:      500 * time.Microsecond,
		MetaSyncInterval: 200 * time.Microsecond,
		ChunkBytes:       64 << 10,
		RecoveryPipeline: true,
		CkptWorkers:      2,
		ECWorkers:        2,
		Rates:            DefaultCPURates(),
	}
}

// FTModeName resolves the effective fault-tolerance mode name ("" =
// FTModeAceso).
func (c *Config) FTModeName() string {
	if c.FTMode == "" {
		return FTModeAceso
	}
	return c.FTMode
}

// ReplicaCount resolves the effective replication factor for
// replication-based modes (0 = 3, the paper's baseline).
func (c *Config) ReplicaCount() int {
	if c.Replicas <= 0 {
		return 3
	}
	return c.Replicas
}

// newCode instantiates the configured erasure code for k data shards.
func (c *Config) newCode() (erasure.Code, error) {
	k := c.Layout.K()
	switch c.Code {
	case "", "xor":
		return erasure.NewXor(k)
	case "rs":
		return erasure.NewRS(k, c.Layout.ParityShards)
	default:
		return nil, fmt.Errorf("core: unknown erasure code %q", c.Code)
	}
}

// cacheEntries resolves the effective client cache bound: the default
// when unset, 0 when disabled.
func (c *Config) cacheEntries() int {
	if c.CacheEntries < 0 {
		return 0
	}
	if c.CacheEntries == 0 {
		return 16384
	}
	return c.CacheEntries
}

// offloadBuckets resolves the effective hot-bucket mirror bound.
func (c *Config) offloadBuckets() int {
	if c.OffloadBuckets <= 0 {
		return 0
	}
	return c.OffloadBuckets
}

// ckptWorkers resolves the effective checkpoint worker-pool size.
func (c *Config) ckptWorkers() int {
	if c.CkptWorkers <= 0 {
		return 0
	}
	return c.CkptWorkers
}

// ecWorkers resolves the effective erasure worker-pool size.
func (c *Config) ecWorkers() int {
	if c.ECWorkers <= 0 {
		return 0
	}
	return c.ECWorkers
}

// traceSample resolves the effective 1-in-N op sampling rate (0 =
// tracing disabled).
func (c *Config) traceSample() int {
	if c.TraceSample < 0 {
		return 0
	}
	if c.TraceSample == 0 {
		return 64
	}
	return c.TraceSample
}

// traceSpans resolves the span-ring capacity.
func (c *Config) traceSpans() int {
	if c.TraceSpans <= 0 {
		return 4096
	}
	return c.TraceSpans
}

// deltaCopies resolves the effective per-KV delta fan-out.
func (c *Config) deltaCopies() int {
	if c.DeltaCopies <= 0 || c.DeltaCopies > c.Layout.ParityShards {
		return c.Layout.ParityShards
	}
	return c.DeltaCopies
}

// cpuTime converts a byte count processed at rate bytes/sec into CPU
// time.
func cpuTime(bytes int, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * 1e9)
}
