package core

import (
	"bytes"

	"repro/internal/layout"
	"repro/internal/obs"
)

// clientCache is the bounded CN-side index cache behind the client's
// read and write paths (§3.5.1, DESIGN.md §12). It replaces the
// original unbounded map[string]*cacheEnt: entries live in
// fixed-capacity power-of-2 shards keyed by the racehash the client
// already computes per op, an open-addressed table indexes them
// without per-entry allocation, and a CLOCK hand provides
// scan-resistant eviction. Steady-state hits and replacements touch no
// allocator — entry structs are array slots and evicted keys keep
// their byte capacity for the next occupant — so a cached GET stays at
// 0 allocs/op (TestCachedGetZeroAlloc pins this).
//
// A client is single-threaded (one per process/coroutine, like the
// paper's clients), so the cache needs no locking.
type clientCache struct {
	shards    []cacheShard
	shardMask uint64
	// bytes is the cache's resident footprint: the fixed per-entry
	// overhead for every allocated slot plus the retained key
	// capacity (recycled slots keep their key storage for reuse, so
	// it stays counted).
	bytes     uint64
	evictions uint64
	met       *obs.CacheMetrics // shared live-export aggregate; may be nil
}

// Entry flag bits.
const (
	entRef  uint8 = 1 << iota // CLOCK reference bit
	entNeg                    // negative entry: key absent as of (negV1, negV2)
	entTomb                   // positive entry whose committed pair is a tombstone
	entLive                   // slot holds a live entry (rebuild scans on this)
	entVal                    // val holds the committed value bytes (Config.CacheValues)
	// entMissed marks a miss candidate: the key missed cleanly but no
	// version snapshot was taken (the first miss query stays at the
	// paper's verb count). The next query for the key piggybacks the
	// two version words and upgrades the entry to a validated negative.
	entMissed
)

// cacheEntryOverhead approximates one entry's fixed cost (struct slot
// plus two table words) for the aceso_cache_bytes gauge.
const cacheEntryOverhead = 96

// cacheEnt is one cached conclusion about a key: either "its committed
// pair lives at this slot/address" (positive, validated by re-reading
// the slot Atomic word) or "it is absent as of these bucket versions"
// (negative, validated by re-reading the two 8-byte version words).
type cacheEnt struct {
	hash  uint64
	key   []byte // owned copy; capacity is recycled across evictions
	val   []byte // committed value copy under entVal; capacity recycled
	flags uint8

	// Positive state (§3.5.1).
	mn      int
	slotOff uint64 // offset of the slot's Atomic word in mn's index
	atomic  uint64 // cached Atomic word
	meta    layout.SlotMeta

	// Negative state: the candidate buckets' version words at
	// population time, and the view epoch they were read under (a
	// rebuilt MN restarts its counters, so entries from an older
	// membership epoch are never trusted).
	negV1, negV2 uint64
	epoch        uint64
}

func (e *cacheEnt) neg() bool  { return e.flags&entNeg != 0 }
func (e *cacheEnt) tomb() bool { return e.flags&entTomb != 0 }

// pos reports whether the entry holds positive slot-location state.
// Negative entries and miss candidates carry no slot address — their
// positive fields are zero or left over from a recycled occupant.
func (e *cacheEnt) pos() bool { return e.flags&(entNeg|entMissed) == 0 }

// cacheShard is one fixed-capacity segment: ents is the entry arena,
// table the open-addressed index into it (idx+1; 0 empty, -1
// tombstone), free the recycled-slot stack and hand the CLOCK cursor.
type cacheShard struct {
	ents  []cacheEnt
	table []int32
	tmask uint64
	free  []int32
	dead  int // table tombstones; triggers a rebuild when they pile up
	hand  int
}

// newClientCache sizes the cache for a total entry budget. Shard count
// scales with the budget (1..64, power of two) and per-shard capacity
// is the budget split across shards, so the hard bound is
// shards*ceil(entries/shards) — within one shard's worth of the
// configured value. Returns nil for entries <= 0 (cache disabled).
func newClientCache(entries int) *clientCache {
	if entries <= 0 {
		return nil
	}
	shards := 1
	for shards < 64 && entries/(shards*2) >= 256 {
		shards *= 2
	}
	per := (entries + shards - 1) / shards
	tsize := 4
	for tsize < 2*per {
		tsize *= 2
	}
	cc := &clientCache{
		shards:    make([]cacheShard, shards),
		shardMask: uint64(shards - 1),
	}
	for i := range cc.shards {
		s := &cc.shards[i]
		s.ents = make([]cacheEnt, per)
		s.table = make([]int32, tsize)
		s.tmask = uint64(tsize - 1)
		s.free = make([]int32, per)
		for j := range s.free {
			s.free[j] = int32(per - 1 - j)
		}
	}
	cc.bytes = uint64(shards*per) * cacheEntryOverhead
	return cc
}

// Cap returns the hard entry bound.
func (cc *clientCache) Cap() int {
	if cc == nil {
		return 0
	}
	return len(cc.shards) * len(cc.shards[0].ents)
}

// Len returns the live entry count.
func (cc *clientCache) Len() int {
	if cc == nil {
		return 0
	}
	n := 0
	for i := range cc.shards {
		s := &cc.shards[i]
		n += len(s.ents) - len(s.free)
	}
	return n
}

// Bytes returns the resident footprint estimate.
func (cc *clientCache) Bytes() uint64 {
	if cc == nil {
		return 0
	}
	return cc.bytes
}

// Evictions returns the CLOCK eviction count.
func (cc *clientCache) Evictions() uint64 {
	if cc == nil {
		return 0
	}
	return cc.evictions
}

// shard picks the key's shard from hash bits the index geometry does
// not consume (buckets use the low bits, the fingerprint bits 40-47,
// the home MN the top bits).
func (cc *clientCache) shard(h uint64) *cacheShard {
	return &cc.shards[(h>>33)&cc.shardMask]
}

// lookup returns the key's entry or nil, marking it recently used.
func (cc *clientCache) lookup(h uint64, key []byte) *cacheEnt {
	if cc == nil {
		return nil
	}
	s := cc.shard(h)
	idx := s.find(h, key)
	if idx < 0 {
		return nil
	}
	e := &s.ents[idx]
	e.flags |= entRef
	return e
}

// upsert returns the key's entry, creating (and, at capacity, evicting
// with CLOCK) as needed. A fresh entry has only hash/key/flags set —
// the caller fills the positive or negative state. The returned
// pointer is valid until the next cache mutation.
func (cc *clientCache) upsert(h uint64, key []byte) *cacheEnt {
	if cc == nil {
		return nil
	}
	s := cc.shard(h)
	if idx := s.find(h, key); idx >= 0 {
		e := &s.ents[idx]
		e.flags |= entRef
		return e
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		if cc.met != nil {
			cc.met.Entries.Add(1)
		}
	} else {
		idx = s.evict(cc)
	}
	e := &s.ents[idx]
	oldCap := cap(e.key)
	e.key = append(e.key[:0], key...)
	if c := cap(e.key); c > oldCap {
		cc.bytes += uint64(c - oldCap)
		if cc.met != nil {
			cc.met.Bytes.Add(int64(c - oldCap))
		}
	}
	e.hash = h
	e.flags = entRef | entLive
	s.insertTable(h, idx)
	if s.dead > len(s.ents)/2 {
		s.rebuild()
	}
	return e
}

// storeVal retains a copy of the entry's committed value so later hits
// can be served under a single slot-word validation read
// (Config.CacheValues). Capacity is recycled across occupants; only
// growth is charged to the footprint gauge.
func (cc *clientCache) storeVal(e *cacheEnt, val []byte) {
	oldCap := cap(e.val)
	e.val = append(e.val[:0], val...)
	if c := cap(e.val); c > oldCap {
		cc.bytes += uint64(c - oldCap)
		if cc.met != nil {
			cc.met.Bytes.Add(int64(c - oldCap))
		}
	}
	e.flags |= entVal
}

// remove drops the key's entry if present.
func (cc *clientCache) remove(h uint64, key []byte) {
	if cc == nil {
		return
	}
	s := cc.shard(h)
	i := h & s.tmask
	for {
		v := s.table[i]
		if v == 0 {
			return
		}
		if v > 0 {
			e := &s.ents[v-1]
			if e.hash == h && bytes.Equal(e.key, key) {
				s.table[i] = -1
				s.dead++
				e.flags = 0
				s.free = append(s.free, v-1)
				if cc.met != nil {
					cc.met.Entries.Add(-1)
				}
				return
			}
		}
		i = (i + 1) & s.tmask
	}
}

// find probes for the key; -1 when absent.
func (s *cacheShard) find(h uint64, key []byte) int32 {
	i := h & s.tmask
	for {
		v := s.table[i]
		if v == 0 {
			return -1
		}
		if v > 0 {
			e := &s.ents[v-1]
			if e.hash == h && bytes.Equal(e.key, key) {
				return v - 1
			}
		}
		i = (i + 1) & s.tmask
	}
}

// insertTable places idx into the probe sequence, reusing the first
// tombstone encountered.
func (s *cacheShard) insertTable(h uint64, idx int32) {
	i := h & s.tmask
	firstDead := int64(-1)
	for {
		v := s.table[i]
		if v == 0 {
			if firstDead >= 0 {
				s.table[firstDead] = idx + 1
				s.dead--
			} else {
				s.table[i] = idx + 1
			}
			return
		}
		if v < 0 && firstDead < 0 {
			firstDead = int64(i)
		}
		i = (i + 1) & s.tmask
	}
}

// evict runs the CLOCK hand: clear reference bits until an unreferenced
// entry is found, unlink it from the table and hand its slot back.
func (s *cacheShard) evict(cc *clientCache) int32 {
	for {
		e := &s.ents[s.hand]
		idx := int32(s.hand)
		s.hand++
		if s.hand == len(s.ents) {
			s.hand = 0
		}
		if e.flags&entRef != 0 {
			e.flags &^= entRef
			continue
		}
		s.unlink(e.hash, idx)
		cc.evictions++
		if cc.met != nil {
			cc.met.Evictions.Add(1)
		}
		return idx
	}
}

// unlink marks the table slot holding idx as a tombstone.
func (s *cacheShard) unlink(h uint64, idx int32) {
	i := h & s.tmask
	for {
		if s.table[i] == idx+1 {
			s.table[i] = -1
			s.dead++
			return
		}
		i = (i + 1) & s.tmask
	}
}

// release returns the cache's gauge contributions (client close) and
// detaches the metrics sink so a second release is a no-op.
func (cc *clientCache) release() {
	if cc == nil || cc.met == nil {
		return
	}
	cc.met.Entries.Add(-int64(cc.Len()))
	cc.met.Bytes.Add(-int64(cc.bytes))
	cc.met = nil
}

// rebuild reinserts every live entry, clearing accumulated tombstones
// (which otherwise degrade probe lengths). Allocation-free: it reuses
// the existing table.
func (s *cacheShard) rebuild() {
	for i := range s.table {
		s.table[i] = 0
	}
	s.dead = 0
	for i := range s.ents {
		if s.ents[i].flags&entLive != 0 {
			s.insertTable(s.ents[i].hash, int32(i))
		}
	}
}
