package core

import (
	"sync"
	"time"

	"repro/internal/rdma"
)

// blockPrefetcher is the shared state between a client and its
// background block-provisioning worker (Config.BlockPrefetch,
// DESIGN.md §13). The client requests refills as an open block drains
// below its low-water mark; the worker pre-runs the AllocBlock and
// AllocDelta RPCs (and, for reclaimed blocks, the whole-block
// readback) so block turnover costs the client's critical path one
// mutex exchange instead of several RPC round trips. The worker also
// absorbs deferred post-commit work: block seals and free-bitmap
// flush RPCs.
//
// The client owns all KV state; the worker only ever touches this
// struct (under mu) and the fabric. Handoff of an *openBlock through
// ready transfers ownership wholesale — the worker never retains a
// reference after the client takes it, and vice versa for seal.
type blockPrefetcher struct {
	mu    sync.Mutex
	ready map[uint8]*openBlock // provisioned, awaiting adoption, per class
	want  map[uint8]bool       // classes with a refill outstanding
	seal  []*openBlock         // filled blocks awaiting seal RPCs
	flush []flushJob           // encoded free-bitmap payloads awaiting RPC
	// bufFree recycles flush payload buffers so steady-state flushes
	// allocate nothing.
	bufFree [][]byte
	stopped bool
}

// flushJob is one encoded methodFreeBits payload bound for node.
type flushJob struct {
	node    rdma.NodeID
	payload []byte
}

func newBlockPrefetcher() *blockPrefetcher {
	return &blockPrefetcher{
		ready: make(map[uint8]*openBlock),
		want:  make(map[uint8]bool),
	}
}

// requestRefill asks the worker to pre-provision a block of class
// (idempotent; a ready block suppresses the request).
func (pf *blockPrefetcher) requestRefill(class uint8) {
	pf.mu.Lock()
	if !pf.stopped && pf.ready[class] == nil {
		pf.want[class] = true
	}
	pf.mu.Unlock()
}

// takeReady pops the pre-provisioned block for class, if any.
func (pf *blockPrefetcher) takeReady(class uint8) *openBlock {
	pf.mu.Lock()
	ob := pf.ready[class]
	if ob != nil {
		delete(pf.ready, class)
	}
	pf.mu.Unlock()
	return ob
}

// enqueueSeal hands filled blocks to the worker for sealing. It
// reports false once the worker is stopped (the caller seals inline).
func (pf *blockPrefetcher) enqueueSeal(obs []*openBlock) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.stopped {
		return false
	}
	pf.seal = append(pf.seal, obs...)
	return true
}

// enqueueFlush hands one encoded free-bitmap payload to the worker.
// It reports false once the worker is stopped.
func (pf *blockPrefetcher) enqueueFlush(fj flushJob) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.stopped {
		return false
	}
	pf.flush = append(pf.flush, fj)
	return true
}

// getBuf takes a recycled flush payload buffer (nil is fine: the
// encoder allocates once and the buffer joins the pool afterwards).
func (pf *blockPrefetcher) getBuf() []byte {
	pf.mu.Lock()
	var b []byte
	if n := len(pf.bufFree); n > 0 {
		b, pf.bufFree = pf.bufFree[n-1], pf.bufFree[:n-1]
	}
	pf.mu.Unlock()
	return b
}

// putBuf returns a flush payload buffer to the pool (bounded).
func (pf *blockPrefetcher) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	pf.mu.Lock()
	if len(pf.bufFree) < 8 {
		pf.bufFree = append(pf.bufFree, b[:0])
	}
	pf.mu.Unlock()
}

// stop shuts the worker down and returns whatever work it had queued,
// for the caller to drain inline.
func (pf *blockPrefetcher) stop() (seals []*openBlock, flushes []flushJob) {
	pf.mu.Lock()
	pf.stopped = true
	seals, pf.seal = pf.seal, nil
	flushes, pf.flush = pf.flush, nil
	pf.mu.Unlock()
	return seals, flushes
}

// prefetchLoop is the background worker process spawned next to the
// client at Attach. Work priority: seals first (they unblock parity
// encoding), then bitmap flushes, then provisioning. The worker keeps
// its own allocation-rotation cursor and never touches c.Stats or the
// client's open-block state — provisioned blocks cross over only
// through pf.ready.
func (c *Client) prefetchLoop(ctx rdma.Ctx) {
	pf := c.pf
	seq := int(c.id)
	for {
		pf.mu.Lock()
		if pf.stopped {
			pf.mu.Unlock()
			return
		}
		var ob *openBlock
		if len(pf.seal) > 0 {
			ob = pf.seal[0]
			copy(pf.seal, pf.seal[1:])
			pf.seal = pf.seal[:len(pf.seal)-1]
		}
		var fj flushJob
		haveFlush := false
		if ob == nil && len(pf.flush) > 0 {
			fj = pf.flush[0]
			copy(pf.flush, pf.flush[1:])
			pf.flush = pf.flush[:len(pf.flush)-1]
			haveFlush = true
		}
		class, haveClass := uint8(0), false
		if ob == nil && !haveFlush && len(pf.want) > 0 {
			// Lowest class first: deterministic on the sim engine.
			for cl := 0; cl < 256; cl++ {
				if pf.want[uint8(cl)] {
					class, haveClass = uint8(cl), true
					break
				}
			}
		}
		pf.mu.Unlock()

		switch {
		case ob != nil:
			c.sealBlockCtx(ctx, ob)
		case haveFlush:
			ctx.RPC(fj.node, methodFreeBits, fj.payload) //nolint:errcheck // obsolete hints are advisory
			pf.putBuf(fj.payload)
		case haveClass:
			nb, err := c.provisionBlock(ctx, class, &seq, nil)
			pf.mu.Lock()
			if pf.stopped {
				pf.mu.Unlock()
				return
			}
			delete(pf.want, class)
			if err == nil && pf.ready[class] == nil {
				pf.ready[class] = nb
			}
			// err != nil (pool exhausted / all MNs down): drop the
			// request — the client's synchronous path reports the
			// condition itself.
			pf.mu.Unlock()
		default:
			ctx.Sleep(100 * time.Microsecond)
			continue
		}
		ctx.Sleep(5 * time.Microsecond)
	}
}
