package core

// Tests for the segment-parallel differential checkpoint pipeline
// (ckpt.go): framer/applier unit tests against the frame format,
// dirty-bitmap tracking under concurrent writers, torn-round
// detection, the worker pool under the race detector, and the
// steady-state zero-allocation guarantee.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/lz4"
)

// ckptTestLayout builds a standalone layout with the given segment
// count for framer/applier tests that need no cluster.
func ckptTestLayout(t testing.TB, segs int) *layout.Layout {
	t.Helper()
	cfg := testConfig()
	cfg.Layout.CkptSegments = segs
	l, err := layout.NewLayout(cfg.Layout)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// ckptBuildFrame drives one framer round over jobs (strictly ascending
// segments) and returns the serialised frame, exactly as the
// scatter/gather ship would land it in a staging area.
func ckptBuildFrame(fr *ckptFramer, mem []byte, round, seq uint64, jobs []ckptSegJob) []byte {
	fr.jobs = append(fr.jobs[:0], jobs...)
	fr.round, fr.seq = round, seq
	fr.snapshot(mem)
	for i := range fr.jobs {
		fr.processSeg(i)
	}
	n := fr.finishRound()
	frame := make([]byte, n)
	fr.writeTo(frame)
	return frame
}

// TestCkptFramerFullImageEquivalence: with CkptSegments=1 the framer's
// single payload must be byte-for-byte what the old full-image
// pipeline produced (snapshot → XOR with last round → LZ4), so the
// segs=1 configuration is a faithful ablation baseline.
func TestCkptFramerFullImageEquivalence(t *testing.T) {
	l := ckptTestLayout(t, 1)
	if l.CkptSegCount() != 1 {
		t.Fatalf("CkptSegCount() = %d, want 1", l.CkptSegCount())
	}
	fr := newCkptFramer(l, testConfig().Rates, false)
	ib := int(l.Cfg.IndexBytes)
	mem := make([]byte, ib)
	last := make([]byte, ib) // the reference pipeline's own last snapshot
	delta := make([]byte, ib)
	rng := rand.New(rand.NewSource(42))
	for round := uint64(1); round <= 4; round++ {
		for k := 0; k < 300; k++ {
			mem[rng.Intn(ib)] = byte(rng.Int())
		}
		frame := ckptBuildFrame(fr, mem, round, round, []ckptSegJob{{seg: 0}})
		copy(delta, mem)
		erasure.XorInto(delta, last)
		want := lz4.Compress(nil, delta)
		payload := frame[layout.CkptFrameHeaderSize+layout.CkptFrameRecordSize:]
		if !bytes.Equal(payload, want) {
			t.Fatalf("round %d: segs=1 payload differs from full-image pipeline (%d vs %d bytes)",
				round, len(payload), len(want))
		}
		copy(last, mem)
	}
}

// TestCkptApplierRoundTrip ships several differential rounds with
// varying dirty sets through framer + applier and checks the hosted
// copy tracks the owner's image exactly.
func TestCkptApplierRoundTrip(t *testing.T) {
	l := ckptTestLayout(t, 8)
	segs := l.CkptSegCount()
	fr := newCkptFramer(l, testConfig().Rates, false)
	ap := newCkptApplier(l)
	ib := int(l.Cfg.IndexBytes)
	mem := make([]byte, ib)
	hosted := make([]byte, ib)
	rng := rand.New(rand.NewSource(7))
	var lastSeq uint64
	for round := uint64(1); round <= 10; round++ {
		dirty := map[int]bool{int(round) % segs: true, int(3*round+1) % segs: true}
		var jobs []ckptSegJob
		for seg := range dirty {
			jobs = append(jobs, ckptSegJob{seg: seg})
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].seg < jobs[j].seg })
		for _, j := range jobs {
			off := int(l.CkptSegOff(j.seg))
			for k := 0; k < 50; k++ {
				mem[off+rng.Intn(int(l.CkptSegLen(j.seg)))] = byte(rng.Int())
			}
		}
		frame := ckptBuildFrame(fr, mem, round, round, jobs)
		seq, st, err := ap.apply(hosted, frame, round, lastSeq)
		if err != nil {
			t.Fatalf("round %d: apply: %v", round, err)
		}
		if seq != round {
			t.Fatalf("round %d: apply returned seq %d", round, seq)
		}
		if st.applied == 0 {
			t.Fatalf("round %d: apply reported no bytes applied", round)
		}
		if !bytes.Equal(hosted, mem) {
			t.Fatalf("round %d: hosted copy diverged from owner image", round)
		}
		lastSeq = seq
	}
}

// TestCkptApplierRejectsTornFrames covers every validation gate of the
// applier: a torn or corrupt staged frame must be rejected with the
// hosted copy untouched, differential frames must be rejected out of
// sequence, and all-raw frames must be accepted unconditionally.
func TestCkptApplierRejectsTornFrames(t *testing.T) {
	l := ckptTestLayout(t, 8)
	fr := newCkptFramer(l, testConfig().Rates, false)
	ib := int(l.Cfg.IndexBytes)
	mem := make([]byte, ib)
	rng := rand.New(rand.NewSource(11))
	jobs := []ckptSegJob{{seg: 1}, {seg: 3}, {seg: 4}}
	for _, j := range jobs {
		off := int(l.CkptSegOff(j.seg))
		for k := 0; k < 80; k++ {
			mem[off+rng.Intn(int(l.CkptSegLen(j.seg)))] = byte(rng.Int())
		}
	}
	const round, seq = 7, 3
	frame := ckptBuildFrame(fr, mem, round, seq, jobs)

	// tryApply runs one apply against a fresh zeroed hosted copy (which
	// matches the framer's zero reference) and reports whether the copy
	// was mutated.
	tryApply := func(f []byte, r, lastSeq uint64) (error, bool) {
		hosted := make([]byte, ib)
		_, _, err := newCkptApplier(l).apply(hosted, f, r, lastSeq)
		mutated := false
		for _, b := range hosted {
			if b != 0 {
				mutated = true
				break
			}
		}
		return err, mutated
	}

	if err, _ := tryApply(frame, round, seq-1); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(f []byte) []byte
		round   uint64
		lastSeq uint64
		wantErr error
	}{
		{"corrupt payload byte (CRC)", func(f []byte) []byte {
			f[len(f)-1] ^= 0xff
			return f
		}, round, seq - 1, errCkptFrame},
		{"corrupt record header (CRC)", func(f []byte) []byte {
			f[layout.CkptFrameHeaderSize+4] ^= 0xff
			return f
		}, round, seq - 1, errCkptFrame},
		{"bad magic", func(f []byte) []byte {
			f[0] ^= 0xff
			return f
		}, round, seq - 1, errCkptFrame},
		{"truncated frame", func(f []byte) []byte {
			return f[:len(f)-1]
		}, round, seq - 1, errCkptFrame},
		{"round mismatch", func(f []byte) []byte {
			return f
		}, round + 1, seq - 1, errCkptFrame},
		{"differential frame out of sequence", func(f []byte) []byte {
			return f
		}, round, seq - 2, errCkptSeq},
	}
	for _, tcase := range cases {
		f := tcase.mutate(append([]byte(nil), frame...))
		err, mutated := tryApply(f, tcase.round, tcase.lastSeq)
		if err != tcase.wantErr {
			t.Errorf("%s: err = %v, want %v", tcase.name, err, tcase.wantErr)
		}
		if mutated {
			t.Errorf("%s: rejected frame mutated the hosted copy", tcase.name)
		}
	}

	// All-raw frames overwrite, so they are accepted at any sequence:
	// that is how a host with an arbitrarily stale copy resyncs.
	frRaw := newCkptFramer(l, testConfig().Rates, false)
	rawFrame := ckptBuildFrame(frRaw, mem, round, 99,
		[]ckptSegJob{{seg: 1, raw: true}, {seg: 4, raw: true}})
	hosted := make([]byte, ib)
	seqGot, _, err := newCkptApplier(l).apply(hosted, rawFrame, round, 0)
	if err != nil || seqGot != 99 {
		t.Fatalf("all-raw frame out of sequence: seq=%d err=%v", seqGot, err)
	}
	for _, seg := range []int{1, 4} {
		off := l.CkptSegOff(seg)
		end := off + l.CkptSegLen(seg)
		if !bytes.Equal(hosted[off:end], mem[off:end]) {
			t.Fatalf("raw record for segment %d did not overwrite the hosted copy", seg)
		}
	}

	// The CkptRaw ablation ships uncompressed raw payloads; same result.
	frAbl := newCkptFramer(l, testConfig().Rates, true)
	ablFrame := ckptBuildFrame(frAbl, mem, round, 5, []ckptSegJob{{seg: 3, raw: true}})
	hosted2 := make([]byte, ib)
	if _, _, err := newCkptApplier(l).apply(hosted2, ablFrame, round, 0); err != nil {
		t.Fatalf("uncompressed raw frame rejected: %v", err)
	}
	off, end := l.CkptSegOff(3), l.CkptSegOff(3)+l.CkptSegLen(3)
	if !bytes.Equal(hosted2[off:end], mem[off:end]) {
		t.Fatal("uncompressed raw record did not overwrite the hosted copy")
	}
}

// TestCkptObserveIndexWrite checks the fabric write observer marks
// exactly the segments a mutation touches, including spans, clamping
// at the index end, and writes outside the index area — and that
// concurrent marking from many goroutines (as tcpnet's executors do)
// loses no bits.
func TestCkptObserveIndexWrite(t *testing.T) {
	l := ckptTestLayout(t, 16)
	segs := l.CkptSegCount()
	s := &Server{cl: &Cluster{L: l}}
	s.ckptDirty = make([]atomic.Uint64, (segs+63)/64)
	drain := func() []uint64 {
		out := make([]uint64, len(s.ckptDirty))
		for w := range s.ckptDirty {
			out[w] = s.ckptDirty[w].Swap(0)
		}
		return out
	}
	segSize := l.CkptSegSize()

	s.observeIndexWrite(0, 8)
	s.observeIndexWrite(segSize-4, 8) // spans segments 0 and 1
	s.observeIndexWrite(l.Cfg.IndexBytes-1, 100)
	s.observeIndexWrite(l.Cfg.IndexBytes, 8) // version word: outside the image
	s.observeIndexWrite(l.Cfg.IndexBytes+100, 8)
	s.observeIndexWrite(3*segSize, 0) // empty write
	got := drain()
	want := make([]uint64, len(got))
	for _, seg := range []int{0, 1, segs - 1} {
		want[seg>>6] |= uint64(1) << (seg & 63)
	}
	if got[0] != want[0] {
		t.Fatalf("dirty bitmap = %b, want %b", got[0], want[0])
	}

	// Concurrent writers over every segment: the CAS loop must not drop
	// marks (run under -race this also proves the observer is safe on
	// fabric executor goroutines).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seg := g; seg < segs; seg += 8 {
				for k := 0; k < 100; k++ {
					s.observeIndexWrite(l.CkptSegOff(seg), 1)
				}
			}
		}()
	}
	wg.Wait()
	if n := ckptPopCount(drain()); n != segs {
		t.Fatalf("concurrent marking left %d/%d segments dirty", n, segs)
	}
}

// TestCkptSegmentedConvergence runs the full segmented pipeline with a
// worker pool on the simulated fabric under concurrent writers and
// checks every hosted copy converges to its owner's quiesced index —
// and that once writes narrow to one hot key, rounds ship only a few
// segments instead of the whole index.
func TestCkptSegmentedConvergence(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.Layout.CkptSegments = 16
		cfg.CkptWorkers = 2
	})
	l := tc.cl.L
	segs := l.CkptSegCount()

	fns := make([]func(*Client), 4)
	for w := 0; w < 4; w++ {
		w := w
		fns[w] = func(c *Client) {
			for i := 0; i < 30; i++ {
				if err := c.Insert(key(w*100+i), val(i, w)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
			for gen := 1; gen <= 3; gen++ {
				for i := 0; i < 30; i += 3 {
					if err := c.Update(key(w*100+i), val(i, gen)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}
		}
	}
	tc.runClients(t, 60*time.Second, fns...)
	tc.run(3 * tc.cl.Cfg.CkptInterval)

	checkConverged := func() {
		t.Helper()
		for mn := 0; mn < l.Cfg.NumMNs; mn++ {
			node, _ := tc.cl.view.nodeOf(mn)
			own := tc.pl.DirectMemory(node)
			for h := 0; h < l.Cfg.CkptHosts; h++ {
				host := l.CkptHostOf(mn, h)
				hnode, _ := tc.cl.view.nodeOf(host)
				hmem := tc.pl.DirectMemory(hnode)
				slot := l.CkptSlotFor(host, mn)
				hosted := hmem[l.CkptCopyOff(slot) : l.CkptCopyOff(slot)+l.Cfg.IndexBytes]
				if !bytes.Equal(hosted, own[:l.Cfg.IndexBytes]) {
					t.Fatalf("mn %d host %d: hosted copy does not match quiesced index", mn, host)
				}
				if binary.LittleEndian.Uint64(hmem[l.CkptVersionOff(slot):]) == 0 {
					t.Fatalf("mn %d host %d: hosted version never advanced", mn, host)
				}
			}
		}
	}
	checkConverged()

	sumStats := func() (st ServerStats) {
		for mn := 0; mn < l.Cfg.NumMNs; mn++ {
			s := tc.cl.Server(mn).Stats()
			st.CkptRounds += s.CkptRounds
			st.CkptSegsShipped += s.CkptSegsShipped
			st.CkptShipFailures += s.CkptShipFailures
		}
		return st
	}
	st0 := sumStats()
	if st0.CkptRounds == 0 || st0.CkptSegsShipped == 0 {
		t.Fatal("no checkpoint rounds shipped during the write phase")
	}
	if st0.CkptShipFailures != 0 {
		t.Fatalf("%d ship failures on a healthy fabric", st0.CkptShipFailures)
	}

	// Hot-key phase: updates to one key dirty only its bucket's segment
	// (plus the written KV block, which is outside the index), so the
	// rounds that follow must ship far fewer than all segments.
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for gen := 0; gen < 6; gen++ {
			if err := c.Update(key(3), val(3, gen)); err != nil {
				t.Errorf("hot update: %v", err)
				return
			}
		}
	})
	tc.run(3 * tc.cl.Cfg.CkptInterval)
	st1 := sumStats()
	rounds := st1.CkptRounds - st0.CkptRounds
	shipped := st1.CkptSegsShipped - st0.CkptSegsShipped
	if rounds == 0 {
		t.Fatal("hot-key phase shipped no rounds")
	}
	if shipped >= rounds*uint64(segs) {
		t.Fatalf("hot-key rounds shipped %d segments over %d rounds: dirty tracking never skipped a segment",
			shipped, rounds)
	}
	checkConverged()
	t.Logf("hot-key phase: %d rounds, %.1f segments/round (of %d)",
		rounds, float64(shipped)/float64(rounds), segs)
}

// TestCkptTornRoundRecovery injects a torn frame (garbage bytes in a
// host's staging area with a forged notify) and checks the hosted copy
// and its version word stay at the previous consistent round — and
// that recovery of the owner then lands exactly that round.
func TestCkptTornRoundRecovery(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.Layout.CkptSegments = 16
		cfg.CkptWorkers = 2
	})
	tc.cl.master.AddSpare()
	l := tc.cl.L
	const n = 120
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(3 * tc.cl.Cfg.CkptInterval) // quiesce: all rounds land

	const owner = 1
	host := l.CkptHostOf(owner, 0)
	hnode, _ := tc.cl.view.nodeOf(host)
	hmem := tc.pl.DirectMemory(hnode)
	slot := l.CkptSlotFor(host, owner)
	v0 := binary.LittleEndian.Uint64(hmem[l.CkptVersionOff(slot):])
	if v0 == 0 {
		t.Fatal("no checkpoint landed before the injection")
	}
	snap := append([]byte(nil),
		hmem[l.CkptCopyOff(slot):l.CkptCopyOff(slot)+l.Cfg.IndexBytes]...)
	hostSrv := tc.cl.Server(host)
	appliesBefore := hostSrv.Stats().CkptApplies

	// Torn frame: garbage in staging plus a notify claiming round v0+7.
	staging := hmem[l.CkptStagingOff(slot):]
	for i := 0; i < 256; i++ {
		staging[i] = 0xAB
	}
	var e enc
	e.u8(owner)
	e.u64(v0 + 7)
	e.u32(256)
	if resp, _ := hostSrv.handleApplyCkpt(e.b); resp[0] != stOK {
		t.Fatalf("forged notify rejected at enqueue: status %d", resp[0])
	}
	tc.run(2 * tc.cl.Cfg.CkptInterval) // recv core processes (and rejects) it

	if got := binary.LittleEndian.Uint64(hmem[l.CkptVersionOff(slot):]); got != v0 {
		t.Fatalf("version word moved to %d after a torn frame (was %d)", got, v0)
	}
	if !bytes.Equal(hmem[l.CkptCopyOff(slot):l.CkptCopyOff(slot)+l.Cfg.IndexBytes], snap) {
		t.Fatal("torn frame mutated the hosted copy")
	}
	if got := hostSrv.Stats().CkptApplies; got != appliesBefore {
		t.Fatalf("torn frame counted as applied (%d -> %d)", appliesBefore, got)
	}

	// Crash the owner: tier-2 recovery must fall back to the previous
	// consistent round and every committed pair must stay readable.
	tc.cl.FailMN(owner)
	for i := 0; i < 10000; i++ {
		tc.run(time.Millisecond)
		if _, _, blocksReady := tc.cl.MNState(owner); blocksReady {
			break
		}
	}
	if _, _, ready := tc.cl.MNState(owner); !ready {
		t.Fatal("owner never finished recovery")
	}
	if len(tc.cl.master.Reports) != 1 {
		t.Fatalf("got %d recovery reports", len(tc.cl.master.Reports))
	}
	if rep := tc.cl.master.Reports[0]; rep.CkptVersion != v0 {
		t.Fatalf("recovery used checkpoint version %d, want the previous consistent round %d",
			rep.CkptVersion, v0)
	}
	tc.verifyAll(t, expect)
}

// TestTCPNetCkptWorkerPoolStress hammers the segmented pipeline with a
// worker pool and short rounds on the real TCP transport: concurrent
// writers race the dirty bitmap, the pool and the shippers on real
// goroutines, so -race runs exercise every cross-goroutine handoff.
// Afterwards every hosted copy must converge to its owner's index.
func TestTCPNetCkptWorkerPoolStress(t *testing.T) {
	pl, cl := newTCPTestCluster(t, func(cfg *Config) {
		cfg.Layout.CkptSegments = 16
		cfg.CkptWorkers = 4
		cfg.CkptInterval = 5 * time.Millisecond
	})
	l := cl.L
	const writers, perWriter = 3, 20
	runTCPClient(t, pl, cl, func(c *Client) {
		for i := 0; i < writers*perWriter; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		cn := pl.AddComputeNode()
		cl.SpawnClient(cn, fmt.Sprintf("ckpt-stress-%d", w), func(c *Client) {
			defer wg.Done()
			for gen := 1; gen <= 10; gen++ {
				for i := w * perWriter; i < (w+1)*perWriter; i++ {
					if err := c.Update(key(i), val(i, gen)); err != nil {
						t.Errorf("update %d: %v", i, err)
						return
					}
				}
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress writers timed out")
	}

	// Quiesce, then wait for convergence: any frame a host missed keeps
	// its segments pending as raw resync debt, which forces further
	// rounds until the copy catches up.
	readRegion := func(mn int, off, n uint64) []byte {
		node, _ := cl.view.nodeOf(mn)
		mu := pl.MemMutex(node)
		mu.Lock()
		defer mu.Unlock()
		return append([]byte(nil), pl.Memory(node)[off:off+n]...)
	}
	deadline := time.Now().Add(15 * time.Second)
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		host := l.CkptHostOf(mn, 0)
		slot := l.CkptSlotFor(host, mn)
		for {
			own := readRegion(mn, 0, l.Cfg.IndexBytes)
			hosted := readRegion(host, l.CkptCopyOff(slot), l.Cfg.IndexBytes)
			if bytes.Equal(own, hosted) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mn %d: hosted copy on host %d never converged", mn, host)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var rounds, shipped uint64
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		st := cl.Server(mn).Stats()
		rounds += st.CkptRounds
		shipped += st.CkptSegsShipped
	}
	if rounds == 0 || shipped == 0 {
		t.Fatalf("pipeline shipped nothing under stress (rounds=%d segments=%d)", rounds, shipped)
	}
	t.Logf("tcpnet stress: %d rounds, %d segments shipped", rounds, shipped)
}

// ckptRoundHarness drives complete sender+receiver rounds outside any
// cluster: mutate → snapshot → process → frame → apply, reusing every
// buffer, for the zero-allocation test and benchmark.
type ckptRoundHarness struct {
	l       *layout.Layout
	fr      *ckptFramer
	ap      *ckptApplier
	mem     []byte
	hosted  []byte
	frame   []byte
	jobs    []ckptSegJob
	round   uint64
	lastSeq uint64
	err     error
}

func newCkptRoundHarness(t testing.TB, segs int, dirty []int) *ckptRoundHarness {
	t.Helper()
	l := ckptTestLayout(t, segs)
	h := &ckptRoundHarness{
		l:      l,
		fr:     newCkptFramer(l, testConfig().Rates, false),
		ap:     newCkptApplier(l),
		mem:    make([]byte, l.Cfg.IndexBytes),
		hosted: make([]byte, l.Cfg.IndexBytes),
		frame:  make([]byte, l.CkptStagingBytes()),
	}
	rng := rand.New(rand.NewSource(3))
	for i := range h.mem {
		h.mem[i] = byte(rng.Int())
	}
	for _, seg := range dirty {
		h.jobs = append(h.jobs, ckptSegJob{seg: seg})
	}
	return h
}

// doRound runs one full round over the fixed dirty set. Steady-state
// rounds must not allocate.
func (h *ckptRoundHarness) doRound() {
	h.round++
	for _, j := range h.jobs {
		h.mem[int(h.l.CkptSegOff(j.seg))+int(h.round%h.l.CkptSegLen(j.seg))]++
	}
	fr := h.fr
	fr.jobs = append(fr.jobs[:0], h.jobs...)
	fr.round, fr.seq = h.round, h.round
	fr.snapshot(h.mem)
	for i := range fr.jobs {
		fr.processSeg(i)
	}
	n := fr.finishRound()
	fr.writeTo(h.frame[:n])
	seq, _, err := h.ap.apply(h.hosted, h.frame[:n], h.round, h.lastSeq)
	if err != nil {
		h.err = err
		return
	}
	h.lastSeq = seq
}

// TestCkptRoundZeroAlloc asserts the steady-state round — sender and
// receiver combined — allocates nothing: all framer/applier buffers
// are reused across rounds.
func TestCkptRoundZeroAlloc(t *testing.T) {
	h := newCkptRoundHarness(t, 16, []int{2, 5, 9})
	h.doRound() // warm-up: lazy one-time state (CRC tables etc.)
	if h.err != nil {
		t.Fatal(h.err)
	}
	allocs := testing.AllocsPerRun(50, h.doRound)
	if h.err != nil {
		t.Fatal(h.err)
	}
	if allocs != 0 {
		t.Fatalf("steady-state checkpoint round allocates %.1f objects, want 0", allocs)
	}
}

// BenchmarkCkptRound measures one steady-state round (3 dirty segments
// of 16) end to end; -benchmem must report 0 allocs/op (CI asserts the
// zero-allocation property through this benchmark's output).
func BenchmarkCkptRound(b *testing.B) {
	dirty := []int{2, 5, 9}
	h := newCkptRoundHarness(b, 16, dirty)
	h.doRound()
	if h.err != nil {
		b.Fatal(h.err)
	}
	var bytesPerRound int64
	for _, seg := range dirty {
		bytesPerRound += int64(h.l.CkptSegLen(seg))
	}
	b.SetBytes(bytesPerRound)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.doRound()
	}
	if h.err != nil {
		b.Fatal(h.err)
	}
}
