package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/racehash"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
)

// testConfig returns a small, fast cluster configuration for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Layout.IndexBytes = 32 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 12
	cfg.Layout.PoolBlocks = 10
	cfg.CkptInterval = 20 * time.Millisecond
	cfg.BitmapFlushOps = 8
	return cfg
}

type testCluster struct {
	pl *simnet.Platform
	cl *Cluster
}

func newTestCluster(t *testing.T, mutate func(*Config)) *testCluster {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	cl.StartServers()
	cl.StartMaster()
	t.Cleanup(pl.Shutdown)
	return &testCluster{pl: pl, cl: cl}
}

// runClients spawns each fn as a client process and advances virtual
// time until all complete (or the virtual deadline passes).
func (tc *testCluster) runClients(t *testing.T, deadline time.Duration, fns ...func(*Client)) {
	t.Helper()
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := tc.pl.AddComputeNode()
		tc.cl.SpawnClient(cn, fmt.Sprintf("client%d", i), func(c *Client) {
			fn(c)
			done++
		})
	}
	limit := tc.pl.Engine().Now() + deadline
	for done < len(fns) && tc.pl.Engine().Now() < limit {
		tc.pl.Run(tc.pl.Engine().Now() + time.Millisecond)
	}
	if done < len(fns) {
		t.Fatalf("only %d/%d clients finished before virtual deadline", done, len(fns))
	}
}

// run advances virtual time by d.
func (tc *testCluster) run(d time.Duration) {
	tc.pl.Run(tc.pl.Engine().Now() + d)
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i, gen int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("v%03d-%06d.", gen, i)), 10) // 110 bytes
}

func TestInsertAndSearch(t *testing.T) {
	tc := newTestCluster(t, nil)
	const n = 200
	tc.runClients(t, 10*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil {
				t.Errorf("search %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, val(i, 0)) {
				t.Errorf("search %d: wrong value", i)
				return
			}
		}
		if _, err := c.Search([]byte("nonexistent")); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing key: err = %v, want ErrNotFound", err)
		}
	})
}

func TestSearchFromOtherClientColdCache(t *testing.T) {
	tc := newTestCluster(t, nil)
	const n = 100
	tc.runClients(t, 10*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	tc.runClients(t, 10*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("cold search %d: %v", i, err)
				return
			}
		}
		if c.Stats.CacheHits != 0 {
			t.Errorf("cold client had %d cache hits", c.Stats.CacheHits)
		}
	})
}

func TestUpdateOverwrites(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		k := key(7)
		for gen := 0; gen < 20; gen++ {
			if err := c.Update(k, val(7, gen)); err != nil {
				t.Errorf("update gen %d: %v", gen, err)
				return
			}
			got, err := c.Search(k)
			if err != nil || !bytes.Equal(got, val(7, gen)) {
				t.Errorf("readback gen %d failed: %v", gen, err)
				return
			}
		}
	})
}

func TestUpdateChangesValueSizeClass(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		k := key(3)
		small := []byte("tiny")
		big := bytes.Repeat([]byte("B"), 900)
		if err := c.Insert(k, small); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		if err := c.Update(k, big); err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		if got, err := c.Search(k); err != nil || !bytes.Equal(got, big) {
			t.Errorf("after grow: %v", err)
			return
		}
		if err := c.Update(k, small); err != nil {
			t.Errorf("shrink: %v", err)
			return
		}
		if got, err := c.Search(k); err != nil || !bytes.Equal(got, small) {
			t.Errorf("after shrink: %v", err)
		}
	})
}

func TestDeleteAndReinsert(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		k := key(42)
		if err := c.Delete(k); !errors.Is(err, ErrNotFound) {
			t.Errorf("delete missing: %v", err)
		}
		if err := c.Insert(k, val(42, 0)); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		if err := c.Delete(k); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		if _, err := c.Search(k); !errors.Is(err, ErrNotFound) {
			t.Errorf("search after delete: %v", err)
		}
		if err := c.Insert(k, val(42, 1)); err != nil {
			t.Errorf("reinsert: %v", err)
			return
		}
		if got, err := c.Search(k); err != nil || !bytes.Equal(got, val(42, 1)) {
			t.Errorf("search after reinsert: %v", err)
		}
	})
}

func TestConcurrentUpdatesSameKey(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("contended")
	const writers, rounds = 8, 30
	finals := make([][]byte, writers)
	fns := make([]func(*Client), writers)
	totalRetries := uint64(0)
	for w := 0; w < writers; w++ {
		w := w
		fns[w] = func(c *Client) {
			for r := 0; r < rounds; r++ {
				v := []byte(fmt.Sprintf("writer%02d-round%03d-%s", w, r, bytes.Repeat([]byte("x"), 50)))
				if err := c.Update(k, v); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				finals[w] = v
			}
			totalRetries += c.Stats.CASRetries
		}
	}
	tc.runClients(t, 30*time.Second, fns...)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		got, err := c.Search(k)
		if err != nil {
			t.Errorf("final search: %v", err)
			return
		}
		ok := false
		for _, f := range finals {
			if bytes.Equal(got, f) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("final value %q is not any writer's last write", got[:20])
		}
	})
	if totalRetries == 0 {
		t.Error("expected CAS retries under contention")
	}
	// CAS-failed pairs were invalidated; the invalidation patch must
	// have kept every stripe's parity invariant intact (regression for
	// the data-without-delta invalidation bug).
	tc.run(50 * time.Millisecond)
	stripeParityInvariant(t, tc)
}

// TestEpochRollover drives one slot's 8-bit version past 255 so the
// epoch-locking path of Algorithm 1 executes.
func TestEpochRollover(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		k := []byte("rollover-key")
		for gen := 0; gen < 300; gen++ {
			if err := c.Update(k, val(0, gen)); err != nil {
				t.Errorf("update %d: %v", gen, err)
				return
			}
		}
		got, err := c.Search(k)
		if err != nil || !bytes.Equal(got, val(0, 299)) {
			t.Errorf("after rollover: %v", err)
			return
		}
		ent := c.cache.lookup(racehash.Hash(k), k)
		if ent == nil {
			t.Error("no cache entry")
			return
		}
		if ent.meta.Epoch != 2 {
			t.Errorf("epoch = %d, want 2 after one rollover", ent.meta.Epoch)
		}
		if ent.meta.Locked() {
			t.Error("meta left locked")
		}
	})
}

// TestConcurrentRollover has several clients cross the version
// rollover together, exercising Meta-lock contention.
func TestConcurrentRollover(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("shared-rollover")
	const writers = 4
	fns := make([]func(*Client), writers)
	for w := 0; w < writers; w++ {
		fns[w] = func(c *Client) {
			for r := 0; r < 100; r++ {
				if err := c.Update(k, val(1, r)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}
	}
	tc.runClients(t, 120*time.Second, fns...)
	// 400 total updates: at least one rollover must have happened and
	// the key must still be readable.
	tc.runClients(t, 10*time.Second, func(c *Client) {
		if _, err := c.Search(k); err != nil {
			t.Errorf("after concurrent rollover: %v", err)
		}
	})
}

// stripeParityInvariant checks, for every stripe row on every MN, the
// XOR-code invariant P = ⊕_b (DATA_b ⊕ DELTA_b): the row parity block
// must equal the XOR of all data blocks folded with their pending
// deltas.
func stripeParityInvariant(t *testing.T, tc *testCluster) {
	t.Helper()
	l := tc.cl.L
	for row := 0; row < l.Cfg.StripeRows; row++ {
		stripe := uint32(row)
		pmn := l.ParityMN(stripe, 0)
		pnode, _ := tc.cl.view.nodeOf(pmn)
		pmem := tc.pl.DirectMemory(pnode)
		prec := layout.DecodeRecord(pmem[l.RecordOff(row) : l.RecordOff(row)+layout.RecordSize])
		if prec.Role == layout.RoleFree {
			continue // stripe unused
		}
		want := make([]byte, l.Cfg.BlockSize)
		copy(want, pmem[l.BlockOff(row):l.BlockOff(row)+l.Cfg.BlockSize])
		for xid, dm := range l.DataMNs(stripe) {
			dnode, _ := tc.cl.view.nodeOf(dm)
			dmem := tc.pl.DirectMemory(dnode)
			erasure.XorInto(want, dmem[l.BlockOff(row):l.BlockOff(row)+l.Cfg.BlockSize])
			if da := prec.DeltaAddr[xid]; da != 0 {
				dmn, dOff := layout.UnpackAddr(da)
				dn, _ := tc.cl.view.nodeOf(int(dmn))
				dmem := tc.pl.DirectMemory(dn)
				erasure.XorInto(want, dmem[dOff:dOff+l.Cfg.BlockSize])
			}
		}
		for i, b := range want {
			if b != 0 {
				t.Fatalf("stripe %d: parity invariant violated at byte %d", row, i)
			}
		}
	}
}

// TestParityInvariantAfterWrites writes enough data to seal several
// blocks and verifies the P-parity invariant holds across the group.
func TestParityInvariantAfterWrites(t *testing.T) {
	tc := newTestCluster(t, nil)
	fns := make([]func(*Client), 4)
	for w := 0; w < 4; w++ {
		w := w
		fns[w] = func(c *Client) {
			for i := 0; i < 150; i++ {
				if err := c.Insert(key(w*1000+i), val(i, w)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}
	}
	tc.runClients(t, 60*time.Second, fns...)
	tc.run(50 * time.Millisecond) // let encoders drain
	stripeParityInvariant(t, tc)
}

// TestCheckpointPipeline verifies that after a few rounds the hosted
// checkpoint equals a recent snapshot of the owner's index.
func TestCheckpointPipeline(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 20*time.Second, func(c *Client) {
		for i := 0; i < 100; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	// Let at least two checkpoint rounds complete with no writers.
	tc.run(3 * tc.cl.Cfg.CkptInterval)
	l := tc.cl.L
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		node, _ := tc.cl.view.nodeOf(mn)
		own := tc.pl.DirectMemory(node)
		host := l.CkptHostOf(mn, 0)
		hnode, _ := tc.cl.view.nodeOf(host)
		hmem := tc.pl.DirectMemory(hnode)
		slot := l.CkptSlotFor(host, mn)
		hosted := hmem[l.CkptCopyOff(slot) : l.CkptCopyOff(slot)+l.Cfg.IndexBytes]
		if !bytes.Equal(hosted, own[:l.Cfg.IndexBytes]) {
			t.Fatalf("mn %d: hosted checkpoint does not match quiesced index", mn)
		}
		ver := hmem[l.CkptVersionOff(slot) : l.CkptVersionOff(slot)+8]
		allZero := true
		for _, b := range ver {
			if b != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Fatalf("mn %d: hosted checkpoint version never advanced", mn)
		}
	}
}

// verifyAll checks every key against its expected value from a fresh
// (cold-cache) client.
func (tc *testCluster) verifyAll(t *testing.T, expect map[int][]byte) {
	t.Helper()
	tc.runClients(t, 120*time.Second, func(c *Client) {
		for i, want := range expect {
			got, err := c.Search(key(i))
			if want == nil {
				if !errors.Is(err, ErrNotFound) {
					t.Errorf("key %d: deleted but err = %v", i, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("key %d: %v", i, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("key %d: wrong value after recovery", i)
			}
		}
	})
}

// TestMNCrashRecovery is the headline fault-tolerance test: load data,
// let checkpoints run, crash an MN, and verify that after tiered
// recovery every committed KV pair is readable with its latest value.
func TestMNCrashRecovery(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	const n = 300
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
		// Overwrite some, delete some: recovery must surface the
		// latest versions, not the checkpointed ones.
		for i := 0; i < n; i += 3 {
			v := val(i, 1)
			if err := c.Update(key(i), v); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			expect[i] = v
		}
		for i := 1; i < n; i += 25 {
			if err := c.Delete(key(i)); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
			expect[i] = nil
		}
	})
	// Let a checkpoint land, then write more (post-checkpoint data).
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i += 7 {
			v := val(i, 2)
			if err := c.Update(key(i), v); err != nil {
				t.Errorf("late update: %v", err)
				return
			}
			expect[i] = v
		}
	})

	tc.cl.FailMN(1)
	for i := 0; i < 10000; i++ {
		tc.run(time.Millisecond)
		if _, _, blocksReady := tc.cl.MNState(1); blocksReady {
			break
		}
	}
	if _, _, ready := tc.cl.MNState(1); !ready {
		t.Fatal("MN 1 never finished recovery")
	}
	tc.verifyAll(t, expect)
	if len(tc.cl.master.Reports) != 1 {
		t.Fatalf("got %d recovery reports", len(tc.cl.master.Reports))
	}
	rep := tc.cl.master.Reports[0]
	if rep.KVCount == 0 {
		t.Error("recovery scanned no KV pairs")
	}
	t.Logf("recovery report: %+v", rep)
}

// TestMNCrashBeforeAnyCheckpoint recovers purely from block scans
// (checkpoint version 0).
func TestMNCrashBeforeAnyCheckpoint(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.CkptInterval = time.Hour // effectively never
	})
	tc.cl.master.AddSpare()
	const n = 150
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.cl.FailMN(2)
	for i := 0; i < 10000; i++ {
		tc.run(time.Millisecond)
		if _, _, blocksReady := tc.cl.MNState(2); blocksReady {
			break
		}
	}
	tc.verifyAll(t, expect)
}

// TestDegradedSearchDuringRecovery checks that reads served while the
// block area is still being recovered return correct values via
// erasure decoding.
func TestDegradedSearchDuringRecovery(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	const n = 200
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)

	tc.cl.FailMN(0)
	// Reader races recovery: every search must still return the right
	// value (possibly via the degraded path).
	degraded := uint64(0)
	tc.runClients(t, 120*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil {
				t.Errorf("degraded search %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, expect[i]) {
				t.Errorf("degraded search %d: wrong value", i)
				return
			}
		}
		degraded = c.Stats.DegradedReads
	})
	if degraded == 0 {
		t.Log("note: recovery finished before any degraded read was needed")
	}
}

// TestDoubleMNFailure crashes two MNs of the group (the code's fault
// bound) and verifies full recovery.
func TestDoubleMNFailure(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	tc.cl.master.AddSpare()
	const n = 150
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(1)
	tc.cl.FailMN(3)
	for i := 0; i < 30000; i++ {
		tc.run(time.Millisecond)
		_, _, r1 := tc.cl.MNState(1)
		_, _, r3 := tc.cl.MNState(3)
		if r1 && r3 {
			break
		}
	}
	tc.verifyAll(t, expect)
}

// TestReclamation forces space pressure with updates until blocks are
// reclaimed through the delta-based path, then verifies data.
func TestReclamation(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.Layout.StripeRows = 6
		cfg.Layout.PoolBlocks = 8
		cfg.Layout.BlockSize = 16 << 10
		cfg.BitmapFlushOps = 4
	})
	const n = 60
	expect := make(map[int][]byte)
	tc.runClients(t, 300*time.Second, func(c *Client) {
		gen := 0
		for round := 0; round < 40; round++ {
			for i := 0; i < n; i++ {
				v := val(i, gen)
				if err := c.Update(key(i), v); err != nil {
					t.Errorf("round %d update %d: %v", round, i, err)
					return
				}
				expect[i] = v
			}
			gen++
		}
		c.FlushBitmaps()
	})
	tc.run(100 * time.Millisecond)
	reclaimed := 0
	for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
		reclaimed += tc.cl.servers[mn].reclaimed
	}
	if reclaimed == 0 {
		t.Fatal("no blocks were reclaimed despite heavy overwrites")
	}
	stripeParityInvariant(t, tc)
	tc.verifyAll(t, expect)
}

// TestRecoveryAfterReclamation combines reclamation with an MN crash.
func TestRecoveryAfterReclamation(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.Layout.StripeRows = 6
		cfg.Layout.PoolBlocks = 8
		cfg.BitmapFlushOps = 4
	})
	tc.cl.master.AddSpare()
	const n = 60
	expect := make(map[int][]byte)
	tc.runClients(t, 300*time.Second, func(c *Client) {
		for round := 0; round < 30; round++ {
			for i := 0; i < n; i++ {
				v := val(i, round)
				if err := c.Update(key(i), v); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				expect[i] = v
			}
		}
		c.FlushBitmaps()
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(4)
	for i := 0; i < 20000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(4); ready {
			break
		}
	}
	tc.verifyAll(t, expect)
}

// TestWritesResumeAfterIndexRecovery checks tier-2 semantics: writes
// to the recovered partition succeed while tier 3 may still be
// running.
func TestWritesResumeAfterIndexRecovery(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	const n = 150
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	tc.cl.FailMN(1)
	expect := make(map[int][]byte)
	tc.runClients(t, 120*time.Second, func(c *Client) {
		// These writes block until the index is back, then proceed.
		for i := 0; i < 50; i++ {
			v := val(1000+i, 9)
			if err := c.Insert(key(1000+i), v); err != nil {
				t.Errorf("post-crash insert: %v", err)
				return
			}
			expect[1000+i] = v
		}
	})
	for i := 0; i < 10000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(1); ready {
			break
		}
	}
	tc.verifyAll(t, expect)
}

func TestRSCodeCluster(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) { cfg.Code = "rs" })
	tc.cl.master.AddSpare()
	const n = 100
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(2)
	for i := 0; i < 10000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(2); ready {
			break
		}
	}
	tc.verifyAll(t, expect)
}

// TestMNCPULoad sanity-checks the Table 3 instrumentation: under a
// write workload, the erasure/ckpt cores show non-trivial utilisation.
func TestMNCPULoad(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) { cfg.CkptInterval = 5 * time.Millisecond })
	tc.pl.ResetStats()
	fns := make([]func(*Client), 4)
	for w := 0; w < 4; w++ {
		w := w
		fns[w] = func(c *Client) {
			for i := 0; i < 200; i++ {
				if err := c.Insert(key(w*1000+i), val(i, w)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}
	}
	tc.runClients(t, 60*time.Second, fns...)
	anyBusy := false
	for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
		node, _ := tc.cl.view.nodeOf(mn)
		for core := 0; core < rdma.NumMNCores; core++ {
			if tc.pl.CoreUtilization(node, core) > 0 {
				anyBusy = true
			}
		}
	}
	if !anyBusy {
		t.Error("no MN core recorded any utilisation")
	}
}
