package core

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/racehash"
)

// TestForcedRelockAfterClientCrash exercises remark 2 of §3.2.2: a
// client that dies while holding a slot's Meta lock (odd epoch) must
// not block other writers forever — after LockTimeout they bump the
// epoch to the next odd value, take over the lock, and finish the
// rollover.
func TestForcedRelockAfterClientCrash(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("locked-key")

	// Install the key, then forge a crashed locker: set the Meta word
	// to an odd (locked) epoch directly in pool memory, as if a client
	// died between Algorithm 1's lines 9 and 20.
	var slotOff uint64
	var mn int
	tc.runClients(t, 10*time.Second, func(c *Client) {
		if err := c.Insert(k, val(1, 0)); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		ent := c.cache.lookup(racehash.Hash(k), k)
		slotOff = ent.slotOff
		mn = ent.mn
	})
	node, _ := tc.cl.view.nodeOf(mn)
	mem := tc.pl.DirectMemory(node)
	metaOff := slotOff + layout.SlotMetaOff
	meta := layout.UnpackMeta(binary.LittleEndian.Uint64(mem[metaOff:]))
	locked := layout.SlotMeta{Epoch: meta.Epoch + 1, Len: meta.Len} // odd = locked
	binary.LittleEndian.PutUint64(mem[metaOff:], locked.Pack())

	// A fresh client (cold cache, so it reads the locked Meta) must
	// eventually force-relock and commit.
	start := tc.pl.Engine().Now()
	tc.runClients(t, 60*time.Second, func(c *Client) {
		if err := c.Update(k, val(1, 1)); err != nil {
			t.Errorf("update through stale lock: %v", err)
			return
		}
		got, err := c.Search(k)
		if err != nil || !bytes.Equal(got, val(1, 1)) {
			t.Errorf("read after forced relock: %v", err)
		}
	})
	elapsed := tc.pl.Engine().Now() - start
	if elapsed < tc.cl.Cfg.LockTimeout {
		t.Fatalf("writer finished in %v, before the %v lock timeout", elapsed, tc.cl.Cfg.LockTimeout)
	}
	// The Meta word must be unlocked (even epoch) again.
	final := layout.UnpackMeta(binary.LittleEndian.Uint64(mem[metaOff:]))
	if final.Locked() {
		t.Fatalf("meta still locked after forced relock: epoch=%d", final.Epoch)
	}
	if final.Epoch <= locked.Epoch {
		t.Fatalf("epoch did not advance past the stale lock: %d <= %d", final.Epoch, locked.Epoch)
	}
}

// TestNoSlotAddrCacheConfig runs CRUD with CacheSlotAddr disabled (the
// "+CKPT" factor-analysis configuration): reads validate through
// bucket re-reads instead of slot-address reads.
func TestNoSlotAddrCacheConfig(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) { cfg.CacheSlotAddr = false })
	const n = 120
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("search %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i += 2 {
			if err := c.Update(key(i), val(i, 1)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
		for i := 0; i < n; i += 2 {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 1)) {
				t.Errorf("re-search %d: %v", i, err)
				return
			}
		}
	})
}

// TestDegradedSearchWithRSCode checks that the degraded read path's
// row-parity XOR reconstruction also holds under the Reed-Solomon
// code (whose parity row 0 is likewise a plain XOR).
func TestDegradedSearchWithRSCode(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) { cfg.Code = "rs" })
	tc.cl.master.AddSpare()
	const n = 150
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(0)
	tc.runClients(t, 120*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, expect[i]) {
				t.Errorf("degraded RS search %d: %v", i, err)
				return
			}
		}
	})
}

// TestHomePartitionConsistency double-checks that the key-to-MN
// partition used by clients matches recovery's (a mismatch would make
// recovery silently skip keys).
func TestHomePartitionConsistency(t *testing.T) {
	n := 5
	for i := 0; i < 1000; i++ {
		k := key(i)
		h := racehash.Hash(k)
		if racehash.HomeMN(h, n) != racehash.HomeMN(racehash.Hash(k), n) {
			t.Fatal("home MN not deterministic")
		}
	}
}

// TestDegradedSearchUnderDoubleFailure reads while TWO MNs of the
// group are down (the code's fault bound): ranges whose row parity is
// also lost must come back via full-stripe reconstruction (§3.4.1
// remark 2).
func TestDegradedSearchUnderDoubleFailure(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		// Slow the master's recovery down so the degraded window is
		// wide enough to observe double-failure reads.
		cfg.CkptInterval = 10 * time.Millisecond
	})
	tc.cl.master.AddSpare()
	tc.cl.master.AddSpare()
	tc.cl.master.DetectDelay = 50 * time.Millisecond
	const n = 200
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(3 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(1)
	tc.cl.FailMN(2)

	// Keys homed on alive MNs must be readable immediately even though
	// two MNs (possibly a data and its row-parity holder) are gone.
	read := 0
	tc.runClients(t, 300*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			h := homeOf(tc, key(i))
			if h == 1 || h == 2 {
				continue // index partition down; covered elsewhere
			}
			got, err := c.Search(key(i))
			if err != nil {
				t.Errorf("double-failure search %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, expect[i]) {
				t.Errorf("double-failure search %d: wrong value", i)
				return
			}
			read++
		}
	})
	if read == 0 {
		t.Fatal("no keys exercised")
	}
	// Recovery still completes.
	for i := 0; i < 60000; i++ {
		tc.run(time.Millisecond)
		_, _, r1 := tc.cl.MNState(1)
		_, _, r2 := tc.cl.MNState(2)
		if r1 && r2 {
			break
		}
	}
	tc.verifyAll(t, expect)
}

func homeOf(tc *testCluster, k []byte) int {
	return racehash.HomeMN(racehash.Hash(k), tc.cl.Cfg.Layout.NumMNs)
}
