package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestRandomOpsAgainstModel drives a random op mix from several
// clients over a moderate keyspace and checks every SEARCH result
// against an in-memory model. Keys are sharded per client so the model
// stays deterministic under concurrency.
func TestRandomOpsAgainstModel(t *testing.T) {
	tc := newTestCluster(t, nil)
	const clients, keysEach, ops = 4, 40, 400
	fns := make([]func(*Client), clients)
	for w := 0; w < clients; w++ {
		w := w
		fns[w] = func(c *Client) {
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			model := make(map[string][]byte)
			mkey := func(i int) []byte { return []byte(fmt.Sprintf("m%02d-%04d", w, i)) }
			for n := 0; n < ops; n++ {
				i := rng.Intn(keysEach)
				k := mkey(i)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // write
					v := []byte(fmt.Sprintf("w%d-n%d-%s", w, n, bytes.Repeat([]byte("z"), rng.Intn(300))))
					if err := c.Update(k, v); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					model[string(k)] = v
				case 4: // delete
					err := c.Delete(k)
					_, exists := model[string(k)]
					if exists && err != nil {
						t.Errorf("delete live key: %v", err)
						return
					}
					if !exists && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete missing key: %v", err)
						return
					}
					delete(model, string(k))
				default: // search
					got, err := c.Search(k)
					want, exists := model[string(k)]
					if exists {
						if err != nil || !bytes.Equal(got, want) {
							t.Errorf("search %s: err=%v", k, err)
							return
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Errorf("search deleted %s: err=%v", k, err)
						return
					}
				}
			}
		}
	}
	tc.runClients(t, 300*time.Second, fns...)
}

// TestRandomOpsWithCrash interleaves an MN crash with the random
// workload; the clients stall on the affected partition and must still
// agree with their models afterwards.
func TestRandomOpsWithCrash(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	const clients, keysEach, ops = 3, 30, 250
	models := make([]map[string][]byte, clients)
	fns := make([]func(*Client), clients)
	for w := 0; w < clients; w++ {
		w := w
		models[w] = make(map[string][]byte)
		fns[w] = func(c *Client) {
			rng := rand.New(rand.NewSource(int64(9000 + w)))
			mkey := func(i int) []byte { return []byte(fmt.Sprintf("c%02d-%04d", w, i)) }
			for n := 0; n < ops; n++ {
				i := rng.Intn(keysEach)
				k := mkey(i)
				if rng.Intn(2) == 0 {
					v := []byte(fmt.Sprintf("w%d-n%d", w, n))
					if err := c.Update(k, v); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					models[w][string(k)] = v
				} else {
					got, err := c.Search(k)
					want, exists := models[w][string(k)]
					if exists && (err != nil || !bytes.Equal(got, want)) {
						t.Errorf("mid-crash search %s: %v", k, err)
						return
					}
				}
			}
		}
	}
	// Start clients, crash an MN a moment in, let everything finish.
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := tc.pl.AddComputeNode()
		tc.cl.SpawnClient(cn, fmt.Sprintf("chaos%d", i), func(c *Client) {
			fn(c)
			done++
		})
	}
	tc.run(500 * time.Microsecond)
	tc.cl.FailMN(3)
	for i := 0; i < 120000 && done < clients; i++ {
		tc.run(time.Millisecond)
	}
	if done < clients {
		t.Fatal("clients stalled after crash")
	}
	for i := 0; i < 30000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(3); ready {
			break
		}
	}
	// Final verification from a cold client.
	tc.runClients(t, 120*time.Second, func(c *Client) {
		for w := 0; w < clients; w++ {
			for k, want := range models[w] {
				got, err := c.Search([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("final %s: %v", k, err)
					return
				}
			}
		}
	})
}

// TestSearchWhileWriterRaces checks read-your-writes visibility across
// clients: a reader polling a key always observes one of the writer's
// committed values, never garbage or a torn pair.
func TestSearchWhileWriterRaces(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("raced-key")
	const rounds = 150
	valid := make(map[string]bool)
	valid[""] = true // not-yet-inserted
	writerDone := false
	readerDone := false
	cn1 := tc.pl.AddComputeNode()
	cn2 := tc.pl.AddComputeNode()
	tc.cl.SpawnClient(cn1, "writer", func(c *Client) {
		for n := 0; n < rounds; n++ {
			v := fmt.Sprintf("gen-%04d-%s", n, bytes.Repeat([]byte("q"), 100))
			valid[v] = true
			if err := c.Update(k, []byte(v)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
		writerDone = true
	})
	tc.cl.SpawnClient(cn2, "reader", func(c *Client) {
		for !writerDone {
			got, err := c.Search(k)
			if errors.Is(err, ErrNotFound) {
				continue
			}
			if err != nil {
				t.Errorf("search: %v", err)
				return
			}
			if !valid[string(got)] {
				t.Errorf("reader observed value that was never written: %.24q...", got)
				return
			}
		}
		readerDone = true
	})
	for i := 0; i < 120000 && !(writerDone && readerDone); i++ {
		tc.run(time.Millisecond)
	}
	if !writerDone || !readerDone {
		t.Fatal("race test stalled")
	}
}
