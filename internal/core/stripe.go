package core

import (
	"errors"
	"fmt"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/rdma"
)

// This file holds the stripe-level reconstruction helpers shared by the
// client's degraded SEARCH and the recovery server.
//
// Invariant (DESIGN.md): for every data block b of a stripe, at all
// times DATA_b = enc_b ⊕ DELTA_b, where enc_b is the content last
// folded into the parity (0 for a never-encoded fresh block; the
// pre-reuse content for a reclaimed block) and DELTA_b is the DELTA
// block content (0 after encoding frees it). Hence parity_0 (a plain
// XOR for both codes) satisfies
//
//	P = ⊕_b enc_b  ⇒  DATA_m = P ⊕ ⊕_{b≠m}(DATA_b ⊕ DELTA_b) ⊕ DELTA_m
//
// which lets a single lost range be rebuilt from small reads without
// touching the diagonal parity.

var errStripeUnavailable = errors.New("core: stripe survivors unavailable")

// readStripeRange reconstructs buf = the byte range [off, off+len(buf))
// of the lost DATA block at packed address packed, via the stripe's
// row parity. reads, when non-nil, receives per-read accounting.
func readStripeRange(ctx rdma.Ctx, cl *Cluster, packed uint64, buf []byte) error {
	l := cl.L
	mnU, off := layout.UnpackAddr(packed)
	mn := int(mnU)
	bi := l.BlockOfOff(off)
	if bi < 0 || bi >= l.Cfg.StripeRows {
		return fmt.Errorf("core: stripe range outside stripe blocks (mn%d+0x%x)", mn, off)
	}
	stripe := uint32(bi)
	rel := off - l.BlockOff(bi)
	n := uint64(len(buf))

	pmn := l.ParityMN(stripe, 0)
	prec, err := readParityRecord(ctx, cl, pmn, bi)
	if err != nil {
		return errStripeUnavailable
	}
	if prec.Role == layout.RoleFree {
		// Stripe never encoded anything: the lost range is all zero
		// only if no survivor holds data; treat as unavailable.
		return errStripeUnavailable
	}

	var ops []rdma.Op
	var bufs [][]byte
	addRange := func(owner int, base uint64) bool {
		a, ok := cl.Addr(owner, base+rel)
		if !ok {
			return false
		}
		b := make([]byte, n)
		bufs = append(bufs, b)
		ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: a, Buf: b})
		return true
	}
	if !addRange(pmn, l.BlockOff(bi)) {
		return errStripeUnavailable
	}
	for xid, dm := range l.DataMNs(stripe) {
		if dm != mn {
			if !addRange(dm, l.BlockOff(bi)) {
				return errStripeUnavailable
			}
		}
		if da := prec.DeltaAddr[xid]; da != 0 {
			dmn, dOff := layout.UnpackAddr(da)
			if !addRange(int(dmn), dOff) {
				return errStripeUnavailable
			}
		}
	}
	if err := ctx.Batch(ops); err != nil {
		return errStripeUnavailable
	}
	for i := range buf {
		buf[i] = 0
	}
	for _, b := range bufs {
		erasure.XorInto(buf, b)
	}
	return nil
}

// readParityRecord reads the metadata record of stripe row bi from
// parity MN pmn.
func readParityRecord(ctx rdma.Ctx, cl *Cluster, pmn, bi int) (layout.Record, error) {
	addr, ok := cl.Addr(pmn, cl.L.RecordOff(bi))
	if !ok {
		return layout.Record{}, rdma.ErrNodeFailed
	}
	buf := make([]byte, layout.RecordSize)
	if err := ctx.Read(buf, addr); err != nil {
		return layout.Record{}, err
	}
	return layout.DecodeRecord(buf), nil
}

// readStripeRangeFull handles the two-failure case of §3.4.1 remark 2:
// when the row-parity MN is down too, the lost range is recovered by
// fetching every surviving stripe member in full (data blocks folded
// with their pending deltas into enc form, plus surviving parities)
// and running the code's generic reconstruction. Expensive — full
// blocks move for one KV — but it keeps degraded reads available right
// up to the fault bound.
func readStripeRangeFull(ctx rdma.Ctx, cl *Cluster, packed uint64, buf []byte) error {
	l := cl.L
	mnU, off := layout.UnpackAddr(packed)
	mn := int(mnU)
	bi := l.BlockOfOff(off)
	if bi < 0 || bi >= l.Cfg.StripeRows {
		return fmt.Errorf("core: stripe range outside stripe blocks (mn%d+0x%x)", mn, off)
	}
	f := fetchStripe(ctx, cl, mn, bi)
	if !f.ok {
		return errStripeUnavailable
	}
	stripe := uint32(bi)
	k, m := cl.code.K(), cl.code.M()
	present := make([]bool, k+m)
	for xid, dm := range l.DataMNs(stripe) {
		_, alive := cl.view.nodeOf(dm)
		present[xid] = dm != mn && alive
	}
	missing := 0
	for j := 0; j < m; j++ {
		_, alive := cl.view.nodeOf(l.ParityMN(stripe, j))
		present[k+j] = alive
		if !alive {
			missing++
		}
	}
	if err := cl.code.Reconstruct(f.shards, present); err != nil {
		return errStripeUnavailable
	}
	myXID := l.XORIDOf(stripe, mn)
	out := f.shards[myXID]
	if f.deltas[myXID] != nil {
		erasure.XorInto(out, f.deltas[myXID])
	}
	rel := off - l.BlockOff(bi)
	copy(buf, out[rel:rel+uint64(len(buf))])
	return nil
}

// readChunked reads [off, off+len(dst)) of logical MN mn in ChunkBytes
// pieces so bulk recovery reads interleave with foreground traffic.
// Chunks are doorbell-batched chunkDepth at a time, keeping the read
// stream pipelined (the paper's recovery sustains ~2 GB/s).
func readChunked(ctx rdma.Ctx, cl *Cluster, mn int, off uint64, dst []byte) error {
	const chunkDepth = 8
	chunk := cl.Cfg.ChunkBytes
	var ops []rdma.Op
	for pos := 0; pos < len(dst); pos += chunk {
		end := pos + chunk
		if end > len(dst) {
			end = len(dst)
		}
		addr, ok := cl.Addr(mn, off+uint64(pos))
		if !ok {
			return rdma.ErrNodeFailed
		}
		ops = append(ops, rdma.Op{Kind: rdma.OpRead, Addr: addr, Buf: dst[pos:end]})
		if len(ops) == chunkDepth {
			if err := ctx.Batch(ops); err != nil {
				return err
			}
			ops = ops[:0]
		}
	}
	if len(ops) > 0 {
		return ctx.Batch(ops)
	}
	return nil
}
