package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/racehash"
	"repro/internal/rdma/simnet"
)

// fusedTestConfig keeps the whole zero-alloc measurement inside one
// open DATA block (no mid-measure provisioning) and disables the two
// features that allocate by design: span sampling, and the prefetch
// worker (whose queues would grow unbounded while the engine is
// paused under a direct-driven client).
func fusedTestConfig(cfg *Config) {
	cfg.Layout.BlockSize = 256 << 10
	cfg.TraceSample = -1
	cfg.BlockPrefetch = false
	// Defer automatic bitmap flushes; the test flushes explicitly
	// between phases so the measured window performs no RPCs.
	cfg.BitmapFlushOps = 1 << 20
}

// TestFusedUpdateSingleDoorbellZeroAlloc pins the two headline
// properties of the fused write path on the steady-state UPDATE:
//
//   - single RTT: each UPDATE issues exactly one doorbell carrying
//     {KV pair write, deltaCopies delta writes, commit CAS} — 0 reads,
//     3 writes, 1 CAS with the default 2-parity layout — and
//   - zero heap allocations per op.
func TestFusedUpdateSingleDoorbellZeroAlloc(t *testing.T) {
	tc := newTestCluster(t, fusedTestConfig)
	const n = 32
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	})

	// Drive a fresh client from the test goroutine; the engine is
	// paused, so memory is static and RPCs dispatch synchronously.
	dctx := &directCtx{pl: tc.pl}
	cli := tc.cl.NewClient()
	cli.Attach(dctx)
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	v := val(0, 1)
	// Two passes: the first provisions the open block and populates
	// the index cache, the second warms every pooled scratch buffer.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			if err := cli.Update(keys[i], v); err != nil {
				t.Fatalf("warm update %d: %v", i, err)
			}
		}
	}

	// Verb phase: a steady-state fused UPDATE costs 0 reads, 1+deltaCopies
	// writes and 1 CAS, all rung with a single doorbell.
	wantWrites := uint64(1 + tc.cl.Cfg.deltaCopies())
	r0, w0, c0 := cli.Stats.ReadsIssued, cli.Stats.WritesIssued, cli.Stats.CASIssued
	f0, fb0 := cli.Stats.WriteFused, cli.Stats.WriteFallback
	db0 := dctx.doorbells
	for i := 0; i < n; i++ {
		if err := cli.Update(keys[i], v); err != nil {
			t.Fatalf("verb update %d: %v", i, err)
		}
	}
	if reads := cli.Stats.ReadsIssued - r0; reads != 0 {
		t.Fatalf("fused UPDATE issued %d reads over %d ops, want 0", reads, n)
	}
	if writes := cli.Stats.WritesIssued - w0; writes != wantWrites*n {
		t.Fatalf("fused UPDATE writes = %d over %d ops, want %d/op", writes, n, wantWrites)
	}
	if cas := cli.Stats.CASIssued - c0; cas != n {
		t.Fatalf("fused UPDATE CASes = %d over %d ops, want 1/op", cas, n)
	}
	if db := dctx.doorbells - db0; db != n {
		t.Fatalf("fused UPDATE doorbells = %d over %d ops, want exactly 1/op", db, n)
	}
	if fused := cli.Stats.WriteFused - f0; fused != n {
		t.Fatalf("WriteFused advanced %d over %d ops, want every op fused", fused, n)
	}
	if fb := cli.Stats.WriteFallback - fb0; fb != 0 {
		t.Fatalf("steady-state UPDATE fell back %d times", fb)
	}

	// Reset the pending-bitmap buffers so the measured window appends
	// into retained capacity and performs no flush RPC.
	cli.FlushBitmaps()

	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := cli.Update(keys[i%n], v); err != nil {
			t.Fatal("update failed during measurement")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("fused UPDATE allocates %.2f objects/op, want 0", allocs)
	}
	if cli.Stats.DeltaSkips != 0 {
		t.Fatalf("healthy cluster recorded %d delta skips", cli.Stats.DeltaSkips)
	}
}

// BenchmarkUpdateFused is the CI allocation/latency gate for the fused
// UPDATE hot path (run with -benchmem; allocs/op must stay 0).
func BenchmarkUpdateFused(b *testing.B) {
	cfg := testConfig()
	cfg.Layout.BlockSize = 1 << 20
	cfg.TraceSample = -1
	cfg.BlockPrefetch = false
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		b.Fatal(err)
	}
	cl.StartServers()
	cl.StartMaster()
	defer pl.Shutdown()
	const n = 64
	done := false
	cl.SpawnClient(pl.AddComputeNode(), "load", func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				b.Errorf("insert: %v", err)
				break
			}
		}
		done = true
	})
	limit := pl.Engine().Now() + 30*time.Second
	for !done && pl.Engine().Now() < limit {
		pl.Run(pl.Engine().Now() + time.Millisecond)
	}
	if !done {
		b.Fatal("preload did not finish")
	}

	cli := cl.NewClient()
	cli.Attach(&directCtx{pl: pl})
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key(i)
	}
	v := val(0, 1)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			if err := cli.Update(keys[i], v); err != nil {
				b.Fatalf("warm update: %v", err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Update(keys[i%n], v); err != nil {
			b.Fatalf("update: %v", err)
		}
	}
}

// TestFusedUpdateSkipsDeltasOnParityMNFailure kills the MN hosting one
// of the open block's DELTA copies mid-stream (no spare, so the
// membership hole stays open) and asserts the fused path records the
// unwritable copies as delta skips instead of failing or aborting the
// committed writes — a skipped delta must never become a lost update.
func TestFusedUpdateSkipsDeltasOnParityMNFailure(t *testing.T) {
	tc := newTestCluster(t, nil)
	var st ClientStats
	tc.runClients(t, 120*time.Second, func(c *Client) {
		k := key(1)
		if err := c.Insert(k, val(1, 0)); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		// The insert opened a DATA block; fail the MN hosting its
		// first DELTA copy. Updates to k keep committing on the (live)
		// data and index MNs while refreshDeltas cannot re-place the
		// dead copy.
		var ob *openBlock
		for _, b := range c.open {
			if len(b.deltas) > 0 {
				ob = b
				break
			}
		}
		if ob == nil || len(ob.deltas) < 2 {
			t.Errorf("open block has %v delta targets, want 2", ob)
			return
		}
		victim := ob.deltas[0].mn
		if victim == racehash.HomeMN(racehash.Hash(k), c.cl.Cfg.Layout.NumMNs) {
			victim = ob.deltas[1].mn // keep the key's index partition alive
		}
		c.cl.FailMN(victim)
		for r := 1; r <= 20; r++ {
			if err := c.Update(k, val(1, r)); err != nil {
				t.Errorf("update %d after parity MN failure: %v", r, err)
				return
			}
		}
		got, err := c.Search(k)
		if err != nil || !bytes.Equal(got, val(1, 20)) {
			t.Errorf("search after skips: err=%v", err)
		}
		st = c.Stats
	})
	if st.DeltaSkips == 0 {
		t.Fatal("no delta skips recorded across a dead parity MN")
	}
	if st.WriteFused == 0 {
		t.Fatal("updates did not take the fused path")
	}
}

// TestFusedConcurrentWritersParityInvariant is the lost-CAS crash
// stress: contending fused writers race the commit CAS on one key, so
// losers leave orphaned pairs whose deltas were already applied. The
// XOR-code invariant DATA ⊕ DELTA ⊕ PARITY = 0 must survive, and
// obsoleted losers must be invalidated (fence-zeroed), not leaked as
// committed data.
func TestFusedConcurrentWritersParityInvariant(t *testing.T) {
	tc := newTestCluster(t, nil)
	k := []byte("fused-contended")
	const writers = 4
	stats := make([]ClientStats, writers)
	fns := make([]func(*Client), writers)
	for w := 0; w < writers; w++ {
		w := w
		fns[w] = func(c *Client) {
			for r := 0; r < 100; r++ {
				if err := c.Update(k, val(w, r)); err != nil {
					t.Errorf("writer %d update %d: %v", w, r, err)
					return
				}
			}
			stats[w] = c.Stats
		}
	}
	tc.runClients(t, 120*time.Second, fns...)
	var fused, retries uint64
	for w := range stats {
		fused += stats[w].WriteFused
		retries += stats[w].CASRetries
	}
	if fused == 0 {
		t.Fatal("no write took the fused path")
	}
	if retries == 0 {
		t.Fatal("4 contending writers on one key recorded no lost CAS")
	}
	tc.runClients(t, 10*time.Second, func(c *Client) {
		if _, err := c.Search(k); err != nil {
			t.Errorf("search after contention: %v", err)
		}
	})
	tc.run(100 * time.Millisecond) // drain seals and encoders
	stripeParityInvariant(t, tc)
}

// TestFusedWritesUnderMNFailStop drives concurrent fused writers and a
// reader across a fail-stop + tiered recovery (run under -race in CI:
// the prefetch workers, servers and clients all share the platform).
// Writers must complete every generation, the reader must only ever
// observe a value some writer actually wrote for that key, and the
// final state must be each key's last generation.
func TestFusedWritesUnderMNFailStop(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	const n = 60
	const gens = 5
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)

	// valid[i] holds every value ever written for key i.
	valid := make([]map[string]bool, n)
	for i := range valid {
		valid[i] = map[string]bool{string(val(i, 0)): true}
		for g := 1; g <= gens; g++ {
			valid[i][string(val(i, g))] = true
		}
	}
	writer := func(lo, hi int) func(*Client) {
		return func(c *Client) {
			for g := 1; g <= gens; g++ {
				for i := lo; i < hi; i++ {
					if err := c.Update(key(i), val(i, g)); err != nil {
						t.Errorf("update key %d gen %d: %v", i, g, err)
						return
					}
				}
			}
		}
	}
	reader := func(c *Client) {
		for pass := 0; pass < 3*gens; pass++ {
			for i := 0; i < n; i++ {
				got, err := c.Search(key(i))
				if err != nil {
					t.Errorf("read key %d: %v", i, err)
					return
				}
				if !valid[i][string(got)] {
					t.Errorf("read key %d: value was never written", i)
					return
				}
			}
		}
	}
	failer := func(c *Client) {
		c.ctx.Sleep(2 * time.Millisecond) // let the writers get going
		c.cl.FailMN(1)
	}
	tc.runClients(t, 600*time.Second, writer(0, n/2), writer(n/2, n), reader, failer)

	for i := 0; i < 30000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(1); ready {
			break
		}
	}
	if _, _, ready := tc.cl.MNState(1); !ready {
		t.Fatal("MN 1 never finished recovery")
	}
	expect := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		expect[i] = val(i, gens)
	}
	tc.verifyAll(t, expect)
}

// TestFusedCommitKnob verifies the -fused-commit escape hatch: with
// the knob off every write takes the two-phase path (and the cluster
// still works); with it on, steady-state updates fuse.
func TestFusedCommitKnob(t *testing.T) {
	for _, fused := range []bool{false, true} {
		name := "off"
		if fused {
			name = "on"
		}
		t.Run(name, func(t *testing.T) {
			tc := newTestCluster(t, func(cfg *Config) { cfg.FusedCommit = fused })
			const n = 40
			var st ClientStats
			tc.runClients(t, 60*time.Second, func(c *Client) {
				for i := 0; i < n; i++ {
					if err := c.Insert(key(i), val(i, 0)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
				for i := 0; i < n; i++ {
					if err := c.Update(key(i), val(i, 1)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					got, err := c.Search(key(i))
					if err != nil || !bytes.Equal(got, val(i, 1)) {
						t.Errorf("search %d: err=%v", i, err)
						return
					}
				}
				st = c.Stats
			})
			if fused {
				if st.WriteFused == 0 {
					t.Fatal("FusedCommit=true recorded no fused writes")
				}
			} else {
				if st.WriteFused != 0 {
					t.Fatalf("FusedCommit=false recorded %d fused writes", st.WriteFused)
				}
				if st.WriteFallback == 0 {
					t.Fatal("no fallback attempts counted with fusion off")
				}
			}
		})
	}
}
