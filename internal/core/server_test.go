package core

import (
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/rdma"
)

// rpc performs a raw RPC against a server from a throwaway client
// process (handler-level testing).
func (tc *testCluster) rpc(t *testing.T, mn int, method uint8, req []byte) []byte {
	t.Helper()
	var resp []byte
	done := false
	cn := tc.pl.AddComputeNode()
	node, _ := tc.cl.view.nodeOf(mn)
	tc.pl.Spawn(cn, "rpc-test", func(ctx rdma.Ctx) {
		r, err := ctx.RPC(node, method, req)
		if err != nil {
			t.Errorf("rpc %d: %v", method, err)
		}
		resp = r
		done = true
	})
	for i := 0; i < 1000 && !done; i++ {
		tc.run(100 * time.Microsecond)
	}
	if !done {
		t.Fatal("rpc stalled")
	}
	return resp
}

func TestHandlerBadArgs(t *testing.T) {
	tc := newTestCluster(t, nil)

	// Unknown method.
	if resp := tc.rpc(t, 0, 0xEE, nil); len(resp) == 0 || resp[0] != stBadArg {
		t.Errorf("unknown method: resp %v", resp)
	}
	// AllocDelta on a non-parity MN / out-of-range stripe.
	var e enc
	e.u16(1)
	e.u32(1 << 30) // absurd stripe
	e.u8(0)
	e.u8(17)
	if resp := tc.rpc(t, 0, methodAllocDelta, e.b); resp[0] != stBadArg {
		t.Errorf("absurd stripe accepted: %v", resp)
	}
	// Seal of a block that is not DATA.
	var s1 enc
	s1.u32(uint32(tc.cl.Cfg.Layout.StripeRows)) // a pool block, role FREE
	s1.u32(^uint32(0))
	if resp := tc.rpc(t, 0, methodSealBlock, s1.b); resp[0] != stBadArg {
		t.Errorf("seal of FREE block accepted: %v", resp)
	}
	// FreeBits on an out-of-range block id.
	var f1 enc
	f1.u32(1 << 20)
	f1.u16(0)
	if resp := tc.rpc(t, 0, methodFreeBits, f1.b); resp[0] != stBadArg {
		t.Errorf("freebits out of range accepted: %v", resp)
	}
}

func TestHandlerAllocDeltaIdempotent(t *testing.T) {
	tc := newTestCluster(t, nil)
	l := tc.cl.L
	// Find a stripe where MN 0 is a parity holder.
	stripe := -1
	for s := 0; s < l.Cfg.StripeRows; s++ {
		if _, ok := l.IsParityMN(uint32(s), 0); ok {
			stripe = s
			break
		}
	}
	if stripe < 0 {
		t.Fatal("no parity stripe on mn0")
	}
	alloc := func() uint32 {
		var e enc
		e.u16(9)
		e.u32(uint32(stripe))
		e.u8(0)
		e.u8(17)
		resp := tc.rpc(t, 0, methodAllocDelta, e.b)
		if resp[0] != stOK {
			t.Fatalf("alloc delta: status %d", resp[0])
		}
		d := dec{b: resp[1:]}
		return d.u32()
	}
	first := alloc()
	second := alloc()
	if first != second {
		t.Fatalf("AllocDelta not idempotent: %d then %d", first, second)
	}
	// The parity record must reference exactly that block.
	srv := tc.cl.servers[0]
	rec := srv.record(stripe)
	if rec.Role != layout.RoleParity {
		t.Fatalf("parity record role %v", rec.Role)
	}
	_, off := layout.UnpackAddr(rec.DeltaAddr[0])
	if tc.cl.L.BlockOfOff(off) != int(first) {
		t.Fatalf("DeltaAddr points at block %d, want %d", tc.cl.L.BlockOfOff(off), first)
	}
}

func TestHandlerCkptPrepareMonotonic(t *testing.T) {
	tc := newTestCluster(t, nil)
	srv := tc.cl.servers[1]
	var e1 enc
	e1.u64(10)
	tc.rpc(t, 1, methodCkptPrepare, e1.b)
	if got := srv.indexVersion(); got != 11 {
		t.Fatalf("IV = %d after prepare(10), want 11", got)
	}
	// A stale (smaller) round must not regress the version.
	var e2 enc
	e2.u64(4)
	tc.rpc(t, 1, methodCkptPrepare, e2.b)
	if got := srv.indexVersion(); got != 11 {
		t.Fatalf("IV regressed to %d after stale prepare", got)
	}
}

func TestHandlerQueryOwnedFiltersByClient(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < 30; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	// The writer above was client id 1; an unknown id owns nothing.
	for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
		var e enc
		e.u16(0xBEEF)
		resp := tc.rpc(t, mn, methodQueryOwned, e.b)
		d := dec{b: resp[1:]}
		if n := d.u32(); n != 0 {
			t.Fatalf("mn %d: unknown client owns %d blocks", mn, n)
		}
	}
	total := 0
	for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
		var e enc
		e.u16(1)
		resp := tc.rpc(t, mn, methodQueryOwned, e.b)
		d := dec{b: resp[1:]}
		total += int(d.u32())
	}
	if total == 0 {
		t.Fatal("writer owns no unfilled blocks")
	}
}
