package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
)

// directCtx is an rdma.Ctx that applies operations synchronously
// against the platform's memory, bypassing the simulation engine. It
// lets a test drive a client from the test goroutine — in particular
// under testing.AllocsPerRun, where the engine's event scheduling
// (which boxes events into an interface) would pollute the count.
// Valid only while no engine process is running (virtual time paused).
type directCtx struct {
	pl *simnet.Platform
	// doorbells counts Batch/Post calls — each is one doorbell ring /
	// round trip on a real NIC — so the fused-write test can assert
	// the single-RTT property directly.
	doorbells int
}

func (d *directCtx) apply(op *rdma.Op) {
	mem := d.pl.Memory(op.Addr.Node)
	switch op.Kind {
	case rdma.OpRead:
		copy(op.Buf, mem[op.Addr.Off:op.Addr.Off+uint64(len(op.Buf))])
	case rdma.OpWrite:
		copy(mem[op.Addr.Off:], op.Buf)
	case rdma.OpCAS:
		word := mem[op.Addr.Off : op.Addr.Off+8]
		cur := binary.LittleEndian.Uint64(word)
		op.Result = cur
		if cur == op.Old {
			binary.LittleEndian.PutUint64(word, op.New)
		}
	case rdma.OpFAA:
		word := mem[op.Addr.Off : op.Addr.Off+8]
		cur := binary.LittleEndian.Uint64(word)
		op.Result = cur
		binary.LittleEndian.PutUint64(word, cur+op.New)
	}
}

func (d *directCtx) Read(buf []byte, addr rdma.GlobalAddr) error {
	d.doorbells++
	op := rdma.Op{Kind: rdma.OpRead, Addr: addr, Buf: buf}
	d.apply(&op)
	return op.Err
}

func (d *directCtx) Write(addr rdma.GlobalAddr, data []byte) error {
	d.doorbells++
	op := rdma.Op{Kind: rdma.OpWrite, Addr: addr, Buf: data}
	d.apply(&op)
	return op.Err
}

func (d *directCtx) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	d.doorbells++
	op := rdma.Op{Kind: rdma.OpCAS, Addr: addr, Old: old, New: new}
	d.apply(&op)
	return op.Result, op.Err
}

func (d *directCtx) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	d.doorbells++
	op := rdma.Op{Kind: rdma.OpFAA, Addr: addr, New: delta}
	d.apply(&op)
	return op.Result, op.Err
}

func (d *directCtx) Batch(ops []rdma.Op) error {
	d.doorbells++
	var firstErr error
	for i := range ops {
		d.apply(&ops[i])
		if ops[i].Err != nil && firstErr == nil {
			firstErr = ops[i].Err
		}
	}
	return firstErr
}

func (d *directCtx) Post(ops []rdma.Op) error { return d.Batch(ops) }

// OrderedBatch: Batch applies ops synchronously in list order, so the
// fused-commit tail-CAS contract holds trivially.
func (d *directCtx) OrderedBatch() bool { return true }

// errDirectRPC is preallocated so failed RPC attempts (e.g. advisory
// bitmap flushes to a node with no server) stay off the AllocsPerRun
// budget.
var errDirectRPC = errors.New("directCtx: no RPC handler on node")

// RPC dispatches synchronously into the target node's server handler
// (the engine is paused, so the server's locks are uncontended). This
// lets a direct-driven client provision blocks and flush bitmaps.
func (d *directCtx) RPC(node rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	h := d.pl.Handler(node)
	if h == nil {
		return nil, errDirectRPC
	}
	resp, _ := h(method, req)
	return resp, nil
}

func (d *directCtx) Node() rdma.NodeID                { return 0 }
func (d *directCtx) Now() time.Duration               { return 0 }
func (d *directCtx) Sleep(time.Duration)              {}
func (d *directCtx) UseCPU(core int, _ time.Duration) {}
func (d *directCtx) LocalMem() []byte                 { return nil }

// TestCachedGetZeroAlloc pins the cached GET hot path at zero heap
// allocations per op, for both validation protocols: the §3.5.1
// slot-address path ({KV read, slot word} in one doorbell) and the
// CacheValues path (a single 8-byte slot-word read served from the
// retained value copy). It also pins each path's verb cost.
func TestCachedGetZeroAlloc(t *testing.T) {
	for _, vals := range []bool{false, true} {
		name := "slotaddr"
		wantReads := uint64(2)
		if vals {
			name = "values"
			wantReads = 1
		}
		t.Run(name, func(t *testing.T) {
			tc := newTestCluster(t, func(cfg *Config) {
				cfg.CacheEntries = 1024
				cfg.CacheValues = vals
				cfg.TraceSample = -1 // sampled spans allocate
			})
			const n = 32
			tc.runClients(t, 30*time.Second, func(c *Client) {
				for i := 0; i < n; i++ {
					if err := c.Insert(key(i), val(i, 0)); err != nil {
						t.Errorf("insert %d: %v", i, err)
						return
					}
				}
			})

			// Drive a fresh client from the test goroutine; the engine
			// is paused, so memory is static.
			cli := tc.cl.NewClient()
			cli.Attach(&directCtx{pl: tc.pl})
			dst := make([]byte, 0, 1024)
			// Two passes: populate the cache, then warm the scratch
			// buffers (first hit grows the KV buffer / value copy).
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < n; i++ {
					got, err := cli.SearchAppend(dst[:0], key(i))
					if err != nil || !bytes.Equal(got, val(i, 0)) {
						t.Fatalf("warm search %d: err=%v", i, err)
					}
				}
			}

			// Steady-state hits must cost exactly wantReads read verbs
			// and no other verbs.
			r0, c0, w0 := cli.Stats.ReadsIssued, cli.Stats.CASIssued, cli.Stats.WritesIssued
			for i := 0; i < n; i++ {
				if _, err := cli.SearchAppend(dst[:0], key(i)); err != nil {
					t.Fatalf("hit search %d: %v", i, err)
				}
			}
			if reads := cli.Stats.ReadsIssued - r0; reads != wantReads*n {
				t.Fatalf("cache-hit reads = %d over %d ops, want %d/op", reads, n, wantReads)
			}
			if cli.Stats.CASIssued != c0 || cli.Stats.WritesIssued != w0 {
				t.Fatalf("cache-hit GET issued CAS/WRITE verbs")
			}

			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = key(i)
			}
			i := 0
			allocs := testing.AllocsPerRun(100, func() {
				got, err := cli.SearchAppend(dst[:0], keys[i%n])
				if err != nil || len(got) == 0 {
					t.Fatal("cache hit failed during measurement")
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("cache-hit GET allocates %.1f objects/op, want 0", allocs)
			}
			if cli.Stats.CacheHits == 0 {
				t.Fatal("no cache hits recorded")
			}
		})
	}
}

// TestClientMemoryBoundedUnderChurn cycles inserts, updates and
// deletes across a keyspace far larger than the cache bound and across
// several value size classes, then asserts every client-side structure
// that once grew without bound is within its configured budget: the
// entry cache, the hot-bucket mirror, the open-block map and the
// pending obsolete-mark buffer.
func TestClientMemoryBoundedUnderChurn(t *testing.T) {
	cfg := testConfig()
	cfg.Layout.StripeRows = 24
	cfg.Layout.PoolBlocks = 16
	cfg.BitmapFlushOps = 8
	cfg.ReclaimFree = 0.5
	cfg.CacheEntries = 128
	cfg.CacheNegative = true
	cfg.CacheValues = true
	cfg.OffloadBuckets = 32
	tc := newTestClusterCfg(t, cfg)
	const keys, cycles = 600, 6000
	var cli *Client
	tc.runClients(t, 3600*time.Second, func(c *Client) {
		cli = c
		rng := rand.New(rand.NewSource(42))
		sizes := []int{20, 150, 400, 900}
		for i := 0; i < cycles; i++ {
			k := key(rng.Intn(keys))
			switch rng.Intn(10) {
			case 0, 1, 2:
				v := bytes.Repeat([]byte{byte(i)}, sizes[rng.Intn(len(sizes))])
				if err := c.Update(k, v); err != nil {
					t.Errorf("cycle %d update: %v", i, err)
					return
				}
			case 3:
				if err := c.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("cycle %d delete: %v", i, err)
					return
				}
			default:
				if _, err := c.Search(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("cycle %d search: %v", i, err)
					return
				}
			}
		}
	})
	if got, cap := cli.cache.Len(), cli.cache.Cap(); got > cap {
		t.Errorf("cache entries %d exceed bound %d", got, cap)
	}
	if cli.cache.Cap() > cfg.CacheEntries+cfg.CacheEntries/2 {
		t.Errorf("cache capacity %d not near configured %d", cli.cache.Cap(), cfg.CacheEntries)
	}
	if cli.cache.Evictions() == 0 {
		t.Error("churn over 600 keys never evicted from a 128-entry cache")
	}
	if got := cli.mirror.Len(); got > cfg.OffloadBuckets {
		t.Errorf("mirror holds %d buckets, budget %d", got, cfg.OffloadBuckets)
	}
	if got := len(cli.open); got > maxOpenClasses {
		t.Errorf("open-block map holds %d classes, bound %d", got, maxOpenClasses)
	}
	if cli.pendingN > cfg.BitmapFlushOps {
		t.Errorf("pending obsolete marks %d exceed flush threshold %d", cli.pendingN, cfg.BitmapFlushOps)
	}
	// The footprint estimate must stay within a generous static budget:
	// per-entry overhead + retained key/value capacity, plus the mirror.
	_, bytesRes, _, _ := cli.CacheStats()
	budget := uint64(cli.cache.Cap())*(cacheEntryOverhead+64+2048) +
		uint64(cfg.OffloadBuckets)*(128+mirrorEntOverhead)
	if bytesRes > budget {
		t.Errorf("resident cache footprint %d exceeds budget %d", bytesRes, budget)
	}
}

// TestCacheCoherenceAcrossClients drives two clients in lockstep and
// checks that every caching shortcut is invalidated by the slot/version
// protocols: a cached value must not mask an update or a delete by
// another client, and a validated negative entry must not mask a later
// insert.
func TestCacheCoherenceAcrossClients(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.CacheEntries = 256
		cfg.CacheNegative = true
		cfg.CacheValues = true
	})
	k, k2 := []byte("coherent-key"), []byte("late-insert-key")
	v0, v1, v2 := val(0, 0), val(0, 1), val(0, 2)
	stage := 0
	wait := func(c *Client, s int) {
		for stage < s {
			c.ctx.Sleep(100 * time.Microsecond)
		}
	}
	writer := func(c *Client) {
		if err := c.Insert(k, v0); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		stage = 1
		wait(c, 2)
		if err := c.Update(k, v1); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		stage = 3
		wait(c, 4)
		if err := c.Delete(k); err != nil {
			t.Errorf("delete: %v", err)
			return
		}
		stage = 5
		wait(c, 6)
		if err := c.Insert(k2, v2); err != nil {
			t.Errorf("late insert: %v", err)
			return
		}
		stage = 7
	}
	reader := func(c *Client) {
		wait(c, 1)
		// Populate, then hit from cache.
		for i := 0; i < 2; i++ {
			if got, err := c.Search(k); err != nil || !bytes.Equal(got, v0) {
				t.Errorf("read v0 (pass %d): %v", i, err)
				return
			}
		}
		stage = 2
		wait(c, 3)
		if got, err := c.Search(k); err != nil || !bytes.Equal(got, v1) {
			t.Errorf("cached value masked an update: got %.16q err=%v", got, err)
			return
		}
		stage = 4
		wait(c, 5)
		if _, err := c.Search(k); !errors.Is(err, ErrNotFound) {
			t.Errorf("cached value masked a delete: err=%v", err)
			return
		}
		// Install a validated negative entry for k2 (first miss marks
		// the candidate, second snapshots versions, third is served
		// from the negative cache).
		for i := 0; i < 3; i++ {
			if _, err := c.Search(k2); !errors.Is(err, ErrNotFound) {
				t.Errorf("absent read %d: err=%v", i, err)
				return
			}
		}
		if c.Stats.CacheNegHits == 0 {
			t.Error("negative entry never served a hit")
		}
		stage = 6
		wait(c, 7)
		if got, err := c.Search(k2); err != nil || !bytes.Equal(got, v2) {
			t.Errorf("negative entry masked an insert: err=%v", err)
			return
		}
		if c.Stats.CacheHits == 0 {
			t.Error("reader never hit its cache")
		}
	}
	tc.runClients(t, 60*time.Second, writer, reader)
}

// TestRandomOpsWithCrashCachedClients is the model-based crash test
// with the full client index layer enabled — bounded cache, negative
// caching, value retention and hot-bucket offload, with an entry bound
// small enough that CLOCK eviction runs. Clients must agree with their
// models throughout an MN fail-stop and after recovery (run under
// -race in CI).
func TestRandomOpsWithCrashCachedClients(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.CacheEntries = 64
		cfg.CacheNegative = true
		cfg.CacheValues = true
		cfg.OffloadBuckets = 32
	})
	tc.cl.master.AddSpare()
	const clients, keysEach, ops = 3, 60, 400
	models := make([]map[string][]byte, clients)
	fns := make([]func(*Client), clients)
	for w := 0; w < clients; w++ {
		w := w
		models[w] = make(map[string][]byte)
		fns[w] = func(c *Client) {
			rng := rand.New(rand.NewSource(int64(4400 + w)))
			mkey := func(i int) []byte { return []byte(fmt.Sprintf("x%02d-%04d", w, i)) }
			for n := 0; n < ops; n++ {
				i := rng.Intn(keysEach)
				k := mkey(i)
				switch rng.Intn(10) {
				case 0, 1, 2:
					v := []byte(fmt.Sprintf("w%d-n%d", w, n))
					if err := c.Update(k, v); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					models[w][string(k)] = v
				case 3:
					err := c.Delete(k)
					_, exists := models[w][string(k)]
					if exists && err != nil {
						t.Errorf("delete live key: %v", err)
						return
					}
					if !exists && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete missing key: %v", err)
						return
					}
					delete(models[w], string(k))
				default:
					got, err := c.Search(k)
					want, exists := models[w][string(k)]
					if exists {
						if err != nil || !bytes.Equal(got, want) {
							t.Errorf("mid-crash search %s: err=%v", k, err)
							return
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Errorf("search deleted %s: err=%v", k, err)
						return
					}
				}
			}
			if c.Stats.CacheHits == 0 {
				t.Errorf("client %d never hit its cache", w)
			}
		}
	}
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := tc.pl.AddComputeNode()
		tc.cl.SpawnClient(cn, fmt.Sprintf("cached-chaos%d", i), func(c *Client) {
			fn(c)
			done++
		})
	}
	tc.run(500 * time.Microsecond)
	tc.cl.FailMN(2)
	for i := 0; i < 120000 && done < clients; i++ {
		tc.run(time.Millisecond)
	}
	if done < clients {
		t.Fatal("clients stalled after crash")
	}
	for i := 0; i < 30000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(2); ready {
			break
		}
	}
	// Final verification from a cold cached client.
	tc.runClients(t, 120*time.Second, func(c *Client) {
		for w := 0; w < clients; w++ {
			for k, want := range models[w] {
				got, err := c.Search([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("final %s: %v", k, err)
					return
				}
			}
		}
	})
}

// TestCacheUnitBoundAndRecycling exercises the cache data structure
// directly: the hard entry bound, CLOCK recycling of evicted slots
// (key and value capacity reuse), removal, the footprint gauge and the
// tombstone-rebuild path.
func TestCacheUnitBoundAndRecycling(t *testing.T) {
	cc := newClientCache(128)
	if cc.Cap() < 128 {
		t.Fatalf("cap %d < requested 128", cc.Cap())
	}
	mk := func(i int) ([]byte, uint64) {
		k := []byte(fmt.Sprintf("unit-key-%05d", i))
		var h uint64
		for _, b := range k {
			h = h*1099511628211 + uint64(b)
		}
		return k, h
	}
	for i := 0; i < 10*cc.Cap(); i++ {
		k, h := mk(i)
		e := cc.upsert(h, k)
		if e == nil {
			t.Fatal("upsert returned nil")
		}
		cc.storeVal(e, bytes.Repeat([]byte{byte(i)}, 64))
	}
	if cc.Len() > cc.Cap() {
		t.Fatalf("len %d exceeds cap %d", cc.Len(), cc.Cap())
	}
	if cc.Evictions() == 0 {
		t.Fatal("10x overcommit never evicted")
	}
	// Steady state: churning existing capacity must not allocate (keys
	// and values fit recycled slot storage). Keys, hashes and the value
	// are precomputed so the measurement covers the cache alone.
	type kh struct {
		k []byte
		h uint64
	}
	pre := make([]kh, 10*cc.Cap())
	for j := range pre {
		pre[j].k, pre[j].h = mk(j)
	}
	v := bytes.Repeat([]byte{2}, 64)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pre[i%len(pre)]
		e := cc.upsert(p.h, p.k)
		cc.storeVal(e, v)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state upsert+storeVal allocates %.1f objects, want 0", allocs)
	}
	// Remove half the live entries and reinsert: the table must absorb
	// tombstones (rebuild) without losing entries.
	removed := 0
	for j := 0; j < 10*cc.Cap() && removed < cc.Cap()/2; j++ {
		k, h := mk(j)
		if cc.lookup(h, k) != nil {
			cc.remove(h, k)
			removed++
		}
	}
	if cc.Len()+removed > cc.Cap() {
		t.Fatalf("len %d after removing %d", cc.Len(), removed)
	}
	for j := 0; j < 4*cc.Cap(); j++ {
		k, h := mk(100000 + j)
		cc.upsert(h, k)
	}
	if cc.Len() > cc.Cap() {
		t.Fatalf("len %d exceeds cap %d after rebuild churn", cc.Len(), cc.Cap())
	}
	// Every inserted key that is still live must be findable.
	found := 0
	for j := 0; j < 4*cc.Cap(); j++ {
		k, h := mk(100000 + j)
		if cc.lookup(h, k) != nil {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no recent keys resident after churn")
	}
}
