package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// Master is the reliable coordinator the failure model assumes (§2.1):
// it runs the lease-based membership service, triggers checkpoint
// rounds, and orchestrates MN recovery onto spare nodes. Its own fault
// tolerance (state-machine replication) is out of scope, as in the
// paper.
type Master struct {
	cl   *Cluster
	node rdma.NodeID

	mu     sync.Mutex
	round  uint64
	spares []rdma.NodeID
	failQ  []int
	// Reports collects recovery reports for harness inspection.
	Reports []*RecoveryReport
	// DetectDelay models the membership service's failure-detection
	// latency (lease expiry + notification).
	DetectDelay time.Duration
}

func newMaster(cl *Cluster, node rdma.NodeID) *Master {
	return &Master{cl: cl, node: node, DetectDelay: time.Millisecond}
}

// AddSpare registers an idle memory node the master may use to replace
// a crashed MN.
func (m *Master) AddSpare() rdma.NodeID {
	node := m.cl.pl.AddMemNode(rdma.MemNodeConfig{MemBytes: m.cl.L.MemBytes(), CPUCores: rdma.NumMNCores + m.cl.Cfg.ckptWorkers() + m.cl.Cfg.ecWorkers()})
	m.mu.Lock()
	m.spares = append(m.spares, node)
	m.mu.Unlock()
	return node
}

func (m *Master) start() {
	m.cl.pl.Spawn(m.node, "master-ckpt", m.ckptLoop)
	m.cl.pl.Spawn(m.node, "master-recovery", m.recoveryLoop)
}

// ckptLoop drives checkpoint rounds at the configured interval using
// the two-phase trigger (prepare on every MN, then snapshot; see
// Server.handleCkptPrepare for why two phases are needed).
func (m *Master) ckptLoop(ctx rdma.Ctx) {
	for {
		ctx.Sleep(m.cl.Cfg.CkptInterval)
		m.mu.Lock()
		m.round++
		round := m.round
		m.mu.Unlock()
		n := m.cl.Cfg.Layout.NumMNs
		var e enc
		e.u64(round)
		for mn := 0; mn < n; mn++ {
			if node, alive := m.cl.view.nodeOf(mn); alive {
				ctx.RPC(node, methodCkptPrepare, e.b) //nolint:errcheck // failed MN joins next round
			}
		}
		for mn := 0; mn < n; mn++ {
			if node, alive := m.cl.view.nodeOf(mn); alive {
				ctx.RPC(node, methodCkptSnapshot, e.b) //nolint:errcheck // failed MN joins next round
			}
		}
	}
}

// recoveryLoop watches for failure notifications and re-serves crashed
// MNs on spare nodes.
func (m *Master) recoveryLoop(ctx rdma.Ctx) {
	for {
		ctx.Sleep(m.DetectDelay)
		m.mu.Lock()
		if len(m.failQ) == 0 || len(m.spares) == 0 {
			m.mu.Unlock()
			continue
		}
		mn := m.failQ[0]
		m.failQ = m.failQ[1:]
		spare := m.spares[0]
		m.spares = m.spares[1:]
		m.mu.Unlock()
		m.cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "fail.detect", MN: mn,
			Note: fmt.Sprintf("recovering onto node %d", spare)})
		if m.cl.pl.Memory(spare) == nil {
			// The spare itself died while idle; try the next one.
			m.mu.Lock()
			m.failQ = append([]int{mn}, m.failQ...)
			m.mu.Unlock()
			continue
		}
		m.recoverOnto(ctx, mn, spare)
	}
}

// recoverOnto starts a new server for logical MN mn on the spare node
// and runs tiered recovery there (§3.4.1). The master blocks until the
// Index Area is back (functionality restored); tier 3 continues in the
// background on the new node.
func (m *Master) recoverOnto(ctx rdma.Ctx, mn int, spare rdma.NodeID) {
	cl := m.cl
	cl.view.mu.Lock()
	cl.view.node[mn] = spare
	cl.view.mu.Unlock()

	cl.pl.Spawn(spare, "recover-mn", func(rctx rdma.Ctx) {
		rep := runRecovery(rctx, cl, mn)
		if rep == nil {
			return // the spare itself died mid-recovery
		}
		m.mu.Lock()
		m.Reports = append(m.Reports, rep)
		m.mu.Unlock()
	})
	// Wait (politely, in virtual time) for tier-2 completion before
	// accepting the next failure. If the spare itself fail-stops, give
	// up on this attempt — FailMN has already re-queued the logical MN
	// and a later loop iteration retries with another spare.
	for {
		ctx.Sleep(500 * time.Microsecond)
		node, failed, idxReady, _ := cl.view.snapshotMN(mn)
		if !failed && idxReady {
			return
		}
		if node != spare || cl.pl.Memory(spare) == nil {
			return
		}
	}
}

// FailMN injects a fail-stop MN crash: the node's memory is lost, its
// server daemons stop, clients see ErrNodeFailed, and the master is
// notified (as the lease-based membership service would, §3.4).
func (cl *Cluster) FailMN(mn int) {
	// Read the server and node under view.mu (recovery publishes the
	// replacement server under the same lock), and mark the MN failed
	// before tearing anything down so clients stop targeting it first.
	cl.view.mu.Lock()
	srv := cl.servers[mn]
	node := cl.view.node[mn]
	cl.view.failed[mn] = true
	cl.view.indexReady[mn] = false
	cl.view.blocksReady[mn] = false
	cl.view.epoch++
	cl.view.mu.Unlock()
	srv.stop()
	cl.pl.Fail(node)
	if cl.master != nil {
		cl.master.mu.Lock()
		cl.master.failQ = append(cl.master.failQ, mn)
		cl.master.mu.Unlock()
	}
}

// viewSnapshot is used by recovery code to detect that its own node
// was re-assigned or fail-stopped.
func (v *view) nodeIs(mn int, node rdma.NodeID) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.node[mn] == node
}

// ReportList returns a snapshot of the recovery reports collected so
// far. On wall-clock fabrics the Reports field itself races with the
// recovery process; harnesses must use this accessor instead.
func (m *Master) ReportList() []*RecoveryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*RecoveryReport(nil), m.Reports...)
}

// MNState reports a logical MN's recovery state (for harnesses).
func (cl *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	_, f, i, b := cl.view.snapshotMN(mn)
	return f, i, b
}
