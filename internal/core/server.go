package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/rdma"
)

// Server is the per-MN management process (§3.1): it owns space
// allocation, free-bitmap bookkeeping, the differential checkpoint
// pipeline, the offline erasure encoder and delta-based reclamation.
// It never touches KV request data — clients do all of that with
// one-sided verbs.
//
// The server's only durable state is pool memory itself (records in
// the Meta Area, the index version word); everything else is derived,
// so a crashed MN's replacement server rebuilds from the meta replica.
type Server struct {
	cl   *Cluster
	mn   int // logical MN id
	node rdma.NodeID
	mem  []byte
	// memMu serialises direct local-memory access against the
	// fabric's remote-verb executor (no-op on simulated fabrics).
	// Lock order: memMu before mu, everywhere.
	memMu sync.Locker

	mu       sync.Mutex // guards queues and alloc state; never held across verbs
	dataRows []int      // stripe rows where this MN holds the data block
	allocCur int        // rotating allocation cursor into dataRows
	encodeQ  []encodeJob
	applyQ   []applyJob
	snapshot uint64 // pending checkpoint round (0 = none)
	dirty    map[int]bool
	stopped  bool

	// Segment-parallel checkpoint pipeline state (ckpt.go).
	ckptDirty    []atomic.Uint64         // per-segment dirty bitmap, set by the write observer
	ckptTracked  bool                    // observer wired; else every segment ships every round
	bvAdd        func(off, delta uint64) // fabric-synchronised bucket-version bump; nil when unsupported
	ckptResync   bool                    // recovered server: first round must overwrite, not XOR
	ckptFr       *ckptFramer
	ckptApplier  *ckptApplier
	ckptShippers []*ckptShipper
	ckptApplySeq []uint64 // per hosted slot: seq of last applied frame (guarded by mu)
	// Worker-pool round state (guarded by ckptWorkMu): jobs 0..N-1 of
	// ckptFr.jobs, Next the first unclaimed, Left the unfinished count,
	// Ns the CPU time the pool spent on the round.
	ckptWorkMu   sync.Mutex
	ckptWorkN    int
	ckptWorkNext int
	ckptWorkLeft int
	ckptWorkNs   uint64

	// ec fans banded erasure kernels (batched delta apply) out over
	// the erasure worker cores (ecpool.go). Single consumer: the
	// encoder loop.
	ec *ecPool

	// reclaimed counts blocks handed out through delta-based
	// reclamation (observability for the reclamation experiments).
	reclaimed int
	// bitsApplied counts accepted free-bitmap updates (observability).
	bitsApplied int
	// Checkpoint/encode pipeline counters (observability; guarded by
	// mu like the queues they describe).
	ckptRounds       uint64 // differential checkpoint rounds shipped
	ckptBytes        uint64 // compressed checkpoint payload bytes produced
	ckptRawBytes     uint64 // uncompressed bytes the shipped segments represent
	ckptApplies      uint64 // staged checkpoint frames applied to hosted copies
	ckptShipFailures uint64 // frames a host missed (transport failure or torn apply)
	ckptDirtySegs    uint64 // gauge: segments dirty at the last shipped round
	ckptSegsShipped  uint64 // cumulative segments shipped across all rounds
	ckptCPUNs        uint64 // cumulative checkpoint pipeline CPU (send+recv), ns
	encodeJobs       uint64 // DELTA blocks folded into the local parity
	encodeDrops      uint64 // DELTA blocks discarded without encoding
	ecEncodeBytes    uint64 // delta bytes folded into parity by erasure kernels
	ecEncodeNs       uint64 // elapsed time of parity-apply passes, ns
	ecEncodeBatches  uint64 // batched parity-apply passes (deltas/pass = jobs/batches)
	ecDecodeBytes    uint64 // shard bytes consumed reconstructing lost blocks
	ecDecodeNs       uint64 // elapsed time of reconstruct compute, ns
}

type encodeJob struct {
	stripe uint32
	xorID  uint8
	drop   bool // discard the delta instead of encoding it
}

type applyJob struct {
	slot     int
	version  uint64
	frameLen int
}

func newServer(cl *Cluster, mn int, node rdma.NodeID) *Server {
	return &Server{cl: cl, mn: mn, node: node, dirty: make(map[int]bool)}
}

// start derives in-memory state, installs the RPC handler and spawns
// the daemons: the paper's four-core MN assignment (encoder, ckpt
// send, ckpt recv, meta sync) plus the checkpoint worker pool and one
// shipper per checkpoint host (ckpt.go).
func (s *Server) start() {
	s.mem = s.cl.pl.Memory(s.node)
	s.memMu = s.cl.pl.MemMutex(s.node)
	l := s.cl.L
	// A nonzero index version before seeding means this server was
	// recovered onto a replacement node: the checkpoint hosts still
	// hold pre-crash copies its zeroed reference snapshot must not be
	// XOR-ed against (ckptSendLoop overwrites instead).
	s.ckptResync = s.indexVersion() != 0
	// The live index version starts at 1 so that sealed blocks are
	// always distinguishable from unfilled ones (IndexVersion 0,
	// §3.2.3). Recovery re-seeds it from the checkpoint version.
	if s.indexVersion() == 0 {
		s.setIndexVersion(1)
	}
	s.dataRows = s.dataRows[:0]
	for row := 0; row < l.Cfg.StripeRows; row++ {
		if _, parity := l.IsParityMN(uint32(row), s.mn); !parity {
			s.dataRows = append(s.dataRows, row)
		}
	}
	segs := l.CkptSegCount()
	s.ckptDirty = make([]atomic.Uint64, (segs+63)/64)
	if la, ok := s.cl.pl.(rdma.LocalAtomics); ok {
		s.bvAdd = la.LocalAdd64(s.node)
	}
	if wo, ok := s.cl.pl.(rdma.WriteObserver); ok {
		s.ckptTracked = wo.SetWriteObserver(s.node, s.observeIndexWrite)
	}
	s.ckptFr = newCkptFramer(l, s.cl.Cfg.Rates, s.cl.Cfg.CkptRaw)
	s.ckptApplier = newCkptApplier(l)
	s.ckptApplySeq = make([]uint64, l.Cfg.CkptHosts)
	// Shippers must exist before any daemon spawns: on wall-clock
	// fabrics Spawn starts the goroutine immediately.
	s.ckptShippers = make([]*ckptShipper, l.Cfg.CkptHosts)
	for h := range s.ckptShippers {
		s.ckptShippers[h] = &ckptShipper{}
	}
	if t := s.cl.tracer; t != nil {
		s.cl.pl.SetHandler(s.node, s.tracedHandler(t))
	} else {
		s.cl.pl.SetHandler(s.node, s.handle)
	}
	name := fmt.Sprintf("mn%d", s.mn)
	s.cl.pl.Spawn(s.node, name+"-encoder", s.encoderLoop)
	s.cl.pl.Spawn(s.node, name+"-ckptsend", s.ckptSendLoop)
	s.cl.pl.Spawn(s.node, name+"-ckptrecv", s.ckptRecvLoop)
	s.cl.pl.Spawn(s.node, name+"-metasync", s.metaSyncLoop)
	for h := range s.ckptShippers {
		s.cl.pl.Spawn(s.node, fmt.Sprintf("%s-ckptship%d", name, h), s.ckptShipLoop(h))
	}
	if w := s.cl.Cfg.ckptWorkers(); w > 0 && segs > 1 {
		for i := 0; i < w; i++ {
			s.cl.pl.Spawn(s.node, fmt.Sprintf("%s-ckptworker%d", name, i), s.ckptWorkerLoop(i))
		}
	}
	// The erasure worker pool models multi-core elapsed time, so its
	// sleep-poll workers exist only in virtual time; on wall-clock
	// fabrics the pool stays inert (fan-outs run inline) and the
	// erasure package's goroutine pool provides the real parallelism.
	ecw := 0
	if rdma.IsVirtual(s.cl.pl) {
		ecw = s.cl.Cfg.ecWorkers()
	}
	s.ec = newECPool(ecw)
	for i := 0; i < s.ec.workers; i++ {
		core := rdma.CoreECWorker(s.cl.Cfg.ckptWorkers(), i)
		s.cl.pl.Spawn(s.node, fmt.Sprintf("%s-ecworker%d", name, i), s.ec.workerLoop(core))
	}
}

// stop makes the daemons wind down (used at failure injection).
func (s *Server) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.ec.close()
}

func (s *Server) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// --- direct local-memory accessors ---

func (s *Server) record(b int) layout.Record {
	off := s.cl.L.RecordOff(b)
	return layout.DecodeRecord(s.mem[off : off+layout.RecordSize])
}

// putRecord stores a record and marks the block dirty for meta
// replication.
func (s *Server) putRecord(b int, r *layout.Record) {
	off := s.cl.L.RecordOff(b)
	layout.EncodeRecord(s.mem[off:off+layout.RecordSize], r)
	s.dirty[b] = true
}

func (s *Server) bitmap(b int) []byte {
	off := s.cl.L.BitmapOff(b)
	return s.mem[off : off+s.cl.L.BitmapBytes()]
}

func (s *Server) block(b int) []byte {
	off := s.cl.L.BlockOff(b)
	return s.mem[off : off+s.cl.L.Cfg.BlockSize]
}

func (s *Server) indexVersion() uint64 {
	return binary.LittleEndian.Uint64(s.mem[s.cl.L.IndexVersionOff():])
}

func (s *Server) setIndexVersion(v uint64) {
	binary.LittleEndian.PutUint64(s.mem[s.cl.L.IndexVersionOff():], v)
}

// freePoolBlock finds a free pool block, or -1. Caller holds mu.
func (s *Server) freePoolBlock() int {
	l := s.cl.L
	for b := l.Cfg.StripeRows; b < l.Cfg.BlocksPerMN(); b++ {
		if s.record(b).Role == layout.RoleFree {
			return b
		}
	}
	return -1
}

// freeDataRowFrac returns the fraction of this MN's data rows still
// unallocated. Caller holds mu.
func (s *Server) freeDataRowFrac() float64 {
	free := 0
	for _, row := range s.dataRows {
		if s.record(row).Role == layout.RoleFree {
			free++
		}
	}
	return float64(free) / float64(len(s.dataRows))
}

// ServerStats is a snapshot of one MN server's management-plane
// counters and pool occupancy: the store-level gauges the admin Stats
// RPC and the daemon's /metrics endpoint expose.
type ServerStats struct {
	MN           int
	IndexVersion uint64
	Reclaimed    uint64 // blocks handed out through delta-based reclamation
	BitsApplied  uint64 // accepted free-bitmap updates
	CkptRounds   uint64 // differential checkpoint rounds shipped
	CkptBytes    uint64 // compressed checkpoint payload bytes produced
	CkptApplies  uint64 // staged checkpoint frames applied to hosted copies
	EncodeJobs   uint64 // DELTA blocks folded into the local parity
	EncodeDrops  uint64 // DELTA blocks discarded without encoding
	EncodeQueue  uint64 // encode jobs currently queued
	PoolBlocks   uint64 // delta/copy pool blocks total
	PoolFree     uint64 // pool blocks currently FREE
	PoolDelta    uint64 // pool blocks currently DELTA
	PoolCopy     uint64 // pool blocks currently COPY (reclamation backups)
	PoolData     uint64 // pool blocks serving as reclaimed DATA

	CkptShipFailures uint64 // checkpoint frames a host missed (transport or torn apply)
	CkptDirtySegs    uint64 // gauge: segments dirty at the last shipped round
	CkptSegsShipped  uint64 // cumulative segments shipped across all rounds
	CkptRawBytes     uint64 // uncompressed bytes the shipped segments represent
	CkptCPUNs        uint64 // cumulative checkpoint pipeline CPU (send+recv), ns

	ECEncodeBytes   uint64 // delta bytes folded into parity through the EC pool
	ECEncodeNs      uint64 // virtual elapsed time of encode fan-outs, ns
	ECEncodeBatches uint64 // batched parity folds (stripes per encoder pass)
	ECDecodeBytes   uint64 // shard bytes read by reconstruct fan-outs
	ECDecodeNs      uint64 // virtual elapsed time of reconstruct fan-outs, ns

	// Client index-cache aggregate of the cluster handle this server
	// belongs to (zero on a daemon that runs no clients; DESIGN.md §12).
	CacheHits          uint64
	CacheMisses        uint64
	CacheNegHits       uint64
	CacheEvictions     uint64
	CacheMirrorHits    uint64
	CacheMirrorNegHits uint64
	CacheEntries       uint64 // gauge: allocated entries across live clients
	CacheBytes         uint64 // gauge: cache + mirror resident bytes
	CacheOffloaded     uint64 // gauge: mirrored buckets across live clients

	// Client write-path aggregate of the same handle (DESIGN.md §13).
	WriteFused     uint64 // commits fused into the placement doorbell
	WriteFallbacks uint64 // two-phase commit attempts, all reasons
	PrefetchHits   uint64 // block refills served by the prefetch worker
	PrefetchMisses uint64 // refills that fell back to a synchronous alloc
	DeltaSkips     uint64 // delta copies skipped (dead target or lost write)
}

// Stats snapshots the server's counters and scans pool occupancy. On a
// server that was never started (no local memory, e.g. a remote MN seen
// from a client process) only the MN id is filled.
func (s *Server) Stats() ServerStats {
	if s.memMu == nil || s.mem == nil {
		return ServerStats{MN: s.mn}
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	return s.statsLocked()
}

// statsLocked is Stats for callers already holding memMu (the RPC
// dispatch locks it around every handler).
func (s *Server) statsLocked() ServerStats {
	l := s.cl.L
	st := ServerStats{MN: s.mn, IndexVersion: s.indexVersion()}
	for b := l.Cfg.StripeRows; b < l.Cfg.BlocksPerMN(); b++ {
		st.PoolBlocks++
		switch s.record(b).Role {
		case layout.RoleFree:
			st.PoolFree++
		case layout.RoleDelta:
			st.PoolDelta++
		case layout.RoleCopy:
			st.PoolCopy++
		case layout.RoleData:
			st.PoolData++
		}
	}
	s.mu.Lock()
	st.Reclaimed = uint64(s.reclaimed)
	st.BitsApplied = uint64(s.bitsApplied)
	st.CkptRounds = s.ckptRounds
	st.CkptBytes = s.ckptBytes
	st.CkptApplies = s.ckptApplies
	st.EncodeJobs = s.encodeJobs
	st.EncodeDrops = s.encodeDrops
	st.EncodeQueue = uint64(len(s.encodeQ))
	st.CkptShipFailures = s.ckptShipFailures
	st.CkptDirtySegs = s.ckptDirtySegs
	st.CkptSegsShipped = s.ckptSegsShipped
	st.CkptRawBytes = s.ckptRawBytes
	st.CkptCPUNs = s.ckptCPUNs
	st.ECEncodeBytes = s.ecEncodeBytes
	st.ECEncodeNs = s.ecEncodeNs
	st.ECEncodeBatches = s.ecEncodeBatches
	st.ECDecodeBytes = s.ecDecodeBytes
	st.ECDecodeNs = s.ecDecodeNs
	s.mu.Unlock()
	cs := s.cl.cacheMet.Snapshot()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheNegHits = cs.NegHits
	st.CacheEvictions = cs.Evictions
	st.CacheMirrorHits = cs.MirrorHits
	st.CacheMirrorNegHits = cs.MirrorNegHits
	st.CacheEntries = uint64(cs.Entries)
	st.CacheBytes = uint64(cs.Bytes)
	st.CacheOffloaded = uint64(cs.Offloaded)
	ws := s.cl.writeMet.Snapshot()
	st.WriteFused = ws.Fused
	st.WriteFallbacks = ws.Fallbacks()
	st.PrefetchHits = ws.PrefetchHits
	st.PrefetchMisses = ws.PrefetchMisses
	st.DeltaSkips = ws.DeltaSkips
	return st
}

// addECTally folds erasure compute performed on this server's behalf
// outside its own processes (tier-3 recovery decode) into its
// counters.
func (s *Server) addECTally(t *ecTally) {
	if t == nil {
		return
	}
	s.mu.Lock()
	s.ecEncodeBytes += t.encodeBytes
	s.ecEncodeNs += t.encodeNs
	s.ecDecodeBytes += t.decodeBytes
	s.ecDecodeNs += t.decodeNs
	s.mu.Unlock()
}

// --- RPC dispatch ---

// methodNames gives each RPC method a static span name, so recording
// a handler span never formats or allocates.
var methodNames = [...]string{
	methodAllocBlock:   "rpc.alloc_block",
	methodAllocDelta:   "rpc.alloc_delta",
	methodSealBlock:    "rpc.seal_block",
	methodEncodeDelta:  "rpc.encode_delta",
	methodFreeBits:     "rpc.free_bits",
	methodQueryOwned:   "rpc.query_owned",
	methodCkptPrepare:  "rpc.ckpt_prepare",
	methodCkptSnapshot: "rpc.ckpt_snapshot",
	methodApplyCkpt:    "rpc.apply_ckpt",
	methodPing:         "rpc.ping",
	methodDropDelta:    "rpc.drop_delta",
	methodAdminFail:    "rpc.admin_fail",
	methodAdminChaos:   "rpc.admin_chaos",
	methodAdminStats:   "rpc.admin_stats",
	methodAdminTrace:   "rpc.admin_trace",
}

func methodName(m uint8) string {
	if int(m) < len(methodNames) && methodNames[m] != "" {
		return methodNames[m]
	}
	return "rpc.unknown"
}

// tracedHandler wraps the RPC dispatch with sampled span recording.
// Handlers run on fabric executor goroutines with no rdma.Ctx, so
// handler spans are wall-clock both ways: Start/End mirror
// WallStart/WallEnd (on tcpnet the fabric clock is wall time anyway;
// on simnet handler spans sit on the wall timeline while the modelled
// CPU cost is what the engine charges).
func (s *Server) tracedHandler(t *obs.Tracer) rdma.Handler {
	tid := t.NewTid()
	return func(method uint8, req []byte) ([]byte, time.Duration) {
		if !t.Sampled() {
			return s.handle(method, req)
		}
		wallStart := t.WallNow()
		resp, cpu := s.handle(method, req)
		wallEnd := t.WallNow()
		t.Record(obs.Span{
			Kind: obs.SpanPhase, Node: int32(s.node), Tid: tid,
			Name: methodName(method), Detail: "handler",
			Start: time.Duration(wallStart), End: time.Duration(wallEnd),
			WallStart: wallStart, WallEnd: wallEnd,
		})
		return resp, cpu
	}
}

func (s *Server) handle(method uint8, req []byte) ([]byte, time.Duration) {
	s.memMu.Lock()
	defer s.memMu.Unlock()
	switch method {
	case methodAllocBlock:
		return s.handleAllocBlock(req)
	case methodAllocDelta:
		return s.handleAllocDelta(req)
	case methodSealBlock:
		return s.handleSealBlock(req)
	case methodEncodeDelta, methodDropDelta:
		return s.handleEncodeDelta(method, req)
	case methodFreeBits:
		return s.handleFreeBits(req)
	case methodQueryOwned:
		return s.handleQueryOwned(req)
	case methodCkptPrepare:
		return s.handleCkptPrepare(req)
	case methodCkptSnapshot:
		return s.handleCkptSnapshot(req)
	case methodApplyCkpt:
		return s.handleApplyCkpt(req)
	case methodPing:
		return []byte{stOK}, 200 * time.Nanosecond
	case methodAdminFail:
		return s.handleAdminFail(req)
	case methodAdminChaos:
		return s.handleAdminChaos(req)
	case methodAdminStats:
		return s.handleAdminStats(req)
	case methodAdminTrace:
		return s.handleAdminTrace(req)
	}
	return []byte{stBadArg}, time.Microsecond
}

// handleAllocBlock allocates a DATA block (fresh, or a reclaimed one
// when space runs low, §3.3.3).
func (s *Server) handleAllocBlock(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	cliID := d.u16()
	class := d.u8()
	cpu := 2 * time.Microsecond
	s.mu.Lock()
	defer s.mu.Unlock()

	// Delta-based reclamation path: when free rows drop below the
	// threshold, hand out the most-obsolete sealed block instead.
	if s.freeDataRowFrac() < s.cl.Cfg.ReclaimFree {
		if b, copyIdx, ok := s.pickReclaim(class); ok {
			rec := s.record(b)
			old := s.bitmap(b)
			oldBits := append([]byte(nil), old...)
			// Back up the old contents for client-crash recovery.
			copy(s.block(copyIdx), s.block(b))
			cpu += cpuTime(int(s.cl.L.Cfg.BlockSize), s.cl.Cfg.Rates.Memcpy)
			crec := layout.Record{Role: layout.RoleCopy, Valid: true, XORID: rec.XORID,
				SizeClass: rec.SizeClass, StripeID: rec.StripeID, CliID: cliID}
			s.putRecord(copyIdx, &crec)
			// Reset the block to unfilled state.
			for i := range old {
				old[i] = 0
			}
			s.dirty[b] = true
			rec.IndexVersion = 0
			rec.CliID = cliID
			s.putRecord(b, &rec)
			s.reclaimed++
			var e enc
			e.u8(stOK)
			e.u32(uint32(b))
			e.u32(rec.StripeID)
			e.u8(rec.XORID)
			e.u8(1) // reused
			e.u32(uint32(copyIdx))
			e.bytes(oldBits)
			return e.b, cpu
		}
	}

	// Fresh allocation, rotating over this MN's data rows.
	for i := 0; i < len(s.dataRows); i++ {
		row := s.dataRows[(s.allocCur+i)%len(s.dataRows)]
		rec := s.record(row)
		if rec.Role != layout.RoleFree {
			continue
		}
		s.allocCur = (s.allocCur + i + 1) % len(s.dataRows)
		stripe := uint32(row)
		rec = layout.Record{
			Role: layout.RoleData, Valid: true,
			XORID:     uint8(s.cl.L.XORIDOf(stripe, s.mn)),
			SizeClass: class, StripeID: stripe, CliID: cliID,
		}
		s.putRecord(row, &rec)
		var e enc
		e.u8(stOK)
		e.u32(uint32(row))
		e.u32(stripe)
		e.u8(rec.XORID)
		e.u8(0) // fresh
		e.u32(^uint32(0))
		e.bytes(nil)
		return e.b, cpu
	}
	return []byte{stNoSpace}, cpu
}

// pickReclaim selects the sealed data block with the highest obsolete
// fraction at or above the threshold, of the right size class, and a
// free pool block for its backup copy. Caller holds mu.
func (s *Server) pickReclaim(class uint8) (block, copyIdx int, ok bool) {
	best, bestCount := -1, 0
	for _, row := range s.dataRows {
		rec := s.record(row)
		if rec.Role != layout.RoleData || rec.IndexVersion == 0 || rec.SizeClass != class {
			continue
		}
		slots := s.cl.L.KVSlotsPerBlock(rec.SizeClass)
		cnt := layout.BitmapCount(s.bitmap(row)[:(slots+7)/8])
		if float64(cnt) >= s.cl.Cfg.ReclaimObsolete*float64(slots) && cnt > bestCount {
			best, bestCount = row, cnt
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	copyIdx = s.freePoolBlock()
	if copyIdx < 0 {
		return 0, 0, false
	}
	return best, copyIdx, true
}

// handleAllocDelta allocates a DELTA block on this parity MN for
// (stripe, xorID) and records it in the parity record (Figure 6 ①).
func (s *Server) handleAllocDelta(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	cliID := d.u16()
	stripe := d.u32()
	xorID := d.u8()
	class := d.u8()
	cpu := 2 * time.Microsecond
	s.mu.Lock()
	defer s.mu.Unlock()

	pidx, ok := s.cl.L.IsParityMN(stripe, s.mn)
	if !ok || int(stripe) >= s.cl.L.Cfg.StripeRows || int(xorID) >= s.cl.code.K() {
		return []byte{stBadArg}, cpu
	}
	prec := s.record(int(stripe))
	if prec.Role == layout.RoleFree {
		prec = layout.Record{Role: layout.RoleParity, Valid: true,
			StripeID: stripe, ParityIdx: uint8(pidx)}
	}
	if prec.Role != layout.RoleParity {
		return []byte{stConflict}, cpu
	}
	// Idempotent: a crashed-and-restarted client re-attaches to the
	// existing delta block.
	if prec.DeltaAddr[xorID] != 0 {
		_, off := layout.UnpackAddr(prec.DeltaAddr[xorID])
		b := s.cl.L.BlockOfOff(off)
		var e enc
		e.u8(stOK)
		e.u32(uint32(b))
		return e.b, cpu
	}
	b := s.freePoolBlock()
	if b < 0 {
		return []byte{stNoSpace}, cpu
	}
	drec := layout.Record{Role: layout.RoleDelta, Valid: true, XORID: xorID,
		SizeClass: class, StripeID: stripe, CliID: cliID}
	s.putRecord(b, &drec)
	prec.DeltaAddr[xorID] = layout.PackAddr(uint16(s.mn), s.cl.L.BlockOff(b))
	prec.XORMap &^= 1 << xorID
	s.putRecord(int(stripe), &prec)
	var e enc
	e.u8(stOK)
	e.u32(uint32(b))
	return e.b, cpu
}

// handleSealBlock stamps the current Index Version into a filled DATA
// block's record (§3.2.3) and releases the reclamation backup copy, if
// any.
func (s *Server) handleSealBlock(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	b := int(d.u32())
	copyIdx := d.u32()
	cpu := time.Microsecond
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.record(b)
	if rec.Role != layout.RoleData {
		return []byte{stBadArg}, cpu
	}
	rec.IndexVersion = s.indexVersion()
	s.putRecord(b, &rec)
	if copyIdx != ^uint32(0) {
		cb := int(copyIdx)
		crec := s.record(cb)
		if crec.Role == layout.RoleCopy {
			blk := s.block(cb)
			for i := range blk {
				blk[i] = 0
			}
			cpu += cpuTime(len(blk), s.cl.Cfg.Rates.Memcpy)
			free := layout.Record{}
			s.putRecord(cb, &free)
		}
	}
	return []byte{stOK}, cpu
}

// handleEncodeDelta enqueues background encoding (or dropping) of the
// DELTA block of (stripe, xorID) into this MN's PARITY block.
func (s *Server) handleEncodeDelta(method uint8, req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	stripe := d.u32()
	xorID := d.u8()
	s.mu.Lock()
	s.encodeQ = append(s.encodeQ, encodeJob{stripe: stripe, xorID: xorID, drop: method == methodDropDelta})
	s.mu.Unlock()
	return []byte{stOK}, 500 * time.Nanosecond
}

// handleFreeBits applies a batch of obsolete-KV markings to a block's
// free bitmap (§3.3.3 ①).
func (s *Server) handleFreeBits(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	b := int(d.u32())
	n := int(d.u16())
	if b < 0 || b >= s.cl.L.Cfg.BlocksPerMN() {
		return []byte{stBadArg}, time.Microsecond
	}
	// Every arriving mark is valid, even across block reuse: a slot is
	// only handed out as writable when its previous pair's mark was
	// already applied (that is what made the block a reclamation
	// candidate), and each overwrite generates exactly one mark — by
	// the single client whose CAS obsoleted the pair — so a mark can
	// never target a slot whose current tenant is live.
	s.mu.Lock()
	bm := s.bitmap(b)
	for i := 0; i < n; i++ {
		bit := int(d.u32())
		if bit/8 >= len(bm) {
			continue
		}
		s.bitsApplied++
		layout.BitmapSet(bm, bit)
	}
	s.dirty[b] = true
	s.mu.Unlock()
	return []byte{stOK}, 500*time.Nanosecond + time.Duration(n)*10*time.Nanosecond
}

// handleQueryOwned lists this MN's unfilled DATA blocks, DELTA blocks
// and COPY blocks owned by a client (CN-crash recovery, §3.4.2).
func (s *Server) handleQueryOwned(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	cliID := d.u16()
	s.mu.Lock()
	defer s.mu.Unlock()
	var e enc
	e.u8(stOK)
	countAt := len(e.b)
	e.u32(0)
	count := 0
	for b := 0; b < s.cl.L.Cfg.BlocksPerMN(); b++ {
		rec := s.record(b)
		if rec.CliID != cliID {
			continue
		}
		include := (rec.Role == layout.RoleData && rec.IndexVersion == 0) ||
			rec.Role == layout.RoleDelta || rec.Role == layout.RoleCopy
		if !include {
			continue
		}
		e.u32(uint32(b))
		e.u8(uint8(rec.Role))
		e.u32(rec.StripeID)
		e.u8(rec.XORID)
		e.u8(rec.SizeClass)
		count++
	}
	binary.LittleEndian.PutUint32(e.b[countAt:], uint32(count))
	return e.b, 2 * time.Microsecond
}

// handleCkptPrepare is phase one of a checkpoint round: the Index
// Version advances to round+1 on every MN *before* any MN snapshots,
// so a block sealed after any snapshot of round r carries a version
// > r and is never skipped by recovery. (Single-phase triggering has a
// window where a commit lands after MN i's snapshot while MN j still
// seals with the old version; see DESIGN.md deviations.)
func (s *Server) handleCkptPrepare(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	round := d.u64()
	s.mu.Lock()
	if round+1 > s.indexVersion() {
		s.setIndexVersion(round + 1)
	}
	s.mu.Unlock()
	return []byte{stOK}, 500 * time.Nanosecond
}

// handleCkptSnapshot is phase two: it hands the round to the
// checkpoint-send daemon. If the previous round is still in flight the
// new round supersedes it (the paper's "interval dynamically
// increases" behaviour for large indexes).
func (s *Server) handleCkptSnapshot(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	round := d.u64()
	s.mu.Lock()
	if round > s.snapshot {
		s.snapshot = round
	}
	s.mu.Unlock()
	return []byte{stOK}, 500 * time.Nanosecond
}

// handleApplyCkpt records that owner's checkpoint frame has landed in
// our staging area (Figure 3 ④ happens on our ckpt-recv core). The
// response carries the sequence of the last frame actually applied to
// this slot, which is how the owner learns about frames that were lost
// after a successful notify (torn in staging before the recv core got
// to them) and owes the host overwrite records.
func (s *Server) handleApplyCkpt(req []byte) ([]byte, time.Duration) {
	d := dec{b: req}
	owner := int(d.u8())
	version := d.u64()
	frameLen := int(d.u32())
	slot := s.cl.L.CkptSlotFor(s.mn, owner)
	if slot < 0 || frameLen < layout.CkptFrameHeaderSize ||
		uint64(frameLen) > s.cl.L.CkptStagingBytes() {
		return []byte{stBadArg}, time.Microsecond
	}
	s.mu.Lock()
	s.applyQ = append(s.applyQ, applyJob{slot: slot, version: version, frameLen: frameLen})
	lastApplied := s.ckptApplySeq[slot]
	s.mu.Unlock()
	e := enc{b: []byte{stOK}}
	e.u64(lastApplied)
	return e.b, 500 * time.Nanosecond
}

// --- daemons ---

// encoderLoop is the erasure-coding core (§3.3.2): it drains encode
// jobs stripe by stripe, folding all of a stripe's queued DELTA blocks
// into the local PARITY block in one batched pass (the erasure
// package's ApplyDeltas — one read of the parity for the whole batch
// instead of one per delta), then freeing the consumed blocks. Record
// and parity mutations happen in one critical section so degraded
// readers never observe a delta both encoded and pending; on simnet
// that atomicity requires no sim operation inside the section, so the
// fold's modelled CPU cost is charged afterwards — fanned out over the
// EC worker cores so the virtual elapsed time shrinks with the pool
// size (wall-clock fabrics get their parallelism from the erasure
// package's own goroutine pool inside ApplyDeltas).
func (s *Server) encoderLoop(ctx rdma.Ctx) {
	var batch []encodeJob
	var deltas []erasure.ShardDelta
	var freeBlocks []int
	for !s.isStopped() {
		ctx.Sleep(s.cl.Cfg.EncodePoll)
		for {
			s.memMu.Lock()
			s.mu.Lock()
			if len(s.encodeQ) == 0 {
				s.mu.Unlock()
				s.memMu.Unlock()
				break
			}
			// Claim every queued job of the head stripe: reclamation
			// retires deltas in bursts, and folding them together reads
			// the parity block once instead of once per delta.
			stripe := s.encodeQ[0].stripe
			batch = batch[:0]
			rest := s.encodeQ[:0]
			for _, j := range s.encodeQ {
				if j.stripe == stripe {
					batch = append(batch, j)
				} else {
					rest = append(rest, j)
				}
			}
			s.encodeQ = rest
			deltas, freeBlocks = deltas[:0], freeBlocks[:0]
			s.claimEncodeBatch(stripe, batch, &deltas, &freeBlocks)
			var encCost time.Duration
			if len(deltas) > 0 {
				prec := s.record(int(stripe))
				parity := s.block(int(stripe))
				s.cl.code.ApplyDeltas(int(prec.ParityIdx), parity, deltas)
				encCost = cpuTime((len(deltas)+1)*len(parity), s.cl.Cfg.Rates.codeRate(s.cl.Cfg.Code))
				s.ecEncodeBytes += uint64(len(deltas)) * uint64(len(parity))
				s.ecEncodeBatches++
			}
			// Zero and free the consumed DELTA blocks.
			var memCost time.Duration
			for _, db := range freeBlocks {
				delta := s.block(db)
				for i := range delta {
					delta[i] = 0
				}
				memCost += cpuTime(len(delta), s.cl.Cfg.Rates.Memcpy)
				free := layout.Record{}
				s.putRecord(db, &free)
			}
			s.mu.Unlock()
			s.memMu.Unlock()
			if encCost > 0 {
				width := s.cl.code.BandWidth(int(s.cl.L.Cfg.BlockSize))
				elapsed := s.ec.fanOut(ctx, width, func(lo, hi int) time.Duration {
					return time.Duration(float64(encCost) * float64(hi-lo) / float64(width))
				}, rdma.CoreErasure)
				s.mu.Lock()
				s.ecEncodeNs += uint64(elapsed)
				s.mu.Unlock()
				s.cl.trace.Emit(obs.Event{At: ctx.Now(), Kind: "ec.encode", MN: s.mn,
					Dur: elapsed, Note: "batched delta fold"})
			}
			if memCost > 0 {
				ctx.UseCPU(rdma.CoreErasure, memCost)
			}
		}
	}
}

// claimEncodeBatch walks one stripe's claimed jobs, marks encoded
// deltas in the parity record and collects the delta blocks to fold
// (as full-block ShardDeltas) and to free. Caller holds memMu+mu.
func (s *Server) claimEncodeBatch(stripe uint32, batch []encodeJob, deltas *[]erasure.ShardDelta, freeBlocks *[]int) {
	l := s.cl.L
	prec := s.record(int(stripe))
	if prec.Role != layout.RoleParity {
		return
	}
	changed := false
	for _, job := range batch {
		if prec.DeltaAddr[job.xorID] == 0 {
			continue
		}
		_, dOff := layout.UnpackAddr(prec.DeltaAddr[job.xorID])
		db := l.BlockOfOff(dOff)
		if job.drop {
			s.encodeDrops++
		} else {
			*deltas = append(*deltas, erasure.ShardDelta{DI: int(job.xorID), B: s.block(db)})
			prec.XORMap |= 1 << job.xorID
			s.encodeJobs++
		}
		prec.DeltaAddr[job.xorID] = 0
		*freeBlocks = append(*freeBlocks, db)
		changed = true
	}
	if changed {
		s.putRecord(int(stripe), &prec)
	}
}

// ckptSendLoop and ckptRecvLoop — the differential checkpoint
// pipeline's send and receive cores — live in ckpt.go.

// metaSyncLoop asynchronously replicates dirty Meta Area records and
// bitmaps to the successor MNs (§3.1: simple replication suffices for
// the small, infrequently-modified metadata).
func (s *Server) metaSyncLoop(ctx rdma.Ctx) {
	l := s.cl.L
	for !s.isStopped() {
		ctx.Sleep(s.cl.Cfg.MetaSyncInterval)
		s.memMu.Lock()
		s.mu.Lock()
		if len(s.dirty) == 0 {
			s.mu.Unlock()
			s.memMu.Unlock()
			continue
		}
		type piece struct {
			rel  uint64
			data []byte
		}
		dirty := make([]int, 0, len(s.dirty))
		for b := range s.dirty {
			dirty = append(dirty, b)
		}
		sort.Ints(dirty) // deterministic replication order
		var pieces []piece
		for _, b := range dirty {
			rOff := l.RecordOff(b)
			pieces = append(pieces, piece{rOff - l.MetaOff(),
				append([]byte(nil), s.mem[rOff:rOff+layout.RecordSize]...)})
			bOff := l.BitmapOff(b)
			pieces = append(pieces, piece{bOff - l.MetaOff(),
				append([]byte(nil), s.mem[bOff:bOff+l.BitmapBytes()]...)})
			delete(s.dirty, b)
		}
		s.mu.Unlock()
		s.memMu.Unlock()
		for r := 0; r < l.Cfg.MetaReplicas; r++ {
			host := l.MetaReplicaHostOf(s.mn, r)
			node, ok := s.cl.view.nodeOf(host)
			if !ok {
				continue
			}
			slot := l.MetaReplicaSlotFor(host, s.mn)
			base := l.MetaReplicaOff(slot)
			var ops []rdma.Op
			for _, pc := range pieces {
				ops = append(ops, rdma.Op{Kind: rdma.OpWrite,
					Addr: rdma.GlobalAddr{Node: node, Off: base + pc.rel}, Buf: pc.data})
			}
			for pos := 0; pos < len(ops); pos += 16 {
				end := pos + 16
				if end > len(ops) {
					end = len(ops)
				}
				ctx.Batch(ops[pos:end]) //nolint:errcheck // replica host failure handled by recovery
			}
		}
	}
}
