package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/layout"
	"repro/internal/racehash"
)

// debugDumpKey prints the index slot chain and KV bytes for one key.
func debugDumpKey(t *testing.T, tc *testCluster, k []byte) {
	h := racehash.Hash(k)
	mn := racehash.HomeMN(h, tc.cl.Cfg.Layout.NumMNs)
	fp := racehash.Fingerprint(h)
	l := tc.cl.L
	i1, i2 := racehash.BucketPair(h, l.NumBuckets())
	node, _ := tc.cl.view.nodeOf(mn)
	mem := tc.pl.DirectMemory(node)
	for _, b := range []uint64{i1, i2} {
		for s := 0; s < layout.BucketSlots; s++ {
			off := l.SlotOff(b, s)
			w := binary.LittleEndian.Uint64(mem[off:])
			if w == 0 {
				continue
			}
			a := layout.UnpackAtomic(w)
			if a.FP != fp {
				continue
			}
			meta := layout.UnpackMeta(binary.LittleEndian.Uint64(mem[off+8:]))
			kmn, koff := layout.UnpackAddr(a.Addr)
			knode, alive := tc.cl.view.nodeOf(int(kmn))
			t.Logf("key %s: slot b=%d s=%d ver=%d addr=mn%d+0x%x len=%d epoch=%d alive=%v",
				k, b, s, a.Ver, kmn, koff, meta.Len, meta.Epoch, alive)
			kmem := tc.pl.DirectMemory(knode)
			n := int(meta.Len) * 64
			if n == 0 {
				n = 64
			}
			buf := kmem[koff : koff+uint64(n)]
			kv, err := layout.DecodeKV(buf)
			t.Logf("  kv decode: err=%v kv=%v fence0=%d fenceEnd=%d ver=%x",
				err, kv != nil, buf[0], buf[n-1], binary.LittleEndian.Uint64(buf[8:]))
			if kv != nil {
				t.Logf("  key=%q tomb=%v vlen=%d", kv.Key, kv.Tombstone, len(kv.Val))
			}
			bi := l.BlockOfOff(koff)
			if bi >= 0 {
				rOff := l.RecordOff(bi)
				rec := layout.DecodeRecord(kmem[rOff : rOff+layout.RecordSize])
				t.Logf("  block %d role=%v class=%d iv=%d cli=%d stripe=%d", bi, rec.Role, rec.SizeClass, rec.IndexVersion, rec.CliID, rec.StripeID)
			}
		}
	}
}

// debugHook is called by the soak on first failure.
func debugHook(t *testing.T, tc *testCluster, k []byte) {
	debugDumpKey(t, tc, k)
	debugDumpBlock(t, tc, 1, 3, 64)
	for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
		f, i, b := tc.cl.MNState(mn)
		t.Logf("mn%d failed=%v idxReady=%v blocksReady=%v", mn, f, i, b)
	}
}

// debugDumpBlock prints slot fences across a block.
func debugDumpBlock(t *testing.T, tc *testCluster, mn, bi, slotSize int) {
	node, _ := tc.cl.view.nodeOf(mn)
	mem := tc.pl.DirectMemory(node)
	l := tc.cl.L
	base := l.BlockOff(bi)
	n := int(l.Cfg.BlockSize) / slotSize
	line := ""
	for s := 0; s < n; s++ {
		b := mem[base+uint64(s*slotSize)]
		switch {
		case b == 0:
			line += "."
		case b == 1:
			line += "1"
		case b == 2:
			line += "2"
		default:
			line += "?"
		}
	}
	t.Logf("mn%d block %d fences: %s", mn, bi, line)
	// Parity record for this stripe on each parity MN.
	stripe := uint32(bi)
	for j := 0; j < l.Cfg.ParityShards; j++ {
		pmn := l.ParityMN(stripe, j)
		pnode, _ := tc.cl.view.nodeOf(pmn)
		pmem := tc.pl.DirectMemory(pnode)
		rec := layout.DecodeRecord(pmem[l.RecordOff(bi) : l.RecordOff(bi)+layout.RecordSize])
		t.Logf("  parity mn%d: role=%v xorMap=%b deltaAddr=%v", pmn, rec.Role, rec.XORMap, rec.DeltaAddr[:3])
	}
}
