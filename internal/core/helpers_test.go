package core

import (
	"bytes"
	"testing"
	"time"
)

// TestHelperAssistedRecovery runs tier-3 recovery distributed across
// helper compute nodes (the paper's future-work extension) and
// verifies full data recovery.
func TestHelperAssistedRecovery(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.RecoveryHelpers = 4
	})
	tc.cl.master.AddSpare()
	const n = 250
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	// Checkpoint so a meaningful set of blocks lands in tier 3.
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(2)
	for i := 0; i < 20000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(2); ready {
			break
		}
	}
	if _, _, ready := tc.cl.MNState(2); !ready {
		t.Fatal("helper-assisted recovery never finished")
	}
	tc.verifyAll(t, expect)
	rep := tc.cl.master.Reports[0]
	if rep.OldLBlockCount == 0 {
		t.Log("note: no old blocks existed; helpers had no tier-3 work")
	}
}

// TestHelperRecoveryMatchesLocal cross-checks that helper-shipped
// blocks are byte-identical to locally decoded ones by verifying all
// data after recovery under both configurations.
func TestHelperRecoveryMatchesLocal(t *testing.T) {
	for _, helpers := range []int{0, 3} {
		helpers := helpers
		tc := newTestCluster(t, func(cfg *Config) {
			cfg.RecoveryHelpers = helpers
		})
		tc.cl.master.AddSpare()
		expect := make(map[int][]byte)
		tc.runClients(t, 60*time.Second, func(c *Client) {
			for i := 0; i < 120; i++ {
				v := val(i, 7)
				if err := c.Insert(key(i), v); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				expect[i] = v
			}
		})
		tc.run(2 * tc.cl.Cfg.CkptInterval)
		tc.cl.FailMN(1)
		for i := 0; i < 20000; i++ {
			tc.run(time.Millisecond)
			if _, _, ready := tc.cl.MNState(1); ready {
				break
			}
		}
		tc.runClients(t, 60*time.Second, func(c *Client) {
			for i, want := range expect {
				got, err := c.Search(key(i))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("helpers=%d key %d: %v", helpers, i, err)
					return
				}
			}
		})
	}
}
