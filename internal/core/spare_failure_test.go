package core

import (
	"testing"
	"time"
)

// TestSpareFailsDuringRecovery kills the replacement node while it is
// still recovering; the master must retry on a second spare and the
// data must still come back intact.
func TestSpareFailsDuringRecovery(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.cl.master.AddSpare()
	tc.cl.master.AddSpare()
	const n = 200
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)

	tc.cl.FailMN(1)
	// Let recovery begin on the first spare, then kill the logical MN
	// again — by now it is mapped to that spare.
	for i := 0; i < 10000; i++ {
		tc.run(200 * time.Microsecond)
		if node := tc.cl.MNNode(1); tc.pl.Failed(node) == false && tc.pl.Memory(node) != nil {
			// Mapped onto the spare; is recovery underway but not done?
			_, _, blocksReady := tc.cl.MNState(1)
			if !blocksReady {
				break
			}
		}
	}
	if _, _, done := tc.cl.MNState(1); done {
		t.Skip("recovery finished before the second failure could land")
	}
	tc.cl.FailMN(1) // kills the first spare mid-recovery

	ok := false
	for i := 0; i < 60000; i++ {
		tc.run(time.Millisecond)
		if _, _, blocksReady := tc.cl.MNState(1); blocksReady {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("recovery never completed on the second spare")
	}
	tc.verifyAll(t, expect)
}

// TestSpareDiesWhileIdle fails a spare before it is ever used; the
// master must skip it and recover onto the next one.
func TestSpareDiesWhileIdle(t *testing.T) {
	tc := newTestCluster(t, nil)
	spare1 := tc.cl.master.AddSpare()
	tc.cl.master.AddSpare()
	const n = 100
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.pl.Fail(spare1)
	tc.cl.FailMN(2)
	ok := false
	for i := 0; i < 60000; i++ {
		tc.run(time.Millisecond)
		if _, _, blocksReady := tc.cl.MNState(2); blocksReady {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("recovery never completed despite a healthy second spare")
	}
	tc.verifyAll(t, expect)
}
