package core

import (
	"fmt"
	"testing"
	"time"
)

// TestSimulationDeterminism runs an identical multi-client workload
// twice on fresh engines and requires bit-identical virtual timing —
// the property that makes every benchmark in this repository
// reproducible. (Map-iteration order must never leak into the event
// order; bitmap flushes, meta replication and recovery all iterate in
// sorted order for this reason.)
func TestSimulationDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		tc := newTestCluster(t, nil)
		var casTotal uint64
		fns := make([]func(*Client), 4)
		for w := 0; w < 4; w++ {
			w := w
			fns[w] = func(c *Client) {
				for i := 0; i < 120; i++ {
					if err := c.Update(key(w*37+i%60), val(i, w)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					if i%3 == 0 {
						if _, err := c.Search(key(w*37 + i%60)); err != nil {
							t.Errorf("search: %v", err)
							return
						}
					}
				}
				c.FlushBitmaps()
				casTotal += c.Stats.CASIssued
			}
		}
		tc.runClients(t, 60*time.Second, fns...)
		return tc.pl.Engine().Now(), casTotal
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end times diverge: %v vs %v", t1, t2)
	}
	if c1 != c2 {
		t.Fatalf("CAS counts diverge: %d vs %d", c1, c2)
	}
}

// TestDeterministicRecovery repeats a crash-recovery sequence and
// requires identical recovery reports.
func TestDeterministicRecovery(t *testing.T) {
	run := func() string {
		tc := newTestCluster(t, nil)
		tc.cl.master.AddSpare()
		tc.runClients(t, 60*time.Second, func(c *Client) {
			for i := 0; i < 150; i++ {
				if err := c.Insert(key(i), val(i, 0)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		})
		tc.run(2 * tc.cl.Cfg.CkptInterval)
		tc.cl.FailMN(1)
		for i := 0; i < 20000; i++ {
			tc.run(time.Millisecond)
			if _, _, ready := tc.cl.MNState(1); ready {
				break
			}
		}
		rep := tc.cl.master.Reports[0]
		return fmt.Sprintf("%v/%v/%v/%v/%d/%d/%d",
			rep.ReadMeta, rep.ReadCkpt, rep.IndexDone, rep.Total,
			rep.LBlockCount, rep.KVCount, rep.OldLBlockCount)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("recovery reports diverge:\n  %s\n  %s", a, b)
	}
}

// TestRawCheckpointMode checks the Figure 1(b) ablation knob: with
// CkptRaw the hosted copy is still correct and recovery still works.
func TestRawCheckpointMode(t *testing.T) {
	tc := newTestCluster(t, func(cfg *Config) { cfg.CkptRaw = true })
	tc.cl.master.AddSpare()
	const n = 150
	expect := make(map[int][]byte)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			v := val(i, 0)
			if err := c.Insert(key(i), v); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			expect[i] = v
		}
	})
	tc.run(2 * tc.cl.Cfg.CkptInterval)
	tc.cl.FailMN(3)
	for i := 0; i < 20000; i++ {
		tc.run(time.Millisecond)
		if _, _, ready := tc.cl.MNState(3); ready {
			break
		}
	}
	tc.verifyAll(t, expect)
	rep := tc.cl.master.Reports[0]
	if rep.CkptVersion == 0 {
		t.Error("raw checkpointing never delivered a hosted copy")
	}
}
