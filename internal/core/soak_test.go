package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestChaosSoak is a randomized end-to-end soak: several clients run
// mixed workloads against per-client models while MN crashes, client
// crashes/restarts and reclamation pressure are injected between
// rounds. Every committed write must survive everything. Seeds are
// fixed so failures reproduce.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, seed := range []int64{1, 7, 23, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSoak(t, seed)
		})
	}
}

func runChaosSoak(t *testing.T, seed int64) {
	tc := newTestCluster(t, func(cfg *Config) {
		cfg.Layout.StripeRows = 16
		cfg.Layout.PoolBlocks = 12
		cfg.CkptInterval = 15 * time.Millisecond
		cfg.BitmapFlushOps = 8
	})
	const clients, keysEach, rounds, opsPerRound = 3, 30, 6, 120
	// Every recovery consumes a spare; provision one per possible
	// crash injection.
	for i := 0; i < rounds; i++ {
		tc.cl.master.AddSpare()
	}
	rng := rand.New(rand.NewSource(seed))
	models := make([]map[string][]byte, clients)
	clis := make([]*Client, clients)
	for w := range models {
		models[w] = make(map[string][]byte)
		clis[w] = tc.cl.NewClient()
	}

	runRound := func(round int) {
		done := 0
		for w := 0; w < clients; w++ {
			w := w
			r := rand.New(rand.NewSource(seed*1000 + int64(round*10+w)))
			cn := tc.pl.AddComputeNode()
			cli := clis[w]
			tc.pl.Spawn(cn, fmt.Sprintf("soak%d-%d", round, w), func(ctx rdmaCtx) {
				if round == 0 {
					cli.Attach(ctx)
				} else if err := cli.Restart(ctx); err != nil {
					t.Errorf("restart: %v", err)
					done++
					return
				}
				mkey := func(i int) []byte { return []byte(fmt.Sprintf("s%02d-%04d", w, i)) }
				for n := 0; n < opsPerRound; n++ {
					i := r.Intn(keysEach)
					k := mkey(i)
					switch r.Intn(6) {
					case 0, 1, 2:
						v := []byte(fmt.Sprintf("seed%d-r%d-w%d-n%d-%s", seed, round, w, n,
							bytes.Repeat([]byte("s"), r.Intn(200))))
						if err := cli.Update(k, v); err != nil {
							t.Errorf("round %d update: %v", round, err)
							done++
							return
						}
						models[w][string(k)] = v
					case 3:
						err := cli.Delete(k)
						_, live := models[w][string(k)]
						if live && err != nil {
							t.Errorf("round %d delete live: %v", round, err)
							done++
							return
						}
						if !live && !errors.Is(err, ErrNotFound) {
							t.Errorf("round %d delete dead: %v", round, err)
							done++
							return
						}
						delete(models[w], string(k))
					default:
						got, err := cli.Search(k)
						want, live := models[w][string(k)]
						if live && (err != nil || !bytes.Equal(got, want)) {
							t.Errorf("round %d search %s: %v", round, k, err)
							debugHook(t, tc, k)
							done++
							return
						}
						if !live && !errors.Is(err, ErrNotFound) {
							t.Errorf("round %d search dead %s: %v", round, k, err)
							debugHook(t, tc, k)
							done++
							return
						}
					}
				}
				// Half the clients crash dirty, half close cleanly.
				if r.Intn(2) == 0 {
					cli.Close()
				}
				cli.SimulateCrash()
				done++
			})
		}
		for i := 0; i < 240000 && done < clients; i++ {
			tc.run(time.Millisecond)
		}
		if done < clients {
			t.Fatalf("round %d stalled", round)
		}
	}

	failed := map[int]bool{}
	for round := 0; round < rounds; round++ {
		runRound(round)
		// Inject chaos between rounds: crash an MN (at most two
		// concurrently down, the fault bound).
		down := 0
		for _, f := range failed {
			if f {
				down++
			}
		}
		if down < 2 && rng.Intn(2) == 0 {
			mn := rng.Intn(tc.cl.Cfg.Layout.NumMNs)
			if !failed[mn] {
				failed[mn] = true
				t.Logf("round %d: FailMN(%d) at %v", round, mn, tc.pl.Engine().Now())
				tc.cl.FailMN(mn)
			}
		}
		// Occasionally wait for recoveries to complete.
		if rng.Intn(2) == 0 {
			for i := 0; i < 60000; i++ {
				tc.run(time.Millisecond)
				all := true
				for mn := range failed {
					if _, _, ready := tc.cl.MNState(mn); !ready {
						all = false
					}
				}
				if all {
					for mn := range failed {
						delete(failed, mn)
					}
					break
				}
			}
		}
	}
	// Drain all pending recoveries, then verify every model.
	for i := 0; i < 120000; i++ {
		tc.run(time.Millisecond)
		all := true
		for mn := 0; mn < tc.cl.Cfg.Layout.NumMNs; mn++ {
			if _, _, ready := tc.cl.MNState(mn); !ready {
				all = false
			}
		}
		if all {
			break
		}
	}
	tc.runClients(t, 600*time.Second, func(c *Client) {
		for w := 0; w < clients; w++ {
			for k, want := range models[w] {
				got, err := c.Search([]byte(k))
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("final %s: err=%v", k, err)
				}
			}
		}
	})
}
