package swarm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdma/simnet"
)

type testCluster struct {
	pl *simnet.Platform
	cl *Cluster
}

func newTestCluster(t *testing.T, mutate func(*Config)) *testCluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PartitionBytes = 64 << 10
	cfg.BlockSize = 64 << 10
	cfg.BlocksPerMN = 64
	if mutate != nil {
		mutate(&cfg)
	}
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pl.Shutdown)
	return &testCluster{pl: pl, cl: cl}
}

func (tc *testCluster) runClients(t *testing.T, deadline time.Duration, fns ...func(*Client)) {
	t.Helper()
	done := 0
	for i, fn := range fns {
		fn := fn
		cn := tc.pl.AddComputeNode()
		tc.cl.SpawnClient(cn, fmt.Sprintf("client%d", i), func(c *Client) {
			fn(c)
			done++
		})
	}
	limit := tc.pl.Engine().Now() + deadline
	for done < len(fns) && tc.pl.Engine().Now() < limit {
		tc.pl.Run(tc.pl.Engine().Now() + time.Millisecond)
	}
	if done < len(fns) {
		t.Fatalf("only %d/%d clients finished", done, len(fns))
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i, gen int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("v%03d-%06d.", gen, i)), 10)
}

func TestCRUD(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		const n = 200
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("search %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			if err := c.Update(key(i), val(i, 1)); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 1)) {
				t.Errorf("search after update %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i += 2 {
			if err := c.Delete(key(i)); err != nil {
				t.Errorf("delete %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if i%2 == 0 {
				if !errors.Is(err, ErrNotFound) {
					t.Errorf("deleted key %d: got %q, err %v", i, got, err)
					return
				}
				continue
			}
			if err != nil || !bytes.Equal(got, val(i, 1)) {
				t.Errorf("surviving key %d: %v", i, err)
				return
			}
		}
	})
}

func TestErrorsWrapCore(t *testing.T) {
	if !errors.Is(ErrNotFound, core.ErrNotFound) {
		t.Error("ErrNotFound does not wrap core.ErrNotFound")
	}
	if !errors.Is(ErrNoSpace, core.ErrNoSpace) {
		t.Error("ErrNoSpace does not wrap core.ErrNoSpace")
	}
	if !errors.Is(ErrRetriesExhausted, core.ErrRetriesExhausted) {
		t.Error("ErrRetriesExhausted does not wrap core.ErrRetriesExhausted")
	}
}

// TestInPlaceUpdateCost pins the mode's claim: a warm update issues
// exactly one CAS (the version word) regardless of the replication
// factor, unlike FUSEE's n CASes.
func TestInPlaceUpdateCost(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		if err := c.Insert(key(1), val(1, 0)); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		// Warm update path (cache holds the full word set).
		if err := c.Update(key(1), val(1, 1)); err != nil {
			t.Errorf("warm-up update: %v", err)
			return
		}
		cas0 := c.Stats.CASIssued
		wr0 := c.Stats.WritesIssued
		if err := c.Update(key(1), val(1, 2)); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		if got := c.Stats.CASIssued - cas0; got != 1 {
			t.Errorf("warm update issued %d CASes, want 1", got)
		}
		// r in-place copy writes + (r-1) backup version words.
		r := uint64(tc.cl.Cfg.Replicas)
		if got := c.Stats.WritesIssued - wr0; got != 2*r-1 {
			t.Errorf("warm update issued %d writes, want %d", got, 2*r-1)
		}
		got, err := c.Search(key(1))
		if err != nil || !bytes.Equal(got, val(1, 2)) {
			t.Errorf("search after updates: %v", err)
		}
	})
}

// TestValueSizeChange exercises the reallocation path (value grows
// past its class) and the in-place shrink path.
func TestValueSizeChange(t *testing.T) {
	tc := newTestCluster(t, nil)
	tc.runClients(t, 10*time.Second, func(c *Client) {
		small := []byte("small")
		big := bytes.Repeat([]byte("B"), 600)
		if err := c.Insert(key(1), small); err != nil {
			t.Errorf("insert: %v", err)
			return
		}
		if err := c.Update(key(1), big); err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		if got, err := c.Search(key(1)); err != nil || !bytes.Equal(got, big) {
			t.Errorf("search big: %v", err)
			return
		}
		if err := c.Update(key(1), small); err != nil {
			t.Errorf("shrink: %v", err)
			return
		}
		if got, err := c.Search(key(1)); err != nil || !bytes.Equal(got, small) {
			t.Errorf("search small after shrink: err %v val %q", err, got)
			return
		}
		// A second client with no cache must read the shrunk value too.
		c2 := tc.cl.NewClient()
		c2.Attach(c.ctx)
		if got, err := c2.Search(key(1)); err != nil || !bytes.Equal(got, small) {
			t.Errorf("cold search after shrink: err %v val %q", err, got)
		}
	})
}

func TestConcurrentUpdatesSameKey(t *testing.T) {
	tc := newTestCluster(t, nil)
	const writers = 4
	const rounds = 30
	fns := make([]func(*Client), writers+1)
	fns[0] = func(c *Client) {
		if err := c.Insert(key(7), val(7, 0)); err != nil {
			t.Errorf("seed insert: %v", err)
		}
	}
	tc.runClients(t, 10*time.Second, fns[0])
	for w := 0; w < writers; w++ {
		w := w
		fns[w] = func(c *Client) {
			for g := 0; g < rounds; g++ {
				if err := c.Update(key(7), val(7, w*rounds+g+1)); err != nil {
					t.Errorf("writer %d round %d: %v", w, g, err)
					return
				}
			}
		}
	}
	fns[writers] = func(c *Client) {
		for g := 0; g < rounds*2; g++ {
			got, err := c.Search(key(7))
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			if len(got) == 0 {
				t.Error("reader got empty value")
				return
			}
		}
	}
	tc.runClients(t, 60*time.Second, fns...)
	// Converged state: the value is one of the written generations.
	tc.runClients(t, 10*time.Second, func(c *Client) {
		got, err := c.Search(key(7))
		if err != nil {
			t.Errorf("final search: %v", err)
			return
		}
		okVal := false
		for g := 0; g <= writers*rounds; g++ {
			if bytes.Equal(got, val(7, g)) {
				okVal = true
				break
			}
		}
		if !okVal {
			t.Errorf("final value %q is not any written generation", got[:20])
		}
	})
}

// TestFailoverAfterMNCrash kills one MN mid-run and checks reads and
// writes keep succeeding via surviving replicas for every key.
func TestFailoverAfterMNCrash(t *testing.T) {
	tc := newTestCluster(t, nil)
	const n = 120
	tc.runClients(t, 30*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			if err := c.Insert(key(i), val(i, 0)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	})
	tc.cl.FailMN(2)
	tc.runClients(t, 60*time.Second, func(c *Client) {
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 0)) {
				t.Errorf("post-crash search %d: err %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			if err := c.Update(key(i), val(i, 1)); err != nil {
				t.Errorf("post-crash update %d: %v", i, err)
				return
			}
		}
		for i := 0; i < n; i++ {
			got, err := c.Search(key(i))
			if err != nil || !bytes.Equal(got, val(i, 1)) {
				t.Errorf("post-crash re-search %d: err %v", i, err)
				return
			}
		}
	})
}
