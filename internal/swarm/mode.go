// ftmode registration: the SWARM-style in-place mode behind the same
// API as Aceso, selected with Config.FTMode = core.FTModeSwarm.
package swarm

import (
	"repro/internal/core"
	"repro/internal/ftmode"
	"repro/internal/rdma"
)

func init() {
	core.RegisterFTMode(core.FTModeSwarm, func(cfg core.Config, pl rdma.Platform) (ftmode.Cluster, error) {
		cl, err := NewCluster(ConfigFromCore(cfg), pl)
		if err != nil {
			return nil, err
		}
		return &mode{cl: cl}, nil
	})
}

// ConfigFromCore derives the mode's geometry from a shared core Config
// (same split as the FUSEE baseline: the index area becomes Replicas
// hosted partitions, the block area matches Aceso's block count).
func ConfigFromCore(cfg core.Config) Config {
	r := cfg.ReplicaCount()
	sc := Config{
		NumMNs:         cfg.Layout.NumMNs,
		Replicas:       r,
		PartitionBytes: cfg.Layout.IndexBytes / uint64(r),
		BlockSize:      cfg.Layout.BlockSize,
		BlocksPerMN:    cfg.Layout.BlocksPerMN(),
		CacheValues:    cfg.CacheSlotAddr,
	}
	// Keep the back-to-back partition split bucket-aligned, or slot
	// words in partitions j>0 land on unaligned addresses and CAS
	// refuses them (the default 2 MB index / 3 replicas is not).
	sc.PartitionBytes -= sc.PartitionBytes % sc.bucketBytes()
	if sc.PartitionBytes == 0 {
		sc.PartitionBytes = 1 << 20
	}
	return sc
}

// mode adapts *Cluster to ftmode.Cluster.
type mode struct{ cl *Cluster }

// Swarm exposes the underlying cluster for mode-specific surfaces.
func (m *mode) Swarm() *Cluster { return m.cl }

func (m *mode) Mode() string { return core.FTModeSwarm }

func (m *mode) Caps() ftmode.Caps {
	return ftmode.Caps{ReadFailover: true, AdminRPC: true}
}

// Start is a no-op: handlers are installed at open and the mode runs
// no server daemons.
func (m *mode) Start() error { return nil }

func (m *mode) NewClient() ftmode.Client { return m.cl.NewClient() }

func (m *mode) SpawnClient(cn rdma.NodeID, name string, fn func(ftmode.Client)) {
	m.cl.SpawnClient(cn, name, func(c *Client) { fn(c) })
}

func (m *mode) FailMN(mn int) { m.cl.FailMN(mn) }

func (m *mode) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return m.cl.MNState(mn)
}

func (m *mode) Ready() bool { return true }

func (m *mode) Usage() ftmode.Usage {
	return ftmode.Usage{TotalBytes: m.cl.AllocatedBytes()}
}

func (m *mode) NumMNs() int { return m.cl.Cfg.NumMNs }
