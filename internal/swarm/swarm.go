// Package swarm implements a SWARM-style synchronous in-place
// replication mode (PAPERS.md: "SWARM: Replicating Shared Disaggregated
// Memory") on the existing verb fabric. It marks a third point on the
// fault-tolerance design spectrum next to Aceso's erasure-coded hybrid
// and FUSEE's full replication:
//
//   - Like FUSEE, every KV pair lives as n full copies on n memory
//     nodes and the hash index is n-way replicated, so an MN fail-stop
//     needs no rebuild — survivors carry the data.
//   - Unlike FUSEE, updates do not re-place the pair and re-CAS every
//     index replica. A slot's copies are fixed in place at insert; an
//     update is one CAS on the primary's version word (serializing
//     writers) followed by ONE doorbell batch of in-place copy
//     overwrites — a single round trip of data writes regardless of n,
//     SWARM's "in-place, single-RTT" replicated write.
//
// Index slots are 16 bytes: word0 packs fingerprint|address (committed
// once by the insert's CAS, stable thereafter), word1 is the version
// the copies are stamped with. Readers validate a copy's embedded
// slot version against word1 and retry while a writer is in flight;
// fences (layout.EncodeKV) catch torn overwrites. The protocol shares
// FUSEE's conflict-resolution corner cases under adversarial delay
// (a delayed insert loser's version write can race a later update);
// like the FUSEE baseline, it reproduces the mechanism's cost shape,
// not a verified consensus protocol.
package swarm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/racehash"
	"repro/internal/rdma"
)

// Errors. Each wraps the corresponding core error so callers match on
// one taxonomy regardless of the fault-tolerance mode.
var (
	ErrNotFound         = fmt.Errorf("swarm: %w", core.ErrNotFound)
	ErrNoSpace          = fmt.Errorf("swarm: %w", core.ErrNoSpace)
	ErrRetriesExhausted = fmt.Errorf("swarm: %w", core.ErrRetriesExhausted)
)

const maxOpRetries = 1024

// slotBytes is the fixed index slot width: word0 = fp|addr (atomic),
// word1 = version.
const slotBytes = 16

// bucketSlots is the slot count per bucket (one bucket = one 128 B
// RDMA_READ).
const bucketSlots = 8

// Config parameterises the mode.
type Config struct {
	// NumMNs is the memory-node count.
	NumMNs int
	// Replicas is the replication factor n (index partitions and KV
	// copies alike).
	Replicas int
	// PartitionBytes is the per-partition index size (each MN hosts
	// Replicas partitions, like the FUSEE baseline's layout).
	PartitionBytes uint64
	// BlockSize and BlocksPerMN size the KV block area.
	BlockSize   uint64
	BlocksPerMN int
	// CacheValues enables the client slot cache (location + copy
	// addresses, so cached reads skip the bucket walk).
	CacheValues bool
}

// DefaultConfig mirrors the FUSEE baseline's scaled-down geometry.
func DefaultConfig() Config {
	return Config{
		NumMNs:         5,
		Replicas:       3,
		PartitionBytes: 1 << 20,
		BlockSize:      2 << 20,
		BlocksPerMN:    48,
		CacheValues:    true,
	}
}

func (c *Config) bucketBytes() uint64 { return uint64(bucketSlots * slotBytes) }
func (c *Config) numBuckets() uint64  { return c.PartitionBytes / c.bucketBytes() }

// regionOff returns the offset of hosted partition region j on an MN.
func (c *Config) regionOff(j int) uint64 { return uint64(j) * c.PartitionBytes }

// blockOff returns the offset of block b on an MN.
func (c *Config) blockOff(b int) uint64 {
	return uint64(c.Replicas)*c.PartitionBytes + uint64(b)*c.BlockSize
}

// memBytes is the registered region size per MN.
func (c *Config) memBytes() uint64 { return c.blockOff(c.BlocksPerMN) }

// replicaMN returns the MN hosting replica i of partition p.
func (c *Config) replicaMN(p, i int) int { return (p + i) % c.NumMNs }

// hostedRegion returns which region index of MN m holds partition p's
// replica, or -1.
func (c *Config) hostedRegion(m, p int) int {
	j := ((m-p)%c.NumMNs + c.NumMNs) % c.NumMNs
	if j < c.Replicas {
		return j
	}
	return -1
}

// Cluster wires the mode onto a platform.
type Cluster struct {
	Cfg   Config
	pl    rdma.Platform
	nodes []rdma.NodeID

	mu      sync.Mutex
	nextBlk []int // bump allocator per MN
	nextCli uint16

	// viewMu guards the failure view; clients mark MNs failed when a
	// verb returns rdma.ErrNodeFailed (or a harness calls FailMN) and
	// fail over to surviving replicas.
	viewMu sync.Mutex
	failed []bool
}

// NewCluster creates the mode's memory nodes and installs its RPC
// handlers (block allocation, admin kill).
func NewCluster(cfg Config, pl rdma.Platform) (*Cluster, error) {
	if cfg.Replicas < 1 || cfg.Replicas > cfg.NumMNs {
		return nil, fmt.Errorf("swarm: replicas %d out of range", cfg.Replicas)
	}
	cl := &Cluster{Cfg: cfg, pl: pl, failed: make([]bool, cfg.NumMNs)}
	for i := 0; i < cfg.NumMNs; i++ {
		node := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: cfg.memBytes(), CPUCores: 1})
		cl.nodes = append(cl.nodes, node)
		cl.nextBlk = append(cl.nextBlk, 0)
		mn := i
		pl.SetHandler(node, func(method uint8, req []byte) ([]byte, time.Duration) {
			return cl.handle(mn, method, req)
		})
	}
	return cl, nil
}

const (
	methodAlloc uint8 = 1
	methodKill  uint8 = 2
)

// handle serves block allocation and the admin kill.
func (cl *Cluster) handle(mn int, method uint8, _ []byte) ([]byte, time.Duration) {
	if method == methodKill {
		go func() {
			time.Sleep(10 * time.Millisecond)
			cl.FailMN(mn)
		}()
		return []byte{0}, time.Microsecond
	}
	if method != methodAlloc {
		return []byte{1}, time.Microsecond
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.nextBlk[mn] >= cl.Cfg.BlocksPerMN {
		return []byte{1}, 2 * time.Microsecond
	}
	b := cl.nextBlk[mn]
	cl.nextBlk[mn]++
	var resp [5]byte
	resp[0] = 0
	binary.LittleEndian.PutUint32(resp[1:], uint32(b))
	return resp[:], 2 * time.Microsecond
}

// AllocatedBytes returns the total block bytes allocated across MNs.
func (cl *Cluster) AllocatedBytes() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	total := uint64(0)
	for _, n := range cl.nextBlk {
		total += uint64(n) * cl.Cfg.BlockSize
	}
	return total
}

// FailMN fail-stops logical MN mn; clients fail over to survivors.
func (cl *Cluster) FailMN(mn int) {
	cl.markFailed(mn)
	cl.pl.Fail(cl.nodes[mn])
}

func (cl *Cluster) markFailed(mn int) {
	cl.viewMu.Lock()
	cl.failed[mn] = true
	cl.viewMu.Unlock()
}

// Failed reports whether MN mn is marked failed.
func (cl *Cluster) Failed(mn int) bool {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.failed[mn]
}

// MNState reports (failed, indexReady, blocksReady); like the FUSEE
// baseline there is no tiered rebuild.
func (cl *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	f := cl.Failed(mn)
	return f, !f, !f
}

// NewClient allocates a client identity.
func (cl *Cluster) NewClient() *Client {
	cl.mu.Lock()
	cl.nextCli++
	id := cl.nextCli
	cl.mu.Unlock()
	return &Client{
		cl:    cl,
		id:    id,
		cache: make(map[string]*cacheEnt),
		open:  make(map[uint8][]*openBlock),
	}
}

// SpawnClient spawns fn as a client process on compute node cn.
func (cl *Cluster) SpawnClient(cn rdma.NodeID, name string, fn func(*Client)) *Client {
	cli := cl.NewClient()
	cl.pl.Spawn(cn, name, func(ctx rdma.Ctx) {
		cli.ctx = ctx
		fn(cli)
	})
	return cli
}

// slotWord packs word0: fingerprint in the top byte, 48-bit address
// below.
func slotWord(fp uint8, addr uint64) uint64 {
	return uint64(fp)<<56 | addr&((1<<48)-1)
}

func slotFP(w uint64) uint8    { return uint8(w >> 56) }
func slotAddr(w uint64) uint64 { return w & ((1 << 48) - 1) }

// fenceFor returns the copy fence for a version (alternates 1/2 so a
// torn in-place overwrite is distinguishable from the intact old pair).
func fenceFor(ver uint64) uint8 { return uint8(1 + ver&1) }

type openBlock struct {
	mn   int
	idx  int
	next int
}

// cacheEnt caches a key's slot location and per-replica copy
// addresses. In-place replication makes this cache strong: word0 is
// immutable after insert (absent reallocation), so a cached read
// validates with one 16 B slot read batched with the copy read.
type cacheEnt struct {
	bucket  uint64
	slotIdx int
	words   []uint64 // per replica, packed word0 (0 = unknown)
	class   int      // copy class size (bytes)
}

// Client is a swarm-mode client.
type Client struct {
	cl  *Cluster
	ctx rdma.Ctx
	id  uint16

	cache map[string]*cacheEnt
	open  map[uint8][]*openBlock

	// Stats for harnesses.
	Stats struct {
		Ops          uint64
		CASIssued    uint64
		CASRetries   uint64
		ReadsIssued  uint64
		WritesIssued uint64
		BytesRead    uint64
		BytesWritten uint64
		ValidBytes   uint64
	}
}

// Attach binds the client to its process context.
func (c *Client) Attach(ctx rdma.Ctx) { c.ctx = ctx }

// Counters returns the client's verb counts for harness accounting.
func (c *Client) Counters() (cas, reads, writes uint64) {
	return c.Stats.CASIssued, c.Stats.ReadsIssued, c.Stats.WritesIssued
}

// Close is a no-op (interface parity with core's Client).
func (c *Client) Close() {}

// KillMN asks MN mn to fail-stop itself over the admin RPC.
func (c *Client) KillMN(mn int) error {
	if c.cl.Failed(mn) {
		return rdma.ErrNodeFailed
	}
	resp, err := c.ctx.RPC(c.cl.nodes[mn], methodKill, nil)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != 0 {
		return fmt.Errorf("swarm: kill rejected")
	}
	return nil
}

// noteErr records a node failure observed through err and reports
// whether the caller should fail over.
func (c *Client) noteErr(mn int, err error) bool {
	if errors.Is(err, rdma.ErrNodeFailed) {
		c.cl.markFailed(mn)
		return true
	}
	return false
}

// refreshView probes every not-yet-failed MN after an ambiguous
// batched-verb failure and marks the dead ones.
func (c *Client) refreshView() {
	var b [8]byte
	for mn := 0; mn < c.cl.Cfg.NumMNs; mn++ {
		if c.cl.Failed(mn) {
			continue
		}
		c.Stats.ReadsIssued++
		c.Stats.BytesRead += 8
		if err := c.ctx.Read(b[:], rdma.GlobalAddr{Node: c.cl.nodes[mn]}); err != nil {
			c.noteErr(mn, err)
		}
	}
}

// liveReplicas returns the surviving replica indices of partition p in
// replica order (acting primary first).
func (c *Client) liveReplicas(p int) []int {
	cfg := &c.cl.Cfg
	out := make([]int, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		if !c.cl.Failed(cfg.replicaMN(p, i)) {
			out = append(out, i)
		}
	}
	return out
}

func errAllReplicasFailed(p int) error {
	return fmt.Errorf("swarm: all replicas of partition %d failed: %w", p, rdma.ErrNodeFailed)
}

// slotOff returns the offset of slot s of bucket b within a hosted
// partition region (word0; word1 is at +8).
func (c *Client) slotOff(region int, bucket uint64, s int) uint64 {
	cfg := &c.cl.Cfg
	return cfg.regionOff(region) + bucket*cfg.bucketBytes() + uint64(s*slotBytes)
}

// buckets returns the key's two candidate buckets.
func (c *Client) buckets(h uint64) (uint64, uint64) {
	return racehash.BucketPair(h, c.cl.Cfg.numBuckets())
}

// readBucketPair reads the key's two buckets from one replica of its
// partition.
func (c *Client) readBucketPair(p, replica int, b1, b2 uint64) ([]byte, []byte, error) {
	cfg := &c.cl.Cfg
	mn := cfg.replicaMN(p, replica)
	region := cfg.hostedRegion(mn, p)
	node := c.cl.nodes[mn]
	bb := cfg.bucketBytes()
	buf1 := make([]byte, bb)
	buf2 := make([]byte, bb)
	ops := []rdma.Op{
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b1, 0)}, Buf: buf1},
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: node, Off: c.slotOff(region, b2, 0)}, Buf: buf2},
	}
	c.Stats.ReadsIssued += 2
	c.Stats.BytesRead += 2 * bb
	if err := c.ctx.Batch(ops); err != nil {
		if c.noteErr(mn, err) {
			return nil, nil, err
		}
		return nil, nil, err
	}
	return buf1, buf2, nil
}

// scan finds fp matches in a bucket's raw bytes, returning slot
// indices.
func (c *Client) scan(fp uint8, buf []byte) []int {
	var out []int
	for s := 0; s < bucketSlots; s++ {
		w := binary.LittleEndian.Uint64(buf[s*slotBytes:])
		if w != 0 && slotFP(w) == fp {
			out = append(out, s)
		}
	}
	return out
}

// freeSlot finds the first empty slot (word0 == 0) in a bucket, or -1.
func (c *Client) freeSlot(buf []byte) int {
	for s := 0; s < bucketSlots; s++ {
		if binary.LittleEndian.Uint64(buf[s*slotBytes:]) == 0 {
			return s
		}
	}
	return -1
}

// wordsOf extracts (word0, word1) of slot s from a raw bucket.
func wordsOf(buf []byte, s int) (w0, w1 uint64) {
	w0 = binary.LittleEndian.Uint64(buf[s*slotBytes:])
	w1 = binary.LittleEndian.Uint64(buf[s*slotBytes+8:])
	return
}

// readKVAt reads and decodes a KV copy (speculative size, clamped to
// the block boundary; re-read at the true size when short).
func (c *Client) readKVAt(packed uint64, size int) (*layout.KV, error) {
	cfg := &c.cl.Cfg
	mn, off := layout.UnpackAddr(packed)
	base := cfg.blockOff(0)
	if off >= base {
		rel := (off - base) % cfg.BlockSize
		if remain := int(cfg.BlockSize - rel); size > remain {
			size = remain
		}
	}
	if size < 64 {
		size = 64
	}
	buf := make([]byte, size)
	c.Stats.ReadsIssued++
	c.Stats.BytesRead += uint64(size)
	if err := c.ctx.Read(buf, rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: off}); err != nil {
		c.noteErr(int(mn), err)
		return nil, err
	}
	if buf[0] == 0 {
		return nil, nil // never written
	}
	keyLen := int(binary.LittleEndian.Uint16(buf[2:]))
	valLen := int(binary.LittleEndian.Uint32(buf[4:]))
	real := layout.KVClassSize(keyLen, valLen)
	if real > int(cfg.BlockSize) {
		return nil, layout.ErrTornKV
	}
	if real <= size {
		return layout.DecodeKV(buf[:real])
	}
	buf = make([]byte, real)
	c.Stats.ReadsIssued++
	c.Stats.BytesRead += uint64(real)
	if err := c.ctx.Read(buf, rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: off}); err != nil {
		c.noteErr(int(mn), err)
		return nil, err
	}
	return layout.DecodeKV(buf)
}

// guessSize speculates the copy size for the first read of a key.
func (c *Client) guessSize(key []byte) int {
	if ent, ok := c.cache[string(key)]; ok && ent.class > 0 {
		return ent.class
	}
	return 1024 + 64
}

// Search returns the value of key, or ErrNotFound. Reads validate the
// copy's embedded slot version against the index slot's version word
// and retry while a writer's in-place overwrite is in flight; after an
// MN failure they fail over to a surviving replica.
func (c *Client) Search(key []byte) ([]byte, error) {
	c.Stats.Ops++
	h := racehash.Hash(key)
	p := racehash.HomeMN(h, c.cl.Cfg.NumMNs)
	fp := racehash.Fingerprint(h)
	b1, b2 := c.buckets(h)

	if ent, ok := c.cache[string(key)]; ok && c.cl.Cfg.CacheValues {
		if val, err := c.cachedRead(key, ent, p); err == nil || errors.Is(err, ErrNotFound) {
			return val, err
		}
	}
	for attempt := 0; attempt < maxOpRetries; attempt++ {
		live := c.liveReplicas(p)
		if len(live) == 0 {
			return nil, errAllReplicasFailed(p)
		}
		ri := live[0]
		buf1, buf2, err := c.readBucketPair(p, ri, b1, b2)
		if err != nil {
			if errors.Is(err, rdma.ErrNodeFailed) {
				continue // fail over to the next surviving replica
			}
			return nil, err
		}
		unstable := false
		for bi, buf := range [][]byte{buf1, buf2} {
			for _, s := range c.scan(fp, buf) {
				w0, w1 := wordsOf(buf, s)
				bucket := b1
				if bi == 1 {
					bucket = b2
				}
				kv, err := c.readCopyFailover(p, bucket, s, w0, c.guessSize(key))
				if err != nil {
					if errors.Is(err, layout.ErrTornKV) {
						unstable = true
					}
					continue
				}
				if kv == nil {
					// Insert in flight: word0 committed paths write
					// copies first, so an empty copy means a torn
					// state worth one retry.
					continue
				}
				if !bytes.Equal(kv.Key, key) {
					continue
				}
				if kv.SlotVersion < w1 {
					// An in-place overwrite is landing: the copy read
					// raced ahead of the version word. Retry.
					unstable = true
					continue
				}
				if ri == 0 && c.cl.Cfg.CacheValues {
					words := make([]uint64, c.cl.Cfg.Replicas)
					words[0] = w0
					c.cache[string(key)] = &cacheEnt{bucket: bucket, slotIdx: s,
						words: words, class: layout.KVClassSize(len(kv.Key), len(kv.Val))}
				}
				if kv.Tombstone {
					return nil, ErrNotFound
				}
				return append([]byte(nil), kv.Val...), nil
			}
		}
		if unstable {
			c.backoff(attempt)
			continue
		}
		return nil, ErrNotFound
	}
	return nil, ErrRetriesExhausted
}

// readCopyFailover reads the copy word0 points at; when that copy's MN
// has failed it chases the surviving replicas' word0s for the same
// slot and reads their copies instead.
func (c *Client) readCopyFailover(p int, bucket uint64, s int, w0 uint64, size int) (*layout.KV, error) {
	kv, err := c.readKVAt(slotAddr(w0), size)
	if err == nil || !errors.Is(err, rdma.ErrNodeFailed) {
		return kv, err
	}
	cfg := &c.cl.Cfg
	for _, ri := range c.liveReplicas(p) {
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		var wb [8]byte
		c.Stats.ReadsIssued++
		c.Stats.BytesRead += 8
		if rerr := c.ctx.Read(wb[:], rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, s)}); rerr != nil {
			c.noteErr(mn, rerr)
			continue
		}
		rw := binary.LittleEndian.Uint64(wb[:])
		if rw == 0 || slotFP(rw) != slotFP(w0) {
			continue
		}
		kv, err = c.readKVAt(slotAddr(rw), size)
		if err == nil {
			return kv, nil
		}
	}
	return nil, err
}

// cachedRead validates a cache hit with one batched round trip: the
// 16 B slot (word0 stability + current version) plus the speculative
// copy read — the in-place design's read-path win over FUSEE's full
// bucket re-walk.
func (c *Client) cachedRead(key []byte, ent *cacheEnt, p int) ([]byte, error) {
	cfg := &c.cl.Cfg
	mn := cfg.replicaMN(p, 0)
	if ent.words[0] == 0 || c.cl.Failed(mn) {
		return nil, errors.New("swarm: stale cache")
	}
	kmn, koff := layout.UnpackAddr(slotAddr(ent.words[0]))
	if c.cl.Failed(int(kmn)) {
		return nil, errors.New("swarm: stale cache")
	}
	region := cfg.hostedRegion(mn, p)
	slotBuf := make([]byte, slotBytes)
	kvBuf := make([]byte, ent.class)
	ops := []rdma.Op{
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, ent.bucket, ent.slotIdx)}, Buf: slotBuf},
		{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: c.cl.nodes[kmn], Off: koff}, Buf: kvBuf},
	}
	c.Stats.ReadsIssued += 2
	c.Stats.BytesRead += uint64(slotBytes + ent.class)
	if err := c.ctx.Batch(ops); err != nil {
		return nil, err
	}
	w0 := binary.LittleEndian.Uint64(slotBuf)
	w1 := binary.LittleEndian.Uint64(slotBuf[8:])
	if w0 != ent.words[0] {
		return nil, errors.New("swarm: stale cache") // reallocated
	}
	// Decode at the header's true class: an in-place shrink leaves the
	// new trailing fence before the end of the cached class size.
	if kvBuf[0] == 0 {
		return nil, errors.New("swarm: stale cache")
	}
	keyLen := int(binary.LittleEndian.Uint16(kvBuf[2:]))
	valLen := int(binary.LittleEndian.Uint32(kvBuf[4:]))
	real := layout.KVClassSize(keyLen, valLen)
	if real > len(kvBuf) {
		return nil, errors.New("swarm: stale cache") // grew past the class
	}
	kv, err := layout.DecodeKV(kvBuf[:real])
	if err != nil || kv == nil || !bytes.Equal(kv.Key, key) || kv.SlotVersion < w1 {
		return nil, errors.New("swarm: stale cache") // writer in flight
	}
	if kv.Tombstone {
		return nil, ErrNotFound
	}
	return append([]byte(nil), kv.Val...), nil
}

// backoff sleeps a bounded, client-salted exponential delay.
func (c *Client) backoff(attempt int) {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	c.ctx.Sleep(time.Duration(1+int(c.id)%4) * time.Microsecond << shift)
}

// Insert stores a key-value pair (upsert).
func (c *Client) Insert(key, val []byte) error { return c.write(key, val, false) }

// Update overwrites a key's value (upsert).
func (c *Client) Update(key, val []byte) error { return c.write(key, val, false) }

// Delete removes a key by an in-place replicated tombstone overwrite.
func (c *Client) Delete(key []byte) error { return c.write(key, nil, true) }

// write implements the SWARM-style write: first insert of a key
// commits via word0 CASes (backups then primary, as FUSEE resolves
// insert races); every subsequent write serializes on ONE version-word
// CAS and then lands all copies with ONE doorbell batch of in-place
// overwrites.
func (c *Client) write(key, val []byte, tombstone bool) error {
	c.Stats.Ops++
	h := racehash.Hash(key)
	p := racehash.HomeMN(h, c.cl.Cfg.NumMNs)
	fp := racehash.Fingerprint(h)
	b1, b2 := c.buckets(h)
	cfg := &c.cl.Cfg

	for attempt := 0; attempt < maxOpRetries; attempt++ {
		live := c.liveReplicas(p)
		if len(live) == 0 {
			return errAllReplicasFailed(p)
		}
		acting := live[0]

		// Locate the slot: cache first (valid location + full word set
		// after this client's own commit), else bucket walk.
		var (
			bucket  uint64
			slotIdx int
			ver     uint64
			words   []uint64
			class   int
			found   bool
		)
		if ent, ok := c.cache[string(key)]; ok && cfg.CacheValues && acting == 0 && ent.complete(len(live)) {
			bucket, slotIdx, class = ent.bucket, ent.slotIdx, ent.class
			words = append([]uint64(nil), ent.words...)
			// The version word still must be read fresh: CAS below
			// needs the current value.
			mn := cfg.replicaMN(p, 0)
			region := cfg.hostedRegion(mn, p)
			var vb [8]byte
			c.Stats.ReadsIssued++
			c.Stats.BytesRead += 8
			if err := c.ctx.Read(vb[:], rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx) + 8}); err != nil {
				if c.noteErr(mn, err) {
					continue
				}
				return err
			}
			ver = binary.LittleEndian.Uint64(vb[:])
			found = true
		} else {
			var err error
			bucket, slotIdx, ver, words, class, found, err = c.locate(key, p, acting, fp, b1, b2, h, tombstone)
			if err != nil {
				if errors.Is(err, rdma.ErrNodeFailed) {
					c.refreshView()
					continue
				}
				return err
			}
			if tombstone && !found {
				return ErrNotFound
			}
		}

		size := layout.KVClassSize(len(key), len(val))
		if !found {
			// First insert: place copies, commit via word0 CAS rounds.
			err := c.insertSlot(key, val, tombstone, p, fp, bucket, slotIdx, size, live)
			if err == nil {
				return nil
			}
			if errors.Is(err, rdma.ErrNodeFailed) {
				c.refreshView()
				continue
			}
			if errors.Is(err, errConflict) {
				c.Stats.CASRetries++
				delete(c.cache, string(key))
				c.backoff(attempt)
				continue
			}
			return err
		}

		// In-place update: one CAS on the acting primary's version
		// word serializes writers...
		mn := cfg.replicaMN(p, acting)
		region := cfg.hostedRegion(mn, p)
		verAddr := rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx) + 8}
		c.Stats.CASIssued++
		prev, err := c.ctx.CAS(verAddr, ver, ver+1)
		if err != nil {
			if c.noteErr(mn, err) {
				continue
			}
			return err
		}
		if prev != ver {
			c.Stats.CASRetries++
			delete(c.cache, string(key))
			c.backoff(attempt)
			continue
		}
		// ...then one doorbell batch lands every copy in place (plus
		// version words on the other replicas, so failover keeps the
		// version chain). Copies that no longer fit their class, or
		// whose MN died, are redirected to fresh blocks in the same
		// batch (word0 rewrite is safe: the version CAS is the lock).
		if err := c.landCopies(key, val, tombstone, p, fp, bucket, slotIdx, ver+1, size, class, words, live); err != nil {
			if errors.Is(err, rdma.ErrNodeFailed) {
				c.refreshView()
				delete(c.cache, string(key))
				continue
			}
			return err
		}
		return nil
	}
	return ErrRetriesExhausted
}

// complete reports whether the cache entry knows word0 for at least
// every live replica position it will write.
func (e *cacheEnt) complete(liveCount int) bool {
	n := 0
	for _, w := range e.words {
		if w != 0 {
			n++
		}
	}
	return n >= liveCount && e.class > 0
}

// errConflict signals a lost insert race (retry with re-locate).
var errConflict = errors.New("swarm: insert conflict")

// locate walks the buckets from the acting replica and returns the
// key's slot (or a free slot), the current version word, the
// per-replica word0s of the slot, and the existing copy class.
func (c *Client) locate(key []byte, p, acting int, fp uint8, b1, b2, h uint64, tombstone bool) (bucket uint64, slotIdx int, ver uint64, words []uint64, class int, found bool, err error) {
	cfg := &c.cl.Cfg
	words = make([]uint64, cfg.Replicas)
	buf1, buf2, err := c.readBucketPair(p, acting, b1, b2)
	if err != nil {
		return 0, 0, 0, nil, 0, false, err
	}
	for bi, buf := range [][]byte{buf1, buf2} {
		bkt := b1
		if bi == 1 {
			bkt = b2
		}
		for _, s := range c.scan(fp, buf) {
			w0, w1 := wordsOf(buf, s)
			kv, kerr := c.readCopyFailover(p, bkt, s, w0, c.guessSize(key))
			if kerr != nil || kv == nil || !bytes.Equal(kv.Key, key) {
				continue
			}
			bucket, slotIdx, ver = bkt, s, w1
			words[acting] = w0
			class = layout.KVClassSize(len(kv.Key), len(kv.Val))
			if len(kv.Val) == 0 {
				// Tombstones decode with an empty value; the slot's
				// copies keep their allocated class. Recover it from
				// the header-visible lengths only when larger.
				class = layout.KVClassSize(len(kv.Key), 0)
			}
			found = true
			break
		}
		if found {
			break
		}
	}
	if !found {
		if tombstone {
			return 0, 0, 0, words, 0, false, nil
		}
		fBuf, sBuf, fB, sB := buf1, buf2, b1, b2
		if h>>32&1 == 1 {
			fBuf, sBuf, fB, sB = buf2, buf1, b2, b1
		}
		if s := c.freeSlot(fBuf); s >= 0 {
			bucket, slotIdx = fB, s
		} else if s := c.freeSlot(sBuf); s >= 0 {
			bucket, slotIdx = sB, s
		} else {
			return 0, 0, 0, nil, 0, false, fmt.Errorf("swarm: buckets full for key %q", key)
		}
		return bucket, slotIdx, 0, words, 0, false, nil
	}
	// Read the other surviving replicas' word0s for the slot.
	live := c.liveReplicas(p)
	var ops []rdma.Op
	bufs := map[int][]byte{}
	for _, ri := range live {
		if ri == acting {
			continue
		}
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		buf := make([]byte, 8)
		bufs[ri] = buf
		ops = append(ops, rdma.Op{Kind: rdma.OpRead,
			Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
			Buf:  buf})
	}
	if len(ops) > 0 {
		c.Stats.ReadsIssued += uint64(len(ops))
		c.Stats.BytesRead += uint64(len(ops) * 8)
		if err := c.ctx.Batch(ops); err != nil {
			return 0, 0, 0, nil, 0, false, err
		}
		for ri, buf := range bufs {
			words[ri] = binary.LittleEndian.Uint64(buf)
		}
	}
	return bucket, slotIdx, ver, words, class, true, nil
}

// insertSlot commits a key's first write: place one copy per live
// replica position (distinct MNs), write them (version 1) together
// with the backup version words in one batch, then CAS word0 on the
// backups and finally the acting primary — the FUSEE-style insert-race
// commit.
func (c *Client) insertSlot(key, val []byte, tombstone bool, p int, fp uint8, bucket uint64, slotIdx, size int, live []int) error {
	cfg := &c.cl.Cfg
	classUnits := uint8(size / 64)

	// Read the backup replicas' current word0s first: a lost insert
	// race can leave a loser's word on a backup, and the CAS below
	// must swing from whatever is there (as FUSEE's conflict
	// resolution does), not assume zero.
	backupOld := map[int]uint64{}
	if len(live) > 1 {
		var ops []rdma.Op
		bufs := map[int][]byte{}
		for _, ri := range live[1:] {
			mn := cfg.replicaMN(p, ri)
			region := cfg.hostedRegion(mn, p)
			buf := make([]byte, 8)
			bufs[ri] = buf
			ops = append(ops, rdma.Op{Kind: rdma.OpRead,
				Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
				Buf:  buf})
		}
		c.Stats.ReadsIssued += uint64(len(ops))
		c.Stats.BytesRead += uint64(len(ops) * 8)
		if err := c.ctx.Batch(ops); err != nil {
			return err
		}
		for ri, buf := range bufs {
			backupOld[ri] = binary.LittleEndian.Uint64(buf)
		}
	}

	addrs, ops, err := c.placeCopies(key, val, tombstone, classUnits, 1, len(live))
	if err != nil {
		return err
	}
	// Backup version words ride the copy batch (same value on every
	// inserter: 1).
	for _, ri := range live[1:] {
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		vb := make([]byte, 8)
		binary.LittleEndian.PutUint64(vb, 1)
		ops = append(ops, rdma.Op{Kind: rdma.OpWrite,
			Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx) + 8},
			Buf:  vb})
		c.Stats.WritesIssued++
		c.Stats.BytesWritten += 8
	}
	if err := c.ctx.Batch(ops); err != nil {
		delete(c.open, classUnits)
		return err
	}
	// Word0 CAS rounds: backups first, acting primary commits.
	newWords := make([]uint64, cfg.Replicas)
	for i, ri := range live {
		newWords[ri] = slotWord(fp, addrs[i])
	}
	for _, ri := range live[1:] {
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		c.Stats.CASIssued++
		prev, err := c.ctx.CAS(rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)}, backupOld[ri], newWords[ri])
		if err != nil {
			c.noteErr(mn, err)
			return err
		}
		if prev != backupOld[ri] {
			return errConflict
		}
	}
	mn := cfg.replicaMN(p, live[0])
	region := cfg.hostedRegion(mn, p)
	c.Stats.CASIssued++
	prev, err := c.ctx.CAS(rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)}, 0, newWords[live[0]])
	if err != nil {
		return err
	}
	if prev != 0 {
		return errConflict
	}
	if cfg.CacheValues && live[0] == 0 {
		c.cache[string(key)] = &cacheEnt{bucket: bucket, slotIdx: slotIdx, words: newWords, class: size}
	}
	c.Stats.ValidBytes += uint64(size)
	return nil
}

// landCopies performs the in-place replicated write: one batch of copy
// overwrites stamped ver, backup version words, and word0 rewrites for
// any copy that had to move (class growth or a dead MN). The acting
// primary's version CAS (already done by the caller) is the lock that
// makes the plain writes safe.
func (c *Client) landCopies(key, val []byte, tombstone bool, p int, fp uint8, bucket uint64, slotIdx int, ver uint64, size, class int, words []uint64, live []int) error {
	cfg := &c.cl.Cfg
	fence := fenceFor(ver)

	// Which live replicas can be written in place?
	inPlace := make(map[int]uint64) // replica → packed copy addr
	var moved []int
	for _, ri := range live {
		w0 := words[ri]
		kmn, _ := layout.UnpackAddr(slotAddr(w0))
		if w0 != 0 && slotFP(w0) == fp && size <= class && !c.cl.Failed(int(kmn)) {
			inPlace[ri] = slotAddr(w0)
		} else {
			moved = append(moved, ri)
		}
	}
	// Copies are always encoded at the pair's true class size: readers
	// recompute it from the header, so a shrinking overwrite inside a
	// larger slot stays self-describing (bytes past the new trailing
	// fence are never decoded).
	buf := make([]byte, size)
	layout.EncodeKV(buf, key, val, ver, fence, tombstone)

	var ops []rdma.Op
	newWords := append([]uint64(nil), words...)
	for _, ri := range live {
		if addr, ok := inPlace[ri]; ok {
			mn, off := layout.UnpackAddr(addr)
			ops = append(ops, rdma.Op{Kind: rdma.OpWrite, Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: off}, Buf: buf})
			c.Stats.WritesIssued++
			c.Stats.BytesWritten += uint64(size)
		}
	}
	if len(moved) > 0 {
		classUnits := uint8(size / 64)
		addrs, placeOps, err := c.placeCopies(key, val, tombstone, classUnits, ver, len(moved))
		if err != nil {
			return err
		}
		ops = append(ops, placeOps...)
		for i, ri := range moved {
			newWords[ri] = slotWord(fp, addrs[i])
			mn := cfg.replicaMN(p, ri)
			region := cfg.hostedRegion(mn, p)
			wb := make([]byte, 8)
			binary.LittleEndian.PutUint64(wb, newWords[ri])
			ops = append(ops, rdma.Op{Kind: rdma.OpWrite,
				Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx)},
				Buf:  wb})
			c.Stats.WritesIssued++
			c.Stats.BytesWritten += 8
		}
	}
	// Backup version words (the acting primary's was set by the CAS).
	for _, ri := range live[1:] {
		mn := cfg.replicaMN(p, ri)
		region := cfg.hostedRegion(mn, p)
		vb := make([]byte, 8)
		binary.LittleEndian.PutUint64(vb, ver)
		ops = append(ops, rdma.Op{Kind: rdma.OpWrite,
			Addr: rdma.GlobalAddr{Node: c.cl.nodes[mn], Off: c.slotOff(region, bucket, slotIdx) + 8},
			Buf:  vb})
		c.Stats.WritesIssued++
		c.Stats.BytesWritten += 8
	}
	if err := c.ctx.Batch(ops); err != nil {
		return err
	}
	if cfg.CacheValues && live[0] == 0 {
		cls := class
		if size > cls {
			cls = size
		}
		c.cache[string(key)] = &cacheEnt{bucket: bucket, slotIdx: slotIdx, words: newWords, class: cls}
	}
	return nil
}

// placeCopies encodes the KV once and prepares n copy writes into open
// blocks on distinct live MNs, returning the packed addresses and the
// write ops (the caller batches them with its slot-word writes).
func (c *Client) placeCopies(key, val []byte, tombstone bool, classUnits uint8, ver uint64, n int) ([]uint64, []rdma.Op, error) {
	cfg := &c.cl.Cfg
	obs, err := c.getBlocks(classUnits, n)
	if err != nil {
		return nil, nil, err
	}
	size := int(classUnits) * 64
	buf := make([]byte, size)
	layout.EncodeKV(buf, key, val, ver, fenceFor(ver), tombstone)
	addrs := make([]uint64, n)
	ops := make([]rdma.Op, n)
	for i := 0; i < n; i++ {
		ob := obs[i]
		off := cfg.blockOff(ob.idx) + uint64(ob.next*size)
		ob.next++
		addrs[i] = layout.PackAddr(uint16(ob.mn), off)
		ops[i] = rdma.Op{Kind: rdma.OpWrite, Addr: rdma.GlobalAddr{Node: c.cl.nodes[ob.mn], Off: off}, Buf: buf}
	}
	c.Stats.WritesIssued += uint64(n)
	c.Stats.BytesWritten += uint64(n * size)
	full := false
	for _, ob := range obs {
		if (ob.next+1)*size > int(cfg.BlockSize) {
			full = true
		}
	}
	if full {
		delete(c.open, classUnits)
	}
	return addrs, ops, nil
}

// getBlocks returns (allocating if needed) at least n open blocks for
// a size class on distinct live MNs (relaxing distinctness when
// failures leave fewer live MNs than replicas).
func (c *Client) getBlocks(classUnits uint8, n int) ([]*openBlock, error) {
	if obs, ok := c.open[classUnits]; ok && len(obs) >= n {
		return obs, nil
	}
	cfg := &c.cl.Cfg
	base := int(c.id)
	var req [2]byte
	binary.LittleEndian.PutUint16(req[:], c.id)
	obs := make([]*openBlock, 0, n)
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		allocated := false
		for _, distinct := range []bool{true, false} {
			for try := 0; try < cfg.NumMNs && !allocated; try++ {
				mn := (base + i + try) % cfg.NumMNs
				if (distinct && used[mn]) || c.cl.Failed(mn) {
					continue
				}
				resp, err := c.ctx.RPC(c.cl.nodes[mn], methodAlloc, req[:])
				if err != nil {
					c.noteErr(mn, err)
					continue
				}
				if len(resp) == 0 || resp[0] != 0 {
					continue
				}
				idx := int(binary.LittleEndian.Uint32(resp[1:]))
				obs = append(obs, &openBlock{mn: mn, idx: idx})
				used[mn] = true
				allocated = true
			}
			if allocated {
				break
			}
		}
		if !allocated {
			return nil, ErrNoSpace
		}
	}
	c.open[classUnits] = obs
	return obs, nil
}
