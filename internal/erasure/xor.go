package erasure

import (
	"fmt"
	"sync"
)

// XorCode is an XOR-only systematic code with two parity shards (P, Q)
// tolerating any two shard losses per stripe — the fault-tolerance
// level the paper requires of a coding group (§3.3.1).
//
// It uses the EVENODD construction (Blaum et al.): shards are split
// into p−1 equal segments (p prime), P is the plain XOR of the data
// shards, and Q holds diagonal parities over the (p−1)×p cell array
// plus the "adjuster" diagonal S folded into every Q segment. Encoding,
// delta updates and reconstruction use XOR only, which is why the
// XOR-based code beats the GF-based Reed-Solomon code in Table 2.
//
// The paper names X-Code; X-Code stores its two parity rows inside
// every column, which contradicts Aceso's own metadata model of
// dedicated DATA and PARITY blocks (Figure 5), so we use the
// equivalent-property EVENODD layout. See DESIGN.md §9.
//
// Parallelism: every kernel is banded on the within-segment column
// range [lo, hi) — band [lo, hi) reads and writes only those columns
// of every P/Q segment (and of the adjuster scratch), so bands are
// disjoint and SetWorkers fans whole-shard calls out over the package
// worker pool.
type XorCode struct {
	k       int
	p       int // prime, >= k
	workers int
	// scratch pools per-band adjuster buffers: each band's encode
	// needs its own S accumulator, and pooling keeps the steady-state
	// encode path at 0 allocs/op.
	scratch sync.Pool
}

// xorPrimes are the supported primes: p−1 must divide power-of-two
// block sizes, so p−1 must itself be a power of two.
// (p=2 is excluded: with a single row the diagonal parity degenerates
// into a copy of the row parity and the code is no longer MDS.)
var xorPrimes = []int{3, 5, 17, 257}

// NewXor creates an XOR-only code with k data shards and 2 parity
// shards. k must be between 1 and 257.
func NewXor(k int) (*XorCode, error) {
	if k < 1 || k > 257 {
		return nil, fmt.Errorf("erasure: xor code supports 1..257 data shards, got %d", k)
	}
	for _, p := range xorPrimes {
		if p >= k {
			return &XorCode{k: k, p: p}, nil
		}
	}
	panic("unreachable")
}

// Name implements Code.
func (c *XorCode) Name() string { return "xor" }

// K implements Code.
func (c *XorCode) K() int { return c.k }

// M implements Code.
func (c *XorCode) M() int { return 2 }

// SegmentAlign implements Code: shard length must be a multiple of p−1.
func (c *XorCode) SegmentAlign() int { return c.p - 1 }

// BandWidth implements Code: the band dimension is the segment size.
func (c *XorCode) BandWidth(n int) int { return n / (c.p - 1) }

// SetWorkers sets the wall-clock fan-out for whole-shard kernels
// (clamped per call by band width; ≤1 keeps everything on the caller).
// Not safe to change while kernels are in flight — configure at setup.
func (c *XorCode) SetWorkers(n int) { c.workers = n }

// getScratch returns a pooled adjuster buffer of capacity ≥ n.
func (c *XorCode) getScratch(n int) *[]byte {
	sp, _ := c.scratch.Get().(*[]byte)
	if sp == nil {
		b := make([]byte, n)
		return &b
	}
	if cap(*sp) < n {
		*sp = make([]byte, n)
	}
	return sp
}

// Encode implements Code: parity[0] = P (row parity), parity[1] = Q
// (diagonal parity with the EVENODD adjuster).
func (c *XorCode) Encode(data, parity [][]byte) error {
	size, err := checkEncode(c, data, parity)
	if err != nil {
		return err
	}
	segSize := size / (c.p - 1)
	nw := poolWorkers(c.workers, segSize)
	if nw <= 1 {
		c.encodeBand(data, parity, 0, segSize)
		return nil
	}
	shared.mu.Lock()
	shared.job.kind = jobXorEncode
	shared.job.xc = c
	shared.job.data = data
	shared.job.parity = parity
	shared.fanOut(segSize, nw)
	shared.mu.Unlock()
	return nil
}

// encodeBand computes the [lo, hi) columns of every P and Q segment.
func (c *XorCode) encodeBand(data, parity [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	rp, q := parity[0], parity[1]
	segSize := len(rp) / (c.p - 1)
	sp := c.getScratch(hi - lo)
	s := (*sp)[:hi-lo] // the adjuster diagonal p−1, band columns only
	zero(s)
	for r := 0; r < c.p-1; r++ {
		zero(rp[r*segSize+lo : r*segSize+hi])
		zero(q[r*segSize+lo : r*segSize+hi])
	}
	for di := 0; di < c.k; di++ {
		shard := data[di]
		for r := 0; r < c.p-1; r++ {
			piece := shard[r*segSize+lo : r*segSize+hi]
			xorBytes(rp[r*segSize+lo:r*segSize+hi], piece)
			d := (r + di) % c.p
			if d == c.p-1 {
				xorBytes(s, piece)
			} else {
				xorBytes(q[d*segSize+lo:d*segSize+hi], piece)
			}
		}
	}
	// Fold the adjuster into every Q segment.
	for t := 0; t < c.p-1; t++ {
		xorBytes(q[t*segSize+lo:t*segSize+hi], s)
	}
	c.scratch.Put(sp)
}

// Update implements Code: fold delta (old⊕new of data shard di at byte
// offset off) into P and Q.
func (c *XorCode) Update(parity [][]byte, di int, off int, delta []byte) {
	for pi := range parity {
		c.UpdateOne(pi, parity[pi], di, off, delta)
	}
}

// UpdateOne implements Code for a single parity shard.
func (c *XorCode) UpdateOne(pi int, parity []byte, di int, off int, delta []byte) {
	c.updateOneBand(pi, parity, di, off, delta, 0, len(parity)/(c.p-1))
}

// ApplyDeltas implements Code: fold every delta into parity shard pi in
// one pass, fanned out over the pool when configured.
func (c *XorCode) ApplyDeltas(pi int, parity []byte, deltas []ShardDelta) {
	width := len(parity) / (c.p - 1)
	nw := poolWorkers(c.workers, width)
	if nw <= 1 {
		c.applyDeltasBand(pi, parity, deltas, 0, width)
		return
	}
	shared.mu.Lock()
	shared.job.kind = jobXorApply
	shared.job.xc = c
	shared.job.pi = pi
	shared.job.pshard = parity
	shared.job.deltas = deltas
	shared.fanOut(width, nw)
	shared.mu.Unlock()
}

// ApplyDeltasBand implements Code.
func (c *XorCode) ApplyDeltasBand(pi int, parity []byte, deltas []ShardDelta, lo, hi int) {
	if w := len(parity) / (c.p - 1); hi > w {
		hi = w
	}
	c.applyDeltasBand(pi, parity, deltas, lo, hi)
}

func (c *XorCode) applyDeltasBand(pi int, parity []byte, deltas []ShardDelta, lo, hi int) {
	for _, d := range deltas {
		c.updateOneBand(pi, parity, d.DI, d.Off, d.B, lo, hi)
	}
}

// updateOneBand folds delta into the [lo, hi) columns of parity shard
// pi. Walking the delta row by row, each piece lands at the same
// within-segment offsets in P, on one diagonal of Q, or — on the
// adjuster diagonal — in every Q segment; in all three cases only
// band columns are touched, so bands stay disjoint across workers.
func (c *XorCode) updateOneBand(pi int, parity []byte, di, off int, delta []byte, lo, hi int) {
	if len(delta) == 0 || lo >= hi {
		return
	}
	segSize := len(parity) / (c.p - 1)
	r0 := off / segSize
	r1 := (off + len(delta) - 1) / segSize
	for r := r0; r <= r1; r++ {
		// Intersect the delta's reach into row r with the band.
		a := lo
		if s := off - r*segSize; s > a {
			a = s
		}
		b := hi
		if e := off + len(delta) - r*segSize; e < b {
			b = e
		}
		if a >= b {
			continue
		}
		piece := delta[r*segSize+a-off : r*segSize+b-off]
		if pi == 0 { // P: plain XOR at the same offsets
			xorBytes(parity[r*segSize+a:r*segSize+b], piece)
			continue
		}
		d := (r + di) % c.p
		if d == c.p-1 {
			for t := 0; t < c.p-1; t++ {
				xorBytes(parity[t*segSize+a:t*segSize+b], piece)
			}
		} else {
			xorBytes(parity[d*segSize+a:d*segSize+b], piece)
		}
	}
}

// cell identifies one segment of one shard in the stripe's cell array.
type cell struct {
	shard int // 0..k-1 data, k = P, k+1 = Q
	seg   int
}

// equations returns the parity equations of the stripe as cell sets.
// Every equation XORs to zero over the cells it contains.
func (c *XorCode) equations() [][]cell {
	eqs := make([][]cell, 0, 2*(c.p-1))
	// Row parity: P[r] ^ XOR_c D[r][c] = 0.
	for r := 0; r < c.p-1; r++ {
		eq := []cell{{c.k, r}}
		for di := 0; di < c.k; di++ {
			eq = append(eq, cell{di, r})
		}
		eqs = append(eqs, eq)
	}
	// Diagonal parity: Q[t] ^ S ^ XOR_{(r+di)%p==t} D[r][di] = 0,
	// with S = XOR_{(r+di)%p==p-1} D[r][di]. Cells appearing twice
	// cancel, but with t != p-1 the sets are disjoint.
	for t := 0; t < c.p-1; t++ {
		eq := []cell{{c.k + 1, t}}
		for di := 0; di < c.k; di++ {
			for r := 0; r < c.p-1; r++ {
				d := (r + di) % c.p
				if d == t || d == c.p-1 {
					eq = append(eq, cell{di, r})
				}
			}
		}
		eqs = append(eqs, eq)
	}
	return eqs
}

// PlanReconstruct implements Code: validate, then eliminate the
// stripe's parity equations over GF(2) with the missing shards'
// segments as unknowns — a generic decoder covering every combination
// of up to two lost shards (data-data, data-P, data-Q, P-Q) uniformly.
func (c *XorCode) PlanReconstruct(shards [][]byte, present []bool) (*Plan, error) {
	size, missing, err := checkShards(c, shards, present)
	if err != nil {
		return nil, err
	}
	if len(missing) == 0 {
		return nil, nil
	}
	segSize := size / (c.p - 1)
	unknowns := make([]cell, 0, len(missing)*(c.p-1))
	for _, mi := range missing {
		for r := 0; r < c.p-1; r++ {
			unknowns = append(unknowns, cell{mi, r})
		}
	}
	return buildXorPlan(c.equations(), unknowns, segSize, segSize)
}

// Reconstruct implements Code.
func (c *XorCode) Reconstruct(shards [][]byte, present []bool) error {
	pl, err := c.PlanReconstruct(shards, present)
	if err != nil || pl == nil {
		return err
	}
	runPlanPooled(pl, shards, c.workers)
	return nil
}
