package erasure

import "fmt"

// XorCode is an XOR-only systematic code with two parity shards (P, Q)
// tolerating any two shard losses per stripe — the fault-tolerance
// level the paper requires of a coding group (§3.3.1).
//
// It uses the EVENODD construction (Blaum et al.): shards are split
// into p−1 equal segments (p prime), P is the plain XOR of the data
// shards, and Q holds diagonal parities over the (p−1)×p cell array
// plus the "adjuster" diagonal S folded into every Q segment. Encoding,
// delta updates and reconstruction use XOR only, which is why the
// XOR-based code beats the GF-based Reed-Solomon code in Table 2.
//
// The paper names X-Code; X-Code stores its two parity rows inside
// every column, which contradicts Aceso's own metadata model of
// dedicated DATA and PARITY blocks (Figure 5), so we use the
// equivalent-property EVENODD layout. See DESIGN.md.
type XorCode struct {
	k int
	p int // prime, >= k
}

// xorPrimes are the supported primes: p−1 must divide power-of-two
// block sizes, so p−1 must itself be a power of two.
// (p=2 is excluded: with a single row the diagonal parity degenerates
// into a copy of the row parity and the code is no longer MDS.)
var xorPrimes = []int{3, 5, 17, 257}

// NewXor creates an XOR-only code with k data shards and 2 parity
// shards. k must be between 1 and 257.
func NewXor(k int) (*XorCode, error) {
	if k < 1 || k > 257 {
		return nil, fmt.Errorf("erasure: xor code supports 1..257 data shards, got %d", k)
	}
	for _, p := range xorPrimes {
		if p >= k {
			return &XorCode{k: k, p: p}, nil
		}
	}
	panic("unreachable")
}

// Name implements Code.
func (c *XorCode) Name() string { return "xor" }

// K implements Code.
func (c *XorCode) K() int { return c.k }

// M implements Code.
func (c *XorCode) M() int { return 2 }

// SegmentAlign implements Code: shard length must be a multiple of p−1.
func (c *XorCode) SegmentAlign() int { return c.p - 1 }

// Encode implements Code: parity[0] = P (row parity), parity[1] = Q
// (diagonal parity with the EVENODD adjuster).
func (c *XorCode) Encode(data, parity [][]byte) {
	p, q := parity[0], parity[1]
	segSize := len(p) / (c.p - 1)
	zero(p)
	zero(q)
	s := make([]byte, segSize) // the adjuster diagonal p−1
	for di := 0; di < c.k; di++ {
		shard := data[di]
		xorBytes(p, shard)
		for r := 0; r < c.p-1; r++ {
			seg := shard[r*segSize : (r+1)*segSize]
			d := (r + di) % c.p
			if d == c.p-1 {
				xorBytes(s, seg)
			} else {
				xorBytes(q[d*segSize:(d+1)*segSize], seg)
			}
		}
	}
	// Fold the adjuster into every Q segment.
	for t := 0; t < c.p-1; t++ {
		xorBytes(q[t*segSize:(t+1)*segSize], s)
	}
}

// Update implements Code: fold delta (old⊕new of data shard di at byte
// offset off) into P and Q.
func (c *XorCode) Update(parity [][]byte, di int, off int, delta []byte) {
	for pi := range parity {
		c.UpdateOne(pi, parity[pi], di, off, delta)
	}
}

// UpdateOne implements Code for a single parity shard.
func (c *XorCode) UpdateOne(pi int, parity []byte, di int, off int, delta []byte) {
	if pi == 0 { // P: plain XOR at the same offsets
		xorBytes(parity[off:off+len(delta)], delta)
		return
	}
	// Q: walk the delta segment by segment; each piece lands on one
	// diagonal (or, on the adjuster diagonal, on all of them).
	q := parity
	segSize := len(q) / (c.p - 1)
	pos := 0
	for pos < len(delta) {
		abs := off + pos
		r := abs / segSize
		within := abs % segSize
		n := segSize - within
		if n > len(delta)-pos {
			n = len(delta) - pos
		}
		piece := delta[pos : pos+n]
		d := (r + di) % c.p
		if d == c.p-1 {
			for t := 0; t < c.p-1; t++ {
				xorBytes(q[t*segSize+within:t*segSize+within+n], piece)
			}
		} else {
			xorBytes(q[d*segSize+within:d*segSize+within+n], piece)
		}
		pos += n
	}
}

// cell identifies one segment of one shard in the stripe's cell array.
type cell struct {
	shard int // 0..k-1 data, k = P, k+1 = Q
	seg   int
}

// equations returns the parity equations of the stripe as cell sets.
// Every equation XORs to zero over the cells it contains.
func (c *XorCode) equations() [][]cell {
	eqs := make([][]cell, 0, 2*(c.p-1))
	// Row parity: P[r] ^ XOR_c D[r][c] = 0.
	for r := 0; r < c.p-1; r++ {
		eq := []cell{{c.k, r}}
		for di := 0; di < c.k; di++ {
			eq = append(eq, cell{di, r})
		}
		eqs = append(eqs, eq)
	}
	// Diagonal parity: Q[t] ^ S ^ XOR_{(r+di)%p==t} D[r][di] = 0,
	// with S = XOR_{(r+di)%p==p-1} D[r][di]. Cells appearing twice
	// cancel, but with t != p-1 the sets are disjoint.
	for t := 0; t < c.p-1; t++ {
		eq := []cell{{c.k + 1, t}}
		for di := 0; di < c.k; di++ {
			for r := 0; r < c.p-1; r++ {
				d := (r + di) % c.p
				if d == t || d == c.p-1 {
					eq = append(eq, cell{di, r})
				}
			}
		}
		eqs = append(eqs, eq)
	}
	return eqs
}

// Reconstruct implements Code. It solves the stripe's parity equations
// over GF(2) with the missing shards' segments as unknowns — a generic
// decoder that handles every combination of up to two lost shards
// (data-data, data-P, data-Q, P-Q) uniformly.
func (c *XorCode) Reconstruct(shards [][]byte, present []bool) error {
	size, missing, err := checkShards(c, shards, present)
	if err != nil {
		return err
	}
	if len(missing) == 0 {
		return nil
	}
	segSize := size / (c.p - 1)
	sv := newGF2Solver(segSize)
	for _, mi := range missing {
		for r := 0; r < c.p-1; r++ {
			sv.addUnknown(cell{mi, r})
		}
	}
	return sv.solve(c.equations(),
		func(cl cell) []byte {
			return shards[cl.shard][cl.seg*segSize : (cl.seg+1)*segSize]
		},
		func(cl cell, val []byte) {
			copy(shards[cl.shard][cl.seg*segSize:(cl.seg+1)*segSize], val)
		})
}
