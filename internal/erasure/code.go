package erasure

import (
	"crypto/subtle"
	"errors"
	"fmt"
)

// Errors returned by the coding kernels.
var (
	// ErrTooManyMissing reports more missing shards than the code's
	// parity count can recover.
	ErrTooManyMissing = errors.New("erasure: too many missing shards")
	// ErrShardSize reports shards of unequal or unusable length.
	ErrShardSize = errors.New("erasure: bad shard size")
	// ErrPresent reports a present vector whose length does not match
	// the code's shard count — caller misuse, as opposed to data loss
	// (ErrTooManyMissing) or a bad shard matrix (ErrShardSize).
	ErrPresent = errors.New("erasure: bad present vector")
)

// ShardDelta is one pending data-shard change for batched parity
// application: B holds old⊕new of the byte range [Off, Off+len(B)) of
// data shard DI. A slice of these is what delta-based reclamation
// hands the kernels, so many KV deltas fold into a parity shard in one
// pass over the parity (ApplyDeltas) instead of one pass per delta.
type ShardDelta struct {
	DI  int
	Off int
	B   []byte
}

// Code is a systematic linear erasure code over k equal-size data
// blocks and m parity blocks. All methods operate on whole shards of
// one stripe; shards must be the same length (for the XOR code, a
// multiple of SegmentAlign).
//
// Banded kernels: every heavy method has a band form that operates on
// the column range [lo, hi) of the code's band dimension (BandWidth).
// Bands are disjoint — no two bands read or write the same parity
// byte — so callers may fan bands out over workers with no further
// synchronisation. The whole-shard methods do this internally through
// the package worker pool when SetWorkers on the concrete type asks
// for it.
type Code interface {
	// Name identifies the code ("xor" or "rs") in reports.
	Name() string
	// K returns the number of data shards per stripe.
	K() int
	// M returns the number of parity shards per stripe.
	M() int
	// Encode computes all parity shards from the data shards.
	// len(data) == K(), len(parity) == M(). It validates the shard
	// matrix (counts, equal lengths, SegmentAlign multiples) and
	// reports ErrShardSize-wrapped errors for mismatched inputs that
	// would otherwise silently corrupt parity.
	Encode(data, parity [][]byte) error
	// Update folds a change to data shard di into the parity shards:
	// delta is old⊕new of the byte range [off, off+len(delta)) of that
	// shard. This is the linearity property (§3.3.3): parity follows
	// without re-reading the other data shards.
	Update(parity [][]byte, di int, off int, delta []byte)
	// UpdateOne folds the same delta into a single parity shard pi.
	// Aceso stores each parity block of a stripe on a different memory
	// node, and each parity node folds its local DELTA block in
	// independently (§3.3.2), so per-parity application is the form
	// the servers actually use.
	UpdateOne(pi int, parity []byte, di int, off int, delta []byte)
	// ApplyDeltas folds every delta into parity shard pi in one pass
	// over the parity — the batched form of UpdateOne that delta-based
	// reclamation uses to retire many DELTA blocks together.
	ApplyDeltas(pi int, parity []byte, deltas []ShardDelta)
	// ApplyDeltasBand is ApplyDeltas restricted to the band [lo, hi)
	// of BandWidth(len(parity)); bands are disjoint across workers.
	ApplyDeltasBand(pi int, parity []byte, deltas []ShardDelta, lo, hi int)
	// BandWidth returns the length of the band dimension for shards of
	// n bytes: the segment size for array codes (every segment's
	// column range [lo, hi) is touched by band [lo, hi)), n itself for
	// codes with no internal layout.
	BandWidth(n int) int
	// Reconstruct recomputes the missing shards in place. shards holds
	// the K data shards followed by the M parity shards; present[i]
	// tells whether shards[i] survived. Missing shards must be
	// pre-allocated (their contents are ignored and overwritten).
	Reconstruct(shards [][]byte, present []bool) error
	// PlanReconstruct validates the erasure pattern and performs the
	// solver elimination once, returning a Plan whose Run applies pure
	// banded XOR/GF work — the form callers fan out over worker pools.
	// A nil Plan (and nil error) means nothing is missing.
	PlanReconstruct(shards [][]byte, present []bool) (*Plan, error)
	// SegmentAlign returns the required shard-length multiple (1 for
	// codes with no internal layout).
	SegmentAlign() int
	// SetWorkers sets the wall-clock fan-out for whole-shard kernels
	// (Encode, ApplyDeltas, Reconstruct): bands are dispatched to the
	// package worker pool when n > 1 and the shards are wide enough.
	// 0 or 1 keeps every kernel on the calling goroutine.
	SetWorkers(n int)
}

// xorBytes computes dst[i] ^= src[i] over the overlapping length.
// Long runs go through crypto/subtle.XORBytes, which the runtime
// vectorises (SSE2/AVX2 on amd64, NEON on arm64) — the exact aliasing
// dst == x it requires is what in-place ^= provides. Short slices keep
// a byte loop: below ~32 B the call and alignment preamble of the
// vector kernel cost more than the XOR itself.
func xorBytes(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n >= 32 {
		subtle.XORBytes(dst[:n], dst[:n], src[:n])
		return
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorInto computes dst ^= src (exported for delta computation by the
// client: delta = oldKV ⊕ newKV).
func XorInto(dst, src []byte) { xorBytes(dst, src) }

// checkShards validates a shard matrix for a code.
func checkShards(c Code, shards [][]byte, present []bool) (size int, missing []int, err error) {
	want := c.K() + c.M()
	if len(shards) != want {
		return 0, nil, fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), want)
	}
	if len(present) != want {
		return 0, nil, fmt.Errorf("%w: got %d entries, want %d", ErrPresent, len(present), want)
	}
	size = -1
	for i, s := range shards {
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, nil, fmt.Errorf("%w: shard %d has %d bytes, others %d", ErrShardSize, i, len(s), size)
		}
		if !present[i] {
			missing = append(missing, i)
		}
	}
	if size%c.SegmentAlign() != 0 {
		return 0, nil, fmt.Errorf("%w: %d not a multiple of %d", ErrShardSize, size, c.SegmentAlign())
	}
	if len(missing) > c.M() {
		return 0, nil, fmt.Errorf("%w: %d missing, parity %d", ErrTooManyMissing, len(missing), c.M())
	}
	return size, missing, nil
}

// checkEncode validates an Encode call's shard matrix: counts, equal
// lengths, SegmentAlign multiples. It allocates nothing on the success
// path — the encode path is pinned at 0 allocs/op.
func checkEncode(c Code, data, parity [][]byte) (size int, err error) {
	if len(data) != c.K() {
		return 0, fmt.Errorf("%w: got %d data shards, want %d", ErrShardSize, len(data), c.K())
	}
	if len(parity) != c.M() {
		return 0, fmt.Errorf("%w: got %d parity shards, want %d", ErrShardSize, len(parity), c.M())
	}
	size = -1
	for i, s := range data {
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: data shard %d has %d bytes, others %d", ErrShardSize, i, len(s), size)
		}
	}
	for i, s := range parity {
		if len(s) != size {
			return 0, fmt.Errorf("%w: parity shard %d has %d bytes, data %d", ErrShardSize, i, len(s), size)
		}
	}
	if size%c.SegmentAlign() != 0 {
		return 0, fmt.Errorf("%w: %d not a multiple of %d", ErrShardSize, size, c.SegmentAlign())
	}
	return size, nil
}

// zero clears a byte slice.
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
