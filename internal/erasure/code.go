package erasure

import (
	"crypto/subtle"
	"errors"
	"fmt"
)

// Errors returned by Reconstruct.
var (
	// ErrTooManyMissing reports more missing shards than the code's
	// parity count can recover.
	ErrTooManyMissing = errors.New("erasure: too many missing shards")
	// ErrShardSize reports shards of unequal or unusable length.
	ErrShardSize = errors.New("erasure: bad shard size")
)

// Code is a systematic linear erasure code over k equal-size data
// blocks and m parity blocks. All methods operate on whole shards of
// one stripe; shards must be the same length (for the XOR code, a
// multiple of SegmentsPerBlock).
type Code interface {
	// Name identifies the code ("xor" or "rs") in reports.
	Name() string
	// K returns the number of data shards per stripe.
	K() int
	// M returns the number of parity shards per stripe.
	M() int
	// Encode computes all parity shards from the data shards.
	// len(data) == K(), len(parity) == M().
	Encode(data, parity [][]byte)
	// Update folds a change to data shard di into the parity shards:
	// delta is old⊕new of the byte range [off, off+len(delta)) of that
	// shard. This is the linearity property (§3.3.3): parity follows
	// without re-reading the other data shards.
	Update(parity [][]byte, di int, off int, delta []byte)
	// UpdateOne folds the same delta into a single parity shard pi.
	// Aceso stores each parity block of a stripe on a different memory
	// node, and each parity node folds its local DELTA block in
	// independently (§3.3.2), so per-parity application is the form
	// the servers actually use.
	UpdateOne(pi int, parity []byte, di int, off int, delta []byte)
	// Reconstruct recomputes the missing shards in place. shards holds
	// the K data shards followed by the M parity shards; present[i]
	// tells whether shards[i] survived. Missing shards must be
	// pre-allocated (their contents are ignored and overwritten).
	Reconstruct(shards [][]byte, present []bool) error
	// SegmentAlign returns the required shard-length multiple (1 for
	// codes with no internal layout).
	SegmentAlign() int
}

// xorBytes computes dst[i] ^= src[i] over the overlapping length.
// Long runs go through crypto/subtle.XORBytes, which the runtime
// vectorises (SSE2/AVX2 on amd64, NEON on arm64) — the exact aliasing
// dst == x it requires is what in-place ^= provides. Short slices keep
// a byte loop: below ~32 B the call and alignment preamble of the
// vector kernel cost more than the XOR itself.
func xorBytes(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	if n >= 32 {
		subtle.XORBytes(dst[:n], dst[:n], src[:n])
		return
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorInto computes dst ^= src (exported for delta computation by the
// client: delta = oldKV ⊕ newKV).
func XorInto(dst, src []byte) { xorBytes(dst, src) }

// checkShards validates a shard matrix for a code.
func checkShards(c Code, shards [][]byte, present []bool) (size int, missing []int, err error) {
	want := c.K() + c.M()
	if len(shards) != want || len(present) != want {
		return 0, nil, fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), want)
	}
	size = -1
	for i, s := range shards {
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, nil, fmt.Errorf("%w: shard %d has %d bytes, others %d", ErrShardSize, i, len(s), size)
		}
		if !present[i] {
			missing = append(missing, i)
		}
	}
	if size%c.SegmentAlign() != 0 {
		return 0, nil, fmt.Errorf("%w: %d not a multiple of %d", ErrShardSize, size, c.SegmentAlign())
	}
	if len(missing) > c.M() {
		return 0, nil, fmt.Errorf("%w: %d missing, parity %d", ErrTooManyMissing, len(missing), c.M())
	}
	return size, missing, nil
}

// zero clears a byte slice.
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
