package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// encodeStripe builds and encodes a stripe for a code, returning data,
// parity and the combined shard matrix.
func encodeStripe(t testing.TB, c Code, size int, seed int64) (data, parity, all [][]byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < c.K(); i++ {
		s := make([]byte, size)
		rng.Read(s)
		data = append(data, s)
	}
	for i := 0; i < c.M(); i++ {
		parity = append(parity, make([]byte, size))
	}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	all = append(append([][]byte{}, data...), parity...)
	return
}

// TestEncodeParallelMatchesSerial pins the band decomposition: fanning
// the kernels over workers must produce byte-identical parity.
func TestEncodeParallelMatchesSerial(t *testing.T) {
	xc, _ := NewXor(6)
	rs, _ := NewRS(6, 2)
	for _, c := range []Code{xc, rs} {
		// Wide enough that poolWorkers actually splits: band width must
		// be >= 2*minBandBytes.
		size := c.SegmentAlign() * (4 * minBandBytes / c.SegmentAlign())
		data, parity, _ := encodeStripe(t, c, size, 11)
		want := make([][]byte, len(parity))
		for i := range parity {
			want[i] = append([]byte(nil), parity[i]...)
			zero(parity[i])
		}
		switch cc := c.(type) {
		case *XorCode:
			cc.SetWorkers(4)
		case *RSCode:
			cc.SetWorkers(4)
		}
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		for i := range parity {
			if !bytes.Equal(parity[i], want[i]) {
				t.Fatalf("%s: parity %d differs between 1 and 4 workers", c.Name(), i)
			}
		}
	}

	x, _ := NewXCode(5)
	segSize := 2 * minBandBytes
	cols := makeXCols(x, segSize, 12)
	want := make([][]byte, len(cols))
	for i := range cols {
		want[i] = append([]byte(nil), cols[i]...)
	}
	x.SetWorkers(4)
	if err := x.Encode(cols); err != nil {
		t.Fatal(err)
	}
	for i := range cols {
		if !bytes.Equal(cols[i], want[i]) {
			t.Fatalf("xcode: column %d differs between 1 and 4 workers", i)
		}
	}
}

// TestXorRoundTripAllPrimes is the property sweep the EVENODD decoder
// must satisfy: for every supported prime (k chosen to select it),
// random shard sizes, and two-loss patterns covering P, Q, and the
// adjuster-diagonal data cells, reconstruction restores the stripe
// exactly. Small primes get every pair exhaustively; p=257 samples
// pairs but always includes the P/Q and shard-0 edges.
func TestXorRoundTripAllPrimes(t *testing.T) {
	kForPrime := map[int]int{3: 2, 5: 4, 17: 16, 257: 18}
	for _, p := range xorPrimes {
		k := kForPrime[p]
		c, err := NewXor(k)
		if err != nil {
			t.Fatal(err)
		}
		if c.p != p {
			t.Fatalf("k=%d selected p=%d, want %d", k, c.p, p)
		}
		rng := rand.New(rand.NewSource(int64(p)))
		// Random shard sizes: odd multiples of p−1 exercise unaligned
		// segment lengths.
		size := (p - 1) * (1 + rng.Intn(9))
		_, _, all := encodeStripe(t, c, size, int64(p))
		orig := make([][]byte, len(all))
		for i := range all {
			orig[i] = append([]byte(nil), all[i]...)
		}
		n := k + 2
		var pairs [][2]int
		if p <= 17 {
			for a := 0; a < n; a++ {
				for b := a; b < n; b++ {
					pairs = append(pairs, [2]int{a, b})
				}
			}
		} else {
			// P/Q and first-shard edges, then random pairs. Every data
			// shard owns cells on the adjuster diagonal (d == p−1 at
			// row r = p−1−di mod p), so data-data pairs cover it.
			pairs = [][2]int{{n - 2, n - 1}, {0, n - 2}, {0, n - 1}, {0, 1}, {k - 1, n - 1}}
			for i := 0; i < 5; i++ {
				a, b := rng.Intn(n), rng.Intn(n)
				pairs = append(pairs, [2]int{a, b})
			}
		}
		for _, pr := range pairs {
			a, b := pr[0], pr[1]
			shards := make([][]byte, n)
			present := make([]bool, n)
			for i := range shards {
				if i == a || i == b {
					shards[i] = make([]byte, size)
				} else {
					shards[i] = append([]byte(nil), orig[i]...)
					present[i] = true
				}
			}
			if err := c.Reconstruct(shards, present); err != nil {
				t.Fatalf("p=%d erase (%d,%d): %v", p, a, b, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("p=%d erase (%d,%d): shard %d wrong", p, a, b, i)
				}
			}
		}
	}
}

// TestApplyDeltasMatchesUpdates pins the batched apply: folding a batch
// of deltas in one pass must equal applying them one by one, for both
// parity shards, at offsets that straddle segment boundaries and the
// adjuster diagonal.
func TestApplyDeltasMatchesUpdates(t *testing.T) {
	xc, _ := NewXor(4)
	rs, _ := NewRS(4, 2)
	for _, c := range []Code{xc, rs} {
		size := c.SegmentAlign() * 128
		_, parity, _ := encodeStripe(t, c, size, 21)
		rng := rand.New(rand.NewSource(22))
		var deltas []ShardDelta
		for i := 0; i < 12; i++ {
			off := rng.Intn(size)
			n := 1 + rng.Intn(size-off)
			b := make([]byte, n)
			rng.Read(b)
			deltas = append(deltas, ShardDelta{DI: rng.Intn(c.K()), Off: off, B: b})
		}
		for pi := 0; pi < c.M(); pi++ {
			batched := append([]byte(nil), parity[pi]...)
			oneByOne := append([]byte(nil), parity[pi]...)
			c.ApplyDeltas(pi, batched, deltas)
			for _, d := range deltas {
				c.UpdateOne(pi, oneByOne, d.DI, d.Off, d.B)
			}
			if !bytes.Equal(batched, oneByOne) {
				t.Fatalf("%s parity %d: batched apply diverges from sequential updates", c.Name(), pi)
			}
		}
	}
}

// TestEncodeValidation covers the Encode error paths that previously
// corrupted Q or panicked on slice bounds.
func TestEncodeValidation(t *testing.T) {
	c, _ := NewXor(4) // p=5, align 4
	good := func() ([][]byte, [][]byte) {
		data := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64), make([]byte, 64)}
		parity := [][]byte{make([]byte, 64), make([]byte, 64)}
		return data, parity
	}
	data, parity := good()
	if err := c.Encode(data[:3], parity); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short data accepted: %v", err)
	}
	data, parity = good()
	if err := c.Encode(data, parity[:1]); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short parity accepted: %v", err)
	}
	data, parity = good()
	data[1] = data[1][:32]
	if err := c.Encode(data, parity); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged data accepted: %v", err)
	}
	data, parity = good()
	parity[1] = parity[1][:32]
	if err := c.Encode(data, parity); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged parity accepted: %v", err)
	}
	data = [][]byte{make([]byte, 66), make([]byte, 66), make([]byte, 66), make([]byte, 66)}
	parity = [][]byte{make([]byte, 66), make([]byte, 66)}
	if err := c.Encode(data, parity); !errors.Is(err, ErrShardSize) {
		t.Fatalf("misaligned size accepted: %v", err)
	}
	rs, _ := NewRS(3, 2)
	rdata := [][]byte{make([]byte, 64), make([]byte, 64)}
	rparity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := rs.Encode(rdata, rparity); !errors.Is(err, ErrShardSize) {
		t.Fatalf("rs short data accepted: %v", err)
	}
}

// TestPresentVectorTyped pins the ErrPresent contract: a wrong-length
// present vector is caller misuse, distinguishable from data loss.
func TestPresentVectorTyped(t *testing.T) {
	x, _ := NewXCode(5)
	cols := makeXCols(x, 32, 3)
	if _, err := x.PlanReconstruct(cols, make([]bool, 4)); !errors.Is(err, ErrPresent) {
		t.Fatalf("xcode short present: got %v, want ErrPresent", err)
	}
	if err := x.Reconstruct(cols, make([]bool, 6)); !errors.Is(err, ErrPresent) {
		t.Fatalf("xcode long present: got %v, want ErrPresent", err)
	}
	c, _ := NewXor(3)
	_, _, all := encodeStripe(t, c, 64, 4)
	if err := c.Reconstruct(all, make([]bool, 3)); !errors.Is(err, ErrPresent) {
		t.Fatalf("xor short present: got %v, want ErrPresent", err)
	}
	if errors.Is(fmt.Errorf("%w: x", ErrPresent), ErrTooManyMissing) {
		t.Fatal("ErrPresent must not alias ErrTooManyMissing")
	}
}

// TestSteadyStateAllocs pins the zero-allocation invariants of the hot
// paths: encode (serial and fanned out), delta update, batched apply,
// and the no-loss reconstruct fast paths.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts at random; alloc pins don't hold")
	}
	c, _ := NewXor(4)                      // p=5
	size := (c.p - 1) * (2 * minBandBytes) // band width 2*minBandBytes
	data, parity, all := encodeStripe(t, c, size, 31)
	delta := make([]byte, 4096)
	rand.New(rand.NewSource(32)).Read(delta)
	deltas := []ShardDelta{{DI: 0, Off: 0, B: delta}, {DI: 2, Off: size / 2, B: delta}}
	present := make([]bool, len(all))
	for i := range present {
		present[i] = true
	}

	cases := []struct {
		name string
		f    func()
	}{
		{"encode-serial", func() {
			if err := c.Encode(data, parity); err != nil {
				t.Error(err)
			}
		}},
		{"update-one", func() { c.UpdateOne(1, parity[1], 1, 100, delta) }},
		{"apply-deltas", func() { c.ApplyDeltas(1, parity[1], deltas) }},
		{"reconstruct-none-missing", func() {
			if err := c.Reconstruct(all, present); err != nil {
				t.Error(err)
			}
		}},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(20, tc.f); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, avg)
		}
	}

	c.SetWorkers(4)
	if avg := testing.AllocsPerRun(20, func() {
		if err := c.Encode(data, parity); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Errorf("encode-pooled: %.1f allocs/op, want 0", avg)
	}

	x, _ := NewXCode(5)
	cols := makeXCols(x, 32, 33)
	xp := make([]bool, 5)
	for i := range xp {
		xp[i] = true
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := x.Reconstruct(cols, xp); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Errorf("xcode reconstruct fast path: %.1f allocs/op, want 0", avg)
	}
}

// TestConcurrentKernelStress drives Encode, UpdateOne, ApplyDeltas and
// Reconstruct concurrently through the shared worker pool — run under
// -race this checks the fan-out's synchronisation and band disjointness.
func TestConcurrentKernelStress(t *testing.T) {
	c, _ := NewXor(4) // p=5
	c.SetWorkers(4)
	size := (c.p - 1) * (2 * minBandBytes)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + g)))
			data := make([][]byte, c.K())
			for i := range data {
				data[i] = make([]byte, size)
				rng.Read(data[i])
			}
			parity := [][]byte{make([]byte, size), make([]byte, size)}
			delta := make([]byte, 8192)
			for it := 0; it < 8; it++ {
				if err := c.Encode(data, parity); err != nil {
					t.Error(err)
					return
				}
				rng.Read(delta)
				off := rng.Intn(size - len(delta))
				c.UpdateOne(1, parity[1], rng.Intn(c.K()), off, delta)
				c.ApplyDeltas(0, parity[0], []ShardDelta{{DI: 1, Off: off, B: delta}})
				// Re-encode so the stripe is consistent, then erase and
				// reconstruct through the pool.
				if err := c.Encode(data, parity); err != nil {
					t.Error(err)
					return
				}
				all := append(append([][]byte{}, data...), parity...)
				lost := rng.Intn(len(all))
				save := all[lost]
				all[lost] = make([]byte, size)
				present := make([]bool, len(all))
				for i := range present {
					present[i] = i != lost
				}
				if err := c.Reconstruct(all, present); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(all[lost], save) {
					t.Errorf("goroutine %d iter %d: reconstruct mismatch", g, it)
					return
				}
				all[lost] = save
			}
		}(g)
	}
	wg.Wait()
}

// Allocs/op gate benchmarks (CI greps their allocs column): the
// steady-state erasure hot paths must stay at 0 allocs/op, alongside
// the lz4 no-alloc pin.
func BenchmarkXorEncode(b *testing.B) {
	c, _ := NewXor(4)
	size := (c.p - 1) * (2 * minBandBytes)
	data, parity, _ := encodeStripe(b, c, size, 51)
	b.SetBytes(int64(c.K() * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXorEncodeParallel(b *testing.B) {
	c, _ := NewXor(4)
	c.SetWorkers(4)
	size := (c.p - 1) * (2 * minBandBytes)
	data, parity, _ := encodeStripe(b, c, size, 52)
	b.SetBytes(int64(c.K() * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXorUpdate(b *testing.B) {
	c, _ := NewXor(4)
	size := (c.p - 1) * (2 * minBandBytes)
	_, parity, _ := encodeStripe(b, c, size, 53)
	delta := make([]byte, 4096)
	rand.New(rand.NewSource(54)).Read(delta)
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.UpdateOne(1, parity[1], 1, 64, delta)
	}
}

func BenchmarkXorApplyDeltas(b *testing.B) {
	c, _ := NewXor(4)
	size := (c.p - 1) * (2 * minBandBytes)
	_, parity, _ := encodeStripe(b, c, size, 55)
	rng := rand.New(rand.NewSource(56))
	deltas := make([]ShardDelta, 4)
	for i := range deltas {
		deltas[i] = ShardDelta{DI: i, Off: 0, B: make([]byte, size)}
		rng.Read(deltas[i].B)
	}
	b.SetBytes(int64(4 * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ApplyDeltas(1, parity[1], deltas)
	}
}

func BenchmarkXorReconstruct(b *testing.B) {
	c, _ := NewXor(4)
	size := (c.p - 1) * (2 * minBandBytes)
	_, _, all := encodeStripe(b, c, size, 57)
	present := make([]bool, len(all))
	for i := range present {
		present[i] = i != 0 && i != 2
	}
	b.SetBytes(int64(2 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Reconstruct(all, present); err != nil {
			b.Fatal(err)
		}
	}
}
