// Package erasure implements the erasure codes Aceso uses for the
// Block Area: an XOR-only two-parity code (the paper uses X-Code; we
// use the EVENODD construction, which has the same XOR-only encoding
// and two-erasure tolerance but keeps parity in dedicated blocks,
// matching Aceso's DATA/PARITY block metadata — see DESIGN.md), and a
// Reed-Solomon code over GF(2^8) used as the GF-based comparator in
// Table 2.
//
// Both codes are *linear*: a change to a data block can be folded into
// every parity block by applying a transformed delta, which is the
// property Aceso's delta-based space reclamation (§3.3.3) relies on.
package erasure

// GF(2^8) arithmetic with the 0x11D reduction polynomial (the same
// field ISA-L and most RAID-6 implementations use).

const gfPoly = 0x11D

var (
	gfExp [512]byte // exp table doubled to avoid mod 255 in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul returns a*b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv returns a/b in GF(2^8); b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns g^n for the field generator g=2.
func gfPow(n int) byte {
	return gfExp[n%255]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulTable[c] is the full 256-entry multiplication table for constant
// c, built lazily; it makes bulk gfMulSlice a single table lookup per
// byte.
var mulTable [256][]byte

func mulTableFor(c byte) []byte {
	if t := mulTable[c]; t != nil {
		return t
	}
	t := make([]byte, 256)
	for i := 0; i < 256; i++ {
		t[i] = gfMul(c, byte(i))
	}
	mulTable[c] = t
	return t
}

// gfMulSliceXor computes dst[i] ^= c * src[i] for all i.
func gfMulSliceXor(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorBytes(dst, src)
		return
	}
	t := mulTableFor(c)
	for i, s := range src {
		dst[i] ^= t[s]
	}
}

// gfMulSlice computes dst[i] = c * src[i] for all i.
func gfMulSlice(c byte, dst, src []byte) {
	if c == 1 {
		copy(dst, src)
		return
	}
	t := mulTableFor(c)
	for i, s := range src {
		dst[i] = t[s]
	}
}
