package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func codesForTest(t *testing.T, k int) []Code {
	t.Helper()
	xc, err := NewXor(k)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []Code{xc, rs}
}

// makeStripe builds k data shards of the given size plus m parity
// shards, encoded.
func makeStripe(c Code, size int, seed int64) (data, parity, all [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < c.K(); i++ {
		s := make([]byte, size)
		rng.Read(s)
		data = append(data, s)
	}
	for i := 0; i < c.M(); i++ {
		parity = append(parity, make([]byte, size))
	}
	if err := c.Encode(data, parity); err != nil {
		panic(err)
	}
	all = append(append([][]byte{}, data...), parity...)
	return
}

func shardSize(c Code) int {
	// A size exercising segment layout: a few segments' worth.
	return c.SegmentAlign() * 96
}

// TestReconstructAllPairs erases every possible pair of shards (and
// every single shard) and verifies reconstruction, for several k.
func TestReconstructAllPairs(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, c := range codesForTest(t, k) {
			size := shardSize(c)
			data, _, all := makeStripe(c, size, int64(k))
			orig := make([][]byte, len(all))
			for i := range all {
				orig[i] = append([]byte(nil), all[i]...)
			}
			n := c.K() + c.M()
			for a := 0; a < n; a++ {
				for b := a; b < n; b++ {
					shards := make([][]byte, n)
					present := make([]bool, n)
					for i := range shards {
						if i == a || i == b {
							shards[i] = make([]byte, size) // lost
						} else {
							shards[i] = append([]byte(nil), orig[i]...)
							present[i] = true
						}
					}
					if err := c.Reconstruct(shards, present); err != nil {
						t.Fatalf("%s k=%d erase (%d,%d): %v", c.Name(), k, a, b, err)
					}
					for i := range shards {
						if !bytes.Equal(shards[i], orig[i]) {
							t.Fatalf("%s k=%d erase (%d,%d): shard %d wrong", c.Name(), k, a, b, i)
						}
					}
				}
			}
			_ = data
		}
	}
}

func TestTooManyMissing(t *testing.T) {
	for _, c := range codesForTest(t, 4) {
		size := shardSize(c)
		_, _, all := makeStripe(c, size, 7)
		present := make([]bool, len(all))
		for i := range present {
			present[i] = i >= 3 // three missing
		}
		if err := c.Reconstruct(all, present); err == nil {
			t.Fatalf("%s: three erasures reconstructed without error", c.Name())
		}
	}
}

func TestShardSizeMismatch(t *testing.T) {
	for _, c := range codesForTest(t, 3) {
		size := shardSize(c)
		_, _, all := makeStripe(c, size, 8)
		all[1] = all[1][:size-1]
		present := make([]bool, len(all))
		for i := range present {
			present[i] = true
		}
		if err := c.Reconstruct(all, present); err == nil {
			t.Fatalf("%s: mismatched shard sizes accepted", c.Name())
		}
	}
}

// TestUpdateLinearity is the property §3.3.3 relies on: applying the
// old⊕new delta of one data shard to the parities yields exactly the
// parities of the re-encoded stripe.
func TestUpdateLinearity(t *testing.T) {
	for _, k := range []int{1, 3, 5, 9} {
		for _, c := range codesForTest(t, k) {
			size := shardSize(c)
			data, parity, _ := makeStripe(c, size, int64(100+k))
			rng := rand.New(rand.NewSource(int64(200 + k)))
			for trial := 0; trial < 50; trial++ {
				di := rng.Intn(k)
				off := rng.Intn(size)
				n := 1 + rng.Intn(size-off)
				newBytes := make([]byte, n)
				rng.Read(newBytes)
				// delta = old ⊕ new
				delta := make([]byte, n)
				copy(delta, data[di][off:off+n])
				XorInto(delta, newBytes)
				copy(data[di][off:off+n], newBytes)
				c.Update(parity, di, off, delta)

				fresh := make([][]byte, c.M())
				for i := range fresh {
					fresh[i] = make([]byte, size)
				}
				if err := c.Encode(data, fresh); err != nil {
					t.Fatal(err)
				}
				for i := range fresh {
					if !bytes.Equal(fresh[i], parity[i]) {
						t.Fatalf("%s k=%d trial %d: parity %d diverged after delta update", c.Name(), k, trial, i)
					}
				}
			}
		}
	}
}

// TestDeltaCommutes checks that deltas from different shards can be
// applied in any order (clients race on different blocks of a stripe).
func TestDeltaCommutes(t *testing.T) {
	for _, c := range codesForTest(t, 4) {
		size := shardSize(c)
		data, parity, _ := makeStripe(c, size, 42)
		p2 := [][]byte{append([]byte(nil), parity[0]...), append([]byte(nil), parity[1]...)}
		d0 := make([]byte, 64)
		d3 := make([]byte, 64)
		rand.New(rand.NewSource(3)).Read(d0)
		rand.New(rand.NewSource(4)).Read(d3)
		c.Update(parity, 0, 16, d0)
		c.Update(parity, 3, 32, d3)
		c.Update(p2, 3, 32, d3)
		c.Update(p2, 0, 16, d0)
		for i := range parity {
			if !bytes.Equal(parity[i], p2[i]) {
				t.Fatalf("%s: delta application does not commute", c.Name())
			}
		}
		_ = data
	}
}

// TestZeroDataZeroParity: the zero stripe must encode to zero parity,
// so freshly-allocated (zeroed) blocks are consistent without encoding.
func TestZeroDataZeroParity(t *testing.T) {
	for _, c := range codesForTest(t, 3) {
		size := shardSize(c)
		data := make([][]byte, c.K())
		for i := range data {
			data[i] = make([]byte, size)
		}
		parity := [][]byte{make([]byte, size), make([]byte, size)}
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		for i := range parity {
			for _, b := range parity[i] {
				if b != 0 {
					t.Fatalf("%s: zero data produced non-zero parity", c.Name())
				}
			}
		}
	}
}

func TestQuickReconstruct(t *testing.T) {
	f := func(seed int64, kRaw, eraseA, eraseB uint8) bool {
		k := 1 + int(kRaw)%8
		xc, _ := NewXor(k)
		rs, _ := NewRS(k, 2)
		for _, c := range []Code{xc, rs} {
			size := c.SegmentAlign() * 32
			_, _, all := makeStripe(c, size, seed)
			orig := make([][]byte, len(all))
			for i := range all {
				orig[i] = append([]byte(nil), all[i]...)
			}
			n := len(all)
			a, b := int(eraseA)%n, int(eraseB)%n
			present := make([]bool, n)
			for i := range present {
				present[i] = i != a && i != b
			}
			zero(all[a])
			zero(all[b])
			if err := c.Reconstruct(all, present); err != nil {
				return false
			}
			for i := range all {
				if !bytes.Equal(all[i], orig[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverses.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
	}
	// Distributivity on random triples.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d %d %d", a, b, c)
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("associativity fails for %d %d %d", a, b, c)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		v := gfPow(i)
		if seen[v] {
			t.Fatalf("generator repeats at %d", i)
		}
		seen[v] = true
	}
}

// benchEncode measures stripe encoding throughput (data bytes per
// second); this is the "Test Tpt" comparison of Table 2, where the
// XOR-based code should beat the GF-based RS code substantially.
func benchEncode(b *testing.B, c Code, blockSize int) {
	data := make([][]byte, c.K())
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = make([]byte, blockSize)
		rng.Read(data[i])
	}
	parity := make([][]byte, c.M())
	for i := range parity {
		parity[i] = make([]byte, blockSize)
	}
	b.SetBytes(int64(c.K() * blockSize))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeXor(b *testing.B) {
	c, _ := NewXor(3)
	benchEncode(b, c, 2<<20)
}

func BenchmarkEncodeRS(b *testing.B) {
	c, _ := NewRS(3, 2)
	benchEncode(b, c, 2<<20)
}

func benchReconstruct(b *testing.B, c Code, blockSize int) {
	_, _, all := makeStripe(c, blockSize, 1)
	present := make([]bool, len(all))
	for i := range present {
		present[i] = i != 0 && i != 1
	}
	b.SetBytes(int64(blockSize * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Reconstruct(all, present); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct2Xor(b *testing.B) {
	c, _ := NewXor(3)
	benchReconstruct(b, c, 2<<20)
}

func BenchmarkReconstruct2RS(b *testing.B) {
	c, _ := NewRS(3, 2)
	benchReconstruct(b, c, 2<<20)
}

// benchUpdate measures delta-fold throughput: the §3.3.3 path where a
// client writes one KV and each parity node folds delta = old⊕new in.
func benchUpdate(b *testing.B, c Code, blockSize, deltaSize int) {
	_, parity, _ := makeStripe(c, blockSize, 2)
	delta := make([]byte, deltaSize)
	rand.New(rand.NewSource(3)).Read(delta)
	b.SetBytes(int64(deltaSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(parity, 1, 0, delta)
	}
}

func BenchmarkUpdateXor(b *testing.B) {
	c, _ := NewXor(3)
	benchUpdate(b, c, 2<<20, 4096)
}

func BenchmarkUpdateRS(b *testing.B) {
	c, _ := NewRS(3, 2)
	benchUpdate(b, c, 2<<20, 4096)
}

// BenchmarkXorBytes pins the raw XOR kernel across the sizes the code
// actually sees: sub-word tails, one cache line, a typical KV delta,
// and a full 2 MiB block segment.
func BenchmarkXorBytes(b *testing.B) {
	for _, n := range []int{16, 64, 4096, 2 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			dst := make([]byte, n)
			src := make([]byte, n)
			rand.New(rand.NewSource(4)).Read(src)
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xorBytes(dst, src)
			}
		})
	}
}
