package erasure

import (
	"sync"
	"sync/atomic"
)

// Wall-clock worker pool for the banded kernels.
//
// One package-global pool serves every code instance: fan-outs are
// serialised under shared.mu (the kernels are memory-bound, so two
// concurrent fan-outs would fight over bandwidth rather than overlap),
// and the job is described by fixed-shape struct fields instead of a
// closure so submitting work allocates nothing — the encode/update
// path is pinned at 0 allocs/op. Workers are spawned lazily, live for
// the process, claim 64-byte-aligned bands by atomic increment, and
// the submitter drains bands too so a fan-out never waits on scheduler
// latency for work it could do itself.
//
// This pool is the wall-clock twin of the simulated erasure worker
// cores in internal/core (ecpool.go): same band split, same claim
// discipline, so tcpnet wall time and simnet virtual time parallelise
// the same way.

const (
	// maxPoolWorkers bounds the fan-out regardless of SetWorkers.
	maxPoolWorkers = 16
	// minBandBytes is the narrowest band worth handing to a worker:
	// below ~32 KiB the wake/claim overhead exceeds the XOR work.
	minBandBytes = 32 << 10
	// bandQuantum keeps band boundaries cache-line aligned so two
	// workers never write the same line of a parity shard.
	bandQuantum = 64
)

// Job kinds dispatched by bandJob.run.
const (
	jobXorEncode = iota
	jobXorApply
	jobRSEncode
	jobRSApply
	jobXEncode
	jobPlan
)

// bandJob is the current fan-out's parameters. Fixed fields, not a
// closure: the pool is zero-allocation by construction.
type bandJob struct {
	kind   int
	xc     *XorCode
	rc     *RSCode
	x      *XCode
	data   [][]byte
	parity [][]byte
	shards [][]byte
	pshard []byte
	pi     int
	deltas []ShardDelta
	plan   *Plan
}

func (j *bandJob) run(lo, hi int) {
	switch j.kind {
	case jobXorEncode:
		j.xc.encodeBand(j.data, j.parity, lo, hi)
	case jobXorApply:
		j.xc.applyDeltasBand(j.pi, j.pshard, j.deltas, lo, hi)
	case jobRSEncode:
		j.rc.encodeBand(j.data, j.parity, lo, hi)
	case jobRSApply:
		j.rc.applyDeltasBand(j.pi, j.pshard, j.deltas, lo, hi)
	case jobXEncode:
		j.x.encodeBand(j.data, lo, hi)
	case jobPlan:
		j.plan.Run(j.shards, lo, hi)
	}
}

type workerPool struct {
	// mu serialises fan-outs and guards job/width/bands between them.
	mu sync.Mutex

	// startMu guards lazy worker spawning.
	startMu sync.Mutex
	started int

	wake chan struct{} // one token per helper worker engaged
	done chan struct{} // completion signal from the last finisher

	job     bandJob
	width   int
	bands   int
	next    atomic.Int64 // next unclaimed band
	pending atomic.Int64 // workers (incl. submitter) still draining
}

var shared = &workerPool{
	wake: make(chan struct{}, maxPoolWorkers),
	done: make(chan struct{}, 1),
}

// poolWorkers clamps a requested worker count for a band width: 1 when
// the pool is off or the width is too narrow to split profitably.
func poolWorkers(workers, width int) int {
	if workers <= 1 || width < 2*minBandBytes {
		return 1
	}
	if max := width / minBandBytes; workers > max {
		workers = max
	}
	if workers > maxPoolWorkers {
		workers = maxPoolWorkers
	}
	return workers
}

func (p *workerPool) ensure(n int) {
	p.startMu.Lock()
	for p.started < n {
		go p.worker()
		p.started++
	}
	p.startMu.Unlock()
}

// band returns band b's byte range within [0, width). Bands are
// ceil-divided and rounded up to bandQuantum, so trailing bands may be
// empty when the width is small — callers skip lo >= hi.
func (p *workerPool) band(b int) (lo, hi int) {
	per := (p.width + p.bands - 1) / p.bands
	per = (per + bandQuantum - 1) / bandQuantum * bandQuantum
	lo = b * per
	hi = lo + per
	if hi > p.width || b == p.bands-1 {
		hi = p.width
	}
	if lo > p.width {
		lo = p.width
	}
	return lo, hi
}

func (p *workerPool) worker() {
	for range p.wake {
		p.drain()
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

func (p *workerPool) drain() {
	for {
		b := int(p.next.Add(1)) - 1
		if b >= p.bands {
			return
		}
		lo, hi := p.band(b)
		if lo < hi {
			p.job.run(lo, hi)
		}
	}
}

// fanOut runs the job already staged in p.job (caller holds p.mu) over
// width bytes split into nw bands: nw-1 pool workers are woken and the
// caller drains alongside them. pending counts every participant, the
// last to finish signals done, and exactly one done token is consumed
// per fan-out — so the channel never carries stale completions into
// the next call.
func (p *workerPool) fanOut(width, nw int) {
	p.width = width
	p.bands = nw
	p.next.Store(0)
	p.pending.Store(int64(nw))
	p.ensure(nw - 1)
	for i := 0; i < nw-1; i++ {
		p.wake <- struct{}{}
	}
	p.drain()
	if p.pending.Add(-1) != 0 {
		<-p.done
	}
	p.job = bandJob{} // drop shard references before releasing p.mu
}

// runPlanPooled applies a reconstruction plan, fanning bands out over
// the pool when workers and plan width allow.
func runPlanPooled(pl *Plan, shards [][]byte, workers int) {
	nw := poolWorkers(workers, pl.width)
	if nw <= 1 {
		pl.Run(shards, 0, pl.width)
		return
	}
	shared.mu.Lock()
	shared.job.kind = jobPlan
	shared.job.plan = pl
	shared.job.shards = shards
	shared.fanOut(pl.width, nw)
	shared.mu.Unlock()
}
