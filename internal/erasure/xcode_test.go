package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeXCols(x *XCode, segSize int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]byte, x.P())
	for i := range cols {
		cols[i] = make([]byte, segSize*x.P())
		// Fill data rows; parity rows are computed by Encode.
		rng.Read(cols[i][:segSize*x.DataRows()])
	}
	if err := x.Encode(cols); err != nil {
		panic(err)
	}
	return cols
}

func TestXCodeRejectsBadP(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 4, 6, 8, 9} {
		if _, err := NewXCode(p); err == nil {
			t.Errorf("p=%d accepted", p)
		}
	}
	for _, p := range []int{5, 7, 11, 13} {
		if _, err := NewXCode(p); err != nil {
			t.Errorf("p=%d rejected: %v", p, err)
		}
	}
}

// TestXCodeAllErasurePairs verifies the MDS property: any one or two
// lost columns are recoverable, for several primes.
func TestXCodeAllErasurePairs(t *testing.T) {
	for _, p := range []int{5, 7, 11} {
		x, err := NewXCode(p)
		if err != nil {
			t.Fatal(err)
		}
		const segSize = 48
		orig := makeXCols(x, segSize, int64(p))
		for a := 0; a < p; a++ {
			for b := a; b < p; b++ {
				cols := make([][]byte, p)
				present := make([]bool, p)
				for i := range cols {
					if i == a || i == b {
						cols[i] = make([]byte, segSize*p)
					} else {
						cols[i] = append([]byte(nil), orig[i]...)
						present[i] = true
					}
				}
				if err := x.Reconstruct(cols, present); err != nil {
					t.Fatalf("p=%d erase (%d,%d): %v", p, a, b, err)
				}
				for i := range cols {
					if !bytes.Equal(cols[i], orig[i]) {
						t.Fatalf("p=%d erase (%d,%d): column %d wrong", p, a, b, i)
					}
				}
			}
		}
	}
}

func TestXCodeThreeErasuresRejected(t *testing.T) {
	x, _ := NewXCode(5)
	cols := makeXCols(x, 32, 1)
	present := []bool{false, false, false, true, true}
	if err := x.Reconstruct(cols, present); err == nil {
		t.Fatal("three erasures reconstructed")
	}
}

func TestXCodeColumnValidation(t *testing.T) {
	x, _ := NewXCode(5)
	cols := makeXCols(x, 32, 2)
	if err := x.Encode(cols[:4]); err == nil {
		t.Fatal("wrong column count accepted")
	}
	cols[2] = cols[2][:len(cols[2])-1]
	if err := x.Encode(cols); err == nil {
		t.Fatal("ragged columns accepted")
	}
	bad := [][]byte{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	if err := x.Encode(bad); err == nil {
		t.Fatal("non-multiple column length accepted")
	}
}

func TestXCodeQuick(t *testing.T) {
	x, _ := NewXCode(5)
	f := func(seed int64, ea, eb uint8) bool {
		orig := makeXCols(x, 16, seed)
		p := x.P()
		a, b := int(ea)%p, int(eb)%p
		cols := make([][]byte, p)
		present := make([]bool, p)
		for i := range cols {
			if i == a || i == b {
				cols[i] = make([]byte, 16*p)
			} else {
				cols[i] = append([]byte(nil), orig[i]...)
				present[i] = true
			}
		}
		if err := x.Reconstruct(cols, present); err != nil {
			return false
		}
		for i := range cols {
			if !bytes.Equal(cols[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEncodeXCode measures the X-Code encode kernel for
// comparison with the EVENODD and RS kernels (Table 2 discussion).
func BenchmarkEncodeXCode(b *testing.B) {
	x, _ := NewXCode(5)
	segSize := (2 << 20) / 5 / 64 * 64
	cols := make([][]byte, 5)
	rng := rand.New(rand.NewSource(1))
	for i := range cols {
		cols[i] = make([]byte, segSize*5)
		rng.Read(cols[i])
	}
	b.SetBytes(int64(5 * segSize * 3)) // data payload
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Encode(cols); err != nil {
			b.Fatal(err)
		}
	}
}
