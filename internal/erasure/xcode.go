package erasure

import "fmt"

// XCode is the erasure code the paper names (§3.3.1): Xu & Bruck's
// X-Code, an MDS array code over a p×p array (p prime) tolerating any
// two column losses with XOR-only computation. Its two parity rows are
// diagonal sums embedded in *every* column:
//
//	C[p-2][i] = ⊕_{k=0..p-3} C[k][(i+k+2) mod p]
//	C[p-1][i] = ⊕_{k=0..p-3} C[k][(i-k-2) mod p]
//
// Because each column mixes data and parity, X-Code has no dedicated
// PARITY blocks — which is why the store itself uses the
// equal-property EVENODD layout (see XorCode) that matches Aceso's
// DATA/PARITY block metadata. X-Code is provided for kernel
// benchmarking and as a faithful implementation of the cited code.
//
// Kernels are banded on the within-segment column range like XorCode's
// (a band touches only those columns of every row segment), and
// SetWorkers fans Encode/Reconstruct out over the package worker pool.
type XCode struct {
	p       int
	workers int
}

// NewXCode creates an X-Code over p columns; p must be prime and ≥ 5
// (p=3 leaves no data rows beyond degenerate capacity).
func NewXCode(p int) (*XCode, error) {
	if p < 5 || !isPrime(p) {
		return nil, fmt.Errorf("erasure: x-code needs a prime p >= 5, got %d", p)
	}
	return &XCode{p: p}, nil
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// P returns the array dimension (columns = rows = p).
func (x *XCode) P() int { return x.p }

// DataRows returns the number of data rows (p−2).
func (x *XCode) DataRows() int { return x.p - 2 }

// SegmentAlign returns the required column-length multiple (p
// segments per column).
func (x *XCode) SegmentAlign() int { return x.p }

// SetWorkers sets the wall-clock fan-out for Encode/Reconstruct
// (clamped per call by band width; ≤1 keeps everything on the caller).
func (x *XCode) SetWorkers(n int) { x.workers = n }

// seg returns segment (row) r of column col.
func seg(col []byte, r, segSize int) []byte {
	return col[r*segSize : (r+1)*segSize]
}

// Encode fills the two parity rows (p−2 and p−1) of every column from
// the data rows (0..p−3). cols must hold p equal-length columns, each
// a multiple of p segments.
func (x *XCode) Encode(cols [][]byte) error {
	segSize, err := x.checkCols(cols)
	if err != nil {
		return err
	}
	nw := poolWorkers(x.workers, segSize)
	if nw <= 1 {
		x.encodeBand(cols, 0, segSize)
		return nil
	}
	shared.mu.Lock()
	shared.job.kind = jobXEncode
	shared.job.x = x
	shared.job.data = cols
	shared.fanOut(segSize, nw)
	shared.mu.Unlock()
	return nil
}

// encodeBand computes the [lo, hi) columns of both parity rows in
// every column of the array.
func (x *XCode) encodeBand(cols [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	p := x.p
	segSize := len(cols[0]) / p
	for i := 0; i < p; i++ {
		r1 := cols[i][(p-2)*segSize+lo : (p-2)*segSize+hi]
		r2 := cols[i][(p-1)*segSize+lo : (p-1)*segSize+hi]
		zero(r1)
		zero(r2)
		for k := 0; k <= p-3; k++ {
			c1 := cols[(i+k+2)%p]
			c2 := cols[((i-k-2)%p+p)%p]
			xorBytes(r1, c1[k*segSize+lo:k*segSize+hi])
			xorBytes(r2, c2[k*segSize+lo:k*segSize+hi])
		}
	}
}

// equations lists the 2p parity equations as cell sets (cell.shard is
// the column, cell.seg the row).
func (x *XCode) equations() [][]cell {
	p := x.p
	eqs := make([][]cell, 0, 2*p)
	for i := 0; i < p; i++ {
		eq1 := []cell{{i, p - 2}}
		eq2 := []cell{{i, p - 1}}
		for k := 0; k <= p-3; k++ {
			eq1 = append(eq1, cell{(i + k + 2) % p, k})
			eq2 = append(eq2, cell{((i-k-2)%p + p) % p, k})
		}
		eqs = append(eqs, eq1, eq2)
	}
	return eqs
}

// PlanReconstruct validates the erasure pattern and eliminates the
// parity system once, returning a banded plan (nil when no column is
// missing). The loss count is taken before any solver state exists, so
// the no-loss fast path allocates nothing, and a present vector of the
// wrong length is caller misuse reported as ErrPresent — distinct from
// data loss (ErrTooManyMissing).
func (x *XCode) PlanReconstruct(cols [][]byte, present []bool) (*Plan, error) {
	segSize, err := x.checkCols(cols)
	if err != nil {
		return nil, err
	}
	if len(present) != x.p {
		return nil, fmt.Errorf("%w: got %d entries, want %d columns", ErrPresent, len(present), x.p)
	}
	missing := 0
	for _, ok := range present {
		if !ok {
			missing++
		}
	}
	if missing == 0 {
		return nil, nil
	}
	if missing > 2 {
		return nil, fmt.Errorf("%w: %d columns lost, x-code tolerates 2", ErrTooManyMissing, missing)
	}
	unknowns := make([]cell, 0, missing*x.p)
	for i, ok := range present {
		if ok {
			continue
		}
		for r := 0; r < x.p; r++ {
			unknowns = append(unknowns, cell{i, r})
		}
	}
	return buildXorPlan(x.equations(), unknowns, segSize, segSize)
}

// Reconstruct recovers up to two missing columns in place (missing
// columns must be allocated; present[i] tells whether column i
// survived).
func (x *XCode) Reconstruct(cols [][]byte, present []bool) error {
	pl, err := x.PlanReconstruct(cols, present)
	if err != nil || pl == nil {
		return err
	}
	runPlanPooled(pl, cols, x.workers)
	return nil
}

func (x *XCode) checkCols(cols [][]byte) (int, error) {
	if len(cols) != x.p {
		return 0, fmt.Errorf("%w: got %d columns, want %d", ErrShardSize, len(cols), x.p)
	}
	size := len(cols[0])
	for i, c := range cols {
		if len(c) != size {
			return 0, fmt.Errorf("%w: column %d has %d bytes, others %d", ErrShardSize, i, len(c), size)
		}
	}
	if size == 0 || size%x.p != 0 {
		return 0, fmt.Errorf("%w: column length %d not a positive multiple of p=%d", ErrShardSize, size, x.p)
	}
	return size / x.p, nil
}
