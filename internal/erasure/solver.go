package erasure

import "fmt"

// Plan is a prepared reconstruction: the solver elimination has already
// run symbolically, leaving only data movement. Run applies the plan to
// any band [lo, hi) of the band dimension, and bands are disjoint (each
// touches only those columns of every segment), so callers fan a plan
// out over worker pools — wall-clock goroutines on real fabrics,
// simulated worker cores on simnet — with no further synchronisation.
//
// A plan holds either XOR targets/terms (EVENODD, X-Code) or flat
// GF(2^8) coefficients (Reed-Solomon); the other set is empty.
type Plan struct {
	segSize int // cell granularity for XOR terms
	width   int // band dimension length

	// XOR form: targets[i] = ⊕ terms[i] over the band.
	targets []cell
	terms   [][]cell

	// RS form: shards[rsTargets[i]] = Σ cf·shards[src] over the band.
	rsTargets []int
	rsTerms   [][]rsTerm
}

// rsTerm is one GF(2^8) contribution: cf × source shard.
type rsTerm struct {
	cf  byte
	src int
}

// Width returns the plan's band dimension length; Run's [lo, hi) ranges
// partition [0, Width()).
func (pl *Plan) Width() int { return pl.width }

// Run applies the plan to band [lo, hi). shards must be the same matrix
// the plan was built for (missing shards pre-allocated; they are
// overwritten).
func (pl *Plan) Run(shards [][]byte, lo, hi int) {
	if hi > pl.width {
		hi = pl.width
	}
	if lo >= hi {
		return
	}
	for i, t := range pl.targets {
		base := t.seg * pl.segSize
		dst := shards[t.shard][base+lo : base+hi]
		zero(dst)
		for _, s := range pl.terms[i] {
			sb := s.seg * pl.segSize
			xorBytes(dst, shards[s.shard][sb+lo:sb+hi])
		}
	}
	for i, t := range pl.rsTargets {
		dst := shards[t][lo:hi]
		zero(dst)
		for _, s := range pl.rsTerms[i] {
			gfMulSliceXor(s.cf, dst, shards[s.src][lo:hi])
		}
	}
}

// RunPooled applies the whole plan, fanning bands out over the
// package's wall-clock worker pool when workers and the plan width
// allow (the same split Reconstruct uses internally). Callers that
// already band their own fan-out use Run instead.
func (pl *Plan) RunPooled(shards [][]byte, workers int) {
	runPlanPooled(pl, shards, workers)
}

// buildXorPlan eliminates an XOR parity system symbolically. Every
// equation is a set of cells XORing to zero; the unknowns are the cells
// of missing shards. Rows are bit vectors over the unknowns, and each
// row also carries a bitmask of which original equations were folded
// into it. After Gauss-Jordan each pivot row holds exactly one unknown,
// whose value is therefore the XOR of the known cells of the folded
// equations — cells appearing an even number of times cancel. That
// expansion is the whole output: reconstruction becomes a pure banded
// XOR with no solver state or right-hand-side buffers at apply time.
func buildXorPlan(equations [][]cell, unknowns []cell, segSize, width int) (*Plan, error) {
	// Index cells into a flat table (shard-major) so unknown lookups
	// and multiplicity counting in the expansion below are array
	// indexing, not map operations — for p=257 patterns the expansion
	// visits millions of cells.
	maxShard, maxSeg := 0, 0
	for _, eq := range equations {
		for _, cl := range eq {
			if cl.shard > maxShard {
				maxShard = cl.shard
			}
			if cl.seg > maxSeg {
				maxSeg = cl.seg
			}
		}
	}
	stride := maxSeg + 1
	cellIdx := func(cl cell) int { return cl.shard*stride + cl.seg }
	varAt := make([]int32, (maxShard+1)*stride) // 0 = known, v+1 = unknown v
	order := make([]cell, 0, len(unknowns))
	for _, u := range unknowns {
		if i := cellIdx(u); varAt[i] == 0 {
			varAt[i] = int32(len(order)) + 1
			order = append(order, u)
		}
	}
	nvars := len(order)
	words := (nvars + 63) / 64

	// Rows over the unknowns; eqIdx maps a kept row back to its source
	// equation. Equations over knowns only carry no information.
	var rows [][]uint64
	var eqIdx []int
	for e, eq := range equations {
		row := make([]uint64, words)
		touches := false
		for _, cl := range eq {
			if v := varAt[cellIdx(cl)]; v != 0 {
				row[(v-1)/64] ^= 1 << ((v - 1) % 64)
				touches = true
			}
		}
		if touches {
			rows = append(rows, row)
			eqIdx = append(eqIdx, e)
		}
	}

	// masks[r] tracks, as a bitset over the kept rows' source
	// equations, which equations row r is the XOR of.
	ewords := (len(rows) + 63) / 64
	masks := make([][]uint64, len(rows))
	for i := range masks {
		masks[i] = make([]uint64, ewords)
		masks[i][i/64] = 1 << (i % 64)
	}

	pivotRow := make([]int, nvars)
	next := 0
	for v := 0; v < nvars; v++ {
		sel := -1
		for r := next; r < len(rows); r++ {
			if rows[r][v/64]&(1<<(v%64)) != 0 {
				sel = r
				break
			}
		}
		if sel == -1 {
			return nil, fmt.Errorf("erasure: xor system singular (%d unknowns)", nvars)
		}
		rows[sel], rows[next] = rows[next], rows[sel]
		masks[sel], masks[next] = masks[next], masks[sel]
		for r := range rows {
			if r != next && rows[r][v/64]&(1<<(v%64)) != 0 {
				for w := range rows[r] {
					rows[r][w] ^= rows[next][w]
				}
				for w := range masks[r] {
					masks[r][w] ^= masks[next][w]
				}
			}
		}
		pivotRow[v] = next
		next++
	}

	// Expand each pivot row's folded equations into a known-cell term
	// list with odd multiplicity. First-seen order keeps plans
	// deterministic for a given erasure pattern.
	pl := &Plan{segSize: segSize, width: width}
	count := make([]int32, len(varAt))
	for v, u := range order {
		m := masks[pivotRow[v]]
		var seen []cell
		for ri := range rows {
			if m[ri/64]&(1<<(ri%64)) == 0 {
				continue
			}
			for _, cl := range equations[eqIdx[ri]] {
				i := cellIdx(cl)
				if varAt[i] != 0 {
					continue
				}
				if count[i] == 0 {
					seen = append(seen, cl)
				}
				count[i]++
			}
		}
		terms := make([]cell, 0, len(seen))
		for _, cl := range seen {
			i := cellIdx(cl)
			if count[i]%2 == 1 {
				terms = append(terms, cl)
			}
			count[i] = 0
		}
		pl.targets = append(pl.targets, u)
		pl.terms = append(pl.terms, terms)
	}
	return pl, nil
}
