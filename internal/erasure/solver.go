package erasure

import "fmt"

// gf2Solver solves XOR parity systems generically: every equation is a
// set of cells (byte-slice segments) that XOR to zero; the unknowns
// are the cells of missing shards. It backs both the EVENODD and the
// X-Code decoders, handling every erasure pattern within the codes'
// fault bounds uniformly.
type gf2Solver struct {
	segSize int
	varOf   map[cell]int
}

func newGF2Solver(segSize int) *gf2Solver {
	return &gf2Solver{segSize: segSize, varOf: make(map[cell]int)}
}

// addUnknown registers a cell as an unknown variable.
func (sv *gf2Solver) addUnknown(c cell) {
	if _, ok := sv.varOf[c]; !ok {
		sv.varOf[c] = len(sv.varOf)
	}
}

// solve eliminates the system given by equations (each a list of
// cells) with known-cell contents supplied by fetch, and stores every
// solved unknown via store. It returns an error when the system is
// singular (erasures beyond the code's bound).
func (sv *gf2Solver) solve(equations [][]cell, fetch func(cell) []byte, store func(cell, []byte)) error {
	nvars := len(sv.varOf)
	if nvars == 0 {
		return nil
	}
	words := (nvars + 63) / 64
	rows := make([][]uint64, 0, len(equations))
	rhs := make([][]byte, 0, len(equations))
	for _, eq := range equations {
		row := make([]uint64, words)
		b := make([]byte, sv.segSize)
		touches := false
		for _, cl := range eq {
			if v, ok := sv.varOf[cl]; ok {
				row[v/64] ^= 1 << (v % 64)
				touches = true
			} else {
				xorBytes(b, fetch(cl))
			}
		}
		if !touches {
			continue // equation over knowns only: no information
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}

	pivotRow := make([]int, nvars)
	next := 0
	for v := 0; v < nvars; v++ {
		sel := -1
		for r := next; r < len(rows); r++ {
			if rows[r][v/64]&(1<<(v%64)) != 0 {
				sel = r
				break
			}
		}
		if sel == -1 {
			return fmt.Errorf("erasure: xor system singular (%d unknowns)", nvars)
		}
		rows[sel], rows[next] = rows[next], rows[sel]
		rhs[sel], rhs[next] = rhs[next], rhs[sel]
		for r := 0; r < len(rows); r++ {
			if r != next && rows[r][v/64]&(1<<(v%64)) != 0 {
				for w := range rows[r] {
					rows[r][w] ^= rows[next][w]
				}
				xorBytes(rhs[r], rhs[next])
			}
		}
		pivotRow[v] = next
		next++
	}
	for cl, v := range sv.varOf {
		store(cl, rhs[pivotRow[v]])
	}
	return nil
}
