package erasure

import "fmt"

// RSCode is a systematic Reed-Solomon code over GF(2^8) with one or two
// parity shards (the classic RAID-6 P+Q construction): parity row i has
// coefficient g^(i·c) for data shard c, with g = 2 the field generator.
// Any one or two lost shards are recoverable. It is the GF-based
// comparator of Table 2: correct but slower than the XOR-only code
// because encoding and reconstruction perform GF multiplications.
type RSCode struct {
	k, m int
}

// NewRS creates a Reed-Solomon code with k data shards and m parity
// shards (m must be 1 or 2; k+m <= 256).
func NewRS(k, m int) (*RSCode, error) {
	if k < 1 || m < 1 || m > 2 || k+m > 256 {
		return nil, fmt.Errorf("erasure: rs code wants 1<=k, m in {1,2}, k+m<=256; got k=%d m=%d", k, m)
	}
	return &RSCode{k: k, m: m}, nil
}

// Name implements Code.
func (c *RSCode) Name() string { return "rs" }

// K implements Code.
func (c *RSCode) K() int { return c.k }

// M implements Code.
func (c *RSCode) M() int { return c.m }

// SegmentAlign implements Code.
func (c *RSCode) SegmentAlign() int { return 1 }

// coef returns the encoding coefficient of data shard di in parity row
// pi.
func (c *RSCode) coef(pi, di int) byte { return gfPow(pi * di) }

// Encode implements Code.
func (c *RSCode) Encode(data, parity [][]byte) {
	for pi := 0; pi < c.m; pi++ {
		zero(parity[pi])
		for di := 0; di < c.k; di++ {
			gfMulSliceXor(c.coef(pi, di), parity[pi], data[di])
		}
	}
}

// Update implements Code: parity_i ^= g^(i·di) * delta at off.
func (c *RSCode) Update(parity [][]byte, di int, off int, delta []byte) {
	for pi := 0; pi < c.m; pi++ {
		c.UpdateOne(pi, parity[pi], di, off, delta)
	}
}

// UpdateOne implements Code for a single parity shard.
func (c *RSCode) UpdateOne(pi int, parity []byte, di int, off int, delta []byte) {
	gfMulSliceXor(c.coef(pi, di), parity[off:off+len(delta)], delta)
}

// Reconstruct implements Code. It solves the parity equations over
// GF(2^8) with the missing shards as unknowns, handling any mix of lost
// data and parity shards.
func (c *RSCode) Reconstruct(shards [][]byte, present []bool) error {
	size, missing, err := checkShards(c, shards, present)
	if err != nil {
		return err
	}
	if len(missing) == 0 {
		return nil
	}
	varOf := make(map[int]int, len(missing))
	for _, mi := range missing {
		varOf[mi] = len(varOf)
	}
	nvars := len(varOf)

	// Equation for parity row pi: parity_pi ^ sum_di coef*D_di = 0.
	// Build rows of coefficients over unknowns plus a RHS byte-slice of
	// the known contributions.
	var rows [][]byte // coefficient vectors, one per equation
	var rhs [][]byte
	for pi := 0; pi < c.m; pi++ {
		row := make([]byte, nvars)
		b := make([]byte, size)
		add := func(shard int, cf byte) {
			if v, ok := varOf[shard]; ok {
				row[v] ^= cf
			} else {
				gfMulSliceXor(cf, b, shards[shard])
			}
		}
		add(c.k+pi, 1)
		for di := 0; di < c.k; di++ {
			add(di, c.coef(pi, di))
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}

	// Gauss-Jordan over GF(2^8).
	pivotRow := make([]int, nvars)
	nextRow := 0
	for v := 0; v < nvars; v++ {
		sel := -1
		for r := nextRow; r < len(rows); r++ {
			if rows[r][v] != 0 {
				sel = r
				break
			}
		}
		if sel == -1 {
			return fmt.Errorf("erasure: rs reconstruction singular (missing %v)", missing)
		}
		rows[sel], rows[nextRow] = rows[nextRow], rows[sel]
		rhs[sel], rhs[nextRow] = rhs[nextRow], rhs[sel]
		// Normalise the pivot row.
		if inv := gfInv(rows[nextRow][v]); inv != 1 {
			for j := range rows[nextRow] {
				rows[nextRow][j] = gfMul(rows[nextRow][j], inv)
			}
			tmp := make([]byte, size)
			gfMulSlice(inv, tmp, rhs[nextRow])
			rhs[nextRow] = tmp
		}
		for r := 0; r < len(rows); r++ {
			if r != nextRow && rows[r][v] != 0 {
				cf := rows[r][v]
				for j := range rows[r] {
					rows[r][j] ^= gfMul(cf, rows[nextRow][j])
				}
				gfMulSliceXor(cf, rhs[r], rhs[nextRow])
			}
		}
		pivotRow[v] = nextRow
		nextRow++
	}
	for shard, v := range varOf {
		copy(shards[shard], rhs[pivotRow[v]])
	}
	return nil
}
