package erasure

import "fmt"

// RSCode is a systematic Reed-Solomon code over GF(2^8) with one or two
// parity shards (the classic RAID-6 P+Q construction): parity row i has
// coefficient g^(i·c) for data shard c, with g = 2 the field generator.
// Any one or two lost shards are recoverable. It is the GF-based
// comparator of Table 2: correct but slower than the XOR-only code
// because encoding and reconstruction perform GF multiplications.
//
// RS shards have no internal segment layout, so the band dimension is
// the shard itself: band [lo, hi) reads and writes bytes [lo, hi) of
// every shard, and SetWorkers fans whole-shard kernels out over the
// package worker pool.
type RSCode struct {
	k, m    int
	workers int
}

// NewRS creates a Reed-Solomon code with k data shards and m parity
// shards (m must be 1 or 2; k+m <= 256).
func NewRS(k, m int) (*RSCode, error) {
	if k < 1 || m < 1 || m > 2 || k+m > 256 {
		return nil, fmt.Errorf("erasure: rs code wants 1<=k, m in {1,2}, k+m<=256; got k=%d m=%d", k, m)
	}
	return &RSCode{k: k, m: m}, nil
}

// Name implements Code.
func (c *RSCode) Name() string { return "rs" }

// K implements Code.
func (c *RSCode) K() int { return c.k }

// M implements Code.
func (c *RSCode) M() int { return c.m }

// SegmentAlign implements Code.
func (c *RSCode) SegmentAlign() int { return 1 }

// BandWidth implements Code: no internal layout, bands are byte ranges.
func (c *RSCode) BandWidth(n int) int { return n }

// SetWorkers sets the wall-clock fan-out for whole-shard kernels
// (clamped per call by band width; ≤1 keeps everything on the caller).
func (c *RSCode) SetWorkers(n int) { c.workers = n }

// coef returns the encoding coefficient of data shard di in parity row
// pi.
func (c *RSCode) coef(pi, di int) byte { return gfPow(pi * di) }

// Encode implements Code.
func (c *RSCode) Encode(data, parity [][]byte) error {
	size, err := checkEncode(c, data, parity)
	if err != nil {
		return err
	}
	nw := poolWorkers(c.workers, size)
	if nw <= 1 {
		c.encodeBand(data, parity, 0, size)
		return nil
	}
	shared.mu.Lock()
	shared.job.kind = jobRSEncode
	shared.job.rc = c
	shared.job.data = data
	shared.job.parity = parity
	shared.fanOut(size, nw)
	shared.mu.Unlock()
	return nil
}

// encodeBand computes bytes [lo, hi) of every parity shard.
func (c *RSCode) encodeBand(data, parity [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	for pi := 0; pi < c.m; pi++ {
		zero(parity[pi][lo:hi])
		for di := 0; di < c.k; di++ {
			gfMulSliceXor(c.coef(pi, di), parity[pi][lo:hi], data[di][lo:hi])
		}
	}
}

// Update implements Code: parity_i ^= g^(i·di) * delta at off.
func (c *RSCode) Update(parity [][]byte, di int, off int, delta []byte) {
	for pi := 0; pi < c.m; pi++ {
		c.UpdateOne(pi, parity[pi], di, off, delta)
	}
}

// UpdateOne implements Code for a single parity shard.
func (c *RSCode) UpdateOne(pi int, parity []byte, di int, off int, delta []byte) {
	gfMulSliceXor(c.coef(pi, di), parity[off:off+len(delta)], delta)
}

// ApplyDeltas implements Code.
func (c *RSCode) ApplyDeltas(pi int, parity []byte, deltas []ShardDelta) {
	nw := poolWorkers(c.workers, len(parity))
	if nw <= 1 {
		c.applyDeltasBand(pi, parity, deltas, 0, len(parity))
		return
	}
	shared.mu.Lock()
	shared.job.kind = jobRSApply
	shared.job.rc = c
	shared.job.pi = pi
	shared.job.pshard = parity
	shared.job.deltas = deltas
	shared.fanOut(len(parity), nw)
	shared.mu.Unlock()
}

// ApplyDeltasBand implements Code.
func (c *RSCode) ApplyDeltasBand(pi int, parity []byte, deltas []ShardDelta, lo, hi int) {
	if hi > len(parity) {
		hi = len(parity)
	}
	c.applyDeltasBand(pi, parity, deltas, lo, hi)
}

func (c *RSCode) applyDeltasBand(pi int, parity []byte, deltas []ShardDelta, lo, hi int) {
	for _, d := range deltas {
		a, b := d.Off, d.Off+len(d.B)
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a >= b {
			continue
		}
		gfMulSliceXor(c.coef(pi, d.DI), parity[a:b], d.B[a-d.Off:b-d.Off])
	}
}

// PlanReconstruct implements Code. The parity system over GF(2^8) is
// eliminated symbolically: rows carry coefficient vectors over the
// unknown shards while a mirrored lambda matrix tracks each row as a
// combination of the original equations. Solved shard mi then equals
// Σ_s (Σ_e λ[e]·coef(e,s)) · shard_s over the present shards — flat
// per-shard coefficients, applied bandwise with no solver buffers.
func (c *RSCode) PlanReconstruct(shards [][]byte, present []bool) (*Plan, error) {
	size, missing, err := checkShards(c, shards, present)
	if err != nil {
		return nil, err
	}
	if len(missing) == 0 {
		return nil, nil
	}
	// coefOf covers every shard: data coefficients from the generator
	// matrix, identity for the parity shard of the same equation.
	coefOf := func(pi, shard int) byte {
		if shard >= c.k {
			if shard-c.k == pi {
				return 1
			}
			return 0
		}
		return c.coef(pi, shard)
	}
	nvars := len(missing)
	rows := make([][]byte, c.m) // coefficient vectors over unknowns
	lam := make([][]byte, c.m)  // rows[r] = Σ_e lam[r][e] · equation_e
	for pi := 0; pi < c.m; pi++ {
		row := make([]byte, nvars)
		for i, mi := range missing {
			row[i] = coefOf(pi, mi)
		}
		l := make([]byte, c.m)
		l[pi] = 1
		rows[pi] = row
		lam[pi] = l
	}

	// Gauss-Jordan over GF(2^8), mirroring every row operation on lam.
	pivotRow := make([]int, nvars)
	nextRow := 0
	for v := 0; v < nvars; v++ {
		sel := -1
		for r := nextRow; r < len(rows); r++ {
			if rows[r][v] != 0 {
				sel = r
				break
			}
		}
		if sel == -1 {
			return nil, fmt.Errorf("erasure: rs reconstruction singular (missing %v)", missing)
		}
		rows[sel], rows[nextRow] = rows[nextRow], rows[sel]
		lam[sel], lam[nextRow] = lam[nextRow], lam[sel]
		if inv := gfInv(rows[nextRow][v]); inv != 1 {
			for j := range rows[nextRow] {
				rows[nextRow][j] = gfMul(rows[nextRow][j], inv)
			}
			for j := range lam[nextRow] {
				lam[nextRow][j] = gfMul(lam[nextRow][j], inv)
			}
		}
		for r := range rows {
			if r != nextRow && rows[r][v] != 0 {
				cf := rows[r][v]
				for j := range rows[r] {
					rows[r][j] ^= gfMul(cf, rows[nextRow][j])
				}
				for j := range lam[r] {
					lam[r][j] ^= gfMul(cf, lam[nextRow][j])
				}
			}
		}
		pivotRow[v] = nextRow
		nextRow++
	}

	pl := &Plan{width: size}
	for i, mi := range missing {
		l := lam[pivotRow[i]]
		var terms []rsTerm
		for s := 0; s < c.k+c.m; s++ {
			if !present[s] {
				continue
			}
			var cf byte
			for e := 0; e < c.m; e++ {
				cf ^= gfMul(l[e], coefOf(e, s))
			}
			if cf != 0 {
				terms = append(terms, rsTerm{cf: cf, src: s})
			}
		}
		pl.rsTargets = append(pl.rsTargets, mi)
		pl.rsTerms = append(pl.rsTerms, terms)
	}
	return pl, nil
}

// Reconstruct implements Code: solve once, apply bandwise (fanned out
// over the pool when configured).
func (c *RSCode) Reconstruct(shards [][]byte, present []bool) error {
	pl, err := c.PlanReconstruct(shards, present)
	if err != nil || pl == nil {
		return err
	}
	runPlanPooled(pl, shards, c.workers)
	return nil
}
