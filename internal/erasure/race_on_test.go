//go:build race

package erasure

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops Puts at random under race, so zero-alloc pins
// cannot hold and are skipped.
const raceEnabled = true
