package erasure

import "testing"

// TestXorCostModelBeatsRS asserts the Table 2 performance claim in
// count form, not wall-clock form: per parity byte produced, the
// XOR-only EVENODD code executes far fewer primitive operations than
// the table-driven Reed-Solomon code. The counts come from the codes'
// actual parameters (k, m, and the prime p NewXor selected), so a
// structural regression — a larger prime, an extra pass, a parity
// count change — moves the ratio and fails the test; machine load and
// race instrumentation cannot.
//
// Model, per byte of each data shard:
//   - XOR encode touches every data byte once for the row parity P,
//     once for the diagonal parity Q, and amortises the adjuster
//     diagonal S (built from up to p−1 segments, folded into all p−1 Q
//     segments) to at most 2 extra shard-equivalents per stripe. All
//     of it runs through xorBytes, i.e. ≥8 bytes per word op
//     (wider still under subtle.XORBytes' SIMD path).
//   - RS encode performs k·m GF(2^8) multiply-accumulates per stripe
//     byte column; each is at least one table lookup plus a XOR and
//     cannot be word-vectorised with plain lookup tables.
func TestXorCostModelBeatsRS(t *testing.T) {
	for _, k := range []int{3, 6, 16} {
		xc, err := NewXor(k)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewRS(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		// XOR-ed bytes per stripe, in units of shard lengths: k for P,
		// k for the diagonals of Q, ≤1 for building S, ≤1 for folding S
		// into Q.
		xorShardPasses := float64(2*xc.k + 2)
		xorWordOpsPerDataByte := xorShardPasses / float64(xc.k) / 8
		rsByteOpsPerDataByte := float64(rs.M()) // k·m column ops / k data bytes
		ratio := rsByteOpsPerDataByte / xorWordOpsPerDataByte
		if ratio < 2 {
			t.Errorf("k=%d: RS does only %.1fx the primitive ops of XOR, want >= 2x "+
				"(xor %.3f word-ops/byte, rs %.3f byte-ops/byte)",
				k, ratio, xorWordOpsPerDataByte, rsByteOpsPerDataByte)
		}
		// The selected prime bounds the adjuster overhead the model
		// amortised above: segments per shard is p−1, and S costs at
		// most 2 shard passes regardless of p.
		if xc.p < xc.k {
			t.Errorf("k=%d: selected prime %d smaller than k", k, xc.p)
		}
	}
}
