// Package sim implements a deterministic discrete-event simulation
// engine used to model the disaggregated-memory fabric (NICs, links,
// memory-node CPU cores) that the paper's testbed provides in hardware.
//
// The engine runs simulated processes as goroutines but guarantees that
// at most one process executes at a time and that processes are resumed
// in strict virtual-time order (ties broken by schedule sequence), so
// every run with the same inputs produces the same results.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// killed is the sentinel panic value used to unwind a process when the
// engine shuts down while the process is still blocked.
type killedPanic struct{}

// Engine is a discrete-event simulation engine. Create one with New,
// start processes with Go, and advance virtual time with Run or Step.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	procs   map[*Proc]struct{}
	stopped bool
	// yield is signalled by the running process when it blocks or exits.
	yield chan struct{}
}

// New returns an empty engine at virtual time zero.
func New() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Proc is a simulated process. All blocking operations (Sleep, resource
// acquisition, parking) must be invoked from the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	// parked reports whether the process is blocked without a scheduled
	// wakeup (waiting on an Unpark from another process).
	parked bool
}

// Name returns the process's debug name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Go starts fn as a new simulated process scheduled to begin at the
// current virtual time. fn runs on its own goroutine but only while the
// engine has handed it the single execution token.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, fn)
}

// GoAt starts fn as a new simulated process scheduled to begin at
// virtual time at (which must not be in the past).
func (e *Engine) GoAt(at time.Duration, name string, fn func(p *Proc)) *Proc {
	if at < e.now {
		at = e.now
	}
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first scheduling
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					panic(r)
				}
			}
			p.done = true
			delete(e.procs, p)
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(p, at)
	return p
}

// schedule enqueues a wakeup for p at time at.
func (e *Engine) schedule(p *Proc, at time.Duration) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// block yields from the running process back to the engine loop and
// waits to be resumed. It must be called from the process goroutine.
func (p *Proc) block() {
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.eng.stopped {
		panic(killedPanic{})
	}
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time (the process still yields, letting same-time events
// scheduled earlier run first).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p, p.eng.now+d)
	p.block()
}

// SleepUntil suspends the process until virtual time t (or now if t is
// in the past).
func (p *Proc) SleepUntil(t time.Duration) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.eng.schedule(p, t)
	p.block()
}

// Yield lets every other runnable process scheduled at the current
// virtual time run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the process with no scheduled wakeup until another
// process calls Unpark on it.
func (p *Proc) Park() {
	p.parked = true
	p.block()
}

// Unpark schedules parked process q to resume at the current virtual
// time. Calling Unpark on a process that is not parked is a bug.
func (p *Proc) Unpark(q *Proc) {
	if !q.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked process %q", q.name))
	}
	q.parked = false
	p.eng.schedule(q, p.eng.now)
}

// step dispatches the earliest pending event. It reports false when the
// event queue is empty.
func (e *Engine) step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.proc.done {
			continue
		}
		if ev.at < e.now {
			panic("sim: event scheduled in the past")
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		<-e.yield
		return true
	}
	return false
}

// Run advances virtual time until no events remain or the next event
// lies beyond the limit; in the latter case the clock is set to limit.
// Processes still blocked when Run returns stay blocked and can be
// resumed by a later Run; call Shutdown to unwind them.
func (e *Engine) Run(limit time.Duration) {
	for e.events.Len() > 0 && e.events[0].at <= limit {
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunUntilIdle advances virtual time until no events remain. Processes
// parked forever (daemons waiting on work) do not keep the engine busy.
func (e *Engine) RunUntilIdle() {
	for e.step() {
	}
}

// Shutdown unwinds every remaining process (blocked or scheduled) by
// resuming it with the stop flag set, which makes its pending blocking
// call panic with an internal sentinel that the process wrapper
// recovers. After Shutdown the engine must not be used again.
func (e *Engine) Shutdown() {
	e.stopped = true
	for len(e.procs) > 0 {
		var victim *Proc
		for p := range e.procs {
			victim = p
			break
		}
		victim.resume <- struct{}{}
		<-e.yield
	}
	e.events = nil
}
