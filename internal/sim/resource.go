package sim

import (
	"sort"
	"time"
)

// Resource models a FIFO queueing server (or a bank of identical
// servers): an RNIC's message-processing pipeline, a DMA engine, or a
// memory-node CPU core. Acquire charges a service time; if all servers
// are busy the caller waits its turn in arrival order.
//
// Busy time is accounted so experiments can report utilisation
// (Table 3 of the paper).
type Resource struct {
	eng  *Engine
	name string
	// freeAt holds, per server, the virtual time at which that server
	// next becomes free.
	freeAt []time.Duration
	busy   time.Duration
	since  time.Duration // utilisation-window start
}

// NewResource creates a resource with the given number of identical
// servers (must be >= 1).
func NewResource(eng *Engine, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{eng: eng, name: name, freeAt: make([]time.Duration, servers)}
}

// Name returns the resource's debug name.
func (r *Resource) Name() string { return r.name }

// Acquire blocks the process until a server has completed service of
// duration d for it, queueing FIFO behind earlier arrivals. It returns
// the time spent waiting in the queue (excluding service).
func (r *Resource) Acquire(p *Proc, d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	now := p.eng.now
	// Pick the server that frees up earliest.
	best := 0
	for i, t := range r.freeAt {
		if t < r.freeAt[best] {
			best = i
		}
	}
	start := r.freeAt[best]
	if start < now {
		start = now
	}
	r.freeAt[best] = start + d
	r.busy += d
	p.SleepUntil(start + d)
	return start - now
}

// Reserve charges service time d without blocking the caller: the work
// occupies a server (delaying later arrivals) but completes
// asynchronously. Used for fire-and-forget DMA-style transfers.
func (r *Resource) Reserve(now, d time.Duration) {
	r.ReserveAt(now, d)
}

// ReserveAt charges service time d for work arriving at time at (which
// may be in the caller's future, e.g. after a propagation delay) and
// returns the virtual time at which the service completes. The caller
// is not blocked; it can SleepUntil the returned time to model a
// synchronous completion.
func (r *Resource) ReserveAt(at, d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	best := 0
	for i, t := range r.freeAt {
		if t < r.freeAt[best] {
			best = i
		}
	}
	start := r.freeAt[best]
	if start < at {
		start = at
	}
	r.freeAt[best] = start + d
	r.busy += d
	return start + d
}

// ResetUsage starts a new utilisation measurement window.
func (r *Resource) ResetUsage() {
	r.busy = 0
	r.since = r.eng.now
}

// Utilization returns the fraction of the current measurement window
// during which servers were busy (averaged over the server bank).
func (r *Resource) Utilization() float64 {
	window := r.eng.now - r.since
	if window <= 0 {
		return 0
	}
	return float64(r.busy) / float64(window) / float64(len(r.freeAt))
}

// BusyTime returns the total service time charged in the current
// measurement window.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Mutex is a FIFO mutual-exclusion lock between simulated processes.
// Unlike Resource it has no notion of service time: the critical
// section takes however long the holder's own operations take.
type Mutex struct {
	holder  *Proc
	waiters []*Proc
}

// Lock acquires the mutex, parking the process until it is available.
func (m *Mutex) Lock(p *Proc) {
	if m.holder == nil {
		m.holder = p
		return
	}
	m.waiters = append(m.waiters, p)
	p.Park()
}

// Unlock releases the mutex and hands it to the earliest waiter.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic("sim: unlock of mutex not held by process")
	}
	if len(m.waiters) == 0 {
		m.holder = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.holder = next
	p.Unpark(next)
}

// WaitGroup lets a process wait for a set of simulated tasks to finish.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the outstanding-task count.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done marks one task complete, waking waiters when the count hits zero.
func (w *WaitGroup) Done(p *Proc) {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.count == 0 {
		ws := w.waiters
		w.waiters = nil
		// Wake in deterministic order.
		sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
		for _, q := range ws {
			p.Unpark(q)
		}
	}
}

// Wait parks the process until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.Park()
}
