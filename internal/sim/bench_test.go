package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw engine event dispatch (the
// cost floor under every simulated benchmark).
func BenchmarkEventThroughput(b *testing.B) {
	e := New()
	done := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
		done = b.N
	})
	b.ResetTimer()
	e.RunUntilIdle()
	if done != b.N {
		b.Fatal("ticker did not finish")
	}
}

// BenchmarkResourceAcquire measures contended resource scheduling.
func BenchmarkResourceAcquire(b *testing.B) {
	e := New()
	r := NewResource(e, "nic", 1)
	const procs = 8
	per := b.N/procs + 1
	for w := 0; w < procs; w++ {
		e.Go("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				r.Acquire(p, 10*time.Nanosecond)
			}
		})
	}
	b.ResetTimer()
	e.RunUntilIdle()
}
