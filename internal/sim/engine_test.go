package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := New()
	var woke time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	e.RunUntilIdle()
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("engine now %v, want 5ms", e.Now())
	}
}

func TestDeterministicOrdering(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(10-i) * time.Microsecond)
				order = append(order, i)
				p.Sleep(time.Microsecond)
				order = append(order, 100+i)
			})
		}
		e.RunUntilIdle()
		return order
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d %d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Earliest wakeup (largest i sleeps least) runs first.
	if a[0] != 9 {
		t.Fatalf("first event %d, want 9", a[0])
	}
}

func TestSameTimeTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestRunLimitStopsEarly(t *testing.T) {
	e := New()
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.Run(4500 * time.Millisecond)
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4", ticks)
	}
	if e.Now() != 4500*time.Millisecond {
		t.Fatalf("now = %v, want 4.5s", e.Now())
	}
	e.Shutdown()
}

func TestShutdownUnwindsBlockedProcs(t *testing.T) {
	e := New()
	cleanedUp := false
	e.Go("daemon", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				cleanedUp = true
				panic(r) // re-panic so the engine wrapper sees the kill
			}
		}()
		p.Park() // never unparked
	})
	e.Run(time.Second)
	e.Shutdown()
	if !cleanedUp {
		t.Fatal("parked process was not unwound at shutdown")
	}
}

func TestResourceSerializesService(t *testing.T) {
	e := New()
	r := NewResource(e, "nic", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) {
			r.Acquire(p, 10*time.Microsecond)
			finish = append(finish, p.Now())
		})
	}
	e.RunUntilIdle()
	want := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish[%d] = %v, want %v", i, finish[i], want[i])
		}
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu", 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("c", func(p *Proc) {
			r.Acquire(p, 10*time.Microsecond)
			finish = append(finish, p.Now())
		})
	}
	e.RunUntilIdle()
	// Two servers: pairs complete at 10us and 20us.
	want := []time.Duration{10 * time.Microsecond, 10 * time.Microsecond, 20 * time.Microsecond, 20 * time.Microsecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := NewResource(e, "nic", 1)
	e.Go("c", func(p *Proc) {
		r.Acquire(p, 250*time.Millisecond)
	})
	e.Go("idle", func(p *Proc) {
		p.Sleep(time.Second)
	})
	e.RunUntilIdle()
	if got := r.Utilization(); got < 0.24 || got > 0.26 {
		t.Fatalf("utilization = %v, want ~0.25", got)
	}
}

func TestMutexFIFO(t *testing.T) {
	e := New()
	var m Mutex
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("locker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // stagger arrivals
			m.Lock(p)
			order = append(order, i)
			p.Sleep(10 * time.Microsecond)
			m.Unlock(p)
		})
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order %v, want FIFO", order)
		}
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("critical sections did not serialize: now=%v", e.Now())
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	var wg WaitGroup
	wg.Add(3)
	done := time.Duration(-1)
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done(p)
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	e.RunUntilIdle()
	if done != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", done)
	}
}

func TestParkUnpark(t *testing.T) {
	e := New()
	var consumer *Proc
	delivered := ""
	mailbox := ""
	e.Go("consumer", func(p *Proc) {
		consumer = p
		p.Park()
		delivered = mailbox
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		mailbox = "hello"
		p.Unpark(consumer)
	})
	e.RunUntilIdle()
	if delivered != "hello" {
		t.Fatalf("delivered %q", delivered)
	}
}

func TestReserveDelaysLaterArrivals(t *testing.T) {
	e := New()
	r := NewResource(e, "nic", 1)
	var finish time.Duration
	e.Go("bg", func(p *Proc) {
		r.Reserve(p.Now(), 100*time.Microsecond) // async transfer
	})
	e.Go("fg", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		r.Acquire(p, 10*time.Microsecond)
		finish = p.Now()
	})
	e.RunUntilIdle()
	if finish != 110*time.Microsecond {
		t.Fatalf("foreground finished at %v, want 110us", finish)
	}
}
