// Package ftmode defines the pluggable fault-tolerance mode
// abstraction: the narrow surface every backup scheme — Aceso's
// erasure-coded hybrid, FUSEE-style full replication, SWARM-style
// in-place replication — must present so one harness (cmds, bench
// experiments, chaos tests, SLO reports) can drive any of them
// unmodified.
//
// The package is a leaf: it depends only on the verb fabric
// abstraction. Mode implementations register themselves with the
// registry in internal/core (which owns the shared Config type), and
// callers open a cluster through core.OpenFT or the aceso facade's
// Open.
package ftmode

import "repro/internal/rdma"

// KV is the client-facing operation surface every mode provides. The
// error taxonomy is shared: implementations return errors that match
// core.ErrNotFound / core.ErrNoSpace / core.ErrRetriesExhausted under
// errors.Is, so switching modes never changes what callers match on.
type KV interface {
	Search(key []byte) ([]byte, error)
	Insert(key, val []byte) error
	Update(key, val []byte) error
	Delete(key []byte) error
	// Close flushes client-buffered state (e.g. Aceso's batched
	// free-bitmap updates); modes without such state treat it as a
	// no-op.
	Close()
}

// Client is a mode client before or after binding to a fabric process
// context. Counters feeds verbs-per-op accounting (Figure 1(a)-style
// rows) uniformly across modes.
type Client interface {
	KV
	Attach(ctx rdma.Ctx)
	Counters() (cas, reads, writes uint64)
}

// Caps declares which parts of the harness surface a mode implements,
// so cross-mode tests and tools can skip a tier with an explicit
// capability check instead of a silent pass.
type Caps struct {
	// DegradedReads: reads of lost-block data are served by online
	// reconstruction (Aceso tier-1) rather than replica failover.
	DegradedReads bool
	// TieredRecovery: a master rebuilds failed MNs onto spares and
	// MNState reports index/blocks readiness during the rebuild.
	TieredRecovery bool
	// ReadFailover: after an MN fail-stop, reads succeed by switching
	// to a surviving replica without any rebuild.
	ReadFailover bool
	// Checkpoints: the mode runs periodic index checkpointing (so
	// checkpoint gauges/stats are meaningful).
	Checkpoints bool
	// SpaceBreakdown: Usage fills the Valid/Redundant split (not just
	// the total footprint).
	SpaceBreakdown bool
	// AdminRPC: mode servers answer admin verbs over the fabric — at
	// least kill, so acesocli and the TCP load harness can inject a
	// fail-stop remotely. Clients advertise the verbs they actually
	// serve via optional interfaces (KillMN, ChaosMN, StatsMN,
	// TraceMN); the replication modes serve kill only.
	AdminRPC bool
	// ClientCache: clients run the bounded CN-side index cache
	// (positive/negative entries, optional hot-bucket mirror) and
	// expose CacheStats; Config.CacheEntries/OffloadBuckets take
	// effect. Replication-baseline modes read through every time.
	ClientCache bool
}

// Usage is a mode's space-accounting snapshot. TotalBytes is the
// full block-area footprint (data + redundancy + dead space); space
// amplification for a workload of L logical bytes is TotalBytes/L.
type Usage struct {
	// ValidBytes is live user payload (zero when the mode cannot
	// account for it; see Caps.SpaceBreakdown).
	ValidBytes uint64
	// RedundantBytes is parity/delta/copy overhead.
	RedundantBytes uint64
	// TotalBytes is the total allocated block bytes.
	TotalBytes uint64
}

// Cluster is a running mode instance on a fabric platform. Construction
// happens through the mode registry (core.OpenFT); Start launches
// whatever server-side daemons the mode needs (no-op for modes whose
// handlers are installed at open).
type Cluster interface {
	// Mode returns the registered mode name.
	Mode() string
	Caps() Caps
	Start() error
	NewClient() Client
	SpawnClient(cn rdma.NodeID, name string, fn func(Client))
	// FailMN injects a fail-stop of logical memory node mn.
	FailMN(mn int)
	// MNState reports failure/recovery state: for tiered-recovery
	// modes indexReady/blocksReady track the rebuild; replication
	// modes report !failed for both (data never leaves the replicas).
	MNState(mn int) (failed, indexReady, blocksReady bool)
	// Ready reports whether the cluster can serve clients.
	Ready() bool
	Usage() Usage
	NumMNs() int
}
