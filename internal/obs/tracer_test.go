package obs

import (
	"testing"
	"time"

	"repro/internal/rdma"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 64)
	if tr.SampleRate() != 4 {
		t.Fatalf("rate = %d, want 4", tr.SampleRate())
	}
	hits := 0
	for i := 0; i < 4000; i++ {
		if tr.Sampled() {
			hits++
		}
	}
	if hits != 1000 {
		t.Errorf("sampled %d of 4000 at rate 4, want 1000", hits)
	}
	// rate <= 1 samples everything.
	all := NewTracer(1, 64)
	for i := 0; i < 10; i++ {
		if !all.Sampled() {
			t.Fatal("rate-1 tracer skipped an event")
		}
	}
}

func TestTracerRingWrapAndDropped(t *testing.T) {
	tr := NewTracer(1, 16)
	for i := 0; i < 40; i++ {
		tr.Record(Span{Kind: SpanVerb, Name: "verb.read", Start: time.Duration(i)})
	}
	if got := tr.Emitted(); got != 40 {
		t.Errorf("emitted = %d, want 40", got)
	}
	if got := tr.Dropped(); got != 24 {
		t.Errorf("dropped = %d, want 24", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot retained %d spans, want 16", len(snap))
	}
	for i, sp := range snap {
		if want := uint64(24 + i); sp.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d (oldest-first, newest retained)", i, sp.Seq, want)
		}
	}
}

func TestTracerIDs(t *testing.T) {
	tr := NewTracer(1, 16)
	if id := tr.NewTraceID(); id == 0 {
		t.Error("trace id 0 is reserved for standalone phases")
	}
	if a, b := tr.NewTid(), tr.NewTid(); a == b {
		t.Errorf("tids not unique: %d %d", a, b)
	}
}

// TestTracerZeroAlloc pins the tracer hot paths at zero allocations:
// the unsampled fast path, a sampled Record, and a full traced client
// op (OpBegin + verb + OpEnd) through the ctx wrapper. CI additionally
// gates the same property at benchmark scale (BenchmarkBurstMixObs).
func TestTracerZeroAlloc(t *testing.T) {
	tr := NewTracer(2, 256)
	if n := testing.AllocsPerRun(1000, func() { tr.Sampled() }); n != 0 {
		t.Errorf("Sampled allocates %.1f/op", n)
	}
	sp := Span{Kind: SpanVerb, Name: "verb.read", Node: 1}
	if n := testing.AllocsPerRun(1000, func() { tr.Record(sp) }); n != 0 {
		t.Errorf("Record allocates %.1f/op", n)
	}

	inner := &fakeCtx{}
	v := WrapCtxTraced(inner, NewFabricMetrics(), NewTracer(1, 256))
	ot := v.(OpTracer)
	buf := make([]byte, 8)
	addr := rdma.GlobalAddr{Node: 1}
	if n := testing.AllocsPerRun(1000, func() {
		ot.OpBegin("get")
		v.Read(buf, addr) //nolint:errcheck
		ot.OpEnd(false)
	}); n != 0 {
		t.Errorf("traced op allocates %.1f/op", n)
	}
}

func TestWrapCtxTracedRecordsOpTree(t *testing.T) {
	tr := NewTracer(1, 64)
	inner := &fakeCtx{}
	v := WrapCtxTraced(inner, NewFabricMetrics(), tr)
	ot := v.(OpTracer)

	ot.OpBegin("get")
	v.Read(make([]byte, 8), rdma.GlobalAddr{Node: 2}) //nolint:errcheck
	v.CAS(rdma.GlobalAddr{Node: 3}, 0, 1)             //nolint:errcheck
	waitStart := v.Now()
	v.Sleep(5 * time.Microsecond)
	ot.OpMark("lock.wait", waitStart)
	ot.OpEnd(false)

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4 (2 verbs + mark + op): %+v", len(spans), spans)
	}
	byKind := map[SpanKind][]Span{}
	for _, sp := range spans {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	op := byKind[SpanOp]
	if len(op) != 1 || op[0].Name != "get" {
		t.Fatalf("op spans = %+v", op)
	}
	if op[0].Trace == 0 {
		t.Error("op span has no trace id")
	}
	verbs := byKind[SpanVerb]
	if len(verbs) != 2 {
		t.Fatalf("verb spans = %+v", verbs)
	}
	for _, sp := range verbs {
		if sp.Trace != op[0].Trace {
			t.Errorf("verb %s trace %d, want op trace %d", sp.Name, sp.Trace, op[0].Trace)
		}
		if sp.Start < op[0].Start || sp.End > op[0].End {
			t.Errorf("verb %s [%v,%v] outside op [%v,%v]", sp.Name, sp.Start, sp.End, op[0].Start, op[0].End)
		}
	}
	if verbs[0].Name != "read" || verbs[1].Name != "cas" {
		t.Errorf("verb names = %s, %s", verbs[0].Name, verbs[1].Name)
	}
	marks := byKind[SpanMark]
	if len(marks) != 1 || marks[0].Name != "lock.wait" {
		t.Fatalf("mark spans = %+v", marks)
	}
	if d := marks[0].End - marks[0].Start; d != 5*time.Microsecond {
		t.Errorf("lock.wait duration = %v, want 5µs", d)
	}
}

func TestWrapCtxTracedUnsampledRecordsNothing(t *testing.T) {
	tr := NewTracer(1<<30, 64) // effectively never samples after the first
	inner := &fakeCtx{}
	v := WrapCtxTraced(inner, NewFabricMetrics(), tr)
	ot := v.(OpTracer)
	tr.Sampled() // burn the aligned first sample
	for i := 0; i < 50; i++ {
		ot.OpBegin("get")
		v.Read(make([]byte, 8), rdma.GlobalAddr{}) //nolint:errcheck
		ot.OpEnd(false)
	}
	if n := tr.Emitted(); n != 0 {
		t.Errorf("unsampled ops recorded %d spans", n)
	}
}

func TestRingSeqMonotonic(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Emit(Event{Kind: "k", MN: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(3 + i); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if got := r.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}
