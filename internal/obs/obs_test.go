package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdma"
)

// fakeCtx is a canned rdma.Ctx whose clock advances a microsecond per
// verb, so wrapper latency accounting is observable.
type fakeCtx struct {
	now time.Duration
	err error
}

func (f *fakeCtx) tick() { f.now += time.Microsecond }

func (f *fakeCtx) Read(buf []byte, _ rdma.GlobalAddr) error { f.tick(); return f.err }
func (f *fakeCtx) Write(_ rdma.GlobalAddr, _ []byte) error  { f.tick(); return f.err }
func (f *fakeCtx) CAS(_ rdma.GlobalAddr, _, _ uint64) (uint64, error) {
	f.tick()
	return 0, f.err
}
func (f *fakeCtx) FAA(_ rdma.GlobalAddr, _ uint64) (uint64, error) {
	f.tick()
	return 0, f.err
}
func (f *fakeCtx) Batch(ops []rdma.Op) error { f.tick(); return f.err }
func (f *fakeCtx) Post(ops []rdma.Op) error  { f.tick(); return f.err }
func (f *fakeCtx) RPC(_ rdma.NodeID, _ uint8, req []byte) ([]byte, error) {
	f.tick()
	return []byte{1, 2, 3, 4}, f.err
}
func (f *fakeCtx) Node() rdma.NodeID         { return 7 }
func (f *fakeCtx) Now() time.Duration        { return f.now }
func (f *fakeCtx) Sleep(d time.Duration)     { f.now += d }
func (f *fakeCtx) UseCPU(int, time.Duration) {}
func (f *fakeCtx) LocalMem() []byte          { return nil }

func TestWrapCtxCounts(t *testing.T) {
	m := NewFabricMetrics()
	ctx := WrapCtx(&fakeCtx{}, m)

	buf := make([]byte, 16)
	for i := 0; i < 3; i++ {
		if err := ctx.Read(buf, rdma.GlobalAddr{}); err != nil {
			t.Fatal(err)
		}
	}
	ctx.Write(rdma.GlobalAddr{}, make([]byte, 64)) //nolint:errcheck // counted regardless
	ctx.CAS(rdma.GlobalAddr{}, 0, 1)               //nolint:errcheck
	ctx.Batch([]rdma.Op{
		{Kind: rdma.OpRead, Buf: make([]byte, 8)},
		{Kind: rdma.OpWrite, Buf: make([]byte, 32)},
		{Kind: rdma.OpFAA},
	}) //nolint:errcheck
	ctx.Post([]rdma.Op{{Kind: rdma.OpWrite, Buf: make([]byte, 8)}}) //nolint:errcheck
	req := []byte{9, 9}
	ctx.RPC(0, 1, req) //nolint:errcheck

	s := m.Snapshot()
	if got := s.OpCount(rdma.OpRead); got != 4 {
		t.Errorf("reads = %d, want 4 (3 singles + 1 batched)", got)
	}
	if got := s.OpBytes(rdma.OpRead); got != 3*16+8 {
		t.Errorf("read bytes = %d, want %d", got, 3*16+8)
	}
	if got := s.OpCount(rdma.OpWrite); got != 3 {
		t.Errorf("writes = %d, want 3 (1 single + 1 batched + 1 posted)", got)
	}
	if got := s.OpCount(rdma.OpCAS); got != 1 || s.OpCount(rdma.OpFAA) != 1 {
		t.Errorf("atomics = %d cas / %d faa, want 1/1", got, s.OpCount(rdma.OpFAA))
	}
	// 3 reads + 1 write + 1 cas + 1 batch + 1 post = 7 doorbells; the
	// RPC call is excluded.
	if got := s.Doorbells(); got != 7 {
		t.Errorf("doorbells = %d, want 7", got)
	}
	if got := s.Calls[CallRPC].Count; got != 1 {
		t.Errorf("rpc calls = %d, want 1", got)
	}
	if got := s.RPCBytes; got != uint64(len(req))+4 {
		t.Errorf("rpc bytes = %d, want %d", got, len(req)+4)
	}
	if l := m.Latency(CallRead); l.Count != 3 || l.Mean != time.Microsecond {
		t.Errorf("read latency snap = %+v, want count 3 mean 1µs", l)
	}

	// Sub yields the delta of a subsequent phase.
	before := m.Snapshot()
	ctx.Read(buf, rdma.GlobalAddr{}) //nolint:errcheck
	d := m.Snapshot().Sub(before)
	if d.OpCount(rdma.OpRead) != 1 || d.Doorbells() != 1 || d.OpCount(rdma.OpWrite) != 0 {
		t.Errorf("delta = %+v, want exactly one read", d)
	}
}

func TestWrapCtxErrorCounts(t *testing.T) {
	m := NewFabricMetrics()
	ctx := WrapCtx(&fakeCtx{err: rdma.ErrNodeFailed}, m)
	ctx.Read(make([]byte, 8), rdma.GlobalAddr{}) //nolint:errcheck
	s := m.Snapshot()
	if s.Calls[CallRead].Errors != 1 || s.Calls[CallRead].NodeFailed != 1 {
		t.Errorf("error counters = %+v, want errors=1 nodeFailed=1", s.Calls[CallRead])
	}
}

func TestWrapCtxNilMetrics(t *testing.T) {
	inner := &fakeCtx{}
	if got := WrapCtx(inner, nil); got != rdma.Ctx(inner) {
		t.Error("WrapCtx(nil metrics) should return the inner ctx unchanged")
	}
}

func TestLockedHistogramConcurrent(t *testing.T) {
	var h LockedHistogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i+1) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if got := snap.Count(); got != workers*per {
		t.Fatalf("merged count = %d, want %d", got, workers*per)
	}
	if snap.Min() != time.Microsecond {
		t.Errorf("min = %v, want 1µs", snap.Min())
	}
	if snap.Max() != workers*per*time.Microsecond {
		t.Errorf("max = %v, want %v", snap.Max(), workers*per*time.Microsecond)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{At: time.Duration(i), Kind: "k", MN: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.MN != i+2 {
			t.Errorf("event %d has MN %d, want %d (oldest-first)", i, ev.MN, i+2)
		}
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
}

func TestExporterWritesAllFamilies(t *testing.T) {
	m := NewFabricMetrics()
	ctx := WrapCtx(&fakeCtx{}, m)
	ctx.Read(make([]byte, 8), rdma.GlobalAddr{}) //nolint:errcheck
	ring := NewRing(8)
	ring.Emit(Event{Kind: "fail.detect", MN: 1})
	e := &Exporter{
		Fabric: m,
		Transport: func() rdma.TransportStats {
			return rdma.TransportStats{Dials: 3, Retries: 2, ChaosDrops: 1}
		},
		Gauges: func() map[string]float64 { return map[string]float64{"ckpt_rounds_total": 12} },
		Trace:  ring,
	}
	var sb strings.Builder
	e.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		`aceso_verb_calls_total{call="read"} 1`,
		`aceso_ops_total{kind="read"} 1`,
		`aceso_op_bytes_total{kind="read"} 8`,
		"aceso_doorbells_total 1",
		"aceso_transport_dials_total 3",
		"aceso_transport_retries_total 2",
		`aceso_chaos_injections_total{fault="drop"} 1`,
		"aceso_ckpt_rounds_total 12",
		"aceso_trace_events_total 1",
		"# TYPE aceso_verb_calls_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
