// Package obs is the observability layer: an instrumenting wrapper
// around the rdma verb surface (so both fabrics are metered by the
// same code), concurrent-safe latency histograms, a bounded trace ring
// for recovery/checkpoint phases, and a Prometheus-text HTTP exporter.
//
// Everything every performance claim in the paper rests on is a count
// — verbs per op, bytes moved, doorbells posted (PAPER.md §3) — and
// this package makes those counts observable on a live system instead
// of only inside the bench harness.
package obs

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdma"
)

// Call identifies one entry point of the rdma.Verbs surface. Singleton
// verbs and batched/posted lists are counted separately because each
// call costs one doorbell regardless of how many ops ride it (§3.5.2).
type Call uint8

// Verb-surface entry points.
const (
	CallRead Call = iota
	CallWrite
	CallCAS
	CallFAA
	CallBatch
	CallPost
	CallRPC
	NumCalls
)

var callNames = [NumCalls]string{"read", "write", "cas", "faa", "batch", "post", "rpc"}

func (c Call) String() string {
	if int(c) < len(callNames) {
		return callNames[c]
	}
	return "unknown"
}

var opNames = [4]string{"read", "write", "cas", "faa"}

// OpKindName names an rdma.OpKind for metric labels.
func OpKindName(k rdma.OpKind) string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "unknown"
}

type opCounter struct {
	count atomic.Uint64
	bytes atomic.Uint64
}

type callCounter struct {
	count      atomic.Uint64
	errors     atomic.Uint64
	nodeFailed atomic.Uint64
}

// FabricMetrics aggregates verb-level counters for one instrumented
// scope (a daemon's whole platform, or just the client processes of a
// bench run). All methods are safe for concurrent use; the counter
// hot path is a handful of atomic adds per verb.
type FabricMetrics struct {
	// ops counts executed operations by rdma.OpKind, whether issued as
	// singleton verbs or entries of a Batch/Post list.
	ops [4]opCounter
	// calls counts verb-surface invocations; each is one doorbell.
	calls    [NumCalls]callCounter
	rpcBytes atomic.Uint64
	lat      [NumCalls]LockedHistogram
}

// NewFabricMetrics returns an empty metrics aggregate.
func NewFabricMetrics() *FabricMetrics { return &FabricMetrics{} }

// OpSnap is a per-OpKind counter snapshot.
type OpSnap struct {
	Count uint64
	Bytes uint64
}

// CallSnap is a per-Call counter snapshot.
type CallSnap struct {
	Count      uint64
	Errors     uint64
	NodeFailed uint64
}

// FabricSnapshot is a point-in-time copy of every counter. Latency
// histograms are merged copies the receiver owns.
type FabricSnapshot struct {
	Ops      [4]OpSnap
	Calls    [NumCalls]CallSnap
	RPCBytes uint64
}

// Snapshot copies all counters. Individual fields are read atomically;
// the snapshot as a whole is not a consistent cut, which is fine for
// monitoring.
func (m *FabricMetrics) Snapshot() FabricSnapshot {
	var s FabricSnapshot
	for i := range m.ops {
		s.Ops[i] = OpSnap{m.ops[i].count.Load(), m.ops[i].bytes.Load()}
	}
	for i := range m.calls {
		s.Calls[i] = CallSnap{m.calls[i].count.Load(), m.calls[i].errors.Load(), m.calls[i].nodeFailed.Load()}
	}
	s.RPCBytes = m.rpcBytes.Load()
	return s
}

// Doorbells returns the snapshot's total doorbell count: one per
// verb-surface call (RPC excluded — it rides the two-sided channel).
func (s FabricSnapshot) Doorbells() uint64 {
	var n uint64
	for c := CallRead; c < CallRPC; c++ {
		n += s.Calls[c].Count
	}
	return n
}

// OpCount returns the executed-op count for kind k (singletons plus
// batched/posted entries).
func (s FabricSnapshot) OpCount(k rdma.OpKind) uint64 { return s.Ops[k].Count }

// OpBytes returns the bytes moved by ops of kind k (8 for atomics).
func (s FabricSnapshot) OpBytes(k rdma.OpKind) uint64 { return s.Ops[k].Bytes }

// Sub returns s minus earlier, field-wise (for measuring a phase).
func (s FabricSnapshot) Sub(earlier FabricSnapshot) FabricSnapshot {
	var d FabricSnapshot
	for i := range s.Ops {
		d.Ops[i] = OpSnap{s.Ops[i].Count - earlier.Ops[i].Count, s.Ops[i].Bytes - earlier.Ops[i].Bytes}
	}
	for i := range s.Calls {
		d.Calls[i] = CallSnap{
			s.Calls[i].Count - earlier.Calls[i].Count,
			s.Calls[i].Errors - earlier.Calls[i].Errors,
			s.Calls[i].NodeFailed - earlier.Calls[i].NodeFailed,
		}
	}
	d.RPCBytes = s.RPCBytes - earlier.RPCBytes
	return d
}

// Latency returns a merged copy of the latency histogram for call c.
func (m *FabricMetrics) Latency(c Call) *LatencySnap {
	h := m.lat[c].Snapshot()
	return &LatencySnap{Call: c, Count: h.Count(), Mean: h.Mean(),
		Min: h.Min(), P50: h.Percentile(0.50), P99: h.Percentile(0.99), Max: h.Max()}
}

// LatencySnap summarises one call kind's latency distribution.
type LatencySnap struct {
	Call                     Call
	Count                    uint64
	Mean, Min, P50, P99, Max time.Duration
}

func (m *FabricMetrics) observe(c Call, start, end time.Duration, err error) {
	cc := &m.calls[c]
	cc.count.Add(1)
	if err != nil {
		cc.errors.Add(1)
		if errors.Is(err, rdma.ErrNodeFailed) {
			cc.nodeFailed.Add(1)
		}
	}
	if end >= start {
		m.lat[c].Record(end - start)
	}
}

func (m *FabricMetrics) countOp(k rdma.OpKind, bytes int) {
	m.ops[k].count.Add(1)
	m.ops[k].bytes.Add(uint64(bytes))
}

func (m *FabricMetrics) countList(ops []rdma.Op) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case rdma.OpRead, rdma.OpWrite:
			m.countOp(op.Kind, len(op.Buf))
		default:
			m.countOp(op.Kind, 8)
		}
	}
}

// WrapCtx returns a ctx whose verb surface updates m before
// delegating to inner. Latencies are measured with the fabric clock
// (virtual on simnet), so instrumentation never perturbs simulated
// timing. A nil m returns inner unchanged.
func WrapCtx(inner rdma.Ctx, m *FabricMetrics) rdma.Ctx {
	return WrapCtxTraced(inner, m, nil)
}

// WrapCtxTraced is WrapCtx plus sampled span tracing: when tr is
// non-nil the returned ctx implements OpTracer, and while a sampled
// op is open every verb issued through the ctx records a child span.
func WrapCtxTraced(inner rdma.Ctx, m *FabricMetrics, tr *Tracer) rdma.Ctx {
	if m == nil && tr == nil {
		return inner
	}
	if m == nil {
		m = NewFabricMetrics()
	}
	return &ctxWrapper{inner: inner, m: m, tr: tr}
}

// OpTracer is the per-op tracing surface a traced ctx exposes. The
// core client type-asserts its attached ctx to this and brackets each
// GET/UPDATE/INSERT/DELETE with OpBegin/OpEnd; OpMark annotates
// sub-phases (lock-stripe waits, degraded reads) inside a sampled op.
type OpTracer interface {
	// OpBegin opens an op span named name (a static string). It
	// advances the sampling counter and reports whether this op is
	// sampled; unsampled ops record nothing and cost one atomic add.
	OpBegin(name string) bool
	// OpEnd closes the open op span, if any.
	OpEnd(failed bool)
	// OpMark records a sub-span from fabric time start to now inside
	// the open op span; a no-op when the current op is unsampled.
	OpMark(name string, start time.Duration)
}

type ctxWrapper struct {
	inner rdma.Ctx
	m     *FabricMetrics
	tr    *Tracer

	// Per-op tracing state. A ctx belongs to exactly one process
	// (processes are single-threaded on both fabrics), so this state
	// needs no synchronisation.
	tid     int32
	tracing bool // a sampled op is open; verbs record child spans
	opName  string
	opTrace uint64
	opStart time.Duration
	opWall  int64
}

func (w *ctxWrapper) OpBegin(name string) bool {
	t := w.tr
	if t == nil || !t.Sampled() {
		w.tracing = false
		return false
	}
	if w.tid == 0 {
		w.tid = t.NewTid()
	}
	w.tracing = true
	w.opName = name
	w.opTrace = t.NewTraceID()
	w.opStart = w.inner.Now()
	w.opWall = t.WallNow()
	return true
}

func (w *ctxWrapper) OpEnd(failed bool) {
	if !w.tracing {
		return
	}
	w.tracing = false
	w.tr.Record(Span{
		Trace: w.opTrace, Kind: SpanOp, Err: failed, Node: -1, Tid: w.tid,
		Name: w.opName, Start: w.opStart, End: w.inner.Now(),
		WallStart: w.opWall, WallEnd: w.tr.WallNow(),
	})
}

func (w *ctxWrapper) OpMark(name string, start time.Duration) {
	if !w.tracing {
		return
	}
	end := w.inner.Now()
	wallEnd := w.tr.WallNow()
	w.tr.Record(Span{
		Trace: w.opTrace, Kind: SpanMark, Node: -1, Tid: w.tid,
		Name: name, Start: start, End: end,
		// Fabric-projected wall start: on simnet the wall clock does
		// not advance with virtual time, so the mark's wall interval
		// mirrors its fabric duration.
		WallStart: wallEnd - int64(end-start), WallEnd: wallEnd,
	})
}

// span records one verb child span of the open op. Only called when
// w.tracing is true; never allocates (static names, struct copy into
// the tracer's pre-allocated ring).
func (w *ctxWrapper) span(c Call, node rdma.NodeID, start, end time.Duration, wallStart int64, err error) {
	w.tr.Record(Span{
		Trace: w.opTrace, Kind: SpanVerb, Err: err != nil,
		Node: int32(node), Tid: w.tid,
		Name: callNames[c], Start: start, End: end,
		WallStart: wallStart, WallEnd: w.tr.WallNow(),
	})
}

func (w *ctxWrapper) Read(buf []byte, addr rdma.GlobalAddr) error {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	err := w.inner.Read(buf, addr)
	end := w.inner.Now()
	w.m.countOp(rdma.OpRead, len(buf))
	w.m.observe(CallRead, start, end, err)
	if w.tracing {
		w.span(CallRead, addr.Node, start, end, wall, err)
	}
	return err
}

func (w *ctxWrapper) Write(addr rdma.GlobalAddr, data []byte) error {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	err := w.inner.Write(addr, data)
	end := w.inner.Now()
	w.m.countOp(rdma.OpWrite, len(data))
	w.m.observe(CallWrite, start, end, err)
	if w.tracing {
		w.span(CallWrite, addr.Node, start, end, wall, err)
	}
	return err
}

func (w *ctxWrapper) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	prev, err := w.inner.CAS(addr, old, new)
	end := w.inner.Now()
	w.m.countOp(rdma.OpCAS, 8)
	w.m.observe(CallCAS, start, end, err)
	if w.tracing {
		w.span(CallCAS, addr.Node, start, end, wall, err)
	}
	return prev, err
}

func (w *ctxWrapper) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	prev, err := w.inner.FAA(addr, delta)
	end := w.inner.Now()
	w.m.countOp(rdma.OpFAA, 8)
	w.m.observe(CallFAA, start, end, err)
	if w.tracing {
		w.span(CallFAA, addr.Node, start, end, wall, err)
	}
	return prev, err
}

func listNode(ops []rdma.Op) rdma.NodeID {
	if len(ops) > 0 {
		return ops[0].Addr.Node
	}
	return 0
}

func (w *ctxWrapper) Batch(ops []rdma.Op) error {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	err := w.inner.Batch(ops)
	end := w.inner.Now()
	w.m.countList(ops)
	w.m.observe(CallBatch, start, end, err)
	if w.tracing {
		w.span(CallBatch, listNode(ops), start, end, wall, err)
	}
	return err
}

func (w *ctxWrapper) Post(ops []rdma.Op) error {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	err := w.inner.Post(ops)
	end := w.inner.Now()
	w.m.countList(ops)
	w.m.observe(CallPost, start, end, err)
	if w.tracing {
		w.span(CallPost, listNode(ops), start, end, wall, err)
	}
	return err
}

func (w *ctxWrapper) RPC(node rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	var wall int64
	if w.tracing {
		wall = w.tr.WallNow()
	}
	start := w.inner.Now()
	resp, err := w.inner.RPC(node, method, req)
	end := w.inner.Now()
	w.m.rpcBytes.Add(uint64(len(req) + len(resp)))
	w.m.observe(CallRPC, start, end, err)
	if w.tracing {
		w.span(CallRPC, node, start, end, wall, err)
	}
	return resp, err
}

// OrderedBatch implements rdma.OrderedBatcher by delegation, so the
// fused-commit capability survives instrumentation wrapping.
func (w *ctxWrapper) OrderedBatch() bool { return rdma.IsOrderedBatch(w.inner) }

func (w *ctxWrapper) Node() rdma.NodeID                { return w.inner.Node() }
func (w *ctxWrapper) Now() time.Duration               { return w.inner.Now() }
func (w *ctxWrapper) Sleep(d time.Duration)            { w.inner.Sleep(d) }
func (w *ctxWrapper) UseCPU(core int, d time.Duration) { w.inner.UseCPU(core, d) }
func (w *ctxWrapper) LocalMem() []byte                 { return w.inner.LocalMem() }

// Platform wraps an rdma.Platform so every process it spawns runs with
// an instrumented ctx feeding one shared FabricMetrics. It delegates
// the FaultInjector and TransportStatsSource surfaces to the inner
// fabric (both fabrics implement FaultInjector; harnesses type-assert
// through the wrapper without noticing it).
type Platform struct {
	inner rdma.Platform
	m     *FabricMetrics
	tr    atomic.Pointer[Tracer]
}

// Instrument wraps pl. Keep the concrete fabric handle for
// fabric-specific calls (Close, Addr, engine access) and hand the
// wrapper to anything that only needs rdma.Platform.
func Instrument(pl rdma.Platform, m *FabricMetrics) *Platform {
	return &Platform{inner: pl, m: m}
}

// Metrics returns the shared metrics aggregate.
func (p *Platform) Metrics() *FabricMetrics { return p.m }

// SetTracer installs a span tracer: processes spawned afterwards run
// with a traced ctx (implementing OpTracer). Call before the cluster
// spawns its processes.
func (p *Platform) SetTracer(tr *Tracer) { p.tr.Store(tr) }

// Tracer returns the installed span tracer (nil when untraced).
func (p *Platform) Tracer() *Tracer { return p.tr.Load() }

// Inner returns the wrapped fabric.
func (p *Platform) Inner() rdma.Platform { return p.inner }

func (p *Platform) AddMemNode(cfg rdma.MemNodeConfig) rdma.NodeID { return p.inner.AddMemNode(cfg) }
func (p *Platform) AddComputeNode() rdma.NodeID                   { return p.inner.AddComputeNode() }
func (p *Platform) SetHandler(node rdma.NodeID, h rdma.Handler)   { p.inner.SetHandler(node, h) }
func (p *Platform) Fail(node rdma.NodeID)                         { p.inner.Fail(node) }
func (p *Platform) Memory(node rdma.NodeID) []byte                { return p.inner.Memory(node) }
func (p *Platform) MemMutex(node rdma.NodeID) sync.Locker         { return p.inner.MemMutex(node) }

// Spawn starts fn with an instrumented (and, when a tracer is
// installed, traced) ctx.
func (p *Platform) Spawn(node rdma.NodeID, name string, fn func(rdma.Ctx)) {
	p.inner.Spawn(node, name, func(ctx rdma.Ctx) { fn(WrapCtxTraced(ctx, p.m, p.tr.Load())) })
}

// Failed implements rdma.FaultInjector by delegation (false when the
// inner fabric does not inject faults).
func (p *Platform) Failed(node rdma.NodeID) bool {
	if fi, ok := p.inner.(rdma.FaultInjector); ok {
		return fi.Failed(node)
	}
	return false
}

// SetChaos implements rdma.FaultInjector by delegation (no-op when
// the inner fabric does not inject faults).
func (p *Platform) SetChaos(node rdma.NodeID, cfg rdma.ChaosConfig) {
	if fi, ok := p.inner.(rdma.FaultInjector); ok {
		fi.SetChaos(node, cfg)
	}
}

// TransportStats implements rdma.TransportStatsSource by delegation
// (zero when the inner fabric keeps no transport counters).
func (p *Platform) TransportStats() rdma.TransportStats {
	if src, ok := p.inner.(rdma.TransportStatsSource); ok {
		return src.TransportStats()
	}
	return rdma.TransportStats{}
}

// VirtualTime implements rdma.VirtualTime by delegation (false when
// the inner fabric runs on the wall clock, so poll-based sim-core
// worker pools stay inert).
func (p *Platform) VirtualTime() bool {
	return rdma.IsVirtual(p.inner)
}

// SetWriteObserver implements rdma.WriteObserver by delegation (false
// when the inner fabric cannot report remote mutations, so callers
// fall back to treating everything as dirty).
func (p *Platform) SetWriteObserver(node rdma.NodeID, fn func(off, n uint64)) bool {
	if wo, ok := p.inner.(rdma.WriteObserver); ok {
		return wo.SetWriteObserver(node, fn)
	}
	return false
}

// LocalAdd64 implements rdma.LocalAtomics by delegation (nil when the
// inner fabric has no synchronised local word update, so callers skip
// maintaining fabric-resident counters).
func (p *Platform) LocalAdd64(node rdma.NodeID) func(off, delta uint64) {
	if la, ok := p.inner.(rdma.LocalAtomics); ok {
		return la.LocalAdd64(node)
	}
	return nil
}
