package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// SLOClass is one op type the SLO engine tracks separately.
type SLOClass uint8

// SLO op classes.
const (
	SLOGet SLOClass = iota
	SLOUpdate
	SLOInsert
	SLODelete
	NumSLOClasses
)

var sloClassNames = [NumSLOClasses]string{"get", "update", "insert", "delete"}

func (c SLOClass) String() string {
	if int(c) < len(sloClassNames) {
		return sloClassNames[c]
	}
	return "unknown"
}

// SLOTarget is the objective for one op class: requests should finish
// under P99 within the error budget — Budget is the fraction of
// requests allowed to breach the latency target or fail outright
// (e.g. 0.01 = 99% of requests in target).
type SLOTarget struct {
	P99    time.Duration
	Budget float64
}

// SLOReport is one class's windowed view: percentiles over the
// sliding window (current + previous rotation), the window's breach
// rate measured against the budget, and cumulative totals.
type SLOReport struct {
	Class     SLOClass
	Target    SLOTarget
	Count     uint64 // window requests
	Errors    uint64 // window hard failures
	Breaches  uint64 // window requests over target or failed
	P50       time.Duration
	P99       time.Duration
	P999      time.Duration
	BurnRate  float64 // breach rate / budget; >1 burns budget faster than allowed
	TotalOps  uint64
	TotalErrs uint64
	TotalBrch uint64
}

// SLOTracker keeps rolling per-class latency windows and error-budget
// accounting. Observe is safe for concurrent use (short mutex; the
// histograms themselves are single-threaded). Percentiles are
// computed over the last two rotations, so after a Rotate the view
// still spans a full window instead of starting empty.
type SLOTracker struct {
	mu       sync.Mutex
	targets  [NumSLOClasses]SLOTarget
	cur      [NumSLOClasses]*stats.Histogram
	prev     [NumSLOClasses]*stats.Histogram
	curErr   [NumSLOClasses]uint64
	curBrch  [NumSLOClasses]uint64
	prevErr  [NumSLOClasses]uint64
	prevBrch [NumSLOClasses]uint64
	totOps   [NumSLOClasses]uint64
	totErr   [NumSLOClasses]uint64
	totBrch  [NumSLOClasses]uint64

	degraded atomic.Bool
	// degradedRotations counts window rotations that ended degraded,
	// so exit summaries can report time spent in degraded mode.
	degradedRotations atomic.Uint64
	rotations         atomic.Uint64
}

// NewSLOTracker returns a tracker holding target for every class.
// Per-class targets can be tightened afterwards with SetTarget.
func NewSLOTracker(target SLOTarget) *SLOTracker {
	t := &SLOTracker{}
	for c := range t.targets {
		t.targets[c] = target
		t.cur[c] = stats.NewHistogram()
		t.prev[c] = stats.NewHistogram()
	}
	return t
}

// SetTarget overrides one class's objective.
func (t *SLOTracker) SetTarget(c SLOClass, target SLOTarget) {
	t.mu.Lock()
	t.targets[c] = target
	t.mu.Unlock()
}

// Observe records one finished request: its latency and whether it
// failed. Failed requests and requests over the latency target both
// consume error budget.
func (t *SLOTracker) Observe(c SLOClass, lat time.Duration, failed bool) {
	t.mu.Lock()
	t.cur[c].Record(lat)
	t.totOps[c]++
	if failed {
		t.curErr[c]++
		t.totErr[c]++
	}
	if failed || lat > t.targets[c].P99 {
		t.curBrch[c]++
		t.totBrch[c]++
	}
	t.mu.Unlock()
}

// Rotate closes the current window: it becomes the previous window
// and a fresh one starts. Call at the reporting interval.
func (t *SLOTracker) Rotate() {
	t.mu.Lock()
	for c := range t.cur {
		t.prev[c], t.cur[c] = t.cur[c], stats.NewHistogram()
		t.prevErr[c], t.curErr[c] = t.curErr[c], 0
		t.prevBrch[c], t.curBrch[c] = t.curBrch[c], 0
	}
	t.mu.Unlock()
	t.rotations.Add(1)
	if t.degraded.Load() {
		t.degradedRotations.Add(1)
	}
}

// SetDegraded flips the degraded-mode flag (driven by node-failure /
// chaos counter deltas in the harness or daemon).
func (t *SLOTracker) SetDegraded(on bool) { t.degraded.Store(on) }

// Degraded reports the current degraded-mode flag.
func (t *SLOTracker) Degraded() bool { return t.degraded.Load() }

// DegradedRotations returns (windows ended degraded, total windows).
func (t *SLOTracker) DegradedRotations() (uint64, uint64) {
	return t.degradedRotations.Load(), t.rotations.Load()
}

// Report summarises one class over the sliding window.
func (t *SLOTracker) Report(c SLOClass) SLOReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	merged := stats.NewHistogram()
	merged.Merge(t.prev[c])
	merged.Merge(t.cur[c])
	r := SLOReport{
		Class:     c,
		Target:    t.targets[c],
		Count:     merged.Count(),
		Errors:    t.prevErr[c] + t.curErr[c],
		Breaches:  t.prevBrch[c] + t.curBrch[c],
		P50:       merged.Percentile(0.50),
		P99:       merged.Percentile(0.99),
		P999:      merged.Percentile(0.999),
		TotalOps:  t.totOps[c],
		TotalErrs: t.totErr[c],
		TotalBrch: t.totBrch[c],
	}
	if r.Count > 0 && r.Target.Budget > 0 {
		r.BurnRate = (float64(r.Breaches) / float64(r.Count)) / r.Target.Budget
	}
	return r
}

// Reports returns every class's report (including idle classes, whose
// Count is 0).
func (t *SLOTracker) Reports() [NumSLOClasses]SLOReport {
	var out [NumSLOClasses]SLOReport
	for c := SLOClass(0); c < NumSLOClasses; c++ {
		out[c] = t.Report(c)
	}
	return out
}
