package obs

import (
	"testing"
	"time"
)

func TestSLOTrackerWindowedReport(t *testing.T) {
	tr := NewSLOTracker(SLOTarget{P99: time.Millisecond, Budget: 0.1})
	// 90 in-target, 8 over-target, 2 failed: 10/100 breaches at a 10%
	// budget → burn rate exactly 1.
	for i := 0; i < 90; i++ {
		tr.Observe(SLOGet, 100*time.Microsecond, false)
	}
	for i := 0; i < 8; i++ {
		tr.Observe(SLOGet, 5*time.Millisecond, false)
	}
	tr.Observe(SLOGet, 100*time.Microsecond, true)
	tr.Observe(SLOGet, 100*time.Microsecond, true)

	r := tr.Report(SLOGet)
	if r.Count != 100 || r.Errors != 2 || r.Breaches != 10 {
		t.Fatalf("count=%d errors=%d breaches=%d, want 100/2/10", r.Count, r.Errors, r.Breaches)
	}
	if r.BurnRate != 1.0 {
		t.Errorf("burn = %v, want 1.0", r.BurnRate)
	}
	if r.P50 < 90*time.Microsecond || r.P50 > 110*time.Microsecond {
		t.Errorf("p50 = %v, want ~100µs (bucketed)", r.P50)
	}
	if r.P99 < time.Millisecond {
		t.Errorf("p99 = %v, want over the 1ms target", r.P99)
	}

	// The sliding view spans the previous + current window: right
	// after one rotation nothing is lost, after two it has aged out.
	tr.Rotate()
	if r := tr.Report(SLOGet); r.Count != 100 {
		t.Errorf("after one rotation count = %d, want 100 (prev window still in view)", r.Count)
	}
	tr.Rotate()
	if r := tr.Report(SLOGet); r.Count != 0 {
		t.Errorf("after two rotations count = %d, want 0", r.Count)
	}
	// Cumulative totals survive rotation.
	if r := tr.Report(SLOGet); r.TotalOps != 100 || r.TotalErrs != 2 || r.TotalBrch != 10 {
		t.Errorf("totals = %d/%d/%d, want 100/2/10", r.TotalOps, r.TotalErrs, r.TotalBrch)
	}
}

func TestSLOTrackerClassesIndependent(t *testing.T) {
	tr := NewSLOTracker(SLOTarget{P99: time.Millisecond, Budget: 0.01})
	tr.SetTarget(SLOUpdate, SLOTarget{P99: time.Microsecond, Budget: 0.01})
	tr.Observe(SLOGet, 10*time.Microsecond, false)
	tr.Observe(SLOUpdate, 10*time.Microsecond, false) // over update's 1µs target
	if r := tr.Report(SLOGet); r.Breaches != 0 {
		t.Errorf("get breaches = %d", r.Breaches)
	}
	if r := tr.Report(SLOUpdate); r.Breaches != 1 {
		t.Errorf("update breaches = %d, want 1 (tightened target)", r.Breaches)
	}
	if r := tr.Report(SLOInsert); r.Count != 0 {
		t.Errorf("insert count = %d", r.Count)
	}
}

func TestSLOTrackerDegradedRotations(t *testing.T) {
	tr := NewSLOTracker(SLOTarget{P99: time.Millisecond, Budget: 0.01})
	if tr.Degraded() {
		t.Fatal("fresh tracker degraded")
	}
	tr.Rotate()
	tr.SetDegraded(true)
	if !tr.Degraded() {
		t.Fatal("flag did not flip")
	}
	tr.Rotate()
	tr.Rotate()
	tr.SetDegraded(false)
	tr.Rotate()
	deg, tot := tr.DegradedRotations()
	if deg != 2 || tot != 4 {
		t.Errorf("degraded rotations = %d/%d, want 2/4", deg, tot)
	}
}
