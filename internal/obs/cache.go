package obs

import "sync/atomic"

// CacheMetrics aggregates client index-cache activity across every
// client opened from one cluster handle, for live export (/metrics,
// admin Stats). Clients bump the counters with single atomic adds on
// their op paths; gauges (Entries, Bytes, Offloaded) are maintained
// incrementally and released when a client closes. The per-client
// breakdown stays in core.ClientStats (plain fields, read by the
// owning goroutine); this aggregate exists so a metrics scrape never
// races a running client.
type CacheMetrics struct {
	Hits          atomic.Uint64 // positive cache hits
	Misses        atomic.Uint64 // lookups that found no entry
	NegHits       atomic.Uint64 // negative entries validated (answered ErrNotFound)
	Evictions     atomic.Uint64 // CLOCK evictions
	MirrorHits    atomic.Uint64 // GETs served from the hot-bucket mirror
	MirrorNegHits atomic.Uint64 // mirror scans that proved absence
	Entries       atomic.Int64  // allocated cache entries across live clients
	Bytes         atomic.Int64  // cache + mirror resident bytes across live clients
	Offloaded     atomic.Int64  // mirrored buckets across live clients
}

// CacheSnapshot is a point-in-time copy of CacheMetrics.
type CacheSnapshot struct {
	Hits, Misses, NegHits, Evictions uint64
	MirrorHits, MirrorNegHits        uint64
	Entries, Bytes, Offloaded        int64
}

// Snapshot reads every counter once.
func (m *CacheMetrics) Snapshot() CacheSnapshot {
	if m == nil {
		return CacheSnapshot{}
	}
	return CacheSnapshot{
		Hits:          m.Hits.Load(),
		Misses:        m.Misses.Load(),
		NegHits:       m.NegHits.Load(),
		Evictions:     m.Evictions.Load(),
		MirrorHits:    m.MirrorHits.Load(),
		MirrorNegHits: m.MirrorNegHits.Load(),
		Entries:       m.Entries.Load(),
		Bytes:         m.Bytes.Load(),
		Offloaded:     m.Offloaded.Load(),
	}
}
