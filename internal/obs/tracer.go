package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies a Span on the trace timeline.
type SpanKind uint8

// Span kinds.
const (
	// SpanOp is one client operation (get/update/insert/delete); its
	// Trace id groups the child spans recorded while it was active.
	SpanOp SpanKind = iota
	// SpanVerb is one fabric verb issued inside a sampled op.
	SpanVerb
	// SpanPhase is a background phase with a duration (server-side
	// handler execution, checkpoint round, EC kernel batch).
	SpanPhase
	// SpanMark is a point or sub-phase annotation inside a sampled op
	// (lock-stripe wait, degraded read, checkpoint-observer mark).
	SpanMark
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{"op", "verb", "phase", "mark"}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// Span is one recorded interval. Name and Detail are always static
// strings (no per-span formatting), so recording never allocates.
// Start/End are fabric-clock stamps (virtual time on simnet, wall time
// since platform start on tcpnet); WallStart/WallEnd are wall-clock
// nanoseconds since the tracer was created, so simnet traces remain
// comparable with tcpnet traces and with external profiles.
type Span struct {
	Seq       uint64 // monotonic claim number (gaps reveal overwrites)
	Trace     uint64 // op-trace id; 0 for standalone phases
	Kind      SpanKind
	Err       bool
	Node      int32 // logical node the span ran against, -1 if n/a
	Tid       int32 // stable per-actor track id
	Name      string
	Detail    string
	Start     time.Duration // fabric clock
	End       time.Duration
	WallStart int64 // ns since tracer epoch
	WallEnd   int64
}

// Tracer is a sampled, allocation-free span recorder. Spans live in a
// fixed power-of-two ring; a slot is claimed with one atomic add and
// the payload is copied in under a short mutex (the mutex also makes
// Snapshot race-clean). The sampling decision itself is a single
// atomic add + mask test, so the unsampled hot path costs one
// uncontended atomic and a branch.
type Tracer struct {
	mask  uint64 // sampling: rate-1, rate a power of two
	smask uint64 // len(spans)-1
	ctr   atomic.Uint64
	seq   atomic.Uint64 // next span slot
	ops   atomic.Uint64 // next op-trace id
	tids  atomic.Int32  // next actor track id
	epoch time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer returns a tracer sampling one in rate events into a ring
// of capacity spans. Both are rounded up to powers of two; rate<=1
// means sample everything, capacity<16 is raised to 16.
func NewTracer(rate, capacity int) *Tracer {
	if rate < 1 {
		rate = 1
	}
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{
		mask:  uint64(ceilPow2(rate) - 1),
		smask: uint64(ceilPow2(capacity) - 1),
		spans: make([]Span, ceilPow2(capacity)),
		epoch: time.Now(),
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SampleRate returns the configured 1-in-N sampling rate.
func (t *Tracer) SampleRate() int { return int(t.mask) + 1 }

// Sampled advances the sampling counter and reports whether this
// event should be recorded. One atomic add; never allocates.
func (t *Tracer) Sampled() bool {
	return t.ctr.Add(1)&t.mask == 0
}

// NewTraceID claims a fresh op-trace id (never 0).
func (t *Tracer) NewTraceID() uint64 { return t.ops.Add(1) }

// NewTid claims a stable track id for one actor (a client wrapper, a
// server handler loop).
func (t *Tracer) NewTid() int32 { return t.tids.Add(1) }

// WallNow returns wall-clock nanoseconds since the tracer epoch.
func (t *Tracer) WallNow() int64 { return int64(time.Since(t.epoch)) }

// Record copies sp into the next ring slot, stamping its sequence
// number. The oldest span is overwritten once the ring is full; the
// write path never allocates.
func (t *Tracer) Record(sp Span) {
	seq := t.seq.Add(1) - 1
	sp.Seq = seq
	t.mu.Lock()
	t.spans[seq&t.smask] = sp
	t.mu.Unlock()
}

// Emitted returns the number of spans ever recorded.
func (t *Tracer) Emitted() uint64 { return t.seq.Load() }

// Dropped returns how many recorded spans have been overwritten.
func (t *Tracer) Dropped() uint64 {
	n := t.seq.Load()
	if capn := t.smask + 1; n > capn {
		return n - capn
	}
	return 0
}

// Snapshot copies out the retained spans in sequence order (oldest
// first). Spans claimed but not yet fully written appear with their
// last-written payload; consumers sort by Seq and tolerate gaps.
func (t *Tracer) Snapshot() []Span {
	n := t.seq.Load()
	capn := t.smask + 1
	lo := uint64(0)
	if n > capn {
		lo = n - capn
	}
	out := make([]Span, 0, n-lo)
	t.mu.Lock()
	for s := lo; s < n; s++ {
		sp := t.spans[s&t.smask]
		if sp.Seq == s {
			out = append(out, sp)
		}
	}
	t.mu.Unlock()
	return out
}
