package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/rdma"
)

// Exporter serves /metrics (Prometheus text exposition format,
// hand-rendered — no client library dependency) and /healthz. All
// fields are optional; nil sources are skipped.
type Exporter struct {
	// Fabric supplies verb-level counters (usually the daemon's
	// instrumented platform metrics).
	Fabric *FabricMetrics
	// Transport supplies fabric transport counters (retries,
	// reconnects, chaos injections).
	Transport func() rdma.TransportStats
	// Gauges supplies store-level gauges by metric name (without the
	// "aceso_" prefix), e.g. "ckpt_rounds_total" -> 12.
	Gauges func() map[string]float64
	// Trace supplies the trace ring for the event-count metric.
	Trace *Ring
	// Healthy reports daemon liveness for /healthz (nil means always
	// healthy).
	Healthy func() bool
}

// Handler returns the HTTP mux serving /metrics and /healthz.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/healthz", e.serveHealthz)
	return mux
}

func (e *Exporter) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	if e.Healthy != nil && !e.Healthy() {
		http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (e *Exporter) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteProm(w)
}

// WriteProm renders every metric in Prometheus text format.
func (e *Exporter) WriteProm(w io.Writer) {
	if e.Fabric != nil {
		s := e.Fabric.Snapshot()
		header(w, "aceso_verb_calls_total", "counter", "Verb-surface invocations (one doorbell each; rpc rides the two-sided channel).")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_calls_total{call=%q} %d\n", c, s.Calls[c].Count)
		}
		header(w, "aceso_verb_errors_total", "counter", "Verb-surface invocations that returned an error.")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_errors_total{call=%q} %d\n", c, s.Calls[c].Errors)
		}
		header(w, "aceso_verb_node_failed_total", "counter", "Verb-surface invocations that surfaced ErrNodeFailed.")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_node_failed_total{call=%q} %d\n", c, s.Calls[c].NodeFailed)
		}
		header(w, "aceso_ops_total", "counter", "Executed one-sided operations by kind (singletons plus batch/post entries).")
		for k := rdma.OpRead; k <= rdma.OpFAA; k++ {
			fmt.Fprintf(w, "aceso_ops_total{kind=%q} %d\n", OpKindName(k), s.Ops[k].Count)
		}
		header(w, "aceso_op_bytes_total", "counter", "Bytes moved by one-sided operations (8 per atomic).")
		for k := rdma.OpRead; k <= rdma.OpFAA; k++ {
			fmt.Fprintf(w, "aceso_op_bytes_total{kind=%q} %d\n", OpKindName(k), s.Ops[k].Bytes)
		}
		header(w, "aceso_doorbells_total", "counter", "Doorbells posted (one per verb-surface call).")
		fmt.Fprintf(w, "aceso_doorbells_total %d\n", s.Doorbells())
		header(w, "aceso_rpc_bytes_total", "counter", "Request plus response bytes over the two-sided RPC channel.")
		fmt.Fprintf(w, "aceso_rpc_bytes_total %d\n", s.RPCBytes)
		header(w, "aceso_verb_latency_seconds", "gauge", "Verb latency summary by call kind and statistic.")
		for c := CallRead; c < NumCalls; c++ {
			l := e.Fabric.Latency(c)
			if l.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"mean\"} %g\n", c, l.Mean.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"p50\"} %g\n", c, l.P50.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"p99\"} %g\n", c, l.P99.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"max\"} %g\n", c, l.Max.Seconds())
		}
	}
	if e.Transport != nil {
		t := e.Transport()
		header(w, "aceso_transport_dials_total", "counter", "TCP connections established (first dials and reconnects).")
		fmt.Fprintf(w, "aceso_transport_dials_total %d\n", t.Dials)
		header(w, "aceso_transport_redials_total", "counter", "Reconnects of a previously working connection.")
		fmt.Fprintf(w, "aceso_transport_redials_total %d\n", t.Redials)
		header(w, "aceso_transport_retries_total", "counter", "Verb/RPC attempts repeated after a transport fault.")
		fmt.Fprintf(w, "aceso_transport_retries_total %d\n", t.Retries)
		header(w, "aceso_transport_node_failures_total", "counter", "Operations that exhausted the retry budget or hit a failed node.")
		fmt.Fprintf(w, "aceso_transport_node_failures_total %d\n", t.NodeFailures)
		header(w, "aceso_chaos_injections_total", "counter", "Chaos faults injected on nodes this process serves.")
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"drop\"} %d\n", t.ChaosDrops)
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"delay\"} %d\n", t.ChaosDelays)
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"reset\"} %d\n", t.ChaosResets)
		header(w, "aceso_transport_open_conns", "gauge", "Open fabric connections (striped client conns plus accepted server conns).")
		fmt.Fprintf(w, "aceso_transport_open_conns %d\n", t.OpenConns)
		nodes := make([]rdma.NodeID, 0, len(t.OpenConnsByNode))
		for n := range t.OpenConnsByNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			fmt.Fprintf(w, "aceso_transport_open_conns{node=\"%d\"} %d\n", n, t.OpenConnsByNode[n])
		}
		header(w, "aceso_transport_pool_ops_total", "counter", "Frame buffer pool traffic: gets, puts and pool misses that allocated.")
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"get\"} %d\n", t.PoolGets)
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"put\"} %d\n", t.PoolPuts)
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"alloc\"} %d\n", t.PoolAllocs)
	}
	if e.Gauges != nil {
		g := e.Gauges()
		names := make([]string, 0, len(g))
		for name := range g {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			header(w, "aceso_"+name, "gauge", "Store-level gauge.")
			fmt.Fprintf(w, "aceso_%s %g\n", name, g[name])
		}
	}
	if e.Trace != nil {
		header(w, "aceso_trace_events_total", "counter", "Trace events emitted to the ring buffer.")
		fmt.Fprintf(w, "aceso_trace_events_total %d\n", e.Trace.Total())
	}
}

func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}
