package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/rdma"
)

// processStart anchors aceso_process_start_time_seconds so dashboards
// can compute uptime and correlate restarts with SLO burn.
var processStart = time.Now()

// Exporter serves /metrics (Prometheus text exposition format,
// hand-rendered — no client library dependency), /healthz (liveness),
// /readyz (readiness), /debug/optrace (Chrome trace_event JSON) and,
// when enabled, the net/http/pprof profile handlers. All fields are
// optional; nil sources are skipped.
type Exporter struct {
	// Fabric supplies verb-level counters (usually the daemon's
	// instrumented platform metrics).
	Fabric *FabricMetrics
	// Transport supplies fabric transport counters (retries,
	// reconnects, chaos injections).
	Transport func() rdma.TransportStats
	// Gauges supplies store-level gauges by metric name (without the
	// "aceso_" prefix), e.g. "ckpt_rounds_total" -> 12.
	Gauges func() map[string]float64
	// Trace supplies the trace ring for the event-count metric and
	// the instant events of /debug/optrace.
	Trace *Ring
	// Tracer supplies op spans for /debug/optrace and the span
	// counters in /metrics.
	Tracer *Tracer
	// SLO supplies the windowed SLO engine for the aceso_slo_*
	// families.
	SLO *SLOTracker
	// Cache supplies the client index-cache aggregate for the
	// aceso_cache_* family (nil when this process runs no clients).
	Cache *CacheMetrics
	// Write supplies the client write-path aggregate for the
	// aceso_write_*, aceso_block_prefetch_* and aceso_delta_skips
	// families (nil when this process runs no clients).
	Write *WriteMetrics
	// Healthy reports daemon liveness for /healthz (nil means always
	// healthy).
	Healthy func() bool
	// Ready reports readiness for /readyz: the daemon should only
	// receive traffic once recovery/resync has completed and the
	// cluster view is current. Nil means ready whenever healthy.
	Ready func() bool
	// Version and FabricName label the aceso_build_info gauge.
	Version    string
	FabricName string
	// FTMode, when set, emits the aceso_ftmode_info gauge labelling
	// which fault-tolerance mode this process runs.
	FTMode string
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ (cpu, heap, mutex, block, ...).
	EnablePprof bool
}

// Handler returns the HTTP mux serving the exporter's endpoints.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.serveMetrics)
	mux.HandleFunc("/healthz", e.serveHealthz)
	mux.HandleFunc("/readyz", e.serveReadyz)
	mux.HandleFunc("/debug/optrace", e.serveOptrace)
	if e.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (e *Exporter) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	if e.Healthy != nil && !e.Healthy() {
		http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (e *Exporter) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	if e.Healthy != nil && !e.Healthy() {
		http.Error(w, "unhealthy", http.StatusServiceUnavailable)
		return
	}
	if e.Ready != nil && !e.Ready() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// serveOptrace dumps the retained op spans plus ring events as Chrome
// trace_event JSON. ?n= bounds the span count (newest kept).
func (e *Exporter) serveOptrace(w http.ResponseWriter, r *http.Request) {
	var spans []Span
	if e.Tracer != nil {
		spans = e.Tracer.Snapshot()
	}
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
			spans = spans[len(spans)-n:]
		}
	}
	var events []Event
	if e.Trace != nil {
		events = e.Trace.Events()
	}
	w.Header().Set("Content-Type", "application/json")
	WriteChromeTrace(w, spans, events)
}

func (e *Exporter) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteProm(w)
}

// WriteProm renders every metric in Prometheus text format.
func (e *Exporter) WriteProm(w io.Writer) {
	header(w, "aceso_build_info", "gauge", "Build metadata; always 1.")
	fmt.Fprintf(w, "aceso_build_info{version=%q,go_version=%q,fabric=%q} 1\n",
		orDev(e.Version), runtime.Version(), orUnknown(e.FabricName))
	if e.FTMode != "" {
		header(w, "aceso_ftmode_info", "gauge", "Fault-tolerance mode this process runs; always 1.")
		fmt.Fprintf(w, "aceso_ftmode_info{mode=%q} 1\n", e.FTMode)
	}
	header(w, "aceso_process_start_time_seconds", "gauge", "Unix time the process started.")
	fmt.Fprintf(w, "aceso_process_start_time_seconds %.3f\n", float64(processStart.UnixNano())/1e9)
	if e.Fabric != nil {
		s := e.Fabric.Snapshot()
		header(w, "aceso_verb_calls_total", "counter", "Verb-surface invocations (one doorbell each; rpc rides the two-sided channel).")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_calls_total{call=%q} %d\n", c, s.Calls[c].Count)
		}
		header(w, "aceso_verb_errors_total", "counter", "Verb-surface invocations that returned an error.")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_errors_total{call=%q} %d\n", c, s.Calls[c].Errors)
		}
		header(w, "aceso_verb_node_failed_total", "counter", "Verb-surface invocations that surfaced ErrNodeFailed.")
		for c := CallRead; c < NumCalls; c++ {
			fmt.Fprintf(w, "aceso_verb_node_failed_total{call=%q} %d\n", c, s.Calls[c].NodeFailed)
		}
		header(w, "aceso_ops_total", "counter", "Executed one-sided operations by kind (singletons plus batch/post entries).")
		for k := rdma.OpRead; k <= rdma.OpFAA; k++ {
			fmt.Fprintf(w, "aceso_ops_total{kind=%q} %d\n", OpKindName(k), s.Ops[k].Count)
		}
		header(w, "aceso_op_bytes_total", "counter", "Bytes moved by one-sided operations (8 per atomic).")
		for k := rdma.OpRead; k <= rdma.OpFAA; k++ {
			fmt.Fprintf(w, "aceso_op_bytes_total{kind=%q} %d\n", OpKindName(k), s.Ops[k].Bytes)
		}
		header(w, "aceso_doorbells_total", "counter", "Doorbells posted (one per verb-surface call).")
		fmt.Fprintf(w, "aceso_doorbells_total %d\n", s.Doorbells())
		header(w, "aceso_rpc_bytes_total", "counter", "Request plus response bytes over the two-sided RPC channel.")
		fmt.Fprintf(w, "aceso_rpc_bytes_total %d\n", s.RPCBytes)
		header(w, "aceso_verb_latency_seconds", "gauge", "Verb latency summary by call kind and statistic.")
		for c := CallRead; c < NumCalls; c++ {
			l := e.Fabric.Latency(c)
			if l.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"mean\"} %g\n", c, l.Mean.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"p50\"} %g\n", c, l.P50.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"p99\"} %g\n", c, l.P99.Seconds())
			fmt.Fprintf(w, "aceso_verb_latency_seconds{call=%q,stat=\"max\"} %g\n", c, l.Max.Seconds())
		}
	}
	if e.Transport != nil {
		t := e.Transport()
		header(w, "aceso_transport_dials_total", "counter", "TCP connections established (first dials and reconnects).")
		fmt.Fprintf(w, "aceso_transport_dials_total %d\n", t.Dials)
		header(w, "aceso_transport_redials_total", "counter", "Reconnects of a previously working connection.")
		fmt.Fprintf(w, "aceso_transport_redials_total %d\n", t.Redials)
		header(w, "aceso_transport_retries_total", "counter", "Verb/RPC attempts repeated after a transport fault.")
		fmt.Fprintf(w, "aceso_transport_retries_total %d\n", t.Retries)
		header(w, "aceso_transport_node_failures_total", "counter", "Operations that exhausted the retry budget or hit a failed node.")
		fmt.Fprintf(w, "aceso_transport_node_failures_total %d\n", t.NodeFailures)
		header(w, "aceso_chaos_injections_total", "counter", "Chaos faults injected on nodes this process serves.")
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"drop\"} %d\n", t.ChaosDrops)
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"delay\"} %d\n", t.ChaosDelays)
		fmt.Fprintf(w, "aceso_chaos_injections_total{fault=\"reset\"} %d\n", t.ChaosResets)
		header(w, "aceso_transport_open_conns", "gauge", "Open fabric connections (striped client conns plus accepted server conns).")
		fmt.Fprintf(w, "aceso_transport_open_conns %d\n", t.OpenConns)
		nodes := make([]rdma.NodeID, 0, len(t.OpenConnsByNode))
		for n := range t.OpenConnsByNode {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			fmt.Fprintf(w, "aceso_transport_open_conns{node=\"%d\"} %d\n", n, t.OpenConnsByNode[n])
		}
		header(w, "aceso_transport_pool_ops_total", "counter", "Frame buffer pool traffic: gets, puts and pool misses that allocated.")
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"get\"} %d\n", t.PoolGets)
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"put\"} %d\n", t.PoolPuts)
		fmt.Fprintf(w, "aceso_transport_pool_ops_total{op=\"alloc\"} %d\n", t.PoolAllocs)
	}
	if e.Gauges != nil {
		g := e.Gauges()
		names := make([]string, 0, len(g))
		for name := range g {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			header(w, "aceso_"+name, "gauge", "Store-level gauge.")
			fmt.Fprintf(w, "aceso_%s %g\n", name, g[name])
		}
	}
	if e.Cache != nil {
		s := e.Cache.Snapshot()
		header(w, "aceso_cache_hits_total", "counter", "Client index-cache lookups served from a positive entry.")
		fmt.Fprintf(w, "aceso_cache_hits_total %d\n", s.Hits)
		header(w, "aceso_cache_misses_total", "counter", "Client index-cache lookups that found no entry.")
		fmt.Fprintf(w, "aceso_cache_misses_total %d\n", s.Misses)
		header(w, "aceso_cache_negative_hits_total", "counter", "GET misses answered by a validated negative entry.")
		fmt.Fprintf(w, "aceso_cache_negative_hits_total %d\n", s.NegHits)
		header(w, "aceso_cache_evictions_total", "counter", "Entries evicted by the CLOCK hand.")
		fmt.Fprintf(w, "aceso_cache_evictions_total %d\n", s.Evictions)
		header(w, "aceso_cache_mirror_hits_total", "counter", "GETs served from CN-resident hot-bucket mirrors.")
		fmt.Fprintf(w, "aceso_cache_mirror_hits_total %d\n", s.MirrorHits)
		header(w, "aceso_cache_mirror_negative_hits_total", "counter", "Absences proven by a mirror scan plus version check.")
		fmt.Fprintf(w, "aceso_cache_mirror_negative_hits_total %d\n", s.MirrorNegHits)
		header(w, "aceso_cache_entries", "gauge", "Allocated cache entries across this process's live clients.")
		fmt.Fprintf(w, "aceso_cache_entries %d\n", s.Entries)
		header(w, "aceso_cache_bytes", "gauge", "Resident cache plus mirror bytes across this process's live clients.")
		fmt.Fprintf(w, "aceso_cache_bytes %d\n", s.Bytes)
		header(w, "aceso_cache_offloaded_buckets", "gauge", "Index buckets mirrored CN-side across this process's live clients.")
		fmt.Fprintf(w, "aceso_cache_offloaded_buckets %d\n", s.Offloaded)
	}
	if e.Write != nil {
		s := e.Write.Snapshot()
		header(w, "aceso_write_fused_total", "counter", "Commits fused into the placement doorbell batch (single-RTT writes).")
		fmt.Fprintf(w, "aceso_write_fused_total %d\n", s.Fused)
		header(w, "aceso_write_fallback_total", "counter", "Two-phase commit attempts by fallback reason.")
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"disabled\"} %d\n", s.FallbackDisabled)
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"capability\"} %d\n", s.FallbackCapability)
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"insert\"} %d\n", s.FallbackInsert)
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"locked\"} %d\n", s.FallbackLocked)
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"rollover\"} %d\n", s.FallbackRollover)
		fmt.Fprintf(w, "aceso_write_fallback_total{reason=\"addr\"} %d\n", s.FallbackAddr)
		header(w, "aceso_block_prefetch_hits_total", "counter", "Block refills served by the background prefetch worker.")
		fmt.Fprintf(w, "aceso_block_prefetch_hits_total %d\n", s.PrefetchHits)
		header(w, "aceso_block_prefetch_misses_total", "counter", "Block refills that fell back to a synchronous allocation.")
		fmt.Fprintf(w, "aceso_block_prefetch_misses_total %d\n", s.PrefetchMisses)
		header(w, "aceso_delta_skips_total", "counter", "Delta copies skipped during placement (dead target or lost write).")
		fmt.Fprintf(w, "aceso_delta_skips_total %d\n", s.DeltaSkips)
	}
	if e.Trace != nil {
		header(w, "aceso_trace_events_total", "counter", "Trace events emitted to the ring buffer.")
		fmt.Fprintf(w, "aceso_trace_events_total %d\n", e.Trace.Total())
		header(w, "aceso_trace_dropped_total", "counter", "Trace events overwritten by the bounded ring before being read.")
		fmt.Fprintf(w, "aceso_trace_dropped_total %d\n", e.Trace.Dropped())
	}
	if e.Tracer != nil {
		header(w, "aceso_trace_spans_total", "counter", "Op/verb/phase spans recorded by the sampled tracer.")
		fmt.Fprintf(w, "aceso_trace_spans_total %d\n", e.Tracer.Emitted())
		header(w, "aceso_trace_spans_dropped_total", "counter", "Recorded spans overwritten by the bounded span ring.")
		fmt.Fprintf(w, "aceso_trace_spans_dropped_total %d\n", e.Tracer.Dropped())
		header(w, "aceso_trace_sample_rate", "gauge", "Configured 1-in-N op sampling rate.")
		fmt.Fprintf(w, "aceso_trace_sample_rate %d\n", e.Tracer.SampleRate())
	}
	if e.SLO != nil {
		header(w, "aceso_slo_requests_total", "counter", "Requests observed by the SLO engine by op class.")
		reps := e.SLO.Reports()
		for c := range reps {
			fmt.Fprintf(w, "aceso_slo_requests_total{op=%q} %d\n", reps[c].Class, reps[c].TotalOps)
		}
		header(w, "aceso_slo_errors_total", "counter", "Failed requests by op class.")
		for c := range reps {
			fmt.Fprintf(w, "aceso_slo_errors_total{op=%q} %d\n", reps[c].Class, reps[c].TotalErrs)
		}
		header(w, "aceso_slo_breaches_total", "counter", "Requests over the latency target or failed, by op class.")
		for c := range reps {
			fmt.Fprintf(w, "aceso_slo_breaches_total{op=%q} %d\n", reps[c].Class, reps[c].TotalBrch)
		}
		header(w, "aceso_slo_latency_seconds", "gauge", "Windowed latency quantiles by op class.")
		for c := range reps {
			r := &reps[c]
			if r.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "aceso_slo_latency_seconds{op=%q,quantile=\"0.5\"} %g\n", r.Class, r.P50.Seconds())
			fmt.Fprintf(w, "aceso_slo_latency_seconds{op=%q,quantile=\"0.99\"} %g\n", r.Class, r.P99.Seconds())
			fmt.Fprintf(w, "aceso_slo_latency_seconds{op=%q,quantile=\"0.999\"} %g\n", r.Class, r.P999.Seconds())
		}
		header(w, "aceso_slo_error_budget_burn", "gauge", "Windowed breach rate over the allowed budget (>1 = burning too fast).")
		for c := range reps {
			if reps[c].Count == 0 {
				continue
			}
			fmt.Fprintf(w, "aceso_slo_error_budget_burn{op=%q} %g\n", reps[c].Class, reps[c].BurnRate)
		}
		header(w, "aceso_slo_degraded", "gauge", "1 while the cluster is in degraded mode (node failure / chaos active).")
		d := 0
		if e.SLO.Degraded() {
			d = 1
		}
		fmt.Fprintf(w, "aceso_slo_degraded %d\n", d)
	}
}

func orDev(s string) string {
	if s == "" {
		return "dev"
	}
	return s
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func header(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}
