package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// histShards trades merge cost against Record contention. Eight shards
// keep the hot path to one uncontended mutex for typical client counts
// while a Snapshot still merges in microseconds.
const histShards = 8

// LockedHistogram is a sharded, mutex-guarded wrapper around
// stats.Histogram, safe for concurrent Record calls from many client
// processes. stats.Histogram itself is deliberately unsynchronised
// (single-threaded measurement loops pay nothing); this wrapper is the
// concurrent entry point the observability layer uses.
//
// The zero value is ready to use.
type LockedHistogram struct {
	shards [histShards]histShard
	next   atomic.Uint32
}

type histShard struct {
	mu sync.Mutex
	h  *stats.Histogram
	_  [4]uint64 // pad to reduce false sharing between shards
}

// Record adds one sample. Shards are picked round-robin so no single
// mutex serialises all recorders.
func (l *LockedHistogram) Record(d time.Duration) {
	s := &l.shards[l.next.Add(1)%histShards]
	s.mu.Lock()
	if s.h == nil {
		s.h = stats.NewHistogram()
	}
	s.h.Record(d)
	s.mu.Unlock()
}

// Snapshot merges all shards into a freshly allocated, unsynchronised
// stats.Histogram the caller owns.
func (l *LockedHistogram) Snapshot() *stats.Histogram {
	out := stats.NewHistogram()
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		if s.h != nil {
			out.Merge(s.h)
		}
		s.mu.Unlock()
	}
	return out
}
