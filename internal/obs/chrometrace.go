package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteChromeTrace renders spans and ring events as Chrome
// trace_event JSON (the format Perfetto and chrome://tracing load).
// The primary timeline (ts/dur) uses the fabric clock so simnet
// traces show virtual time; wall-clock stamps ride along in args.
//
// Mapping: each span becomes a "X" (complete) event with pid = the
// logical node it ran against (clients use pid 0) and tid = the
// recording actor's track, so Perfetto nests an op's verb children
// under the op by time containment on the same track. Ring events
// with a duration become "X" phases on the owning MN's track 0;
// point events (chaos injections, failure detection, recovery tier
// boundaries) become global "i" instants.
func WriteChromeTrace(w io.Writer, spans []Span, events []Event) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			io.WriteString(w, ",")
		}
		first = false
	}
	for i := range sorted {
		sp := &sorted[i]
		pid := int32(0)
		if sp.Kind == SpanPhase && sp.Node >= 0 {
			pid = sp.Node
		}
		dur := sp.End - sp.Start
		if dur < 0 {
			dur = 0
		}
		sep()
		fmt.Fprintf(w, "{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{",
			sp.Name, sp.Kind, usec(sp.Start), usec(dur), pid, sp.Tid)
		fmt.Fprintf(w, "\"seq\":%d,\"trace\":%d,\"node\":%d,\"wall_start_ns\":%d,\"wall_end_ns\":%d",
			sp.Seq, sp.Trace, sp.Node, sp.WallStart, sp.WallEnd)
		if sp.Detail != "" {
			fmt.Fprintf(w, ",\"detail\":%q", sp.Detail)
		}
		if sp.Err {
			io.WriteString(w, ",\"error\":true")
		}
		io.WriteString(w, "}}")
	}
	for i := range events {
		e := &events[i]
		pid := int32(0)
		if e.MN >= 0 {
			pid = int32(e.MN)
		}
		sep()
		if e.Dur > 0 {
			fmt.Fprintf(w, "{\"name\":%q,\"cat\":\"ring\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"seq\":%d,\"mn\":%d,\"note\":%q}}",
				e.Kind, usec(e.At-e.Dur), usec(e.Dur), pid, e.Seq, e.MN, e.Note)
		} else {
			fmt.Fprintf(w, "{\"name\":%q,\"cat\":\"ring\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"args\":{\"seq\":%d,\"mn\":%d,\"note\":%q}}",
				e.Kind, usec(e.At), pid, e.Seq, e.MN, e.Note)
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// usec renders a fabric duration as trace_event microseconds with
// nanosecond precision (trace_event ts/dur are float microseconds).
func usec(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	return fmt.Sprintf("%d.%03d", d/time.Microsecond, d%time.Microsecond)
}
