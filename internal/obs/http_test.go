package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsBuildInfoAndSLOFamilies(t *testing.T) {
	tr := NewTracer(64, 64)
	tr.Record(Span{Kind: SpanOp, Name: "get"})
	ring := NewRing(8)
	ring.Emit(Event{Kind: "fail.detect", MN: 1})
	slo := NewSLOTracker(SLOTarget{P99: time.Millisecond, Budget: 0.01})
	slo.Observe(SLOGet, 100*time.Microsecond, false)
	slo.Observe(SLOUpdate, 5*time.Millisecond, true)
	slo.SetDegraded(true)
	e := &Exporter{
		Trace:      ring,
		Tracer:     tr,
		SLO:        slo,
		Version:    "v1.2.3",
		FabricName: "tcpnet",
		FTMode:     "aceso",
	}
	var sb strings.Builder
	e.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		`aceso_build_info{version="v1.2.3",go_version="go`,
		`,fabric="tcpnet"} 1`,
		"aceso_process_start_time_seconds ",
		"aceso_trace_events_total 1",
		"aceso_trace_dropped_total 0",
		"aceso_trace_spans_total 1",
		"aceso_trace_spans_dropped_total 0",
		"aceso_trace_sample_rate 64",
		`aceso_slo_requests_total{op="get"} 1`,
		`aceso_slo_requests_total{op="update"} 1`,
		`aceso_slo_errors_total{op="update"} 1`,
		`aceso_slo_breaches_total{op="update"} 1`,
		`aceso_slo_latency_seconds{op="get",quantile="0.5"} 0.0001`,
		`aceso_slo_error_budget_burn{op="update"} 100`,
		"aceso_slo_degraded 1",
		"# TYPE aceso_slo_latency_seconds gauge",
		`aceso_ftmode_info{mode="aceso"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Idle classes export no latency quantiles (Count == 0).
	if strings.Contains(out, `aceso_slo_latency_seconds{op="delete"`) {
		t.Error("idle class exported latency quantiles")
	}
	// Build info defaults when unset.
	var sb2 strings.Builder
	(&Exporter{}).WriteProm(&sb2)
	if !strings.Contains(sb2.String(), `aceso_build_info{version="dev",`) ||
		!strings.Contains(sb2.String(), `,fabric="unknown"} 1`) {
		t.Errorf("default build info wrong:\n%s", sb2.String())
	}
	// An unset FTMode emits no ftmode_info gauge.
	if strings.Contains(sb2.String(), "aceso_ftmode_info") {
		t.Error("ftmode_info emitted with FTMode unset")
	}
}

// chromeEvent is the subset of the trace_event schema Perfetto
// requires; the optrace test validates every emitted event against it.
type chromeEvent struct {
	Name  string          `json:"name"`
	Cat   string          `json:"cat"`
	Ph    string          `json:"ph"`
	Ts    *float64        `json:"ts"`
	Dur   *float64        `json:"dur"`
	Pid   *int            `json:"pid"`
	Tid   *int            `json:"tid"`
	Scope string          `json:"s"`
	Args  json.RawMessage `json:"args"`
}

// validatePerfetto checks the invariants the Perfetto trace processor
// enforces on JSON traces: every event has a name, a known phase, a
// non-negative ts, and pid/tid; complete events carry a dur; instants
// carry a scope.
func validatePerfetto(t *testing.T, body []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, body)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Errorf("event %d has phase %q, want X or i", i, ev.Ph)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			t.Errorf("event %d has bad ts", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			t.Errorf("event %d missing pid/tid", i)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			t.Errorf("complete event %d missing dur", i)
		}
		if ev.Ph == "i" && ev.Scope == "" {
			t.Errorf("instant event %d missing scope", i)
		}
	}
	return doc.TraceEvents
}

func TestOptraceServesPerfettoJSON(t *testing.T) {
	tr := NewTracer(1, 64)
	trace := tr.NewTraceID()
	tr.Record(Span{Trace: trace, Kind: SpanVerb, Name: "read", Node: 2, Tid: 1,
		Start: 10 * time.Microsecond, End: 25 * time.Microsecond})
	tr.Record(Span{Trace: trace, Kind: SpanOp, Name: "get", Node: -1, Tid: 1,
		Start: 5 * time.Microsecond, End: 40 * time.Microsecond})
	tr.Record(Span{Kind: SpanPhase, Name: "rpc.admin_stats", Node: 3, Tid: 2,
		Start: time.Microsecond, End: 2 * time.Microsecond})
	ring := NewRing(8)
	ring.Emit(Event{At: 30 * time.Microsecond, Kind: "fail.inject", MN: 1, Note: "admin kill"})
	ring.Emit(Event{At: 90 * time.Microsecond, Dur: 60 * time.Microsecond, Kind: "ckpt.round", MN: 0, Note: "differential round"})

	e := &Exporter{Tracer: tr, Trace: ring}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/optrace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	evs := validatePerfetto(t, body)
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5:\n%s", len(evs), body)
	}
	byName := map[string]chromeEvent{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	if op, ok := byName["get"]; !ok || op.Ph != "X" || *op.Pid != 0 {
		t.Errorf("op span wrong: %+v", byName["get"])
	}
	if ph, ok := byName["rpc.admin_stats"]; !ok || *ph.Pid != 3 {
		t.Errorf("handler span should carry its node as pid: %+v", byName["rpc.admin_stats"])
	}
	if inst, ok := byName["fail.inject"]; !ok || inst.Ph != "i" || inst.Scope != "g" {
		t.Errorf("instant event wrong: %+v", byName["fail.inject"])
	}
	ck, ok := byName["ckpt.round"]
	if !ok || ck.Ph != "X" {
		t.Fatalf("durational ring event should render as a complete event: %+v", ck)
	}
	if *ck.Ts != 30.0 || *ck.Dur != 60.0 {
		t.Errorf("ckpt.round ts=%v dur=%v, want ts=30 dur=60 (ts = At-Dur)", *ck.Ts, *ck.Dur)
	}

	// ?n= keeps only the newest n spans; ring events always ride along.
	resp2, err := srv.Client().Get(srv.URL + "/debug/optrace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	evs2 := validatePerfetto(t, body2)
	if len(evs2) != 3 {
		t.Errorf("n=1 got %d events, want 3 (1 span + 2 ring events)", len(evs2))
	}
}

func TestReadyzFlipsUnderRecovery(t *testing.T) {
	ready := false
	e := &Exporter{Ready: func() bool { return ready }}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	get := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Liveness is independent of readiness: a recovering daemon is
	// alive but must not receive traffic.
	if got := get("/healthz"); got != 200 {
		t.Errorf("healthz = %d during recovery, want 200", got)
	}
	if got := get("/readyz"); got != 503 {
		t.Errorf("readyz = %d during recovery, want 503", got)
	}
	ready = true
	if got := get("/readyz"); got != 200 {
		t.Errorf("readyz = %d after recovery, want 200", got)
	}

	healthy := false
	e2 := &Exporter{Healthy: func() bool { return healthy }}
	srv2 := httptest.NewServer(e2.Handler())
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("unhealthy readyz = %d, want 503", resp.StatusCode)
	}
}

func TestPprofGated(t *testing.T) {
	off := httptest.NewServer((&Exporter{}).Handler())
	defer off.Close()
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("pprof served without -pprof: %d", resp.StatusCode)
	}
	on := httptest.NewServer((&Exporter{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index = %d with -pprof, want 200", resp.StatusCode)
	}
}
