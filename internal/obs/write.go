package obs

import "sync/atomic"

// WriteMetrics aggregates write-path activity across every client
// opened from one cluster handle, for live export (/metrics, admin
// Stats): fused single-RTT commits, two-phase fallbacks by reason,
// background block-prefetch effectiveness and skipped delta copies.
// Clients bump the counters with single atomic adds on their op paths;
// the per-client breakdown stays in core.ClientStats (plain fields,
// read by the owning goroutine). This aggregate exists so a metrics
// scrape never races a running client — the same split as
// CacheMetrics.
type WriteMetrics struct {
	Fused              atomic.Uint64 // commits fused into the placement batch (1 RTT)
	FallbackDisabled   atomic.Uint64 // Config.FusedCommit off
	FallbackCapability atomic.Uint64 // fabric lacks rdma.OrderedBatcher
	FallbackInsert     atomic.Uint64 // inserting into an unknown slot
	FallbackLocked     atomic.Uint64 // Meta lock held (force-relock path)
	FallbackRollover   atomic.Uint64 // epoch rollover took the Meta lock
	FallbackAddr       atomic.Uint64 // slot address unresolvable (MN down)
	PrefetchHits       atomic.Uint64 // block refills served by the prefetcher
	PrefetchMisses     atomic.Uint64 // refills that fell back to a synchronous alloc
	DeltaSkips         atomic.Uint64 // delta copies not written (dead target or lost write)
}

// WriteSnapshot is a point-in-time copy of WriteMetrics.
type WriteSnapshot struct {
	Fused                                uint64
	FallbackDisabled, FallbackCapability uint64
	FallbackInsert, FallbackLocked       uint64
	FallbackRollover, FallbackAddr       uint64
	PrefetchHits, PrefetchMisses         uint64
	DeltaSkips                           uint64
}

// Fallbacks returns the total two-phase commits across all reasons.
func (s WriteSnapshot) Fallbacks() uint64 {
	return s.FallbackDisabled + s.FallbackCapability + s.FallbackInsert +
		s.FallbackLocked + s.FallbackRollover + s.FallbackAddr
}

// Snapshot reads every counter once.
func (m *WriteMetrics) Snapshot() WriteSnapshot {
	if m == nil {
		return WriteSnapshot{}
	}
	return WriteSnapshot{
		Fused:              m.Fused.Load(),
		FallbackDisabled:   m.FallbackDisabled.Load(),
		FallbackCapability: m.FallbackCapability.Load(),
		FallbackInsert:     m.FallbackInsert.Load(),
		FallbackLocked:     m.FallbackLocked.Load(),
		FallbackRollover:   m.FallbackRollover.Load(),
		FallbackAddr:       m.FallbackAddr.Load(),
		PrefetchHits:       m.PrefetchHits.Load(),
		PrefetchMisses:     m.PrefetchMisses.Load(),
		DeltaSkips:         m.DeltaSkips.Load(),
	}
}
