package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one structured trace record: a point or phase on the
// cluster's timeline, stamped with the fabric clock (virtual time on
// simnet, wall time since process start on tcpnet).
type Event struct {
	// At is the fabric timestamp of the event (phase end for events
	// with a duration).
	At time.Duration
	// Kind names the event, dot-scoped by subsystem: "fail.inject",
	// "chaos.install", "ckpt.round", "recovery.meta",
	// "recovery.index", "recovery.blocks", "recovery.done".
	Kind string
	// MN is the logical memory-node id the event concerns, -1 when it
	// is cluster-wide.
	MN int
	// Dur is the phase duration for phase events, 0 for point events.
	Dur time.Duration
	// Note carries free-form detail (byte counts, epoch numbers).
	Note string
	// Seq is the ring-assigned monotonic sequence number: the first
	// event ever emitted is 0. A gap between consecutive retained
	// events means the bounded ring overwrote records in between, so
	// consumers can detect loss mid-incident.
	Seq uint64
}

func (e Event) String() string {
	s := fmt.Sprintf("%12v  %-20s", e.At, e.Kind)
	if e.MN >= 0 {
		s += fmt.Sprintf(" mn%d", e.MN)
	}
	if e.Dur > 0 {
		s += fmt.Sprintf(" took=%v", e.Dur)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Ring is a bounded, mutex-guarded trace buffer: the newest capacity
// events are kept, older ones are overwritten. Emit is cheap enough to
// call from recovery and checkpoint paths; readers copy out.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
}

// NewRing returns a ring holding the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit appends an event, stamping its monotonic sequence number and
// overwriting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	e.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever emitted (retained or not).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns the number of events the bounded ring has
// overwritten (ever emitted minus retained).
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}
