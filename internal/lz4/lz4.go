// Package lz4 implements the LZ4 block format (compression and
// decompression) from scratch using only the standard library.
//
// Aceso compresses the XOR delta between consecutive index checkpoints
// with LZ4 before shipping it to the neighbouring memory node (§3.2.1
// of the paper). Index deltas are dominated by zero runs (only slots
// touched since the last checkpoint differ), which LZ4 collapses very
// effectively; Figure 19 of the paper (a 2 GB index compressing to a
// 27 MB delta) is reproduced with this codec.
//
// The output is the standard LZ4 block format: a sequence of
// [token | literal-length extension | literals | 16-bit offset |
// match-length extension] records, minimum match length 4, and an
// end-of-block rule requiring the final sequence to be literals only.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by Decompress.
var (
	// ErrCorrupt reports malformed compressed data.
	ErrCorrupt = errors.New("lz4: corrupt compressed data")
	// ErrDstTooSmall reports that the destination buffer cannot hold
	// the decompressed output.
	ErrDstTooSmall = errors.New("lz4: destination too small")
)

const (
	minMatch = 4
	// The last match must start at least this many bytes before the
	// end of the block, per the format's parsing restrictions.
	mfLimit = 12
	// 8K hash entries keep the 32 KB match table small enough to live
	// on the compressor's stack frame: Compress must not heap-allocate,
	// because the checkpoint pipeline calls it on every segment of
	// every round and guarantees allocation-free steady state.
	hashLog    = 13
	hashShift  = 64 - hashLog
	hashPrime  = 889523592379 // large prime for 5-byte hashing, per reference impl
	maxOffset  = 65535
	lastLitMin = 5
)

// CompressBound returns the maximum compressed size for an input of n
// bytes (the worst case is incompressible data: n plus one token per
// 255 literals plus constant overhead).
func CompressBound(n int) int { return n + n/255 + 16 }

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZ4 block encoding of src to dst and returns the
// extended buffer. An empty src produces an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	if len(src) < mfLimit+1 {
		return emitLastLiterals(dst, src)
	}

	var table [1 << hashLog]int32 // position+1 of last occurrence of each hash
	anchor := 0                   // start of pending literals
	pos := 0
	limit := len(src) - mfLimit // last position a match may start at

	for pos <= limit {
		seq := binary.LittleEndian.Uint32(src[pos:])
		h := hash4(seq)
		cand := int(table[h]) - 1
		table[h] = int32(pos + 1)
		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != seq {
			pos++
			continue
		}
		// Extend the match backwards over pending literals.
		for pos > anchor && cand > 0 && src[pos-1] == src[cand-1] {
			pos--
			cand--
		}
		// Extend forwards. The match may run up to len(src)-lastLitMin
		// so the final five bytes stay literals.
		matchLen := minMatch
		maxLen := len(src) - lastLitMin - pos
		for matchLen < maxLen && src[pos+matchLen] == src[cand+matchLen] {
			matchLen++
		}
		if matchLen < minMatch {
			pos++
			continue
		}

		dst = emitSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
		if pos <= limit {
			// Prime the table with an interior position to improve the
			// chance of catching overlapping matches.
			mid := pos - 2
			table[hash4(binary.LittleEndian.Uint32(src[mid:]))] = int32(mid + 1)
		}
	}
	return emitLastLiterals(dst, src[anchor:])
}

// emitSequence appends one literal+match sequence.
func emitSequence(dst, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 15
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLenExt(dst, ml-15)
	}
	return dst
}

// emitLastLiterals appends the final literals-only sequence.
func emitLastLiterals(dst, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

func appendLenExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress decodes an LZ4 block from src into dst, which must be
// exactly large enough (callers know the uncompressed size out of
// band, as the checkpoint protocol does). It returns the number of
// bytes written.
func Decompress(dst, src []byte) (int, error) {
	di, si := 0, 0
	for si < len(src) {
		token := src[si]
		si++
		// Literals.
		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, si, err = readLenExt(src, si, litLen)
			if err != nil {
				return di, err
			}
		}
		if si+litLen > len(src) {
			return di, fmt.Errorf("%w: literal run past input", ErrCorrupt)
		}
		if di+litLen > len(dst) {
			return di, ErrDstTooSmall
		}
		copy(dst[di:], src[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(src) {
			return di, nil // final literals-only sequence
		}
		// Match.
		if si+2 > len(src) {
			return di, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[si:]))
		si += 2
		if offset == 0 || offset > di {
			return di, fmt.Errorf("%w: offset %d at output %d", ErrCorrupt, offset, di)
		}
		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			matchLen, si, err = readLenExt(src, si, matchLen)
			if err != nil {
				return di, err
			}
		}
		matchLen += minMatch
		if di+matchLen > len(dst) {
			return di, ErrDstTooSmall
		}
		// Byte-by-byte copy: matches may overlap their own output.
		for i := 0; i < matchLen; i++ {
			dst[di] = dst[di-offset]
			di++
		}
	}
	return di, nil
}

func readLenExt(src []byte, si, n int) (int, int, error) {
	for {
		if si >= len(src) {
			return 0, si, fmt.Errorf("%w: truncated length", ErrCorrupt)
		}
		b := src[si]
		si++
		n += int(b)
		if b != 255 {
			return n, si, nil
		}
	}
}
