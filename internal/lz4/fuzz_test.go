package lz4

import (
	"bytes"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to the decoder: it must never
// panic or read out of bounds, only return errors.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{}, 64)
	f.Add([]byte{0x10, 'a'}, 1)
	f.Add(Compress(nil, bytes.Repeat([]byte("abcdef"), 100)), 600)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x00, 0x01, 0x00}, 32)
	f.Fuzz(func(t *testing.T, comp []byte, size int) {
		if size < 0 || size > 1<<20 {
			return
		}
		dst := make([]byte, size)
		n, err := Decompress(dst, comp)
		if err == nil && n > size {
			t.Fatalf("decompressed %d bytes into a %d-byte buffer", n, size)
		}
	})
}

// FuzzRoundTrip compresses arbitrary inputs and requires exact
// recovery.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<20 {
			return
		}
		comp := Compress(nil, src)
		if len(comp) > CompressBound(len(src)) {
			t.Fatalf("compressed %d exceeds bound %d", len(comp), CompressBound(len(src)))
		}
		dst := make([]byte, len(src))
		n, err := Decompress(dst, comp)
		if err != nil || n != len(src) || !bytes.Equal(dst, src) {
			t.Fatalf("round trip failed: n=%d err=%v", n, err)
		}
	})
}
