package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(nil, src)
	if len(comp) > CompressBound(len(src)) {
		t.Fatalf("compressed %d exceeds bound %d for input %d", len(comp), CompressBound(len(src)), len(src))
	}
	dst := make([]byte, len(src))
	n, err := Decompress(dst, comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if n != len(src) {
		t.Fatalf("decompressed %d bytes, want %d", n, len(src))
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch")
	}
	return comp
}

func TestEmpty(t *testing.T) {
	if got := Compress(nil, nil); len(got) != 0 {
		t.Fatalf("empty input compressed to %d bytes", len(got))
	}
	n, err := Decompress(nil, nil)
	if err != nil || n != 0 {
		t.Fatalf("empty decompress: n=%d err=%v", n, err)
	}
}

func TestShortInputs(t *testing.T) {
	for n := 1; n < 32; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i % 7)
		}
		roundTrip(t, src)
	}
}

func TestZeroRunCompressesHard(t *testing.T) {
	src := make([]byte, 1<<20)
	comp := roundTrip(t, src)
	if len(comp) > len(src)/100 {
		t.Fatalf("1MB of zeros compressed to %d bytes, want <1%%", len(comp))
	}
}

// TestSparseDelta models the checkpoint-delta workload: a mostly-zero
// buffer with a few percent of dirty 16-byte slots.
func TestSparseDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<20)
	for i := 0; i < len(src)/16/50; i++ { // 2% of slots dirty
		off := rng.Intn(len(src)/16) * 16
		rng.Read(src[off : off+16])
	}
	comp := roundTrip(t, src)
	if ratio := float64(len(comp)) / float64(len(src)); ratio > 0.10 {
		t.Fatalf("sparse delta ratio %.3f, want < 0.10", ratio)
	}
}

func TestRepetitiveText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 2000))
	comp := roundTrip(t, src)
	if len(comp) > len(src)/5 {
		t.Fatalf("repetitive text compressed to %d/%d", len(comp), len(src))
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 1<<16)
	rng.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > CompressBound(len(src)) {
		t.Fatalf("random data exceeded bound")
	}
}

func TestOverlappingMatches(t *testing.T) {
	// RLE-style: matches overlapping their own output (offset 1).
	src := append([]byte{'x'}, bytes.Repeat([]byte{'a'}, 1000)...)
	roundTrip(t, src)
	// Offset 3 pattern.
	src = bytes.Repeat([]byte{'a', 'b', 'c'}, 500)
	roundTrip(t, src)
}

func TestLongLiteralAndMatchExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lit := make([]byte, 5000) // forces literal-length extension bytes
	rng.Read(lit)
	src := append(lit, bytes.Repeat([]byte{0xAB}, 5000)...) // long match extension
	roundTrip(t, src)
}

func TestDecompressCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{0x10},                  // 1 literal promised, none present
		{0x00, 0x00},            // match with offset 0
		{0xF0},                  // literal extension truncated
		{0x10, 'a', 0x05, 0x00}, // offset 5 > output position 1
		{0x10, 'a', 0x01},       // truncated offset
		{0x1F, 'a', 0x01, 0x00}, // match-length extension truncated
	}
	for i, c := range cases {
		dst := make([]byte, 64)
		if _, err := Decompress(dst, c); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecompressDstTooSmall(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 100)
	comp := Compress(nil, src)
	dst := make([]byte, 10)
	if _, err := Decompress(dst, comp); err != ErrDstTooSmall {
		t.Fatalf("err = %v, want ErrDstTooSmall", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		dst := make([]byte, len(src))
		n, err := Decompress(dst, comp)
		return err == nil && n == len(src) && bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStructured exercises compressible structured inputs, which
// random []byte from testing/quick rarely produces.
func TestQuickStructured(t *testing.T) {
	f := func(seed int64, blocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var src []byte
		for b := 0; b < int(blocks); b++ {
			switch rng.Intn(3) {
			case 0:
				src = append(src, bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(300))...)
			case 1:
				chunk := make([]byte, rng.Intn(100))
				rng.Read(chunk)
				src = append(src, chunk...)
			case 2:
				pat := make([]byte, 1+rng.Intn(8))
				rng.Read(pat)
				src = append(src, bytes.Repeat(pat, rng.Intn(100))...)
			}
		}
		comp := Compress(nil, src)
		dst := make([]byte, len(src))
		n, err := Decompress(dst, comp)
		return err == nil && n == len(src) && bytes.Equal(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressSparseDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4<<20)
	for i := 0; i < len(src)/16/50; i++ {
		off := rng.Intn(len(src)/16) * 16
		rng.Read(src[off : off+16])
	}
	dst := make([]byte, 0, CompressBound(len(src)))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(dst[:0], src)
	}
}

func BenchmarkDecompressSparseDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4<<20)
	for i := 0; i < len(src)/16/50; i++ {
		off := rng.Intn(len(src)/16) * 16
		rng.Read(src[off : off+16])
	}
	comp := Compress(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}
