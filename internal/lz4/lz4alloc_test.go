package lz4

import "testing"

// TestCompressDecompressNoAllocs pins the allocation-free contract the
// checkpoint pipeline depends on: with a dst at CompressBound capacity,
// Compress and Decompress must not touch the heap (in particular the
// match table must stay on the stack).
func TestCompressDecompressNoAllocs(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	comp := make([]byte, 0, CompressBound(len(src)))
	if n := testing.AllocsPerRun(20, func() {
		comp = Compress(comp[:0], src)
	}); n != 0 {
		t.Fatalf("Compress allocates %.1f objects per call, want 0", n)
	}
	dec := make([]byte, len(src))
	if n := testing.AllocsPerRun(20, func() {
		if m, err := Decompress(dec, comp); err != nil || m != len(src) {
			t.Errorf("decompress: n=%d err=%v", m, err)
		}
	}); n != 0 {
		t.Fatalf("Decompress allocates %.1f objects per call, want 0", n)
	}
}
