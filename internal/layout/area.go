package layout

import (
	"fmt"

	"repro/internal/lz4"
)

// Config fixes the geometry of a coding group. All memory nodes in a
// group share one Layout.
type Config struct {
	// NumMNs is the coding-group size n (the paper's default is 5).
	NumMNs int
	// ParityShards is the per-stripe parity count m (2 tolerates two
	// MN crashes, matching three-way replication, §3.3.1).
	ParityShards int
	// IndexBytes is the index area size per MN (a multiple of
	// BucketSize).
	IndexBytes uint64
	// BlockSize is the memory block granularity (the paper's default
	// is 2 MB).
	BlockSize uint64
	// StripeRows is the number of coding stripes; each stripe occupies
	// block row s on every MN of the group.
	StripeRows int
	// PoolBlocks is the number of extra per-MN blocks reserved for
	// DELTA blocks and reclamation COPY blocks.
	PoolBlocks int
	// CkptHosts is how many successor MNs host this MN's index
	// checkpoint (the paper sends to one neighbour).
	CkptHosts int
	// MetaReplicas is how many successor MNs hold a replica of this
	// MN's Meta Area (§3.1: simple replication suffices for metadata).
	MetaReplicas int
	// CkptSegments splits the index into fixed-size segments for
	// differential checkpointing: the sender tracks dirty segments and
	// ships only those, as a framed list of per-segment records. 0 or 1
	// means a single segment covering the whole index, which reproduces
	// the full-image pipeline shape (the Figure 1(b)/Fig 17 ablation
	// baseline). Values above the bucket count are clamped.
	CkptSegments int
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	switch {
	case c.NumMNs < 2:
		return fmt.Errorf("layout: need at least 2 MNs, got %d", c.NumMNs)
	case c.ParityShards < 1 || c.ParityShards > 2:
		return fmt.Errorf("layout: parity shards must be 1 or 2, got %d", c.ParityShards)
	case c.NumMNs-c.ParityShards < 1:
		return fmt.Errorf("layout: no data shards left (%d MNs, %d parity)", c.NumMNs, c.ParityShards)
	case c.NumMNs-c.ParityShards > MaxStripeData:
		return fmt.Errorf("layout: %d data shards exceed record limit %d", c.NumMNs-c.ParityShards, MaxStripeData)
	case c.IndexBytes == 0 || c.IndexBytes%BucketSize != 0:
		return fmt.Errorf("layout: index bytes %d not a multiple of bucket size", c.IndexBytes)
	case c.BlockSize == 0 || c.BlockSize%512 != 0:
		return fmt.Errorf("layout: block size %d not a multiple of 512", c.BlockSize)
	case c.StripeRows < 1:
		return fmt.Errorf("layout: need at least one stripe row")
	case c.CkptHosts < 1 || c.CkptHosts >= c.NumMNs:
		return fmt.Errorf("layout: checkpoint hosts %d out of range", c.CkptHosts)
	case c.MetaReplicas < 1 || c.MetaReplicas >= c.NumMNs:
		return fmt.Errorf("layout: meta replicas %d out of range", c.MetaReplicas)
	case c.CkptSegments < 0:
		return fmt.Errorf("layout: checkpoint segments %d negative", c.CkptSegments)
	}
	return nil
}

// ckptSegments resolves the effective segment count: 0 means 1 (the
// full-image ablation shape), and counts beyond one bucket per segment
// are clamped to the bucket count.
func (c *Config) ckptSegments() int {
	segs := c.CkptSegments
	if segs <= 0 {
		segs = 1
	}
	if buckets := int(c.IndexBytes / BucketSize); segs > buckets {
		segs = buckets
	}
	return segs
}

// K returns the number of data shards per stripe.
func (c *Config) K() int { return c.NumMNs - c.ParityShards }

// BlocksPerMN returns the total block count per MN.
func (c *Config) BlocksPerMN() int { return c.StripeRows + c.PoolBlocks }

// Layout gives the byte offsets of every area within an MN's memory
// region. All MNs of a group share the same layout.
type Layout struct {
	Cfg Config

	indexArea   uint64 // index buckets + index version word
	bvSize      uint64 // per-bucket version words
	metaSize    uint64 // records + bitmaps
	ckptSlot    uint64 // hosted copy + compressed staging, per neighbour
	metaOff     uint64
	ckptOff     uint64
	metaRepOff  uint64
	blocksOff   uint64
	memBytes    uint64
	bitmapBytes uint64
	segSize     uint64 // checkpoint segment size (all but possibly the last)
	segCount    int    // checkpoint segment count
	stagingSize uint64 // checkpoint staging region size, per hosted slot
}

// NewLayout computes the layout for a validated config.
func NewLayout(cfg Config) (*Layout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Layout{Cfg: cfg}
	l.indexArea = cfg.IndexBytes + 64 // version word, padded
	l.bitmapBytes = cfg.BlockSize / 512
	blocks := uint64(cfg.BlocksPerMN())
	l.metaSize = blocks * (RecordSize + l.bitmapBytes)
	// Checkpoint segments: ceil(buckets/segments) buckets per segment,
	// so every segment is bucket-aligned and the last may be shorter.
	segs := uint64(cfg.ckptSegments())
	buckets := cfg.IndexBytes / BucketSize
	l.segSize = (buckets + segs - 1) / segs * BucketSize
	l.segCount = int((cfg.IndexBytes + l.segSize - 1) / l.segSize)
	// The staging region must hold the worst-case checkpoint frame: a
	// header plus, for every segment, a record and its compressed
	// payload at the LZ4 expansion bound.
	l.stagingSize = CkptFrameHeaderSize
	for i := 0; i < l.segCount; i++ {
		l.stagingSize += CkptFrameRecordSize + uint64(lz4.CompressBound(int(l.CkptSegLen(i))))
	}
	l.stagingSize += 64 // padding
	l.ckptSlot = l.indexArea + l.stagingSize
	l.bvSize = cfg.IndexBytes / BucketSize * 8
	l.metaOff = l.indexArea + l.bvSize
	l.ckptOff = l.metaOff + l.metaSize
	l.metaRepOff = l.ckptOff + uint64(cfg.CkptHosts)*l.ckptSlot
	l.blocksOff = (l.metaRepOff + uint64(cfg.MetaReplicas)*l.metaSize + 4095) &^ 4095
	l.memBytes = l.blocksOff + blocks*cfg.BlockSize
	return l, nil
}

// MemBytes returns the memory region size each MN must register.
func (l *Layout) MemBytes() uint64 { return l.memBytes }

// --- Index area ---

// NumBuckets returns the bucket count of one MN's index.
func (l *Layout) NumBuckets() uint64 { return l.Cfg.IndexBytes / BucketSize }

// BucketOff returns the offset of bucket b.
func (l *Layout) BucketOff(b uint64) uint64 { return b * BucketSize }

// SlotOff returns the offset of slot s within bucket b.
func (l *Layout) SlotOff(b uint64, s int) uint64 { return b*BucketSize + uint64(s)*SlotSize }

// IndexVersionOff returns the offset of the MN's 64-bit Index Version,
// stored at the end of the index (§3.2.3).
func (l *Layout) IndexVersionOff() uint64 { return l.Cfg.IndexBytes }

// --- Bucket version area ---
//
// One 64-bit monotonic counter per index bucket, bumped by the MN
// server's write observer before the mutating verb's response is
// released. Clients use the words to validate cached conclusions about
// a bucket (negative entries, hot-bucket mirrors) with a single 8-byte
// read instead of re-reading the 128-byte bucket pair. The area is not
// checkpointed or recovered: a rebuilt MN restarts its counters at
// zero, and clients drop version-validated state on every view-epoch
// change, so stale counters can never be confused with live ones.

// BucketVerOff returns the offset of bucket b's version word.
func (l *Layout) BucketVerOff(b uint64) uint64 { return l.indexArea + b*8 }

// BucketVerBytes returns the size of the bucket version area.
func (l *Layout) BucketVerBytes() uint64 { return l.bvSize }

// --- Meta area ---

// MetaOff returns the start of the Meta Area; MetaSize its length.
func (l *Layout) MetaOff() uint64  { return l.metaOff }
func (l *Layout) MetaSize() uint64 { return l.metaSize }

// RecordOff returns the offset of block b's metadata record.
func (l *Layout) RecordOff(b int) uint64 { return l.metaOff + uint64(b)*RecordSize }

// BitmapOff returns the offset of block b's free bitmap; BitmapBytes
// its length.
func (l *Layout) BitmapOff(b int) uint64 {
	return l.metaOff + uint64(l.Cfg.BlocksPerMN())*RecordSize + uint64(b)*l.bitmapBytes
}
func (l *Layout) BitmapBytes() uint64 { return l.bitmapBytes }

// KVSlotsPerBlock returns the KV slot count of a block with the given
// size class (slot size in 64B units).
func (l *Layout) KVSlotsPerBlock(sizeClass uint8) int {
	if sizeClass == 0 {
		return 0
	}
	return int(l.Cfg.BlockSize / (uint64(sizeClass) * 64))
}

// --- Checkpoint area ---
// MN i's index checkpoint is hosted by its CkptHosts successors on the
// ring; host h of MN i is MN (i+1+h) mod n. Each hosted slot holds a
// full index copy (with its version word) plus a staging region for
// the incoming checkpoint frame (a framed list of per-segment delta
// records; see DESIGN.md §8).

// Checkpoint frame geometry. A frame is
//
//	header | record * segCount | payload * segCount
//
// with fixed-size little-endian header and records; payloads are
// concatenated in strictly ascending segment order.
const (
	// CkptFrameMagic marks the start of a checkpoint frame header.
	CkptFrameMagic = 0x41436b50 // "ACkP"
	// CkptFrameHeaderSize is the frame header length: magic u32,
	// record count u32, round u64, frame sequence u64, total frame
	// length u32, CRC-32C of everything after the header u32.
	CkptFrameHeaderSize = 32
	// CkptFrameRecordSize is the per-segment record length: segment
	// u32, rawLen u32, compLen u32, flags u32.
	CkptFrameRecordSize = 16
)

// CkptHostOf returns the h-th checkpoint host of MN i.
func (l *Layout) CkptHostOf(mn, h int) int { return (mn + 1 + h) % l.Cfg.NumMNs }

// CkptSlotFor returns which hosted-checkpoint slot on host holds MN
// owner's checkpoint, or -1 if host does not host it.
func (l *Layout) CkptSlotFor(host, owner int) int {
	for h := 0; h < l.Cfg.CkptHosts; h++ {
		if l.CkptHostOf(owner, h) == host {
			return h
		}
	}
	return -1
}

// CkptOwnerOf returns which MN's checkpoint lives in hosted slot h of
// the given host (the inverse of CkptHostOf).
func (l *Layout) CkptOwnerOf(host, h int) int {
	return ((host-1-h)%l.Cfg.NumMNs + l.Cfg.NumMNs) % l.Cfg.NumMNs
}

// CkptCopyOff returns the offset of hosted checkpoint copy slot h.
func (l *Layout) CkptCopyOff(h int) uint64 { return l.ckptOff + uint64(h)*l.ckptSlot }

// CkptVersionOff returns the offset of the hosted checkpoint's version
// word within slot h.
func (l *Layout) CkptVersionOff(h int) uint64 { return l.CkptCopyOff(h) + l.Cfg.IndexBytes }

// CkptStagingOff returns the offset of the checkpoint-frame staging
// region of slot h; CkptStagingBytes its length.
func (l *Layout) CkptStagingOff(h int) uint64 { return l.CkptCopyOff(h) + l.indexArea }
func (l *Layout) CkptStagingBytes() uint64    { return l.stagingSize }

// CkptSegCount returns the number of checkpoint segments the index is
// split into.
func (l *Layout) CkptSegCount() int { return l.segCount }

// CkptSegSize returns the nominal segment size (every segment but
// possibly the last; see CkptSegLen).
func (l *Layout) CkptSegSize() uint64 { return l.segSize }

// CkptSegOff returns the index-area offset where segment i starts.
func (l *Layout) CkptSegOff(i int) uint64 { return uint64(i) * l.segSize }

// CkptSegLen returns the length of segment i (the last segment may be
// shorter than CkptSegSize when the bucket count does not divide
// evenly).
func (l *Layout) CkptSegLen(i int) uint64 {
	off := l.CkptSegOff(i)
	if off+l.segSize > l.Cfg.IndexBytes {
		return l.Cfg.IndexBytes - off
	}
	return l.segSize
}

// CkptSegOfOff returns the segment containing index-area offset off.
func (l *Layout) CkptSegOfOff(off uint64) int { return int(off / l.segSize) }

// --- Meta replica area ---
// MN i's Meta Area is replicated on its MetaReplicas successors;
// replica r of MN i lives on MN (i+1+r) mod n.

// MetaReplicaHostOf returns the r-th meta-replica host of MN i.
func (l *Layout) MetaReplicaHostOf(mn, r int) int { return (mn + 1 + r) % l.Cfg.NumMNs }

// MetaReplicaSlotFor returns which replica slot on host holds owner's
// meta copy, or -1.
func (l *Layout) MetaReplicaSlotFor(host, owner int) int {
	for r := 0; r < l.Cfg.MetaReplicas; r++ {
		if l.MetaReplicaHostOf(owner, r) == host {
			return r
		}
	}
	return -1
}

// MetaReplicaOff returns the offset of hosted meta-replica slot r.
func (l *Layout) MetaReplicaOff(r int) uint64 { return l.metaRepOff + uint64(r)*l.metaSize }

// --- Block area ---

// BlockOff returns the offset of block b.
func (l *Layout) BlockOff(b int) uint64 { return l.blocksOff + uint64(b)*l.Cfg.BlockSize }

// BlockOfOff returns the block index containing offset off, or -1.
func (l *Layout) BlockOfOff(off uint64) int {
	if off < l.blocksOff || off >= l.memBytes {
		return -1
	}
	return int((off - l.blocksOff) / l.Cfg.BlockSize)
}

// --- Stripe geometry ---
// Stripe s occupies block row s on every MN. Its ParityShards parity
// blocks sit on MNs (s+j) mod n, j=0..m-1; the remaining MNs hold the
// data blocks, with XOR IDs assigned in increasing MN order. Rotating
// the parity placement across stripes load-balances parity work
// (§3.3.1: "multiple coding stripes are interleaved within a single
// coding group").

// ParityMN returns the MN holding parity j of stripe s.
func (l *Layout) ParityMN(s uint32, j int) int { return (int(s) + j) % l.Cfg.NumMNs }

// IsParityMN reports whether mn holds a parity block of stripe s and
// which parity index it is.
func (l *Layout) IsParityMN(s uint32, mn int) (int, bool) {
	for j := 0; j < l.Cfg.ParityShards; j++ {
		if l.ParityMN(s, j) == mn {
			return j, true
		}
	}
	return 0, false
}

// DataMNs returns, in XOR-ID order, the MNs holding stripe s's data
// blocks.
func (l *Layout) DataMNs(s uint32) []int {
	var out []int
	for mn := 0; mn < l.Cfg.NumMNs; mn++ {
		if _, ok := l.IsParityMN(s, mn); !ok {
			out = append(out, mn)
		}
	}
	return out
}

// XORIDOf returns the XOR ID of mn within stripe s (mn must be a data
// MN of s).
func (l *Layout) XORIDOf(s uint32, mn int) int {
	for id, m := range l.DataMNs(s) {
		if m == mn {
			return id
		}
	}
	return -1
}
