package layout

import (
	"encoding/binary"
)

// Role is a memory block's type in the Meta Area record (Figure 5).
type Role uint8

// Block roles. Copy is the server-side backup of a reused DATA block
// taken during space reclamation (§3.3.3) so a client crash mid-reuse
// cannot lose the old contents.
const (
	RoleFree Role = iota
	RoleData
	RoleParity
	RoleDelta
	RoleCopy
)

func (r Role) String() string {
	switch r {
	case RoleFree:
		return "FREE"
	case RoleData:
		return "DATA"
	case RoleParity:
		return "PARITY"
	case RoleDelta:
		return "DELTA"
	case RoleCopy:
		return "COPY"
	}
	return "?"
}

// MaxStripeData bounds the number of data blocks per coding stripe the
// record format supports (the Delta Addr array, Figure 5).
const MaxStripeData = 8

// Record is the decoded per-block metadata record stored in the Meta
// Area (Figure 5). Parity-block records track, per data block of the
// stripe, whether it has been folded into the parity (XORMap bit) and
// where its DELTA block lives (DeltaAddr).
type Record struct {
	Role      Role
	Valid     bool
	XORID     uint8  // data block's position within its coding stripe
	SizeClass uint8  // KV slot size in 64B units (0 = unassigned)
	StripeID  uint32 // stripe row; ^uint32(0) for pool blocks
	// IndexVersion is copied from the local index when the block is
	// sealed (§3.2.3); 0 means unfilled.
	IndexVersion uint64
	CliID        uint16 // owning client, for CN-crash recovery (§3.4.2)
	// ParityIdx distinguishes the P (0) and Q (1) parity of a stripe.
	ParityIdx uint8
	XORMap    uint16
	DeltaAddr [MaxStripeData]uint64 // packed global addresses; 0 = none
}

// RecordSize is the on-memory size of one block record.
const RecordSize = 128

// EncodeRecord serialises r into dst (RecordSize bytes).
func EncodeRecord(dst []byte, r *Record) {
	_ = dst[RecordSize-1]
	for i := 0; i < RecordSize; i++ {
		dst[i] = 0
	}
	dst[0] = byte(r.Role)
	if r.Valid {
		dst[1] = 1
	}
	dst[2] = r.XORID
	dst[3] = r.SizeClass
	binary.LittleEndian.PutUint32(dst[4:], r.StripeID)
	binary.LittleEndian.PutUint64(dst[8:], r.IndexVersion)
	binary.LittleEndian.PutUint16(dst[16:], r.CliID)
	dst[18] = r.ParityIdx
	binary.LittleEndian.PutUint16(dst[32:], r.XORMap)
	for i, a := range r.DeltaAddr {
		binary.LittleEndian.PutUint64(dst[40+8*i:], a)
	}
}

// DecodeRecord parses a block record.
func DecodeRecord(src []byte) Record {
	_ = src[RecordSize-1]
	var r Record
	r.Role = Role(src[0])
	r.Valid = src[1] != 0
	r.XORID = src[2]
	r.SizeClass = src[3]
	r.StripeID = binary.LittleEndian.Uint32(src[4:])
	r.IndexVersion = binary.LittleEndian.Uint64(src[8:])
	r.CliID = binary.LittleEndian.Uint16(src[16:])
	r.ParityIdx = src[18]
	r.XORMap = binary.LittleEndian.Uint16(src[32:])
	for i := range r.DeltaAddr {
		r.DeltaAddr[i] = binary.LittleEndian.Uint64(src[40+8*i:])
	}
	return r
}

// NoStripe marks a pool block's StripeID.
const NoStripe = ^uint32(0)

// Bitmap helpers for the per-block free bitmaps (§3.3.3): bit i set
// means KV slot i of the block holds an obsolete pair.

// BitmapGet reports bit i of a bitmap.
func BitmapGet(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }

// BitmapSet sets bit i of a bitmap.
func BitmapSet(bm []byte, i int) { bm[i/8] |= 1 << (i % 8) }

// BitmapClear clears bit i of a bitmap.
func BitmapClear(bm []byte, i int) { bm[i/8] &^= 1 << (i % 8) }

// BitmapCount returns the number of set bits.
func BitmapCount(bm []byte) int {
	n := 0
	for _, b := range bm {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}
