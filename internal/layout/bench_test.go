package layout

import (
	"bytes"
	"testing"
)

func BenchmarkEncodeKV(b *testing.B) {
	key := []byte("user000000001234")
	val := bytes.Repeat([]byte("v"), 1024)
	dst := make([]byte, KVClassSize(len(key), len(val)))
	b.SetBytes(int64(len(dst)))
	for i := 0; i < b.N; i++ {
		EncodeKV(dst, key, val, 7, 1, false)
	}
}

func BenchmarkDecodeKV(b *testing.B) {
	key := []byte("user000000001234")
	val := bytes.Repeat([]byte("v"), 1024)
	buf := make([]byte, KVClassSize(len(key), len(val)))
	EncodeKV(buf, key, val, 7, 1, false)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeKV(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	r := Record{Role: RoleParity, Valid: true, StripeID: 9, XORMap: 0b101}
	dst := make([]byte, RecordSize)
	for i := 0; i < b.N; i++ {
		EncodeRecord(dst, &r)
	}
}
