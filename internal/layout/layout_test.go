package layout

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlotAtomicRoundTrip(t *testing.T) {
	f := func(fp, ver uint8, node uint16, off uint64) bool {
		node %= 1 << 8
		off %= 1 << 40
		a := SlotAtomic{FP: fp, Ver: ver, Addr: PackAddr(node, off)}
		got := UnpackAtomic(a.Pack())
		gn, go_ := UnpackAddr(got.Addr)
		return got.FP == fp && got.Ver == ver && gn == node && go_ == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotMetaRoundTrip(t *testing.T) {
	f := func(epoch uint64, ln uint8) bool {
		epoch %= 1 << 56
		m := SlotMeta{Epoch: epoch, Len: ln}
		got := UnpackMeta(m.Pack())
		return got.Epoch == epoch && got.Len == ln && got.Locked() == (epoch&1 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotVersionMonotonicAcrossRollover(t *testing.T) {
	// Version path: epoch e (even), ver 254 -> 255 -> rollover to
	// epoch e+2, ver 0. Every step must increase the logical version.
	prev := SlotVersion(4, 254)
	steps := []uint64{SlotVersion(4, 255), SlotVersion(6, 0), SlotVersion(6, 1)}
	for i, v := range steps {
		if v <= prev {
			t.Fatalf("step %d: version %d not > %d", i, v, prev)
		}
		prev = v
	}
}

func TestEmptySlotIsZero(t *testing.T) {
	if (SlotAtomic{}).Pack() != 0 {
		t.Fatal("zero SlotAtomic must pack to the empty-word sentinel 0")
	}
}

func TestKVRoundTrip(t *testing.T) {
	key, val := []byte("user_4817"), bytes.Repeat([]byte("v"), 900)
	cls := KVClassSize(len(key), len(val))
	if cls%64 != 0 {
		t.Fatalf("class size %d not 64-aligned", cls)
	}
	buf := make([]byte, cls)
	EncodeKV(buf, key, val, SlotVersion(2, 9), 1, false)
	kv, err := DecodeKV(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kv.Key, key) || !bytes.Equal(kv.Val, val) {
		t.Fatal("key/value mismatch")
	}
	if kv.SlotVersion != SlotVersion(2, 9) || kv.Fence != 1 || kv.Tombstone {
		t.Fatalf("header mismatch: %+v", kv)
	}
}

func TestKVTombstone(t *testing.T) {
	buf := make([]byte, KVClassSize(3, 0))
	EncodeKV(buf, []byte("abc"), nil, 7, 2, true)
	kv, err := DecodeKV(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !kv.Tombstone || len(kv.Val) != 0 {
		t.Fatalf("tombstone lost: %+v", kv)
	}
}

func TestKVNeverWritten(t *testing.T) {
	kv, err := DecodeKV(make([]byte, 64))
	if err != nil || kv != nil {
		t.Fatalf("empty slot: kv=%v err=%v", kv, err)
	}
}

func TestKVTornWriteDetected(t *testing.T) {
	buf := make([]byte, KVClassSize(4, 32))
	EncodeKV(buf, []byte("keyk"), bytes.Repeat([]byte("x"), 32), 3, 1, false)
	buf[len(buf)-1] = 2 // trailing fence from a different write version
	if _, err := DecodeKV(buf); !errors.Is(err, ErrTornKV) {
		t.Fatalf("err = %v, want ErrTornKV", err)
	}
}

func TestKVBadLengthsRejected(t *testing.T) {
	buf := make([]byte, 64)
	EncodeKV(buf, []byte("k"), []byte("v"), 1, 1, false)
	buf[2] = 0xFF // key length 255 exceeds the slot
	buf[63] = buf[0]
	if _, err := DecodeKV(buf); err == nil {
		t.Fatal("oversized lengths accepted")
	}
}

func TestNextFenceToggles(t *testing.T) {
	if NextFence(1) != 2 || NextFence(2) != 1 || NextFence(0) != 1 {
		t.Fatal("fence toggle wrong")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(role uint8, valid bool, xorID, cls uint8, stripe uint32, iv uint64, cli uint16, pidx uint8, xm uint16, seed int64) bool {
		r := Record{
			Role: Role(role % 5), Valid: valid, XORID: xorID, SizeClass: cls,
			StripeID: stripe, IndexVersion: iv, CliID: cli, ParityIdx: pidx % 2, XORMap: xm,
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range r.DeltaAddr {
			r.DeltaAddr[i] = rng.Uint64() & ((1 << 48) - 1)
		}
		buf := make([]byte, RecordSize)
		EncodeRecord(buf, &r)
		got := DecodeRecord(buf)
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapOps(t *testing.T) {
	bm := make([]byte, 16)
	for _, i := range []int{0, 7, 8, 100, 127} {
		BitmapSet(bm, i)
	}
	if BitmapCount(bm) != 5 {
		t.Fatalf("count = %d", BitmapCount(bm))
	}
	if !BitmapGet(bm, 100) || BitmapGet(bm, 99) {
		t.Fatal("get wrong")
	}
	BitmapClear(bm, 100)
	if BitmapGet(bm, 100) || BitmapCount(bm) != 4 {
		t.Fatal("clear wrong")
	}
}

func testConfig() Config {
	return Config{
		NumMNs:       5,
		ParityShards: 2,
		IndexBytes:   1 << 16,
		BlockSize:    64 << 10,
		StripeRows:   8,
		PoolBlocks:   4,
		CkptHosts:    1,
		MetaReplicas: 2,
	}
}

func TestLayoutAreasDisjoint(t *testing.T) {
	l, err := NewLayout(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		name     string
		from, to uint64
	}
	var spans []span
	spans = append(spans, span{"index", 0, l.IndexVersionOff() + 8})
	spans = append(spans, span{"meta", l.MetaOff(), l.MetaOff() + l.MetaSize()})
	for h := 0; h < l.Cfg.CkptHosts; h++ {
		spans = append(spans, span{"ckptcopy", l.CkptCopyOff(h), l.CkptVersionOff(h) + 8})
		spans = append(spans, span{"ckptstage", l.CkptStagingOff(h), l.CkptStagingOff(h) + l.CkptStagingBytes()})
	}
	for r := 0; r < l.Cfg.MetaReplicas; r++ {
		spans = append(spans, span{"metarep", l.MetaReplicaOff(r), l.MetaReplicaOff(r) + l.MetaSize()})
	}
	for b := 0; b < l.Cfg.BlocksPerMN(); b++ {
		spans = append(spans, span{"block", l.BlockOff(b), l.BlockOff(b) + l.Cfg.BlockSize})
	}
	for i := range spans {
		if spans[i].to > l.MemBytes() {
			t.Fatalf("%s [%d,%d) beyond region %d", spans[i].name, spans[i].from, spans[i].to, l.MemBytes())
		}
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.from < b.to && b.from < a.to {
				t.Fatalf("%s [%d,%d) overlaps %s [%d,%d)", a.name, a.from, a.to, b.name, b.from, b.to)
			}
		}
	}
}

func TestLayoutRecordAndBitmapAddressing(t *testing.T) {
	l, err := NewLayout(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := l.Cfg.BlocksPerMN()
	if l.RecordOff(1)-l.RecordOff(0) != RecordSize {
		t.Fatal("record stride wrong")
	}
	if l.BitmapOff(0) != l.MetaOff()+uint64(n)*RecordSize {
		t.Fatal("bitmaps must follow records")
	}
	if l.BitmapOff(n-1)+l.BitmapBytes() != l.MetaOff()+l.MetaSize() {
		t.Fatal("meta size does not cover bitmaps")
	}
	// 64KB block at 64B min KV size: 1024 slots -> 128 bitmap bytes.
	if l.BitmapBytes() != 128 {
		t.Fatalf("bitmap bytes = %d, want 128", l.BitmapBytes())
	}
	if layout := l; layout.NumBuckets() != l.Cfg.IndexBytes/128 {
		t.Fatalf("bucket size must be 128B (8 slots x 16B)")
	}
}

func TestStripeGeometry(t *testing.T) {
	l, err := NewLayout(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := l.Cfg.NumMNs
	parityPerMN := make([]int, n)
	for s := uint32(0); s < uint32(l.Cfg.StripeRows); s++ {
		data := l.DataMNs(s)
		if len(data) != l.Cfg.K() {
			t.Fatalf("stripe %d: %d data MNs, want %d", s, len(data), l.Cfg.K())
		}
		seen := map[int]bool{}
		for j := 0; j < l.Cfg.ParityShards; j++ {
			mn := l.ParityMN(s, j)
			if seen[mn] {
				t.Fatalf("stripe %d: parity %d collides", s, j)
			}
			seen[mn] = true
			parityPerMN[mn]++
			if _, ok := l.IsParityMN(s, mn); !ok {
				t.Fatalf("IsParityMN inconsistent for stripe %d mn %d", s, mn)
			}
		}
		for id, mn := range data {
			if seen[mn] {
				t.Fatalf("stripe %d: mn %d both data and parity", s, mn)
			}
			if l.XORIDOf(s, mn) != id {
				t.Fatalf("stripe %d: XOR id of mn %d inconsistent", s, mn)
			}
		}
	}
	// Rotation spreads parity across MNs: 8 stripes x 2 parities over
	// 5 MNs -> every MN holds at least 2 parity blocks.
	for mn, c := range parityPerMN {
		if c < 2 {
			t.Fatalf("mn %d holds %d parity blocks; rotation broken", mn, c)
		}
	}
}

func TestCkptAndMetaReplicaRing(t *testing.T) {
	l, err := NewLayout(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := l.Cfg.NumMNs
	for mn := 0; mn < n; mn++ {
		host := l.CkptHostOf(mn, 0)
		if host == mn {
			t.Fatalf("mn %d hosts its own checkpoint", mn)
		}
		if l.CkptSlotFor(host, mn) != 0 {
			t.Fatalf("CkptSlotFor inconsistent for mn %d", mn)
		}
		if l.CkptOwnerOf(host, 0) != mn {
			t.Fatalf("CkptOwnerOf inconsistent for mn %d", mn)
		}
		for r := 0; r < l.Cfg.MetaReplicas; r++ {
			h := l.MetaReplicaHostOf(mn, r)
			if h == mn {
				t.Fatalf("mn %d replicates meta to itself", mn)
			}
			if l.MetaReplicaSlotFor(h, mn) != r {
				t.Fatalf("MetaReplicaSlotFor inconsistent for mn %d r %d", mn, r)
			}
		}
	}
}

func TestBlockOfOff(t *testing.T) {
	l, err := NewLayout(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < l.Cfg.BlocksPerMN(); b++ {
		if got := l.BlockOfOff(l.BlockOff(b)); got != b {
			t.Fatalf("BlockOfOff(start of %d) = %d", b, got)
		}
		if got := l.BlockOfOff(l.BlockOff(b) + l.Cfg.BlockSize - 1); got != b {
			t.Fatalf("BlockOfOff(end of %d) = %d", b, got)
		}
	}
	if l.BlockOfOff(0) != -1 || l.BlockOfOff(l.MemBytes()) != -1 {
		t.Fatal("out-of-area offsets must map to -1")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumMNs = 1 },
		func(c *Config) { c.ParityShards = 3 },
		func(c *Config) { c.ParityShards = 0 },
		func(c *Config) { c.IndexBytes = 100 },
		func(c *Config) { c.BlockSize = 1000 },
		func(c *Config) { c.StripeRows = 0 },
		func(c *Config) { c.CkptHosts = 5 },
		func(c *Config) { c.MetaReplicas = 0 },
		func(c *Config) { c.NumMNs = 11; c.ParityShards = 2 }, // k=9 > record limit
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewLayout(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
