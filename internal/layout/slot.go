// Package layout defines every on-memory format Aceso uses: the 16-byte
// index slot (§3.2.2), the KV-pair wire layout with write-version
// fences (§3.4.2), the per-block metadata record of the Meta Area
// (Figure 5), and the division of each memory node's registered region
// into Index, Meta, Checkpoint and Block areas (Figure 2).
//
// Everything here is pure byte-slice encoding with no I/O; the client
// and server packages compose these with rdma verbs.
package layout

import "math"

// Index slot (16 bytes, Figure 3).
//
// The first 8 bytes are the Atomic field, modified only by RDMA_CAS:
//
//	[63:56] fp    8-bit key fingerprint
//	[55:48] ver   8-bit slot version (low half of the logical version)
//	[47:0]  addr  48-bit global address of the KV pair
//
// The remaining 8 bytes are the Meta field:
//
//	[63:8] epoch  56-bit epoch; the low bit is the lock flag (odd=locked)
//	[7:0]  len    KV-pair length in 64-byte units
type SlotAtomic struct {
	FP   uint8
	Ver  uint8
	Addr uint64 // 48-bit packed global address, 0 = empty slot
}

// SlotMeta is the decoded Meta field of an index slot.
type SlotMeta struct {
	Epoch uint64 // 56-bit epoch including the lock bit
	Len   uint8  // KV size in 64B units (0 = unknown)
}

// Pack encodes the Atomic field into its CASable 8-byte word.
func (a SlotAtomic) Pack() uint64 {
	return uint64(a.FP)<<56 | uint64(a.Ver)<<48 | a.Addr&addrMask
}

// UnpackAtomic decodes an Atomic word.
func UnpackAtomic(w uint64) SlotAtomic {
	return SlotAtomic{FP: uint8(w >> 56), Ver: uint8(w >> 48), Addr: w & addrMask}
}

// Pack encodes the Meta field into its CASable 8-byte word.
func (m SlotMeta) Pack() uint64 {
	return m.Epoch<<8 | uint64(m.Len)
}

// UnpackMeta decodes a Meta word.
func UnpackMeta(w uint64) SlotMeta {
	return SlotMeta{Epoch: w >> 8, Len: uint8(w)}
}

// Locked reports whether the epoch's lock bit is set (odd epoch).
func (m SlotMeta) Locked() bool { return m.Epoch&1 == 1 }

const (
	addrMask = (1 << 48) - 1
	// addrNodeBits of the 48-bit packed address select the memory
	// node; the rest is the byte offset within its region (up to 1 TB).
	addrNodeBits = 8
	addrOffBits  = 48 - addrNodeBits
	addrOffMask  = (1 << addrOffBits) - 1
)

// PackAddr packs a (node, offset) pair into the slot's 48-bit address.
func PackAddr(node uint16, off uint64) uint64 {
	if off > addrOffMask {
		panic("layout: offset exceeds 40-bit address space")
	}
	return uint64(node)<<addrOffBits | off
}

// UnpackAddr splits a packed 48-bit address.
func UnpackAddr(a uint64) (node uint16, off uint64) {
	return uint16(a >> addrOffBits), a & addrOffMask
}

// SlotVersion composes the 64-bit logical slot version from the 56-bit
// epoch and the 8-bit version: epoch‖ver (§3.2.2). Stable (unlocked)
// epochs are even — locking increments by one, unlocking by one more —
// so the logical version is strictly monotonic across rollovers.
func SlotVersion(epoch uint64, ver uint8) uint64 {
	return epoch<<8 | uint64(ver)
}

// InvalidVersion marks a KV pair whose commit CAS failed (§3.2.2,
// Algorithm 1 line 18): the "-1" slot version.
const InvalidVersion = math.MaxUint64

// VerMax is the 8-bit version rollover point (0xFF): when a slot's
// version wraps past it, the writer must bump the epoch under the Meta
// lock.
const VerMax = 0xFF

// SlotSize is the byte size of an index slot; SlotAtomicOff and
// SlotMetaOff are the offsets of its two words within the slot.
const (
	SlotSize      = 16
	SlotAtomicOff = 0
	SlotMetaOff   = 8
)

// BucketSlots is the number of slots per hash bucket, read with a
// single RDMA_READ. RACE-style buckets hold 8 slots: with FUSEE's 8 B
// slots that is a 64 B bucket; with Aceso's 16 B slots it doubles to
// 128 B — the read amplification the "+SLOT" factor-analysis step
// (Figure 13) measures and the slot-address cache wins back.
const BucketSlots = 8

// BucketSize is the byte size of one bucket.
const BucketSize = BucketSlots * SlotSize
