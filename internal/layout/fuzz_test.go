package layout

import "testing"

// FuzzDecodeKV feeds arbitrary slot bytes to the KV decoder: it must
// never panic (recovery scans raw decoded blocks, which can contain
// any bytes after a torn write or a partial decode).
func FuzzDecodeKV(f *testing.F) {
	good := make([]byte, 128)
	EncodeKV(good, []byte("key"), []byte("value"), 7, 1, false)
	f.Add(good)
	f.Add(make([]byte, 64))
	f.Add([]byte{1, 0, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, src []byte) {
		kv, err := DecodeKV(src)
		if err == nil && kv != nil {
			// Returned slices must lie within src.
			if len(kv.Key)+len(kv.Val) > len(src) {
				t.Fatal("decoded lengths exceed input")
			}
		}
	})
}

// FuzzDecodeRecord checks the block-record decoder on arbitrary bytes.
func FuzzDecodeRecord(f *testing.F) {
	buf := make([]byte, RecordSize)
	EncodeRecord(buf, &Record{Role: RoleData, Valid: true, StripeID: 3})
	f.Add(buf)
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) < RecordSize {
			return
		}
		r := DecodeRecord(src[:RecordSize])
		out := make([]byte, RecordSize)
		EncodeRecord(out, &r)
		r2 := DecodeRecord(out)
		if r2.StripeID != r.StripeID || r2.IndexVersion != r.IndexVersion {
			t.Fatal("record re-encode not stable")
		}
	})
}
