package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KV pair layout (§3.2.2, §3.4.2). A KV pair occupies one fixed-size
// slot of its block's size class (a multiple of 64 bytes):
//
//	[0]     write-version fence (2-bit, values 1/2; 0 = never written)
//	[1]     flags (bit 0: tombstone left by DELETE)
//	[2:4]   key length (uint16)
//	[4:8]   value length (uint32)
//	[8:16]  slot version (epoch‖ver; InvalidVersion = aborted commit)
//	[16:]   key bytes, then value bytes
//	[last]  write-version fence (must equal byte 0)
//
// The two fences bracket the pair so a reader (or a restarting client,
// §3.4.2) can detect a torn write: RDMA writes land in order, so equal
// non-zero fences imply the bytes between them are complete.
const (
	KVHeaderSize = 16
	kvFlagTomb   = 1 << 0
)

// ErrTornKV reports a KV slot whose fences disagree (incomplete write).
var ErrTornKV = errors.New("layout: torn KV pair (fence mismatch)")

// KVClassSize returns the size-class slot size for a key/value pair:
// header + key + value + trailing fence, rounded up to 64 bytes.
func KVClassSize(keyLen, valLen int) int {
	need := KVHeaderSize + keyLen + valLen + 1
	return (need + 63) &^ 63
}

// MaxKVPayload returns the largest key+value byte total a class of the
// given size can hold.
func MaxKVPayload(classSize int) int { return classSize - KVHeaderSize - 1 }

// EncodeKV writes a KV pair into dst (which must be exactly the class
// size and is fully overwritten; bytes between the value and the
// trailing fence are zeroed so deltas stay sparse).
func EncodeKV(dst []byte, key, val []byte, slotVersion uint64, fence uint8, tombstone bool) {
	if len(dst) < KVClassSize(len(key), len(val)) {
		panic(fmt.Sprintf("layout: EncodeKV dst %d too small for k=%d v=%d", len(dst), len(key), len(val)))
	}
	for i := range dst {
		dst[i] = 0
	}
	dst[0] = fence
	if tombstone {
		dst[1] |= kvFlagTomb
	}
	binary.LittleEndian.PutUint16(dst[2:], uint16(len(key)))
	binary.LittleEndian.PutUint32(dst[4:], uint32(len(val)))
	binary.LittleEndian.PutUint64(dst[8:], slotVersion)
	copy(dst[KVHeaderSize:], key)
	copy(dst[KVHeaderSize+len(key):], val)
	dst[len(dst)-1] = fence
}

// KV is a decoded KV pair.
type KV struct {
	Key, Val    []byte
	SlotVersion uint64
	Fence       uint8
	Tombstone   bool
}

// DecodeKV parses a KV slot. It returns ErrTornKV when the fences
// disagree and a nil KV (with no error) when the slot was never
// written (fence 0).
func DecodeKV(src []byte) (*KV, error) {
	if len(src) < KVHeaderSize+1 {
		return nil, fmt.Errorf("layout: KV slot too short (%d)", len(src))
	}
	fence := src[0]
	if fence == 0 {
		return nil, nil
	}
	if src[len(src)-1] != fence {
		return nil, ErrTornKV
	}
	keyLen := int(binary.LittleEndian.Uint16(src[2:]))
	valLen := int(binary.LittleEndian.Uint32(src[4:]))
	if KVHeaderSize+keyLen+valLen+1 > len(src) {
		return nil, fmt.Errorf("layout: KV lengths k=%d v=%d exceed slot %d", keyLen, valLen, len(src))
	}
	return &KV{
		Key:         src[KVHeaderSize : KVHeaderSize+keyLen],
		Val:         src[KVHeaderSize+keyLen : KVHeaderSize+keyLen+valLen],
		SlotVersion: binary.LittleEndian.Uint64(src[8:]),
		Fence:       fence,
		Tombstone:   src[1]&kvFlagTomb != 0,
	}, nil
}

// DecodeKVInto is DecodeKV without the heap allocation: it fills dst
// (whose Key/Val alias src) and reports whether the slot held a
// written pair. The client's cached-GET hot path uses it to stay at 0
// allocs/op.
func DecodeKVInto(dst *KV, src []byte) (ok bool, err error) {
	if len(src) < KVHeaderSize+1 {
		return false, fmt.Errorf("layout: KV slot too short (%d)", len(src))
	}
	fence := src[0]
	if fence == 0 {
		return false, nil
	}
	if src[len(src)-1] != fence {
		return false, ErrTornKV
	}
	keyLen := int(binary.LittleEndian.Uint16(src[2:]))
	valLen := int(binary.LittleEndian.Uint32(src[4:]))
	if KVHeaderSize+keyLen+valLen+1 > len(src) {
		return false, fmt.Errorf("layout: KV lengths k=%d v=%d exceed slot %d", keyLen, valLen, len(src))
	}
	dst.Key = src[KVHeaderSize : KVHeaderSize+keyLen]
	dst.Val = src[KVHeaderSize+keyLen : KVHeaderSize+keyLen+valLen]
	dst.SlotVersion = binary.LittleEndian.Uint64(src[8:])
	dst.Fence = fence
	dst.Tombstone = src[1]&kvFlagTomb != 0
	return true, nil
}

// NextFence returns the write-version fence to use when overwriting a
// slot whose previous fence was old: it toggles 1↔2 (§3.4.2) so a torn
// overwrite is distinguishable from the intact old pair.
func NextFence(old uint8) uint8 {
	if old == 1 {
		return 2
	}
	return 1
}

// KVVersionOff is the offset of the slot-version word inside a KV
// slot; a failed committer invalidates its pair with a single
// RDMA_WRITE of InvalidVersion here (Algorithm 1, line 18).
const KVVersionOff = 8
