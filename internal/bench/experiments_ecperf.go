package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/stats"
)

func init() {
	register("ecperf", "Multi-core erasure kernels: banded encode/decode throughput and recovery impact", runECPerf)
}

// ecPerfRow is one EC worker-pool mode's measured simnet cost: the
// virtual-time erasure throughput (bytes over elapsed fan-out time,
// from the MN servers' EC counters) and the recovery stage times it
// drives.
type ecPerfRow struct {
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	DecodeBytes   uint64  `json:"decode_bytes"`
	DecodeUs      float64 `json:"decode_us"`
	DecodeGBps    float64 `json:"decode_gbps"`
	EncodeBytes   uint64  `json:"encode_bytes"`
	EncodeUs      float64 `json:"encode_us"`
	EncodeGBps    float64 `json:"encode_gbps"`
	EncodeBatches uint64  `json:"encode_batches"`
	Tier3Ms       float64 `json:"tier3_ms"`
	RecoveryMs    float64 `json:"recovery_total_ms"`
}

// ecKernelRow is one wall-clock kernel measurement (real goroutines
// through the erasure package pool, not the simulated cores).
type ecKernelRow struct {
	Workers     int     `json:"workers"`
	EncodeGBps  float64 `json:"encode_gbps_wallclock"`
	AllocsPerOp float64 `json:"encode_allocs_per_op"`
}

// ecPerfSummary is the machine-readable artifact (BENCH_ecperf.json).
type ecPerfSummary struct {
	BlockSize uint64      `json:"block_size"`
	Rows      []ecPerfRow `json:"rows"`
	// DecodeSpeedup / EncodeSpeedup are the pooled over inline
	// virtual-time throughput ratios: the tentpole's acceptance number
	// (>= 3x expected at 4 workers on >= 1 MB blocks; the fan-out
	// charges each band's modelled cost on its own simulated core, so
	// elapsed time shrinks with the worker count minus poll quanta).
	DecodeSpeedup     float64       `json:"decode_speedup"`
	EncodeSpeedup     float64       `json:"encode_speedup"`
	Kernels           []ecKernelRow `json:"wallclock_kernels"`
	UpdateAllocsPerOp float64       `json:"update_allocs_per_op"`
	ApplyAllocsPerOp  float64       `json:"apply_deltas_allocs_per_op"`
}

// runECPerf measures the erasure data path two ways. The simnet half
// loads a cluster on 1 MB blocks, crashes an MN, and reads the EC
// encode/decode counters of the recovery (reconstruct fan-outs during
// block rebuild, batched parity folds during parity-row rebuild and
// live reclamation) with the worker pool off versus 4 workers. The
// wall-clock half times the erasure package's own pooled Encode on the
// same stripe geometry and pins the zero-allocation steady state of
// Encode, UpdateOne and ApplyDeltas. Wall-clock speedup is reported
// but not asserted: it tracks the host's core count, and CI containers
// often pin a single CPU.
func runECPerf(o Options) (*Result, error) {
	const blockSize = 1 << 20 // >= 1 MB stripes: the acceptance regime
	keys := o.OpsPerClient * 2
	modes := []struct {
		name    string
		workers int
	}{
		{"inline", 0},
		{"4-workers", 4},
	}

	res := &Result{ID: "ecperf", Title: "Erasure kernel throughput: inline vs worker pool"}
	sum := &ecPerfSummary{BlockSize: blockSize}
	decRow := &stats.Series{Name: "decode GB/s (virtual)"}
	encRow := &stats.Series{Name: "encode GB/s (virtual)"}
	tierRow := &stats.Series{Name: "tier-3 ms"}
	totalRow := &stats.Series{Name: "recovery total ms"}

	for _, m := range modes {
		m := m
		lc, err := loadCluster(o, keys, 2, func(cfg *core.Config) {
			cfg.Layout.BlockSize = blockSize
			cfg.ECWorkers = m.workers
		})
		if err != nil {
			return nil, fmt.Errorf("ecperf %s: %w", m.name, err)
		}
		rep, err := lc.crashAndWait(1)
		st := ecStatsSum(lc.r)
		lc.r.shutdown()
		if err != nil {
			return nil, fmt.Errorf("ecperf %s: %w", m.name, err)
		}
		row := ecPerfRow{
			Mode:          m.name,
			Workers:       m.workers,
			DecodeBytes:   st.ECDecodeBytes,
			DecodeUs:      float64(st.ECDecodeNs) / 1e3,
			EncodeBytes:   st.ECEncodeBytes,
			EncodeUs:      float64(st.ECEncodeNs) / 1e3,
			EncodeBatches: st.ECEncodeBatches,
			Tier3Ms:       ms(rep.RecoverOldLBlock),
			RecoveryMs:    ms(rep.Total),
		}
		if st.ECDecodeNs > 0 {
			row.DecodeGBps = float64(st.ECDecodeBytes) / float64(st.ECDecodeNs)
		}
		if st.ECEncodeNs > 0 {
			row.EncodeGBps = float64(st.ECEncodeBytes) / float64(st.ECEncodeNs)
		}
		sum.Rows = append(sum.Rows, row)
		decRow.Add(m.name, row.DecodeGBps)
		encRow.Add(m.name, row.EncodeGBps)
		tierRow.Add(m.name, row.Tier3Ms)
		totalRow.Add(m.name, row.RecoveryMs)
	}

	inline, pooled := sum.Rows[0], sum.Rows[1]
	if inline.DecodeGBps > 0 {
		sum.DecodeSpeedup = pooled.DecodeGBps / inline.DecodeGBps
	}
	if inline.EncodeGBps > 0 {
		sum.EncodeSpeedup = pooled.EncodeGBps / inline.EncodeGBps
	}

	// Wall-clock kernel: the erasure package's own pooled Encode on the
	// same >= 1 MB stripe geometry, plus the allocation pins.
	kernelRow := &stats.Series{Name: "wall-clock encode GB/s"}
	allocRow := &stats.Series{Name: "encode allocs/op"}
	for _, w := range []int{1, 4} {
		gbps, allocs := ecWallClockEncode(w, blockSize)
		sum.Kernels = append(sum.Kernels, ecKernelRow{Workers: w, EncodeGBps: gbps, AllocsPerOp: allocs})
		lbl := fmt.Sprintf("%dw", w)
		kernelRow.Add(lbl, gbps)
		allocRow.Add(lbl, allocs)
	}
	sum.UpdateAllocsPerOp, sum.ApplyAllocsPerOp = ecSteadyStateAllocs(blockSize)

	res.Series = append(res.Series, decRow, encRow, tierRow, totalRow, kernelRow, allocRow)
	res.Summary = sum
	res.Notes = append(res.Notes,
		fmt.Sprintf("simnet erasure throughput = EC counter bytes over virtual fan-out time, summed across MNs after one MN recovery on %d MB blocks", blockSize>>20),
		fmt.Sprintf("worker pool vs inline: decode %.1fx, encode %.1fx (bands charged on distinct simulated cores; expect ~W minus 5us poll quanta)", sum.DecodeSpeedup, sum.EncodeSpeedup),
		fmt.Sprintf("wall-clock pooled encode measured on %d host CPUs: real speedup tracks the container's core count, reported but not asserted", runtime.NumCPU()),
		"steady-state allocs/op pins: encode path reuses pooled adjuster scratch and staged band jobs (0 expected)")
	return res, nil
}

// ecStatsSum sums the EC pool counters over every MN server (the
// recovered MN's replacement server carries the recovery decode tally).
func ecStatsSum(r *acesoRun) core.ServerStats {
	var sum core.ServerStats
	for mn := 0; mn < r.cl.Cfg.Layout.NumMNs; mn++ {
		st := r.cl.Server(mn).Stats()
		sum.ECEncodeBytes += st.ECEncodeBytes
		sum.ECEncodeNs += st.ECEncodeNs
		sum.ECEncodeBatches += st.ECEncodeBatches
		sum.ECDecodeBytes += st.ECDecodeBytes
		sum.ECDecodeNs += st.ECDecodeNs
	}
	return sum
}

// ecWallClockEncode times the erasure package's pooled Encode (real
// goroutines) on a 6+2 XOR stripe of blockSize shards and reports
// GB/s of data encoded plus steady-state allocations per Encode call.
func ecWallClockEncode(workers, blockSize int) (gbps, allocsPerOp float64) {
	c, err := erasure.NewXor(6)
	if err != nil {
		return 0, 0
	}
	c.SetWorkers(workers)
	align := c.SegmentAlign()
	size := blockSize / align * align
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	parity := [][]byte{make([]byte, size), make([]byte, size)}
	// Warm up: first pooled call spawns workers and grows the scratch
	// pool; steady state starts after it.
	if err := c.Encode(data, parity); err != nil {
		return 0, 0
	}

	const allocIters = 10
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < allocIters; i++ {
		c.Encode(data, parity) //nolint:errcheck // validated above
	}
	runtime.ReadMemStats(&m1)
	allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / allocIters

	start := time.Now()
	iters := 0
	for time.Since(start) < 200*time.Millisecond {
		c.Encode(data, parity) //nolint:errcheck // validated above
		iters++
	}
	elapsed := time.Since(start).Seconds()
	return float64(iters) * 6 * float64(size) / elapsed / 1e9, allocsPerOp
}

// ecSteadyStateAllocs pins the zero-allocation invariant of the two
// hot erasure update paths: single-delta UpdateOne and batched
// ApplyDeltas.
func ecSteadyStateAllocs(blockSize int) (updateAllocs, applyAllocs float64) {
	c, err := erasure.NewXor(6)
	if err != nil {
		return -1, -1
	}
	align := c.SegmentAlign()
	size := blockSize / align * align
	rng := rand.New(rand.NewSource(2))
	parity := make([]byte, size)
	delta := make([]byte, size)
	rng.Read(delta)
	deltas := make([]erasure.ShardDelta, 3)
	for i := range deltas {
		deltas[i] = erasure.ShardDelta{DI: i, B: delta}
	}
	c.UpdateOne(1, parity, 0, 0, delta) // warm the scratch pool
	const iters = 10
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		c.UpdateOne(1, parity, 0, 0, delta)
	}
	runtime.ReadMemStats(&m1)
	updateAllocs = float64(m1.Mallocs-m0.Mallocs) / iters
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		c.ApplyDeltas(1, parity, deltas)
	}
	runtime.ReadMemStats(&m1)
	applyAllocs = float64(m1.Mallocs-m0.Mallocs) / iters
	return updateAllocs, applyAllocs
}
