package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("verbs", "Measured verbs per operation vs the paper's cost model", runVerbs)
}

// verbModel is the paper's per-request verb budget in steady state
// (CacheSlotAddr on, 2 delta copies, §3.1/§3.5): reads, writes, CAS
// and doorbells per operation.
//
//	INSERT      = bucket-pair batch read (2 reads, 1 doorbell)
//	            + {KV, 2 deltas} write batch (3 writes, 1 doorbell)
//	            + commit CAS (1 doorbell)
//	            + Meta length-hint repair write (1 doorbell)
//	UPDATE      = write batch + commit CAS (cache supplies the slot)
//	SEARCH hit  = one {KV, slot-Atomic} validation batch
//	SEARCH cold = bucket-pair batch + KV read
//	DELETE      = {tombstone, 2 deltas} batch + CAS + Meta repair
//	              (the tombstone's size class differs, so the length
//	              hint is always rewritten)
var verbModel = []struct {
	name                         string
	reads, writes, cas, doorbell float64
}{
	{"INSERT", 2, 4, 1, 4},
	{"UPDATE", 0, 3, 1, 2},
	{"SEARCH hit", 2, 0, 0, 1},
	{"SEARCH cold", 3, 0, 0, 2},
	{"DELETE", 0, 4, 1, 3},
}

// verbSeg is one measured workload segment: the verb-counter delta
// over ops operations of one kind.
type verbSeg struct {
	name string
	ops  int
	d    obs.FabricSnapshot
}

func (s verbSeg) per(n uint64) float64 { return float64(n) / float64(s.ops) }

// runVerbs measures verbs per operation with a single client whose ctx
// is the only instrumented one on the fabric, so counter deltas between
// segments are exact. A second client performs the cold searches (its
// cache is empty) and then the cached deletes (its searches filled it).
func runVerbs(o Options) (*Result, error) {
	so := o
	so.Clients = 1
	so.CNs = 1
	n := so.OpsPerClient
	cfg := acesoConfig(so, 2*n, func(cfg *core.Config) {
		// This experiment validates the paper's two-phase cost model, so
		// the single-RTT optimizations are pinned off: a fused commit
		// folds the UPDATE/DELETE CAS doorbell into the placement batch
		// (see the writeperf experiment for the fused counts), and the
		// prefetch worker's allocation RPCs would smear into segments.
		cfg.FusedCommit = false
		cfg.BlockPrefetch = false
	})
	r, err := newAcesoRun(so, cfg)
	if err != nil {
		return nil, err
	}
	defer r.shutdown()

	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = workload.MicroKey(0, uint64(i))
	}
	var segs []verbSeg
	var runErr error
	// warm opens the client's DATA/DELTA blocks for both size classes
	// (value and tombstone) so block-allocation traffic stays out of
	// the measured segments.
	warm := func(c kvClient, client int) {
		for i := 0; i < 8 && runErr == nil; i++ {
			k := workload.MicroKey(client, uint64(n+i))
			if err := c.Insert(k, workload.Value(k, so.KVSize)); err != nil {
				runErr = fmt.Errorf("warmup insert: %w", err)
				return
			}
			if err := c.Delete(k); err != nil {
				runErr = fmt.Errorf("warmup delete: %w", err)
			}
		}
	}
	seg := func(name string, fn func(k []byte) error) {
		if runErr != nil {
			return
		}
		before := r.fm.Snapshot()
		for _, k := range keys {
			if err := fn(k); err != nil {
				runErr = fmt.Errorf("%s %q: %w", name, k, err)
				return
			}
		}
		segs = append(segs, verbSeg{name: name, ops: n, d: r.fm.Snapshot().Sub(before)})
	}
	runClient := func(i int, name string, body func(c kvClient)) error {
		done := false
		r.spawn(i, name, func(c kvClient) {
			body(c)
			done = true
		})
		eng := r.pl.Engine()
		limit := eng.Now() + 10*time.Minute
		for !done && eng.Now() < limit {
			eng.Run(eng.Now() + time.Millisecond)
		}
		if !done {
			return fmt.Errorf("bench: verbs client %q stalled", name)
		}
		return runErr
	}

	// Client 1: fresh inserts, then cached updates and cache-hit
	// searches of its own keys.
	err = runClient(0, "verbs-writer", func(c kvClient) {
		warm(c, 0)
		seg("INSERT", func(k []byte) error { return c.Insert(k, workload.Value(k, so.KVSize)) })
		seg("UPDATE", func(k []byte) error { return c.Update(k, workload.Value(k, so.KVSize)) })
		seg("SEARCH hit", func(k []byte) error { _, err := c.Search(k); return err })
	})
	if err != nil {
		return nil, err
	}
	// Client 2: never saw the keys, so every first search is a cache
	// miss; afterwards its cache holds every slot, so the deletes take
	// the cached-write path.
	err = runClient(0, "verbs-reader", func(c kvClient) {
		warm(c, 1)
		seg("SEARCH cold", func(k []byte) error { _, err := c.Search(k); return err })
		seg("DELETE", func(k []byte) error { return c.Delete(k) })
	})
	if err != nil {
		return nil, err
	}

	res := &Result{ID: "verbs", Title: "Verbs per operation, measured vs cost model"}
	rows := []struct {
		name string
		get  func(verbSeg) float64
		want func(int) float64
	}{
		{"reads/op", func(s verbSeg) float64 { return s.per(s.d.OpCount(rdma.OpRead)) },
			func(i int) float64 { return verbModel[i].reads }},
		{"writes/op", func(s verbSeg) float64 { return s.per(s.d.OpCount(rdma.OpWrite)) },
			func(i int) float64 { return verbModel[i].writes }},
		{"CAS/op", func(s verbSeg) float64 { return s.per(s.d.OpCount(rdma.OpCAS)) },
			func(i int) float64 { return verbModel[i].cas }},
		{"doorbells/op", func(s verbSeg) float64 { return s.per(s.d.Doorbells()) },
			func(i int) float64 { return verbModel[i].doorbell }},
	}
	worst := 0.0
	for _, row := range rows {
		meas := &stats.Series{Name: row.name}
		model := &stats.Series{Name: row.name + " (model)"}
		for i, s := range segs {
			got, want := row.get(s), row.want(i)
			meas.Add(s.name, got)
			model.Add(s.name, want)
			if dev := got - want; want > 0 {
				if dev < 0 {
					dev = -dev
				}
				if rel := dev / want; rel > worst {
					worst = rel
				}
			}
		}
		res.Series = append(res.Series, meas, model)
	}
	res.Notes = append(res.Notes,
		"model: steady state with slot-address cache and 2 delta copies; see DESIGN.md Observability",
		"fused commit and block prefetch pinned off to match the paper's two-phase model (writeperf measures the fused path)",
		fmt.Sprintf("worst deviation from model %.1f%% (tolerance 10%%: allocation RPCs, fingerprint collisions and CAS retries add verbs)", worst*100))
	return res, nil
}
