package bench

import (
	"testing"
)

// These tests pin the qualitative results of the paper — who wins and
// in what direction — at smoke scale, so a regression in the store or
// the cost model that flips a headline conclusion fails CI rather than
// silently producing a wrong EXPERIMENTS.md.

func TestShapeFig1aReplicationDegradesWrites(t *testing.T) {
	res, err := Run("fig1a", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) []float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Values
			}
		}
		t.Fatalf("missing series %s", name)
		return nil
	}
	for _, op := range []string{"UPDATE Mops", "INSERT Mops", "DELETE Mops"} {
		v := find(op)
		if !(v[0] > v[1] && v[1] > v[2]) {
			t.Errorf("%s does not degrade with replicas: %v", op, v)
		}
		if v[2] > v[0]*0.75 {
			t.Errorf("%s at r=3 only %.0f%% below r=1; replication cost missing", op, (1-v[2]/v[0])*100)
		}
	}
	search := find("SEARCH Mops")
	if search[2] < search[0]*0.9 {
		t.Errorf("SEARCH should be replica-insensitive: %v", search)
	}
	cas := find("UPDATE CAS/op")
	if cas[0] < 0.9 || cas[0] > 1.1 || cas[2] < 2.9 || cas[2] > 3.2 {
		t.Errorf("UPDATE CAS counts wrong: %v (want ~1 at r=1, ~3 at r=3)", cas)
	}
}

func TestShapeFig8AcesoWinsWrites(t *testing.T) {
	res, err := Run("fig8", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var norm []float64
	var labels []string
	for _, s := range res.Series {
		if s.Name == "normalized" {
			norm = s.Values
			labels = s.Labels
		}
	}
	for i, lbl := range labels {
		switch lbl {
		case "INSERT", "UPDATE", "DELETE":
			if norm[i] < 1.3 {
				t.Errorf("%s normalized %.2f, want >= 1.3 (paper: up to 2.67)", lbl, norm[i])
			}
		case "SEARCH":
			if norm[i] < 0.9 {
				t.Errorf("SEARCH normalized %.2f, want >= 0.9", norm[i])
			}
		}
	}
}

func TestShapeFig9AcesoCutsLatency(t *testing.T) {
	res, err := Run("fig9", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float64{}
	for _, s := range res.Series {
		vals[s.Name] = s.Values
	}
	// UPDATE is column 1 in the microKinds order.
	if vals["Aceso P50"][1] >= vals["FUSEE P50"][1] {
		t.Errorf("Aceso UPDATE P50 (%v) not below FUSEE (%v)", vals["Aceso P50"][1], vals["FUSEE P50"][1])
	}
	if vals["Aceso P99"][1] >= vals["FUSEE P99"][1] {
		t.Errorf("Aceso UPDATE P99 (%v) not below FUSEE (%v)", vals["Aceso P99"][1], vals["FUSEE P99"][1])
	}
}

func TestShapeFig12SpaceSaving(t *testing.T) {
	res, err := Run("fig12", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var aceso, fusee float64
	for _, s := range res.Series {
		if s.Name == "Total" {
			aceso, fusee = s.Values[0], s.Values[1]
		}
	}
	saving := 1 - aceso/fusee
	if saving < 0.2 {
		t.Errorf("space saving %.0f%%, want >= 20%% (paper: 44%%)", saving*100)
	}
}

func TestShapeTab2XORBeatsRS(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock kernel comparison is skewed by race instrumentation")
	}
	res, err := Run("tab2", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name, col string) float64 {
		for _, s := range res.Series {
			if s.Name != name {
				continue
			}
			for i, lbl := range s.Labels {
				if lbl == col {
					return s.Values[i]
				}
			}
		}
		t.Fatalf("missing %s/%s", name, col)
		return 0
	}
	xorTpt := get("xor", "TestTpt GB/s")
	rsTpt := get("rs", "TestTpt GB/s")
	if xorTpt <= rsTpt {
		t.Errorf("XOR kernel %.2f GB/s not faster than RS %.2f GB/s (paper: +68%%)", xorTpt, rsTpt)
	}
	if get("xor", "Total") > get("rs", "Total") {
		t.Errorf("XOR total recovery (%.1f ms) slower than RS (%.1f ms)",
			get("xor", "Total"), get("rs", "Total"))
	}
}

func TestShapeFig15AcesoLeadsAtAllRatios(t *testing.T) {
	res, err := Run("fig15", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var norm []float64
	for _, s := range res.Series {
		if s.Name == "normalized" {
			norm = s.Values
		}
	}
	// The write-heavy end must favour Aceso clearly.
	last := norm[len(norm)-1]
	if last < 1.3 {
		t.Errorf("100%%-UPDATE normalized %.2f, want >= 1.3", last)
	}
}

func TestShapeAblDeltaCopiesCost(t *testing.T) {
	res, err := Run("abl2", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var tput, writes []float64
	for _, s := range res.Series {
		switch s.Name {
		case "UPDATE Mops":
			tput = s.Values
		case "writes/op":
			writes = s.Values
		}
	}
	if writes[0] >= writes[1] {
		t.Errorf("1 delta copy should issue fewer writes: %v", writes)
	}
	if tput[0] <= tput[1] {
		t.Errorf("1 delta copy should be faster: %v", tput)
	}
}
