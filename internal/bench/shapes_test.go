package bench

import (
	"testing"

	"repro/internal/stats"
)

// These tests pin the qualitative results of the paper — who wins and
// in what direction — at smoke scale, so a regression in the store or
// the cost model that flips a headline conclusion fails CI rather than
// silently producing a wrong EXPERIMENTS.md.

func TestShapeFig1aReplicationDegradesWrites(t *testing.T) {
	res, err := Run("fig1a", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) []float64 {
		for _, s := range res.Series {
			if s.Name == name {
				return s.Values
			}
		}
		t.Fatalf("missing series %s", name)
		return nil
	}
	for _, op := range []string{"UPDATE Mops", "INSERT Mops", "DELETE Mops"} {
		v := find(op)
		if !(v[0] > v[1] && v[1] > v[2]) {
			t.Errorf("%s does not degrade with replicas: %v", op, v)
		}
		if v[2] > v[0]*0.75 {
			t.Errorf("%s at r=3 only %.0f%% below r=1; replication cost missing", op, (1-v[2]/v[0])*100)
		}
	}
	search := find("SEARCH Mops")
	if search[2] < search[0]*0.9 {
		t.Errorf("SEARCH should be replica-insensitive: %v", search)
	}
	cas := find("UPDATE CAS/op")
	if cas[0] < 0.9 || cas[0] > 1.1 || cas[2] < 2.9 || cas[2] > 3.2 {
		t.Errorf("UPDATE CAS counts wrong: %v (want ~1 at r=1, ~3 at r=3)", cas)
	}
}

func TestShapeFig8AcesoWinsWrites(t *testing.T) {
	res, err := Run("fig8", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var norm []float64
	var labels []string
	for _, s := range res.Series {
		if s.Name == "normalized" {
			norm = s.Values
			labels = s.Labels
		}
	}
	for i, lbl := range labels {
		switch lbl {
		case "INSERT", "UPDATE", "DELETE":
			if norm[i] < 1.3 {
				t.Errorf("%s normalized %.2f, want >= 1.3 (paper: up to 2.67)", lbl, norm[i])
			}
		case "SEARCH":
			if norm[i] < 0.9 {
				t.Errorf("SEARCH normalized %.2f, want >= 0.9", norm[i])
			}
		}
	}
}

func TestShapeFig9AcesoCutsLatency(t *testing.T) {
	res, err := Run("fig9", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float64{}
	for _, s := range res.Series {
		vals[s.Name] = s.Values
	}
	// UPDATE is column 1 in the microKinds order.
	if vals["Aceso P50"][1] >= vals["FUSEE P50"][1] {
		t.Errorf("Aceso UPDATE P50 (%v) not below FUSEE (%v)", vals["Aceso P50"][1], vals["FUSEE P50"][1])
	}
	if vals["Aceso P99"][1] >= vals["FUSEE P99"][1] {
		t.Errorf("Aceso UPDATE P99 (%v) not below FUSEE (%v)", vals["Aceso P99"][1], vals["FUSEE P99"][1])
	}
}

func TestShapeFig12SpaceSaving(t *testing.T) {
	res, err := Run("fig12", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var aceso, fusee float64
	for _, s := range res.Series {
		if s.Name == "Total" {
			aceso, fusee = s.Values[0], s.Values[1]
		}
	}
	saving := 1 - aceso/fusee
	if saving < 0.2 {
		t.Errorf("space saving %.0f%%, want >= 20%% (paper: 44%%)", saving*100)
	}
}

// TestShapeTab2RecoveryEquivalence pins the non-timing half of Table 2:
// recovery under the XOR code walks exactly the same block and KV
// population as under RS (same metadata, same scan), and both kernels
// report positive throughput. Wall-clock superiority of the XOR kernel
// is no longer asserted here — timing comparisons were flaky under
// load and inverted under race instrumentation; the erasure package's
// count-based cost-model test (TestXorCostModelBeatsRS) plus the CI
// benchmark job cover the performance claim.
func TestShapeTab2RecoveryEquivalence(t *testing.T) {
	res, err := Run("tab2", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name, col string) float64 {
		for _, s := range res.Series {
			if s.Name != name {
				continue
			}
			for i, lbl := range s.Labels {
				if lbl == col {
					return s.Values[i]
				}
			}
		}
		t.Fatalf("missing %s/%s", name, col)
		return 0
	}
	for _, col := range []string{"LBlk#", "RBlk#", "KV#", "OldLBlk#"} {
		x, r := get("xor", col), get("rs", col)
		if x != r {
			t.Errorf("%s differs between codes: xor %.0f, rs %.0f", col, x, r)
		}
	}
	if get("xor", "KV#") <= 0 {
		t.Error("recovery scanned no KVs; the experiment lost its workload")
	}
	for _, code := range []string{"xor", "rs"} {
		if get(code, "Total") <= 0 {
			t.Errorf("%s recovery reported non-positive total time", code)
		}
		if get(code, "TestTpt GB/s") <= 0 {
			t.Errorf("%s kernel reported non-positive throughput", code)
		}
	}
}

func TestShapeFig15AcesoLeadsAtAllRatios(t *testing.T) {
	res, err := Run("fig15", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var norm []float64
	for _, s := range res.Series {
		if s.Name == "normalized" {
			norm = s.Values
		}
	}
	// The write-heavy end must favour Aceso clearly.
	last := norm[len(norm)-1]
	if last < 1.3 {
		t.Errorf("100%%-UPDATE normalized %.2f, want >= 1.3", last)
	}
}

func TestShapeAblDeltaCopiesCost(t *testing.T) {
	res, err := Run("abl2", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var tput, writes []float64
	for _, s := range res.Series {
		switch s.Name {
		case "UPDATE Mops":
			tput = s.Values
		case "writes/op":
			writes = s.Values
		}
	}
	if writes[0] >= writes[1] {
		t.Errorf("1 delta copy should issue fewer writes: %v", writes)
	}
	if tput[0] <= tput[1] {
		t.Errorf("1 delta copy should be faster: %v", tput)
	}
}

// TestShapeTCPPerf checks the tcpperf experiment's structure without
// asserting wall-clock ratios (timing on shared CI cores is noise):
// both modes produce a row per client count, throughput is nonzero,
// and the striped mode's steady-state client path stays within a small
// allocs-per-op ceiling — the zero-allocation claim, counted rather
// than timed.
func TestShapeTCPPerf(t *testing.T) {
	res, err := Run("tcpperf", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := res.Summary.(*tcpPerfSummary)
	if !ok {
		t.Fatalf("summary has type %T, want *tcpPerfSummary", res.Summary)
	}
	if len(sum.Rows) != 4 { // 2 modes x 2 client counts in quick mode
		t.Fatalf("got %d rows, want 4: %+v", len(sum.Rows), sum.Rows)
	}
	for _, r := range sum.Rows {
		if r.Mops <= 0 || r.MBps <= 0 {
			t.Errorf("%s/%d: nonpositive throughput: %+v", r.Mode, r.Clients, r)
		}
		if r.P50us <= 0 || r.P99us < r.P50us {
			t.Errorf("%s/%d: implausible latency percentiles: %+v", r.Mode, r.Clients, r)
		}
		// The measured delta includes harness-side allocations
		// (latency slices, goroutine starts), so the ceiling is loose;
		// the strict 0 allocs/op claim is pinned by -benchmem in
		// BenchmarkBurstMix.
		if r.Mode == "striped" && r.AllocsPerOp > 2 {
			t.Errorf("striped/%d: allocs/op = %.2f, want <= 2", r.Clients, r.AllocsPerOp)
		}
	}
	if sum.StripingSpeedup <= 0 {
		t.Errorf("striping ablation ratio not computed: %+v", sum)
	}
}

// TestShapeSloperfDegradedFlip asserts the SLO engine shape: the
// degraded flag flips on after the injected MN kill, at least one
// degraded window is recorded, and the machine-readable summary
// carries per-class totals for all four op classes.
func TestShapeSloperfDegradedFlip(t *testing.T) {
	res, err := Run("sloperf", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := res.Summary.(*sloperfSummary)
	if !ok {
		t.Fatalf("summary type %T", res.Summary)
	}
	if sum.KillWindow < 0 {
		t.Fatal("no kill window recorded")
	}
	if sum.DegradedWindows == 0 {
		t.Fatal("degraded flag never flipped after the kill")
	}
	if sum.TargetP99Us <= 0 {
		t.Fatalf("derived target p99 = %v", sum.TargetP99Us)
	}
	for _, class := range []string{"get", "update", "insert", "delete"} {
		ct, ok := sum.Classes[class]
		if !ok || ct.Ops == 0 {
			t.Fatalf("class %s has no measured ops (%+v)", class, sum.Classes)
		}
	}
	var deg *stats.Series
	for _, s := range res.Series {
		if s.Name == "degraded" {
			deg = s
		}
	}
	if deg == nil {
		t.Fatal("no degraded series")
	}
	flipped := false
	for _, v := range deg.Values {
		if v == 1 {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("degraded series never reads 1")
	}
}

// TestShapeWriteperf pins the fused write path's acceptance criteria
// at smoke scale: >= 1.3x UPDATE p50 improvement on the write-heavy
// mix, a doorbells/op reduction on the pure-update cell (the
// 2 RTT -> 1 RTT headline), real reclamation pressure in the reclaim
// cell, and the knob semantics (baseline never fuses, fused cells do).
func TestShapeWriteperf(t *testing.T) {
	res, err := Run("writeperf", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := res.Summary.(*writePerfSummary)
	if !ok {
		t.Fatalf("summary type %T", res.Summary)
	}
	if sum.UpdateP50Speedup < 1.3 {
		t.Errorf("write-heavy UPDATE p50 speedup %.2fx, acceptance >= 1.3x", sum.UpdateP50Speedup)
	}
	if sum.UpdateDoorbellReduction < 1.3 {
		t.Errorf("pure-update doorbell reduction %.2fx, want >= 1.3x", sum.UpdateDoorbellReduction)
	}
	for _, row := range sum.Rows {
		switch row.Config {
		case "baseline", "prefetch":
			if row.Fused != 0 {
				t.Errorf("%s/%s recorded %d fused commits with fusion off", row.Config, row.Workload, row.Fused)
			}
		case "fused", "fused+prefetch":
			if row.Fused == 0 {
				t.Errorf("%s/%s recorded no fused commits", row.Config, row.Workload)
			}
		}
		if row.Workload == "RECLAIM-UPDATE" && row.Reclaimed == 0 {
			t.Errorf("%s reclaim cell reclaimed no blocks; pressure shape lost", row.Config)
		}
		if row.Config == "fused+prefetch" && row.Workload == "RECLAIM-UPDATE" && row.PrefetchHits == 0 {
			t.Errorf("prefetcher served no refills under block churn")
		}
	}
}
