package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig1a", "FUSEE throughput and CAS count vs index replicas (motivation)", runFig1a)
	register("fig1b", "Throughput under background checkpoint transmission (motivation)", runFig1b)
	register("fig8", "Microbenchmark throughput, Aceso vs FUSEE", runFig8)
	register("fig9", "Microbenchmark P50/P99 latency, Aceso vs FUSEE", runFig9)
	register("fig13", "Factor analysis: ORIGIN -> +SLOT -> +CKPT -> +CACHE", runFig13)
}

// microOps runs the four microbenchmark phases (INSERT, UPDATE,
// SEARCH, DELETE) against a freshly-built runner and returns the
// measurements keyed by op kind. Each measuring client preloads its
// own private key range first (un-timed), so caches and open blocks
// are warm, as after the paper's load phase.
func microOps(build func() (runner, error), o Options) (map[workload.Kind]*measured, error) {
	out := make(map[workload.Kind]*measured)
	keys := o.OpsPerClient
	for _, kind := range []workload.Kind{workload.OpInsert, workload.OpUpdate, workload.OpSearch, workload.OpDelete} {
		r, err := build()
		if err != nil {
			return nil, err
		}
		gens := make([]workload.Generator, o.Clients)
		for i := range gens {
			var timed workload.Generator = workload.NewMicro(kind, i, uint64(keys))
			if kind == workload.OpInsert {
				timed = &offsetMicro{kind: kind, client: i, next: uint64(keys)}
			}
			gens[i] = &seqGen{phases: []workload.Generator{
				workload.NewMicro(workload.OpInsert, i, 0), // preload pass
				timed,
			}, remaining: keys}
		}
		m, err := runPhase(r, gens, keys, o.OpsPerClient, o.KVSize, 10*time.Minute)
		r.shutdown()
		if err != nil {
			return nil, fmt.Errorf("%v phase: %w", kind, err)
		}
		out[kind] = m
	}
	return out, nil
}

// seqGen runs one generator for a fixed count, then switches to the
// next (preload pass followed by the timed op stream).
type seqGen struct {
	phases    []workload.Generator
	remaining int
}

func (g *seqGen) Next() workload.Op {
	if g.remaining > 0 && len(g.phases) > 1 {
		g.remaining--
		return g.phases[0].Next()
	}
	return g.phases[len(g.phases)-1].Next()
}

// offsetMicro issues one op kind over a client's private keys starting
// at a fixed offset (fresh keys for INSERT phases).
type offsetMicro struct {
	kind   workload.Kind
	client int
	next   uint64
}

func (g *offsetMicro) Next() workload.Op {
	k := workload.MicroKey(g.client, g.next)
	g.next++
	return workload.Op{Kind: g.kind, Key: k}
}

var microKinds = []workload.Kind{workload.OpInsert, workload.OpUpdate, workload.OpSearch, workload.OpDelete}

func buildAceso(o Options, mutate func(*core.Config)) func() (runner, error) {
	return func() (runner, error) {
		return newAcesoRun(o, acesoConfig(o, o.Clients*o.OpsPerClient*2, mutate))
	}
}

func buildFusee(o Options, replicas, slotBytes int) func() (runner, error) {
	return func() (runner, error) {
		return newFuseeRun(o, fuseeConfig(o, o.Clients*o.OpsPerClient*2, replicas, slotBytes))
	}
}

// runFig1a reproduces Figure 1(a): FUSEE throughput and average CAS
// count per request as the index replication factor grows 1 -> 3.
func runFig1a(o Options) (*Result, error) {
	res := &Result{ID: "fig1a", Title: "FUSEE under different numbers of index replicas (micro)"}
	tptRows := map[workload.Kind]*stats.Series{}
	casRows := map[workload.Kind]*stats.Series{}
	for _, kind := range microKinds {
		tptRows[kind] = &stats.Series{Name: kind.String() + " Mops"}
		casRows[kind] = &stats.Series{Name: kind.String() + " CAS/op"}
	}
	for _, replicas := range []int{1, 2, 3} {
		ms, err := microOps(buildFusee(o, replicas, 8), o)
		if err != nil {
			return nil, err
		}
		lbl := fmt.Sprintf("r=%d", replicas)
		for _, kind := range microKinds {
			tptRows[kind].Add(lbl, ms[kind].mops())
			casRows[kind].Add(lbl, ms[kind].casPerOp())
		}
	}
	for _, kind := range microKinds {
		res.Series = append(res.Series, tptRows[kind])
	}
	for _, kind := range microKinds {
		res.Series = append(res.Series, casRows[kind])
	}
	res.Notes = append(res.Notes,
		"paper: INSERT/UPDATE/DELETE degrade ~50% from 1 to 3 replicas; SEARCH unaffected (no CAS)")
	return res, nil
}

// runFig1b reproduces Figure 1(b): KV request throughput while MNs
// periodically transmit raw (non-differential) index checkpoints of
// growing size.
func runFig1b(o Options) (*Result, error) {
	res := &Result{ID: "fig1b", Title: "Throughput vs raw checkpoint size (micro)"}
	rows := map[workload.Kind]*stats.Series{}
	for _, kind := range microKinds {
		rows[kind] = &stats.Series{Name: kind.String() + " Mops"}
	}
	sizes := []int{0, 64, 128, 256, 512} // paper-equivalent MB per 500ms
	if o.Quick {
		sizes = []int{0, 512}
	}
	for _, mb := range sizes {
		mb := mb
		for _, kind := range microKinds {
			r, err := newAcesoRun(o, acesoConfig(o, o.Clients*o.OpsPerClient*2, func(cfg *core.Config) {
				cfg.CkptInterval = time.Hour // differential checkpointing off
			}))
			if err != nil {
				return nil, err
			}
			// Background raw-checkpoint traffic: each MN streams
			// mb MB / 500 ms of checkpoint bytes to its neighbour, in
			// 2 ms rounds so the load is smooth at bench timescales.
			if mb > 0 {
				for mn := 0; mn < r.cl.Cfg.Layout.NumMNs; mn++ {
					mn := mn
					node := r.cl.MNNode(mn)
					host := r.cl.L.CkptHostOf(mn, 0)
					slot := r.cl.L.CkptSlotFor(host, mn)
					stagingOff := r.cl.L.CkptStagingOff(slot)
					stagingLen := r.cl.L.CkptStagingBytes()
					r.pl.Spawn(node, fmt.Sprintf("rawckpt-mn%d", mn), func(ctx rdma.Ctx) {
						chunk := make([]byte, 64<<10)
						perRound := mb << 20 / 250 // bytes per 2ms round
						hostNode := r.cl.MNNode(host)
						for {
							sent := 0
							for sent < perRound {
								off := stagingOff + uint64(sent)%(stagingLen-uint64(len(chunk)))
								if err := ctx.Write(rdma.GlobalAddr{Node: hostNode, Off: off}, chunk); err != nil {
									return
								}
								sent += len(chunk)
							}
							ctx.Sleep(2 * time.Millisecond)
						}
					})
				}
			}
			keys := o.OpsPerClient
			gens := make([]workload.Generator, o.Clients)
			for i := range gens {
				var timed workload.Generator = workload.NewMicro(kind, i, uint64(keys))
				if kind == workload.OpInsert {
					timed = &offsetMicro{kind: kind, client: i, next: uint64(keys)}
				}
				gens[i] = &seqGen{phases: []workload.Generator{
					workload.NewMicro(workload.OpInsert, i, 0),
					timed,
				}, remaining: keys}
			}
			m, err := runPhase(r, gens, keys, o.OpsPerClient, o.KVSize, 10*time.Minute)
			r.shutdown()
			if err != nil {
				return nil, err
			}
			rows[kind].Add(fmt.Sprintf("%dMB", mb), m.mops())
		}
	}
	for _, kind := range microKinds {
		res.Series = append(res.Series, rows[kind])
	}
	res.Notes = append(res.Notes,
		"paper: SEARCH drops ~25% at 512MB checkpoints; motivates differential checkpointing")
	return res, nil
}

// runFig8 reproduces Figure 8: microbenchmark throughput of Aceso vs
// FUSEE (replication factor 3) with normalised coefficients.
func runFig8(o Options) (*Result, error) {
	aceso, err := microOps(buildAceso(o, nil), o)
	if err != nil {
		return nil, err
	}
	fus, err := microOps(buildFusee(o, 3, 8), o)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig8", Title: "Microbenchmark throughput (Mops)"}
	sa := &stats.Series{Name: "Aceso"}
	sf := &stats.Series{Name: "FUSEE"}
	sn := &stats.Series{Name: "normalized"}
	for _, kind := range microKinds {
		lbl := kind.String()
		sa.Add(lbl, aceso[kind].mops())
		sf.Add(lbl, fus[kind].mops())
		sn.Add(lbl, stats.Ratio(aceso[kind].mops(), fus[kind].mops()))
	}
	res.Series = append(res.Series, sa, sf, sn)
	res.Notes = append(res.Notes,
		"paper: writes improve up to 2.67x (DELETE most), SEARCH modestly")
	return res, nil
}

// runFig9 reproduces Figure 9: P50/P99 latency of each request type.
func runFig9(o Options) (*Result, error) {
	aceso, err := microOps(buildAceso(o, nil), o)
	if err != nil {
		return nil, err
	}
	fus, err := microOps(buildFusee(o, 3, 8), o)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig9", Title: "Microbenchmark latency (us)"}
	rows := []struct {
		name string
		m    map[workload.Kind]*measured
		q    float64
	}{
		{"Aceso P50", aceso, 0.50},
		{"FUSEE P50", fus, 0.50},
		{"Aceso P99", aceso, 0.99},
		{"FUSEE P99", fus, 0.99},
	}
	for _, row := range rows {
		s := &stats.Series{Name: row.name}
		for _, kind := range microKinds {
			s.Add(kind.String(), us(row.m[kind].perKind[kind].Percentile(row.q)))
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"paper: Aceso cuts P50 by up to 62% and P99 by up to 54% (one CAS vs three)")
	return res, nil
}

// runFig13 reproduces Figure 13: the factor analysis from FUSEE
// (ORIGIN) through +SLOT (16B slots), +CKPT (checkpointing instead of
// index replication) to +CACHE (slot-address cache) = Aceso.
func runFig13(o Options) (*Result, error) {
	configs := []struct {
		name  string
		build func() (runner, error)
	}{
		{"ORIGIN", buildFusee(o, 3, 8)},
		{"+SLOT", buildFusee(o, 3, 16)},
		{"+CKPT", buildAceso(o, func(cfg *core.Config) { cfg.CacheSlotAddr = false })},
		{"+CACHE", buildAceso(o, nil)},
	}
	res := &Result{ID: "fig13", Title: "Factor analysis (Mops)"}
	for _, cfgCase := range configs {
		ms, err := microOps(cfgCase.build, o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfgCase.name, err)
		}
		s := &stats.Series{Name: cfgCase.name}
		for _, kind := range microKinds {
			s.Add(kind.String(), ms[kind].mops())
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"paper: +SLOT hurts SEARCH (wider buckets); +CKPT boosts writes; +CACHE restores reads")
	return res, nil
}
