package bench

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/workload"
)

// TestScriptedVerbCounts runs a hand-scripted Insert/Search sequence on
// the deterministic fabric and checks the instrumented verb counters
// against exact expectations: the counts are what the paper's cost
// model predicts, not merely close to it.
func TestScriptedVerbCounts(t *testing.T) {
	o := Options{Clients: 1, CNs: 1, OpsPerClient: 20, KVSize: 128}
	r, err := newAcesoRun(o, acesoConfig(o, 100, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer r.shutdown()

	const n = 20
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = workload.MicroKey(0, uint64(i))
	}
	type segDelta struct {
		name string
		d    obs.FabricSnapshot
	}
	var segs []segDelta
	var opErr error
	done := false
	r.spawn(0, "scripted", func(c kvClient) {
		defer func() { done = true }()
		// Open the DATA/DELTA blocks first so allocation RPCs and
		// reused-block reads stay out of the counted segments.
		wk := workload.MicroKey(0, n)
		if opErr = c.Insert(wk, workload.Value(wk, o.KVSize)); opErr != nil {
			return
		}
		seg := func(name string, fn func(k []byte) error) {
			if opErr != nil {
				return
			}
			before := r.fm.Snapshot()
			for _, k := range keys {
				if err := fn(k); err != nil {
					opErr = fmt.Errorf("%s %q: %w", name, k, err)
					return
				}
			}
			segs = append(segs, segDelta{name, r.fm.Snapshot().Sub(before)})
		}
		seg("insert", func(k []byte) error { return c.Insert(k, workload.Value(k, o.KVSize)) })
		seg("search", func(k []byte) error { _, err := c.Search(k); return err })
	})
	eng := r.pl.Engine()
	limit := eng.Now() + time.Minute
	for !done && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
	}
	if !done {
		t.Fatal("scripted client stalled")
	}
	if opErr != nil {
		t.Fatal(opErr)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}

	// INSERT of a fresh key: bucket-pair batch (2 reads), {KV, 2
	// deltas} batch (3 writes), commit CAS, Meta-hint repair post (1
	// write). Doorbells: 2 batches + CAS + post = 4.
	ins := segs[0].d
	if got := ins.OpCount(rdma.OpRead); got != 2*n {
		t.Errorf("insert reads = %d, want %d", got, 2*n)
	}
	if got := ins.OpCount(rdma.OpWrite); got != 4*n {
		t.Errorf("insert writes = %d, want %d", got, 4*n)
	}
	if got := ins.OpCount(rdma.OpCAS); got != n {
		t.Errorf("insert CAS = %d, want %d", got, n)
	}
	if got := ins.Doorbells(); got != 4*n {
		t.Errorf("insert doorbells = %d, want %d", got, 4*n)
	}

	// SEARCH of a just-written key hits the slot-address cache: one
	// {KV, slot-Atomic} validation batch (2 reads, 1 doorbell) and
	// nothing else.
	sea := segs[1].d
	if got := sea.OpCount(rdma.OpRead); got != 2*n {
		t.Errorf("search reads = %d, want %d", got, 2*n)
	}
	if got := sea.OpCount(rdma.OpWrite) + sea.OpCount(rdma.OpCAS); got != 0 {
		t.Errorf("cache-hit search issued %d writes/CAS, want 0", got)
	}
	if got := sea.Doorbells(); got != n {
		t.Errorf("search doorbells = %d, want %d", got, n)
	}
	if got := sea.Calls[obs.CallBatch].Count; got != n {
		t.Errorf("search batch calls = %d, want %d", got, n)
	}
}

// TestVerbsExperimentWithinTolerance runs the registered "verbs"
// experiment end to end and asserts every measured figure stays within
// the documented 10% tolerance of the cost model.
func TestVerbsExperimentWithinTolerance(t *testing.T) {
	res, err := Run("verbs", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || len(res.Series)%2 != 0 {
		t.Fatalf("verbs result has %d series, want measured/model pairs", len(res.Series))
	}
	for i := 0; i < len(res.Series); i += 2 {
		meas, model := res.Series[i], res.Series[i+1]
		for j, got := range meas.Values {
			want := model.Values[j]
			dev := got - want
			if dev < 0 {
				dev = -dev
			}
			if want == 0 {
				if got > 0.1 {
					t.Errorf("%s %s = %.3f, model 0", meas.Name, meas.Labels[j], got)
				}
				continue
			}
			if dev/want > 0.10 {
				t.Errorf("%s %s = %.3f, model %.0f (deviation %.1f%%)",
					meas.Name, meas.Labels[j], got, want, dev/want*100)
			}
		}
	}
}
