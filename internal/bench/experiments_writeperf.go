package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("writeperf", "Fused single-RTT write path: UPDATE latency and doorbells/op, fused x prefetch sweep", runWritePerf)
}

// writePerfRow is one (workload, configuration) cell of the sweep.
type writePerfRow struct {
	Workload       string  `json:"workload"`
	Config         string  `json:"config"`
	Ops            uint64  `json:"ops"`
	Mops           float64 `json:"mops"`
	UpdMeanUs      float64 `json:"update_mean_us"`
	UpdP50Us       float64 `json:"update_p50_us"`
	UpdP99Us       float64 `json:"update_p99_us"`
	DoorbellsPerOp float64 `json:"doorbells_per_op"`
	VerbsPerOp     float64 `json:"verbs_per_op"`
	Fused          uint64  `json:"fused_commits"`
	Fallbacks      uint64  `json:"fallback_commits"`
	PrefetchHits   uint64  `json:"prefetch_hits"`
	PrefetchMisses uint64  `json:"prefetch_misses"`
	DeltaSkips     uint64  `json:"delta_skips"`
	Reclaimed      int     `json:"reclaimed_blocks"`
}

// writePerfSummary is the machine-readable artifact
// (BENCH_writeperf.json): the full sweep plus the tentpole's headline
// acceptance ratios.
type writePerfSummary struct {
	Clients      int            `json:"clients"`
	OpsPerClient int            `json:"ops_per_client"`
	Keys         uint64         `json:"keys"`
	Rows         []writePerfRow `json:"rows"`
	// UpdateP50Speedup is the two-phase baseline's UPDATE p50 over the
	// fused+prefetch p50 on the write-heavy mix (acceptance: >= 1.3x).
	UpdateP50Speedup float64 `json:"update_p50_speedup"`
	// UpdateDoorbellReduction is baseline doorbells/op over
	// fused+prefetch doorbells/op on the pure-update reclamation cell
	// (the 2 RTT -> 1 RTT headline; ideal ~2x).
	UpdateDoorbellReduction float64 `json:"update_doorbell_reduction"`
}

// writePerfConfigs is the fused x prefetch sweep: the two knobs are
// independent, so all four corners run. "baseline" is the paper's
// two-phase commit with synchronous block provisioning.
var writePerfConfigs = []struct {
	name            string
	fused, prefetch bool
}{
	{"fused+prefetch", true, true},
	{"fused", true, false},
	{"prefetch", false, true},
	{"baseline", false, false},
}

// runWritePerf sweeps {fused commit, block prefetch} x {YCSB-A,
// write-heavy, reclamation-pressure} and measures the UPDATE path end
// to end: latency, client-issued doorbells per op, and the fused /
// fallback / prefetch counter surface. The reclamation cell is a
// pure-update overwrite workload under tight stripe geometry, so
// blocks cross the obsolete threshold and updates land in reclaimed
// (reused) blocks whose placement still fuses.
func runWritePerf(o Options) (*Result, error) {
	o.Clients = 8
	o.CNs = 4
	if o.Quick {
		o.OpsPerClient = 400
	} else if o.OpsPerClient < 2500 {
		o.OpsPerClient = 2500
	}
	keys := uint64(o.Clients*o.OpsPerClient) / 8
	if keys < 500 {
		keys = 500
	}
	writeHeavy := workload.UpdateRatio(0.95)
	const reclaimWL = "RECLAIM-UPDATE"
	workloads := []string{workload.YCSBA.Name, writeHeavy.Name, reclaimWL}

	res := &Result{ID: "writeperf", Title: "Fused single-RTT write path (fused x prefetch sweep)"}
	sum := &writePerfSummary{Clients: o.Clients, OpsPerClient: o.OpsPerClient, Keys: keys}

	cells := map[string]map[string]writePerfRow{}
	for _, spec := range writePerfConfigs {
		cells[spec.name] = map[string]writePerfRow{}
		for _, wl := range workloads {
			row, err := writePerfCell(o, spec.name, spec.fused, spec.prefetch, wl, writeHeavy, keys)
			if err != nil {
				return nil, fmt.Errorf("writeperf %s/%s: %w", spec.name, wl, err)
			}
			cells[spec.name][wl] = row
			sum.Rows = append(sum.Rows, row)
		}
	}

	for _, spec := range writePerfConfigs {
		sp50 := &stats.Series{Name: "UPDATE p50 µs " + spec.name}
		sp99 := &stats.Series{Name: "UPDATE p99 µs " + spec.name}
		sdb := &stats.Series{Name: "doorbells/op " + spec.name}
		smops := &stats.Series{Name: "Mops " + spec.name}
		for _, wl := range workloads {
			row := cells[spec.name][wl]
			sp50.Add(wl, row.UpdP50Us)
			sp99.Add(wl, row.UpdP99Us)
			sdb.Add(wl, row.DoorbellsPerOp)
			smops.Add(wl, row.Mops)
		}
		res.Series = append(res.Series, sp50, sp99, sdb, smops)
	}

	base := cells["baseline"]
	full := cells["fused+prefetch"]
	sum.UpdateP50Speedup = stats.Ratio(base[writeHeavy.Name].UpdP50Us, full[writeHeavy.Name].UpdP50Us)
	sum.UpdateDoorbellReduction = stats.Ratio(base[reclaimWL].DoorbellsPerOp, full[reclaimWL].DoorbellsPerOp)
	res.Summary = sum
	res.Notes = append(res.Notes,
		fmt.Sprintf("%s UPDATE p50: %.1f µs two-phase -> %.1f µs fused+prefetch (%.2fx; acceptance >= 1.3x)",
			writeHeavy.Name, base[writeHeavy.Name].UpdP50Us, full[writeHeavy.Name].UpdP50Us, sum.UpdateP50Speedup),
		fmt.Sprintf("%s doorbells/op: %.2f two-phase -> %.2f fused (%.2fx reduction; the 2 RTT -> 1 RTT headline)",
			reclaimWL, base[reclaimWL].DoorbellsPerOp, full[reclaimWL].DoorbellsPerOp, sum.UpdateDoorbellReduction),
		fmt.Sprintf("fused+prefetch on %s: %d fused / %d fallback commits, %d prefetch hits / %d misses, %d reclaimed blocks",
			reclaimWL, full[reclaimWL].Fused, full[reclaimWL].Fallbacks,
			full[reclaimWL].PrefetchHits, full[reclaimWL].PrefetchMisses, full[reclaimWL].Reclaimed))
	return res, nil
}

// writePerfCell runs one (config, workload) cell on a fresh cluster
// and returns its row. Doorbells/op averages the instrumented client
// verbs over warmup+measured ops (steady-state behaviour is uniform
// within a phase; the prefetch worker's verbs ride an uninstrumented
// ctx, mirroring how a NIC-offloaded helper would not bill the client).
func writePerfCell(o Options, cfgName string, fused, prefetch bool, wl string, writeHeavy workload.Mix, keys uint64) (writePerfRow, error) {
	mutate := func(cfg *core.Config) {
		cfg.FusedCommit = fused
		cfg.BlockPrefetch = prefetch
	}
	var cfg core.Config
	reclaim := wl == "RECLAIM-UPDATE"
	// The reclamation cell overwrites a small working set with pure
	// updates under roughly two working sets' worth of stripe rows, so
	// blocks cross the 75% obsolete threshold mid-run (the shape of
	// reclaimUpdateRun in the recovery experiments).
	keysPerClient := o.OpsPerClient / 4
	if keysPerClient < 32 {
		keysPerClient = 32
	}
	if reclaim {
		lo := o
		lo.OpsPerClient = keysPerClient
		cfg = acesoConfig(lo, 0, func(c *core.Config) {
			mutate(c)
			c.Layout.BlockSize = 64 << 10
			c.BitmapFlushOps = 16
		})
		kvClass := uint64(o.KVSize + 128)
		working := uint64(o.Clients*keysPerClient) * kvClass
		cfg.Layout.StripeRows = int(2*working/cfg.Layout.BlockSize/uint64(cfg.Layout.K())) + 2*o.Clients/cfg.Layout.K() + 4
	} else {
		cfg = acesoConfig(o, int(keys), mutate)
	}
	r, err := newAcesoRun(o, cfg)
	if err != nil {
		return writePerfRow{}, err
	}
	defer r.shutdown()

	var gens []workload.Generator
	var warmup int
	if reclaim {
		if err := preloadMicro(r, o.Clients, keysPerClient, o.KVSize); err != nil {
			return writePerfRow{}, fmt.Errorf("preload: %w", err)
		}
		gens = microGens(workload.OpUpdate, o.Clients, keysPerClient)
		warmup = 2 * keysPerClient // two overwrite passes engage reclamation
	} else {
		if err := preloadKeys(r, o.Clients, keys, o.KVSize); err != nil {
			return writePerfRow{}, fmt.Errorf("preload: %w", err)
		}
		mix := workload.YCSBA
		if wl == writeHeavy.Name {
			mix = writeHeavy
		}
		gens = mixGens(mix, o.Clients, keys)
		warmup = o.OpsPerClient / 2
	}

	s0 := r.fm.Snapshot()
	m, err := runPhase(r, gens, warmup, o.OpsPerClient, o.KVSize, 30*time.Minute)
	if err != nil {
		return writePerfRow{}, err
	}
	s1 := r.fm.Snapshot()

	row := writePerfRow{Workload: wl, Config: cfgName, Ops: m.ops, Mops: m.mops(), Reclaimed: r.cl.Reclaimed()}
	if total := uint64(o.Clients) * uint64(warmup+o.OpsPerClient); total > 0 {
		row.DoorbellsPerOp = float64(s1.Doorbells()-s0.Doorbells()) / float64(total)
	}
	if m.ops > 0 {
		row.VerbsPerOp = float64(m.cas+m.reads+m.writes) / float64(m.ops)
	}
	if h, ok := m.perKind[workload.OpUpdate]; ok {
		row.UpdMeanUs = us(h.Mean())
		row.UpdP50Us = us(h.Percentile(0.50))
		row.UpdP99Us = us(h.Percentile(0.99))
	}
	ws := r.cl.WriteMetrics().Snapshot()
	row.Fused = ws.Fused
	row.Fallbacks = ws.Fallbacks()
	row.PrefetchHits = ws.PrefetchHits
	row.PrefetchMisses = ws.PrefetchMisses
	row.DeltaSkips = ws.DeltaSkips
	return row, nil
}
