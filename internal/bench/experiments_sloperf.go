package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("sloperf", "Windowed SLO tracking through an MN fail-stop", runSloperf)
}

// sloperfSummary is the machine-readable form (BENCH_sloperf.json).
type sloperfSummary struct {
	WindowMs        float64                      `json:"window_ms"`
	Windows         int                          `json:"windows"`
	DegradedWindows int                          `json:"degraded_windows"`
	KillWindow      int                          `json:"kill_window"`
	RecoveredWindow int                          `json:"recovered_window"`
	TargetP99Us     float64                      `json:"target_p99_us"`
	Budget          float64                      `json:"budget"`
	PeakBurn        map[string]float64           `json:"peak_burn"`
	Classes         map[string]sloperfClassTotal `json:"classes"`
}

type sloperfClassTotal struct {
	Ops      uint64  `json:"ops"`
	Errors   uint64  `json:"errors"`
	Breaches uint64  `json:"breaches"`
	P99Us    float64 `json:"p99_us"`
}

// sloMixGen cycles each client through all four op classes over its
// private micro key range: mostly SEARCHes on preloaded keys, periodic
// UPDATEs, and an INSERT immediately reclaimed by a DELETE so the
// keyspace stays stable across windows.
type sloMixGen struct {
	client int
	keys   uint64
	n      uint64
	fresh  uint64
}

func (g *sloMixGen) next() (workload.Op, obs.SLOClass) {
	i := g.n % 8
	g.n++
	switch i {
	case 3:
		return workload.Op{Kind: workload.OpUpdate, Key: workload.MicroKey(g.client, g.n%g.keys)}, obs.SLOUpdate
	case 5:
		g.fresh++
		return workload.Op{Kind: workload.OpInsert, Key: workload.MicroKey(g.client, g.keys+g.fresh)}, obs.SLOInsert
	case 7:
		return workload.Op{Kind: workload.OpDelete, Key: workload.MicroKey(g.client, g.keys+g.fresh)}, obs.SLODelete
	default:
		return workload.Op{Kind: workload.OpSearch, Key: workload.MicroKey(g.client, g.n%g.keys)}, obs.SLOGet
	}
}

// runSloperf drives the SLO engine end to end on the simulated fabric:
// clients run a four-class mix while virtual time advances in fixed
// reporting windows; after a few clean windows one MN is fail-stopped,
// the degraded flag follows the recovery state machine, and the
// per-window burn rate shows the failure's tail-latency cost. The
// latency target is derived from the clean windows (1.5x observed GET
// p99), so burn is meaningful at any simulation scale.
func runSloperf(o Options) (*Result, error) {
	keys := o.OpsPerClient
	lc, err := loadCluster(o, keys, 1, nil)
	if err != nil {
		return nil, err
	}
	defer lc.r.shutdown()

	const budget = 0.05
	slo := obs.NewSLOTracker(obs.SLOTarget{P99: time.Second, Budget: budget})

	eng := lc.r.pl.Engine()
	running := true
	for i := 0; i < o.Clients; i++ {
		i := i
		lc.r.spawn(i, fmt.Sprintf("slo-cli%d", i), func(c kvClient) {
			g := &sloMixGen{client: i, keys: uint64(keys)}
			now := func() time.Duration { return lc.r.pl.Engine().Now() }
			for running {
				op, class := g.next()
				t0 := now()
				err := execOp(c, op, o.KVSize)
				lat := now() - t0
				failed := err != nil && !errors.Is(err, core.ErrNotFound)
				slo.Observe(class, lat, failed)
			}
		})
	}

	const (
		window      = 2 * time.Millisecond // virtual reporting interval
		cleanBefore = 3                    // windows before the kill
		cleanAfter  = 2                    // windows after recovery completes
		maxWindows  = 60
		victim      = 1
	)
	burnSeries := &stats.Series{Name: "get burn"}
	p99Series := &stats.Series{Name: "get p99 (us)"}
	degSeries := &stats.Series{Name: "degraded"}
	peak := map[string]float64{}
	targetSet := false
	var target obs.SLOTarget
	killWindow, recoveredWindow := -1, -1
	degradedWindows := 0
	w := 0
	for ; w < maxWindows; w++ {
		eng.Run(eng.Now() + window)

		if w == cleanBefore-1 {
			// Clean windows done: pin the latency target off observed
			// behaviour so post-kill breaches register.
			p99 := slo.Report(obs.SLOGet).P99
			target = obs.SLOTarget{P99: p99 + p99/2, Budget: budget}
			for c := obs.SLOClass(0); c < obs.NumSLOClasses; c++ {
				slo.SetTarget(c, target)
			}
			targetSet = true
		}
		if w == cleanBefore {
			lc.r.cl.FailMN(victim)
			killWindow = w
		}
		degraded := false
		if killWindow >= 0 {
			failed, _, blocksReady := lc.r.cl.MNState(victim)
			degraded = failed || !blocksReady
			if !degraded && recoveredWindow < 0 {
				recoveredWindow = w
			}
		}
		slo.SetDegraded(degraded)
		if degraded {
			degradedWindows++
		}
		slo.Rotate()

		if targetSet {
			rep := slo.Report(obs.SLOGet)
			lbl := fmt.Sprintf("w%d", w)
			burnSeries.Add(lbl, rep.BurnRate)
			p99Series.Add(lbl, us(rep.P99))
			deg := 0.0
			if degraded {
				deg = 1
			}
			degSeries.Add(lbl, deg)
			for _, r := range slo.Reports() {
				if r.BurnRate > peak[r.Class.String()] {
					peak[r.Class.String()] = r.BurnRate
				}
			}
		}
		if recoveredWindow >= 0 && w >= recoveredWindow+cleanAfter {
			w++
			break
		}
	}
	running = false
	eng.Run(eng.Now() + time.Millisecond)

	if killWindow < 0 {
		return nil, fmt.Errorf("bench: sloperf never reached the kill window")
	}
	if degradedWindows == 0 {
		return nil, fmt.Errorf("bench: degraded flag never flipped after the mn%d kill", victim)
	}

	sum := &sloperfSummary{
		WindowMs:        ms(window),
		Windows:         w,
		DegradedWindows: degradedWindows,
		KillWindow:      killWindow,
		RecoveredWindow: recoveredWindow,
		TargetP99Us:     us(target.P99),
		Budget:          budget,
		PeakBurn:        peak,
		Classes:         map[string]sloperfClassTotal{},
	}
	for _, r := range slo.Reports() {
		if r.TotalOps == 0 {
			continue
		}
		sum.Classes[r.Class.String()] = sloperfClassTotal{
			Ops: r.TotalOps, Errors: r.TotalErrs, Breaches: r.TotalBrch, P99Us: us(r.P99),
		}
	}

	res := &Result{
		ID:      "sloperf",
		Title:   "Windowed SLO tracking through an MN fail-stop",
		Series:  []*stats.Series{p99Series, burnSeries, degSeries},
		Summary: sum,
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("target p99 %.0f us (1.5x clean-window GET p99), budget %.0f%%", us(target.P99), budget*100),
		fmt.Sprintf("kill at w%d; %d degraded windows; recovered at w%d", killWindow, degradedWindows, recoveredWindow))
	return res, nil
}
