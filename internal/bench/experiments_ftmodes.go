package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ftmode"
	// Link every fault-tolerance mode into the registry the experiment
	// sweeps over.
	_ "repro/internal/ftmodes"
	"repro/internal/layout"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ftmodes", "Fault-tolerance modes: one workload, one mid-run MN fail-stop", runFTModes)
}

// ftRun is the mode-generic runner: any registered fault-tolerance
// mode behind the same spawn surface as the Aceso and FUSEE runners.
type ftRun struct {
	pl  *simnet.Platform
	ft  ftmode.Cluster
	cns []rdma.NodeID
}

func newFTRun(o Options, cfg core.Config) (*ftRun, error) {
	pl := simnet.New(simnet.DefaultConfig())
	ft, err := core.OpenFT(cfg, pl)
	if err != nil {
		pl.Shutdown()
		return nil, err
	}
	if err := ft.Start(); err != nil {
		pl.Shutdown()
		return nil, err
	}
	r := &ftRun{pl: pl, ft: ft}
	for i := 0; i < o.CNs; i++ {
		r.cns = append(r.cns, pl.AddComputeNode())
	}
	return r, nil
}

func (r *ftRun) platform() *simnet.Platform { return r.pl }
func (r *ftRun) shutdown()                  { r.pl.Shutdown() }

func (r *ftRun) spawn(i int, name string, fn func(kvClient)) {
	cn := r.cns[i%len(r.cns)]
	r.ft.SpawnClient(cn, name, func(c ftmode.Client) { fn(c) })
}

// ftModesConfig sizes one shared core config per mode. The replication
// modes store Replicas full copies instead of parity, so their block
// area gets Replicas× the stripe rows and the index area Replicas× the
// bytes (ConfigFromCore splits it into Replicas hosted partitions,
// keeping the per-partition index comparable to Aceso's per-MN index).
func ftModesConfig(o Options, mode string, totalKeys int) core.Config {
	// 128 KB blocks keep the footprint comparison meaningful at bench
	// scale (with 2 MB blocks each client's open blocks dwarf the
	// payload), matching the recovery experiments' scaled-down loads.
	cfg := acesoConfig(o, totalKeys, func(cfg *core.Config) {
		cfg.Layout.BlockSize = 128 << 10
	})
	cfg.FTMode = mode
	if mode != core.FTModeAceso {
		r := cfg.ReplicaCount()
		cfg.Layout.StripeRows *= r
		cfg.Layout.IndexBytes *= uint64(r)
	}
	return cfg
}

// runPhaseTolerant is runPhase's post-failure variant: operation errors
// are counted instead of aborting the phase (right after a fail-stop a
// client can observe transient errors while it fails over or the master
// republishes the view), and onStep runs after every virtual
// millisecond so the caller can watch recovery progress concurrently
// with the measured load.
func runPhaseTolerant(r runner, gens []workload.Generator, ops, kvSize int, deadline time.Duration, onStep func()) (*measured, error) {
	m := &measured{perKind: make(map[workload.Kind]*stats.Histogram), all: stats.NewHistogram()}
	done := 0
	for i, g := range gens {
		i, g := i, g
		r.spawn(i, fmt.Sprintf("ft-cli%d", i), func(c kvClient) {
			ctxNow := func() time.Duration { return r.platform().Engine().Now() }
			var cas0, reads0, writes0 uint64
			counter, hasCounters := c.(interface {
				Counters() (uint64, uint64, uint64)
			})
			if hasCounters {
				cas0, reads0, writes0 = counter.Counters()
			}
			cliStart := ctxNow()
			for n := 0; n < ops; n++ {
				op := g.Next()
				t0 := ctxNow()
				err := execOp(c, op, kvSize)
				lat := ctxNow() - t0
				switch {
				case err == nil:
				case errors.Is(err, core.ErrNotFound):
					m.notFound++
				default:
					m.errs++
					continue
				}
				h, ok := m.perKind[op.Kind]
				if !ok {
					h = stats.NewHistogram()
					m.perKind[op.Kind] = h
				}
				h.Record(lat)
				m.all.Record(lat)
				m.ops++
			}
			if dur := ctxNow() - cliStart; dur > 0 {
				m.sumRate += float64(ops) / dur.Seconds()
			}
			if fl, ok := c.(interface{ FlushBitmaps() }); ok {
				fl.FlushBitmaps()
			}
			if hasCounters {
				cas1, reads1, writes1 := counter.Counters()
				m.cas += cas1 - cas0
				m.reads += reads1 - reads0
				m.writes += writes1 - writes0
			}
			done++
		})
	}
	eng := r.platform().Engine()
	start := eng.Now()
	limit := start + deadline
	for done < len(gens) && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
		if onStep != nil {
			onStep()
		}
	}
	if done < len(gens) {
		return nil, fmt.Errorf("bench: tolerant phase stalled (%d/%d clients finished)", done, len(gens))
	}
	m.window = eng.Now() - start
	return m, nil
}

// ftModeRow is one mode's machine-readable summary entry.
type ftModeRow struct {
	Mode        string  `json:"mode"`
	TputMops    float64 `json:"tput_mops"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	PostTput    float64 `json:"post_fail_tput_mops"`
	PostP99us   float64 `json:"post_fail_p99_us"`
	PostErrs    uint64  `json:"post_fail_errors"`
	VerbsPerOp  float64 `json:"verbs_per_op"`
	CASPerOp    float64 `json:"cas_per_op"`
	SpaceAmp    float64 `json:"space_amp"`
	RecoveryMs  float64 `json:"recovery_ms"`
	ReadFailovr bool    `json:"read_failover"`
}

// runFTModes runs the identical workload — preload, YCSB-A measured
// phase, a fail-stop of the same MN at the same point, and a second
// measured phase — against every registered fault-tolerance mode, and
// tabulates throughput, tail latency, verb cost, space amplification
// and recovery time side by side.
func runFTModes(o Options) (*Result, error) {
	res := &Result{
		ID:    "ftmodes",
		Title: "Fault-tolerance modes under YCSB-A with a mid-run MN fail-stop",
	}
	n := macroKeys(o)
	const victim = 1
	logicalBytes := float64(n) * float64(layout.KVClassSize(len(workload.KeyName(0)), o.KVSize))
	var rows []ftModeRow
	for _, mode := range core.FTModes() {
		r, err := newFTRun(o, ftModesConfig(o, mode, int(n)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		if err := preloadKeys(r, o.Clients, n, o.KVSize); err != nil {
			r.shutdown()
			return nil, fmt.Errorf("%s preload: %w", mode, err)
		}

		// Healthy measured phase: identical generators in every mode.
		gens := mixGens(workload.YCSBA, o.Clients, n)
		m1, err := runPhase(r, gens, o.OpsPerClient/4, o.OpsPerClient, o.KVSize, 10*time.Minute)
		if err != nil {
			r.shutdown()
			return nil, fmt.Errorf("%s healthy phase: %w", mode, err)
		}

		// The same mid-run fail-stop, at the same workload point.
		eng := r.pl.Engine()
		tFail := eng.Now()
		r.ft.FailMN(victim)

		// Post-failure phase: the generators continue; recovery (if the
		// mode runs one) overlaps the measured load, watched per step.
		recoveryMs := -1.0
		watch := func() {
			if recoveryMs >= 0 || !r.ft.Caps().TieredRecovery {
				return
			}
			if _, _, blocksReady := r.ft.MNState(victim); blocksReady {
				recoveryMs = ms(eng.Now() - tFail)
			}
		}
		m2, err := runPhaseTolerant(r, gens, o.OpsPerClient, o.KVSize, 10*time.Minute, watch)
		if err != nil {
			r.shutdown()
			return nil, fmt.Errorf("%s post-failure phase: %w", mode, err)
		}
		if r.ft.Caps().TieredRecovery && recoveryMs < 0 {
			// The load finished before the rebuild; keep stepping until
			// tier-3 completes so the column is filled.
			limit := eng.Now() + 10*time.Minute
			for recoveryMs < 0 && eng.Now() < limit {
				eng.Run(eng.Now() + time.Millisecond)
				watch()
			}
			if recoveryMs < 0 {
				r.shutdown()
				return nil, fmt.Errorf("%s: recovery did not finish in virtual time", mode)
			}
		}
		if !r.ft.Caps().TieredRecovery {
			// Replica failover: service continues with no rebuild, so
			// there is no recovery window to report.
			recoveryMs = 0
		}

		u := r.ft.Usage()
		row := ftModeRow{
			Mode:        mode,
			TputMops:    m1.mops(),
			P50us:       us(m1.all.Percentile(0.50)),
			P99us:       us(m1.all.Percentile(0.99)),
			PostTput:    m2.mops(),
			PostP99us:   us(m2.all.Percentile(0.99)),
			PostErrs:    m2.errs,
			VerbsPerOp:  float64(m1.cas+m1.reads+m1.writes) / float64(m1.ops),
			CASPerOp:    m1.casPerOp(),
			SpaceAmp:    float64(u.TotalBytes) / logicalBytes,
			RecoveryMs:  recoveryMs,
			ReadFailovr: r.ft.Caps().ReadFailover,
		}
		rows = append(rows, row)
		s := &stats.Series{Name: mode}
		s.Add("tput_mops", row.TputMops)
		s.Add("p50_us", row.P50us)
		s.Add("p99_us", row.P99us)
		s.Add("post_tput_mops", row.PostTput)
		s.Add("post_p99_us", row.PostP99us)
		s.Add("verbs_per_op", row.VerbsPerOp)
		s.Add("cas_per_op", row.CASPerOp)
		s.Add("space_amp", row.SpaceAmp)
		s.Add("recovery_ms", row.RecoveryMs)
		res.Series = append(res.Series, s)
		r.shutdown()
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("YCSB-A over %d keys; fail-stop of mn%d between the two measured halves", n, victim),
		"recovery_ms is time to tier-3 (blocks rebuilt); 0 = replica failover, nothing to rebuild",
		fmt.Sprintf("space_amp = total block bytes / %d logical class bytes", int64(logicalBytes)))
	res.Summary = map[string]any{"modes": rows, "keys": n, "victim": victim}
	return res, nil
}
