package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/rdma"
	"repro/internal/rdma/tcpnet"
	"repro/internal/stats"
)

func init() {
	register("tcpperf", "tcpnet data path: striped locks + connection striping vs global lock", runTCPPerf)
}

// tcpPerfRow is one (mode, client-count) cell of the experiment.
type tcpPerfRow struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients"`
	Mops        float64 `json:"mops"`
	MBps        float64 `json:"mbps"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// tcpPerfSummary is the machine-readable artifact (BENCH_tcpperf.json).
type tcpPerfSummary struct {
	OpBytes      int          `json:"op_bytes"`
	OpsPerClient int          `json:"ops_per_client"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Rows         []tcpPerfRow `json:"rows"`
	// StripingSpeedup is striped-mode over base-mode aggregate Mops at
	// 8 clients (or the largest measured count below that). It is the
	// striping *ablation* on this machine — with GOMAXPROCS=1 the
	// striped shape cannot beat the single-connection shape, since both
	// run the same rewritten framing code and there is no parallelism
	// to unlock. The pre-overhaul baseline comparison (the ≥2x
	// acceptance bar) is benchstat over BenchmarkBurstMix at the seed
	// commit vs this tree; see the notes.
	StripingSpeedup float64 `json:"striping_speedup_at_8_clients"`
}

// runTCPPerf measures the real tcpnet fabric over loopback in two
// shapes: "base" reproduces the pre-overhaul data-path shape (one
// connection per node, one global region lock: Stripes=1,
// ConnsPerNode=1), and "striped" is the shipped default (striped
// region locks, striped connections, pooled zero-alloc framing). Each
// client process runs the small-op mix the KV hot path issues — a
// 32-op doorbell batch of 64 B READs and WRITEs on private offsets
// (§3.5.2-style index/value traffic) with one FAA on a shared word as
// the batch's last op (batched atomics are exactly-once under injected
// chaos: the server acks executed frames before a chaos reset, so
// retries resend only never-executed frames) — and we report aggregate
// throughput, per-burst latency percentiles and allocations per op.
func runTCPPerf(o Options) (*Result, error) {
	const opBytes = 64
	clientCounts := []int{1, 4, 8, 16}
	opsPerClient := 20000
	if o.Quick {
		clientCounts = []int{1, 4}
		opsPerClient = 2000
	}
	if !o.Quick && o.OpsPerClient != 200 { // 200 is the global default, not a user choice
		opsPerClient = o.OpsPerClient
	}

	modes := []struct {
		name string
		opt  tcpnet.Options
	}{
		{"base", tcpnet.Options{ConnsPerNode: 1, Stripes: 1}},
		{"striped", tcpnet.Options{}},
	}

	res := &Result{ID: "tcpperf", Title: "tcpnet small-op data path, loopback wall-clock"}
	sum := &tcpPerfSummary{OpBytes: opBytes, OpsPerClient: opsPerClient}
	byMode := map[string]map[int]tcpPerfRow{}
	for _, m := range modes {
		byMode[m.name] = map[int]tcpPerfRow{}
		mops := &stats.Series{Name: m.name + " Mops"}
		p99 := &stats.Series{Name: m.name + " p99 µs"}
		allocs := &stats.Series{Name: m.name + " allocs/op"}
		for _, nc := range clientCounts {
			row, err := tcpPerfRun(m.name, m.opt, nc, opsPerClient, opBytes)
			if err != nil {
				return nil, fmt.Errorf("tcpperf %s/%d: %w", m.name, nc, err)
			}
			byMode[m.name][nc] = row
			sum.Rows = append(sum.Rows, row)
			lbl := fmt.Sprintf("%d", nc)
			mops.Add(lbl, row.Mops)
			p99.Add(lbl, row.P99us)
			allocs.Add(lbl, row.AllocsPerOp)
		}
		res.Series = append(res.Series, mops, p99, allocs)
	}

	cmpC := clientCounts[0]
	for _, c := range clientCounts {
		if c <= 8 && c > cmpC {
			cmpC = c
		}
	}
	base, striped := byMode["base"][cmpC], byMode["striped"][cmpC]
	if base.Mops > 0 {
		sum.StripingSpeedup = striped.Mops / base.Mops
	}
	sum.GOMAXPROCS = runtime.GOMAXPROCS(0)
	res.Summary = sum
	res.Notes = append(res.Notes,
		fmt.Sprintf("burst = one %d-op doorbell batch: %d x %d B READ/WRITE + 1 shared-word FAA; %d ops/client; p50/p99 are per burst",
			tcpPerfBurst, tcpPerfBurst-1, opBytes, opsPerClient),
		fmt.Sprintf("striping ablation (striped vs base mode) at %d clients: %.2fx aggregate Mops on GOMAXPROCS=%d",
			cmpC, sum.StripingSpeedup, sum.GOMAXPROCS),
		"both modes run the overhauled framing; with GOMAXPROCS=1 striping has no parallelism to unlock and the ablation is expected <= 1x",
		"pre-overhaul baseline (the >= 2x bar): benchstat BenchmarkBurstMix at the seed commit vs this tree on the same machine (same 32-op burst workload)",
		"captured on the dev box (1 core, seed 55ca3f2 vs overhaul): BurstMix/clients=8 709.5 -> 304.0 ns/op (2.33x), 4 -> 0 allocs/op; BatchRead64 27850 -> 12885 ns/op (2.16x), 333 -> 0 allocs/op; VerbMix/clients=8 6219 -> 5515 ns/op, 8 -> 0 allocs/op")
	return res, nil
}

// tcpPerfRun measures one (mode, clients) cell on a fresh loopback
// group platform.
// tcpPerfBurst is the doorbell-batch size of the workload: 31
// READ/WRITEs plus one FAA, all in one batch.
const tcpPerfBurst = 32

func tcpPerfRun(mode string, opt tcpnet.Options, clients, opsPerClient, opBytes int) (tcpPerfRow, error) {
	pl := tcpnet.NewGroup()
	defer pl.Close()
	pl.SetOptions(opt)
	mn := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 4 << 20})
	cn := pl.AddComputeNode()

	lats := make([][]time.Duration, clients)
	for i := range lats {
		lats[i] = make([]time.Duration, 0, opsPerClient/tcpPerfBurst+1)
	}
	start := make(chan struct{})
	ready := make(chan struct{}, clients)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		pl.Spawn(cn, fmt.Sprintf("tcpperf-%s-%d", mode, c), func(ctx rdma.Ctx) {
			defer wg.Done()
			// Each client owns a 32 KB region; bursts walk it in
			// 64 B ops so they span many lock stripes.
			const burst = tcpPerfBurst
			base := uint64(4096 + c*32*1024)
			shared := rdma.GlobalAddr{Node: mn, Off: uint64(8 * (c % 8))}
			ops := make([]rdma.Op, burst)
			bufs := make([][]byte, burst-1)
			for i := range bufs {
				bufs[i] = make([]byte, opBytes)
			}
			runBurst := func(round int) error {
				for j := 0; j < burst-1; j++ {
					addr := rdma.GlobalAddr{Node: mn, Off: base + uint64(((round+j)%64)*512)}
					kind := rdma.OpRead
					if j%2 == 0 {
						kind = rdma.OpWrite
					}
					ops[j] = rdma.Op{Kind: kind, Addr: addr, Buf: bufs[j]}
				}
				ops[burst-1] = rdma.Op{Kind: rdma.OpFAA, Addr: shared, New: 1}
				return ctx.Batch(ops)
			}
			// Warm-up: dial the striped connections and fault in the
			// buffer pool before the timed phase.
			if err := runBurst(0); err != nil {
				fail(err)
				return
			}
			ready <- struct{}{}
			<-start
			for done := 0; done < opsPerClient; done += burst {
				t0 := time.Now()
				if err := runBurst(done); err != nil {
					fail(err)
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
			}
		})
	}
	for c := 0; c < clients; c++ {
		<-ready
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	if firstErr != nil {
		return tcpPerfRow{}, firstErr
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	bursts := len(all)
	if bursts == 0 {
		return tcpPerfRow{}, fmt.Errorf("no operations completed")
	}
	totalOps := bursts * tcpPerfBurst
	// Every batched op moves opBytes of payload; the FAA moves 8.
	bytes := float64(bursts) * float64((tcpPerfBurst-1)*opBytes+8)
	return tcpPerfRow{
		Mode:        mode,
		Clients:     clients,
		Mops:        float64(totalOps) / wall.Seconds() / 1e6,
		MBps:        bytes / wall.Seconds() / (1 << 20),
		P50us:       us(all[bursts/2]),
		P99us:       us(all[bursts*99/100]),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(totalOps),
	}, nil
}
