package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/layout"
	"repro/internal/lz4"
	"repro/internal/rdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("tab3", "MN CPU core utilisation under write load", runTab3)
	register("fig17", "Throughput vs checkpoint interval", runFig17)
	register("fig19", "Checkpoint size and per-step time vs index size", runFig19)
}

// runTab3 reproduces Table 3: the average utilisation of the four MN
// cores (RPC, erasure coding, checkpoint send, checkpoint receive)
// while all clients write.
func runTab3(o Options) (*Result, error) {
	lo := o
	r, err := newAcesoRun(lo, acesoConfig(lo, 0, func(cfg *core.Config) {
		// Scaled to keep every core as busy relative to its interval
		// as the paper's 256MB-index/500ms setup: a 4MB index
		// checkpointed every 8ms, and 128KB blocks so sealing keeps
		// the erasure core encoding continuously.
		cfg.CkptInterval = 8 * time.Millisecond
		cfg.Layout.BlockSize = 128 << 10
		cfg.Layout.IndexBytes = 4 << 20
	}))
	if err != nil {
		return nil, err
	}
	defer r.shutdown()
	// Warm up (allocations, first seals), then measure utilisation
	// over the steady write phase only.
	if err := preloadMicro(r, o.Clients, o.OpsPerClient, o.KVSize); err != nil {
		return nil, err
	}
	r.pl.ResetStats()
	if err := preloadMicro(r, o.Clients, o.OpsPerClient*2, o.KVSize); err != nil {
		return nil, err
	}
	res := &Result{ID: "tab3", Title: "MN CPU core utilisation (%)"}
	names := []string{"CPU1 rpc", "CPU2 erasure", "CPU3 ckpt-send", "CPU4 ckpt-recv"}
	cores := []int{rdma.CoreRPC, rdma.CoreErasure, rdma.CoreCkptSend, rdma.CoreCkptRecv}
	for mn := 0; mn < r.cl.Cfg.Layout.NumMNs; mn++ {
		s := &stats.Series{Name: fmt.Sprintf("MN%d", mn)}
		node := r.cl.MNNode(mn)
		for i, c := range cores {
			s.Add(names[i], r.pl.CoreUtilization(node, c)*100)
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"paper: 3.8% / 41.9% / 29.1% / 43.1%; all below 50% and independent of client count")
	return res, nil
}

// runFig17 reproduces Figure 17: KV throughput across checkpoint
// intervals (scaled 10x down with the bench run length).
func runFig17(o Options) (*Result, error) {
	intervals := []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond}
	labels := []string{"100ms", "500ms", "1s", "5s"}
	if o.Quick {
		intervals = []time.Duration{2 * time.Millisecond, 100 * time.Millisecond}
		labels = []string{"100ms", "5s"}
	}
	measured := o.OpsPerClient * 4 // span several checkpoint rounds
	rows := map[workload.Kind]*stats.Series{
		workload.OpUpdate: {Name: "UPDATE Mops"},
		workload.OpSearch: {Name: "SEARCH Mops"},
	}
	for i, iv := range intervals {
		iv := iv
		for _, kind := range []workload.Kind{workload.OpUpdate, workload.OpSearch} {
			lo := o
			lo.OpsPerClient = measured
			r, err := newAcesoRun(lo, acesoConfig(lo, 0, func(cfg *core.Config) {
				cfg.CkptInterval = iv
				cfg.Layout.IndexBytes = 4 << 20
			}))
			if err != nil {
				return nil, err
			}
			keys := o.OpsPerClient
			gens := make([]workload.Generator, o.Clients)
			for g := range gens {
				gens[g] = &seqGen{phases: []workload.Generator{
					workload.NewMicro(workload.OpInsert, g, 0),
					workload.NewMicro(kind, g, uint64(keys)),
				}, remaining: keys}
			}
			m, err := runPhase(r, gens, keys, measured, o.KVSize, 10*time.Minute)
			r.shutdown()
			if err != nil {
				return nil, err
			}
			rows[kind].Add(labels[i], m.mops())
		}
	}
	res := &Result{ID: "fig17", Title: "Throughput vs checkpoint interval",
		Series: []*stats.Series{rows[workload.OpUpdate], rows[workload.OpSearch]}}
	res.Notes = append(res.Notes,
		"paper: minimal impact, slight dip at the shortest interval",
		"intervals scaled 10x down with the bench run length; labels are paper-equivalent")
	return res, nil
}

// runFig19 reproduces Figure 19: compressed checkpoint size and
// per-step single-thread time across index sizes. Unlike the simulated
// experiments, this measures the real pipeline (memcpy, XOR, this
// repository's LZ4) in wall-clock time, since no fabric is involved.
func runFig19(o Options) (*Result, error) {
	sizes := []int{16 << 20, 64 << 20, 256 << 20}
	labels := []string{"16MB", "64MB", "256MB"}
	if o.Quick {
		sizes = []int{4 << 20, 16 << 20}
		labels = []string{"4MB", "16MB"}
	}
	sizeRow := &stats.Series{Name: "ckpt size KB"}
	copyXor := &stats.Series{Name: "Copy&XOR ms"}
	compress := &stats.Series{Name: "Compress ms"}
	decompress := &stats.Series{Name: "Decompress ms"}
	xorApply := &stats.Series{Name: "XOR ms"}

	for i, ib := range sizes {
		idx := buildIndexImage(ib, 0.75)
		last := append([]byte(nil), idx...)
		// One checkpoint interval's worth of slot updates: clients can
		// dirty at most IOPS-bound counts; 1% of slots models the
		// paper's 500ms interval.
		dirtySlots(idx, 0.01, int64(i))

		snap := make([]byte, ib)
		delta := make([]byte, ib)
		t0 := time.Now()
		copy(snap, idx)
		copy(delta, snap)
		erasure.XorInto(delta, last)
		tCopyXor := time.Since(t0)

		comp := make([]byte, 0, lz4.CompressBound(ib))
		t0 = time.Now()
		comp = lz4.Compress(comp, delta)
		tCompress := time.Since(t0)

		dec := make([]byte, ib)
		t0 = time.Now()
		if _, err := lz4.Decompress(dec, comp); err != nil {
			return nil, err
		}
		tDecompress := time.Since(t0)

		t0 = time.Now()
		erasure.XorInto(last, dec)
		tXor := time.Since(t0)

		lbl := labels[i]
		sizeRow.Add(lbl, float64(len(comp))/1024)
		copyXor.Add(lbl, ms(tCopyXor))
		compress.Add(lbl, ms(tCompress))
		decompress.Add(lbl, ms(tDecompress))
		xorApply.Add(lbl, ms(tXor))
	}
	res := &Result{ID: "fig19", Title: "Checkpoint size and step times vs index size (wall-clock)",
		Series: []*stats.Series{sizeRow, copyXor, compress, decompress, xorApply}}
	res.Notes = append(res.Notes,
		"paper: a 2GB index compresses to ~27MB; step times scale linearly with index size")
	return res, nil
}

// buildIndexImage fills an index area image with realistic slot
// entries at the given load factor (Figure 19 preloads to ~0.75).
func buildIndexImage(bytes int, loadFactor float64) []byte {
	img := make([]byte, bytes)
	rng := rand.New(rand.NewSource(42))
	slots := bytes / layout.SlotSize
	for s := 0; s < slots; s++ {
		if rng.Float64() > loadFactor {
			continue
		}
		atom := layout.SlotAtomic{
			FP:   uint8(rng.Intn(255) + 1),
			Ver:  uint8(rng.Intn(256)),
			Addr: layout.PackAddr(uint16(rng.Intn(5)), uint64(rng.Intn(1<<30))&^63),
		}
		meta := layout.SlotMeta{Epoch: uint64(rng.Intn(4)) * 2, Len: 17}
		off := s * layout.SlotSize
		putU64(img[off:], atom.Pack())
		putU64(img[off+8:], meta.Pack())
	}
	return img
}

// dirtySlots re-randomises a fraction of the slots, modelling the
// updates of one checkpoint interval.
func dirtySlots(img []byte, frac float64, seed int64) {
	rng := rand.New(rand.NewSource(100 + seed))
	slots := len(img) / layout.SlotSize
	n := int(float64(slots) * frac)
	for i := 0; i < n; i++ {
		s := rng.Intn(slots)
		atom := layout.SlotAtomic{
			FP:   uint8(rng.Intn(255) + 1),
			Ver:  uint8(rng.Intn(256)),
			Addr: layout.PackAddr(uint16(rng.Intn(5)), uint64(rng.Intn(1<<30))&^63),
		}
		putU64(img[s*layout.SlotSize:], atom.Pack())
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
