package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("ckptperf", "Segment-parallel differential checkpointing vs full-image rounds", runCkptPerf)
}

// ckptPerfRow is one checkpointing mode's measured cost.
type ckptPerfRow struct {
	Mode             string  `json:"mode"`
	Segments         int     `json:"segments"`
	Workers          int     `json:"workers"`
	Rounds           uint64  `json:"rounds"`
	CPUUsPerRound    float64 `json:"ckpt_cpu_us_per_round"`
	BytesPerRound    float64 `json:"bytes_per_round"`
	RawBytesPerRound float64 `json:"raw_bytes_per_round"`
	SegsPerRound     float64 `json:"segments_per_round"`
	DirtyFraction    float64 `json:"dirty_fraction"`
	ShipFailures     uint64  `json:"ship_failures"`
	ForegroundMops   float64 `json:"foreground_mops"`
}

// ckptPerfSummary is the machine-readable artifact (BENCH_ckptperf.json).
type ckptPerfSummary struct {
	IndexBytes     uint64        `json:"index_bytes"`
	CkptIntervalUs float64       `json:"ckpt_interval_us"`
	HotKeys        int           `json:"hot_keys"`
	Clients        int           `json:"clients"`
	OpsPerClient   int           `json:"ops_per_client"`
	Rows           []ckptPerfRow `json:"rows"`
	// BytesReduction / CPUReduction are full-image over segmented
	// per-round cost: the tentpole's acceptance ratios (>= 2x expected
	// whenever the dirty fraction stays at or below 25%).
	BytesReduction float64 `json:"bytes_per_round_reduction"`
	CPUReduction   float64 `json:"cpu_per_round_reduction"`
}

// runCkptPerf measures the checkpoint pipeline's per-round cost under a
// small hot working set — the regime the segmentation tentpole targets:
// a few clients update the same handful of keys, so only a small
// fraction of the index's segments is dirty each round. CkptSegments=1
// reproduces the old full-image pipeline (the Figure 1(b)/Figure 17
// ablation baseline); CkptSegments=64 with a worker pool ships only
// dirty segments. Costs come from the MN server counters (CkptCPUNs
// covers snapshot memcpy, XOR+compress — inline or workers — and the
// host-side decompress+apply), foreground throughput from the measured
// update phase.
func runCkptPerf(o Options) (*Result, error) {
	const (
		hotPerClient = 2
		interval     = 100 * time.Microsecond
		indexBytes   = uint64(4 << 20)
	)
	clients := 4
	opsPerClient := 3000
	settleOps := 400
	if o.Quick {
		opsPerClient = 600
		settleOps = 100
	}

	modes := []struct {
		name    string
		segs    int
		workers int
	}{
		{"full-image", 1, 0},
		{"segmented", 64, 2},
	}

	res := &Result{ID: "ckptperf", Title: "Checkpoint cost per round: full-image vs segmented"}
	sum := &ckptPerfSummary{
		IndexBytes:     indexBytes,
		CkptIntervalUs: us(interval),
		HotKeys:        clients * hotPerClient,
		Clients:        clients,
		OpsPerClient:   opsPerClient,
	}
	bytesRow := &stats.Series{Name: "bytes/round"}
	cpuRow := &stats.Series{Name: "ckpt CPU µs/round"}
	segsRow := &stats.Series{Name: "segments/round"}
	dirtyRow := &stats.Series{Name: "dirty fraction %"}
	mopsRow := &stats.Series{Name: "foreground Mops"}

	for _, m := range modes {
		lo := o
		lo.Clients = clients
		lo.CNs = 2
		lo.OpsPerClient = settleOps + opsPerClient // sizing covers both phases
		cfg := acesoConfig(lo, 0, func(cfg *core.Config) {
			cfg.CkptInterval = interval
			cfg.Layout.CkptSegments = m.segs
			cfg.CkptWorkers = m.workers
		})
		cfg.Layout.IndexBytes = indexBytes // fixed geometry: both modes compress the same image
		r, err := newAcesoRun(lo, cfg)
		if err != nil {
			return nil, fmt.Errorf("ckptperf %s: %w", m.name, err)
		}
		// Preload the hot keys, then settle: the insert phase dirties
		// buckets all over the index, and the first rounds flush that
		// backlog. Counters are snapshotted only after the pipeline
		// reaches the steady hot-set state.
		if err := preloadMicro(r, clients, hotPerClient, lo.KVSize); err != nil {
			r.shutdown()
			return nil, fmt.Errorf("ckptperf %s preload: %w", m.name, err)
		}
		hotGens := func() []workload.Generator {
			gens := make([]workload.Generator, clients)
			for g := range gens {
				gens[g] = workload.NewMicro(workload.OpUpdate, g, hotPerClient)
			}
			return gens
		}
		if _, err := runPhase(r, hotGens(), 0, settleOps, lo.KVSize, 10*time.Minute); err != nil {
			r.shutdown()
			return nil, fmt.Errorf("ckptperf %s settle: %w", m.name, err)
		}
		st0 := ckptStatsSum(r)
		meas, err := runPhase(r, hotGens(), 0, opsPerClient, lo.KVSize, 10*time.Minute)
		st1 := ckptStatsSum(r)
		r.shutdown()
		if err != nil {
			return nil, fmt.Errorf("ckptperf %s measure: %w", m.name, err)
		}

		rounds := st1.CkptRounds - st0.CkptRounds
		if rounds == 0 {
			return nil, fmt.Errorf("ckptperf %s: no checkpoint rounds in the measured window", m.name)
		}
		row := ckptPerfRow{
			Mode:             m.name,
			Segments:         m.segs,
			Workers:          m.workers,
			Rounds:           rounds,
			CPUUsPerRound:    float64(st1.CkptCPUNs-st0.CkptCPUNs) / 1e3 / float64(rounds),
			BytesPerRound:    float64(st1.CkptBytes-st0.CkptBytes) / float64(rounds),
			RawBytesPerRound: float64(st1.CkptRawBytes-st0.CkptRawBytes) / float64(rounds),
			SegsPerRound:     float64(st1.CkptSegsShipped-st0.CkptSegsShipped) / float64(rounds),
			ShipFailures:     st1.CkptShipFailures - st0.CkptShipFailures,
			ForegroundMops:   meas.mops(),
		}
		row.DirtyFraction = row.SegsPerRound / float64(m.segs)
		sum.Rows = append(sum.Rows, row)
		bytesRow.Add(m.name, row.BytesPerRound)
		cpuRow.Add(m.name, row.CPUUsPerRound)
		segsRow.Add(m.name, row.SegsPerRound)
		dirtyRow.Add(m.name, row.DirtyFraction*100)
		mopsRow.Add(m.name, row.ForegroundMops)
	}

	full, seg := sum.Rows[0], sum.Rows[1]
	if seg.BytesPerRound > 0 {
		sum.BytesReduction = full.BytesPerRound / seg.BytesPerRound
	}
	if seg.CPUUsPerRound > 0 {
		sum.CPUReduction = full.CPUUsPerRound / seg.CPUUsPerRound
	}
	res.Series = append(res.Series, bytesRow, cpuRow, segsRow, dirtyRow, mopsRow)
	res.Summary = sum
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d clients update a %d-key hot set; %s interval; %d MB index; per-round costs are sums over all MNs (send snapshot+XOR+compress plus host decompress+apply) divided by shipped rounds",
			clients, sum.HotKeys, interval, indexBytes>>20),
		fmt.Sprintf("segmented vs full-image at %.0f%% dirty segments: %.1fx fewer bytes/round, %.1fx less ckpt CPU/round",
			seg.DirtyFraction*100, sum.BytesReduction, sum.CPUReduction),
		"CkptSegments=1 runs the identical code path in all-segments mode and reproduces the old full-image rounds byte-for-byte")
	return res, nil
}

// ckptStatsSum snapshots the checkpoint counters summed over every MN
// server (owner-side and host-side counters both live in ServerStats).
func ckptStatsSum(r *acesoRun) core.ServerStats {
	var sum core.ServerStats
	for mn := 0; mn < r.cl.Cfg.Layout.NumMNs; mn++ {
		st := r.cl.Server(mn).Stats()
		sum.CkptRounds += st.CkptRounds
		sum.CkptBytes += st.CkptBytes
		sum.CkptRawBytes += st.CkptRawBytes
		sum.CkptApplies += st.CkptApplies
		sum.CkptCPUNs += st.CkptCPUNs
		sum.CkptSegsShipped += st.CkptSegsShipped
		sum.CkptShipFailures += st.CkptShipFailures
	}
	return sum
}
