package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("abl1", "Ablation: two-stage recovery pipelining on/off", runAblPipeline)
	register("abl2", "Ablation: per-KV delta fan-out (1 vs 2 parity MNs)", runAblDeltaCopies)
	register("abl3", "Ablation: differential vs raw checkpointing", runAblCkptMode)
}

// runAblPipeline quantifies §3.4.1 remark 1: recovery with the
// two-stage fetch/decode pipeline versus strictly sequential stages.
func runAblPipeline(o Options) (*Result, error) {
	res := &Result{ID: "abl1", Title: "Recovery staging ablation (ms)"}
	cases := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"sequential", func(cfg *core.Config) { cfg.RecoveryPipeline = false }},
		{"pipelined", func(cfg *core.Config) { cfg.RecoveryPipeline = true }},
		{"4 helpers", func(cfg *core.Config) { cfg.RecoveryHelpers = 4 }},
	}
	for _, cse := range cases {
		cse := cse
		lc, err := loadCluster(o, o.OpsPerClient*2, 2, cse.mutate)
		if err != nil {
			return nil, err
		}
		rep, err := lc.crashAndWait(1)
		lc.r.shutdown()
		if err != nil {
			return nil, err
		}
		s := &stats.Series{Name: cse.name}
		s.Add("IndexRec", ms(rep.IndexDone))
		s.Add("BlockRec", ms(rep.RecoverOldLBlock))
		s.Add("Total", ms(rep.Total))
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"the paper overlaps RDMA reads with decoding (remark 1) and names CN-distributed",
		"stripe recovery as future work; '4 helpers' implements it (RAMCloud-style)")
	return res, nil
}

// runAblCkptMode quantifies the differential checkpointing design
// (§3.2.1): foreground SEARCH throughput while checkpoints ship either
// as LZ4-compressed XOR deltas (Aceso) or as raw full snapshots (the
// Figure 1(b) strawman), at an index size where the difference bites.
func runAblCkptMode(o Options) (*Result, error) {
	res := &Result{ID: "abl3", Title: "SEARCH throughput vs checkpointing mode"}
	tput := &stats.Series{Name: "SEARCH Mops"}
	for _, raw := range []bool{false, true} {
		raw := raw
		lo := o
		lo.OpsPerClient = o.OpsPerClient * 4
		r, err := newAcesoRun(lo, acesoConfig(lo, 0, func(cfg *core.Config) {
			cfg.CkptRaw = raw
			cfg.Layout.IndexBytes = 8 << 20
			cfg.CkptInterval = 5 * time.Millisecond
		}))
		if err != nil {
			return nil, err
		}
		keys := o.OpsPerClient
		gens := make([]workload.Generator, o.Clients)
		for i := range gens {
			gens[i] = &seqGen{phases: []workload.Generator{
				workload.NewMicro(workload.OpInsert, i, 0),
				workload.NewMicro(workload.OpSearch, i, uint64(keys)),
			}, remaining: keys}
		}
		m, err := runPhase(r, gens, keys, lo.OpsPerClient, o.KVSize, 10*time.Minute)
		r.shutdown()
		if err != nil {
			return nil, err
		}
		lbl := "differential"
		if raw {
			lbl = "raw-full"
		}
		tput.Add(lbl, m.mops())
	}
	res.Series = append(res.Series, tput)
	res.Notes = append(res.Notes,
		"raw full-snapshot rounds consume NIC bandwidth that differential+LZ4 checkpointing avoids (Figure 1(b) vs §3.2.1)")
	return res, nil
}

// runAblDeltaCopies quantifies this implementation's deviation from
// the paper's prose: writing each KV's delta to both parity MNs (full
// two-failure protection of unsealed blocks) versus one (the paper's
// single DELTA block; one write fewer per KV).
func runAblDeltaCopies(o Options) (*Result, error) {
	res := &Result{ID: "abl2", Title: "UPDATE cost vs per-KV delta fan-out"}
	tput := &stats.Series{Name: "UPDATE Mops"}
	writes := &stats.Series{Name: "writes/op"}
	for _, copies := range []int{1, 2} {
		copies := copies
		r, err := newAcesoRun(o, acesoConfig(o, 0, func(cfg *core.Config) {
			cfg.DeltaCopies = copies
		}))
		if err != nil {
			return nil, err
		}
		keys := o.OpsPerClient
		gens := make([]workload.Generator, o.Clients)
		for i := range gens {
			gens[i] = &seqGen{phases: []workload.Generator{
				workload.NewMicro(workload.OpInsert, i, 0),
				workload.NewMicro(workload.OpUpdate, i, uint64(keys)),
			}, remaining: keys}
		}
		m, err := runPhase(r, gens, keys, o.OpsPerClient, o.KVSize, 10*time.Minute)
		r.shutdown()
		if err != nil {
			return nil, err
		}
		lbl := map[int]string{1: "1 copy", 2: "2 copies"}[copies]
		tput.Add(lbl, m.mops())
		writes.Add(lbl, float64(m.writes)/float64(m.ops))
	}
	res.Series = append(res.Series, tput, writes)
	res.Notes = append(res.Notes,
		"1 copy matches the paper's Figure 6 prose but leaves unsealed blocks 1-fault protected;",
		"2 copies (this repo's default) buys the stated 2-MN bound for one extra small write")
	return res, nil
}
