package bench

import (
	"testing"
)

func TestDebugFig16Scale8(t *testing.T) {
	o := Options{}.withDefaults()
	lo := o
	lo.OpsPerClient = 1600
	cfg := acesoConfig(lo, 0, nil)
	t.Logf("IndexBytes=%d StripeRows=%d PoolBlocks=%d", cfg.Layout.IndexBytes, cfg.Layout.StripeRows, cfg.Layout.PoolBlocks)
	lc, err := loadCluster(o, 1600, 0, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	lc.r.shutdown()
}
