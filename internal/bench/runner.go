package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fusee"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
	"repro/internal/stats"
	"repro/internal/workload"
)

// kvClient is the operation surface shared by the Aceso client and the
// FUSEE baseline client, letting one measurement harness drive both.
type kvClient interface {
	Insert(key, val []byte) error
	Update(key, val []byte) error
	Search(key []byte) ([]byte, error)
	Delete(key []byte) error
}

// runner abstracts a system-under-test wired to a simulated platform.
type runner interface {
	platform() *simnet.Platform
	// spawn starts fn as client process i on one of the compute nodes.
	spawn(i int, name string, fn func(kvClient))
	// shutdown tears the platform down.
	shutdown()
}

// --- Aceso runner ---

type acesoRun struct {
	pl   *simnet.Platform
	cl   *core.Cluster
	cns  []rdma.NodeID
	opts Options
	// fm counts the verbs issued by bench clients only: spawn wraps
	// each client ctx, while server/master daemons run uninstrumented,
	// so snapshot deltas give exact verbs-per-op figures (the "verbs"
	// experiment checks them against the paper's cost model).
	fm *obs.FabricMetrics
}

// acesoConfig sizes a cluster for the expected write volume: enough
// stripe rows for every client's open blocks plus the total payload,
// enough pool blocks for their DELTA blocks, and an index sized for
// the keyspace.
func acesoConfig(o Options, totalKeys int, mutate func(*core.Config)) core.Config {
	cfg := core.DefaultConfig()
	if mutate != nil {
		mutate(&cfg) // adjust geometry (e.g. block size) before sizing
	}
	kvClass := uint64(o.KVSize + 64 + 64)
	totalBytes := uint64(totalKeys+o.Clients*o.OpsPerClient) * kvClass
	k := uint64(cfg.Layout.K())
	// Every client holds an open block per size class it touches (the
	// value class and the 64B tombstone class), plus the payload; the
	// 3/2 factor absorbs per-MN allocation imbalance.
	openBlocks := uint64(2 * o.Clients)
	rows := (openBlocks*3/2+totalBytes/cfg.Layout.BlockSize)/k + 16
	cfg.Layout.StripeRows = int(rows)
	// DELTA blocks: ParityShards per open data block, spread over the
	// group, plus reclamation copies.
	cfg.Layout.PoolBlocks = int(openBlocks)*cfg.Layout.ParityShards/cfg.Layout.NumMNs + 12
	// Index: ~4x slot headroom over the keyspace, per MN (two-choice
	// buckets overflow occasionally below that).
	slotsPerMN := uint64(totalKeys+o.Clients*o.OpsPerClient)/uint64(cfg.Layout.NumMNs)*4 + 4096
	bytes := slotsPerMN / 8 * 128 // 8 slots per 128B bucket
	ib := uint64(1 << 16)
	for ib < bytes {
		ib <<= 1
	}
	cfg.Layout.IndexBytes = ib
	return cfg
}

func newAcesoRun(o Options, cfg core.Config) (*acesoRun, error) {
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		return nil, err
	}
	cl.StartServers()
	cl.StartMaster()
	r := &acesoRun{pl: pl, cl: cl, opts: o, fm: obs.NewFabricMetrics()}
	for i := 0; i < o.CNs; i++ {
		r.cns = append(r.cns, pl.AddComputeNode())
	}
	return r, nil
}

func (r *acesoRun) platform() *simnet.Platform { return r.pl }
func (r *acesoRun) shutdown()                  { r.pl.Shutdown() }

func (r *acesoRun) spawn(i int, name string, fn func(kvClient)) {
	cn := r.cns[i%len(r.cns)]
	cli := r.cl.NewClient()
	r.pl.Spawn(cn, name, func(ctx rdma.Ctx) {
		cli.Attach(obs.WrapCtx(ctx, r.fm))
		fn(cli)
	})
}

// --- FUSEE runner ---

type fuseeRun struct {
	pl   *simnet.Platform
	cl   *fusee.Cluster
	cns  []rdma.NodeID
	opts Options
}

func fuseeConfig(o Options, totalKeys, replicas, slotBytes int) fusee.Config {
	cfg := fusee.DefaultConfig()
	cfg.Replicas = replicas
	cfg.SlotBytes = slotBytes
	kvClass := uint64(o.KVSize + 64 + 64)
	totalBytes := uint64(totalKeys+o.Clients*o.OpsPerClient) * kvClass * uint64(replicas)
	// Two size classes (value + tombstone) x replicas open blocks per
	// client, plus the replicated payload and imbalance slack.
	cfg.BlocksPerMN = int((uint64(3*o.Clients*replicas)+totalBytes/cfg.BlockSize)/uint64(cfg.NumMNs)) + 16
	slotsPerMN := uint64(totalKeys+o.Clients*o.OpsPerClient)/uint64(cfg.NumMNs)*4 + 4096
	bytes := slotsPerMN / 8 * uint64(8*slotBytes)
	pb := uint64(1 << 16)
	for pb < bytes {
		pb <<= 1
	}
	cfg.PartitionBytes = pb
	return cfg
}

func newFuseeRun(o Options, cfg fusee.Config) (*fuseeRun, error) {
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := fusee.NewCluster(cfg, pl)
	if err != nil {
		return nil, err
	}
	r := &fuseeRun{pl: pl, cl: cl, opts: o}
	for i := 0; i < o.CNs; i++ {
		r.cns = append(r.cns, pl.AddComputeNode())
	}
	return r, nil
}

func (r *fuseeRun) platform() *simnet.Platform { return r.pl }
func (r *fuseeRun) shutdown()                  { r.pl.Shutdown() }

func (r *fuseeRun) spawn(i int, name string, fn func(kvClient)) {
	cn := r.cns[i%len(r.cns)]
	r.cl.SpawnClient(cn, name, func(c *fusee.Client) { fn(c) })
}

// --- measurement harness ---

// measured aggregates one workload phase.
type measured struct {
	perKind  map[workload.Kind]*stats.Histogram
	all      *stats.Histogram
	ops      uint64
	notFound uint64
	errs     uint64
	window   time.Duration
	cas      uint64
	reads    uint64
	writes   uint64
	// sumRate is the sum of per-client closed-loop rates (ops/sec),
	// the skew-robust aggregate throughput.
	sumRate float64
}

// casPerOp returns the average CAS count per measured operation
// (Figure 1(a)'s secondary axis).
func (m *measured) casPerOp() float64 {
	if m.ops == 0 {
		return 0
	}
	return float64(m.cas) / float64(m.ops)
}

// mops returns the phase throughput in million operations per second:
// the sum of per-client closed-loop rates (robust to client start
// skew).
func (m *measured) mops() float64 { return m.sumRate / 1e6 }

// kindMops returns per-kind throughput: the aggregate rate scaled by
// that kind's share of measured operations.
func (m *measured) kindMops(k workload.Kind) float64 {
	h, ok := m.perKind[k]
	if !ok || m.ops == 0 {
		return 0
	}
	return m.mops() * float64(h.Count()) / float64(m.ops)
}

// execOp dispatches one generated operation.
func execOp(c kvClient, op workload.Op, kvSize int) error {
	switch op.Kind {
	case workload.OpInsert:
		return c.Insert(op.Key, workload.Value(op.Key, kvSize))
	case workload.OpUpdate:
		return c.Update(op.Key, workload.Value(op.Key, kvSize))
	case workload.OpSearch:
		_, err := c.Search(op.Key)
		return err
	case workload.OpDelete:
		return c.Delete(op.Key)
	}
	return fmt.Errorf("bench: unknown op kind %d", op.Kind)
}

// runPhase spawns one client process per generator, executes warmup
// un-timed operations followed by ops timed operations each, and
// advances virtual time until all complete. It measures per-op latency
// in virtual time and the phase's wall (virtual) duration; verb counts
// cover the timed window only.
func runPhase(r runner, gens []workload.Generator, warmup, ops, kvSize int, deadline time.Duration) (*measured, error) {
	m := &measured{perKind: make(map[workload.Kind]*stats.Histogram), all: stats.NewHistogram()}
	done := 0
	started := 0
	var start, end time.Duration
	var firstErr error
	for i, g := range gens {
		i, g := i, g
		r.spawn(i, fmt.Sprintf("bench-cli%d", i), func(c kvClient) {
			ctxNow := func() time.Duration { return r.platform().Engine().Now() }
			for n := 0; n < warmup; n++ {
				op := g.Next()
				if err := execOp(c, op, kvSize); err != nil &&
					!errors.Is(err, core.ErrNotFound) && !errors.Is(err, fusee.ErrNotFound) {
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d warmup op %d (%v %s): %w", i, n, op.Kind, op.Key, err)
					}
					done++
					return
				}
			}
			var cas0, reads0, writes0 uint64
			counter, hasCounters := c.(interface {
				Counters() (uint64, uint64, uint64)
			})
			if hasCounters {
				cas0, reads0, writes0 = counter.Counters()
			}
			if started == 0 {
				start = ctxNow()
			}
			started++
			cliStart := ctxNow()
			for n := 0; n < ops; n++ {
				op := g.Next()
				t0 := ctxNow()
				err := execOp(c, op, kvSize)
				lat := ctxNow() - t0
				switch {
				case err == nil:
				case errors.Is(err, core.ErrNotFound) || errors.Is(err, fusee.ErrNotFound):
					m.notFound++
				default:
					m.errs++
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d op %d (%v %s): %w", i, n, op.Kind, op.Key, err)
					}
					done++
					return
				}
				h, ok := m.perKind[op.Kind]
				if !ok {
					h = stats.NewHistogram()
					m.perKind[op.Kind] = h
				}
				h.Record(lat)
				m.all.Record(lat)
				m.ops++
			}
			if dur := ctxNow() - cliStart; dur > 0 {
				m.sumRate += float64(ops) / dur.Seconds()
			}
			if fl, ok := c.(interface{ FlushBitmaps() }); ok {
				fl.FlushBitmaps()
			}
			if hasCounters {
				cas1, reads1, writes1 := counter.Counters()
				m.cas += cas1 - cas0
				m.reads += reads1 - reads0
				m.writes += writes1 - writes0
			}
			if t := ctxNow(); t > end {
				end = t
			}
			done++
		})
	}
	eng := r.platform().Engine()
	limit := eng.Now() + deadline
	for done < len(gens) && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
	}
	if done < len(gens) {
		return nil, fmt.Errorf("bench: phase stalled (%d/%d clients finished)", done, len(gens))
	}
	if firstErr != nil {
		return nil, firstErr
	}
	m.window = end - start
	return m, nil
}

// microGens builds one microbenchmark generator per client.
func microGens(kind workload.Kind, clients, keysPerClient int) []workload.Generator {
	gens := make([]workload.Generator, clients)
	for i := range gens {
		gens[i] = workload.NewMicro(kind, i, uint64(keysPerClient))
	}
	return gens
}

// mixGens builds one mix generator per client over n preloaded keys.
func mixGens(mix workload.Mix, clients int, n uint64) []workload.Generator {
	gens := make([]workload.Generator, clients)
	for i := range gens {
		gens[i] = workload.NewMixGen(mix, n, int64(1000+i))
	}
	return gens
}

// preloadMicro inserts every client's private key range (the
// microbenchmark working set).
func preloadMicro(r runner, clients, keysPerClient, kvSize int) error {
	_, err := runPhase(r, microGens(workload.OpInsert, clients, 0), 0, keysPerClient, kvSize, time.Hour)
	return err
}

// preloadKeys inserts the shared keyspace [0, n) for macrobenchmarks,
// splitting the range across clients.
func preloadKeys(r runner, clients int, n uint64, kvSize int) error {
	gens := make([]workload.Generator, clients)
	per := n / uint64(clients)
	for i := range gens {
		lo := uint64(i) * per
		hi := lo + per
		if i == clients-1 {
			hi = n
		}
		gens[i] = &rangeInserter{next: lo, end: hi}
	}
	_, err := runPhase(r, gens, 0, int(per)+1, kvSize, time.Hour)
	return err
}

// rangeInserter inserts keys [next, end) then pads with searches of
// its own keys (so every generator accepts the same op count).
type rangeInserter struct{ next, end uint64 }

func (g *rangeInserter) Next() workload.Op {
	if g.next < g.end {
		k := g.next
		g.next++
		return workload.Op{Kind: workload.OpInsert, Key: workload.KeyName(k)}
	}
	return workload.Op{Kind: workload.OpSearch, Key: workload.KeyName(g.end - 1)}
}
