package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig10", "YCSB A-D throughput, Aceso vs FUSEE", runFig10)
	register("fig11", "Twitter workloads throughput, Aceso vs FUSEE", runFig11)
	register("fig12", "Memory distribution after bulk load", runFig12)
	register("fig15", "Throughput vs UPDATE ratio", runFig15)
}

// macroKeys returns the shared preloaded keyspace size for macro
// workloads.
func macroKeys(o Options) uint64 {
	n := uint64(o.Clients*o.OpsPerClient) / 2
	if n < 1000 {
		n = 1000
	}
	if o.Quick && n > 2000 {
		n = 2000
	}
	return n
}

// runMix measures one operation mix on a fresh cluster of the given
// system, after preloading the shared keyspace and warming each
// client.
func runMix(build func() (runner, error), o Options, mix workload.Mix) (*measured, error) {
	r, err := build()
	if err != nil {
		return nil, err
	}
	defer r.shutdown()
	n := macroKeys(o)
	if err := preloadKeys(r, o.Clients, n, o.KVSize); err != nil {
		return nil, fmt.Errorf("preload: %w", err)
	}
	warmup := o.OpsPerClient / 4
	gens := mixGens(mix, o.Clients, n)
	m, err := runPhase(r, gens, warmup, o.OpsPerClient, o.KVSize, 10*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", mix.Name, err)
	}
	return m, nil
}

func runMixSweep(o Options, title, id string, mixes []workload.Mix, note string) (*Result, error) {
	res := &Result{ID: id, Title: title}
	sa := &stats.Series{Name: "Aceso"}
	sf := &stats.Series{Name: "FUSEE"}
	sn := &stats.Series{Name: "normalized"}
	for _, mix := range mixes {
		ma, err := runMix(buildAceso(o, nil), o, mix)
		if err != nil {
			return nil, err
		}
		mf, err := runMix(buildFusee(o, 3, 8), o, mix)
		if err != nil {
			return nil, err
		}
		lbl := mix.Name
		sa.Add(lbl, ma.mops())
		sf.Add(lbl, mf.mops())
		sn.Add(lbl, stats.Ratio(ma.mops(), mf.mops()))
	}
	res.Series = append(res.Series, sa, sf, sn)
	res.Notes = append(res.Notes, note)
	return res, nil
}

// runFig10 reproduces Figure 10: YCSB A-D.
func runFig10(o Options) (*Result, error) {
	mixes := []workload.Mix{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBD}
	if o.Quick {
		mixes = []workload.Mix{workload.YCSBA, workload.YCSBC}
	}
	return runMixSweep(o, "YCSB throughput (Mops)", "fig10", mixes,
		"paper: 1.63x on write-heavy A; up to 1.28x on read-heavy B/C/D")
}

// runFig11 reproduces Figure 11: the Twitter cluster workloads.
func runFig11(o Options) (*Result, error) {
	mixes := []workload.Mix{workload.TwitterStorage, workload.TwitterCompute, workload.TwitterTransient}
	if o.Quick {
		mixes = mixes[:2]
	}
	return runMixSweep(o, "Twitter-trace throughput (Mops)", "fig11", mixes,
		"paper: 1.10x on read-heavy STORAGE; up to 1.94x on write-heavy COMPUTE/TRANSIENT")
}

// runFig12 reproduces Figure 12: memory distribution after all clients
// bulk-load KV pairs — Aceso's parity+delta redundancy versus FUSEE's
// n-fold replication (the ~44% space saving).
func runFig12(o Options) (*Result, error) {
	res := &Result{ID: "fig12", Title: "Memory distribution after bulk load (MB)"}
	writes := o.OpsPerClient * 2

	// Small blocks keep open-block slack negligible relative to the
	// scaled-down payload, as 2 MB blocks are against the paper's
	// 52.6 GB load; the parity/data ratio is block-size independent.
	blockSize := uint64(64 << 10)

	// Aceso: load, wait for sealing/encoding to settle, scan records.
	oa := o
	oa.OpsPerClient = writes
	ar, err := newAcesoRun(oa, acesoConfig(oa, 0, func(cfg *core.Config) {
		cfg.Layout.BlockSize = blockSize
		// The prefetcher keeps one provisioned-but-unused block (plus
		// its DELTA blocks) per class per client — steady-state slack
		// that would swamp this scaled-down bulk load the same way big
		// open blocks would. The redundancy ratio under measurement is
		// provisioning-independent, so pin prefetch off.
		cfg.BlockPrefetch = false
	}))
	if err != nil {
		return nil, err
	}
	if err := preloadMicro(ar, oa.Clients, writes, oa.KVSize); err != nil {
		ar.shutdown()
		return nil, err
	}
	eng := ar.platform().Engine()
	eng.Run(eng.Now() + 100*time.Millisecond) // drain encoders
	usage := ar.cl.MemoryUsage()
	ar.shutdown()

	// FUSEE: same load, replicated.
	fcfg := fuseeConfig(oa, 0, 3, 8)
	fcfg.BlockSize = blockSize
	fcfg.BlocksPerMN = fcfg.BlocksPerMN * 32 // same capacity at 1/32 block size
	fr, err := newFuseeRun(oa, fcfg)
	if err != nil {
		return nil, err
	}
	if err := preloadMicro(fr, oa.Clients, writes, oa.KVSize); err != nil {
		fr.shutdown()
		return nil, err
	}
	m, err := runPhase(fr, microGens(workload.OpSearch, oa.Clients, writes), 0, 1, oa.KVSize, 10*time.Minute)
	_ = m
	fuseeAlloc := fr.cl.AllocatedBytes()
	fr.shutdown()
	if err != nil {
		return nil, err
	}

	mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
	valid := usage.ValidBytes
	// FUSEE stores Replicas copies of every pair; its block allocation
	// includes open-block slack, so report the replicated payload.
	fuseeValid := valid
	fuseeRedundancy := 2 * valid

	sv := &stats.Series{Name: "Valid"}
	sr := &stats.Series{Name: "Redundancy"}
	sd := &stats.Series{Name: "Delta"}
	st := &stats.Series{Name: "Total"}
	sv.Add("Aceso", mb(valid))
	sr.Add("Aceso", mb(usage.ParityBytes))
	sd.Add("Aceso", mb(usage.DeltaBytes))
	st.Add("Aceso", mb(valid+usage.ParityBytes+usage.DeltaBytes))
	sv.Add("FUSEE", mb(fuseeValid))
	sr.Add("FUSEE", mb(fuseeRedundancy))
	sd.Add("FUSEE", 0)
	st.Add("FUSEE", mb(fuseeValid+fuseeRedundancy))
	res.Series = append(res.Series, sv, sr, sd, st)

	acesoTotal := float64(valid + usage.ParityBytes + usage.DeltaBytes)
	fuseeTotal := float64(fuseeValid + fuseeRedundancy)
	res.Notes = append(res.Notes,
		fmt.Sprintf("space saving vs FUSEE: %.0f%% (paper: ~44%%)", (1-acesoTotal/fuseeTotal)*100),
		fmt.Sprintf("fusee raw block allocation incl. slack: %.1f MB", mb(fuseeAlloc)))
	return res, nil
}

// runFig15 reproduces Figure 15: throughput across UPDATE ratios.
func runFig15(o Options) (*Result, error) {
	ratios := []float64{0, 0.25, 0.50, 0.75, 1.0}
	if o.Quick {
		ratios = []float64{0, 1.0}
	}
	mixes := make([]workload.Mix, len(ratios))
	for i, f := range ratios {
		mixes[i] = workload.UpdateRatio(f)
	}
	return runMixSweep(o, "Throughput vs UPDATE ratio (Mops)", "fig15", mixes,
		"paper: both decline as updates grow; Aceso leads at every ratio")
}
