package bench

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// TestQuickSmoke runs every registered experiment in Quick mode: the
// whole evaluation pipeline must produce a table without errors.
func TestQuickSmoke(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(res.Series) == 0 {
				t.Fatalf("%s: no series", id)
			}
			txt := res.Text()
			if len(txt) == 0 {
				t.Fatalf("%s: empty text", id)
			}
			t.Log("\n" + txt)
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	res := &Result{ID: "x", Title: "t"}
	s1 := &stats.Series{Name: "a,b"}
	s1.Add("c1", 1.5)
	s1.Add("c2", 2)
	res.Series = append(res.Series, s1)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,c1,c2\n\"a,b\",1.5,2\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
