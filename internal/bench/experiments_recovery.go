package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("fig14", "Degraded SEARCH and space-reclaimed UPDATE", runFig14)
	register("tab2", "MN recovery breakdown: XOR vs RS erasure code", runTab2)
	register("fig16", "Recovery time vs lost data size", runFig16)
	register("fig18", "Recovery time vs checkpoint interval", runFig18)
	register("fig20", "Impact of block size: recovery time and UPDATE throughput", runFig20)
}

// loadedCluster is an Aceso cluster preloaded through the micro INSERT
// path, ready for failure injection.
type loadedCluster struct {
	r    *acesoRun
	o    Options
	keys int
}

// loadCluster builds a cluster, preloads keysPerClient keys per client
// and lets the given number of checkpoint rounds complete. Blocks are
// 128 KB so that the scaled-down load still fills and seals them (a
// 2 MB block holds ~1900 KB-sized pairs, more than a bench client
// writes); experiments that study the block size itself override it.
func loadCluster(o Options, keysPerClient int, ckptRounds int, mutate func(*core.Config)) (*loadedCluster, error) {
	lo := o
	lo.OpsPerClient = keysPerClient
	r, err := newAcesoRun(lo, acesoConfig(lo, 0, func(cfg *core.Config) {
		cfg.Layout.BlockSize = 128 << 10
		if mutate != nil {
			mutate(cfg)
		}
	}))
	if err != nil {
		return nil, err
	}
	r.cl.Master().AddSpare()
	if err := preloadMicro(r, o.Clients, keysPerClient, o.KVSize); err != nil {
		r.shutdown()
		return nil, err
	}
	eng := r.pl.Engine()
	eng.Run(eng.Now() + time.Duration(ckptRounds)*r.cl.Cfg.CkptInterval + 10*time.Millisecond)
	return &loadedCluster{r: r, o: o, keys: keysPerClient}, nil
}

// crashAndWait fails an MN and advances virtual time until tier-3
// recovery completes, returning the recovery report.
func (lc *loadedCluster) crashAndWait(mn int) (*core.RecoveryReport, error) {
	lc.r.cl.FailMN(mn)
	eng := lc.r.pl.Engine()
	limit := eng.Now() + 10*time.Minute
	for eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
		if _, _, blocksReady := lc.r.cl.MNState(mn); blocksReady {
			reports := lc.r.cl.Master().Reports
			if len(reports) == 0 {
				return nil, fmt.Errorf("bench: no recovery report")
			}
			return reports[len(reports)-1], nil
		}
	}
	return nil, fmt.Errorf("bench: recovery did not finish in virtual time")
}

// runFig14 reproduces Figure 14: degraded SEARCH throughput during
// block-area recovery (left) and UPDATE throughput under space
// reclamation (right), both normalised to the normal path.
func runFig14(o Options) (*Result, error) {
	res := &Result{ID: "fig14", Title: "Degraded SEARCH and space-reclaimed UPDATE (Mops)"}

	// --- Degraded SEARCH ---
	keys := o.OpsPerClient
	lc, err := loadCluster(o, keys, 2, nil)
	if err != nil {
		return nil, err
	}
	// Baseline: normal SEARCH throughput (fresh clients, warm caches).
	warmGens := func() []workload.Generator {
		gens := make([]workload.Generator, o.Clients)
		for i := range gens {
			gens[i] = workload.NewMicro(workload.OpSearch, i, uint64(keys))
		}
		return gens
	}
	normal, err := runPhase(lc.r, warmGens(), keys, o.OpsPerClient, o.KVSize, 10*time.Minute)
	if err != nil {
		lc.r.shutdown()
		return nil, err
	}

	// Crash an MN and measure SEARCH throughput inside the degraded
	// window (index recovered, block area not yet).
	const victim = 1
	lc.r.cl.FailMN(victim)
	eng := lc.r.pl.Engine()
	degradedOps := uint64(0)
	var winStart, winEnd time.Duration
	running := true
	for i := 0; i < o.Clients; i++ {
		i := i
		lc.r.spawn(i, fmt.Sprintf("degraded-searcher%d", i), func(c kvClient) {
			g := workload.NewMicro(workload.OpSearch, i, uint64(keys))
			for running {
				op := g.Next()
				if _, err := c.Search(op.Key); err == nil {
					_, _, idxReady, blocksReady := stateOf(lc.r.cl, victim)
					if idxReady && !blocksReady {
						degradedOps++
					}
				}
			}
		})
	}
	limit := eng.Now() + 10*time.Minute
	for eng.Now() < limit {
		eng.Run(eng.Now() + 200*time.Microsecond)
		failed, idxReady, blocksReady := lc.r.cl.MNState(victim)
		if winStart == 0 && !failed && idxReady {
			winStart = eng.Now()
		}
		if blocksReady {
			winEnd = eng.Now()
			break
		}
	}
	running = false
	eng.Run(eng.Now() + time.Millisecond)
	lc.r.shutdown()
	degraded := 0.0
	if winEnd > winStart && winStart > 0 {
		degraded = stats.Throughput(degradedOps, winEnd-winStart)
	}

	// --- Space-reclaimed UPDATE ---
	// Normal: plenty of space (no reclamation). Special: a small block
	// area kept under pressure so updates flow through reclaimed
	// blocks.
	normUpd, _, err := reclaimUpdateRun(o, false)
	if err != nil {
		return nil, err
	}
	reclUpd, reclaimed, err := reclaimUpdateRun(o, true)
	if err != nil {
		return nil, err
	}

	s1 := &stats.Series{Name: "Normal"}
	s2 := &stats.Series{Name: "Special"}
	s3 := &stats.Series{Name: "ratio"}
	s1.Add("SEARCH", normal.mops())
	s2.Add("SEARCH", degraded)
	s3.Add("SEARCH", stats.Ratio(degraded, normal.mops()))
	s1.Add("UPDATE", normUpd)
	s2.Add("UPDATE", reclUpd)
	s3.Add("UPDATE", stats.Ratio(reclUpd, normUpd))
	res.Series = append(res.Series, s1, s2, s3)
	res.Notes = append(res.Notes,
		"paper: degraded SEARCH 0.53x of normal; space-reclaimed UPDATE 0.97x",
		fmt.Sprintf("blocks handed out through reclamation in Special UPDATE run: %d", reclaimed))
	return res, nil
}

func stateOf(cl *core.Cluster, mn int) (node struct{}, failed, idxReady, blocksReady bool) {
	f, i, b := cl.MNState(mn)
	return struct{}{}, f, i, b
}

// reclaimUpdateRun measures UPDATE throughput with or without space
// pressure (Figure 14 right).
func reclaimUpdateRun(o Options, pressure bool) (float64, int, error) {
	keys := o.OpsPerClient
	mutate := func(cfg *core.Config) {
		cfg.Layout.BlockSize = 64 << 10
		cfg.BitmapFlushOps = 16
	}
	lo := o
	lo.OpsPerClient = keys
	cfg := acesoConfig(lo, 0, mutate)
	if pressure {
		// Roughly two working sets' worth of rows: enough to absorb
		// the preload plus one overwrite wave before blocks cross the
		// 75% obsolete threshold, then updates recycle reclaimed
		// blocks.
		kvClass := uint64(o.KVSize + 128)
		working := uint64(o.Clients*keys) * kvClass
		cfg.Layout.StripeRows = int(2*working/cfg.Layout.BlockSize/uint64(cfg.Layout.K())) + 2*o.Clients/cfg.Layout.K() + 4
	}
	r, err := newAcesoRun(lo, cfg)
	if err != nil {
		return 0, 0, err
	}
	defer r.shutdown()
	if err := preloadMicro(r, o.Clients, keys, o.KVSize); err != nil {
		return 0, 0, err
	}
	gens := microGens(workload.OpUpdate, o.Clients, keys)
	// Warm with two full overwrite passes so obsolete bits accumulate
	// and reclamation engages under pressure.
	m, err := runPhase(r, gens, 2*keys, o.OpsPerClient, o.KVSize, 30*time.Minute)
	if err != nil {
		return 0, 0, err
	}
	return m.mops(), r.cl.Reclaimed(), nil
}

// runTab2 reproduces Table 2: the per-stage recovery breakdown under
// the XOR code versus the RS code, plus the raw encode throughput of
// both kernels (real wall time, not simulated).
func runTab2(o Options) (*Result, error) {
	res := &Result{ID: "tab2", Title: "MN recovery breakdown (ms) and kernel throughput"}
	for _, code := range []string{"xor", "rs"} {
		code := code
		lc, err := loadCluster(o, o.OpsPerClient*2, 2, func(cfg *core.Config) {
			cfg.Code = code
		})
		if err != nil {
			return nil, err
		}
		// More post-checkpoint writes so both new and old blocks exist.
		if err := preloadMicro(lc.r, o.Clients, o.OpsPerClient/2, o.KVSize); err != nil {
			lc.r.shutdown()
			return nil, err
		}
		rep, err := lc.crashAndWait(2)
		lc.r.shutdown()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", code, err)
		}
		s := &stats.Series{Name: code}
		s.Add("ReadMeta", ms(rep.ReadMeta))
		s.Add("ReadCkpt", ms(rep.ReadCkpt))
		s.Add("RecLBlock", ms(rep.RecoverLBlock))
		s.Add("LBlk#", float64(rep.LBlockCount))
		s.Add("ReadRBlock", ms(rep.ReadRBlock))
		s.Add("RBlk#", float64(rep.RBlockCount))
		s.Add("ScanKV", ms(rep.ScanKV))
		s.Add("KV#", float64(rep.KVCount))
		s.Add("RecOldLBlk", ms(rep.RecoverOldLBlock))
		s.Add("OldLBlk#", float64(rep.OldLBlockCount))
		s.Add("Total", ms(rep.Total))
		s.Add("TestTpt GB/s", kernelTpt(code))
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"paper: XOR cuts Recover(Old)LBlock stages 18-38% and total ~18%; XOR kernel ~68% faster",
		"TestTpt folds six 2MB blocks into one parity (3 DATA + 3 DELTA), wall-clock")
	return res, nil
}

// kernelTpt measures, in real time, the Table 2 kernel: generating one
// 2MB PARITY block from six 2MB DATA blocks.
func kernelTpt(code string) float64 {
	const blockSize = 2 << 20
	var c erasure.Code
	if code == "rs" {
		c, _ = erasure.NewRS(6, 2)
	} else {
		c, _ = erasure.NewXor(6)
	}
	rng := rand.New(rand.NewSource(1))
	blocks := make([][]byte, 6)
	for i := range blocks {
		blocks[i] = make([]byte, blockSize)
		rng.Read(blocks[i])
	}
	// Measure the non-trivial parity row (row 0 is a plain XOR for
	// both codes, which would hide the GF-multiply cost the paper's
	// ISA-L comparison exposes).
	parity := make([]byte, blockSize)
	start := time.Now()
	iters := 0
	for time.Since(start) < 300*time.Millisecond {
		for i, b := range blocks {
			c.UpdateOne(1, parity, i, 0, b)
		}
		iters++
	}
	elapsed := time.Since(start).Seconds()
	return float64(iters) * 6 * blockSize / elapsed / 1e9
}

// runFig16 reproduces Figure 16: recovery time by tier as the lost
// data size grows (more keys loaded before the crash).
func runFig16(o Options) (*Result, error) {
	scales := []int{1, 2, 4, 8}
	if o.Quick {
		scales = []int{1, 4}
	}
	meta := &stats.Series{Name: "Meta ms"}
	index := &stats.Series{Name: "Index ms"}
	block := &stats.Series{Name: "Block ms"}
	total := &stats.Series{Name: "Total ms"}
	lost := &stats.Series{Name: "lost MB"}
	for _, sc := range scales {
		lc, err := loadCluster(o, o.OpsPerClient*sc, 2, nil)
		if err != nil {
			return nil, err
		}
		rep, err := lc.crashAndWait(1)
		lc.r.shutdown()
		if err != nil {
			return nil, err
		}
		lbl := fmt.Sprintf("%dx", sc)
		meta.Add(lbl, ms(rep.ReadMeta))
		index.Add(lbl, ms(rep.ReadCkpt+rep.RecoverLBlock+rep.ReadRBlock+rep.ScanKV))
		block.Add(lbl, ms(rep.RecoverOldLBlock))
		total.Add(lbl, ms(rep.Total))
		lostMB := float64(rep.LBlockCount+rep.OldLBlockCount) * 128.0 / 1024 // 128KB blocks
		lost.Add(lbl, lostMB)
	}
	res := &Result{ID: "fig16", Title: "Recovery time vs lost data size",
		Series: []*stats.Series{lost, meta, index, block, total}}
	res.Notes = append(res.Notes,
		"paper: Meta and Index times flat; Block time proportional to lost data (~2GB/s)")
	return res, nil
}

// runFig18 reproduces Figure 18: recovery time by tier across
// checkpoint intervals (intervals scaled 10x down with the run
// length; labels use paper-equivalent values).
func runFig18(o Options) (*Result, error) {
	intervals := []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}
	labels := []string{"100ms", "500ms", "1s", "5s"}
	if o.Quick {
		intervals = intervals[:2]
		labels = labels[:2]
	}
	index := &stats.Series{Name: "Index ms"}
	block := &stats.Series{Name: "Block ms"}
	scanned := &stats.Series{Name: "KV scanned"}
	for i, iv := range intervals {
		iv := iv
		lc, err := loadCluster(o, o.OpsPerClient*2, 0, func(cfg *core.Config) {
			cfg.CkptInterval = iv
		})
		if err != nil {
			return nil, err
		}
		// Run exactly one checkpoint cycle plus a late write burst, so
		// the amount of un-checkpointed data scales with the interval.
		eng := lc.r.pl.Engine()
		eng.Run(eng.Now() + iv + 5*time.Millisecond)
		if err := preloadMicro(lc.r, o.Clients, o.OpsPerClient/2, o.KVSize); err != nil {
			lc.r.shutdown()
			return nil, err
		}
		rep, err := lc.crashAndWait(3)
		lc.r.shutdown()
		if err != nil {
			return nil, err
		}
		index.Add(labels[i], ms(rep.ReadCkpt+rep.RecoverLBlock+rep.ReadRBlock+rep.ScanKV))
		block.Add(labels[i], ms(rep.RecoverOldLBlock))
		scanned.Add(labels[i], float64(rep.KVCount))
	}
	res := &Result{ID: "fig18", Title: "Recovery time vs checkpoint interval",
		Series: []*stats.Series{index, block, scanned}}
	res.Notes = append(res.Notes,
		"paper: longer intervals grow Index recovery (more KVs to rescan); Block shrinks slightly",
		"intervals scaled 10x down with the bench run length; labels are paper-equivalent")
	return res, nil
}

// runFig20 reproduces Figure 20: the impact of the memory block size
// on index recovery time and UPDATE throughput.
func runFig20(o Options) (*Result, error) {
	sizes := []uint64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20}
	if o.Quick {
		sizes = []uint64{16 << 10, 1 << 20}
	}
	recovery := &stats.Series{Name: "IndexRec ms"}
	tput := &stats.Series{Name: "UPDATE Mops"}
	for _, bs := range sizes {
		bs := bs
		// UPDATE throughput at this block size.
		lo := o
		r, err := newAcesoRun(lo, acesoConfig(lo, 0, func(cfg *core.Config) {
			cfg.Layout.BlockSize = bs
		}))
		if err != nil {
			return nil, err
		}
		keys := o.OpsPerClient
		gens := make([]workload.Generator, o.Clients)
		for i := range gens {
			gens[i] = &seqGen{phases: []workload.Generator{
				workload.NewMicro(workload.OpInsert, i, 0),
				workload.NewMicro(workload.OpUpdate, i, uint64(keys)),
			}, remaining: keys}
		}
		m, err := runPhase(r, gens, keys, o.OpsPerClient, o.KVSize, 10*time.Minute)
		r.shutdown()
		if err != nil {
			return nil, err
		}
		// Index recovery time at this block size.
		lc, err := loadCluster(o, o.OpsPerClient, 2, func(cfg *core.Config) {
			cfg.Layout.BlockSize = bs
		})
		if err != nil {
			return nil, err
		}
		rep, err := lc.crashAndWait(1)
		lc.r.shutdown()
		if err != nil {
			return nil, err
		}
		lbl := fmt.Sprintf("%dKB", bs>>10)
		if bs >= 1<<20 {
			lbl = fmt.Sprintf("%dMB", bs>>20)
		}
		recovery.Add(lbl, ms(rep.IndexDone))
		tput.Add(lbl, m.mops())
	}
	res := &Result{ID: "fig20", Title: "Impact of block size",
		Series: []*stats.Series{recovery, tput}}
	res.Notes = append(res.Notes,
		"paper: recovery worst at tiny blocks (pipelining overhead) and large blocks (big unfilled blocks); UPDATE improves with block size (fewer allocations)")
	return res, nil
}
