// Package bench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated fabric. Each experiment is
// registered under the paper's artifact id ("fig8", "tab2", ...) and
// returns a Result whose text is a paper-style table; cmd/acesobench
// prints them and EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
)

// Options scales an experiment. Zero values mean "experiment default";
// the defaults are a scaled-down version of the paper's testbed (§4.1:
// 184 clients on 23 CNs, 1024-byte KVs, 2 MB blocks, 500 ms checkpoint
// interval).
type Options struct {
	// Clients is the total client count.
	Clients int
	// CNs is the number of compute nodes clients spread over.
	CNs int
	// OpsPerClient is the measured operation count per client.
	OpsPerClient int
	// KVSize is the value size in bytes.
	KVSize int
	// Quick shrinks everything for smoke tests and testing.B wrappers.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Clients == 0 {
		o.Clients = 92
	}
	if o.CNs == 0 {
		o.CNs = 23
	}
	if o.OpsPerClient == 0 {
		o.OpsPerClient = 200
	}
	if o.KVSize == 0 {
		o.KVSize = 1024
	}
	if o.Quick {
		if o.Clients > 16 {
			o.Clients = 16
		}
		o.CNs = 4
		if o.OpsPerClient > 60 {
			o.OpsPerClient = 60
		}
	}
	return o
}

// Result is one regenerated artifact.
type Result struct {
	ID     string
	Title  string
	Series []*stats.Series
	Notes  []string
	// Summary optionally carries the experiment's machine-readable
	// form; cmd/acesobench serialises it to BENCH_<id>.json (and a
	// results/<id>.csv) when present, for benchstat-style tracking
	// across commits.
	Summary any
}

// Text renders the result as an aligned table plus notes.
func (r *Result) Text() string {
	out := stats.Table(fmt.Sprintf("[%s] %s", r.ID, r.Title), r.Series...)
	for _, n := range r.Notes {
		out += "  note: " + n + "\n"
	}
	return out
}

// WriteCSV emits the result as CSV (one header row of labels, one row
// per series) for external plotting.
func (r *Result) WriteCSV(w io.Writer) error {
	if len(r.Series) == 0 {
		return nil
	}
	row := []string{"series"}
	row = append(row, r.Series[0].Labels...)
	if err := writeCSVRow(w, row); err != nil {
		return err
	}
	for _, s := range r.Series {
		row = row[:0]
		row = append(row, s.Name)
		for _, v := range s.Values {
			row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, fields []string) error {
	for i, f := range fields {
		sep := ","
		if i == 0 {
			sep = ""
		}
		needQuote := false
		for _, c := range f {
			if c == ',' || c == '"' || c == '\n' {
				needQuote = true
			}
		}
		if needQuote {
			f = "\"" + f + "\"" // labels never contain quotes themselves
		}
		if _, err := fmt.Fprintf(w, "%s%s", sep, f); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Experiment is a registered artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry = map[string]*Experiment{}

// canonicalOrder lists the artifacts in the paper's order.
var canonicalOrder = []string{
	"fig1a", "fig1b",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
	"tab2", "tab3",
	"fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
	"verbs",
}

func register(id, title string, run func(Options) (*Result, error)) {
	registry[id] = &Experiment{ID: id, Title: title, Run: run}
}

// IDs returns all experiment ids in the paper's order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, id := range canonicalOrder {
		if _, ok := registry[id]; ok {
			out = append(out, id)
		}
	}
	// Append any ids missing from the canonical list (future
	// extensions), sorted.
	var extra []string
	for id := range registry {
		found := false
		for _, c := range canonicalOrder {
			if c == id {
				found = true
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment by id.
func Run(id string, o Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(o.withDefaults())
}

// ms renders a duration as fractional milliseconds for table cells.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// us renders a duration as fractional microseconds.
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
