package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("cacheperf", "Client index cache: verbs/op, latency and hit ratios, off vs cache vs cache+offload", runCachePerf)
}

// cachePerfRow is one (workload, configuration) cell of the sweep.
type cachePerfRow struct {
	Workload       string  `json:"workload"`
	Config         string  `json:"config"`
	Ops            uint64  `json:"ops"`
	VerbsPerOp     float64 `json:"verbs_per_op"`
	GetMeanUs      float64 `json:"get_mean_us"`
	GetP50Us       float64 `json:"get_p50_us"`
	GetP99Us       float64 `json:"get_p99_us"`
	HitRatio       float64 `json:"hit_ratio"`
	NegHitRatio    float64 `json:"neg_hit_ratio"`
	MirrorHitRatio float64 `json:"mirror_hit_ratio"`
	CacheBytes     uint64  `json:"cache_bytes"`
	CacheEntries   int     `json:"cache_entries"`
	Offloaded      int     `json:"offloaded_buckets"`
}

// cachePerfSummary is the machine-readable artifact
// (BENCH_cacheperf.json): the full sweep plus the tentpole's headline
// acceptance ratios.
type cachePerfSummary struct {
	Clients        int            `json:"clients"`
	OpsPerClient   int            `json:"ops_per_client"`
	Keys           uint64         `json:"keys"`
	MissFrac       float64        `json:"miss_fraction"`
	CacheEntries   int            `json:"cache_entries_bound"`
	OffloadBuckets int            `json:"offload_buckets_bound"`
	Rows           []cachePerfRow `json:"rows"`
	// YCSBCVerbReduction is cache-off verbs/op over cache+offload
	// verbs/op on YCSB-C (acceptance: >= 1.5x).
	YCSBCVerbReduction float64 `json:"ycsbc_verb_reduction"`
}

// cacheRun wraps the aceso runner to keep handles on the clients a
// phase spawns, so the experiment can read per-client cache stats once
// the phase completes. spawn runs on the driving goroutine (runPhase's
// setup loop), so the slice needs no locking.
type cacheRun struct {
	*acesoRun
	clients []*core.Client
}

func (r *cacheRun) spawn(i int, name string, fn func(kvClient)) {
	cn := r.cns[i%len(r.cns)]
	cli := r.cl.NewClient()
	r.clients = append(r.clients, cli)
	r.pl.Spawn(cn, name, func(ctx rdma.Ctx) {
		cli.Attach(obs.WrapCtx(ctx, r.fm))
		fn(cli)
	})
}

// missGen rewrites a fraction of SEARCHes to keys drawn from a small
// never-inserted pool, so the negative-cache path carries measurable
// load (repeated misses of the same hot absent keys).
type missGen struct {
	inner workload.Generator
	rng   *rand.Rand
	frac  float64
	base  uint64 // preloaded keyspace size; absent keys start here
	pool  uint64
}

func (g *missGen) Next() workload.Op {
	op := g.inner.Next()
	if op.Kind == workload.OpSearch && g.rng.Float64() < g.frac {
		op.Key = workload.KeyName(g.base + g.rng.Uint64()%g.pool)
	}
	return op
}

// cachePerfGens builds the per-client generator set for one workload
// label: YCSB mixes come from mixGens, the Twitter STORAGE label
// replays a per-client synthetic trace through the trace pipeline
// (WriteSyntheticTrace -> ParseTrace -> TraceGen), exercising the same
// path a production trace file takes.
func cachePerfGens(label string, clients int, n uint64, opsEach int, missFrac float64) ([]workload.Generator, error) {
	gens := make([]workload.Generator, clients)
	for i := range gens {
		var inner workload.Generator
		switch label {
		case workload.YCSBB.Name:
			inner = workload.NewMixGen(workload.YCSBB, n, int64(1000+i))
		case workload.YCSBC.Name:
			inner = workload.NewMixGen(workload.YCSBC, n, int64(1000+i))
		case workload.TwitterStorage.Name:
			var buf bytes.Buffer
			if err := workload.WriteSyntheticTrace(&buf, workload.TwitterStorage, n, opsEach, 1024, int64(7000+i)); err != nil {
				return nil, err
			}
			ops, err := workload.ParseTrace(&buf)
			if err != nil {
				return nil, err
			}
			inner = workload.NewTraceGen(ops)
		default:
			return nil, fmt.Errorf("cacheperf: unknown workload %q", label)
		}
		gens[i] = &missGen{
			inner: inner,
			rng:   rand.New(rand.NewSource(int64(31 + i))),
			frac:  missFrac,
			base:  n,
			pool:  64,
		}
	}
	return gens, nil
}

// runCachePerf sweeps {cache off, bounded cache, cache + hot-bucket
// offload} over read-heavy workloads, measuring the GET path's verb
// cost and latency end to end. The cache-off column reproduces the
// paper's cost model (2 bucket reads + 1 KV read per GET); the cache
// columns enable the full CN-side index layer (bounded entry cache
// with value retention, negative caching, and — in the offload column —
// the hot-bucket mirror).
func runCachePerf(o Options) (*Result, error) {
	const missFrac = 0.05
	// The sweep runs its own shape: a handful of long-lived clients
	// (client caches and mirrors are per-process, so per-client op
	// count — not client count — is what exercises them), over a
	// keyspace an order of magnitude larger than the entry bound.
	o.Clients = 8
	o.CNs = 4
	if o.Quick {
		o.OpsPerClient = 400
	} else if o.OpsPerClient < 2500 {
		o.OpsPerClient = 2500
	}
	keys := uint64(o.Clients*o.OpsPerClient) / 8
	if keys < 500 {
		keys = 500
	}
	// The entry cache is scaled with the keyspace the same way a
	// production 16384-entry cache relates to a many-million-key store:
	// it holds only the hottest fraction (2x overcommitted), so CLOCK
	// eviction and the hot-bucket mirror both carry load in the sweep.
	cacheEntries := int(keys) / 2
	if cacheEntries < 64 {
		cacheEntries = 64
	}
	offloadBuckets := 512

	configs := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"cache-off", func(c *core.Config) { c.CacheEntries = -1 }},
		{"cache", func(c *core.Config) {
			c.CacheEntries = cacheEntries
			c.CacheNegative = true
			c.CacheValues = true
		}},
		{"cache+offload", func(c *core.Config) {
			c.CacheEntries = cacheEntries
			c.CacheNegative = true
			c.CacheValues = true
			c.OffloadBuckets = offloadBuckets
		}},
	}
	workloads := []string{workload.YCSBB.Name, workload.YCSBC.Name, workload.TwitterStorage.Name}

	res := &Result{ID: "cacheperf", Title: "Client index cache sweep (GET path)"}
	sum := &cachePerfSummary{
		Clients:        o.Clients,
		OpsPerClient:   o.OpsPerClient,
		Keys:           keys,
		MissFrac:       missFrac,
		CacheEntries:   cacheEntries,
		OffloadBuckets: offloadBuckets,
	}

	cells := map[string]map[string]cachePerfRow{}
	for _, cfgSpec := range configs {
		cells[cfgSpec.name] = map[string]cachePerfRow{}
		for _, wl := range workloads {
			cfg := acesoConfig(o, int(keys), cfgSpec.mutate)
			// acesoConfig sizes the index with ~16x slot headroom at
			// this scale; shrink to ~3x (still far from two-choice
			// overflow) so bucket-level locality resembles a loaded
			// store and the hot-bucket mirror has buckets worth
			// promoting.
			ib := uint64(4096)
			for ib < keys/uint64(cfg.Layout.NumMNs)*48 {
				ib <<= 1
			}
			cfg.Layout.IndexBytes = ib
			ar, err := newAcesoRun(o, cfg)
			if err != nil {
				return nil, fmt.Errorf("cacheperf %s/%s: %w", cfgSpec.name, wl, err)
			}
			r := &cacheRun{acesoRun: ar}
			if err := preloadKeys(r, o.Clients, keys, o.KVSize); err != nil {
				r.shutdown()
				return nil, fmt.Errorf("cacheperf %s/%s preload: %w", cfgSpec.name, wl, err)
			}
			warmup := o.OpsPerClient
			gens, err := cachePerfGens(wl, o.Clients, keys, warmup+o.OpsPerClient, missFrac)
			if err != nil {
				r.shutdown()
				return nil, err
			}
			r.clients = nil // account the measured phase's clients only
			m, err := runPhase(r, gens, warmup, o.OpsPerClient, o.KVSize, 10*time.Minute)
			if err != nil {
				r.shutdown()
				return nil, fmt.Errorf("cacheperf %s/%s: %w", cfgSpec.name, wl, err)
			}
			row := cachePerfRow{Workload: wl, Config: cfgSpec.name, Ops: m.ops}
			if m.ops > 0 {
				row.VerbsPerOp = float64(m.cas+m.reads+m.writes) / float64(m.ops)
			}
			if h, ok := m.perKind[workload.OpSearch]; ok {
				row.GetMeanUs = us(h.Mean())
				row.GetP50Us = us(h.Percentile(0.50))
				row.GetP99Us = us(h.Percentile(0.99))
			}
			var searches, hits, negHits, mirHits uint64
			for _, c := range r.clients {
				searches += c.Stats.Searches
				hits += c.Stats.CacheHits + c.Stats.CacheNegHits + c.Stats.MirrorHits + c.Stats.MirrorNegHits
				negHits += c.Stats.CacheNegHits
				mirHits += c.Stats.MirrorHits + c.Stats.MirrorNegHits
				ents, b, off, _ := c.CacheStats()
				row.CacheBytes += b
				row.CacheEntries += ents
				row.Offloaded += off
			}
			if searches > 0 {
				row.HitRatio = float64(hits) / float64(searches)
				row.NegHitRatio = float64(negHits) / float64(searches)
				row.MirrorHitRatio = float64(mirHits) / float64(searches)
			}
			r.shutdown()
			cells[cfgSpec.name][wl] = row
			sum.Rows = append(sum.Rows, row)
		}
	}
	for _, cfgSpec := range configs {
		sv := &stats.Series{Name: "verbs/op " + cfgSpec.name}
		smean := &stats.Series{Name: "GET mean µs " + cfgSpec.name}
		sp50 := &stats.Series{Name: "GET p50 µs " + cfgSpec.name}
		sp99 := &stats.Series{Name: "GET p99 µs " + cfgSpec.name}
		sh := &stats.Series{Name: "hit % " + cfgSpec.name}
		for _, wl := range workloads {
			row := cells[cfgSpec.name][wl]
			sv.Add(wl, row.VerbsPerOp)
			smean.Add(wl, row.GetMeanUs)
			sp50.Add(wl, row.GetP50Us)
			sp99.Add(wl, row.GetP99Us)
			sh.Add(wl, row.HitRatio*100)
		}
		res.Series = append(res.Series, sv, smean, sp50, sp99, sh)
	}

	off := cells["cache-off"]
	full := cells["cache+offload"]
	sum.YCSBCVerbReduction = stats.Ratio(off[workload.YCSBC.Name].VerbsPerOp, full[workload.YCSBC.Name].VerbsPerOp)
	res.Summary = sum
	res.Notes = append(res.Notes,
		fmt.Sprintf("YCSB-C verbs/op: %.2f off -> %.2f cache+offload (%.2fx reduction; acceptance >= 1.5x)",
			off[workload.YCSBC.Name].VerbsPerOp, full[workload.YCSBC.Name].VerbsPerOp, sum.YCSBCVerbReduction),
		fmt.Sprintf("YCSB-B GET p50: %.1f µs off -> %.1f µs cache+offload; %s GET p50: %.1f -> %.1f µs, mean %.1f -> %.1f µs",
			off[workload.YCSBB.Name].GetP50Us, full[workload.YCSBB.Name].GetP50Us,
			workload.TwitterStorage.Name,
			off[workload.TwitterStorage.Name].GetP50Us, full[workload.TwitterStorage.Name].GetP50Us,
			off[workload.TwitterStorage.Name].GetMeanUs, full[workload.TwitterStorage.Name].GetMeanUs),
		fmt.Sprintf("cache footprint (all clients): %.1f MB under the %d-entry/%d-bucket budgets",
			float64(full[workload.YCSBC.Name].CacheBytes)/(1<<20), sum.CacheEntries, offloadBuckets))
	return res, nil
}
