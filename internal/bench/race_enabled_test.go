//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in, so
// wall-clock kernel-throughput comparisons can skip themselves:
// instrumentation slows the tight XOR loops far more than the
// table-driven RS kernel and inverts the measured ratio.
const raceEnabled = true
