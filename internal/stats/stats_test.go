package stats

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 microseconds uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Percentile(0.50)
	if p50 < 450*time.Microsecond || p50 > 560*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500us", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 940*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990us", p99)
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v, want ~500us", mean)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(10_000_000)) + 1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := float64(h.Percentile(q))
		want := q * 10_000_000
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("q=%v: got %v, want ~%v", q, got, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(2 * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if p := a.Percentile(0.75); p < 1900*time.Microsecond || p > 2200*time.Microsecond {
		t.Fatalf("merged p75 = %v", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram min/max not zero")
	}
}

func TestHistogramMinMaxClamp(t *testing.T) {
	h := NewHistogram()
	h.Record(3 * time.Microsecond)
	h.Record(9 * time.Microsecond)
	if h.Min() != 3*time.Microsecond || h.Max() != 9*time.Microsecond {
		t.Fatalf("min/max = %v/%v, want 3µs/9µs", h.Min(), h.Max())
	}
	// Percentiles interpolate within buckets but never escape the
	// observed range.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		p := h.Percentile(q)
		if p < h.Min() || p > h.Max() {
			t.Fatalf("q=%v: %v outside [%v, %v]", q, p, h.Min(), h.Max())
		}
	}
	if !strings.Contains(h.String(), "min=3µs") {
		t.Fatalf("String() missing min: %s", h.String())
	}
}

func TestHistogramPercentileInterpolates(t *testing.T) {
	// Uniform 1..1000µs: nearby quantiles often share a log bucket
	// (4% wide), so without within-bucket interpolation they snap to
	// the same edge value. With it, they are strictly increasing.
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	prev := h.Percentile(0.50)
	for q := 0.51; q < 0.61; q += 0.01 {
		p := h.Percentile(q)
		if p <= prev {
			t.Fatalf("q=%.2f: %v <= previous %v; quantiles snapped to a bucket edge", q, p, prev)
		}
		prev = p
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2_000_000, time.Second); got != 2.0 {
		t.Fatalf("throughput = %v, want 2 Mops", got)
	}
	if Throughput(1, 0) != 0 {
		t.Fatal("zero window must be 0")
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := &Series{Name: "aceso"}
	s1.Add("INSERT", 1.5)
	s1.Add("SEARCH", 3.25)
	s2 := &Series{Name: "fusee"}
	s2.Add("INSERT", 0.8)
	s2.Add("SEARCH", 2.9)
	out := Table("Figure 8", s1, s2)
	for _, want := range []string{"Figure 8", "INSERT", "SEARCH", "aceso", "fusee", "1.500", "0.800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != 1.5 || Ratio(1, 0) != 0 {
		t.Fatal("ratio wrong")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted keys = %v", got)
	}
}
