// Package stats provides the measurement plumbing the evaluation
// harness uses: log-bucketed latency histograms with percentile
// queries (P50/P99 in Figure 9) and throughput accounting over
// simulated time.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a log-bucketed latency histogram: buckets grow
// geometrically (~4% width), giving <5% percentile error over
// nanoseconds to minutes with a few hundred buckets.
//
// A Histogram is NOT safe for concurrent use: Record and Merge mutate
// unsynchronised state. Single-threaded measurement loops (the bench
// harness, simnet processes) use it directly; concurrent recorders
// must wrap it — obs.LockedHistogram provides a sharded, mutex-guarded
// wrapper for exactly that purpose.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	histBase    = 1.04
	histBuckets = 720 // covers ~1ns .. >10min
)

var histLogBase = math.Log(histBase)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: math.MaxInt64}
}

func bucketOf(d time.Duration) int {
	if d < 1 {
		return 0
	}
	b := int(math.Log(float64(d)) / histLogBase)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one sample. Not safe for concurrent use (see the type
// comment).
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds other into h. Neither histogram may be concurrently
// recorded into during the merge (see the type comment).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the mean latency.
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / time.Duration(h.total)
}

// Percentile returns the latency at quantile q in [0, 1].
func (h *Histogram) Percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			// Interpolate by rank within the bucket rather than
			// returning the raw upper edge: bucket 0 spans [0, base)
			// and would otherwise report ~1ns for any sub-nanosecond
			// sample, and wide upper buckets would bias high.
			lo := 0.0
			if b > 0 {
				lo = math.Pow(histBase, float64(b))
			}
			hi := math.Pow(histBase, float64(b+1))
			before := cum - c
			frac := (float64(target-before) + 0.5) / float64(c)
			v := time.Duration(lo + frac*(hi-lo))
			// The true extremes are tracked exactly; clamp so the
			// estimate never leaves the observed range.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Min(), h.Percentile(0.50), h.Percentile(0.99), h.max)
}

// Throughput converts an operation count over a window to million
// operations per second.
func Throughput(ops uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(ops) / window.Seconds() / 1e6
}

// Series is a labelled sequence of (x, y) points, the unit the bench
// harness emits per figure line.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Table formats one or more series sharing labels as an aligned text
// table (the harness's paper-style output).
func Table(title string, series ...*Series) string {
	if len(series) == 0 {
		return title + "\n"
	}
	out := title + "\n"
	width := 14
	head := fmt.Sprintf("%-20s", "")
	for _, lbl := range series[0].Labels {
		head += fmt.Sprintf("%*s", width, lbl)
	}
	out += head + "\n"
	for _, s := range series {
		row := fmt.Sprintf("%-20s", s.Name)
		for i := range s.Labels {
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			row += fmt.Sprintf("%*s", width, formatCell(v))
		}
		out += row + "\n"
	}
	return out
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Ratio returns a/b (0 when b is 0), for normalised-coefficient rows.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SortedKeys returns map keys in sorted order (deterministic report
// iteration).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
