// Package workload generates the benchmark workloads of §4.1: YCSB
// core workloads A-D with Zipfian key popularity (θ=0.99), synthetic
// equivalents of the three Twitter cache-trace clusters, and the
// microbenchmarks (unique keys per client, one operation type).
//
// All generators are deterministic under a seed so simulated runs are
// reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind is an operation type.
type Kind uint8

// Operation kinds.
const (
	OpInsert Kind = iota
	OpUpdate
	OpSearch
	OpDelete
)

func (k Kind) String() string {
	switch k {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpSearch:
		return "SEARCH"
	case OpDelete:
		return "DELETE"
	}
	return "?"
}

// Op is one generated request.
type Op struct {
	Kind Kind
	Key  []byte
}

// Generator produces a deterministic stream of operations.
type Generator interface {
	// Next returns the next operation.
	Next() Op
}

// --- Zipfian key popularity (the YCSB algorithm) ---

// Zipfian draws integers in [0, n) with the Zipfian distribution used
// by YCSB (Gray et al.'s algorithm), scrambled so popular keys spread
// over the key space.
type Zipfian struct {
	rng      *rand.Rand
	n        uint64
	theta    float64
	zetan    float64
	zeta2    float64
	alpha    float64
	eta      float64
	scramble bool
}

// NewZipfian creates a Zipfian generator over [0, n) with parameter
// theta (the paper uses YCSB's default 0.99).
func NewZipfian(rng *rand.Rand, n uint64, theta float64) *Zipfian {
	z := &Zipfian{rng: rng, n: n, theta: theta, scramble: true}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next key index.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var v uint64
	switch {
	case uz < 1.0:
		v = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		v = 1
	default:
		v = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if v >= z.n {
		v = z.n - 1
	}
	if z.scramble {
		v = fnvMix(v) % z.n
	}
	return v
}

func fnvMix(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// KeyName renders key index i as the canonical workload key.
func KeyName(i uint64) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// --- Mix-based generators (YCSB and Twitter) ---

// Mix describes an operation mix over a keyspace.
type Mix struct {
	// Name labels the workload ("YCSB-A", "TWITTER-COMPUTE", ...).
	Name string
	// SearchFrac, UpdateFrac, InsertFrac and DeleteFrac must sum to 1.
	SearchFrac, UpdateFrac, InsertFrac, DeleteFrac float64
	// Zipfian key skew parameter; 0 means uniform.
	Theta float64
}

// YCSB core workloads (§4.1): A (50% SEARCH, 50% UPDATE), B (95/5),
// C (100% SEARCH), D (95% SEARCH, 5% INSERT), Zipfian θ=0.99.
var (
	YCSBA = Mix{Name: "YCSB-A", SearchFrac: 0.50, UpdateFrac: 0.50, Theta: 0.99}
	YCSBB = Mix{Name: "YCSB-B", SearchFrac: 0.95, UpdateFrac: 0.05, Theta: 0.99}
	YCSBC = Mix{Name: "YCSB-C", SearchFrac: 1.00, Theta: 0.99}
	YCSBD = Mix{Name: "YCSB-D", SearchFrac: 0.95, InsertFrac: 0.05, Theta: 0.99}
)

// Twitter cluster mixes (§4.3). The trace study (Yang et al., "A
// Large-scale Analysis of Hundreds of In-memory Key-value Cache
// Clusters at Twitter") reports the storage cluster as strongly
// read-dominated, the compute cluster as write-heavy (computation
// results are frequently overwritten), and the transient cluster as
// short-lived data with frequent insertions and deletions; these mixes
// synthesize those characteristics.
var (
	TwitterStorage   = Mix{Name: "TWITTER-STORAGE", SearchFrac: 0.90, UpdateFrac: 0.10, Theta: 0.99}
	TwitterCompute   = Mix{Name: "TWITTER-COMPUTE", SearchFrac: 0.35, UpdateFrac: 0.65, Theta: 0.99}
	TwitterTransient = Mix{Name: "TWITTER-TRANSIENT", SearchFrac: 0.30, UpdateFrac: 0.30, InsertFrac: 0.20, DeleteFrac: 0.20, Theta: 0.99}
)

// UpdateRatio returns a SEARCH/UPDATE mix with the given update
// fraction (the sensitivity sweep of Figure 15).
func UpdateRatio(frac float64) Mix {
	return Mix{
		Name:       fmt.Sprintf("UPDATE-%d%%", int(frac*100+0.5)),
		SearchFrac: 1 - frac, UpdateFrac: frac, Theta: 0.99,
	}
}

// MixGen generates operations from a Mix over n preloaded keys.
type MixGen struct {
	mix        Mix
	rng        *rand.Rand
	zipf       *Zipfian
	n          uint64
	insertBase uint64
	inserts    uint64   // keys appended by OpInsert
	fresh      []uint64 // inserted keys not yet deleted
	deleted    map[uint64]bool
}

// NewMixGen creates a generator over n preloaded keys. The seed also
// selects a disjoint per-generator range for inserted keys, so
// concurrent clients insert distinct records (as YCSB's insert-order
// key chooser does).
func NewMixGen(mix Mix, n uint64, seed int64) *MixGen {
	rng := rand.New(rand.NewSource(seed))
	g := &MixGen{mix: mix, rng: rng, n: n, deleted: make(map[uint64]bool),
		insertBase: n + 1 + uint64(seed&0xFFFF)<<24}
	if mix.Theta > 0 {
		g.zipf = NewZipfian(rng, n, mix.Theta)
	}
	return g
}

func (g *MixGen) pick() uint64 {
	if g.zipf != nil {
		return g.zipf.Next()
	}
	return uint64(g.rng.Int63n(int64(g.n)))
}

// Next implements Generator.
func (g *MixGen) Next() Op {
	r := g.rng.Float64()
	m := &g.mix
	switch {
	case r < m.SearchFrac:
		return Op{Kind: OpSearch, Key: KeyName(g.pick())}
	case r < m.SearchFrac+m.UpdateFrac:
		return Op{Kind: OpUpdate, Key: KeyName(g.pick())}
	case r < m.SearchFrac+m.UpdateFrac+m.InsertFrac:
		g.inserts++
		k := g.insertBase + g.inserts
		g.fresh = append(g.fresh, k)
		return Op{Kind: OpInsert, Key: KeyName(k)}
	default:
		// Transient-style deletes target recently inserted keys first
		// (short-lived data), falling back to live preloaded keys.
		if len(g.fresh) > 0 {
			k := g.fresh[0]
			g.fresh = g.fresh[1:]
			return Op{Kind: OpDelete, Key: KeyName(k)}
		}
		for try := 0; try < 64; try++ {
			k := g.pick()
			if !g.deleted[k] {
				g.deleted[k] = true
				return Op{Kind: OpDelete, Key: KeyName(k)}
			}
		}
		return Op{Kind: OpSearch, Key: KeyName(g.pick())}
	}
}

// --- Microbenchmarks ---

// Micro generates the microbenchmark stream of §4.2: every client
// works on its own unique keys (no concurrent conflicts), issuing a
// single operation type.
type Micro struct {
	kind   Kind
	client int
	next   uint64
	count  uint64
}

// NewMicro creates a microbenchmark generator for one client. For
// UPDATE/SEARCH/DELETE the keys cycle over the client's preloaded
// range of count keys; for INSERT they keep growing.
func NewMicro(kind Kind, client int, count uint64) *Micro {
	return &Micro{kind: kind, client: client, count: count}
}

// MicroKey names the i-th key of a client's private range.
func MicroKey(client int, i uint64) []byte {
	return []byte(fmt.Sprintf("cli%04d-key%010d", client, i))
}

// Next implements Generator.
func (m *Micro) Next() Op {
	i := m.next
	m.next++
	if m.kind != OpInsert && m.count > 0 {
		i %= m.count
	}
	return Op{Kind: m.kind, Key: MicroKey(m.client, i)}
}

// Value builds a deterministic value of the given size for a key.
func Value(key []byte, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = key[i%len(key)] ^ byte(i)
	}
	return v
}
