package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestParseTraceBasic(t *testing.T) {
	in := strings.Join([]string{
		"# comment",
		"1,keyA,4,0,7,get,0",
		"2,keyB,4,512,7,set,30",
		"3,keyC,4,128,7,add,0",
		"4,keyA,4,0,7,delete,0",
		"5,keyD,4,64,7,cas,0",
		"6,keyE,4,0,7,weirdverb,0", // skipped
		"",
	}, "\n")
	ops, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		key  string
		kind Kind
		vs   int
	}{
		{"keyA", OpSearch, 0},
		{"keyB", OpUpdate, 512},
		{"keyC", OpInsert, 128},
		{"keyA", OpDelete, 0},
		{"keyD", OpUpdate, 64},
	}
	if len(ops) != len(want) {
		t.Fatalf("parsed %d ops, want %d", len(ops), len(want))
	}
	for i, w := range want {
		if string(ops[i].Key) != w.key || ops[i].Kind != w.kind || ops[i].ValueSize != w.vs {
			t.Fatalf("op %d = %+v, want %+v", i, ops[i], w)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"1,k,1,0,7",         // too few fields
		"x,k,1,0,7,get,0",   // bad timestamp
		"1,k,1,abc,7,get,0", // bad value size
		"1,,0,0,7,get,0",    // empty key
	}
	for i, c := range cases {
		_, err := ParseTrace(strings.NewReader(c))
		var te *ErrTraceFormat
		if !errors.As(err, &te) {
			t.Errorf("case %d: err = %v, want *ErrTraceFormat", i, err)
		}
	}
}

func TestSyntheticTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyntheticTrace(&buf, TwitterCompute, 500, 3000, 4096, 11); err != nil {
		t.Fatal(err)
	}
	ops, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3000 {
		t.Fatalf("round-tripped %d ops, want 3000", len(ops))
	}
	counts := map[Kind]int{}
	for _, op := range ops {
		counts[op.Kind]++
		if op.Kind == OpUpdate && (op.ValueSize < 64 || op.ValueSize > 4096) {
			t.Fatalf("value size %d out of range", op.ValueSize)
		}
	}
	// COMPUTE is write-heavy: ~65% updates.
	frac := float64(counts[OpUpdate]) / 3000
	if frac < 0.55 || frac > 0.75 {
		t.Fatalf("update frac %.2f, want ~0.65", frac)
	}
}

func TestTraceGenCycles(t *testing.T) {
	ops := []TraceOp{
		{Key: []byte("a"), Kind: OpSearch},
		{Key: []byte("b"), Kind: OpUpdate},
	}
	g := NewTraceGen(ops)
	if g.Len() != 2 {
		t.Fatal("len wrong")
	}
	seq := []string{"a", "b", "a", "b", "a"}
	for i, want := range seq {
		if got := g.Next(); string(got.Key) != want {
			t.Fatalf("op %d key %s, want %s", i, got.Key, want)
		}
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteSyntheticTrace(&a, TwitterStorage, 100, 500, 1024, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteSyntheticTrace(&b, TwitterStorage, 100, 500, 1024, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different traces")
	}
}
