package workload

import (
	"strings"
	"testing"
)

// FuzzParseTrace feeds arbitrary text to the trace parser: it must
// never panic, only return records or errors.
func FuzzParseTrace(f *testing.F) {
	f.Add("1,key,3,100,7,get,0\n")
	f.Add("# comment\n\n2,k,1,0,0,set,0")
	f.Add("x,,,,,")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		ops, err := ParseTrace(strings.NewReader(in))
		if err == nil {
			for _, op := range ops {
				if len(op.Key) == 0 {
					t.Fatal("parsed record with empty key")
				}
			}
		}
	})
}
