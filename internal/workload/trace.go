package workload

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Trace support: the paper replays Twitter's production cache traces
// (Yang et al.). The open release distributes CSV records of the form
//
//	timestamp,anonymized key,key size,value size,client id,operation,TTL
//
// with operations get/gets/set/add/replace/cas/append/prepend/delete/
// incr/decr. We cannot redistribute the traces, but this package can
// (a) replay any file in that format and (b) synthesize format-
// compatible traces from the cluster mixes, so the replay path is
// exercised end to end (see DESIGN.md's substitution table).

// TraceOp is one parsed trace record.
type TraceOp struct {
	Timestamp uint64
	Key       []byte
	ValueSize int
	Kind      Kind
}

// ErrTraceFormat reports a malformed trace line.
type ErrTraceFormat struct {
	Line int
	Msg  string
}

func (e *ErrTraceFormat) Error() string {
	return fmt.Sprintf("workload: trace line %d: %s", e.Line, e.Msg)
}

// opOfTraceVerb maps a trace operation name onto the KV store's
// request types: all read flavours become SEARCH, write flavours
// UPDATE (the store upserts), "add" INSERT and "delete" DELETE.
// Unknown verbs are skipped.
func opOfTraceVerb(verb string) (Kind, bool) {
	switch verb {
	case "get", "gets":
		return OpSearch, true
	case "set", "replace", "cas", "append", "prepend", "incr", "decr":
		return OpUpdate, true
	case "add":
		return OpInsert, true
	case "delete":
		return OpDelete, true
	}
	return 0, false
}

// ParseTrace reads a Twitter-format CSV trace. Malformed lines yield
// an *ErrTraceFormat; unknown operations are skipped silently (the
// real traces contain client-specific verbs).
func ParseTrace(r io.Reader) ([]TraceOp, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []TraceOp
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 6 {
			return nil, &ErrTraceFormat{Line: line, Msg: fmt.Sprintf("%d fields, want >= 6", len(fields))}
		}
		ts, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, &ErrTraceFormat{Line: line, Msg: "bad timestamp"}
		}
		vs, err := strconv.Atoi(fields[3])
		if err != nil || vs < 0 {
			return nil, &ErrTraceFormat{Line: line, Msg: "bad value size"}
		}
		kind, ok := opOfTraceVerb(fields[5])
		if !ok {
			continue
		}
		if len(fields[1]) == 0 {
			return nil, &ErrTraceFormat{Line: line, Msg: "empty key"}
		}
		out = append(out, TraceOp{
			Timestamp: ts,
			Key:       []byte(fields[1]),
			ValueSize: vs,
			Kind:      kind,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSyntheticTrace emits count format-compatible records drawn from
// a Mix over n keys (the substitution for the unredistributable
// production traces). Value sizes are drawn log-uniformly from
// [64, maxVal].
func WriteSyntheticTrace(w io.Writer, mix Mix, n uint64, count int, maxVal int, seed int64) error {
	bw := bufio.NewWriter(w)
	gen := NewMixGen(mix, n, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	if _, err := fmt.Fprintf(bw, "# synthetic %s trace (%d ops over %d keys)\n", mix.Name, count, n); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		op := gen.Next()
		verb := "get"
		switch op.Kind {
		case OpUpdate:
			verb = "set"
		case OpInsert:
			verb = "add"
		case OpDelete:
			verb = "delete"
		}
		vs := 0
		if op.Kind == OpUpdate || op.Kind == OpInsert {
			lo, hi := 6.0, float64(bitsLen(maxVal)) // log2 range
			vs = 1 << int(lo+rng.Float64()*(hi-lo))
			if vs > maxVal {
				vs = maxVal
			}
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%s,0\n",
			uint64(i), op.Key, len(op.Key), vs, seed, verb); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// TraceGen replays parsed trace records as a Generator, cycling when
// exhausted. Ops with zero value size reuse the store-level default
// (the Generator interface carries keys only; value sizing is the
// harness's concern).
type TraceGen struct {
	ops  []TraceOp
	next int
}

// NewTraceGen wraps parsed trace records.
func NewTraceGen(ops []TraceOp) *TraceGen { return &TraceGen{ops: ops} }

// Len returns the record count.
func (g *TraceGen) Len() int { return len(g.ops) }

// Next implements Generator.
func (g *TraceGen) Next() Op {
	op := g.ops[g.next%len(g.ops)]
	g.next++
	return Op{Kind: op.Kind, Key: op.Key}
}
