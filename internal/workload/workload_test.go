package workload

import (
	"math/rand"
	"testing"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipfian(rand.New(rand.NewSource(1)), n, 0.99)
	counts := make(map[uint64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipf(0.99) over 1000 keys: the hottest key should take several
	// percent of draws; a uniform draw would take 0.1%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	frac := float64(max) / draws
	if frac < 0.02 {
		t.Fatalf("hottest key got %.4f of draws; zipfian skew missing", frac)
	}
	if len(counts) < n/3 {
		t.Fatalf("only %d distinct keys drawn; tail missing", len(counts))
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(rand.New(rand.NewSource(7)), 100, 0.99)
	b := NewZipfian(rand.New(rand.NewSource(7)), 100, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMixFractions(t *testing.T) {
	for _, mix := range []Mix{YCSBA, YCSBB, YCSBC, YCSBD, TwitterStorage, TwitterCompute, TwitterTransient} {
		sum := mix.SearchFrac + mix.UpdateFrac + mix.InsertFrac + mix.DeleteFrac
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s fractions sum to %f", mix.Name, sum)
		}
		g := NewMixGen(mix, 1000, 3)
		counts := map[Kind]int{}
		const draws = 20000
		for i := 0; i < draws; i++ {
			counts[g.Next().Kind]++
		}
		check := func(kind Kind, want float64) {
			got := float64(counts[kind]) / draws
			if want == 0 && got > 0.02 {
				t.Errorf("%s: %v frac %.3f, want 0", mix.Name, kind, got)
			}
			if want > 0 && (got < want*0.8-0.01 || got > want*1.2+0.01) {
				t.Errorf("%s: %v frac %.3f, want ~%.2f", mix.Name, kind, got, want)
			}
		}
		check(OpSearch, mix.SearchFrac)
		check(OpUpdate, mix.UpdateFrac)
		check(OpInsert, mix.InsertFrac)
	}
}

func TestMixInsertsUseFreshKeys(t *testing.T) {
	g := NewMixGen(YCSBD, 100, 5)
	seen := map[string]bool{}
	for i := uint64(0); i < 100; i++ {
		seen[string(KeyName(i))] = true
	}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind == OpInsert && seen[string(op.Key)] {
			t.Fatalf("insert reused preloaded key %s", op.Key)
		}
	}
}

func TestUpdateRatio(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		g := NewMixGen(UpdateRatio(frac), 500, 11)
		upd := 0
		const draws = 10000
		for i := 0; i < draws; i++ {
			if g.Next().Kind == OpUpdate {
				upd++
			}
		}
		got := float64(upd) / draws
		if got < frac-0.02 || got > frac+0.02 {
			t.Errorf("ratio %.2f: measured %.3f", frac, got)
		}
	}
}

func TestMicroUniquePerClient(t *testing.T) {
	g1 := NewMicro(OpInsert, 1, 0)
	g2 := NewMicro(OpInsert, 2, 0)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k1, k2 := g1.Next().Key, g2.Next().Key
		if seen[string(k1)] || seen[string(k2)] || string(k1) == string(k2) {
			t.Fatal("microbenchmark keys collide across clients")
		}
		seen[string(k1)] = true
		seen[string(k2)] = true
	}
}

func TestMicroCyclesPreloadedRange(t *testing.T) {
	g := NewMicro(OpUpdate, 0, 10)
	for i := 0; i < 25; i++ {
		want := MicroKey(0, uint64(i%10))
		if got := g.Next().Key; string(got) != string(want) {
			t.Fatalf("op %d key %s, want %s", i, got, want)
		}
	}
}

func TestValueDeterministic(t *testing.T) {
	a := Value([]byte("k1"), 128)
	b := Value([]byte("k1"), 128)
	c := Value([]byte("k2"), 128)
	if string(a) != string(b) {
		t.Fatal("value not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("values for different keys identical")
	}
	if len(a) != 128 {
		t.Fatal("wrong size")
	}
}
