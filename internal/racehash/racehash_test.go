package racehash

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/layout"
)

func TestHashDeterministicAndSpread(t *testing.T) {
	if Hash([]byte("key")) != Hash([]byte("key")) {
		t.Fatal("hash not deterministic")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		h := Hash([]byte(fmt.Sprintf("key-%d", i)))
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func TestHomeMNBalance(t *testing.T) {
	const n, keys = 5, 50000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[HomeMN(Hash([]byte(fmt.Sprintf("key-%d", i))), n)]++
	}
	for mn, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.25 {
			t.Fatalf("mn %d gets %.3f of keys, want ~0.20", mn, frac)
		}
	}
}

func TestFingerprintNeverZero(t *testing.T) {
	f := func(h uint64) bool { return Fingerprint(h) != 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketPairDistinct(t *testing.T) {
	f := func(h uint64, nbRaw uint16) bool {
		nb := uint64(nbRaw)%1000 + 2
		b1, b2 := BucketPair(h, nb)
		return b1 < nb && b2 < nb && b1 != b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBalance(t *testing.T) {
	const nb, keys = 1024, 100000
	counts := make([]int, nb)
	for i := 0; i < keys; i++ {
		b1, b2 := BucketPair(Hash([]byte(fmt.Sprintf("key-%d", i))), nb)
		counts[b1]++
		counts[b2]++
	}
	mean := float64(2*keys) / nb
	for b, c := range counts {
		if float64(c) < mean*0.5 || float64(c) > mean*1.6 {
			t.Fatalf("bucket %d load %d vs mean %.1f", b, c, mean)
		}
	}
}

func makeBucket(entries map[int]layout.SlotAtomic) []byte {
	b := make([]byte, layout.BucketSize)
	for s, a := range entries {
		binary.LittleEndian.PutUint64(b[s*layout.SlotSize:], a.Pack())
	}
	return b
}

func TestScanBuckets(t *testing.T) {
	fp := uint8(0x5A)
	b1 := makeBucket(map[int]layout.SlotAtomic{
		0: {FP: fp, Ver: 3, Addr: layout.PackAddr(1, 4096)},
		2: {FP: 0x11, Ver: 1, Addr: layout.PackAddr(1, 8192)},
	})
	b2 := makeBucket(map[int]layout.SlotAtomic{
		1: {FP: fp, Ver: 9, Addr: layout.PackAddr(2, 128)},
	})
	ms := ScanBuckets(fp, b1, b2)
	if len(ms) != 2 {
		t.Fatalf("got %d matches, want 2", len(ms))
	}
	if ms[0].Bucket != 0 || ms[0].Slot != 0 || ms[0].Atomic.Ver != 3 {
		t.Fatalf("first match wrong: %+v", ms[0])
	}
	if ms[1].Bucket != 1 || ms[1].Slot != 1 || ms[1].Atomic.Ver != 9 {
		t.Fatalf("second match wrong: %+v", ms[1])
	}
}

func TestFreeSlotAndLoad(t *testing.T) {
	b := makeBucket(map[int]layout.SlotAtomic{
		0: {FP: 1, Addr: 1},
		1: {FP: 2, Addr: 2},
	})
	if FreeSlot(b) != 2 {
		t.Fatalf("free slot = %d, want 2", FreeSlot(b))
	}
	if Load(b) != 2 {
		t.Fatalf("load = %d, want 2", Load(b))
	}
	entries := map[int]layout.SlotAtomic{}
	for s := 0; s < layout.BucketSlots; s++ {
		entries[s] = layout.SlotAtomic{FP: 1, Addr: 1}
	}
	if FreeSlot(makeBucket(entries)) != -1 {
		t.Fatal("full bucket reported a free slot")
	}
}
