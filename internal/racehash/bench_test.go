package racehash

import (
	"encoding/binary"
	"testing"

	"repro/internal/layout"
)

func BenchmarkHash(b *testing.B) {
	key := []byte("user000000001234")
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		Hash(key)
	}
}

func BenchmarkBucketPair(b *testing.B) {
	h := Hash([]byte("user000000001234"))
	for i := 0; i < b.N; i++ {
		BucketPair(h, 1<<14)
	}
}

func BenchmarkScanBuckets(b *testing.B) {
	bucket := make([]byte, layout.BucketSize)
	for s := 0; s < layout.BucketSlots; s++ {
		a := layout.SlotAtomic{FP: uint8(s + 1), Ver: 1, Addr: layout.PackAddr(1, uint64(s)*64)}
		binary.LittleEndian.PutUint64(bucket[s*layout.SlotSize:], a.Pack())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanBuckets(3, bucket, bucket)
	}
}
