// Package racehash implements the client-side hash index math of
// Aceso's RACE-hashing-derived index (§3.2): key hashing, home-MN
// partitioning, the two candidate buckets per key, fingerprints, and
// bucket scanning over raw slot bytes.
//
// The index itself lives in memory-node pool memory and is manipulated
// by clients with one-sided verbs; this package is pure computation.
// Like RACE hashing, each key maps to two buckets (read together with
// one doorbell-batched READ) and each slot carries an 8-bit
// fingerprint to avoid reading KV pairs for non-matching slots.
package racehash

import (
	"encoding/binary"

	"repro/internal/layout"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns the 64-bit FNV-1a hash of key, the basis for all index
// placement decisions.
func Hash(key []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// rehash mixes h a second time (splitmix64 finaliser) for the second
// bucket choice.
func rehash(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HomeMN returns the memory node whose index partition owns the key.
// It uses high hash bits so it is independent of the bucket choice
// bits.
func HomeMN(h uint64, numMNs int) int {
	return int((h >> 48) % uint64(numMNs))
}

// Fingerprint returns the slot fingerprint for a hash; it is never
// zero so that a zero Atomic word always means "empty slot".
func Fingerprint(h uint64) uint8 {
	fp := uint8(h >> 40)
	if fp == 0 {
		fp = 1
	}
	return fp
}

// BucketPair returns the key's two candidate buckets within its home
// MN's index. The buckets are always distinct when numBuckets > 1.
func BucketPair(h uint64, numBuckets uint64) (uint64, uint64) {
	b1 := h % numBuckets
	b2 := rehash(h) % numBuckets
	if b2 == b1 {
		b2 = (b2 + 1) % numBuckets
	}
	return b1, b2
}

// Match is one slot of a scanned bucket whose fingerprint matched.
type Match struct {
	Bucket uint64 // which candidate bucket (index into the scanned pair)
	Slot   int
	Atomic layout.SlotAtomic
	Meta   layout.SlotMeta
}

// ScanBuckets scans raw bucket bytes (each layout.BucketSize long) for
// slots whose fingerprint equals fp, returning matches in slot order.
func ScanBuckets(fp uint8, buckets ...[]byte) []Match {
	var out []Match
	for bi, b := range buckets {
		for s := 0; s < layout.BucketSlots; s++ {
			w := binary.LittleEndian.Uint64(b[s*layout.SlotSize:])
			if w == 0 {
				continue
			}
			a := layout.UnpackAtomic(w)
			if a.FP != fp {
				continue
			}
			m := layout.UnpackMeta(binary.LittleEndian.Uint64(b[s*layout.SlotSize+layout.SlotMetaOff:]))
			out = append(out, Match{Bucket: uint64(bi), Slot: s, Atomic: a, Meta: m})
		}
	}
	return out
}

// FreeSlot returns the first empty slot (zero Atomic word) in the
// bucket bytes, or -1.
func FreeSlot(bucket []byte) int {
	for s := 0; s < layout.BucketSlots; s++ {
		if binary.LittleEndian.Uint64(bucket[s*layout.SlotSize:]) == 0 {
			return s
		}
	}
	return -1
}

// Load returns the number of occupied slots in the bucket bytes.
func Load(bucket []byte) int {
	n := 0
	for s := 0; s < layout.BucketSlots; s++ {
		if binary.LittleEndian.Uint64(bucket[s*layout.SlotSize:]) != 0 {
			n++
		}
	}
	return n
}
