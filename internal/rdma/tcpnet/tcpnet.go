// Package tcpnet implements the rdma verb abstraction over real TCP
// connections, so an Aceso coding group can run as separate daemon
// processes (cmd/acesod) with real clients (cmd/acesocli) — software
// emulation of one-sided RDMA, in the spirit of SoftRoCE.
//
// Every daemon serves a verb executor for its registered memory region
// (READ/WRITE/CAS/FAA applied under a region lock, preserving atomic
// semantics) plus the RPC dispatch of its memory-node server. A
// process's Platform knows the static cluster topology (node id →
// address); node ids are assigned in AddMemNode call order, so
// core.NewCluster builds the same topology in every process.
//
// The fabric is a first-class fault-tolerance substrate:
//
//   - Fail(node) is a real fail-stop for locally served nodes: the
//     listener closes, every tracked connection is torn down, and the
//     registered memory is dropped. Subsequent dials and verbs
//     targeting the node return rdma.ErrNodeFailed.
//   - Client verbs reconnect transparently with bounded exponential
//     backoff and per-attempt I/O deadlines (Options), so a transient
//     drop or a restarting daemon is retried while a fail-stopped node
//     surfaces within the retry budget.
//   - SetChaos installs seedable probabilistic faults (frame drops,
//     delays, connection resets) on a served node, injected before the
//     operation executes so chaos-hit operations never double-apply.
//
// Two deployment shapes exist: New builds one process's view of a
// multi-process cluster (each daemon serves exactly its own node),
// while NewGroup serves every memory node in one process over loopback
// TCP — the shape examples/failover and the recovery tests use to run
// the master's tiered recovery end-to-end on a real transport.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdma"
)

// Wire opcodes.
const (
	opRead uint8 = iota + 1
	opWrite
	opCAS
	opFAA
	opRPC
)

// Wire status codes.
const (
	stOK uint8 = iota
	stErrBounds
	stErrUnaligned
	stErrNoHandler
	stErrBadFrame
)

// hdrSize is the fixed frame header size, both directions.
// Request frame:  op(1)     seq(4) off(8)    n(4) payload(n).
// Response frame: status(1) seq(4) result(8) n(4) payload(n).
// The sequence number lets a client that timed out on one response
// re-associate later frames, and makes a desynchronised stream (e.g. a
// chaos-dropped request under pipelining) detectable instead of
// silently mismatching responses.
const hdrSize = 17

// minFrameClamp floors the oversized-frame clamp so control frames
// always fit even on a platform with no registered regions yet.
const minFrameClamp = 1 << 16

// Options tunes the client-side resilience of a platform's verbs. The
// zero value of any field selects its default.
type Options struct {
	// DialTimeout bounds one dial attempt. Default 5s.
	DialTimeout time.Duration
	// OpTimeout is the per-attempt I/O deadline of one verb or RPC
	// exchange on a connection. Default 5s.
	OpTimeout time.Duration
	// RetryBudget bounds the total time an operation is transparently
	// retried across reconnects before it fails with ErrNodeFailed.
	// Default 3s.
	RetryBudget time.Duration
	// BackoffBase is the first reconnect backoff. Default 2ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Default 100ms.
	BackoffMax time.Duration
}

// WithDefaults returns o with zero fields replaced by their defaults.
func (o Options) WithDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 5 * time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 3 * time.Second
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	return o
}

// memNode is one memory node served by this process: its registered
// region, verb server and chaos state.
type memNode struct {
	pl      *Platform
	id      rdma.NodeID
	mem     []byte       // nil once fail-stopped (guarded by pl.mu)
	handler rdma.Handler // guarded by pl.mu
	srv     *server

	chaosMu sync.Mutex
	chaos   rdma.ChaosConfig
	rng     *rand.Rand
}

// chaosRoll draws this frame's injected faults.
func (n *memNode) chaosRoll() (delay time.Duration, drop, reset bool) {
	n.chaosMu.Lock()
	defer n.chaosMu.Unlock()
	if n.rng == nil || !n.chaos.Enabled() {
		return 0, false, false
	}
	c := &n.chaos
	if c.DelayProb > 0 && c.MaxDelay > 0 && n.rng.Float64() < c.DelayProb {
		delay = time.Duration(n.rng.Int63n(int64(c.MaxDelay))) + 1
		n.pl.ctr.chaosDelays.Add(1)
	}
	if c.ResetProb > 0 && n.rng.Float64() < c.ResetProb {
		n.pl.ctr.chaosResets.Add(1)
		return delay, false, true
	}
	if c.DropProb > 0 && n.rng.Float64() < c.DropProb {
		drop = true
		n.pl.ctr.chaosDrops.Add(1)
	}
	return delay, drop, false
}

// Platform is one process's view of a TCP cluster. It implements
// rdma.Platform and rdma.FaultInjector.
type Platform struct {
	local rdma.NodeID
	isMem bool
	group bool
	start time.Time

	mu      sync.Mutex
	opt     Options
	addrs   []string // node id -> dial address ("" for compute nodes)
	nextMem int
	nextCN  int
	maxMem  uint64 // largest registered region (frame clamp)
	nodes   map[rdma.NodeID]*memNode
	failed  map[rdma.NodeID]bool

	ctr transportCounters
}

// transportCounters holds the platform's fault/retry telemetry. All
// fields are atomics: they are bumped from every client goroutine and
// from served nodes' accept loops.
type transportCounters struct {
	dials        atomic.Uint64
	redials      atomic.Uint64
	retries      atomic.Uint64
	nodeFailures atomic.Uint64
	chaosDrops   atomic.Uint64
	chaosDelays  atomic.Uint64
	chaosResets  atomic.Uint64
}

var (
	_ rdma.Platform             = (*Platform)(nil)
	_ rdma.FaultInjector        = (*Platform)(nil)
	_ rdma.TransportStatsSource = (*Platform)(nil)
)

// TransportStats implements rdma.TransportStatsSource: a snapshot of
// the retry/reconnect/chaos counters accumulated by every verbs
// instance and served node of this platform since creation.
func (pl *Platform) TransportStats() rdma.TransportStats {
	return rdma.TransportStats{
		Dials:        pl.ctr.dials.Load(),
		Redials:      pl.ctr.redials.Load(),
		Retries:      pl.ctr.retries.Load(),
		NodeFailures: pl.ctr.nodeFailures.Load(),
		ChaosDrops:   pl.ctr.chaosDrops.Load(),
		ChaosDelays:  pl.ctr.chaosDelays.Load(),
		ChaosResets:  pl.ctr.chaosResets.Load(),
	}
}

// New creates a platform for one process of a multi-process cluster.
// memAddrs lists every memory node's address in logical order; local is
// this process's node id (equal to its index in memAddrs for a daemon,
// or returned later by AddComputeNode for a client process). A daemon
// passes isMem=true and starts serving when AddMemNode reaches its id.
func New(memAddrs []string, local rdma.NodeID, isMem bool) *Platform {
	return &Platform{
		addrs:  append([]string(nil), memAddrs...),
		local:  local,
		isMem:  isMem,
		start:  time.Now(),
		nodes:  make(map[rdma.NodeID]*memNode),
		failed: make(map[rdma.NodeID]bool),
	}
}

// NewGroup creates an in-process cluster: every AddMemNode allocates a
// region and serves it on its own loopback listener, and every verb
// still crosses a real TCP connection. Node ids (memory and compute)
// are assigned from one sequence, so spares provisioned after compute
// nodes never collide — matching simnet's id assignment.
func NewGroup() *Platform {
	return &Platform{
		group:  true,
		isMem:  true,
		start:  time.Now(),
		nodes:  make(map[rdma.NodeID]*memNode),
		failed: make(map[rdma.NodeID]bool),
	}
}

// SetOptions replaces the client-resilience tuning. Call it before
// spawning processes; zero fields select defaults.
func (pl *Platform) SetOptions(o Options) {
	pl.mu.Lock()
	pl.opt = o
	pl.mu.Unlock()
}

func (pl *Platform) options() Options {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.opt.WithDefaults()
}

// maxFrame returns the oversized-frame clamp: no legal payload exceeds
// the largest registered region.
func (pl *Platform) maxFrame() uint32 {
	pl.mu.Lock()
	m := pl.maxMem
	pl.mu.Unlock()
	if m < minFrameClamp {
		m = minFrameClamp
	}
	if m > math.MaxUint32 {
		m = math.MaxUint32
	}
	return uint32(m)
}

// AddMemNode implements rdma.Platform: it assigns the next logical
// memory-node id. When the node is served by this process (its own id
// in daemon mode; every id in group mode), the memory region is
// allocated and a verb server starts listening.
func (pl *Platform) AddMemNode(cfg rdma.MemNodeConfig) rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if cfg.MemBytes > pl.maxMem {
		pl.maxMem = cfg.MemBytes
	}
	if pl.group {
		id := rdma.NodeID(len(pl.addrs))
		n := &memNode{pl: pl, id: id, mem: make([]byte, cfg.MemBytes)}
		srv, err := newServer("127.0.0.1:0", n)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: listen: %v", err))
		}
		n.srv = srv
		pl.addrs = append(pl.addrs, srv.ln.Addr().String())
		pl.nodes[id] = n
		return id
	}
	id := rdma.NodeID(pl.nextMem)
	pl.nextMem++
	if pl.isMem && id == pl.local {
		n := &memNode{pl: pl, id: id, mem: make([]byte, cfg.MemBytes)}
		srv, err := newServer(pl.addrs[id], n)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: listen %s: %v", pl.addrs[id], err))
		}
		n.srv = srv
		pl.nodes[id] = n
	}
	return id
}

// AddComputeNode implements rdma.Platform: compute nodes never listen.
// In daemon mode their ids follow the static address list; in group
// mode they share the single id sequence.
func (pl *Platform) AddComputeNode() rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.group {
		id := rdma.NodeID(len(pl.addrs))
		pl.addrs = append(pl.addrs, "")
		return id
	}
	id := rdma.NodeID(len(pl.addrs) + pl.nextCN)
	pl.nextCN++
	return id
}

// SetHandler implements rdma.Platform (locally served nodes only;
// remote handlers are installed by their own daemons).
func (pl *Platform) SetHandler(node rdma.NodeID, h rdma.Handler) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil && !pl.failed[node] {
		n.handler = h
	}
}

// Spawn implements rdma.Platform: local processes run as goroutines
// with a wall-clock context. In daemon mode, spawns for remote nodes
// are no-ops (their daemons start them); in group mode every node is
// local.
func (pl *Platform) Spawn(node rdma.NodeID, name string, fn func(rdma.Ctx)) {
	if !pl.group {
		pl.mu.Lock()
		remote := int(node) < len(pl.addrs) && (node != pl.local || !pl.isMem)
		pl.mu.Unlock()
		if remote {
			return // a remote daemon's process
		}
	}
	go fn(&ctx{pl: pl, node: node, verbs: newVerbs(pl)})
}

// Fail implements rdma.Platform (and rdma.FaultInjector): it
// fail-stops a node. For a locally served node the listener closes,
// every tracked connection is torn down and the registered region is
// dropped; for any node, subsequent local verbs targeting it fail fast
// with rdma.ErrNodeFailed instead of burning the retry budget.
func (pl *Platform) Fail(node rdma.NodeID) {
	pl.mu.Lock()
	if pl.failed[node] {
		pl.mu.Unlock()
		return
	}
	pl.failed[node] = true
	n := pl.nodes[node]
	var srv *server
	if n != nil {
		n.handler = nil
		srv = n.srv
	}
	pl.mu.Unlock()
	if srv != nil {
		srv.close() // waits for in-flight verb executions
	}
	if n != nil {
		pl.mu.Lock()
		n.mem = nil // contents lost, per the fail-stop contract
		pl.mu.Unlock()
	}
}

// Failed implements rdma.FaultInjector for nodes failed through this
// process's platform. A remote daemon's crash is not visible here until
// verbs against it exhaust their retry budget.
func (pl *Platform) Failed(node rdma.NodeID) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.failed[node]
}

// SetChaos implements rdma.FaultInjector: it installs (or clears, with
// a zero config) seedable probabilistic faults on a locally served
// node. Remote nodes are configured via their daemons' admin RPC.
func (pl *Platform) SetChaos(node rdma.NodeID, cfg rdma.ChaosConfig) {
	pl.mu.Lock()
	n := pl.nodes[node]
	pl.mu.Unlock()
	if n == nil {
		return
	}
	n.chaosMu.Lock()
	n.chaos = cfg
	n.rng = rand.New(rand.NewSource(cfg.Seed))
	n.chaosMu.Unlock()
}

// Memory implements rdma.Platform: only locally served, non-failed
// regions are directly accessible.
func (pl *Platform) Memory(node rdma.NodeID) []byte {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil {
		return n.mem
	}
	return nil
}

// MemMutex implements rdma.Platform: a locally served node's
// verb-executor lock, so MN server daemons can serialise their direct
// memory access against remote verbs.
func (pl *Platform) MemMutex(node rdma.NodeID) sync.Locker {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil && n.srv != nil {
		return &n.srv.mu
	}
	return rdma.NopLocker{}
}

// Close stops every local listener.
func (pl *Platform) Close() {
	pl.mu.Lock()
	srvs := make([]*server, 0, len(pl.nodes))
	for _, n := range pl.nodes {
		if n.srv != nil {
			srvs = append(srvs, n.srv)
		}
	}
	pl.mu.Unlock()
	for _, s := range srvs {
		s.close()
	}
}

// Addr returns the listen address actually bound by this process's own
// node (useful when listening on port 0 in tests).
func (pl *Platform) Addr() string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[pl.local]; n != nil && n.srv != nil {
		return n.srv.ln.Addr().String()
	}
	return ""
}

// NodeAddr returns the dial address of a node ("" for compute nodes).
func (pl *Platform) NodeAddr(node rdma.NodeID) string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if int(node) >= len(pl.addrs) {
		return ""
	}
	return pl.addrs[node]
}

// SetResolvedAddr overrides a node's dial address (tests bind port 0
// and publish the resolved address).
func (pl *Platform) SetResolvedAddr(node rdma.NodeID, addr string) {
	pl.mu.Lock()
	pl.addrs[node] = addr
	pl.mu.Unlock()
}

// --- server side ---

type server struct {
	n  *memNode
	ln net.Listener
	wg sync.WaitGroup

	mu sync.Mutex // serialises verb application (atomic semantics)

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newServer(addr string, n *memNode) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &server{n: n, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *server) close() {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// track registers a live connection; it reports false when the server
// is already shutting down.
func (s *server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var hdr [hdrSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		seq := binary.LittleEndian.Uint32(hdr[1:5])
		off := binary.LittleEndian.Uint64(hdr[5:13])
		n := binary.LittleEndian.Uint32(hdr[13:17])
		if n > s.n.pl.maxFrame() {
			return // oversized frame: the stream is broken or hostile
		}
		var payload []byte
		if op != opRead && n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
		}
		if delay, drop, reset := s.n.chaosRoll(); delay > 0 || drop || reset {
			if delay > 0 {
				time.Sleep(delay)
			}
			if reset {
				return // connection reset before execution
			}
			if drop {
				// Dropped before execution: flush earlier pipelined
				// responses so only this frame goes unanswered.
				if br.Buffered() == 0 {
					if err := bw.Flush(); err != nil {
						return
					}
				}
				continue
			}
		}
		status, result, resp := s.apply(op, off, int(n), payload)
		var rh [hdrSize]byte
		rh[0] = status
		binary.LittleEndian.PutUint32(rh[1:5], seq)
		binary.LittleEndian.PutUint64(rh[5:13], result)
		binary.LittleEndian.PutUint32(rh[13:17], uint32(len(resp)))
		if _, err := bw.Write(rh[:]); err != nil {
			return
		}
		if len(resp) > 0 {
			if _, err := bw.Write(resp); err != nil {
				return
			}
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// apply executes one verb against local memory under the region lock.
func (s *server) apply(op uint8, off uint64, n int, payload []byte) (uint8, uint64, []byte) {
	if op == opRPC {
		pl := s.n.pl
		pl.mu.Lock()
		h := s.n.handler
		pl.mu.Unlock()
		if h == nil {
			return stErrNoHandler, 0, nil
		}
		if len(payload) < 1 {
			return stErrBadFrame, 0, nil
		}
		resp, _ := h(payload[0], payload[1:])
		return stOK, 0, resp
	}
	// The region slice is stable for the server's lifetime: Fail only
	// drops it after close() has joined every connection goroutine.
	mem := s.n.mem
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case opRead:
		if off+uint64(n) > uint64(len(mem)) {
			return stErrBounds, 0, nil
		}
		out := make([]byte, n)
		copy(out, mem[off:])
		return stOK, 0, out
	case opWrite:
		if off+uint64(len(payload)) > uint64(len(mem)) {
			return stErrBounds, 0, nil
		}
		copy(mem[off:], payload)
		return stOK, 0, nil
	case opCAS:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 16 {
			return stErrBounds, 0, nil
		}
		old := binary.LittleEndian.Uint64(payload[:8])
		new := binary.LittleEndian.Uint64(payload[8:])
		cur := binary.LittleEndian.Uint64(mem[off:])
		if cur == old {
			binary.LittleEndian.PutUint64(mem[off:], new)
		}
		return stOK, cur, nil
	case opFAA:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 8 {
			return stErrBounds, 0, nil
		}
		delta := binary.LittleEndian.Uint64(payload)
		cur := binary.LittleEndian.Uint64(mem[off:])
		binary.LittleEndian.PutUint64(mem[off:], cur+delta)
		return stOK, cur, nil
	}
	return stErrBadFrame, 0, nil
}

// --- client side ---

// errTransient tags connection-level failures that the retry loop may
// transparently recover from; it never escapes the package unwrapped.
var errTransient = errors.New("tcpnet: transient connection failure")

func transient(err error) error { return fmt.Errorf("%w: %v", errTransient, err) }

func isTransient(err error) bool { return errors.Is(err, errTransient) }

// verbs is one process's connection set; it is not safe for concurrent
// use (each spawned process gets its own, as the rdma.Verbs contract
// requires).
type verbs struct {
	pl    *Platform
	conns map[rdma.NodeID]*nodeConn
	// dialed remembers nodes this instance connected to at least once,
	// so a later dial is counted as a reconnect.
	dialed map[rdma.NodeID]bool
}

type nodeConn struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint32
	dead bool
}

func newVerbs(pl *Platform) *verbs {
	return &verbs{pl: pl, conns: make(map[rdma.NodeID]*nodeConn), dialed: make(map[rdma.NodeID]bool)}
}

// conn returns the live connection to node, dialing once if needed.
// Dial failures are transient (the node may be restarting) unless the
// platform knows the node has fail-stopped.
func (v *verbs) conn(node rdma.NodeID) (*nodeConn, error) {
	if nc, ok := v.conns[node]; ok && !nc.dead {
		return nc, nil
	}
	pl := v.pl
	pl.mu.Lock()
	if int(node) >= len(pl.addrs) || pl.addrs[node] == "" {
		pl.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d has no address", rdma.ErrOutOfBounds, node)
	}
	if pl.failed[node] {
		pl.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d fail-stopped", rdma.ErrNodeFailed, node)
	}
	addr := pl.addrs[node]
	o := pl.opt.WithDefaults()
	pl.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, o.DialTimeout)
	if err != nil {
		return nil, transient(err)
	}
	pl.ctr.dials.Add(1)
	if v.dialed[node] {
		pl.ctr.redials.Add(1)
	}
	v.dialed[node] = true
	nc := &nodeConn{c: c, br: bufio.NewReaderSize(c, 1<<16), bw: bufio.NewWriterSize(c, 1<<16)}
	v.conns[node] = nc
	return nc, nil
}

// evict closes and forgets the connection to node (closing prevents
// the fd leak a bare map delete would cause).
func (v *verbs) evict(node rdma.NodeID) {
	if nc, ok := v.conns[node]; ok {
		nc.dead = true
		nc.c.Close()
		delete(v.conns, node)
	}
}

func (nc *nodeConn) send(op uint8, seq uint32, off uint64, n uint32, payload []byte) error {
	var hdr [hdrSize]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], seq)
	binary.LittleEndian.PutUint64(hdr[5:13], off)
	binary.LittleEndian.PutUint32(hdr[13:17], n)
	if _, err := nc.bw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := nc.bw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (nc *nodeConn) recv(clamp uint32) (status uint8, seq uint32, result uint64, payload []byte, err error) {
	var hdr [hdrSize]byte
	if _, err = io.ReadFull(nc.br, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[13:17])
	if n > clamp {
		// A wire-supplied length beyond any registered region means the
		// stream is broken; fail the connection rather than allocate.
		return 0, 0, 0, nil, fmt.Errorf("tcpnet: oversized frame (%d bytes)", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(nc.br, payload); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	return hdr[0], binary.LittleEndian.Uint32(hdr[1:5]), binary.LittleEndian.Uint64(hdr[5:13]), payload, nil
}

func statusErr(st uint8) error {
	switch st {
	case stOK:
		return nil
	case stErrBounds:
		return rdma.ErrOutOfBounds
	case stErrUnaligned:
		return rdma.ErrUnaligned
	case stErrNoHandler:
		return rdma.ErrNoHandler
	}
	return fmt.Errorf("tcpnet: bad frame (status %d)", st)
}

// sendOp writes one op's request frame under a fresh sequence number.
func (v *verbs) sendOp(nc *nodeConn, op *rdma.Op) (uint32, error) {
	nc.seq++
	seq := nc.seq
	switch op.Kind {
	case rdma.OpRead:
		return seq, nc.send(opRead, seq, op.Addr.Off, uint32(len(op.Buf)), nil)
	case rdma.OpWrite:
		return seq, nc.send(opWrite, seq, op.Addr.Off, uint32(len(op.Buf)), op.Buf)
	case rdma.OpCAS:
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], op.Old)
		binary.LittleEndian.PutUint64(p[8:], op.New)
		return seq, nc.send(opCAS, seq, op.Addr.Off, 16, p[:])
	case rdma.OpFAA:
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], op.New)
		return seq, nc.send(opFAA, seq, op.Addr.Off, 8, p[:])
	}
	return seq, fmt.Errorf("tcpnet: unknown op kind %d", op.Kind)
}

// attempt executes one send/flush/recv round for ops, pipelining per
// connection. Connection-level failures tag the affected ops with a
// transient error; an op whose response simply never arrives (chaos
// drop) times out with the others on its connection and is retried.
func (v *verbs) attempt(ops []*rdma.Op, o Options) {
	clamp := v.pl.maxFrame()
	pend := make(map[*nodeConn]map[uint32]*rdma.Op)
	var order []*nodeConn

	// Send phase, grouped by connection to preserve pipelining.
	for _, op := range ops {
		op.Err = nil
		nc, err := v.conn(op.Addr.Node)
		if err != nil {
			op.Err = err
			continue
		}
		if pend[nc] == nil {
			nc.c.SetDeadline(time.Now().Add(o.OpTimeout)) //nolint:errcheck // surfaced at I/O
			pend[nc] = make(map[uint32]*rdma.Op)
			order = append(order, nc)
		}
		seq, err := v.sendOp(nc, op)
		if err != nil {
			op.Err = transient(err)
			v.evict(op.Addr.Node)
			continue
		}
		pend[nc][seq] = op
	}
	for _, nc := range order {
		if nc.dead {
			continue
		}
		if err := nc.bw.Flush(); err != nil {
			v.evictConn(nc)
		}
	}

	// Receive phase: match responses to ops by sequence number.
	for _, nc := range order {
		m := pend[nc]
		for len(m) > 0 && !nc.dead {
			st, seq, result, payload, err := nc.recv(clamp)
			if err != nil {
				v.evictConn(nc)
				break
			}
			op, ok := m[seq]
			if !ok {
				continue // stale response from a superseded exchange
			}
			delete(m, seq)
			if e := statusErr(st); e != nil {
				op.Err = e
				continue
			}
			op.Result = result
			if op.Kind == rdma.OpRead {
				copy(op.Buf, payload)
			}
		}
		for _, op := range m {
			if op.Err == nil {
				op.Err = transient(fmt.Errorf("connection to node %d lost", op.Addr.Node))
			}
		}
		if !nc.dead {
			nc.c.SetDeadline(time.Time{}) //nolint:errcheck // best effort
		}
	}
}

// evictConn is evict keyed by connection (the node id is found by
// scanning the small per-process map).
func (v *verbs) evictConn(nc *nodeConn) {
	nc.dead = true
	nc.c.Close()
	for node, cur := range v.conns {
		if cur == nc {
			delete(v.conns, node)
			return
		}
	}
}

// run drives ops to completion: transient failures are retried with
// bounded exponential backoff until the retry budget expires, at which
// point they surface as ErrNodeFailed.
func (v *verbs) run(ops []*rdma.Op) {
	o := v.pl.options()
	deadline := time.Now().Add(o.RetryBudget)
	backoff := o.BackoffBase
	pending := ops
	for {
		v.attempt(pending, o)
		retry := pending[:0]
		for _, op := range pending {
			switch {
			case op.Err == nil:
			case isTransient(op.Err):
				retry = append(retry, op)
			case errors.Is(op.Err, rdma.ErrNodeFailed):
				v.pl.ctr.nodeFailures.Add(1)
			}
		}
		if len(retry) == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			for _, op := range retry {
				op.Err = fmt.Errorf("%w: retries exhausted: %v", rdma.ErrNodeFailed, op.Err)
			}
			v.pl.ctr.nodeFailures.Add(uint64(len(retry)))
			return
		}
		v.pl.ctr.retries.Add(uint64(len(retry)))
		time.Sleep(backoff)
		backoff *= 2
		if backoff > o.BackoffMax {
			backoff = o.BackoffMax
		}
		pending = retry
	}
}

func (v *verbs) doOp(op *rdma.Op) {
	single := [1]*rdma.Op{op}
	v.run(single[:])
}

func (v *verbs) Read(buf []byte, addr rdma.GlobalAddr) error {
	op := rdma.Op{Kind: rdma.OpRead, Addr: addr, Buf: buf}
	v.doOp(&op)
	return op.Err
}

func (v *verbs) Write(addr rdma.GlobalAddr, data []byte) error {
	op := rdma.Op{Kind: rdma.OpWrite, Addr: addr, Buf: data}
	v.doOp(&op)
	return op.Err
}

func (v *verbs) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	op := rdma.Op{Kind: rdma.OpCAS, Addr: addr, Old: old, New: new}
	v.doOp(&op)
	return op.Result, op.Err
}

func (v *verbs) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	op := rdma.Op{Kind: rdma.OpFAA, Addr: addr, New: delta}
	v.doOp(&op)
	return op.Result, op.Err
}

// Batch pipelines the ops (all requests written before responses are
// read, per connection), retries transient failures, and returns the
// first error.
func (v *verbs) Batch(ops []rdma.Op) error {
	ptrs := make([]*rdma.Op, len(ops))
	for i := range ops {
		ptrs[i] = &ops[i]
	}
	v.run(ptrs)
	for i := range ops {
		if ops[i].Err != nil {
			return ops[i].Err
		}
	}
	return nil
}

// Post implements rdma.Verbs; over TCP an unsignaled post degenerates
// to a synchronous batch (the transport has no completion queues to
// skip).
func (v *verbs) Post(ops []rdma.Op) error { return v.Batch(ops) }

// RPC sends a two-sided request to the daemon on node, with the same
// transparent-reconnect behaviour as the one-sided verbs.
func (v *verbs) RPC(node rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	payload := append([]byte{method}, req...)
	o := v.pl.options()
	deadline := time.Now().Add(o.RetryBudget)
	backoff := o.BackoffBase
	for {
		resp, err := v.rpcOnce(node, payload, o)
		if err == nil || !isTransient(err) {
			if err != nil && errors.Is(err, rdma.ErrNodeFailed) {
				v.pl.ctr.nodeFailures.Add(1)
			}
			return resp, err
		}
		if !time.Now().Before(deadline) {
			v.pl.ctr.nodeFailures.Add(1)
			return nil, fmt.Errorf("%w: retries exhausted: %v", rdma.ErrNodeFailed, err)
		}
		v.pl.ctr.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > o.BackoffMax {
			backoff = o.BackoffMax
		}
	}
}

func (v *verbs) rpcOnce(node rdma.NodeID, payload []byte, o Options) ([]byte, error) {
	nc, err := v.conn(node)
	if err != nil {
		return nil, err
	}
	nc.c.SetDeadline(time.Now().Add(o.OpTimeout)) //nolint:errcheck // surfaced at I/O
	nc.seq++
	seq := nc.seq
	if err := nc.send(opRPC, seq, 0, uint32(len(payload)), payload); err == nil {
		err = nc.bw.Flush()
		if err != nil {
			v.evictConn(nc)
			return nil, transient(err)
		}
	} else {
		v.evictConn(nc)
		return nil, transient(err)
	}
	clamp := v.pl.maxFrame()
	for {
		st, rseq, _, resp, err := nc.recv(clamp)
		if err != nil {
			v.evictConn(nc)
			return nil, transient(err)
		}
		if rseq != seq {
			continue // stale response from a superseded exchange
		}
		nc.c.SetDeadline(time.Time{}) //nolint:errcheck // best effort
		if err := statusErr(st); err != nil {
			return nil, err
		}
		return resp, nil
	}
}

// ctx is the wall-clock process context.
type ctx struct {
	pl   *Platform
	node rdma.NodeID
	*verbs
}

func (c *ctx) Node() rdma.NodeID                { return c.node }
func (c *ctx) Now() time.Duration               { return time.Since(c.pl.start) }
func (c *ctx) Sleep(d time.Duration)            { time.Sleep(d) }
func (c *ctx) UseCPU(core int, d time.Duration) {}
func (c *ctx) LocalMem() []byte                 { return c.pl.Memory(c.node) }
