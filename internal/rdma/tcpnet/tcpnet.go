// Package tcpnet implements the rdma verb abstraction over real TCP
// connections, so an Aceso coding group can run as separate daemon
// processes (cmd/acesod) with real clients (cmd/acesocli) — software
// emulation of one-sided RDMA, in the spirit of SoftRoCE.
//
// Every daemon serves a verb executor for its registered memory region
// (READ/WRITE/CAS/FAA applied under a region lock, preserving atomic
// semantics) plus the RPC dispatch of its memory-node server. A
// process's Platform knows the static cluster topology (node id →
// address); node ids are assigned in AddMemNode call order, so
// core.NewCluster builds the same topology in every process.
//
// Scope: the TCP fabric supports the full steady-state system (CRUD,
// differential checkpointing, offline erasure coding, delta-based
// reclamation). Cross-process failure recovery requires the membership
// service the paper assumes as given; failure handling is exercised on
// the simulated fabric.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rdma"
)

// Wire opcodes.
const (
	opRead uint8 = iota + 1
	opWrite
	opCAS
	opFAA
	opRPC
)

// Wire status codes.
const (
	stOK uint8 = iota
	stErrBounds
	stErrUnaligned
	stErrNoHandler
	stErrBadFrame
)

// Platform is one process's view of a TCP cluster. It implements
// rdma.Platform.
type Platform struct {
	addrs []string // node id -> listen address ("" for compute nodes)
	local rdma.NodeID
	isMem bool

	mu      sync.Mutex
	nextMem int
	nextCN  int
	mem     []byte
	handler rdma.Handler
	srv     *server
	start   time.Time
}

var _ rdma.Platform = (*Platform)(nil)

// New creates a platform for one process. memAddrs lists every memory
// node's address in logical order; local is this process's node id
// (equal to its index in memAddrs for a daemon, or returned later by
// AddComputeNode for a client process). A daemon passes isMem=true and
// starts serving when AddMemNode reaches its id.
func New(memAddrs []string, local rdma.NodeID, isMem bool) *Platform {
	return &Platform{
		addrs: append([]string(nil), memAddrs...),
		local: local,
		isMem: isMem,
		start: time.Now(),
	}
}

// AddMemNode implements rdma.Platform: it assigns the next logical
// memory-node id. When the id is this process's own, the memory region
// is allocated and the verb server starts listening.
func (pl *Platform) AddMemNode(cfg rdma.MemNodeConfig) rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	id := rdma.NodeID(pl.nextMem)
	pl.nextMem++
	if pl.isMem && id == pl.local {
		pl.mem = make([]byte, cfg.MemBytes)
		srv, err := newServer(pl.addrs[id], pl)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: listen %s: %v", pl.addrs[id], err))
		}
		pl.srv = srv
	}
	return id
}

// AddComputeNode implements rdma.Platform: compute nodes get ids after
// the memory nodes and never listen.
func (pl *Platform) AddComputeNode() rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	id := rdma.NodeID(len(pl.addrs) + pl.nextCN)
	pl.nextCN++
	return id
}

// SetHandler implements rdma.Platform (local node only; remote
// handlers are installed by their own daemons).
func (pl *Platform) SetHandler(node rdma.NodeID, h rdma.Handler) {
	if node == pl.local && pl.isMem {
		pl.mu.Lock()
		pl.handler = h
		pl.mu.Unlock()
	}
}

// Spawn implements rdma.Platform: local processes run as goroutines
// with a wall-clock context; spawns for remote nodes are no-ops (their
// daemons start them).
func (pl *Platform) Spawn(node rdma.NodeID, name string, fn func(rdma.Ctx)) {
	if int(node) < len(pl.addrs) && (node != pl.local || !pl.isMem) {
		return // a remote daemon's process
	}
	go fn(&ctx{pl: pl, node: node, verbs: newVerbs(pl)})
}

// Fail implements rdma.Platform. Failure injection is not supported on
// the TCP fabric (see the package comment).
func (pl *Platform) Fail(node rdma.NodeID) {}

// Memory implements rdma.Platform: only the local daemon's region is
// directly accessible.
func (pl *Platform) Memory(node rdma.NodeID) []byte {
	if node == pl.local && pl.isMem {
		return pl.mem
	}
	return nil
}

// MemMutex implements rdma.Platform: the local daemon's verb-executor
// lock, so MN server daemons can serialise their direct memory access
// against remote verbs.
func (pl *Platform) MemMutex(node rdma.NodeID) sync.Locker {
	if node == pl.local && pl.isMem && pl.srv != nil {
		return &pl.srv.mu
	}
	return rdma.NopLocker{}
}

// Close stops the local listener.
func (pl *Platform) Close() {
	if pl.srv != nil {
		pl.srv.close()
	}
}

// Addr returns the listen address actually bound (useful when
// listening on port 0 in tests).
func (pl *Platform) Addr() string {
	if pl.srv == nil {
		return ""
	}
	return pl.srv.ln.Addr().String()
}

// SetResolvedAddr overrides a node's dial address (tests bind port 0
// and publish the resolved address).
func (pl *Platform) SetResolvedAddr(node rdma.NodeID, addr string) {
	pl.mu.Lock()
	pl.addrs[node] = addr
	pl.mu.Unlock()
}

// --- server side ---

type server struct {
	pl *Platform
	ln net.Listener
	wg sync.WaitGroup

	mu sync.Mutex // serialises verb application (atomic semantics)

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newServer(addr string, pl *Platform) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &server{pl: pl, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *server) close() {
	s.ln.Close()
	s.connMu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

// track registers a live connection; it reports false when the server
// is already shutting down.
func (s *server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// Request frame: op(1) off(8) n(4) payload(n).
// Response frame: status(1) result(8) n(4) payload(n).
func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var hdr [13]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		off := binary.LittleEndian.Uint64(hdr[1:9])
		n := binary.LittleEndian.Uint32(hdr[9:13])
		var payload []byte
		if op != opRead && n > 0 {
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
		}
		status, result, resp := s.apply(op, off, int(n), payload)
		var rh [13]byte
		rh[0] = status
		binary.LittleEndian.PutUint64(rh[1:9], result)
		binary.LittleEndian.PutUint32(rh[9:13], uint32(len(resp)))
		if _, err := bw.Write(rh[:]); err != nil {
			return
		}
		if len(resp) > 0 {
			if _, err := bw.Write(resp); err != nil {
				return
			}
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// apply executes one verb against local memory under the region lock.
func (s *server) apply(op uint8, off uint64, n int, payload []byte) (uint8, uint64, []byte) {
	if op == opRPC {
		s.pl.mu.Lock()
		h := s.pl.handler
		s.pl.mu.Unlock()
		if h == nil {
			return stErrNoHandler, 0, nil
		}
		if len(payload) < 1 {
			return stErrBadFrame, 0, nil
		}
		resp, _ := h(payload[0], payload[1:])
		return stOK, 0, resp
	}
	mem := s.pl.mem
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case opRead:
		if off+uint64(n) > uint64(len(mem)) {
			return stErrBounds, 0, nil
		}
		out := make([]byte, n)
		copy(out, mem[off:])
		return stOK, 0, out
	case opWrite:
		if off+uint64(len(payload)) > uint64(len(mem)) {
			return stErrBounds, 0, nil
		}
		copy(mem[off:], payload)
		return stOK, 0, nil
	case opCAS:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 16 {
			return stErrBounds, 0, nil
		}
		old := binary.LittleEndian.Uint64(payload[:8])
		new := binary.LittleEndian.Uint64(payload[8:])
		cur := binary.LittleEndian.Uint64(mem[off:])
		if cur == old {
			binary.LittleEndian.PutUint64(mem[off:], new)
		}
		return stOK, cur, nil
	case opFAA:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 8 {
			return stErrBounds, 0, nil
		}
		delta := binary.LittleEndian.Uint64(payload)
		cur := binary.LittleEndian.Uint64(mem[off:])
		binary.LittleEndian.PutUint64(mem[off:], cur+delta)
		return stOK, cur, nil
	}
	return stErrBadFrame, 0, nil
}

// --- client side ---

// verbs is one process's connection set; it is not safe for concurrent
// use (each spawned process gets its own, as the rdma.Verbs contract
// requires).
type verbs struct {
	pl    *Platform
	conns map[rdma.NodeID]*nodeConn
}

type nodeConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func newVerbs(pl *Platform) *verbs {
	return &verbs{pl: pl, conns: make(map[rdma.NodeID]*nodeConn)}
}

func (v *verbs) conn(node rdma.NodeID) (*nodeConn, error) {
	if nc, ok := v.conns[node]; ok {
		return nc, nil
	}
	if int(node) >= len(v.pl.addrs) {
		return nil, fmt.Errorf("%w: node %d has no address", rdma.ErrOutOfBounds, node)
	}
	v.pl.mu.Lock()
	addr := v.pl.addrs[node]
	v.pl.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", rdma.ErrNodeFailed, addr, err)
	}
	nc := &nodeConn{c: c, br: bufio.NewReaderSize(c, 1<<16), bw: bufio.NewWriterSize(c, 1<<16)}
	v.conns[node] = nc
	return nc, nil
}

func (nc *nodeConn) send(op uint8, off uint64, n uint32, payload []byte) error {
	var hdr [13]byte
	hdr[0] = op
	binary.LittleEndian.PutUint64(hdr[1:9], off)
	binary.LittleEndian.PutUint32(hdr[9:13], n)
	if _, err := nc.bw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := nc.bw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func (nc *nodeConn) recv() (status uint8, result uint64, payload []byte, err error) {
	var hdr [13]byte
	if _, err = io.ReadFull(nc.br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[9:13])
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(nc.br, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return hdr[0], binary.LittleEndian.Uint64(hdr[1:9]), payload, nil
}

func statusErr(st uint8) error {
	switch st {
	case stOK:
		return nil
	case stErrBounds:
		return rdma.ErrOutOfBounds
	case stErrUnaligned:
		return rdma.ErrUnaligned
	case stErrNoHandler:
		return rdma.ErrNoHandler
	}
	return fmt.Errorf("tcpnet: bad frame (status %d)", st)
}

// doOp sends one op and waits for its response.
func (v *verbs) doOp(op *rdma.Op) {
	nc, err := v.conn(op.Addr.Node)
	if err != nil {
		op.Err = err
		return
	}
	switch op.Kind {
	case rdma.OpRead:
		err = nc.send(opRead, op.Addr.Off, uint32(len(op.Buf)), nil)
	case rdma.OpWrite:
		err = nc.send(opWrite, op.Addr.Off, uint32(len(op.Buf)), op.Buf)
	case rdma.OpCAS:
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], op.Old)
		binary.LittleEndian.PutUint64(p[8:], op.New)
		err = nc.send(opCAS, op.Addr.Off, 16, p[:])
	case rdma.OpFAA:
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], op.New)
		err = nc.send(opFAA, op.Addr.Off, 8, p[:])
	}
	if err == nil {
		err = nc.bw.Flush()
	}
	if err != nil {
		op.Err = fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
		delete(v.conns, op.Addr.Node)
		return
	}
	st, result, payload, err := nc.recv()
	if err != nil {
		op.Err = fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
		delete(v.conns, op.Addr.Node)
		return
	}
	if err := statusErr(st); err != nil {
		op.Err = err
		return
	}
	op.Result = result
	if op.Kind == rdma.OpRead {
		copy(op.Buf, payload)
	}
}

func (v *verbs) Read(buf []byte, addr rdma.GlobalAddr) error {
	op := rdma.Op{Kind: rdma.OpRead, Addr: addr, Buf: buf}
	v.doOp(&op)
	return op.Err
}

func (v *verbs) Write(addr rdma.GlobalAddr, data []byte) error {
	op := rdma.Op{Kind: rdma.OpWrite, Addr: addr, Buf: data}
	v.doOp(&op)
	return op.Err
}

func (v *verbs) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	op := rdma.Op{Kind: rdma.OpCAS, Addr: addr, Old: old, New: new}
	v.doOp(&op)
	return op.Result, op.Err
}

func (v *verbs) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	op := rdma.Op{Kind: rdma.OpFAA, Addr: addr, New: delta}
	v.doOp(&op)
	return op.Result, op.Err
}

// Batch pipelines the ops (all requests written before responses are
// read, per connection) and returns the first error.
func (v *verbs) Batch(ops []rdma.Op) error {
	// Send phase, grouped by connection to preserve pipelining.
	sent := make([]bool, len(ops))
	for i := range ops {
		op := &ops[i]
		nc, err := v.conn(op.Addr.Node)
		if err != nil {
			op.Err = err
			continue
		}
		switch op.Kind {
		case rdma.OpRead:
			err = nc.send(opRead, op.Addr.Off, uint32(len(op.Buf)), nil)
		case rdma.OpWrite:
			err = nc.send(opWrite, op.Addr.Off, uint32(len(op.Buf)), op.Buf)
		case rdma.OpCAS:
			var p [16]byte
			binary.LittleEndian.PutUint64(p[:8], op.Old)
			binary.LittleEndian.PutUint64(p[8:], op.New)
			err = nc.send(opCAS, op.Addr.Off, 16, p[:])
		case rdma.OpFAA:
			var p [8]byte
			binary.LittleEndian.PutUint64(p[:], op.New)
			err = nc.send(opFAA, op.Addr.Off, 8, p[:])
		}
		if err != nil {
			op.Err = fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
			delete(v.conns, op.Addr.Node)
			continue
		}
		sent[i] = true
	}
	for _, nc := range v.conns {
		nc.bw.Flush() //nolint:errcheck // surfaced at recv
	}
	// Receive phase, in send order per connection.
	var firstErr error
	for i := range ops {
		op := &ops[i]
		if !sent[i] {
			if op.Err != nil && firstErr == nil {
				firstErr = op.Err
			}
			continue
		}
		nc := v.conns[op.Addr.Node]
		if nc == nil {
			op.Err = rdma.ErrNodeFailed
		} else {
			st, result, payload, err := nc.recv()
			switch {
			case err != nil:
				op.Err = fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
				delete(v.conns, op.Addr.Node)
			case statusErr(st) != nil:
				op.Err = statusErr(st)
			default:
				op.Result = result
				if op.Kind == rdma.OpRead {
					copy(op.Buf, payload)
				}
			}
		}
		if op.Err != nil && firstErr == nil {
			firstErr = op.Err
		}
	}
	return firstErr
}

// Post implements rdma.Verbs; over TCP an unsignaled post degenerates
// to a synchronous batch (the transport has no completion queues to
// skip).
func (v *verbs) Post(ops []rdma.Op) error { return v.Batch(ops) }

// RPC sends a two-sided request to the daemon on node.
func (v *verbs) RPC(node rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	nc, err := v.conn(node)
	if err != nil {
		return nil, err
	}
	payload := append([]byte{method}, req...)
	if err := nc.send(opRPC, 0, uint32(len(payload)), payload); err == nil {
		err = nc.bw.Flush()
	} else {
		delete(v.conns, node)
		return nil, fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
	}
	st, _, resp, err := nc.recv()
	if err != nil {
		delete(v.conns, node)
		return nil, fmt.Errorf("%w: %v", rdma.ErrNodeFailed, err)
	}
	if err := statusErr(st); err != nil {
		return nil, err
	}
	return resp, nil
}

// ctx is the wall-clock process context.
type ctx struct {
	pl   *Platform
	node rdma.NodeID
	*verbs
}

func (c *ctx) Node() rdma.NodeID                { return c.node }
func (c *ctx) Now() time.Duration               { return time.Since(c.pl.start) }
func (c *ctx) Sleep(d time.Duration)            { time.Sleep(d) }
func (c *ctx) UseCPU(core int, d time.Duration) {}
func (c *ctx) LocalMem() []byte {
	if c.node == c.pl.local && c.pl.isMem {
		return c.pl.mem
	}
	return nil
}
