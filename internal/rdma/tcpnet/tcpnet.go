// Package tcpnet implements the rdma verb abstraction over real TCP
// connections, so an Aceso coding group can run as separate daemon
// processes (cmd/acesod) with real clients (cmd/acesocli) — software
// emulation of one-sided RDMA, in the spirit of SoftRoCE.
//
// Every daemon serves a verb executor for its registered memory region
// plus the RPC dispatch of its memory-node server. A process's
// Platform knows the static cluster topology (node id → address); node
// ids are assigned in AddMemNode call order, so core.NewCluster builds
// the same topology in every process.
//
// The data path is built for concurrency (see DESIGN.md §7):
//
//   - Verb atomicity on the server uses striped range locks over the
//     registered region instead of one global mutex: READ/WRITE hold
//     only the stripes they overlap (so disjoint accesses execute
//     concurrently) and CAS/FAA hold the single stripe covering their
//     8-byte word. MemMutex returns the exclusive side of the striped
//     lock, so MN-server direct memory access still serialises against
//     every remote verb.
//   - Clients stripe each node's traffic over Options.ConnsPerNode TCP
//     connections with round-robin dispatch, so a doorbell batch is
//     served by several server goroutines in parallel and a slow
//     exchange does not head-of-line-block unrelated verbs.
//   - Frame payload buffers are sync.Pool-backed on both sides and
//     writer flushes are coalesced across pipelined frames, so the
//     steady-state hot path does not allocate.
//
// The fabric is a first-class fault-tolerance substrate:
//
//   - Fail(node) is a real fail-stop for locally served nodes: the
//     listener closes, every tracked connection is torn down, and the
//     registered memory is dropped. Subsequent dials and verbs
//     targeting the node return rdma.ErrNodeFailed.
//   - Client verbs reconnect transparently with bounded exponential
//     backoff and per-attempt I/O deadlines (Options), so a transient
//     drop or a restarting daemon is retried while a fail-stopped node
//     surfaces within the retry budget.
//   - SetChaos installs seedable probabilistic faults (frame drops,
//     delays, connection resets) on a served node, injected before the
//     operation executes so chaos-hit operations never double-apply.
//
// Two deployment shapes exist: New builds one process's view of a
// multi-process cluster (each daemon serves exactly its own node),
// while NewGroup serves every memory node in one process over loopback
// TCP — the shape examples/failover and the recovery tests use to run
// the master's tiered recovery end-to-end on a real transport.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rdma"
)

// Wire opcodes.
const (
	opRead uint8 = iota + 1
	opWrite
	opCAS
	opFAA
	opRPC
)

// Wire status codes.
const (
	stOK uint8 = iota
	stErrBounds
	stErrUnaligned
	stErrNoHandler
	stErrBadFrame
)

// hdrSize is the fixed frame header size, both directions.
// Request frame:  op(1)     seq(4) off(8)    n(4) payload(n).
// Response frame: status(1) seq(4) result(8) n(4) payload(n).
// The sequence number lets a client that timed out on one response
// re-associate later frames, and makes a desynchronised stream (e.g. a
// chaos-dropped request under pipelining) detectable instead of
// silently mismatching responses.
const hdrSize = 17

// minFrameClamp floors the oversized-frame clamp so control frames
// always fit even on a platform with no registered regions yet.
const minFrameClamp = 1 << 16

// Options tunes the client-side resilience and the data-path shape of
// a platform's verbs. The zero value of any field selects its default.
type Options struct {
	// DialTimeout bounds one dial attempt. Default 5s.
	DialTimeout time.Duration
	// OpTimeout is the per-attempt I/O deadline of one verb or RPC
	// exchange on a connection. Default 5s.
	OpTimeout time.Duration
	// RetryBudget bounds the total time an operation is transparently
	// retried across reconnects before it fails with ErrNodeFailed.
	// Default 3s.
	RetryBudget time.Duration
	// BackoffBase is the first reconnect backoff. Default 2ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Default 100ms.
	BackoffMax time.Duration
	// ConnsPerNode stripes each verbs instance's traffic to one node
	// over this many TCP connections (round-robin per op), so a
	// pipelined batch is executed by several server goroutines in
	// parallel. Connections dial lazily. Default 4.
	ConnsPerNode int
	// Stripes forces the server-side region-lock stripe count
	// (normally sized automatically from the region). 1 reproduces a
	// single global region lock — the pre-striping behaviour, kept as
	// the measurable baseline for `acesobench -exp tcpperf`.
	Stripes int
}

// WithDefaults returns o with zero fields replaced by their defaults.
func (o Options) WithDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 5 * time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 3 * time.Second
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.ConnsPerNode == 0 {
		o.ConnsPerNode = 4
	}
	return o
}

// memNode is one memory node served by this process: its registered
// region, verb server and chaos state.
type memNode struct {
	pl      *Platform
	id      rdma.NodeID
	mem     []byte       // nil once fail-stopped (guarded by pl.mu)
	handler rdma.Handler // guarded by pl.mu
	srv     *server

	chaosOn atomic.Bool // fast path: skip the mutex when no chaos is armed
	chaosMu sync.Mutex
	chaos   rdma.ChaosConfig
	rng     *rand.Rand

	// writeObs, when non-nil, is called after every remote mutation of
	// this node's region (WRITE, successful CAS, FAA) with the mutated
	// byte range. Stored atomically so server goroutines read it with
	// one load, like chaosOn.
	writeObs atomic.Pointer[func(off, n uint64)]
}

// observeWrite notifies the installed write observer, if any.
func (n *memNode) observeWrite(off, ln uint64) {
	if fn := n.writeObs.Load(); fn != nil {
		(*fn)(off, ln)
	}
}

// chaosRoll draws this frame's injected faults. The armed check is a
// lock-free load so the per-frame cost of disabled chaos is one atomic
// read, not a mutex round trip shared by every server goroutine.
func (n *memNode) chaosRoll() (delay time.Duration, drop, reset bool) {
	if !n.chaosOn.Load() {
		return 0, false, false
	}
	n.chaosMu.Lock()
	defer n.chaosMu.Unlock()
	if n.rng == nil || !n.chaos.Enabled() {
		return 0, false, false
	}
	c := &n.chaos
	if c.DelayProb > 0 && c.MaxDelay > 0 && n.rng.Float64() < c.DelayProb {
		delay = time.Duration(n.rng.Int63n(int64(c.MaxDelay))) + 1
		n.pl.ctr.chaosDelays.Add(1)
	}
	if c.ResetProb > 0 && n.rng.Float64() < c.ResetProb {
		n.pl.ctr.chaosResets.Add(1)
		return delay, false, true
	}
	if c.DropProb > 0 && n.rng.Float64() < c.DropProb {
		drop = true
		n.pl.ctr.chaosDrops.Add(1)
	}
	return delay, drop, false
}

// Platform is one process's view of a TCP cluster. It implements
// rdma.Platform and rdma.FaultInjector.
//
// The topology (addrs), failed set, options and frame clamp are
// copy-on-write: the verb hot path loads them with a single atomic
// read, and the rare writers (AddMemNode, SetResolvedAddr, Fail,
// SetOptions) swap fresh copies under mu. NodeAddr and the dial/retry
// path therefore never take a lock.
type Platform struct {
	local rdma.NodeID
	isMem bool
	group bool
	start time.Time

	addrs  atomic.Pointer[[]string]             // node id -> dial address ("" for compute nodes)
	failed atomic.Pointer[map[rdma.NodeID]bool] // fail-stopped nodes
	opt    atomic.Pointer[Options]              // resolved via WithDefaults on read
	maxMem atomic.Uint64                        // largest registered region (frame clamp)

	mu      sync.Mutex // serialises mutations of the copy-on-write state and nodes
	nextMem int
	nextCN  int
	nodes   map[rdma.NodeID]*memNode

	ctr   transportCounters
	pool  bufPool
	conns connTracker
}

// transportCounters holds the platform's fault/retry telemetry. All
// fields are atomics: they are bumped from every client goroutine and
// from served nodes' accept loops.
type transportCounters struct {
	dials        atomic.Uint64
	redials      atomic.Uint64
	retries      atomic.Uint64
	nodeFailures atomic.Uint64
	chaosDrops   atomic.Uint64
	chaosDelays  atomic.Uint64
	chaosResets  atomic.Uint64
}

var (
	_ rdma.Platform             = (*Platform)(nil)
	_ rdma.FaultInjector        = (*Platform)(nil)
	_ rdma.TransportStatsSource = (*Platform)(nil)
	_ rdma.WriteObserver        = (*Platform)(nil)
)

// TransportStats implements rdma.TransportStatsSource: a snapshot of
// the retry/reconnect/chaos counters, the open-connection gauge and
// the frame-buffer pool statistics accumulated by every verbs instance
// and served node of this platform since creation.
func (pl *Platform) TransportStats() rdma.TransportStats {
	total, byNode := pl.conns.snapshot()
	gets, puts, allocs := pl.pool.stats()
	return rdma.TransportStats{
		Dials:           pl.ctr.dials.Load(),
		Redials:         pl.ctr.redials.Load(),
		Retries:         pl.ctr.retries.Load(),
		NodeFailures:    pl.ctr.nodeFailures.Load(),
		ChaosDrops:      pl.ctr.chaosDrops.Load(),
		ChaosDelays:     pl.ctr.chaosDelays.Load(),
		ChaosResets:     pl.ctr.chaosResets.Load(),
		OpenConns:       total,
		OpenConnsByNode: byNode,
		PoolGets:        gets,
		PoolPuts:        puts,
		PoolAllocs:      allocs,
	}
}

func newPlatform(addrs []string, local rdma.NodeID, isMem, group bool) *Platform {
	pl := &Platform{
		local: local,
		isMem: isMem,
		group: group,
		start: time.Now(),
		nodes: make(map[rdma.NodeID]*memNode),
	}
	a := append([]string(nil), addrs...)
	pl.addrs.Store(&a)
	f := map[rdma.NodeID]bool{}
	pl.failed.Store(&f)
	pl.opt.Store(&Options{})
	return pl
}

// New creates a platform for one process of a multi-process cluster.
// memAddrs lists every memory node's address in logical order; local is
// this process's node id (equal to its index in memAddrs for a daemon,
// or returned later by AddComputeNode for a client process). A daemon
// passes isMem=true and starts serving when AddMemNode reaches its id.
func New(memAddrs []string, local rdma.NodeID, isMem bool) *Platform {
	return newPlatform(memAddrs, local, isMem, false)
}

// NewGroup creates an in-process cluster: every AddMemNode allocates a
// region and serves it on its own loopback listener, and every verb
// still crosses a real TCP connection. Node ids (memory and compute)
// are assigned from one sequence, so spares provisioned after compute
// nodes never collide — matching simnet's id assignment.
func NewGroup() *Platform {
	return newPlatform(nil, 0, true, true)
}

// SetOptions replaces the client-resilience and data-path tuning. Call
// it before spawning processes (each verbs instance resolves its
// options at creation); zero fields select defaults.
func (pl *Platform) SetOptions(o Options) {
	pl.mu.Lock()
	pl.opt.Store(&o)
	pl.mu.Unlock()
}

func (pl *Platform) options() Options {
	return (*pl.opt.Load()).WithDefaults()
}

// maxFrame returns the oversized-frame clamp: no legal payload exceeds
// the largest registered region.
func (pl *Platform) maxFrame() uint32 {
	m := pl.maxMem.Load()
	if m < minFrameClamp {
		m = minFrameClamp
	}
	if m > math.MaxUint32 {
		m = math.MaxUint32
	}
	return uint32(m)
}

// appendAddrLocked swaps in a copy of the address list with addr
// appended. Callers hold pl.mu.
func (pl *Platform) appendAddrLocked(addr string) int {
	cur := *pl.addrs.Load()
	next := make([]string, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = addr
	pl.addrs.Store(&next)
	return len(cur)
}

// AddMemNode implements rdma.Platform: it assigns the next logical
// memory-node id. When the node is served by this process (its own id
// in daemon mode; every id in group mode), the memory region is
// allocated and a verb server starts listening.
func (pl *Platform) AddMemNode(cfg rdma.MemNodeConfig) rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for {
		m := pl.maxMem.Load()
		if cfg.MemBytes <= m || pl.maxMem.CompareAndSwap(m, cfg.MemBytes) {
			break
		}
	}
	if pl.group {
		id := rdma.NodeID(len(*pl.addrs.Load()))
		n := &memNode{pl: pl, id: id, mem: make([]byte, cfg.MemBytes)}
		srv, err := newServer("127.0.0.1:0", n, pl.options().Stripes)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: listen: %v", err))
		}
		n.srv = srv
		pl.appendAddrLocked(srv.ln.Addr().String())
		pl.nodes[id] = n
		return id
	}
	id := rdma.NodeID(pl.nextMem)
	pl.nextMem++
	if pl.isMem && id == pl.local {
		addr := (*pl.addrs.Load())[id]
		n := &memNode{pl: pl, id: id, mem: make([]byte, cfg.MemBytes)}
		srv, err := newServer(addr, n, pl.options().Stripes)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: listen %s: %v", addr, err))
		}
		n.srv = srv
		pl.nodes[id] = n
	}
	return id
}

// AddComputeNode implements rdma.Platform: compute nodes never listen.
// In daemon mode their ids follow the static address list; in group
// mode they share the single id sequence.
func (pl *Platform) AddComputeNode() rdma.NodeID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.group {
		return rdma.NodeID(pl.appendAddrLocked(""))
	}
	id := rdma.NodeID(len(*pl.addrs.Load()) + pl.nextCN)
	pl.nextCN++
	return id
}

// SetHandler implements rdma.Platform (locally served nodes only;
// remote handlers are installed by their own daemons).
func (pl *Platform) SetHandler(node rdma.NodeID, h rdma.Handler) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil && !(*pl.failed.Load())[node] {
		n.handler = h
	}
}

// Spawn implements rdma.Platform: local processes run as goroutines
// with a wall-clock context. In daemon mode, spawns for remote nodes
// are no-ops (their daemons start them); in group mode every node is
// local.
func (pl *Platform) Spawn(node rdma.NodeID, name string, fn func(rdma.Ctx)) {
	if !pl.group {
		remote := int(node) < len(*pl.addrs.Load()) && (node != pl.local || !pl.isMem)
		if remote {
			return // a remote daemon's process
		}
	}
	go fn(&ctx{pl: pl, node: node, verbs: newVerbs(pl)})
}

// Fail implements rdma.Platform (and rdma.FaultInjector): it
// fail-stops a node. For a locally served node the listener closes,
// every tracked connection is torn down and the registered region is
// dropped; for any node, subsequent local verbs targeting it fail fast
// with rdma.ErrNodeFailed instead of burning the retry budget.
func (pl *Platform) Fail(node rdma.NodeID) {
	pl.mu.Lock()
	cur := *pl.failed.Load()
	if cur[node] {
		pl.mu.Unlock()
		return
	}
	next := make(map[rdma.NodeID]bool, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[node] = true
	pl.failed.Store(&next)
	n := pl.nodes[node]
	var srv *server
	if n != nil {
		n.handler = nil
		srv = n.srv
	}
	pl.mu.Unlock()
	if srv != nil {
		srv.close() // waits for in-flight verb executions
	}
	if n != nil {
		pl.mu.Lock()
		n.mem = nil // contents lost, per the fail-stop contract
		pl.mu.Unlock()
	}
}

// Failed implements rdma.FaultInjector for nodes failed through this
// process's platform. A remote daemon's crash is not visible here until
// verbs against it exhaust their retry budget.
func (pl *Platform) Failed(node rdma.NodeID) bool {
	return (*pl.failed.Load())[node]
}

// SetChaos implements rdma.FaultInjector: it installs (or clears, with
// a zero config) seedable probabilistic faults on a locally served
// node. Remote nodes are configured via their daemons' admin RPC.
func (pl *Platform) SetChaos(node rdma.NodeID, cfg rdma.ChaosConfig) {
	pl.mu.Lock()
	n := pl.nodes[node]
	pl.mu.Unlock()
	if n == nil {
		return
	}
	n.chaosMu.Lock()
	n.chaos = cfg
	n.rng = rand.New(rand.NewSource(cfg.Seed))
	n.chaosMu.Unlock()
	n.chaosOn.Store(cfg.Enabled())
}

// SetWriteObserver implements rdma.WriteObserver for locally served
// nodes: fn is invoked by the verb executor after every remote
// mutation of the node's region. It reports false for nodes this
// process does not serve.
func (pl *Platform) SetWriteObserver(node rdma.NodeID, fn func(off, n uint64)) bool {
	pl.mu.Lock()
	n := pl.nodes[node]
	pl.mu.Unlock()
	if n == nil {
		return false
	}
	if fn == nil {
		n.writeObs.Store(nil)
	} else {
		n.writeObs.Store(&fn)
	}
	return true
}

var _ rdma.LocalAtomics = (*Platform)(nil)

// LocalAdd64 implements rdma.LocalAtomics: the returned closure runs
// the read-modify-write under the same stripe locks a remote FAA on
// that word would take, so it is safe to call from a write observer
// running on one verb-executor goroutine while others touch
// neighbouring bytes. It does not notify the write observer (the
// caller is the observer).
func (pl *Platform) LocalAdd64(node rdma.NodeID) func(off, delta uint64) {
	pl.mu.Lock()
	n := pl.nodes[node]
	pl.mu.Unlock()
	if n == nil || n.srv == nil {
		return nil
	}
	s := n.srv
	return func(off, delta uint64) {
		mem := s.n.mem
		if mem == nil || off+8 > uint64(len(mem)) {
			return
		}
		lo, hi := s.locks.rangeIdx(off, 8)
		s.locks.lockRange(lo, hi)
		v := binary.LittleEndian.Uint64(mem[off:])
		binary.LittleEndian.PutUint64(mem[off:], v+delta)
		s.locks.unlockRange(lo, hi)
	}
}

// Memory implements rdma.Platform: only locally served, non-failed
// regions are directly accessible.
func (pl *Platform) Memory(node rdma.NodeID) []byte {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil {
		return n.mem
	}
	return nil
}

// MemMutex implements rdma.Platform: the exclusive side of a locally
// served node's striped verb-executor lock. Holding it excludes every
// remote verb on the whole region, so MN server daemons can serialise
// their direct memory access exactly as under the old global lock.
func (pl *Platform) MemMutex(node rdma.NodeID) sync.Locker {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[node]; n != nil && n.srv != nil {
		return &n.srv.locks.excl
	}
	return rdma.NopLocker{}
}

// Close stops every local listener.
func (pl *Platform) Close() {
	pl.mu.Lock()
	srvs := make([]*server, 0, len(pl.nodes))
	for _, n := range pl.nodes {
		if n.srv != nil {
			srvs = append(srvs, n.srv)
		}
	}
	pl.mu.Unlock()
	for _, s := range srvs {
		s.close()
	}
}

// Addr returns the listen address actually bound by this process's own
// node (useful when listening on port 0 in tests).
func (pl *Platform) Addr() string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := pl.nodes[pl.local]; n != nil && n.srv != nil {
		return n.srv.ln.Addr().String()
	}
	return ""
}

// NodeAddr returns the dial address of a node ("" for compute nodes).
// It is lock-free: the dial/retry path calls it per reconnect attempt.
func (pl *Platform) NodeAddr(node rdma.NodeID) string {
	addrs := *pl.addrs.Load()
	if int(node) >= len(addrs) {
		return ""
	}
	return addrs[node]
}

// SetResolvedAddr overrides a node's dial address (tests bind port 0
// and publish the resolved address).
func (pl *Platform) SetResolvedAddr(node rdma.NodeID, addr string) {
	pl.mu.Lock()
	cur := *pl.addrs.Load()
	next := append([]string(nil), cur...)
	next[node] = addr
	pl.addrs.Store(&next)
	pl.mu.Unlock()
}
