package tcpnet

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rdma"
)

func testOptions() Options {
	return Options{
		DialTimeout: time.Second,
		OpTimeout:   200 * time.Millisecond,
		RetryBudget: 2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

// restartDaemon rebinds a daemon platform on addr, retrying while the
// old listener's port is still releasing.
func restartDaemon(t *testing.T, addr string, memBytes uint64) *Platform {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		pl, err := func() (pl *Platform, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = errors.New("bind failed")
				}
			}()
			pl = New([]string{addr}, 0, true)
			pl.AddMemNode(rdma.MemNodeConfig{MemBytes: memBytes})
			return pl, nil
		}()
		if err == nil {
			return pl
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s", addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReconnectAfterServerRestart kills the server mid-workload and
// restarts it on the same address; in-flight verbs must ride the retry
// loop across the outage instead of failing.
func TestReconnectAfterServerRestart(t *testing.T) {
	srv := New([]string{"127.0.0.1:0"}, 0, true)
	srv.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20})
	addr := srv.Addr()

	cpl := New([]string{addr}, 0, false)
	cpl.SetOptions(testOptions())
	v := newVerbs(cpl)
	target := rdma.GlobalAddr{Node: 0, Off: 128}
	if err := v.Write(target, []byte("before outage")); err != nil {
		t.Fatalf("write before outage: %v", err)
	}

	srv.Close()
	restarted := make(chan *Platform, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		restarted <- restartDaemon(t, addr, 1<<20)
	}()

	// Issued while the server is down; must succeed once it is back.
	if err := v.Write(target, []byte("after restart")); err != nil {
		t.Fatalf("write across restart: %v", err)
	}
	buf := make([]byte, 13)
	if err := v.Read(buf, target); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if string(buf) != "after restart" {
		t.Fatalf("read back %q", buf)
	}
	(<-restarted).Close()
}

// TestFailStopSurfaces checks both halves of the fail-stop contract:
// a locally known failure fails fast, and an unreachable node surfaces
// as ErrNodeFailed once the retry budget runs out.
func TestFailStopSurfaces(t *testing.T) {
	pl := NewGroup()
	pl.SetOptions(testOptions())
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
	addr := pl.NodeAddr(id)
	v := newVerbs(pl)
	if err := v.Write(rdma.GlobalAddr{Node: id, Off: 0}, []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}

	pl.Fail(id)
	if !pl.Failed(id) {
		t.Fatal("Failed(id) = false after Fail")
	}
	start := time.Now()
	err := v.Write(rdma.GlobalAddr{Node: id, Off: 0}, []byte("y"))
	if !errors.Is(err, rdma.ErrNodeFailed) {
		t.Fatalf("verb after local Fail: err = %v, want ErrNodeFailed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("locally known failure took %v to surface (want fast path)", d)
	}

	// A client that cannot see the failure locally burns the budget on
	// refused dials, then reports the node failed.
	cpl := New([]string{addr}, 0, false)
	o := testOptions()
	o.RetryBudget = 400 * time.Millisecond
	cpl.SetOptions(o)
	rv := newVerbs(cpl)
	start = time.Now()
	err = rv.Write(rdma.GlobalAddr{Node: 0, Off: 0}, []byte("z"))
	if !errors.Is(err, rdma.ErrNodeFailed) {
		t.Fatalf("verb against dead server: err = %v, want ErrNodeFailed", err)
	}
	if d := time.Since(start); d < o.RetryBudget/2 || d > 5*time.Second {
		t.Fatalf("budget-bounded failure took %v (budget %v)", d, o.RetryBudget)
	}
}

// TestConcurrentAddMemNodeVsVerbs grows the cluster while verbs are in
// flight; meaningful only under -race (the conn bounds check must read
// the address list under the platform lock).
func TestConcurrentAddMemNodeVsVerbs(t *testing.T) {
	pl := NewGroup()
	pl.SetOptions(testOptions())
	first := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
	defer pl.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := newVerbs(pl)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := v.FAA(rdma.GlobalAddr{Node: first, Off: 0}, 1); err != nil {
					t.Errorf("faa: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
		pl.AddComputeNode()
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestChaosFAAExact hammers FAA through drop/delay/reset chaos; since
// chaos faults are injected before execution, the retried operations
// must still apply exactly once each.
func TestChaosFAAExact(t *testing.T) {
	pl := NewGroup()
	o := testOptions()
	o.OpTimeout = 50 * time.Millisecond
	pl.SetOptions(o)
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
	defer pl.Close()
	pl.SetChaos(id, rdma.ChaosConfig{
		Seed:      42,
		DropProb:  0.08,
		DelayProb: 0.2,
		MaxDelay:  time.Millisecond,
		ResetProb: 0.08,
	})

	v := newVerbs(pl)
	const incs = 150
	for i := 0; i < incs; i++ {
		if _, err := v.FAA(rdma.GlobalAddr{Node: id, Off: 0}, 1); err != nil {
			t.Fatalf("faa %d under chaos: %v", i, err)
		}
	}
	pl.SetChaos(id, rdma.ChaosConfig{}) // clear
	buf := make([]byte, 8)
	if err := v.Read(buf, rdma.GlobalAddr{Node: id, Off: 0}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != incs {
		t.Fatalf("counter = %d, want %d (chaos double- or under-applied)", got, incs)
	}
}

// TestOversizedFrameRejected sends a frame with an absurd length
// directly at a server; the connection must be dropped, not allocated
// for.
func TestOversizedFrameRejected(t *testing.T) {
	pl := NewGroup()
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
	defer pl.Close()

	c, err := net.Dial("tcp", pl.NodeAddr(id))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var hdr [hdrSize]byte
	hdr[0] = opWrite
	binary.LittleEndian.PutUint32(hdr[13:17], 0xFFFFFFFF)
	if _, err := c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test conn
	if _, err := io.ReadFull(c, hdr[:1]); err != io.EOF {
		t.Fatalf("server answered an oversized frame (err=%v), want closed conn", err)
	}
}
