package tcpnet

import "sync"

// Stripe sizing bounds. The minimum stripe of 64 bytes guarantees an
// aligned 8-byte atomic word never spans two stripes, so CAS/FAA take
// exactly one stripe lock; the cap keeps the lock array small enough
// that an exclusive bracket (lock every stripe) stays cheap.
const (
	minStripeShift = 6 // 64 B
	maxStripes     = 256
)

// stripedLocks provides range-granular atomicity over a registered
// memory region. Remote verbs hold the shared side of excl plus the
// mutexes of every stripe their byte range overlaps (acquired in
// ascending index order, so overlapping verbs cannot deadlock);
// disjoint verbs therefore execute concurrently. Platform.MemMutex
// hands out the exclusive side of excl, which waits for all in-flight
// verbs and blocks new ones — preserving the old global-lock semantics
// for MN-server direct memory access (core recovery, RPC dispatch).
type stripedLocks struct {
	excl    sync.RWMutex
	shift   uint
	stripes []sync.Mutex
}

// newStripedLocks sizes the stripe array for a region of regionLen
// bytes. forced > 0 pins the stripe count (1 reproduces the old global
// region lock, the tcpperf baseline mode); otherwise the stripe size
// doubles from 64 B until at most maxStripes cover the region.
func newStripedLocks(regionLen uint64, forced int) *stripedLocks {
	limit := uint64(maxStripes)
	if forced > 0 {
		limit = uint64(forced)
	}
	shift := uint(minStripeShift)
	for regionLen>>shift > limit {
		shift++
	}
	n := (regionLen + (1 << shift) - 1) >> shift
	if n == 0 {
		n = 1
	}
	return &stripedLocks{shift: shift, stripes: make([]sync.Mutex, n)}
}

// rangeIdx returns the inclusive stripe index range covering
// [off, off+n). The caller has already bounds-checked the range
// against the region, so hi is always within the stripe array; n == 0
// degenerates to the single stripe holding off.
func (sl *stripedLocks) rangeIdx(off uint64, n int) (lo, hi int) {
	lo = int(off >> sl.shift)
	hi = lo
	if n > 0 {
		hi = int((off + uint64(n) - 1) >> sl.shift)
	}
	return lo, hi
}

// lockRange takes the shared excl side plus stripes lo..hi in
// ascending order.
func (sl *stripedLocks) lockRange(lo, hi int) {
	sl.excl.RLock()
	for i := lo; i <= hi; i++ {
		sl.stripes[i].Lock()
	}
}

// unlockRange releases stripes lo..hi and the shared excl side.
func (sl *stripedLocks) unlockRange(lo, hi int) {
	for i := lo; i <= hi; i++ {
		sl.stripes[i].Unlock()
	}
	sl.excl.RUnlock()
}
