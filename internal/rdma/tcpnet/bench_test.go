package tcpnet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdma"
)

// benchGroup builds a one-MN loopback group sized for the verb
// benchmarks.
func benchGroup(b *testing.B, opt Options) (*Platform, rdma.NodeID) {
	b.Helper()
	pl := NewGroup()
	pl.SetOptions(opt)
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20})
	b.Cleanup(pl.Close)
	return pl, id
}

// benchVerbMix runs the steady-state small-op mix every throughput
// claim uses: 64 B READ + 64 B WRITE on a client-private region plus an
// FAA on a shared word, from `clients` concurrent client goroutines
// (each with its own verbs instance, per the rdma.Verbs contract).
func benchVerbMix(b *testing.B, clients int, opt Options) {
	pl, id := benchGroup(b, opt)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / clients
	if per == 0 {
		per = 1
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			v := newVerbs(pl)
			buf := make([]byte, 64)
			priv := rdma.GlobalAddr{Node: id, Off: uint64(4096 + c*1024)}
			shared := rdma.GlobalAddr{Node: id, Off: 0}
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					if err := v.Write(priv, buf); err != nil {
						b.Error(err)
						return
					}
				case 1:
					if err := v.Read(buf, priv); err != nil {
						b.Error(err)
						return
					}
				default:
					if _, err := v.FAA(shared, 1); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkVerbMix(b *testing.B) {
	for _, clients := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchVerbMix(b, clients, Options{})
		})
	}
}

// benchBatchRead measures one doorbell-batched list of depth 64 B
// reads per iteration — the shape client search/insert batches take.
func benchBatchRead(b *testing.B, depth int) {
	pl, id := benchGroup(b, Options{})
	v := newVerbs(pl)
	ops := make([]rdma.Op, depth)
	bufs := make([][]byte, depth)
	for i := range ops {
		bufs[i] = make([]byte, 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = rdma.Op{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: id, Off: uint64(j * 4096)}, Buf: bufs[j]}
		}
		if err := v.Batch(ops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchRead8(b *testing.B)  { benchBatchRead(b, 8) }
func BenchmarkBatchRead64(b *testing.B) { benchBatchRead(b, 64) }

// BenchmarkBurstMix mirrors the `acesobench -exp tcpperf` workload:
// each client issues a 32-op doorbell batch — 31 64 B READ/WRITEs on a
// private region plus one FAA on a shared word. Batched atomics are
// exactly-once under injected chaos on this tree (executed frames are
// acked before a chaos reset tears the connection down), so the FAA
// rides inside the batch instead of paying its own round trip. b.N
// counts individual ops.
func BenchmarkBurstMix(b *testing.B) {
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			pl, id := benchGroup(b, Options{})
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/(32*clients) + 1
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					v := newVerbs(pl)
					base := uint64(4096 + c*32*1024)
					shared := rdma.GlobalAddr{Node: id, Off: uint64(8 * (c % 8))}
					ops := make([]rdma.Op, 32)
					bufs := make([][]byte, 31)
					for i := range bufs {
						bufs[i] = make([]byte, 64)
					}
					for i := 0; i < per; i++ {
						for j := 0; j < 31; j++ {
							kind := rdma.OpRead
							if j%2 == 0 {
								kind = rdma.OpWrite
							}
							ops[j] = rdma.Op{Kind: kind, Addr: rdma.GlobalAddr{Node: id, Off: base + uint64(((i+j)%64)*512)}, Buf: bufs[j]}
						}
						ops[31] = rdma.Op{Kind: rdma.OpFAA, Addr: shared, New: 1}
						if err := v.Batch(ops); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}
